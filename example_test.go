package hrdb_test

import (
	"fmt"

	"hrdb"
)

// ExampleRelation_Holds shows inheritance with exceptions: the paper's
// Figure 1 in six lines.
func ExampleRelation_Holds() {
	animals := hrdb.NewHierarchy("Animal")
	_ = animals.AddClass("Bird")
	_ = animals.AddClass("Penguin", "Bird")
	_ = animals.AddInstance("Tweety", "Bird")
	_ = animals.AddInstance("Paul", "Penguin")

	flies := hrdb.NewRelation("Flies", hrdb.MustSchema(
		hrdb.Attribute{Name: "Creature", Domain: animals}))
	_ = flies.Assert("Bird")
	_ = flies.Deny("Penguin")

	t, _ := flies.Holds("Tweety")
	p, _ := flies.Holds("Paul")
	fmt.Println(t, p)
	// Output: true false
}

// ExampleRelation_Evaluate shows justification: the verdict carries the
// binding and applicable tuples (the paper's Figure 9).
func ExampleRelation_Evaluate() {
	animals := hrdb.NewHierarchy("Animal")
	_ = animals.AddClass("Elephant")
	_ = animals.AddClass("RoyalElephant", "Elephant")
	_ = animals.AddInstance("Clyde", "RoyalElephant")

	colors := hrdb.NewHierarchy("Color")
	_ = colors.AddInstance("Grey")
	_ = colors.AddInstance("White")

	color := hrdb.NewRelation("Color", hrdb.MustSchema(
		hrdb.Attribute{Name: "Animal", Domain: animals},
		hrdb.Attribute{Name: "Color", Domain: colors}))
	_ = color.Assert("Elephant", "Grey")
	_ = color.Deny("RoyalElephant", "Grey")

	v, _ := color.Evaluate(hrdb.Item{"Clyde", "Grey"})
	fmt.Println(v.Value)
	for _, t := range v.Binders {
		fmt.Println("because:", t)
	}
	// Output:
	// false
	// because: - (RoyalElephant, Grey)
}

// ExampleRelation_Consolidate shows the paper's §3.3.1 operator: redundant
// tuples are removed, most general first, without changing the extension.
func ExampleRelation_Consolidate() {
	animals := hrdb.NewHierarchy("Animal")
	_ = animals.AddClass("Bird")
	_ = animals.AddInstance("Tweety", "Bird")

	flies := hrdb.NewRelation("Flies", hrdb.MustSchema(
		hrdb.Attribute{Name: "Creature", Domain: animals}))
	_ = flies.Assert("Bird")
	_ = flies.Assert("Tweety") // redundant: already implied by ∀Bird

	fmt.Println(flies.Len(), flies.Consolidate().Len())
	// Output: 2 1
}

// ExampleRelation_Explicate shows the paper's §3.3.2 operator: the compact
// relation flattens to its atomic extension.
func ExampleRelation_Explicate() {
	animals := hrdb.NewHierarchy("Animal")
	_ = animals.AddClass("Bird")
	_ = animals.AddInstance("Tweety", "Bird")
	_ = animals.AddInstance("Robin", "Bird")

	flies := hrdb.NewRelation("Flies", hrdb.MustSchema(
		hrdb.Attribute{Name: "Creature", Domain: animals}))
	_ = flies.Assert("Bird")

	flat, _ := flies.Explicate()
	for _, t := range flat.Tuples() {
		fmt.Println(t)
	}
	// Output:
	// + (Robin)
	// + (Tweety)
}

// ExampleSelect shows a selection that keeps exception structure: "which
// creatures under Penguin fly?"
func ExampleSelect() {
	animals := hrdb.NewHierarchy("Animal")
	_ = animals.AddClass("Bird")
	_ = animals.AddClass("Penguin", "Bird")
	_ = animals.AddClass("AFP", "Penguin")
	_ = animals.AddInstance("Paul", "Penguin")
	_ = animals.AddInstance("Pam", "AFP")

	flies := hrdb.NewRelation("Flies", hrdb.MustSchema(
		hrdb.Attribute{Name: "Creature", Domain: animals}))
	_ = flies.Assert("Bird")
	_ = flies.Deny("Penguin")
	_ = flies.Assert("AFP")

	sel, _ := hrdb.Select("σ", flies, hrdb.Condition{Attr: "Creature", Class: "Penguin"})
	ext, _ := sel.Extension()
	fmt.Println(ext)
	// Output: [(Pam)]
}

// ExampleNewSession shows HQL end to end, including a deduction.
func ExampleNewSession() {
	sess := hrdb.NewSession(hrdb.NewDatabase())
	out, _ := sess.Exec(`
CREATE HIERARCHY Animal;
CLASS Bird UNDER Animal;
INSTANCE Tweety UNDER Bird;
CREATE RELATION Flies (Creature: Animal);
ASSERT Flies (Bird);
RULE travelsFar(?X) IF Flies(?X);
INFER travelsFar(Tweety);
`)
	lines := out[len(out)-5:]
	fmt.Print(lines)
	// Output: true
}

// ExampleNewPartial shows existential assertions: some swan flies, but
// nobody knows which.
func ExampleNewPartial() {
	animals := hrdb.NewHierarchy("Animal")
	_ = animals.AddClass("Swan")
	_ = animals.AddInstance("Sally", "Swan")

	flies := hrdb.NewRelation("Flies", hrdb.MustSchema(
		hrdb.Attribute{Name: "Creature", Domain: animals}))
	p := hrdb.NewPartial(flies)
	_ = p.AssertSome("Swan")

	some, _ := p.HoldsSome("Swan")
	every, _ := p.HoldsEvery("Swan")
	sally, _ := p.HoldsSome("Sally")
	fmt.Println(some, every, sally)
	// Output: true unknown unknown
}
