package hrdb_test

import (
	"fmt"
	"testing"

	"hrdb"
)

// TestScenarioProductCatalog drives a realistically sized workload — the
// kind of back-end usage the paper's introduction motivates (a front end
// for a knowledge-representation or object system): a product taxonomy
// with hundreds of SKUs, category-level defaults, exceptions at
// subcategories and items, queries, algebra and durability.
func TestScenarioProductCatalog(t *testing.T) {
	db := hrdb.NewDatabase()

	// Taxonomy: 3 departments × 5 categories × 20 SKUs.
	products, err := db.CreateHierarchy("Product")
	must(t, err)
	var skus []string
	for d := 0; d < 3; d++ {
		dept := fmt.Sprintf("dept%d", d)
		must(t, products.AddClass(dept))
		for c := 0; c < 5; c++ {
			cat := fmt.Sprintf("%s_cat%d", dept, c)
			must(t, products.AddClass(cat, dept))
			for i := 0; i < 20; i++ {
				sku := fmt.Sprintf("%s_sku%02d", cat, i)
				must(t, products.AddInstance(sku, cat))
				skus = append(skus, sku)
			}
		}
	}

	status, err := db.CreateHierarchy("Status")
	must(t, err)
	must(t, status.AddInstance("available"))

	_, err = db.CreateRelation("Shippable",
		hrdb.AttrSpec{Name: "Product", Domain: "Product"},
		hrdb.AttrSpec{Name: "Status", Domain: "Status"},
	)
	must(t, err)

	// Department-level default: everything ships. Category exception:
	// dept1_cat2 is hazardous. SKU exception: one hazardous item has a
	// special permit.
	for d := 0; d < 3; d++ {
		must(t, db.Assert("Shippable", fmt.Sprintf("dept%d", d), "available"))
	}
	must(t, db.Deny("Shippable", "dept1_cat2", "available"))
	must(t, db.Assert("Shippable", "dept1_cat2_sku07", "available"))

	// 300 SKUs decided by 5 stored tuples.
	r, err := db.Relation("Shippable")
	must(t, err)
	if r.Len() != 5 {
		t.Fatalf("stored tuples = %d", r.Len())
	}
	n, err := r.ExtensionSize()
	must(t, err)
	if n != 300-20+1 {
		t.Fatalf("extension = %d, want 281", n)
	}

	// Point queries across the exception structure.
	cases := []struct {
		sku  string
		want bool
	}{
		{"dept0_cat0_sku00", true},
		{"dept1_cat2_sku00", false},
		{"dept1_cat2_sku07", true},
		{"dept2_cat4_sku19", true},
	}
	for _, c := range cases {
		got, err := db.Holds("Shippable", c.sku, "available")
		must(t, err)
		if got != c.want {
			t.Errorf("Holds(%s) = %v, want %v", c.sku, got, c.want)
		}
	}

	// Selection: the hazardous category, compactly.
	snap, err := db.Snapshot("Shippable")
	must(t, err)
	sel, err := hrdb.Select("hazard", snap, hrdb.Condition{Attr: "Product", Class: "dept1_cat2"})
	must(t, err)
	selN, err := sel.ExtensionSize()
	must(t, err)
	if selN != 1 {
		t.Fatalf("hazardous shippables = %d, want 1 (the permit)", selN)
	}

	// Consistency holds and checking is fast enough to run inline.
	if err := snap.CheckConsistency(); err != nil {
		t.Fatal(err)
	}

	// Consolidation keeps the exception structure intact.
	c := snap.Consolidate()
	if c.Len() != 5 {
		t.Fatalf("consolidated = %d (nothing was redundant)", c.Len())
	}

	// Bulk evaluation over every SKU: spot-check performance shape (no
	// assertion on time, just that it completes and counts match).
	countTrue := 0
	for _, sku := range skus {
		got, err := db.Holds("Shippable", sku, "available")
		must(t, err)
		if got {
			countTrue++
		}
	}
	if countTrue != 281 {
		t.Fatalf("bulk count = %d", countTrue)
	}
}

// TestScenarioDurableEvolution: a database evolving over three sessions
// with checkpoints between them.
func TestScenarioDurableEvolution(t *testing.T) {
	dir := t.TempDir()

	// Session 1: schema + base facts.
	s1, err := hrdb.OpenStore(dir)
	must(t, err)
	must(t, s1.CreateHierarchy("Device"))
	must(t, s1.AddClass("Device", "Sensor"))
	must(t, s1.AddClass("Device", "TempSensor", "Sensor"))
	must(t, s1.CreateRelation("Supported", hrdb.AttrSpec{Name: "Device", Domain: "Device"}))
	must(t, s1.Assert("Supported", "Sensor"))
	must(t, s1.Checkpoint())
	must(t, s1.Close())

	// Session 2: growth + an exception.
	s2, err := hrdb.OpenStore(dir)
	must(t, err)
	for i := 0; i < 50; i++ {
		must(t, s2.AddInstance("Device", fmt.Sprintf("t%02d", i), "TempSensor"))
	}
	must(t, s2.AddClass("Device", "LegacySensor", "Sensor"))
	must(t, s2.AddInstance("Device", "old1", "LegacySensor"))
	must(t, s2.Deny("Supported", "LegacySensor"))
	must(t, s2.Close())

	// Session 3: verify everything, then consolidate durably.
	s3, err := hrdb.OpenStore(dir)
	must(t, err)
	defer s3.Close()
	ok, err := s3.Database().Holds("Supported", "t42")
	must(t, err)
	if !ok {
		t.Fatal("t42 lost")
	}
	ok, err = s3.Database().Holds("Supported", "old1")
	must(t, err)
	if ok {
		t.Fatal("legacy exception lost")
	}
	r, err := s3.Database().Relation("Supported")
	must(t, err)
	n, err := r.ExtensionSize()
	must(t, err)
	if n != 50 {
		t.Fatalf("extension = %d, want 50", n)
	}
}
