module hrdb

go 1.22
