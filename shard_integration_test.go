package hrdb_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"hrdb"
)

const shardTestDDL = `CREATE HIERARCHY Animal;
CLASS Bird UNDER Animal;
CLASS Penguin UNDER Bird;
INSTANCE Tweety UNDER Bird;
INSTANCE Paul UNDER Penguin;
INSTANCE Robin UNDER Bird;
CREATE HIERARCHY Alt;
CLASS high UNDER Alt;
CLASS low UNDER Alt;
INSTANCE h1 UNDER high;
INSTANCE l1 UNDER low;
CREATE RELATION Flies (Creature: Animal);
CREATE RELATION FliesAt (Creature: Animal, Alt: Alt);`

// startShardServer boots one in-memory shard server and returns its address.
func startShardServer(t *testing.T, id, count int) string {
	t.Helper()
	target := hrdb.NewMemTarget(hrdb.NewDatabase())
	srv := hrdb.NewServer(target, hrdb.ServerOptions{Shard: hrdb.NewShardNode(target, id, count)})
	must(t, srv.Start("127.0.0.1:0"))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv.Addr()
}

// shardReference runs the same script on a single-node database, the state
// the cluster must be indistinguishable from.
func shardReference(t *testing.T, scripts ...string) *hrdb.Database {
	t.Helper()
	db := hrdb.NewDatabase()
	sess := hrdb.NewSession(db)
	for _, s := range scripts {
		if _, err := sess.Exec(s); err != nil {
			t.Fatalf("reference script: %v", err)
		}
	}
	return db
}

// TestShardClusterEndToEnd drives a 3-shard cluster through the public
// facade over real TCP servers: broadcast DDL, keyed and global writes, a
// cross-shard transaction, scatter-gather reads, coordinator-side algebra,
// and a fingerprint comparison against a single-node reference.
func TestShardClusterEndToEnd(t *testing.T) {
	addrs := []string{
		startShardServer(t, 0, 3),
		startShardServer(t, 1, 3),
		startShardServer(t, 2, 3),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cluster, err := hrdb.DialCluster(ctx, addrs)
	must(t, err)
	defer cluster.Close()
	if cluster.ShardCount() != 3 {
		t.Fatalf("shard count %d", cluster.ShardCount())
	}

	writes := `ASSERT Flies (Bird);
DENY Flies (Penguin);
ASSERT FliesAt (Tweety, h1);
BEGIN;
ASSERT FliesAt (Robin, l1);
ASSERT FliesAt (Paul, l1);
ASSERT Flies (Robin);
COMMIT;`
	_, err = cluster.Exec(ctx, shardTestDDL)
	must(t, err)
	_, err = cluster.Exec(ctx, writes)
	must(t, err)

	refDB := shardReference(t, shardTestDDL, writes)
	refSess := hrdb.NewSession(refDB)
	for _, q := range []string{
		"HOLDS Flies (Tweety);",
		"HOLDS Flies (Paul);",
		"SELECT FROM FliesAt WHERE Alt UNDER low;",
		"SELECT FROM Flies WHERE Creature UNDER Bird;",
		"EXTENSION Flies;",
		"COUNT FliesAt BY (Alt);",
		"PROJECT FliesAt ON (Creature) AS AnyAlt;",
		"JOIN Flies AnyAlt AS J;",
		"SHOW RELATION J;",
	} {
		got, err := cluster.Exec(ctx, q)
		must(t, err)
		want, err := refSess.Exec(q)
		must(t, err)
		if got != want {
			t.Fatalf("query %q diverges\ncluster:\n%s\nreference:\n%s", q, got, want)
		}
	}

	fp, err := cluster.Fingerprint(ctx)
	must(t, err)
	if want := hrdb.Fingerprint(refDB); fp != want {
		t.Fatalf("cluster fingerprint %s != reference %s", fp, want)
	}
}

// TestDialClusterRejectsMisorderedAddrs proves placement cannot be corrupted
// by listing shard addresses in the wrong order: every connection's SHARDMAP
// answer is checked against its position at dial time.
func TestDialClusterRejectsMisorderedAddrs(t *testing.T) {
	a0 := startShardServer(t, 0, 2)
	a1 := startShardServer(t, 1, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, err := hrdb.DialCluster(ctx, []string{a1, a0}); err == nil {
		t.Fatal("swapped shard addresses must fail the dial")
	}
	// And a count mismatch (a 2-shard server dialed as a 1-shard cluster).
	if _, err := hrdb.DialCluster(ctx, []string{a0}); err == nil {
		t.Fatal("wrong cluster size must fail the dial")
	}
	c, err := hrdb.DialCluster(ctx, []string{a0, a1})
	must(t, err)
	c.Close()
}

// TestShardClusterScatterSever severs a shard's TCP stream mid-response
// during scatter-gather reads; shard operations are idempotent, so the
// client retries on a fresh connection and the query still answers exactly.
func TestShardClusterScatterSever(t *testing.T) {
	addrs := []string{
		startShardServer(t, 0, 3),
		startShardServer(t, 1, 3),
		startShardServer(t, 2, 3),
	}
	proxy, err := hrdb.NewChaosProxy(addrs[0])
	must(t, err)
	defer proxy.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cluster, err := hrdb.DialCluster(ctx, []string{proxy.Addr(), addrs[1], addrs[2]})
	must(t, err)
	defer cluster.Close()

	writes := "ASSERT Flies (Bird);\nDENY Flies (Penguin);\nASSERT FliesAt (Tweety, h1);\nASSERT FliesAt (Robin, l1);"
	_, err = cluster.Exec(ctx, shardTestDDL)
	must(t, err)
	_, err = cluster.Exec(ctx, writes)
	must(t, err)
	refSess := hrdb.NewSession(shardReference(t, shardTestDDL, writes))
	want, err := refSess.Exec("SELECT FROM FliesAt WHERE Creature UNDER Bird;")
	must(t, err)

	for i := 0; i < 5; i++ {
		// Cut the response stream after a handful of bytes: the in-flight
		// scatter leg dies mid-payload and must be retried transparently.
		proxy.SeverResponseAfter(8)
		got, err := cluster.Exec(ctx, "SELECT FROM FliesAt WHERE Creature UNDER Bird;")
		must(t, err)
		if got != want {
			t.Fatalf("round %d: severed scatter diverges\ngot:\n%s\nwant:\n%s", i, got, want)
		}
	}
}

// TestShardClusterFailover rides a shard primary's death: shard 1 is a
// replica set (durable primary + in-memory replica); after the primary is
// killed and the replica promoted, the coordinator's Router rediscovers the
// new primary and both reads and cross-shard 2PC transactions keep working,
// with no committed data lost.
func TestShardClusterFailover(t *testing.T) {
	a0 := startShardServer(t, 0, 3)
	a2 := startShardServer(t, 2, 3)

	// Shard 1: durable primary with a replication listener…
	store, err := hrdb.OpenStore(t.TempDir())
	must(t, err)
	primarySrv := hrdb.NewServer(store, hrdb.ServerOptions{
		CloseTarget: true,
		Shard:       hrdb.NewShardNode(store, 1, 3),
	})
	must(t, primarySrv.Start("127.0.0.1:0"))
	primary := hrdb.NewPrimary(store, hrdb.PrimaryOptions{HeartbeatInterval: 10 * time.Millisecond})
	replSrv := hrdb.NewServer(store, hrdb.ServerOptions{Repl: primary})
	must(t, replSrv.Start("127.0.0.1:0"))

	// …and an in-memory replica that can take over, itself a shard node.
	replica := hrdb.NewReplica(replSrv.Addr(), hrdb.ReplicaOptions{
		ReconnectBackoff: 10 * time.Millisecond,
	})
	defer replica.Close()
	replicaTarget := hrdb.ReplicaTarget{R: replica}
	replicaSrv := hrdb.NewServer(replicaTarget, hrdb.ServerOptions{
		Shard: hrdb.NewShardNode(replicaTarget, 1, 3),
		LagProbe: func() hrdb.LagInfo {
			st := replica.Status()
			return hrdb.LagInfo{
				Staleness: st.Staleness, Epoch: st.Epoch, Offset: st.Offset,
				State: st.State, Term: st.Term, ID: st.ID, Source: st.Source,
			}
		},
		Promote: replica.Promote,
	})
	must(t, replicaSrv.Start("127.0.0.1:0"))
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		replicaSrv.Shutdown(ctx)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Writes may be retried across the failover (their loss window is the
	// reason WithRetryNonIdempotent exists); 2PC ops re-route regardless.
	cluster, err := hrdb.DialCluster(ctx,
		[]string{a0, primarySrv.Addr() + "," + replicaSrv.Addr(), a2},
		hrdb.WithRetryNonIdempotent(true),
		hrdb.WithLagProbeInterval(0))
	must(t, err)
	defer cluster.Close()

	committed := `ASSERT Flies (Bird);
BEGIN;
ASSERT FliesAt (Tweety, h1);
ASSERT FliesAt (Robin, l1);
ASSERT FliesAt (Paul, l1);
COMMIT;`
	_, err = cluster.Exec(ctx, shardTestDDL)
	must(t, err)
	_, err = cluster.Exec(ctx, committed)
	must(t, err)

	// The replica must hold everything committed before the primary dies.
	deadline := time.Now().Add(10 * time.Second)
	for hrdb.Fingerprint(replica.Database()) != hrdb.Fingerprint(store.Database()) {
		if time.Now().After(deadline) {
			t.Fatal("shard replica never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill shard 1's primary and promote the replica (manual failover).
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	replSrv.Shutdown(shutCtx)
	primarySrv.Shutdown(shutCtx)
	shutCancel()
	promoteCli, err := hrdb.Dial(replicaSrv.Addr())
	must(t, err)
	must(t, promoteCli.Promote(ctx))
	promoteCli.Close()

	// Committed data survives, served through the rediscovered primary.
	out, err := cluster.Exec(ctx, "HOLDS FliesAt (Paul, l1);")
	must(t, err)
	if !strings.Contains(out, "true") {
		t.Fatalf("pre-failover commit lost: %q", out)
	}

	// And new cross-shard transactions commit against the promoted replica.
	post := "BEGIN;\nASSERT FliesAt (Tweety, l1);\nASSERT Flies (Robin);\nCOMMIT;"
	_, err = cluster.Exec(ctx, post)
	must(t, err)

	refDB := shardReference(t, shardTestDDL, committed, post)
	fp, err := cluster.Fingerprint(ctx)
	must(t, err)
	if want := hrdb.Fingerprint(refDB); fp != want {
		t.Fatalf("post-failover fingerprint %s != reference %s", fp, want)
	}
}
