package hrdb_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hrdb"
)

// obsGateTarget parks mutations on a gate so the server's worker pool and
// admission queue can be saturated deterministically; reads pass through.
type obsGateTarget struct {
	hrdb.Target
	gate    chan struct{}
	waiting atomic.Int64
}

func (g *obsGateTarget) Assert(rel string, values ...string) error {
	g.waiting.Add(1)
	defer g.waiting.Add(-1)
	<-g.gate
	return g.Target.Assert(rel, values...)
}

// promValue extracts an unlabeled series value from Prometheus text.
func promValue(text, name string) (uint64, bool) {
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseUint(fields[1], 10, 64)
			return v, err == nil
		}
	}
	return 0, false
}

// TestMetricsEndpointUnderLoad is the acceptance test for the observability
// layer: a server run with a metrics endpoint, flooded past its admission
// capacity, must expose Prometheus text over HTTP in which the shed counter
// and the request-latency histogram have provably moved.
func TestMetricsEndpointUnderLoad(t *testing.T) {
	db := hrdb.NewDatabase()
	if _, err := hrdb.NewSession(db).Exec(`
		CREATE HIERARCHY Animal;
		CLASS Bird IN Animal;
		CREATE RELATION Flies (Creature: Animal);
		ASSERT Flies (Bird);
	`); err != nil {
		t.Fatalf("fixture: %v", err)
	}
	gate := &obsGateTarget{Target: hrdb.NewMemTarget(db), gate: make(chan struct{})}

	const workers, queue = 1, 1
	capacity := workers + queue
	srv := hrdb.NewServer(gate, hrdb.ServerOptions{
		Workers:     workers,
		QueueDepth:  queue,
		MaxConns:    64,
		MaxDeadline: -1, // the gated Assert ignores ctx
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	ms, err := hrdb.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeMetrics: %v", err)
	}
	defer ms.Close()

	shed0 := hrdb.Metrics().Counters["hrdb_server_shed_total"]

	var wg sync.WaitGroup
	results := make(chan error, 4*capacity)
	launch := func(n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := hrdb.Dial(srv.Addr(), hrdb.WithMaxRetries(0))
				if err != nil {
					results <- err
					return
				}
				defer c.Close()
				_, err = c.Exec(context.Background(), "ASSERT Flies (Bird);")
				results <- err
			}()
		}
	}
	// Saturate deterministically: park the worker, then fill the queue,
	// then flood. Every flood request must be shed.
	launch(workers)
	deadline := time.Now().Add(5 * time.Second)
	for gate.waiting.Load() < int64(workers) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d statements parked", gate.waiting.Load())
		}
		time.Sleep(time.Millisecond)
	}
	launch(queue)
	time.Sleep(100 * time.Millisecond)
	flood := 3 * capacity
	launch(flood)
	for i := 0; i < flood; i++ {
		if err := <-results; !errors.Is(err, hrdb.ErrOverloaded) {
			t.Fatalf("flood request %d: got %v, want ErrOverloaded", i, err)
		}
	}

	// Scrape the endpoint while the server is still saturated.
	url := fmt.Sprintf("http://%s/metrics", ms.Addr())
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	text := string(body)

	shed, ok := promValue(text, "hrdb_server_shed_total")
	if !ok {
		t.Fatalf("hrdb_server_shed_total missing from scrape:\n%s", text)
	}
	if shed < shed0+uint64(flood) {
		t.Errorf("scraped shed_total = %d, want ≥ %d", shed, shed0+uint64(flood))
	}
	if n, ok := promValue(text, "hrdb_server_request_duration_ns_count"); !ok || n == 0 {
		t.Errorf("request-duration histogram count = %d (present=%v), want > 0", n, ok)
	}
	// Series from every instrumented layer are registered the moment the
	// facade is linked in — the scrape must carry them all.
	for _, series := range []string{
		"hrdb_core_cache_hits_total",
		"hrdb_storage_wal_records_total",
		"hrdb_hql_statements_total",
		"hrdb_server_active_conns",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("scrape missing %s", series)
		}
	}

	// The facade snapshot agrees with the wire exposition.
	if snap := hrdb.Metrics().Counters["hrdb_server_shed_total"]; snap < shed0+uint64(flood) {
		t.Errorf("Metrics() shed_total = %d, want ≥ %d", snap, shed0+uint64(flood))
	}

	close(gate.gate) // release: every admitted request completes
	for i := 0; i < capacity; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
	}
	wg.Wait()

	// The pprof surface rides on the same endpoint.
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", ms.Addr()))
	if err != nil {
		t.Fatalf("GET pprof: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof status = %d", resp.StatusCode)
	}
}
