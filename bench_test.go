// Benchmarks regenerating the paper's figures (F1–F11) and the performance
// experiments (E1–E7) of EXPERIMENTS.md via testing.B. The hrbench command
// prints the same experiments as human-readable tables.
package hrdb

import (
	"context"
	"fmt"
	"testing"

	"hrdb/internal/algebra"
	"hrdb/internal/core"
	"hrdb/internal/mining"
	"hrdb/internal/workload"
)

// ---- figure fixtures -------------------------------------------------------

func benchAnimals(b *testing.B) *Hierarchy {
	b.Helper()
	h := NewHierarchy("Animal")
	steps := []error{
		h.AddClass("Bird"),
		h.AddClass("Canary", "Bird"),
		h.AddInstance("Tweety", "Canary"),
		h.AddClass("Penguin", "Bird"),
		h.AddClass("GalapagosPenguin", "Penguin"),
		h.AddClass("AmazingFlyingPenguin", "Penguin"),
		h.AddInstance("Paul", "GalapagosPenguin"),
		h.AddInstance("Patricia", "GalapagosPenguin", "AmazingFlyingPenguin"),
		h.AddInstance("Pamela", "AmazingFlyingPenguin"),
		h.AddInstance("Peter", "AmazingFlyingPenguin"),
	}
	for _, err := range steps {
		if err != nil {
			b.Fatal(err)
		}
	}
	return h
}

func benchFlies(b *testing.B) *Relation {
	b.Helper()
	h := benchAnimals(b)
	r := NewRelation("Flies", MustSchema(Attribute{Name: "Creature", Domain: h}))
	for _, err := range []error{
		r.Assert("Bird"), r.Deny("Penguin"), r.Assert("AmazingFlyingPenguin"), r.Assert("Peter"),
	} {
		if err != nil {
			b.Fatal(err)
		}
	}
	return r
}

func benchRespects(b *testing.B) *Relation {
	b.Helper()
	s := NewHierarchy("Student")
	te := NewHierarchy("Teacher")
	for _, err := range []error{
		s.AddClass("ObsequiousStudent"),
		s.AddInstance("John", "ObsequiousStudent"),
		te.AddClass("IncoherentTeacher"),
		te.AddInstance("Fagin", "IncoherentTeacher"),
	} {
		if err != nil {
			b.Fatal(err)
		}
	}
	r := NewRelation("Respects", MustSchema(
		Attribute{Name: "Student", Domain: s},
		Attribute{Name: "Teacher", Domain: te},
	))
	for _, err := range []error{
		r.Assert("ObsequiousStudent", "Teacher"),
		r.Deny("Student", "IncoherentTeacher"),
		r.Assert("ObsequiousStudent", "IncoherentTeacher"),
	} {
		if err != nil {
			b.Fatal(err)
		}
	}
	return r
}

func benchElephants(b *testing.B) (*Hierarchy, *Relation, *Relation) {
	b.Helper()
	h := NewHierarchy("Animal")
	colors := NewHierarchy("Color")
	sizes := NewHierarchy("EnclosureSize")
	for _, err := range []error{
		h.AddClass("Elephant"),
		h.AddClass("RoyalElephant", "Elephant"),
		h.AddClass("IndianElephant", "Elephant"),
		h.AddInstance("Clyde", "RoyalElephant"),
		h.AddInstance("Appu", "RoyalElephant", "IndianElephant"),
		colors.AddInstance("Grey"), colors.AddInstance("White"), colors.AddInstance("Dappled"),
		sizes.AddInstance("3000"), sizes.AddInstance("2000"),
	} {
		if err != nil {
			b.Fatal(err)
		}
	}
	color := NewRelation("AnimalColor", MustSchema(
		Attribute{Name: "Animal", Domain: h}, Attribute{Name: "Color", Domain: colors}))
	size := NewRelation("Enclosure", MustSchema(
		Attribute{Name: "Animal", Domain: h}, Attribute{Name: "EnclosureSize", Domain: sizes}))
	for _, err := range []error{
		color.Assert("Elephant", "Grey"), color.Deny("RoyalElephant", "Grey"),
		color.Assert("RoyalElephant", "White"), color.Deny("Clyde", "White"),
		color.Assert("Clyde", "Dappled"),
		size.Assert("Elephant", "3000"), size.Deny("IndianElephant", "3000"),
		size.Assert("IndianElephant", "2000"),
	} {
		if err != nil {
			b.Fatal(err)
		}
	}
	return h, color, size
}

// ---- F benchmarks: one per paper figure -----------------------------------

// BenchmarkFig1Eval evaluates the five Figure 1 answers (inheritance with
// exceptions and exceptions to exceptions).
func BenchmarkFig1Eval(b *testing.B) {
	r := benchFlies(b)
	who := []Item{{"Tweety"}, {"Paul"}, {"Pamela"}, {"Patricia"}, {"Peter"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range who {
			if _, err := r.Evaluate(w); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig1BindingGraph constructs Patricia's tuple-binding graph.
func BenchmarkFig1BindingGraph(b *testing.B) {
	r := benchFlies(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.TupleBindingGraph(Item{"Patricia"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2ProductEval evaluates in the two-attribute product hierarchy.
func BenchmarkFig2ProductEval(b *testing.B) {
	r := benchRespects(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Evaluate(Item{"John", "Fagin"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3ConsistencyCheck runs the ambiguity-constraint checker on the
// resolved Respects relation.
func BenchmarkFig3ConsistencyCheck(b *testing.B) {
	r := benchRespects(b)
	for i := 0; i < b.N; i++ {
		if err := r.CheckConsistency(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4AppuQuery answers the Appu color query.
func BenchmarkFig4AppuQuery(b *testing.B) {
	_, color, _ := benchElephants(b)
	for i := 0; i < b.N; i++ {
		if _, err := color.Evaluate(Item{"Appu", "White"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5RedundancyCheck detects that C's tuple is not redundant.
func BenchmarkFig5RedundancyCheck(b *testing.B) {
	h := NewHierarchy("D")
	for _, err := range []error{
		h.AddClass("A"), h.AddClass("B"), h.AddClass("C"),
		h.AddInstance("c1", "A", "C"), h.AddInstance("c2", "B", "C"),
	} {
		if err != nil {
			b.Fatal(err)
		}
	}
	r := NewRelation("R", MustSchema(Attribute{Name: "X", Domain: h}))
	for _, err := range []error{r.Assert("A"), r.Assert("B"), r.Assert("C")} {
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := r.Consolidate().Len(); got != 3 {
			b.Fatalf("C lost: %d", got)
		}
	}
}

// BenchmarkFig6Consolidate consolidates Respects down to one tuple.
func BenchmarkFig6Consolidate(b *testing.B) {
	r := benchRespects(b)
	for i := 0; i < b.N; i++ {
		if got := r.Consolidate().Len(); got != 1 {
			b.Fatalf("len = %d", got)
		}
	}
}

// BenchmarkFig7Selection runs the obsequious-students selection.
func BenchmarkFig7Selection(b *testing.B) {
	r := benchRespects(b)
	for i := 0; i < b.N; i++ {
		if _, err := Select("σ", r, Condition{Attr: "Student", Class: "ObsequiousStudent"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8InstanceSelection runs the John selection.
func BenchmarkFig8InstanceSelection(b *testing.B) {
	r := benchRespects(b)
	for i := 0; i < b.N; i++ {
		if _, err := Select("σ", r, Condition{Attr: "Student", Class: "John"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Justification evaluates with full justification.
func BenchmarkFig9Justification(b *testing.B) {
	_, color, _ := benchElephants(b)
	for i := 0; i < b.N; i++ {
		v, err := color.Evaluate(Item{"Clyde", "Grey"})
		if err != nil {
			b.Fatal(err)
		}
		if len(v.Applicable) != 2 {
			b.Fatal("justification wrong")
		}
	}
}

// BenchmarkFig10SetOps runs union, intersection and difference of the two
// Loves relations.
func BenchmarkFig10SetOps(b *testing.B) {
	h := benchAnimals(b)
	schema := MustSchema(Attribute{Name: "Creature", Domain: h})
	jack := NewRelation("Jack", schema)
	jill := NewRelation("Jill", schema)
	for _, err := range []error{
		jack.Assert("Bird"), jack.Deny("Penguin"), jack.Assert("Peter"), jill.Assert("Bird"),
	} {
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Union("U", jack, jill); err != nil {
			b.Fatal(err)
		}
		if _, err := Intersect("I", jack, jill); err != nil {
			b.Fatal(err)
		}
		if _, err := Difference("D", jill, jack); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11JoinProject joins enclosure sizes with colors and projects
// back.
func BenchmarkFig11JoinProject(b *testing.B) {
	_, color, size := benchElephants(b)
	for i := 0; i < b.N; i++ {
		j, err := Join("J", size, color)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Project("P", j, "Animal", "Color"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendixOnPath evaluates Patricia under on-path preemption (the
// explicit product-graph elimination path).
func BenchmarkAppendixOnPath(b *testing.B) {
	r := benchFlies(b)
	r.SetMode(OnPath)
	for i := 0; i < b.N; i++ {
		// Pamela: on-path still resolves (every Penguin path passes AFP).
		if _, err := r.Evaluate(Item{"Pamela"}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E benchmarks: the performance experiments ----------------------------

// BenchmarkStorageSweep (E1): building the compact relation vs explicating
// it, at increasing fan-out.
func BenchmarkStorageSweep(b *testing.B) {
	for _, fanout := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			h, err := workload.Taxonomy("D", 10, fanout)
			if err != nil {
				b.Fatal(err)
			}
			r, err := workload.ClassRelation("R", h, 10)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				flat, err := r.Explicate()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(flat.Len())/float64(r.Len()), "rows/tuple")
			}
		})
	}
}

// BenchmarkEvalVsMembershipJoin (E2): hierarchical evaluation vs the
// footnote-1 repeated-join baseline, by depth.
func BenchmarkEvalVsMembershipJoin(b *testing.B) {
	for _, depth := range []int{2, 4, 8, 16} {
		h, err := workload.Chain("D", depth, 8)
		if err != nil {
			b.Fatal(err)
		}
		r, err := workload.ExceptionChain("R", h, depth)
		if err != nil {
			b.Fatal(err)
		}
		mb := workload.MembershipBaseline(h, r)
		depthOf := workload.DepthFunc(h)
		item := core.Item{"leafInstance"}

		b.Run(fmt.Sprintf("hier/depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := r.Evaluate(item); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("joins/depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mb.Holds([]string{"X"}, []string{"leafInstance"}, depthOf)
			}
		})
	}
}

// BenchmarkConsolidate (E3): consolidation cost by size.
func BenchmarkConsolidate(b *testing.B) {
	for _, p := range []struct{ classes, redundant int }{{10, 10}, {20, 20}, {40, 40}} {
		b.Run(fmt.Sprintf("tuples=%d", p.classes*(p.redundant+1)), func(b *testing.B) {
			h, err := workload.Taxonomy("D", p.classes, p.redundant+1)
			if err != nil {
				b.Fatal(err)
			}
			r, err := workload.RedundantRelation("R", h, p.classes, p.redundant)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := r.Consolidate().Len(); got != p.classes {
					b.Fatalf("len = %d", got)
				}
			}
		})
	}
}

// BenchmarkExplicate (E4): explication cost by extension size.
func BenchmarkExplicate(b *testing.B) {
	for _, fanout := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("extension=%d", 10*fanout), func(b *testing.B) {
			h, err := workload.Taxonomy("D", 10, fanout)
			if err != nil {
				b.Fatal(err)
			}
			r, err := workload.ClassRelation("R", h, 10)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Explicate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlgebraUnion (E5): union of random consistent relations.
func BenchmarkAlgebraUnion(b *testing.B) {
	for _, tuples := range []int{5, 10, 20} {
		b.Run(fmt.Sprintf("tuples=%d", tuples), func(b *testing.B) {
			a, err := workload.RandomConsistent(int64(tuples), "A", 30, tuples)
			if err != nil {
				b.Fatal(err)
			}
			c := a.Clone()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := algebra.Union("U", a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConsistencyCheck (E6): the pairwise ambiguity checker.
func BenchmarkConsistencyCheck(b *testing.B) {
	for _, p := range []struct{ nodes, tuples int }{{20, 10}, {40, 20}, {80, 40}} {
		b.Run(fmt.Sprintf("tuples=%d", p.tuples), func(b *testing.B) {
			r, err := workload.RandomConsistent(int64(p.nodes), "R", p.nodes, p.tuples)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.CheckConsistency(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMining (E7): hierarchy discovery on clustered flat data.
func BenchmarkMining(b *testing.B) {
	for _, p := range []struct{ groups, members, contexts int }{{5, 10, 4}, {10, 20, 5}} {
		rows := p.groups * p.members * p.contexts
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			r := workload.ClusteredFlat("R", p.groups, p.members, p.contexts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := mining.Mine(r, 0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.CompressionRatio(), "compression")
			}
		})
	}
}

// BenchmarkEvaluateBatch (E9): bulk evaluation of every atomic item of a
// taxonomy relation — the sequential seed path (one worker, cache off)
// against the worker pool and against a warm verdict cache.
func BenchmarkEvaluateBatch(b *testing.B) {
	h, err := workload.Taxonomy("D", 20, 100)
	if err != nil {
		b.Fatal(err)
	}
	r, err := workload.ClassRelation("R", h, 20)
	if err != nil {
		b.Fatal(err)
	}
	atoms, err := r.AtomicItems()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.EvaluateBatch(ctx, atoms, WithParallelism(1), WithCache(false)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.EvaluateBatch(ctx, atoms, WithCache(false)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		if _, err := r.EvaluateBatch(ctx, atoms); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.EvaluateBatch(ctx, atoms); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHoldsCached: repeated point queries with and without the verdict
// cache — the steady-state read path a query workload actually sees.
func BenchmarkHoldsCached(b *testing.B) {
	h, err := workload.Taxonomy("D", 100, 20)
	if err != nil {
		b.Fatal(err)
	}
	r, err := workload.ClassRelation("R", h, 100)
	if err != nil {
		b.Fatal(err)
	}
	const who = "c0050_i00007"
	b.Run("cold", func(b *testing.B) {
		r2 := r.Clone()
		r2.SetCache(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r2.Holds(who); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		if _, err := r.Holds(who); err != nil { // warm
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Holds(who); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLargeScale exercises a 10k-instance taxonomy with 500 class
// tuples: point evaluation, consistency checking and selection at a scale
// a real front end would produce.
func BenchmarkLargeScale(b *testing.B) {
	h, err := workload.Taxonomy("D", 500, 20) // 500 classes × 20 instances
	if err != nil {
		b.Fatal(err)
	}
	r, err := workload.ClassRelation("R", h, 500)
	if err != nil {
		b.Fatal(err)
	}
	item := core.Item{"c0250_i00007"}
	b.Run("eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.Evaluate(item); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("consistency", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := r.CheckConsistency(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("select", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Select("σ", r, Condition{Attr: "X", Class: "class0250"}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHQL measures query-language round trips: parse + plan + execute
// for a point query and for a selection.
func BenchmarkHQL(b *testing.B) {
	sess := NewSession(NewDatabase())
	if _, err := sess.Exec(`
CREATE HIERARCHY Animal;
CLASS Bird UNDER Animal;
CLASS Penguin UNDER Bird;
CLASS AFP UNDER Penguin;
INSTANCE Tweety UNDER Bird;
INSTANCE Paul UNDER Penguin;
INSTANCE Pamela UNDER AFP;
CREATE RELATION Flies (Creature: Animal);
ASSERT Flies (Bird);
DENY Flies (Penguin);
ASSERT Flies (AFP);
`); err != nil {
		b.Fatal(err)
	}
	b.Run("holds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sess.Exec("HOLDS Flies (Pamela);"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("select", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sess.Exec("SELECT FROM Flies WHERE Creature UNDER Penguin;"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("infer", func(b *testing.B) {
		if _, err := sess.Exec("RULE travelsFar(?X) IF Flies(?X);"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Exec("INFER travelsFar(Tweety);"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWALAppend measures the durable write path (fsync per record).
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	if err := store.CreateHierarchy("D"); err != nil {
		b.Fatal(err)
	}
	if err := store.AddClass("D", "C"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := store.AddInstance("D", fmt.Sprintf("i%04d", i), "C"); err != nil {
			b.Fatal(err)
		}
	}
	if err := store.CreateRelation("R", AttrSpec{Name: "X", Domain: "D"}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		item := fmt.Sprintf("i%04d", i%64)
		if err := store.Assert("R", item); err != nil {
			b.Fatal(err)
		}
		if err := store.Retract("R", item); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecovery measures reopening a store with a populated WAL.
func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	if err := store.CreateHierarchy("D"); err != nil {
		b.Fatal(err)
	}
	if err := store.AddClass("D", "C"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := store.AddInstance("D", fmt.Sprintf("i%04d", i), "C"); err != nil {
			b.Fatal(err)
		}
	}
	if err := store.CreateRelation("R", AttrSpec{Name: "X", Domain: "D"}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := store.Assert("R", fmt.Sprintf("i%04d", i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, err := OpenStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		if err := s2.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointAndSnapshotLoad measures snapshotting vs WAL replay.
func BenchmarkCheckpointAndSnapshotLoad(b *testing.B) {
	dir := b.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	if err := store.CreateHierarchy("D"); err != nil {
		b.Fatal(err)
	}
	if err := store.AddClass("D", "C"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := store.AddInstance("D", fmt.Sprintf("i%04d", i), "C"); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("checkpoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := store.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s2, err := OpenStore(dir)
			if err != nil {
				b.Fatal(err)
			}
			if err := s2.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationIndexVsScan measures the first-attribute tuple index
// against the full scan for Applicable on a wide taxonomy: the index probes
// only the ancestor buckets of the query coordinate.
func BenchmarkAblationIndexVsScan(b *testing.B) {
	h, err := workload.Taxonomy("D", 200, 5)
	if err != nil {
		b.Fatal(err)
	}
	r, err := workload.ClassRelation("R", h, 200)
	if err != nil {
		b.Fatal(err)
	}
	item := core.Item{"c0100_i00002"}
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := r.Applicable(item); len(got) != 1 {
				b.Fatalf("applicable = %d", len(got))
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		// Index-free reference: scan every tuple (what Applicable did
		// before the index existed), via the public API.
		tuples := r.Tuples()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			for _, t := range tuples {
				if r.Subsumes(t.Item, item) {
					n++
				}
			}
			if n != 1 {
				b.Fatalf("applicable = %d", n)
			}
		}
	})
}

// BenchmarkAblationFastPathVsElimination compares the two off-path binder
// computations DESIGN.md calls out: the minimal-applicable fast path vs the
// literal product-graph node elimination.
func BenchmarkAblationFastPathVsElimination(b *testing.B) {
	r := benchFlies(b)
	item := core.Item{"Pamela"} // resolves identically under both paths
	b.Run("fastpath", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.Evaluate(item); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("elimination", func(b *testing.B) {
		// Force the explicit product-graph construction via on-path mode
		// (off-path and on-path agree at Pamela).
		r2 := r.Clone()
		r2.SetMode(core.OnPath)
		for i := 0; i < b.N; i++ {
			if _, err := r2.Evaluate(item); err != nil {
				b.Fatal(err)
			}
		}
	})
}
