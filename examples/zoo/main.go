// Command zoo reproduces the paper's elephant examples (Figures 4, 9 and
// 11): explicit cancellation of inherited properties, query justification,
// and the join/projection round trip with no loss of information.
package main

import (
	"fmt"
	"log"

	"hrdb"
)

func main() {
	// Figure 4's hierarchy: Clyde is a royal elephant; Appu is both royal
	// and Indian.
	animals := hrdb.NewHierarchy("Animal")
	check(animals.AddClass("Elephant"))
	check(animals.AddClass("RoyalElephant", "Elephant"))
	check(animals.AddClass("AfricanElephant", "Elephant"))
	check(animals.AddClass("IndianElephant", "Elephant"))
	check(animals.AddInstance("Clyde", "RoyalElephant"))
	check(animals.AddInstance("Appu", "RoyalElephant", "IndianElephant"))

	colors := hrdb.NewHierarchy("Color")
	for _, c := range []string{"Grey", "White", "Dappled"} {
		check(colors.AddInstance(c))
	}
	sizes := hrdb.NewHierarchy("EnclosureSize")
	for _, s := range []string{"3000", "2000"} {
		check(sizes.AddInstance(s))
	}

	// Figure 4's Animal–Color relation: saying elephants are grey and
	// royal elephants white is not enough — explicit cancellations are
	// required ("royal elephants are not grey but white").
	color := hrdb.NewRelation("AnimalColor", hrdb.MustSchema(
		hrdb.Attribute{Name: "Animal", Domain: animals},
		hrdb.Attribute{Name: "Color", Domain: colors},
	))
	check(color.Assert("Elephant", "Grey"))
	check(color.Deny("RoyalElephant", "Grey"))
	check(color.Assert("RoyalElephant", "White"))
	check(color.Deny("Clyde", "White"))
	check(color.Assert("Clyde", "Dappled"))
	fmt.Println(color.Table())

	// The Appu query: royal elephant binds more strongly than elephant, so
	// Appu is white; his Indian membership is irrelevant to color.
	for _, q := range [][2]string{{"Appu", "White"}, {"Appu", "Grey"}, {"Clyde", "Dappled"}} {
		ok, err := color.Holds(q[0], q[1])
		check(err)
		fmt.Printf("Is %s %s? %v\n", q[0], q[1], ok)
	}

	// Figure 9: a selection with its justification.
	v, err := color.Evaluate(hrdb.Item{"Clyde", "Grey"})
	check(err)
	fmt.Printf("\nIs Clyde grey? %v\n", v.Value)
	fmt.Println("Justification (applicable tuples):")
	for _, t := range v.Applicable {
		fmt.Printf("  %s\n", t)
	}

	// Figure 11a: enclosure sizes, with Indian elephants an exception.
	size := hrdb.NewRelation("Enclosure", hrdb.MustSchema(
		hrdb.Attribute{Name: "Animal", Domain: animals},
		hrdb.Attribute{Name: "EnclosureSize", Domain: sizes},
	))
	check(size.Assert("Elephant", "3000"))
	check(size.Deny("IndianElephant", "3000"))
	check(size.Assert("IndianElephant", "2000"))
	fmt.Println()
	fmt.Println(size.Table())

	// Figure 11b: the natural join over Animal.
	joined, err := hrdb.Join("Enclosure ⋈ AnimalColor", size, color)
	check(err)
	fmt.Println(joined.Consolidate().Table())

	// Figure 11c: projecting back onto Animal–Color loses nothing.
	back, err := hrdb.Project("π(Animal, Color)", joined, "Animal", "Color")
	check(err)
	extBack, err := back.Extension()
	check(err)
	extOrig, err := color.Extension()
	check(err)
	fmt.Printf("projection back: %d atoms, original: %d atoms — no loss of information: %v\n",
		len(extBack), len(extOrig), fmt.Sprint(extBack) == fmt.Sprint(extOrig))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
