// Command university reproduces the paper's student/teacher running example
// (Figures 2, 3, 6, 7 and 8): the Respects relation, its multiple-attribute
// conflict, transactional resolution, consolidation, and selections —
// through the database layer with integrity enforcement.
package main

import (
	"fmt"
	"log"

	"hrdb"
)

func main() {
	db := hrdb.NewDatabase()

	// Figure 2a/2b: the student and teacher hierarchies.
	students, err := db.CreateHierarchy("Student")
	check(err)
	check(students.AddClass("ObsequiousStudent"))
	check(students.AddInstance("John", "ObsequiousStudent"))
	check(students.AddInstance("Esther", "ObsequiousStudent"))
	check(students.AddInstance("Lazy", "Student"))

	teachers, err := db.CreateHierarchy("Teacher")
	check(err)
	check(teachers.AddClass("IncoherentTeacher"))
	check(teachers.AddInstance("Fagin", "IncoherentTeacher"))
	check(teachers.AddInstance("Hobbs", "Teacher"))

	_, err = db.CreateRelation("Respects",
		hrdb.AttrSpec{Name: "Student", Domain: "Student"},
		hrdb.AttrSpec{Name: "Teacher", Domain: "Teacher"},
	)
	check(err)

	// Figure 3, above the dashed line: obsequious students respect all
	// teachers…
	check(db.Assert("Respects", "ObsequiousStudent", "Teacher"))
	// …but no student respects an incoherent teacher. Alone, this update
	// creates an unresolved conflict (what about obsequious students and
	// incoherent teachers?) and the database rejects it.
	if err := db.Deny("Respects", "Student", "IncoherentTeacher"); err != nil {
		fmt.Printf("single update rejected:\n  %v\n\n", err)
	}

	// §3.1: package the update with its resolution in one transaction —
	// the tuple below Figure 3's dashed line.
	tx := db.Begin()
	tx.Deny("Respects", "Student", "IncoherentTeacher")
	tx.Assert("Respects", "ObsequiousStudent", "IncoherentTeacher")
	check(tx.Commit())
	fmt.Println("transaction with conflict resolution committed")

	r, err := db.Snapshot("Respects")
	check(err)
	fmt.Println()
	fmt.Println(r.Table())

	// Figure 7: who do obsequious students respect? Everyone.
	fig7, err := hrdb.Select("Fig7: obsequious students respect", r,
		hrdb.Condition{Attr: "Student", Class: "ObsequiousStudent"})
	check(err)
	fmt.Println(fig7.Consolidate().Table())

	// Figure 8: who does John respect?
	fig8, err := hrdb.Select("Fig8: John respects", r,
		hrdb.Condition{Attr: "Student", Class: "John"})
	check(err)
	fmt.Println(fig8.Consolidate().Table())

	// Lazy is not obsequious: respects no incoherent teacher.
	ok, err := db.Holds("Respects", "Lazy", "Fagin")
	check(err)
	fmt.Printf("Does Lazy respect Fagin? %v\n", ok)
	ok, err = db.Holds("Respects", "John", "Fagin")
	check(err)
	fmt.Printf("Does John respect Fagin? %v\n\n", ok)

	// Figure 6: consolidation discovers that with all three tuples in
	// place, first the negation and then the resolving tuple are redundant.
	removed, err := db.Consolidate("Respects")
	check(err)
	c, err := db.Snapshot("Respects")
	check(err)
	fmt.Printf("consolidation removed %d tuples:\n\n%s", removed, c.Table())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
