// Command reasoner demonstrates the deductive layer §2.1 of the paper
// sketches: Datalog rules over hierarchical relations. The paper's own
// example — "Tweety can travel far since flying things can travel far" —
// cannot be inferred from the taxonomy alone (FLYING-THINGS is an
// association, not a class), but one rule over the hierarchical Flies
// relation recovers it, exceptions included.
package main

import (
	"fmt"
	"log"

	"hrdb"
)

func main() {
	// Figure 1's taxonomy and Flies relation.
	animals := hrdb.NewHierarchy("Animal")
	check(animals.AddClass("Bird"))
	check(animals.AddClass("Canary", "Bird"))
	check(animals.AddInstance("Tweety", "Canary"))
	check(animals.AddClass("Penguin", "Bird"))
	check(animals.AddInstance("Paul", "Penguin"))
	check(animals.AddClass("AmazingFlyingPenguin", "Penguin"))
	check(animals.AddInstance("Pamela", "AmazingFlyingPenguin"))

	flies := hrdb.NewRelation("flies", hrdb.MustSchema(
		hrdb.Attribute{Name: "Creature", Domain: animals}))
	check(flies.Assert("Bird"))
	check(flies.Deny("Penguin"))
	check(flies.Assert("AmazingFlyingPenguin"))

	// Habitats, also hierarchical: birds live in trees, penguins on ice.
	places := hrdb.NewHierarchy("Place")
	for _, p := range []string{"Trees", "Ice"} {
		check(places.AddInstance(p))
	}
	livesIn := hrdb.NewRelation("livesIn", hrdb.MustSchema(
		hrdb.Attribute{Name: "Creature", Domain: animals},
		hrdb.Attribute{Name: "Where", Domain: places}))
	check(livesIn.Assert("Bird", "Trees"))
	check(livesIn.Deny("Penguin", "Trees"))
	check(livesIn.Assert("Penguin", "Ice"))

	// The Datalog program on top.
	p := hrdb.NewProgram()
	p.AddEDB("flies", flies)
	p.AddEDB("livesIn", livesIn)
	p.AddTaxonomy(animals)

	// travelsFar(X) :- flies(X).
	check(p.AddRule(hrdb.DatalogRule{
		Head: hrdb.Pred("travelsFar", hrdb.Var("X")),
		Body: []hrdb.RuleAtom{hrdb.Pred("flies", hrdb.Var("X"))},
	}))
	// arborealFlyer(X) :- flies(X), livesIn(X, Trees).
	check(p.AddRule(hrdb.DatalogRule{
		Head: hrdb.Pred("arborealFlyer", hrdb.Var("X")),
		Body: []hrdb.RuleAtom{
			hrdb.Pred("flies", hrdb.Var("X")),
			hrdb.Pred("livesIn", hrdb.Var("X"), hrdb.Const("Trees")),
		},
	}))
	// penguinThatFlies(X) :- isa(X, Penguin), flies(X).
	check(p.AddRule(hrdb.DatalogRule{
		Head: hrdb.Pred("penguinThatFlies", hrdb.Var("X")),
		Body: []hrdb.RuleAtom{
			hrdb.Pred("isa", hrdb.Var("X"), hrdb.Const("Penguin")),
			hrdb.Pred("flies", hrdb.Var("X")),
		},
	}))

	for _, who := range []string{"Tweety", "Paul", "Pamela"} {
		ok, err := p.Holds(hrdb.Pred("travelsFar", hrdb.Const(who)))
		check(err)
		fmt.Printf("travelsFar(%s) = %v\n", who, ok)
	}

	res, err := p.Solve(hrdb.Pred("arborealFlyer", hrdb.Var("X")))
	check(err)
	fmt.Printf("\narboreal flyers (%d):\n", len(res))
	for _, b := range res {
		fmt.Printf("  %s\n", b["X"])
	}

	res, err = p.Solve(hrdb.Pred("penguinThatFlies", hrdb.Var("X")))
	check(err)
	fmt.Printf("\npenguins that fly (%d):\n", len(res))
	for _, b := range res {
		fmt.Printf("  %s\n", b["X"])
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
