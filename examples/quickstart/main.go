// Command quickstart walks through the core of the hierarchical relational
// model using the paper's Figure 1: a taxonomy of animals, a Flies relation
// with one tuple per rule, exceptions, and exceptions to exceptions.
package main

import (
	"fmt"
	"log"

	"hrdb"
)

func main() {
	// Build the Figure 1a class hierarchy.
	animals := hrdb.NewHierarchy("Animal")
	check(animals.AddClass("Bird"))
	check(animals.AddClass("Canary", "Bird"))
	check(animals.AddInstance("Tweety", "Canary"))
	check(animals.AddClass("Penguin", "Bird"))
	check(animals.AddClass("GalapagosPenguin", "Penguin"))
	check(animals.AddClass("AmazingFlyingPenguin", "Penguin"))
	check(animals.AddInstance("Paul", "GalapagosPenguin"))
	check(animals.AddInstance("Patricia", "GalapagosPenguin", "AmazingFlyingPenguin"))
	check(animals.AddInstance("Pamela", "AmazingFlyingPenguin"))
	check(animals.AddInstance("Peter", "AmazingFlyingPenguin"))

	// The Flies relation (Figure 1b): four tuples stand for the whole
	// flying-creature extension.
	flies := hrdb.NewRelation("Flies", hrdb.MustSchema(
		hrdb.Attribute{Name: "Creature", Domain: animals},
	))
	check(flies.Assert("Bird"))                 // all birds fly
	check(flies.Deny("Penguin"))                // …except penguins
	check(flies.Assert("AmazingFlyingPenguin")) // …except amazing flying penguins
	check(flies.Assert("Peter"))                // …and Peter, specifically

	fmt.Println(flies.Table())

	// Inheritance with exceptions at work.
	for _, who := range []string{"Tweety", "Paul", "Pamela", "Patricia", "Peter"} {
		ok, err := flies.Holds(who)
		check(err)
		fmt.Printf("Does %s fly? %v\n", who, ok)
	}

	// Justification (WHY): which tuples decided Patricia's answer?
	v, err := flies.Evaluate(hrdb.Item{"Patricia"})
	check(err)
	fmt.Printf("\nPatricia's strongest binding: %v\n", v.Binders)
	fmt.Printf("Applicable tuples: %v\n", v.Applicable)

	// The equivalent flat relation (the extension).
	ext, err := flies.Extension()
	check(err)
	fmt.Printf("\nFlat extension (%d rows): %v\n", len(ext), ext)

	// Four tuples represent the whole relation; growing the taxonomy grows
	// the extension with no new tuples.
	check(animals.AddInstance("Bibi", "Canary"))
	n, err := flies.ExtensionSize()
	check(err)
	fmt.Printf("After adding Bibi: %d stored tuples, extension %d\n", flies.Len(), n)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
