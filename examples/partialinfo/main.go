// Command partialinfo demonstrates the §4 future-work extensions: three-
// valued open-world evaluation and existential assertions. A wildlife
// survey knows some facts for certain, suspects others, and is honest
// about the rest.
package main

import (
	"fmt"
	"log"

	"hrdb"
)

func main() {
	animals := hrdb.NewHierarchy("Animal")
	check(animals.AddClass("Bird"))
	check(animals.AddClass("Penguin", "Bird"))
	check(animals.AddInstance("Tweety", "Bird"))
	check(animals.AddInstance("Paul", "Penguin"))
	check(animals.AddClass("Swan"))
	check(animals.AddInstance("Sally", "Swan"))
	check(animals.AddInstance("Simon", "Swan"))

	flies := hrdb.NewRelation("Flies", hrdb.MustSchema(
		hrdb.Attribute{Name: "Creature", Domain: animals}))
	check(flies.Assert("Bird"))
	check(flies.Deny("Penguin"))
	// Nothing at all is recorded about swans.

	fmt.Println("Closed world (the paper's default):")
	for _, who := range []string{"Tweety", "Paul", "Sally"} {
		ok, err := flies.Holds(who)
		check(err)
		fmt.Printf("  flies(%s) = %v\n", who, ok)
	}

	fmt.Println("\nOpen world (three-valued, §4):")
	for _, who := range []string{"Tweety", "Paul", "Sally"} {
		v, err := hrdb.EvaluateOpenWorld(flies, hrdb.Item{who})
		check(err)
		fmt.Printf("  flies(%s) = %v\n", who, v)
	}

	// Existential knowledge: a ranger saw *a* swan flying, species-level
	// certainty without an individual witness.
	p := hrdb.NewPartial(flies)
	check(p.AssertSome("Swan"))

	fmt.Println("\nWith the existential assertion ∃ Swan · flies:")
	some, err := p.HoldsSome("Swan")
	check(err)
	every, err := p.HoldsEvery("Swan")
	check(err)
	sally, err := p.HoldsSome("Sally")
	check(err)
	fmt.Printf("  some swan flies?  %v\n", some)
	fmt.Printf("  every swan flies? %v\n", every)
	fmt.Printf("  Sally flies?      %v (the witness is anonymous)\n", sally)

	somePenguin, err := p.HoldsSome("Penguin")
	check(err)
	fmt.Printf("  some penguin flies? %v (all penguins are explicitly grounded)\n", somePenguin)

	// Kleene connectives compose partial answers.
	a, err := p.HoldsSome("Swan")
	check(err)
	b, err := p.HoldsEvery("Swan")
	check(err)
	fmt.Printf("\nKleene: (some ∧ every) = %v, (some ∨ every) = %v, ¬every = %v\n",
		hrdb.AndTruth(a, b), hrdb.OrTruth(a, b), hrdb.NotTruth(b))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
