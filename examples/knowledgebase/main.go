// Command knowledgebase shows the model as a back end for higher layers:
// a frame-based KR front end with automatic cancellation and
// left-precedence conflict resolution, the HQL query language, and durable
// storage with crash recovery.
package main

import (
	"fmt"
	"log"
	"os"

	"hrdb"
)

func main() {
	framesDemo()
	hqlDemo()
	storeDemo()
}

// framesDemo: the paper's claim that a frame system can sit on the model.
func framesDemo() {
	fmt.Println("=== frame front end ===")
	kb := hrdb.NewKB()
	check(kb.DefClass("Laptop"))
	check(kb.DefClass("GamingLaptop", "Laptop"))
	check(kb.DefClass("UltraLight", "Laptop"))
	check(kb.DefInstance("zephyr", "GamingLaptop", "UltraLight"))

	check(kb.Set("Laptop", "battery", "good"))
	check(kb.Set("GamingLaptop", "battery", "poor")) // auto-cancels "good"
	check(kb.Set("UltraLight", "battery", "great"))

	// zephyr inherits conflicting batteries: gaming says poor, ultralight
	// says great.
	if _, _, err := kb.Get("zephyr", "battery"); err != nil {
		fmt.Printf("conflict detected: %v\n", err)
	}
	// Left precedence (first declared parent wins), compiled into tuples.
	winner, err := kb.ResolveLeftPrecedence("zephyr", "battery")
	check(err)
	fmt.Printf("left precedence resolves zephyr.battery = %s\n\n", winner)
}

// hqlDemo: the query language end to end.
func hqlDemo() {
	fmt.Println("=== HQL ===")
	sess := hrdb.NewSession(hrdb.NewDatabase())
	out, err := sess.Exec(`
CREATE HIERARCHY Animal;
CLASS Bird UNDER Animal;
CLASS Penguin UNDER Bird;
INSTANCE Tweety UNDER Bird;
INSTANCE Paul UNDER Penguin;
CREATE RELATION Flies (Creature: Animal);
ASSERT Flies (Bird);
DENY Flies (Penguin);
WHY Flies (Paul);
SELECT FROM Flies WHERE Creature UNDER Bird;
`)
	check(err)
	fmt.Println(out)
}

// storeDemo: durability — write, close, reopen, recover.
func storeDemo() {
	fmt.Println("=== durable store ===")
	dir, err := os.MkdirTemp("", "hrdb-demo-*")
	check(err)
	defer os.RemoveAll(dir)

	s, err := hrdb.OpenStore(dir)
	check(err)
	check(s.CreateHierarchy("Animal"))
	check(s.AddClass("Animal", "Bird"))
	check(s.AddInstance("Animal", "Tweety", "Bird"))
	check(s.CreateRelation("Flies", hrdb.AttrSpec{Name: "Creature", Domain: "Animal"}))
	check(s.Assert("Flies", "Bird"))
	check(s.Checkpoint()) // snapshot + truncate WAL
	check(s.AddInstance("Animal", "Robin", "Bird"))
	check(s.Close())

	// Reopen: snapshot plus WAL replay restore everything.
	s2, err := hrdb.OpenStore(dir)
	check(err)
	defer s2.Close()
	for _, who := range []string{"Tweety", "Robin"} {
		ok, err := s2.Database().Holds("Flies", who)
		check(err)
		fmt.Printf("recovered: does %s fly? %v\n", who, ok)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
