// Package hrdb is a Go implementation of the hierarchical relational model
// of H. V. Jagadish, "Incorporating Hierarchy in a Relational Model of
// Data" (SIGMOD 1989).
//
// The model extends the relational model so that classes drawn from
// per-domain hierarchies can appear as attribute values: one tuple
// ∀Bird stands for every bird, negated tuples create exceptions
// (penguins don't fly) and exceptions to exceptions (amazing flying
// penguins do), multiple inheritance with conflict detection is supported,
// and two new operators — Consolidate and Explicate — convert between
// compact and flat forms. Everything is upward compatible with the flat
// relational model: a hierarchical relation is equivalent to a unique flat
// relation and every operator commutes with that flattening.
//
// This package is a thin facade over the implementation packages:
//
//   - hierarchies and class membership (internal/hierarchy)
//   - hierarchical relations, evaluation, conflicts, consolidate/explicate
//     (internal/core)
//   - relational algebra with flat-extension semantics (internal/algebra)
//   - a flat relational engine and the paper's membership-join baseline
//     (internal/flat)
//   - a synchronized multi-relation database with exception policies and
//     transactions (internal/catalog)
//   - durable storage: snapshots and a write-ahead log (internal/storage)
//   - the HQL query language (internal/hql)
//   - a frame-based KR front end (internal/frames)
//   - three-valued open-world evaluation (internal/tvl)
//   - automatic hierarchy mining (internal/mining)
//
// Quickstart:
//
//	animals := hrdb.NewHierarchy("Animal")
//	animals.AddClass("Bird")
//	animals.AddClass("Penguin", "Bird")
//	animals.AddInstance("Tweety", "Bird")
//	animals.AddInstance("Paul", "Penguin")
//
//	flies := hrdb.NewRelation("Flies", hrdb.MustSchema(
//		hrdb.Attribute{Name: "Creature", Domain: animals}))
//	flies.Assert("Bird")   // all birds fly …
//	flies.Deny("Penguin")  // … except penguins
//
//	ok, _ := flies.Holds("Tweety") // true
//	ok, _ = flies.Holds("Paul")    // false
package hrdb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"hrdb/internal/algebra"
	"hrdb/internal/catalog"
	"hrdb/internal/core"
	"hrdb/internal/deductive"
	"hrdb/internal/flat"
	"hrdb/internal/frames"
	"hrdb/internal/hierarchy"
	"hrdb/internal/hql"
	"hrdb/internal/mining"
	"hrdb/internal/obs"
	"hrdb/internal/partial"
	"hrdb/internal/repl"
	"hrdb/internal/server"
	"hrdb/internal/shard"
	"hrdb/internal/storage"
	"hrdb/internal/tvl"
	"hrdb/internal/view"
)

// Core model types.
type (
	// Hierarchy is a rooted DAG of classes and instances over one domain.
	Hierarchy = hierarchy.Hierarchy
	// Relation is a hierarchical relation: signed tuples whose attribute
	// values may be classes.
	Relation = core.Relation
	// Schema is an ordered list of attributes over hierarchies.
	Schema = core.Schema
	// Attribute names one column and its domain hierarchy.
	Attribute = core.Attribute
	// Item is one hierarchy node per attribute.
	Item = core.Item
	// Tuple is an item with a truth value.
	Tuple = core.Tuple
	// Verdict is the result of evaluating an item.
	Verdict = core.Verdict
	// Preemption selects the inheritance semantics (off-path, on-path,
	// none) from the paper's appendix.
	Preemption = core.Preemption
	// ConflictError reports an ambiguity-constraint violation.
	ConflictError = core.ConflictError
	// InconsistencyError aggregates conflicts found by CheckConsistency.
	InconsistencyError = core.InconsistencyError
	// BindingGraph is an item's explicit tuple-binding graph.
	BindingGraph = core.BindingGraph
	// SubsumptionEdge is one edge of a relation's subsumption graph.
	SubsumptionEdge = core.SubsumptionEdge
)

// Preemption modes.
const (
	// OffPath is the paper's default inheritance semantics.
	OffPath = core.OffPath
	// OnPath retains redundant edges during node elimination.
	OnPath = core.OnPath
	// NoPreemption treats any inherited sign disagreement as a conflict.
	NoPreemption = core.NoPreemption
)

// Database layer types.
type (
	// Database is a synchronized registry of hierarchies and relations
	// with integrity enforcement and transactions.
	Database = catalog.Database
	// AttrSpec names a relation attribute and its domain for CreateRelation.
	AttrSpec = catalog.AttrSpec
	// Tx is a transaction whose commit enforces the ambiguity constraint.
	Tx = catalog.Tx
	// TxOp describes one transactional update for Store.ApplyTx /
	// Database.ApplyOps ("assert" | "deny" | "retract").
	TxOp = catalog.TxOp
	// ExceptionPolicy selects how exceptions are treated (§2.1).
	ExceptionPolicy = catalog.ExceptionPolicy
	// Store is a durable database: snapshot plus write-ahead log.
	Store = storage.Store
	// StoreOptions configures OpenStoreOptions (filesystem seam, fsync
	// batching).
	StoreOptions = storage.Options
	// StoreFS is the filesystem seam a store performs all I/O through;
	// inject a fault-wrapped implementation to test crash behaviour.
	StoreFS = storage.FS
	// StoreFile is one open file of a StoreFS.
	StoreFile = storage.File
	// FaultFS wraps a StoreFS with programmable fault injection (failed
	// fsyncs, short writes, crashes after a byte budget).
	FaultFS = storage.FaultFS
	// Session executes HQL statements.
	Session = hql.Session
	// KB is a frame-based knowledge base over the model.
	KB = frames.KB
	// FlatRelation is a standard flat relation (oracle and baseline).
	FlatRelation = flat.Relation
	// Truth is a three-valued (true/false/unknown) truth value.
	Truth = tvl.Truth
	// MiningResult describes an automatically mined organization.
	MiningResult = mining.Result
	// Condition restricts one attribute in a selection.
	Condition = algebra.Condition
	// Plan describes the access path the cost-based planner chose for an
	// operator; EXPLAIN renders it.
	Plan = algebra.Plan
	// Access names a candidate-enumeration strategy (FullScan, IndexProbe).
	Access = algebra.Access
	// IndexStats summarizes one attribute's secondary index.
	IndexStats = core.IndexStats
)

// Access paths the planner chooses between.
const (
	// FullScan enumerates candidates from every stored tuple.
	FullScan = algebra.FullScan
	// IndexProbe enumerates candidates from secondary-index posting lists.
	IndexProbe = algebra.IndexProbe
)

// Exception policies.
const (
	// AllowExceptions freely permits exceptions (default).
	AllowExceptions = catalog.AllowExceptions
	// WarnExceptions permits exceptions but records warnings.
	WarnExceptions = catalog.WarnExceptions
	// ForbidExceptions rejects updates contradicting inherited values.
	ForbidExceptions = catalog.ForbidExceptions
)

// Three-valued truth constants.
const (
	// True is known-true.
	True = tvl.True
	// False is known-false.
	False = tvl.False
	// Unknown is open-world unknown.
	Unknown = tvl.Unknown
)

// NewHierarchy creates a hierarchy whose root class is the domain itself.
func NewHierarchy(domain string) *Hierarchy { return hierarchy.New(domain) }

// NewSchema builds a schema from attributes (names must be unique).
func NewSchema(attrs ...Attribute) (*Schema, error) { return core.NewSchema(attrs...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(attrs ...Attribute) *Schema { return core.MustSchema(attrs...) }

// NewRelation creates an empty hierarchical relation.
func NewRelation(name string, schema *Schema) *Relation { return core.NewRelation(name, schema) }

// NewDatabase creates an empty in-memory database.
func NewDatabase() *Database { return catalog.New() }

// OpenStore opens (creating if needed) a durable database rooted at dir.
func OpenStore(dir string) (*Store, error) { return storage.Open(dir) }

// OpenStoreOptions opens a durable database with explicit options — an
// injected filesystem (e.g. NewFaultFS for crash testing) or per-record
// fsync instead of group commit.
func OpenStoreOptions(dir string, opts StoreOptions) (*Store, error) {
	return storage.OpenOptions(dir, opts)
}

// NewFaultFS wraps base (nil for the real filesystem) with programmable
// fault injection for durability testing.
func NewFaultFS(base StoreFS) *FaultFS { return storage.NewFaultFS(base) }

// NewSession creates an HQL session over an in-memory database.
func NewSession(db *Database) *Session { return hql.NewSession(hql.MemTarget{DB: db}) }

// NewStoreSession creates an HQL session over a durable store.
func NewStoreSession(s *Store) *Session { return hql.NewSession(s) }

// Target is the statement-execution interface HQL sessions and servers
// drive; *Store implements it directly, and NewMemTarget adapts a Database.
type Target = hql.Target

// NewMemTarget adapts an in-memory database into an HQL execution target
// (for NewServer over a non-durable database).
func NewMemTarget(db *Database) Target { return hql.MemTarget{DB: db} }

// ReadOnlyScript reports whether every statement in an HQL script is free
// of side effects — the client's idempotency test for automatic retries.
func ReadOnlyScript(input string) bool { return hql.ReadOnlyScript(input) }

// Service layer: a multiplexed HQL server over TCP (framed protocol v2
// with a line-protocol v1 fallback), its client, multi-tenant namespaces,
// and a fault-injecting proxy for resilience tests.
type (
	// Server is a TCP front end over one Target with admission control,
	// per-request deadlines, panic isolation, multi-tenant namespaces, and
	// graceful drain.
	Server = server.Server
	// ServerOptions tunes the server's resilience machinery.
	ServerOptions = server.Options
	// TenantConfig declares one named namespace a server hosts (its own
	// target, admission quota, and rate limit); see ServerOptions.Tenants.
	TenantConfig = server.TenantConfig
	// TenantLimits bounds one tenant's admission (max in-flight statements,
	// sustained statements/second, burst).
	TenantLimits = server.TenantLimits
	// Client is a connection to a Server with protocol negotiation,
	// reconnect, deadline plumbing, and idempotency-aware retries with
	// exponential backoff. On protocol v2, concurrent Execs pipeline over
	// one connection and complete out of order.
	Client = server.Client
	// Stream is a logical sub-connection of a v2 Client: its statements
	// execute in order on one server-side session (so transactions span
	// Exec calls) while other streams proceed concurrently.
	Stream = server.Stream
	// Option configures Dial and DialRouter.
	Option = server.Option
	// ClientOption is the pre-unification name for Option.
	//
	// Deprecated: use Option.
	ClientOption = server.Option
	// ServerError is a failure reported by the server in an ERR frame;
	// match the standard sentinels with errors.Is.
	ServerError = server.ServerError
	// ErrorCode is a wire error code carried by ServerError ("exec",
	// "overloaded", "quota", …).
	ErrorCode = server.Code
	// ChaosProxy is a fault-injecting TCP proxy for resilience tests.
	ChaosProxy = server.ChaosProxy
)

// Wire protocol versions for WithProtocol.
const (
	// ProtocolAuto negotiates: offer v2, fall back to v1. The default.
	ProtocolAuto = server.ProtocolAuto
	// ProtocolV1 forces the sequential line protocol.
	ProtocolV1 = server.ProtocolV1
	// ProtocolV2 requires the framed multiplexed protocol; dialing a server
	// without it fails instead of falling back.
	ProtocolV2 = server.ProtocolV2
)

// DefaultTenant is the namespace served to connections that never name one.
const DefaultTenant = server.DefaultTenant

// NewServer creates a server over target (a *Store or NewMemTarget(db));
// call Start to serve and Shutdown to drain and stop.
func NewServer(target Target, opts ServerOptions) *Server { return server.New(target, opts) }

// Dial connects to a Server's address.
func Dial(addr string, opts ...Option) (*Client, error) { return server.Dial(addr, opts...) }

// NewChaosProxy starts a fault-injecting proxy forwarding to target
// ("host:port"); point a Client at its Addr.
func NewChaosProxy(target string) (*ChaosProxy, error) { return server.NewChaosProxy(target) }

// WithMaxRetries sets how many times a failed request may be retried.
func WithMaxRetries(n int) Option { return server.WithMaxRetries(n) }

// WithBackoff sets the retry backoff's base and cap.
func WithBackoff(base, max time.Duration) Option { return server.WithBackoff(base, max) }

// WithDialTimeout bounds each connection attempt.
func WithDialTimeout(d time.Duration) Option { return server.WithDialTimeout(d) }

// WithRetryNonIdempotent opts in to retrying mutations after ambiguous
// transport failures (see the server package for the safety discussion).
func WithRetryNonIdempotent(enabled bool) Option {
	return server.WithRetryNonIdempotent(enabled)
}

// WithTenant names the server-side namespace this client's statements run
// in (resolved during the handshake; unknown tenants fail the dial).
func WithTenant(name string) Option { return server.WithTenant(name) }

// WithProtocol pins the wire protocol: ProtocolAuto (default), ProtocolV1,
// or ProtocolV2.
func WithProtocol(v int) Option { return server.WithProtocol(v) }

// Materialized views: CREATE MATERIALIZED VIEW registers a read-only HQL
// query whose results are computed once, persisted, and then maintained
// incrementally by tailing the committed WAL stream; SUBSCRIBE streams a
// view's (or relation's) changes to clients with resumable positions. See
// docs/VIEWS.md.
type (
	// ViewManager maintains materialized views over a Store and serves
	// their change feeds; wire it into HQL with NewViewTarget and into a
	// Server with ServerOptions.Subscribe.
	ViewManager = view.Manager
	// ViewOptions tunes view maintenance (persistence directory, journal
	// retention, feed heartbeat cadence).
	ViewOptions = view.Options
	// Subscription is a client-side change feed with automatic
	// reconnect-and-resume; see Client.Subscribe.
	Subscription = server.Subscription
	// SubChange is one change delivered by a Subscription: a full
	// "snapshot" or an incremental "delta" with its resumable position.
	SubChange = server.SubChange
)

// ErrViewNotFound reports an unknown view name.
var ErrViewNotFound = view.ErrNotFound

// OpenViews starts a view manager over a store: persisted views are
// restored (recomputing when the store moved while it was down) and
// maintenance begins tailing the WAL. Close it after the server drains.
func OpenViews(s *Store, opts ViewOptions) (*ViewManager, error) { return view.Open(s, opts) }

// NewViewTarget wraps a target so HQL sessions can create, query, and drop
// materialized views (CREATE MATERIALIZED VIEW, SHOW VIEWS, DROP VIEW, and
// views readable wherever a relation is).
func NewViewTarget(base Target, m *ViewManager) Target { return view.NewTarget(base, m) }

// Replication: a primary ships its WAL to read replicas; a router splits
// reads onto fresh-enough replicas. See README "Replication" and
// docs/HQL.md for the wire protocol.
type (
	// Primary serves replication (snapshots + WAL stream) from a Store;
	// wire it into ServerOptions.Repl.
	Primary = repl.Primary
	// PrimaryOptions tunes chunking and heartbeats.
	PrimaryOptions = repl.PrimaryOptions
	// Replica follows a primary, maintaining a read-only in-memory copy.
	Replica = repl.Replica
	// ReplicaOptions tunes dialing and reconnect backoff.
	ReplicaOptions = repl.ReplicaOptions
	// ReplicaTarget serves a Replica to HQL sessions: reads always,
	// writes only after promotion.
	ReplicaTarget = repl.ReplicaTarget
	// ReplicaStatus is a replica's full replication status: position,
	// state, fencing term, election identity, and streamable source.
	ReplicaStatus = repl.Status
	// LagInfo is a replica's replication state (the LAG verb).
	LagInfo = server.LagInfo
	// Deposition is the verdict of CheckDeposed: the higher fencing term
	// that deposed this node and where the new primary streams from.
	Deposition = repl.Deposition
	// Router splits reads onto lag-bounded replicas, writes onto the
	// primary.
	Router = server.Router
	// RouterOption is the pre-unification name for Option.
	//
	// Deprecated: use Option.
	RouterOption = server.Option
)

// Sharding: a cluster hash-partitions each relation's all-instance tuples
// across shard servers (class-containing tuples replicate everywhere), and
// a coordinator routes keyed statements to the owning shard, scatter-gathers
// reads, and commits cross-shard transactions with two-phase commit. See
// docs/SHARDING.md.
type (
	// ShardNode is the shard-local executor and 2PC participant a server
	// hosts (ServerOptions.Shard); it answers the SHARDMAP and EXECSHARD
	// verbs.
	ShardNode = shard.Node
	// Cluster is a shard-aware coordinator: one Session-compatible Exec
	// surface over many shard servers.
	Cluster = shard.Cluster
	// ClusterConn is the per-shard connection surface a Cluster drives;
	// *Client and *Router both satisfy it.
	ClusterConn = shard.Conn
)

// NewShardNode creates the shard-local executor for shard id of count over
// the server's target; wire it into ServerOptions.Shard.
func NewShardNode(target Target, id, count int) *ShardNode {
	return shard.NewNode(target, id, count)
}

// HomeShard returns the shard that owns an all-instance tuple of the given
// relation — the hash placement DialCluster and every shard node agree on.
func HomeShard(rel string, values []string, count int) int {
	return shard.HomeShard(rel, values, count)
}

// DialCluster connects a coordinator to a shard cluster. Each element of
// addrs describes one shard, in shard-id order, as "primary" or
// "primary,replica,replica…": bare addresses get a plain Client, addresses
// with replicas get a failover-aware Router (so a shard primary dying
// mid-transaction is ridden out by its replica set). Every connection's
// SHARDMAP answer is checked against its position so a mis-ordered address
// list fails at dial time instead of corrupting placement. A single plain
// server (no shard node) may be dialed as a one-shard cluster.
func DialCluster(ctx context.Context, addrs []string, opts ...Option) (*Cluster, error) {
	conns := make([]ClusterConn, 0, len(addrs))
	fail := func(err error) (*Cluster, error) {
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}
	for i, spec := range addrs {
		parts := strings.Split(spec, ",")
		var conn ClusterConn
		var err error
		if len(parts) == 1 {
			conn, err = server.Dial(parts[0], opts...)
		} else {
			conn, err = server.DialRouter(parts[0], parts[1:], opts...)
		}
		if err != nil {
			return fail(err)
		}
		conns = append(conns, conn)
		id, count, err := conn.(interface {
			ShardMap(context.Context) (int, int, error)
		}).ShardMap(ctx)
		switch {
		case errors.Is(err, ErrUnsupported) && len(addrs) == 1:
			// A plain server as a trivial one-shard cluster.
		case err != nil:
			return fail(fmt.Errorf("shard %d (%s): %w", i, spec, err))
		case id != i || count != len(addrs):
			return fail(fmt.Errorf("shard %d (%s): server reports shard %d of %d, want %d of %d",
				i, spec, id, count, i, len(addrs)))
		}
	}
	return shard.NewCluster(ctx, conns)
}

// ErrReadOnlyReplica rejects mutations on an unpromoted replica.
var ErrReadOnlyReplica = repl.ErrReadOnlyReplica

// ErrDeposed rejects mutations on a store fenced by a higher primary term:
// the node was deposed, the write definitively did not execute, and the
// client should retry against the new primary (the wire maps it to the
// retryable "stale" error code).
var ErrDeposed = storage.ErrDeposed

// CheckDeposed probes peers for a fencing term higher than the store's; if
// one is found the store is fenced against further writes and the returned
// Deposition says who to rejoin. Nil means no peer answered with a higher
// term. Run it when a durable node restarts into a cluster that may have
// elected a new primary while it was down.
func CheckDeposed(st *Store, peers []string, timeout time.Duration) *Deposition {
	return repl.CheckDeposed(st, peers, timeout)
}

// Demote dismantles a deposed primary's store so the node can rejoin as a
// replica: the committed-but-unreplicated WAL suffix past the winner's
// takeover point is preserved in a quarantine sidecar file (returned path;
// empty when nothing diverged), then the store is closed and its files
// removed. The quarantine file survives for operator inspection.
func Demote(st *Store, dep *Deposition, timeout time.Duration) (quarantine string, err error) {
	return repl.Demote(st, dep, timeout)
}

// NewPrimary creates a replication source over an open store.
func NewPrimary(store *Store, opts PrimaryOptions) *Primary { return repl.NewPrimary(store, opts) }

// NewReplica starts a replica following the primary server at addr.
func NewReplica(addr string, opts ReplicaOptions) *Replica { return repl.NewReplica(addr, opts) }

// DialRouter connects a lag-bounded read router to a primary and its
// replicas, passing the same options to every connection.
func DialRouter(primaryAddr string, replicaAddrs []string, opts ...Option) (*Router, error) {
	return server.DialRouter(primaryAddr, replicaAddrs, opts...)
}

// WithMaxStaleness bounds how stale a replica may be and still serve
// routed reads (router-only; plain Dial ignores it).
func WithMaxStaleness(d time.Duration) Option { return server.WithMaxStaleness(d) }

// WithLagProbeInterval sets how long the router caches a replica's LAG
// answer (router-only; plain Dial ignores it).
func WithLagProbeInterval(d time.Duration) Option { return server.WithLagProbeInterval(d) }

// Fingerprint renders a database's logical state canonically; equal
// fingerprints mean equal facts (used to verify replica convergence).
func Fingerprint(db *Database) string { return storage.Fingerprint(db) }

// DumpHQL serializes a database to an HQL script that reproduces it.
func DumpHQL(db *Database) (string, error) { return hql.Dump(db) }

// NewKB creates an empty frame knowledge base.
func NewKB() *KB { return frames.NewKB() }

// NewFlatRelation creates a standard flat relation.
func NewFlatRelation(name string, attrs ...string) *FlatRelation { return flat.New(name, attrs...) }

// Select restricts a relation to the sub-hierarchies under the conditions.
func Select(name string, r *Relation, conds ...Condition) (*Relation, error) {
	return algebra.Select(name, r, conds...)
}

// Project computes the existential projection onto the named attributes.
func Project(name string, r *Relation, attrs ...string) (*Relation, error) {
	return algebra.Project(name, r, attrs...)
}

// SelectContext is Select honoring context cancellation and planner
// directives such as WithForceScan.
func SelectContext(ctx context.Context, name string, r *Relation, conds ...Condition) (*Relation, error) {
	return algebra.SelectContext(ctx, name, r, conds...)
}

// Join computes the natural join over shared attribute names.
func Join(name string, a, b *Relation) (*Relation, error) { return algebra.Join(name, a, b) }

// JoinContext is Join honoring context cancellation and planner directives
// such as WithForceScan.
func JoinContext(ctx context.Context, name string, a, b *Relation) (*Relation, error) {
	return algebra.JoinContext(ctx, name, a, b)
}

// Union returns a relation whose extension is Ext(a) ∪ Ext(b).
func Union(name string, a, b *Relation) (*Relation, error) { return algebra.Union(name, a, b) }

// Intersect returns a relation whose extension is Ext(a) ∩ Ext(b).
func Intersect(name string, a, b *Relation) (*Relation, error) {
	return algebra.Intersect(name, a, b)
}

// Difference returns a relation whose extension is Ext(a) − Ext(b).
func Difference(name string, a, b *Relation) (*Relation, error) {
	return algebra.Difference(name, a, b)
}

// Rename renames attributes according to the mapping.
func Rename(name string, r *Relation, mapping map[string]string) (*Relation, error) {
	return algebra.Rename(name, r, mapping)
}

// PlanSelect returns the access plan Select would execute, without running
// the query.
func PlanSelect(r *Relation, conds ...Condition) (*Plan, error) {
	return algebra.PlanSelect(r, conds...)
}

// PlanJoin returns the access plan Join would execute, without running the
// join.
func PlanJoin(a, b *Relation) (*Plan, error) { return algebra.PlanJoin(a, b) }

// WithForceScan returns a context under which the operators bypass the
// planner and enumerate candidates by full scan — the reference path index
// plans are verified against.
func WithForceScan(ctx context.Context) context.Context { return algebra.WithForceScan(ctx) }

// Bulk evaluation and its functional options.
//
// The batch APIs fan per-item evaluation across cores with deterministic
// result ordering; options tune one call without mutating the relation:
//
//	vs, err := hrdb.EvaluateBatch(ctx, flies, items,
//		hrdb.WithParallelism(4), hrdb.WithCache(true))
type (
	// BatchOption configures one bulk-evaluation call.
	BatchOption = core.BatchOption
)

// WithParallelism sets the number of worker goroutines for a batch call
// (values below 1 select runtime.GOMAXPROCS(0)).
func WithParallelism(n int) BatchOption { return core.WithParallelism(n) }

// WithCache overrides the relation's verdict-cache setting for a batch call.
func WithCache(enabled bool) BatchOption { return core.WithCache(enabled) }

// WithPreemption overrides the relation's preemption mode for a batch call.
func WithPreemption(p Preemption) BatchOption { return core.WithPreemption(p) }

// WithTracer reports a span per bulk-evaluation call to t.
func WithTracer(t Tracer) BatchOption { return core.WithTracer(t) }

// EvaluateBatch evaluates every item concurrently with verdicts in input
// order; the first failure (by input index) cancels the rest.
func EvaluateBatch(ctx context.Context, r *Relation, items []Item, opts ...BatchOption) ([]Verdict, error) {
	return r.EvaluateBatch(ctx, items, opts...)
}

// HoldsBatch is EvaluateBatch reduced to closed-world truth values.
func HoldsBatch(ctx context.Context, r *Relation, items []Item, opts ...BatchOption) ([]bool, error) {
	return r.HoldsBatch(ctx, items, opts...)
}

// Sentinel errors, re-exported so callers can match with errors.Is without
// importing the internal packages.
var (
	// ErrSchema indicates an invalid schema definition.
	ErrSchema = core.ErrSchema
	// ErrArity indicates an item with the wrong number of coordinates.
	ErrArity = core.ErrArity
	// ErrUnknownValue indicates an item coordinate outside its domain.
	ErrUnknownValue = core.ErrUnknownValue
	// ErrUnknownAttribute indicates a reference to an attribute name absent
	// from a relation's schema.
	ErrUnknownAttribute = core.ErrUnknownAttribute
	// ErrUnknownMode indicates an undefined preemption mode.
	ErrUnknownMode = core.ErrUnknownMode
	// ErrContradiction indicates re-asserting an item with the opposite sign.
	ErrContradiction = core.ErrContradiction
	// ErrTooLarge indicates an operation exceeding the product-size limit.
	ErrTooLarge = core.ErrTooLarge
	// ErrIncompatible indicates schema-incompatible relations.
	ErrIncompatible = core.ErrIncompatible
	// ErrNoSuchClass indicates an unknown hierarchy node.
	ErrNoSuchClass = hierarchy.ErrUnknown
	// ErrExists indicates a duplicate hierarchy or relation name.
	ErrExists = catalog.ErrExists
	// ErrNotFound indicates a missing hierarchy or relation.
	ErrNotFound = catalog.ErrNotFound
	// ErrExceptionForbidden indicates an update rejected by policy.
	ErrExceptionForbidden = catalog.ErrExceptionForbidden
	// ErrRepairDiverged indicates an algebra result whose conflict repair
	// did not converge.
	ErrRepairDiverged = algebra.ErrRepairDiverged
	// ErrStoreFailed indicates a store poisoned by an I/O error; reopen it
	// to recover the durable prefix.
	ErrStoreFailed = storage.ErrStoreFailed
	// ErrStoreCorrupt indicates a snapshot or log whose checksum, magic, or
	// structure is invalid.
	ErrStoreCorrupt = storage.ErrCorrupt
	// ErrStoreVersion indicates an unsupported storage format version.
	ErrStoreVersion = storage.ErrVersion
	// ErrStoreClosed indicates an operation on a store after Close.
	ErrStoreClosed = storage.ErrStoreClosed
	// ErrSessionBusy indicates concurrent use of a single-goroutine Session.
	ErrSessionBusy = hql.ErrSessionBusy
	// ErrOverloaded indicates a request the server shed; it was never
	// executed and may be retried after the Retry-After hint.
	ErrOverloaded = server.ErrOverloaded
	// ErrQuotaExceeded indicates a request shed by its tenant's admission
	// quota or rate limit; it was never executed and may be retried.
	ErrQuotaExceeded = server.ErrQuotaExceeded
	// ErrUnknownTenant indicates a namespace the server does not host.
	ErrUnknownTenant = server.ErrUnknownTenant
	// ErrServerClosed indicates a server that is draining or closed.
	ErrServerClosed = server.ErrServerClosed
	// ErrClientClosed indicates a request failed because Client.Close ran
	// (in-flight pipelined requests fail rather than delaying Close).
	ErrClientClosed = server.ErrClientClosed
	// ErrProtocol indicates a wire-protocol violation (either side).
	ErrProtocol = server.ErrProtocol
	// ErrStatementTooLarge indicates an EXEC payload over the server's
	// MaxStatementBytes.
	ErrStatementTooLarge = server.ErrStatementTooLarge
	// ErrExecFailed indicates a statement the server executed and rejected
	// (parse error, integrity violation, …); never retried.
	ErrExecFailed = server.ErrExecFailed
	// ErrStatementPanicked indicates a statement that panicked server-side.
	ErrStatementPanicked = server.ErrStatementPanicked
	// ErrUnsupported indicates a verb or feature this server (or protocol
	// version) does not provide.
	ErrUnsupported = server.ErrUnsupported
	// ErrStaleReplica indicates a read rejected because the replica knows
	// it is too far behind.
	ErrStaleReplica = server.ErrStaleReplica
)

// Observability: process-wide metrics, tracing hooks, and the slow-query
// log (internal/obs). Every layer — engine, storage, server — feeds one
// default registry; expose it with Metrics (structured snapshot),
// MetricsText / MetricsHandler / ServeMetrics (Prometheus text format plus
// /debug/pprof), the server's STATS verb (Client.Stats), or hrshell's
// \stats meta-command. See docs/OBSERVABILITY.md for the metric inventory.
type (
	// MetricsSnapshot is a point-in-time copy of every registered metric.
	MetricsSnapshot = obs.Snapshot
	// HistogramSnapshot is one histogram's consistent bucket copy.
	HistogramSnapshot = obs.HistogramSnapshot
	// HistogramBucket is one populated log₂ bucket (Le = inclusive upper
	// bound).
	HistogramBucket = obs.Bucket
	// MetricLabel is one name="value" metric or span attribute.
	MetricLabel = obs.Label
	// Tracer receives completed spans from instrumented operations.
	Tracer = obs.Tracer
	// TracerFunc adapts a function to the Tracer interface.
	TracerFunc = obs.TracerFunc
	// Span is one completed timed operation reported to a Tracer.
	Span = obs.Span
	// SpanCollector is a Tracer that records every span (for tests and
	// interactive inspection).
	SpanCollector = obs.SpanCollector
	// SlowQueryLog writes one line per statement slower than a threshold;
	// attach it via ServerOptions.SlowQuery or Session.SetSlowQueryLog.
	SlowQueryLog = obs.SlowQueryLog
	// SlowQuery is one recorded slow statement with per-stage timings.
	SlowQuery = obs.SlowQuery
	// QueryStage is one timed phase of a statement's execution.
	QueryStage = obs.Stage
	// MetricsServer is a background HTTP server exposing /metrics and
	// /debug/pprof (see ServeMetrics).
	MetricsServer = obs.MetricsServer
)

// Metrics returns a consistent snapshot of every process-wide metric.
func Metrics() MetricsSnapshot { return obs.Default().Snapshot() }

// MetricsText renders the process metrics in Prometheus text exposition
// format — the same payload the HTTP endpoint and the STATS verb serve.
func MetricsText() string { return obs.Default().RenderText() }

// MetricsHandler returns an http.Handler serving /metrics (Prometheus text
// format) and /debug/pprof, for mounting into an existing HTTP server.
func MetricsHandler() http.Handler { return obs.Handler(nil) }

// ServeMetrics starts a background HTTP server on addr ("host:port"; port
// 0 picks a free port) exposing /metrics and /debug/pprof. Close the
// returned server to stop it.
func ServeMetrics(addr string) (*MetricsServer, error) { return obs.StartMetricsServer(addr, nil) }

// NewSlowQueryLog creates a slow-query log writing to w statements whose
// total duration is at least threshold (0 records everything).
func NewSlowQueryLog(w io.Writer, threshold time.Duration) *SlowQueryLog {
	return obs.NewSlowQueryLog(w, threshold)
}

// EvaluateOpenWorld computes the three-valued truth of an item.
func EvaluateOpenWorld(r *Relation, item Item) (Truth, error) { return tvl.Evaluate(r, item) }

// EvaluateOpenWorldBatch computes three-valued truths for every item in
// bulk; per-item ambiguity conflicts map to Unknown instead of aborting.
func EvaluateOpenWorldBatch(ctx context.Context, r *Relation, items []Item, opts ...BatchOption) ([]Truth, error) {
	return tvl.EvaluateBatch(ctx, r, items, opts...)
}

// AndTruth is Kleene three-valued conjunction.
func AndTruth(a, b Truth) Truth { return tvl.And(a, b) }

// OrTruth is Kleene three-valued disjunction.
func OrTruth(a, b Truth) Truth { return tvl.Or(a, b) }

// NotTruth is Kleene three-valued negation.
func NotTruth(a Truth) Truth { return tvl.Not(a) }

// Mine organizes a flat relation into a hierarchical one by classifying
// the attribute at the given index (§4 future work).
func Mine(r *FlatRelation, classify int) (*MiningResult, error) { return mining.Mine(r, classify) }

// MineBest tries every attribute and returns the best compression.
func MineBest(r *FlatRelation) (int, *MiningResult, error) { return mining.BestAttribute(r) }

// Deductive layer (Datalog over hierarchical relations, §2.1).
type (
	// Program is a Datalog program whose EDB predicates are hierarchical
	// relations and whose isa/2 builtin exposes taxonomy membership.
	Program = deductive.Program
	// RuleAtom is a predicate applied to terms.
	RuleAtom = deductive.Atom
	// RuleTerm is a Datalog variable or constant.
	RuleTerm = deductive.Term
	// DatalogRule is a Horn clause.
	DatalogRule = deductive.Rule
)

// NewProgram creates an empty Datalog program.
func NewProgram() *Program { return deductive.NewProgram() }

// Var builds a Datalog variable term.
func Var(name string) RuleTerm { return deductive.V(name) }

// Const builds a Datalog constant term.
func Const(name string) RuleTerm { return deductive.C(name) }

// Pred builds a Datalog atom.
func Pred(pred string, args ...RuleTerm) RuleAtom { return deductive.A(pred, args...) }

// NotPred builds a negated Datalog body atom (stratified negation as
// failure).
func NotPred(pred string, args ...RuleTerm) RuleAtom { return deductive.Not(pred, args...) }

// PartialRelation pairs a hierarchical relation with existential
// assertions for three-valued partial information (§4 future work).
type PartialRelation = partial.Relation

// NewPartial wraps a hierarchical relation for partial-information queries
// (HoldsEvery / HoldsSome, existential assertions).
func NewPartial(base *Relation) *PartialRelation { return partial.New(base) }
