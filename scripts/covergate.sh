#!/usr/bin/env bash
# covergate.sh — coverage ratchet for internal/...
#
# Runs the coverage profile and fails if the total drops below the
# checked-in baseline (scripts/coverage_baseline.txt). Raise the baseline
# when coverage durably improves; never lower it to make CI pass.
set -euo pipefail
cd "$(dirname "$0")/.."

go test -coverprofile=cover.out ./internal/... > /dev/null
total=$(go tool cover -func=cover.out | tail -1 | awk '{print $NF}' | tr -d '%')
baseline=$(tr -d ' %\n' < scripts/coverage_baseline.txt)

echo "coverage: internal/... total ${total}% (baseline ${baseline}%)"
if ! awk -v t="$total" -v b="$baseline" 'BEGIN { exit (t + 0 >= b + 0) ? 0 : 1 }'; then
    echo "coverage gate FAILED: ${total}% < baseline ${baseline}%" >&2
    exit 1
fi
echo "coverage gate passed"
