// Command benchgate is the benchmark regression gate: it compares fresh
// machine-readable results (BENCH_<exp>.json, as written by `make
// bench-json`) against the checked-in baselines in scripts/bench_baseline/
// and fails when any gated figure regresses past the tolerance.
//
// Only fields whose names carry a direction are gated: *_ns (latency, lower
// is better) and qps / *_qps (throughput, higher is better). Counts, ratios
// and configuration echoes are ignored — they describe the run, they don't
// measure it. The default tolerance is 3x, deliberately loose: CI boxes
// differ wildly from the baseline box, and the gate exists to catch
// order-of-magnitude regressions (a lost index, an accidental O(n²)), not
// scheduler jitter. Override with -tolerance or BENCHGATE_TOLERANCE.
//
//	go run ./scripts/benchgate -baseline scripts/bench_baseline -current .
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

type delta struct {
	file     string
	path     string
	baseline float64
	current  float64
	ratio    float64 // degradation factor: >1 means worse than baseline
	gated    bool
	failed   bool
}

func main() {
	baselineDir := flag.String("baseline", "scripts/bench_baseline", "directory with the checked-in BENCH_<exp>.json baselines")
	currentDir := flag.String("current", ".", "directory with the freshly produced BENCH_<exp>.json files")
	tolerance := flag.Float64("tolerance", envTolerance(3.0), "maximum allowed degradation factor")
	flag.Parse()

	baselines, err := filepath.Glob(filepath.Join(*baselineDir, "BENCH_*.json"))
	if err != nil || len(baselines) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no baselines under %s\n", *baselineDir)
		os.Exit(1)
	}
	sort.Strings(baselines)

	var deltas []delta
	var missing []string
	for _, basePath := range baselines {
		name := filepath.Base(basePath)
		curPath := filepath.Join(*currentDir, name)
		base, err := load(basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		cur, err := load(curPath)
		if err != nil {
			missing = append(missing, name)
			continue
		}
		compare(name, "", base, cur, *tolerance, &deltas)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: missing fresh results for %s — run `make bench-json` first\n",
			strings.Join(missing, ", "))
		os.Exit(1)
	}

	var failed []delta
	gated := 0
	for _, d := range deltas {
		if d.gated {
			gated++
		}
		if d.failed {
			failed = append(failed, d)
		}
	}
	fmt.Printf("benchgate: %d figures gated at %.1fx tolerance, %d regressed\n", gated, *tolerance, len(failed))
	if len(failed) == 0 {
		fmt.Println("benchgate passed")
		return
	}

	// A readable delta table: what regressed, by how much, against what.
	fmt.Println()
	fmt.Println("| file | field | baseline | current | degradation |")
	fmt.Println("|---|---|---|---|---|")
	for _, d := range failed {
		fmt.Printf("| %s | %s | %s | %s | %.2fx (limit %.1fx) |\n",
			d.file, d.path, fmtVal(d.path, d.baseline), fmtVal(d.path, d.current), d.ratio, *tolerance)
	}
	fmt.Println()
	fmt.Fprintln(os.Stderr, "benchgate FAILED: benchmark regression past tolerance (see table above).")
	fmt.Fprintln(os.Stderr, "If the slowdown is intended, regenerate the baselines: make bench-json && cp BENCH_*.json scripts/bench_baseline/")
	os.Exit(1)
}

func envTolerance(def float64) float64 {
	if s := os.Getenv("BENCHGATE_TOLERANCE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func load(path string) (any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return v, nil
}

// compare walks baseline and current in parallel, recording a delta for
// every gated numeric leaf present in both. Structural drift (a field or
// row present in only one side) is tolerated: experiments grow, and the
// gate's job is regressions in figures both sides report.
func compare(file, path string, base, cur any, tol float64, out *[]delta) {
	switch b := base.(type) {
	case map[string]any:
		c, ok := cur.(map[string]any)
		if !ok {
			return
		}
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if cv, ok := c[k]; ok {
				compare(file, joinPath(path, k), b[k], cv, tol, out)
			}
		}
	case []any:
		c, ok := cur.([]any)
		if !ok {
			return
		}
		n := len(b)
		if len(c) < n {
			n = len(c)
		}
		for i := 0; i < n; i++ {
			compare(file, fmt.Sprintf("%s[%d]", path, i), b[i], c[i], tol, out)
		}
	case float64:
		c, ok := cur.(float64)
		if !ok {
			return
		}
		lower, higher := direction(path)
		if !lower && !higher || b <= 0 || c <= 0 {
			return
		}
		ratio := c / b // lower-is-better: degradation = current/baseline
		if higher {
			ratio = b / c
		}
		*out = append(*out, delta{
			file: file, path: path, baseline: b, current: c,
			ratio: ratio, gated: true, failed: ratio > tol,
		})
	}
}

// direction classifies a leaf by its field name: *_ns gates lower-is-better,
// qps / *_qps gates higher-is-better, anything else is ungated.
func direction(path string) (lowerIsBetter, higherIsBetter bool) {
	field := path
	if i := strings.LastIndexByte(field, '.'); i >= 0 {
		field = field[i+1:]
	}
	if i := strings.IndexByte(field, '['); i >= 0 {
		field = field[:i]
	}
	switch {
	case strings.HasSuffix(field, "_ns"):
		return true, false
	case field == "qps" || strings.HasSuffix(field, "_qps"):
		return false, true
	}
	return false, false
}

func fmtVal(path string, v float64) string {
	if lower, _ := direction(path); lower {
		switch {
		case v >= 1e9:
			return fmt.Sprintf("%.2fs", v/1e9)
		case v >= 1e6:
			return fmt.Sprintf("%.2fms", v/1e6)
		case v >= 1e3:
			return fmt.Sprintf("%.2fµs", v/1e3)
		default:
			return fmt.Sprintf("%.0fns", v)
		}
	}
	return fmt.Sprintf("%.1f", v)
}

func joinPath(path, k string) string {
	if path == "" {
		return k
	}
	return path + "." + k
}
