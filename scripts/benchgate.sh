#!/usr/bin/env bash
# benchgate.sh — benchmark regression gate
#
# Compares fresh BENCH_<exp>.json results against the checked-in baselines
# in scripts/bench_baseline/ and fails on any gated figure (latency *_ns,
# throughput qps) that regresses past the tolerance (default 3x; override
# with BENCHGATE_TOLERANCE). Existing BENCH_*.json files in the repo root
# are reused — CI runs `make bench-json` right before this — and generated
# only when one is missing.
#
# When a slowdown is intended, regenerate the baselines:
#   make bench-json && cp BENCH_*.json scripts/bench_baseline/
set -euo pipefail
cd "$(dirname "$0")/.."

exps="E9 E12 E13 E14 E15"
missing=0
for exp in $exps; do
    [ -f "BENCH_${exp}.json" ] || missing=1
done
if [ "$missing" = 1 ]; then
    echo "benchgate: producing fresh BENCH_<exp>.json ($exps)"
    go run ./cmd/hrbench -json . $exps > /dev/null
fi

go run ./scripts/benchgate -baseline scripts/bench_baseline -current .
