package storage

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpenLog: arbitrary bytes as a WAL must never crash OpenLog; the valid
// prefix must replay, and the log must stay appendable afterwards.
func FuzzOpenLog(f *testing.F) {
	// Seed with a real log prefix.
	dir, err := os.MkdirTemp("", "walfuzz-*")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	l, err := OpenLog(filepath.Join(dir, "seed.log"))
	if err != nil {
		f.Fatal(err)
	}
	_ = l.Append(Record{Op: OpCreateHierarchy, Target: "D"})
	_ = l.Append(Record{Op: OpAssert, Target: "R", Args: []string{"a", "b"}})
	_ = l.Close()
	seed, err := os.ReadFile(filepath.Join(dir, "seed.log"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Add([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		fdir := t.TempDir()
		path := filepath.Join(fdir, "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := OpenLog(path)
		if err != nil {
			return // I/O errors are acceptable; crashes are not
		}
		defer l.Close()
		n := 0
		if err := l.Replay(func(Record) error { n++; return nil }); err != nil {
			t.Fatalf("replay of validated prefix failed: %v", err)
		}
		// The log must remain appendable and the appended record readable.
		if err := l.Append(Record{Op: OpCreateHierarchy, Target: "X"}); err != nil {
			t.Fatalf("append after truncation: %v", err)
		}
		m := 0
		if err := l.Replay(func(Record) error { m++; return nil }); err != nil {
			t.Fatalf("replay after append: %v", err)
		}
		if m != n+1 {
			t.Fatalf("replay count %d, want %d", m, n+1)
		}
	})
}

// FuzzCrashOffset: the crash-recovery property of TestCrashAtEveryOffset,
// driven by the fuzzer — a crash leaving any prefix of the workload WAL
// must recover exactly the acknowledged boundary at or before the cut.
func FuzzCrashOffset(f *testing.F) {
	workDir, err := os.MkdirTemp("", "crashfuzz-*")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(workDir)
	bounds, wal := runCrashWorkload(f, workDir)

	f.Add(uint(0))
	f.Add(uint(len(wal)))
	f.Add(uint(len(wal) - 1))
	for _, b := range bounds {
		f.Add(uint(b.off))
		f.Add(uint(b.off) + 1)
	}

	f.Fuzz(func(t *testing.T, off uint) {
		l := int(off % uint(len(wal)+1))
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), wal[:l], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("crash at offset %d: reopen failed: %v", l, err)
		}
		got := fingerprint(s.Database())
		s.Close()
		if want := expectedAt(bounds, int64(l)); got != want {
			t.Fatalf("crash at offset %d: recovered state diverges\n got: %s\nwant: %s", l, got, want)
		}
	})
}

// FuzzReadSnapshot: arbitrary bytes never crash the snapshot reader.
func FuzzReadSnapshot(f *testing.F) {
	dir, err := os.MkdirTemp("", "snapfuzz-*")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "seed.hrdb")
	spec := DatabaseSpec{Hierarchies: []HierarchySpec{{Domain: "D"}}}
	if err := WriteSnapshot(path, spec); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:8])
	f.Add([]byte("HRDB"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		fdir := t.TempDir()
		p := filepath.Join(fdir, "s.hrdb")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		spec, err := ReadSnapshot(p)
		if err != nil {
			return
		}
		// A successfully read snapshot must build (or fail cleanly).
		_, _ = BuildDatabase(spec)
	})
}

// FuzzStreamDecoder: the replication stream decoder must never crash on
// arbitrary bytes, and chunking must be invisible — feeding the same bytes
// in fuzzer-chosen slices must decode exactly what a single feed decodes,
// with identical consumed-byte accounting. This is the reassembly layer
// every replica trusts after a chaos-severed reconnect.
func FuzzStreamDecoder(f *testing.F) {
	dir, err := os.MkdirTemp("", "streamfuzz-*")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	l, err := OpenLog(filepath.Join(dir, "seed.log"))
	if err != nil {
		f.Fatal(err)
	}
	_ = l.Append(Record{Op: OpCreateHierarchy, Target: "D"})
	_ = l.Append(Record{Op: OpTxBegin})
	_ = l.Append(Record{Op: OpAssert, Target: "R", Args: []string{"a", "b"}})
	_ = l.Append(Record{Op: OpTxCommit})
	_ = l.Close()
	seed, err := os.ReadFile(filepath.Join(dir, "seed.log"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed, uint8(1))
	f.Add(seed, uint8(7))
	f.Add(seed[:len(seed)-2], uint8(3)) // torn tail
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0xff, 0x00, 0x01, 0x7f}, uint8(2))

	decodeAll := func(dec *StreamDecoder) (n int, failed bool) {
		for {
			_, ok, err := dec.Next()
			if err != nil {
				return n, true
			}
			if !ok {
				return n, false
			}
			n++
		}
	}

	f.Fuzz(func(t *testing.T, data []byte, stride uint8) {
		if len(data) > 1<<16 {
			return
		}
		// Reference: one feed of the whole buffer.
		ref := NewStreamDecoder()
		ref.Feed(data)
		refRecs, refFailed := decodeAll(ref)

		// Same bytes in stride-sized slices.
		step := int(stride)%13 + 1
		dec := NewStreamDecoder()
		var recs int
		failed := false
		for off := 0; off < len(data) && !failed; off += step {
			end := off + step
			if end > len(data) {
				end = len(data)
			}
			dec.Feed(data[off:end])
			n, bad := decodeAll(dec)
			recs += n
			failed = bad
		}

		if failed != refFailed {
			t.Fatalf("chunked decode failed=%v, one-shot failed=%v (stride %d)", failed, refFailed, step)
		}
		if failed {
			return
		}
		if recs != refRecs {
			t.Fatalf("chunked decode got %d records, one-shot got %d (stride %d)", recs, refRecs, step)
		}
		if dec.Consumed() != ref.Consumed() {
			t.Fatalf("chunked consumed %d bytes, one-shot %d (stride %d)", dec.Consumed(), ref.Consumed(), step)
		}
		if c := dec.Consumed(); c < 0 || c > int64(len(data)) {
			t.Fatalf("consumed %d of %d input bytes", c, len(data))
		}
	})
}
