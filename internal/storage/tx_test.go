package storage

import (
	"errors"
	"testing"

	"hrdb/internal/catalog"
	"hrdb/internal/core"
)

// TestStoreApplyTxAndReplay: a transaction whose individual records are
// inconsistent on their own must be logged as a bracketed batch and
// replayed as one transaction.
func TestStoreApplyTxAndReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	populateStore(t, s)
	must(t, s.AddInstance("Animal", "Paul", "GP"))

	// Denying GP alone conflicts at Patricia (GP vs AFP)… except the
	// fixture prefers AFP. Build a real conflict on a fresh pair instead:
	// deny Bird (conflicts with the AFP positive below it? No: comparable).
	// Use: assert GP, then deny AFP — Patricia (GP∧AFP) conflicts; resolve
	// with an exact tuple in the same transaction.
	ops := []catalog.TxOp{
		{Kind: "assert", Relation: "Flies", Values: []string{"GP"}},
		{Kind: "deny", Relation: "Flies", Values: []string{"Patricia"}},
	}
	// assert GP alone would conflict with the stored Penguin negation at
	// Paul? GP+ under Penguin−: comparable (exception), fine. Patricia has
	// GP+ and AFP+ → no conflict. Deny Patricia: exact tuple wins. The
	// batch is consistent as a whole.
	must(t, s.ApplyTx(ops))

	got, err := s.Database().Holds("Flies", "Patricia")
	must(t, err)
	if got {
		t.Fatal("exact negation should win")
	}
	must(t, s.Close())

	// Recovery replays the tx bracket as one transaction.
	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	got, err = s2.Database().Holds("Flies", "Patricia")
	must(t, err)
	if got {
		t.Fatal("tx not replayed")
	}
	got, err = s2.Database().Holds("Flies", "Paul")
	must(t, err)
	if !got {
		t.Fatal("GP assertion lost")
	}
}

// TestStoreApplyTxFailureNotLogged: a failing transaction leaves no log
// records.
func TestStoreApplyTxFailureNotLogged(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	populateStore(t, s)
	before, err := s.LogSize()
	must(t, err)

	ops := []catalog.TxOp{
		{Kind: "assert", Relation: "Nope", Values: []string{"x"}},
	}
	if err := s.ApplyTx(ops); err == nil {
		t.Fatal("bad tx accepted")
	}
	after, err := s.LogSize()
	must(t, err)
	if after != before {
		t.Fatal("failed tx was logged")
	}
	// Unknown op kind is rejected before logging.
	if err := s.ApplyTx([]catalog.TxOp{{Kind: "zap", Relation: "Flies"}}); err == nil {
		t.Fatal("unknown op kind accepted")
	}
}

// TestStoreDropNodeAndSetModeDurable: both schema-evolution ops replay.
func TestStoreDropNodeAndSetModeDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	populateStore(t, s)
	must(t, s.AddInstance("Animal", "Doomed", "GP"))
	must(t, s.DropNode("Animal", "Doomed"))
	must(t, s.SetMode("Flies", core.OnPath))
	// Referenced nodes refuse and are not logged.
	if err := s.DropNode("Animal", "AFP"); err == nil {
		t.Fatal("referenced node dropped")
	}
	must(t, s.Close())

	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	h, err := s2.Database().Hierarchy("Animal")
	must(t, err)
	if h.Has("Doomed") {
		t.Fatal("drop_node not replayed")
	}
	r, err := s2.Database().Relation("Flies")
	must(t, err)
	if r.Mode() != core.OnPath {
		t.Fatalf("mode = %v", r.Mode())
	}
}

// TestStoreFailureInjection: when the WAL cannot be written (simulated by
// closing its file), the store reports ErrStoreFailed and refuses further
// mutations; reopening recovers the logged prefix.
func TestStoreFailureInjection(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	populateStore(t, s)

	// Simulate an I/O failure: close the log out from under the store.
	must(t, s.log.Close())
	err = s.Assert("Flies", "Tweety")
	if !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("got %v, want ErrStoreFailed", err)
	}
	// Every subsequent mutation refuses fast.
	if err := s.CreateHierarchy("X"); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("got %v", err)
	}
	if err := s.ApplyTx([]catalog.TxOp{{Kind: "assert", Relation: "Flies", Values: []string{"Tweety"}}}); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("got %v", err)
	}

	// Recovery restores the pre-failure state (Tweety's assert was applied
	// in memory but never logged — it must be gone).
	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	r, err := s2.Database().Relation("Flies")
	must(t, err)
	if _, ok := r.Lookup(core.Item{"Tweety"}); ok {
		t.Fatal("unlogged mutation survived recovery")
	}
	got, err := s2.Database().Holds("Flies", "Patricia")
	must(t, err)
	if !got {
		t.Fatal("logged prefix lost")
	}
}

// TestStoreDirAccessor.
func TestStoreDirAccessor(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	defer s.Close()
	if s.Dir() != dir {
		t.Fatalf("Dir = %q", s.Dir())
	}
}

// TestStoreTxWithRetractReplay: retract inside a tx bracket replays.
func TestStoreTxWithRetractReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	populateStore(t, s)
	ops := []catalog.TxOp{
		{Kind: "retract", Relation: "Flies", Values: []string{"AFP"}},
		{Kind: "assert", Relation: "Flies", Values: []string{"Patricia"}},
	}
	must(t, s.ApplyTx(ops))
	must(t, s.Close())

	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	r, err := s2.Database().Relation("Flies")
	must(t, err)
	if _, ok := r.Lookup(core.Item{"AFP"}); ok {
		t.Fatal("retract in tx not replayed")
	}
	got, err := s2.Database().Holds("Flies", "Patricia")
	must(t, err)
	if !got {
		t.Fatal("assert in tx not replayed")
	}
}
