// Package storage persists hierarchical relational databases: versioned,
// checksummed binary snapshots plus an append-only operation log (WAL) with
// crash recovery. Together with the catalog package it turns the in-memory
// model of the paper into a durable store.
package storage

import (
	"errors"
	"fmt"
	"sort"

	"hrdb/internal/catalog"
	"hrdb/internal/core"
	"hrdb/internal/hierarchy"
)

// ErrCorrupt indicates a snapshot or log whose checksum, magic, or
// structure is invalid.
var ErrCorrupt = errors.New("storage: corrupt data")

// ErrVersion indicates an unsupported format version.
var ErrVersion = errors.New("storage: unsupported format version")

// NodeSpec describes one hierarchy node: its direct parents (possibly
// including deliberately redundant edges) and whether it is an instance.
type NodeSpec struct {
	Name     string
	Instance bool
	Parents  []string
}

// HierarchySpec is the serializable form of a hierarchy.
type HierarchySpec struct {
	Domain string
	// Nodes are listed in a topological order (parents before children).
	Nodes []NodeSpec
	// Prefs are (stronger, weaker) preference pairs.
	Prefs [][2]string
}

// TupleSpec is one signed tuple.
type TupleSpec struct {
	Item []string
	Sign bool
}

// RelationAttr names one relation attribute and its domain.
type RelationAttr struct {
	Name   string
	Domain string
}

// RelationSpec is the serializable form of a relation.
type RelationSpec struct {
	Name   string
	Attrs  []RelationAttr
	Mode   int
	Tuples []TupleSpec
}

// DatabaseSpec is the serializable form of a whole database.
type DatabaseSpec struct {
	Policy      int
	Hierarchies []HierarchySpec
	Relations   []RelationSpec
	// LogEpoch names the WAL generation this snapshot supersedes: recovery
	// replays only wal file of this epoch. Zero (also the value decoded
	// from pre-epoch snapshots) selects the legacy "wal.log" name.
	LogEpoch uint64
	// PrimaryTerm is the monotonic fencing term under which this state was
	// written (see Store.Term). It rises by one per failover promotion and
	// never falls; a node holding a lower term than its peers has been
	// deposed and must not accept writes. Zero on pre-term snapshots.
	PrimaryTerm uint64
	// TakeoverEpoch/TakeoverOffset record, on a store materialized by a
	// replica's promotion, the replication position (in the *previous*
	// primary's epoch numbering) up to which the promoting replica had
	// applied. A deposed primary rejoining uses it as the divergence point:
	// everything in its own WAL past this position was never replicated and
	// is quarantined rather than silently discarded. Zero on stores that
	// were never promoted from a replica.
	TakeoverEpoch  uint64
	TakeoverOffset int64
}

// SnapshotHierarchy converts a hierarchy to its spec.
func SnapshotHierarchy(h *hierarchy.Hierarchy) HierarchySpec {
	spec := HierarchySpec{Domain: h.Domain()}
	idx := h.TopoIndex()
	nodes := h.Nodes()
	sort.Slice(nodes, func(i, j int) bool {
		if idx[nodes[i]] != idx[nodes[j]] {
			return idx[nodes[i]] < idx[nodes[j]]
		}
		return nodes[i] < nodes[j]
	})
	for _, n := range nodes {
		if n == h.Domain() {
			continue
		}
		spec.Nodes = append(spec.Nodes, NodeSpec{
			Name:     n,
			Instance: h.IsInstance(n),
			Parents:  h.Parents(n),
		})
	}
	spec.Prefs = h.Preferences()
	return spec
}

// BuildHierarchy reconstructs a hierarchy from its spec.
func BuildHierarchy(spec HierarchySpec) (*hierarchy.Hierarchy, error) {
	h := hierarchy.New(spec.Domain)
	for _, n := range spec.Nodes {
		var err error
		if n.Instance {
			err = h.AddInstance(n.Name, n.Parents...)
		} else {
			err = h.AddClass(n.Name, n.Parents...)
		}
		if err != nil {
			return nil, fmt.Errorf("storage: rebuild hierarchy %q: %w", spec.Domain, err)
		}
	}
	for _, p := range spec.Prefs {
		if err := h.Prefer(p[0], p[1]); err != nil {
			return nil, fmt.Errorf("storage: rebuild hierarchy %q: %w", spec.Domain, err)
		}
	}
	return h, nil
}

// SnapshotRelation converts a relation to its spec.
func SnapshotRelation(r *core.Relation) RelationSpec {
	s := r.Schema()
	spec := RelationSpec{Name: r.Name(), Mode: int(r.Mode())}
	for i := 0; i < s.Arity(); i++ {
		a := s.Attr(i)
		spec.Attrs = append(spec.Attrs, RelationAttr{Name: a.Name, Domain: a.Domain.Domain()})
	}
	for _, t := range r.Tuples() {
		spec.Tuples = append(spec.Tuples, TupleSpec{Item: append([]string(nil), t.Item...), Sign: t.Sign})
	}
	return spec
}

// Fingerprint renders a database's logical state in a canonical form: the
// snapshot spec with every order-insensitive collection sorted and the
// physical LogEpoch zeroed. Two databases with equal fingerprints hold the
// same facts — the convergence check used by crash-recovery tests, the
// replication acceptance tests, and the replication benchmark.
func Fingerprint(db *catalog.Database) string {
	spec := SnapshotDatabase(db)
	// Physical/lineage details, not logical state: two replicas hold the
	// same facts regardless of which epoch, term, or takeover produced them.
	spec.LogEpoch = 0
	spec.PrimaryTerm = 0
	spec.TakeoverEpoch, spec.TakeoverOffset = 0, 0
	for i := range spec.Hierarchies {
		h := &spec.Hierarchies[i]
		for j := range h.Nodes {
			sort.Strings(h.Nodes[j].Parents)
		}
		sort.Slice(h.Nodes, func(a, b int) bool { return h.Nodes[a].Name < h.Nodes[b].Name })
		sort.Slice(h.Prefs, func(a, b int) bool {
			if h.Prefs[a][0] != h.Prefs[b][0] {
				return h.Prefs[a][0] < h.Prefs[b][0]
			}
			return h.Prefs[a][1] < h.Prefs[b][1]
		})
	}
	sort.Slice(spec.Hierarchies, func(a, b int) bool {
		return spec.Hierarchies[a].Domain < spec.Hierarchies[b].Domain
	})
	for i := range spec.Relations {
		r := &spec.Relations[i]
		sort.Slice(r.Tuples, func(a, b int) bool {
			return fmt.Sprint(r.Tuples[a]) < fmt.Sprint(r.Tuples[b])
		})
	}
	sort.Slice(spec.Relations, func(a, b int) bool {
		return spec.Relations[a].Name < spec.Relations[b].Name
	})
	return fmt.Sprintf("%+v", spec)
}

// SnapshotDatabase converts a whole database to its spec.
func SnapshotDatabase(db *catalog.Database) DatabaseSpec {
	spec := DatabaseSpec{Policy: int(db.Policy())}
	for _, d := range db.Hierarchies() {
		h, err := db.Hierarchy(d)
		if err != nil {
			continue
		}
		spec.Hierarchies = append(spec.Hierarchies, SnapshotHierarchy(h))
	}
	for _, n := range db.Relations() {
		r, err := db.Snapshot(n)
		if err != nil {
			continue
		}
		spec.Relations = append(spec.Relations, SnapshotRelation(r))
	}
	return spec
}

// BuildDatabase reconstructs a database from its spec.
func BuildDatabase(spec DatabaseSpec) (*catalog.Database, error) {
	db := catalog.New()
	db.SetPolicy(catalog.ExceptionPolicy(spec.Policy))
	for _, hs := range spec.Hierarchies {
		h, err := BuildHierarchy(hs)
		if err != nil {
			return nil, err
		}
		if err := db.AttachHierarchy(h); err != nil {
			return nil, err
		}
	}
	for _, rs := range spec.Relations {
		attrs := make([]catalog.AttrSpec, len(rs.Attrs))
		for i, a := range rs.Attrs {
			attrs[i] = catalog.AttrSpec{Name: a.Name, Domain: a.Domain}
		}
		r, err := db.CreateRelation(rs.Name, attrs...)
		if err != nil {
			return nil, err
		}
		r.SetMode(core.Preemption(rs.Mode))
		for _, t := range rs.Tuples {
			if err := r.Insert(core.Item(t.Item), t.Sign); err != nil {
				return nil, fmt.Errorf("storage: rebuild relation %q: %w", rs.Name, err)
			}
		}
	}
	return db, nil
}
