package storage

import "hrdb/internal/obs"

// Storage metrics, registered on the obs default registry. Process-wide:
// every Store and Log in the process feeds the same series. All of them sit
// on paths that already pay for a write, an fsync, or a file scan, so none
// needs sampling or batching.
var (
	metricWALRecords = obs.Default().Counter("hrdb_storage_wal_records_total")
	metricWALBytes   = obs.Default().Counter("hrdb_storage_wal_bytes_total")
	metricWALFsyncs  = obs.Default().Counter("hrdb_storage_wal_fsyncs_total")

	// Group-commit batch shape: how many records / bytes one fsync covered.
	metricGroupRecords = obs.Default().Histogram("hrdb_storage_group_commit_records")
	metricGroupBytes   = obs.Default().Histogram("hrdb_storage_group_commit_bytes")

	metricCheckpoints  = obs.Default().Counter("hrdb_storage_checkpoints_total")
	metricCheckpointNS = obs.Default().Histogram("hrdb_storage_checkpoint_duration_ns")

	metricOpens         = obs.Default().Counter("hrdb_storage_opens_total")
	metricReplayRecords = obs.Default().Counter("hrdb_storage_replay_records_total")
	metricReplayNS      = obs.Default().Histogram("hrdb_storage_replay_duration_ns")
)
