package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"hrdb/internal/catalog"
)

// Fault-injection tests: the FaultFS seam makes fsync errors, short writes,
// and missing directory fsyncs deterministic.

// TestLogFsyncErrorPoisons: a failed fsync poisons the log — later Append
// and Replay calls return an error instead of writing records whose
// durability would be unknowable, even though the "device" recovered.
func TestLogFsyncErrorPoisons(t *testing.T) {
	ffs := NewFaultFS(nil)
	l, err := OpenLogFS(ffs, filepath.Join(t.TempDir(), "wal.log"))
	must(t, err)
	must(t, l.Append(Record{Op: OpCreateHierarchy, Target: "D"}))

	ffs.FailSyncAfter(0)
	if err := l.Append(Record{Op: OpCreateHierarchy, Target: "E"}); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append with failing fsync: got %v, want ErrLogFailed", err)
	}
	// The fault was one-shot; the log must stay poisoned regardless.
	if err := l.Append(Record{Op: OpCreateHierarchy, Target: "F"}); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after poison: got %v, want ErrLogFailed", err)
	}
	if err := l.Replay(func(Record) error { return nil }); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("replay after poison: got %v, want ErrLogFailed", err)
	}
	l.Close()
}

// TestLogShortWritePoisonsAndRecovers: a short write mid-frame poisons the
// log; reopening truncates the torn frame and the valid prefix survives,
// appendable.
func TestLogShortWritePoisonsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	ffs := NewFaultFS(nil)
	l, err := OpenLogFS(ffs, path)
	must(t, err)
	must(t, l.Append(Record{Op: OpCreateHierarchy, Target: "D"}))
	must(t, l.Append(Record{Op: OpAssert, Target: "R", Args: []string{"a"}}))

	ffs.FailWriteAfter(0, 5) // tear the next frame after 5 bytes
	if err := l.Append(Record{Op: OpAssert, Target: "R", Args: []string{"b"}}); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("torn append: got %v, want ErrLogFailed", err)
	}
	if err := l.Append(Record{Op: OpAssert, Target: "R", Args: []string{"c"}}); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after torn write: got %v, want ErrLogFailed", err)
	}
	l.Close()

	// Reopen: the torn frame is truncated, both valid records replay, and
	// the log accepts appends again.
	l2, err := OpenLog(path)
	must(t, err)
	defer l2.Close()
	n := 0
	must(t, l2.Replay(func(Record) error { n++; return nil }))
	if n != 2 {
		t.Fatalf("recovered %d records, want 2", n)
	}
	must(t, l2.Append(Record{Op: OpAssert, Target: "R", Args: []string{"d"}}))
	n = 0
	must(t, l2.Replay(func(Record) error { n++; return nil }))
	if n != 3 {
		t.Fatalf("after re-append: %d records, want 3", n)
	}
}

// TestStoreFsyncFaultFailsStore: an fsync error during a mutation surfaces
// as ErrStoreFailed, the store refuses further mutations, and reopening
// recovers a consistent state containing at least every previously
// acknowledged operation.
func TestStoreFsyncFaultFailsStore(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	s, err := OpenOptions(dir, Options{FS: ffs})
	must(t, err)
	populateStore(t, s)

	ffs.FailSyncAfter(0)
	if err := s.Assert("Flies", "Tweety"); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("got %v, want ErrStoreFailed", err)
	}
	if err := s.CreateHierarchy("X"); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("mutation after failure: got %v", err)
	}
	if err := s.ApplyTx([]catalog.TxOp{{Kind: "assert", Relation: "Flies", Values: []string{"Tweety"}}}); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("tx after failure: got %v", err)
	}
	if err := s.Checkpoint(); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("checkpoint after failure: got %v", err)
	}

	// Reopen on a healthy FS: every acknowledged op is present. (The op
	// whose fsync errored has unknown durability — either outcome is a
	// consistent prefix — so it is not asserted either way.)
	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	got, err := s2.Database().Holds("Flies", "Patricia")
	must(t, err)
	if !got {
		t.Fatal("acknowledged prefix lost after fsync fault")
	}
}

// TestStoreShortWriteFaultRecovery: a write torn mid-frame by the fault
// program is discarded on reopen — the unacknowledged mutation is rolled
// back, the acknowledged prefix intact.
func TestStoreShortWriteFaultRecovery(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	s, err := OpenOptions(dir, Options{FS: ffs})
	must(t, err)
	populateStore(t, s)

	ffs.FailWriteAfter(0, 3)
	if err := s.Assert("Flies", "Tweety"); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("got %v, want ErrStoreFailed", err)
	}
	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	r, err := s2.Database().Relation("Flies")
	must(t, err)
	if _, ok := r.Lookup([]string{"Tweety"}); ok {
		t.Fatal("torn, unacknowledged record resurrected")
	}
	got, err := s2.Database().Holds("Flies", "Patricia")
	must(t, err)
	if !got {
		t.Fatal("acknowledged prefix lost after torn write")
	}
}

// TestCheckpointSyncsDirectory: checkpoint must fsync the store directory
// for both the snapshot rename and the new log creation, and a failing
// directory fsync fails the checkpoint.
func TestCheckpointSyncsDirectory(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	s, err := OpenOptions(dir, Options{FS: ffs})
	must(t, err)
	populateStore(t, s)

	before := ffs.DirSyncs()
	must(t, s.Checkpoint())
	if got := ffs.DirSyncs() - before; got < 2 {
		t.Fatalf("checkpoint issued %d directory fsyncs, want >= 2 (snapshot rename + log creation)", got)
	}
	size, err := s.LogSize()
	must(t, err)
	if size != 0 {
		t.Fatalf("log size after checkpoint = %d", size)
	}

	must(t, s.Assert("Flies", "Tweety"))
	ffs.FailDirSync(true)
	if err := s.Checkpoint(); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("checkpoint with failing dir fsync: got %v, want ErrStoreFailed", err)
	}
	ffs.FailDirSync(false)

	// The poisoned store reopens to a consistent state with everything
	// acknowledged before the failed checkpoint.
	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	got, err := s2.Database().Holds("Flies", "Tweety")
	must(t, err)
	if !got {
		t.Fatal("acknowledged op lost across failed checkpoint")
	}
}

// TestCheckpointRotatesEpochs: each checkpoint moves to a fresh WAL file;
// post-checkpoint mutations land in it, recovery reads it, and the old
// file is removed.
func TestCheckpointRotatesEpochs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	populateStore(t, s)
	must(t, s.Checkpoint())
	must(t, s.Assert("Flies", "Tweety"))
	must(t, s.Checkpoint())
	must(t, s.AddInstance("Animal", "Paul", "GP"))
	must(t, s.Close())

	osfs := OsFS{}
	if _, err := osfs.Stat(filepath.Join(dir, walName(2))); err != nil {
		t.Fatalf("epoch-2 wal missing: %v", err)
	}
	for _, old := range []string{walName(0), walName(1)} {
		if _, err := osfs.Stat(filepath.Join(dir, old)); err == nil {
			t.Fatalf("stale wal %s not removed", old)
		}
	}

	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	h, err := s2.Database().Hierarchy("Animal")
	must(t, err)
	if !h.Has("Paul") {
		t.Fatal("post-checkpoint mutation lost")
	}
	got, err := s2.Database().Holds("Flies", "Tweety")
	must(t, err)
	if !got {
		t.Fatal("checkpointed state lost")
	}
}

// TestStoreConcurrentApplyTxGroupCommit: many concurrent committers, all
// transactions acknowledged, recovery sees every one, and group commit
// coalesces their fsyncs (fewer syncs than records).
func TestStoreConcurrentApplyTxGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	must(t, s.CreateHierarchy("D"))
	must(t, s.CreateRelation("R", catalog.AttrSpec{Name: "X", Domain: "D"}))
	const workers, txsPerWorker = 8, 20
	for w := 0; w < workers; w++ {
		for i := 0; i < txsPerWorker; i++ {
			must(t, s.AddInstance("D", fmt.Sprintf("w%d-i%d", w, i), "D"))
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txsPerWorker; i++ {
				name := fmt.Sprintf("w%d-i%d", w, i)
				if err := s.ApplyTx([]catalog.TxOp{
					{Kind: "assert", Relation: "R", Values: []string{name}},
				}); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	records, syncs := s.LogStats()
	if syncs >= records {
		t.Fatalf("no coalescing: %d fsyncs for %d records", syncs, records)
	}
	live := fingerprint(s.Database())
	must(t, s.Close())

	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	if got := fingerprint(s2.Database()); got != live {
		t.Fatal("recovered state diverges from live state after concurrent commits")
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < txsPerWorker; i++ {
			got, err := s2.Database().Holds("R", fmt.Sprintf("w%d-i%d", w, i))
			must(t, err)
			if !got {
				t.Fatalf("committed tx w%d-i%d lost", w, i)
			}
		}
	}
}

// TestPerRecordSyncBaseline: the E10 baseline mode still commits and
// recovers correctly.
func TestPerRecordSyncBaseline(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenOptions(dir, Options{PerRecordSync: true})
	must(t, err)
	must(t, s.CreateHierarchy("D"))
	must(t, s.CreateRelation("R", catalog.AttrSpec{Name: "X", Domain: "D"}))
	must(t, s.AddInstance("D", "i1", "D"))
	must(t, s.ApplyTx([]catalog.TxOp{{Kind: "assert", Relation: "R", Values: []string{"i1"}}}))
	must(t, s.Close())

	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	got, err := s2.Database().Holds("R", "i1")
	must(t, err)
	if !got {
		t.Fatal("per-record-sync tx lost")
	}
}
