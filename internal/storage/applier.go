package storage

import (
	"fmt"

	"hrdb/internal/catalog"
)

// Applier consumes a WAL record stream in log order and applies the
// committed state to a catalog database. It owns the transaction-bracket
// semantics of the log: records inside a tx_begin bracket — DML and
// otherwise — are buffered and applied only when the bracket closes with
// tx_commit, as one catalog transaction per DML run (an individual record
// of a batch may be inconsistent on its own, §3.1's whole point); a
// tx_abort bracket is discarded wholesale.
//
// The Applier is the single replay semantics of the system: Store recovery
// and the replication follower (internal/repl) both feed records through
// it, so a replica converges to exactly the state a crash recovery of the
// primary would produce. An Applier is not safe for concurrent use.
type Applier struct {
	db   *catalog.Database
	tx   []Record
	inTx bool
}

// NewApplier creates an applier over db.
func NewApplier(db *catalog.Database) *Applier { return &Applier{db: db} }

// InTx reports whether the applier is inside an open transaction bracket.
// Positions inside a bracket are not resumable: a replication follower
// acknowledges (and resumes from) only record boundaries where InTx is
// false.
func (a *Applier) InTx() bool { return a.inTx }

// Pending returns the number of records buffered inside the open bracket —
// received but not yet applied (they apply at tx_commit or vanish at
// tx_abort).
func (a *Applier) Pending() int { return len(a.tx) }

// Apply consumes one record. Bracketed records are buffered; everything
// else (and a closing tx_commit's buffered batch) is applied immediately.
func (a *Applier) Apply(rec Record) error {
	switch rec.Op {
	case OpTxBegin:
		a.inTx = true
		a.tx = nil
		return nil
	case OpTxAbort:
		a.inTx = false
		a.tx = nil
		return nil
	case OpTxCommit:
		a.inTx = false
		recs := a.tx
		a.tx = nil
		return a.applyCommitted(recs)
	}
	if a.inTx {
		a.tx = append(a.tx, rec)
		return nil
	}
	return applyRecord(a.db, rec)
}

// applyCommitted applies the records of one committed bracket in order:
// consecutive DML records form one catalog transaction; any other record
// (not produced by this writer, but tolerated from foreign or legacy logs)
// is applied at its position.
func (a *Applier) applyCommitted(recs []Record) error {
	var ops []catalog.TxOp
	flush := func() error {
		if len(ops) == 0 {
			return nil
		}
		err := a.db.ApplyOps(ops)
		ops = nil
		return err
	}
	for _, rec := range recs {
		switch rec.Op {
		case OpAssert, OpDeny, OpRetract:
			kind := map[Op]string{OpAssert: "assert", OpDeny: "deny", OpRetract: "retract"}[rec.Op]
			ops = append(ops, catalog.TxOp{Kind: kind, Relation: rec.Target, Values: rec.Args})
		default:
			if err := flush(); err != nil {
				return err
			}
			if err := applyRecord(a.db, rec); err != nil {
				return err
			}
		}
	}
	return flush()
}

// applyRecord executes one standalone record against the catalog.
func applyRecord(db *catalog.Database, rec Record) error {
	switch rec.Op {
	case OpCreateHierarchy:
		_, err := db.CreateHierarchy(rec.Target)
		return err
	case OpAddClass, OpAddInstance:
		h, err := db.Hierarchy(rec.Target)
		if err != nil {
			return err
		}
		if len(rec.Args) == 0 {
			return fmt.Errorf("%w: %s without a name", ErrCorrupt, rec.Op)
		}
		name, parents := rec.Args[0], rec.Args[1:]
		if rec.Op == OpAddInstance {
			return h.AddInstance(name, parents...)
		}
		return h.AddClass(name, parents...)
	case OpAddEdge:
		h, err := db.Hierarchy(rec.Target)
		if err != nil {
			return err
		}
		if len(rec.Args) != 2 {
			return fmt.Errorf("%w: add_edge wants 2 args", ErrCorrupt)
		}
		return h.AddEdge(rec.Args[0], rec.Args[1])
	case OpPrefer:
		h, err := db.Hierarchy(rec.Target)
		if err != nil {
			return err
		}
		if len(rec.Args) != 2 {
			return fmt.Errorf("%w: prefer wants 2 args", ErrCorrupt)
		}
		return h.Prefer(rec.Args[0], rec.Args[1])
	case OpCreateRelation:
		if len(rec.Args)%2 != 0 {
			return fmt.Errorf("%w: create_relation wants attr/domain pairs", ErrCorrupt)
		}
		attrs := make([]catalog.AttrSpec, 0, len(rec.Args)/2)
		for i := 0; i+1 < len(rec.Args); i += 2 {
			attrs = append(attrs, catalog.AttrSpec{Name: rec.Args[i], Domain: rec.Args[i+1]})
		}
		_, err := db.CreateRelation(rec.Target, attrs...)
		return err
	case OpDropRelation:
		return db.DropRelation(rec.Target)
	case OpAssert:
		return db.Assert(rec.Target, rec.Args...)
	case OpDeny:
		return db.Deny(rec.Target, rec.Args...)
	case OpRetract:
		_, err := db.Retract(rec.Target, rec.Args...)
		return err
	case OpConsolidate:
		_, err := db.Consolidate(rec.Target)
		return err
	case OpExplicate:
		return db.Explicate(rec.Target, rec.Args...)
	case OpDropNode:
		if len(rec.Args) != 1 {
			return fmt.Errorf("%w: drop_node wants 1 arg", ErrCorrupt)
		}
		return db.DropNode(rec.Target, rec.Args[0])
	case OpSetMode:
		if len(rec.Args) != 1 {
			return fmt.Errorf("%w: set_mode wants 1 arg", ErrCorrupt)
		}
		mode, err := parseMode(rec.Args[0])
		if err != nil {
			return err
		}
		return db.SetMode(rec.Target, mode)
	case OpTxBegin, OpTxCommit, OpTxAbort:
		// Brackets are interpreted by the Applier; standalone ones are inert.
		return nil
	case OpNewTerm:
		// Fencing metadata, not catalog state: Store recovery reads the term
		// out of the record stream itself; replicas learn terms from stream
		// frames. Either way the catalog is untouched.
		return nil
	default:
		return fmt.Errorf("%w: unknown op %q", ErrCorrupt, rec.Op)
	}
}
