package storage

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Tests for the primary fencing-term machinery: AdoptTerm durability,
// Fence/ErrDeposed semantics, Create-from-spec materialization, and the
// divergence quarantine used by deposed-primary rejoin.

// TestAdoptTermSurvivesReopen: a term adopted after the last checkpoint
// exists only as an OpNewTerm WAL record; recovery must fold it back in.
func TestAdoptTermSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	if got := s.Term(); got != 0 {
		t.Fatalf("fresh store term = %d, want 0", got)
	}
	must(t, s.AdoptTerm(3))
	if got := s.Term(); got != 3 {
		t.Fatalf("term after adopt = %d, want 3", got)
	}
	// Lower terms are refused and do not regress the store.
	if err := s.AdoptTerm(2); err == nil {
		t.Fatal("adopting a lower term succeeded")
	}
	must(t, s.Close())

	s, err = Open(dir)
	must(t, err)
	defer s.Close()
	if got := s.Term(); got != 3 {
		t.Fatalf("term after reopen = %d, want 3", got)
	}
}

// TestAdoptTermSurvivesCheckpoint: checkpoint rotation discards the WAL
// (including OpNewTerm records), so the snapshot must carry the term.
func TestAdoptTermSurvivesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	must(t, s.AdoptTerm(7))
	must(t, s.CreateHierarchy("D"))
	must(t, s.Checkpoint())
	must(t, s.Close())

	s, err = Open(dir)
	must(t, err)
	defer s.Close()
	if got := s.Term(); got != 7 {
		t.Fatalf("term after checkpoint+reopen = %d, want 7", got)
	}
}

// TestFenceRejectsMutations: a fenced store refuses every mutation with
// ErrDeposed — before any staging or apply — while reads, WAL access, and
// the fencing metadata stay available.
func TestFenceRejectsMutations(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	defer s.Close()
	must(t, s.CreateHierarchy("D"))
	must(t, s.AdoptTerm(2))

	// Terms at or below the store's own never fence: a primary is not
	// deposed by its past.
	if s.Fence(1) || s.Fence(2) {
		t.Fatal("fenced by a term at or below our own")
	}
	if got := s.FencedBy(); got != 0 {
		t.Fatalf("FencedBy after refused fences = %d, want 0", got)
	}

	if !s.Fence(5) {
		t.Fatal("higher term did not fence")
	}
	if got := s.FencedBy(); got != 5 {
		t.Fatalf("FencedBy = %d, want 5", got)
	}
	if err := s.CreateHierarchy("E"); !errors.Is(err, ErrDeposed) {
		t.Fatalf("mutation on fenced store = %v, want ErrDeposed", err)
	}
	if err := s.Assert("R", "x"); !errors.Is(err, ErrDeposed) {
		t.Fatalf("assert on fenced store = %v, want ErrDeposed", err)
	}
	// The rejected mutation left no trace: the hierarchy list is unchanged
	// and the WAL position did not move.
	if hs := s.Database().Hierarchies(); len(hs) != 1 || hs[0] != "D" {
		t.Fatalf("fenced mutation leaked state: %v", hs)
	}
	// Reads and WAL access still work (quarantine needs them).
	if _, err := s.Database().Hierarchy("D"); err != nil {
		t.Fatalf("read on fenced store: %v", err)
	}
	epoch, off := s.Position()
	if _, err := s.ReadWAL(epoch, 0, int(off)); err != nil {
		t.Fatalf("ReadWAL on fenced store: %v", err)
	}
}

// TestCreateMaterializesStore: Create writes a snapshot from the spec and
// opens a live store carrying the spec's epoch, term, and takeover point;
// it refuses to overwrite an existing store.
func TestCreateMaterializesStore(t *testing.T) {
	src := t.TempDir()
	s, err := Open(src)
	must(t, err)
	must(t, s.CreateHierarchy("D"))
	must(t, s.AddClass("D", "C"))
	spec := SnapshotDatabase(s.Database())
	want := Fingerprint(s.Database())
	must(t, s.Close())

	spec.LogEpoch = 4
	spec.PrimaryTerm = 9
	spec.TakeoverEpoch, spec.TakeoverOffset = 3, 1234

	dir := t.TempDir()
	created, err := Create(dir, spec, Options{})
	must(t, err)
	if got := Fingerprint(created.Database()); got != want {
		t.Fatalf("created store fingerprint diverged:\n got %s\nwant %s", got, want)
	}
	if got := created.LogEpoch(); got != 4 {
		t.Fatalf("created store epoch = %d, want 4", got)
	}
	if got := created.Term(); got != 9 {
		t.Fatalf("created store term = %d, want 9", got)
	}
	if e, o := created.Takeover(); e != 3 || o != 1234 {
		t.Fatalf("created store takeover = (%d, %d), want (3, 1234)", e, o)
	}
	must(t, created.Close())

	if _, err := Create(dir, spec, Options{}); err == nil {
		t.Fatal("Create overwrote an existing store")
	}

	// The materialized store reopens with its lineage intact.
	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	if got := s2.Term(); got != 9 {
		t.Fatalf("reopened created store term = %d, want 9", got)
	}
}

// TestQuarantineSuffix: the WAL bytes past the divergence point are copied
// verbatim to a sidecar, decodable as records; RemoveStoreFiles then clears
// the snapshot and WALs but preserves the sidecar.
func TestQuarantineSuffix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	must(t, s.CreateHierarchy("D"))
	must(t, s.AddClass("D", "C"))
	_, divergence := s.Position() // replicated prefix ends here

	// The divergent suffix: committed locally, never replicated.
	must(t, s.AddClass("D", "Lost1", "C"))
	must(t, s.AddClass("D", "Lost2", "C"))
	epoch, end := s.Position()

	if !s.Fence(3) {
		t.Fatal("fence refused")
	}
	path, n, err := s.QuarantineSuffix(epoch, divergence)
	must(t, err)
	if n != end-divergence {
		t.Fatalf("quarantined %d bytes, want %d", n, end-divergence)
	}
	if base := filepath.Base(path); !strings.HasPrefix(base, "quarantine-3-") {
		t.Fatalf("sidecar %q not named for the deposing term", base)
	}
	raw, err := os.ReadFile(path)
	must(t, err)
	dec := NewStreamDecoder()
	dec.Feed(raw)
	var ops []string
	for {
		rec, ok, err := dec.Next()
		must(t, err)
		if !ok {
			break
		}
		if len(rec.Args) > 0 {
			ops = append(ops, rec.Args[0])
		}
	}
	if len(ops) != 2 || ops[0] != "Lost1" || ops[1] != "Lost2" {
		t.Fatalf("quarantine decoded to %v, want the two lost classes", ops)
	}

	// An empty suffix writes no sidecar.
	if p2, n2, err := s.QuarantineSuffix(epoch, end); err != nil || p2 != "" || n2 != 0 {
		t.Fatalf("empty suffix quarantine = (%q, %d, %v), want no file", p2, n2, err)
	}

	must(t, s.Close())
	must(t, RemoveStoreFiles(dir))
	entries, err := os.ReadDir(dir)
	must(t, err)
	var left []string
	for _, e := range entries {
		left = append(left, e.Name())
	}
	if len(left) != 1 || left[0] != filepath.Base(path) {
		t.Fatalf("RemoveStoreFiles left %v, want only the quarantine sidecar", left)
	}
	// The directory now accepts a fresh bootstrap.
	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	if len(s2.Database().Hierarchies()) != 0 {
		t.Fatal("stale state survived RemoveStoreFiles")
	}
}
