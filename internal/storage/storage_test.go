package storage

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hrdb/internal/catalog"
	"hrdb/internal/core"
	"hrdb/internal/hierarchy"
)

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// buildAnimals builds the Figure 1 hierarchy with a redundant edge and a
// preference, to exercise full round-tripping.
func buildAnimals(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("Animal")
	must(t, h.AddClass("Bird"))
	must(t, h.AddClass("Canary", "Bird"))
	must(t, h.AddInstance("Tweety", "Canary"))
	must(t, h.AddClass("Penguin", "Bird"))
	must(t, h.AddClass("GalapagosPenguin", "Penguin"))
	must(t, h.AddClass("AmazingFlyingPenguin", "Penguin"))
	must(t, h.AddInstance("Patricia", "GalapagosPenguin", "AmazingFlyingPenguin"))
	must(t, h.AddInstance("Pamela", "AmazingFlyingPenguin"))
	must(t, h.AddEdge("Penguin", "Pamela")) // deliberately redundant
	must(t, h.Prefer("AmazingFlyingPenguin", "GalapagosPenguin"))
	return h
}

// TestHierarchySpecRoundTrip: structure, instances, redundant edges and
// preferences all survive.
func TestHierarchySpecRoundTrip(t *testing.T) {
	h := buildAnimals(t)
	spec := SnapshotHierarchy(h)
	h2, err := BuildHierarchy(spec)
	must(t, err)

	if !reflect.DeepEqual(h.Nodes(), h2.Nodes()) {
		t.Fatalf("nodes: %v vs %v", h.Nodes(), h2.Nodes())
	}
	for _, n := range h.Nodes() {
		if !reflect.DeepEqual(h.Parents(n), h2.Parents(n)) {
			t.Errorf("parents(%s): %v vs %v", n, h.Parents(n), h2.Parents(n))
		}
		if h.IsInstance(n) != h2.IsInstance(n) {
			t.Errorf("instance(%s) differs", n)
		}
	}
	if !reflect.DeepEqual(h.Preferences(), h2.Preferences()) {
		t.Fatalf("preferences: %v vs %v", h.Preferences(), h2.Preferences())
	}
	if !reflect.DeepEqual(h.RedundantEdges(), h2.RedundantEdges()) {
		t.Fatalf("redundant edges: %v vs %v", h.RedundantEdges(), h2.RedundantEdges())
	}
}

// buildDB builds a database with a relation over the animals hierarchy.
func buildDB(t *testing.T) *catalog.Database {
	t.Helper()
	db := catalog.New()
	must(t, db.AttachHierarchy(buildAnimals(t)))
	_, err := db.CreateRelation("Flies", catalog.AttrSpec{Name: "Creature", Domain: "Animal"})
	must(t, err)
	must(t, db.Assert("Flies", "Bird"))
	tx := db.Begin()
	tx.Deny("Flies", "Penguin").Assert("Flies", "AmazingFlyingPenguin").Assert("Flies", "Pamela")
	must(t, tx.Commit())
	return db
}

// TestDatabaseSpecRoundTrip: tuples and modes survive.
func TestDatabaseSpecRoundTrip(t *testing.T) {
	db := buildDB(t)
	spec := SnapshotDatabase(db)
	db2, err := BuildDatabase(spec)
	must(t, err)
	r1, _ := db.Snapshot("Flies")
	r2, _ := db2.Snapshot("Flies")
	if !reflect.DeepEqual(r1.Tuples(), r2.Tuples()) {
		t.Fatalf("tuples: %v vs %v", r1.Tuples(), r2.Tuples())
	}
	got, err := db2.Holds("Flies", "Tweety")
	must(t, err)
	if !got {
		t.Fatal("rebuilt database lost semantics")
	}
}

// TestSnapshotFileRoundTrip: write, read, verify.
func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.hrdb")
	db := buildDB(t)
	must(t, WriteSnapshot(path, SnapshotDatabase(db)))
	spec, err := ReadSnapshot(path)
	must(t, err)
	db2, err := BuildDatabase(spec)
	must(t, err)
	got, err := db2.Holds("Flies", "Pamela")
	must(t, err)
	if !got {
		t.Fatal("Pamela lost")
	}
}

// TestSnapshotCorruptionDetected: bit flips and truncation are caught.
func TestSnapshotCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.hrdb")
	must(t, WriteSnapshot(path, SnapshotDatabase(buildDB(t))))

	data, err := os.ReadFile(path)
	must(t, err)

	// Flip a payload bit.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xFF
	must(t, os.WriteFile(path, bad, 0o644))
	if _, err := ReadSnapshot(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: got %v", err)
	}

	// Truncate.
	must(t, os.WriteFile(path, data[:len(data)-5], 0o644))
	if _, err := ReadSnapshot(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncation: got %v", err)
	}

	// Bad magic.
	bad2 := append([]byte(nil), data...)
	bad2[0] = 'X'
	must(t, os.WriteFile(path, bad2, 0o644))
	if _, err := ReadSnapshot(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("magic: got %v", err)
	}

	// Bad version.
	bad3 := append([]byte(nil), data...)
	bad3[4] = 99
	must(t, os.WriteFile(path, bad3, 0o644))
	if _, err := ReadSnapshot(path); !errors.Is(err, ErrVersion) {
		t.Fatalf("version: got %v", err)
	}
}

// populateStore drives a store through the full DDL/DML surface.
func populateStore(t *testing.T, s *Store) {
	t.Helper()
	must(t, s.CreateHierarchy("Animal"))
	must(t, s.AddClass("Animal", "Bird"))
	must(t, s.AddClass("Animal", "Penguin", "Bird"))
	must(t, s.AddClass("Animal", "AFP", "Penguin"))
	must(t, s.AddClass("Animal", "GP", "Penguin"))
	must(t, s.AddInstance("Animal", "Tweety", "Bird"))
	must(t, s.AddInstance("Animal", "Patricia", "AFP", "GP"))
	must(t, s.Prefer("Animal", "AFP", "GP"))
	must(t, s.CreateRelation("Flies", catalog.AttrSpec{Name: "Creature", Domain: "Animal"}))
	must(t, s.Assert("Flies", "Bird"))
	must(t, s.Deny("Flies", "Penguin"))
	must(t, s.Assert("Flies", "AFP"))
}

// TestStoreRecoveryFromLog: reopening replays the WAL.
func TestStoreRecoveryFromLog(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	populateStore(t, s)
	must(t, s.Close())

	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	got, err := s2.Database().Holds("Flies", "Patricia")
	must(t, err)
	if !got {
		t.Fatal("recovered database lost Patricia")
	}
	got, err = s2.Database().Holds("Flies", "Tweety")
	must(t, err)
	if !got {
		t.Fatal("recovered database lost Tweety")
	}
}

// TestStoreCheckpointAndRecovery: checkpoint resets the WAL; recovery uses
// the snapshot plus post-checkpoint log records.
func TestStoreCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	populateStore(t, s)
	must(t, s.Checkpoint())
	size, err := s.LogSize()
	must(t, err)
	if size != 0 {
		t.Fatalf("log size after checkpoint = %d", size)
	}
	// Post-checkpoint mutation.
	must(t, s.AddInstance("Animal", "Paul", "GP"))
	must(t, s.Assert("Flies", "Tweety"))
	must(t, s.Consolidate("Flies")) // removes the redundant Tweety tuple
	must(t, s.Close())

	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	db := s2.Database()
	got, err := db.Holds("Flies", "Paul")
	must(t, err)
	if got {
		t.Fatal("Paul should not fly")
	}
	r, err := db.Relation("Flies")
	must(t, err)
	if _, ok := r.Lookup(core.Item{"Tweety"}); ok {
		t.Fatal("consolidate was not replayed")
	}
}

// TestStoreTornTailTruncated: a torn final record is discarded, earlier
// records survive.
func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	populateStore(t, s)
	must(t, s.Close())

	// Append garbage (simulating a crash mid-append).
	walPath := filepath.Join(dir, walFile)
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	must(t, err)
	_, err = f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad})
	must(t, err)
	must(t, f.Close())

	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	got, err := s2.Database().Holds("Flies", "Patricia")
	must(t, err)
	if !got {
		t.Fatal("valid prefix lost after torn tail")
	}
	// The store remains writable after truncation.
	must(t, s2.AddInstance("Animal", "Pamela", "AFP"))
}

// TestStoreExplicateAndDropLogged: the remaining ops round-trip too.
func TestStoreExplicateAndDropLogged(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	populateStore(t, s)
	must(t, s.Explicate("Flies"))
	must(t, s.CreateRelation("Tmp", catalog.AttrSpec{Name: "X", Domain: "Animal"}))
	must(t, s.DropRelation("Tmp"))
	must(t, s.Retract("Flies", "Tweety"))
	must(t, s.Close())

	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	db := s2.Database()
	if got := db.Relations(); !reflect.DeepEqual(got, []string{"Flies"}) {
		t.Fatalf("relations = %v", got)
	}
	got, err := db.Holds("Flies", "Tweety")
	must(t, err)
	if got {
		t.Fatal("retract not replayed")
	}
}

// TestLogRejectsFailedOps: a mutation that fails in memory is not logged,
// so recovery never replays it.
func TestLogRejectsFailedOps(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	populateStore(t, s)
	// Contradictory update (Bird already positive): rejected and NOT logged.
	if err := s.Deny("Flies", "Bird"); !errors.Is(err, core.ErrContradiction) {
		t.Fatalf("contradictory deny: got %v", err)
	}
	sizeBefore, err := s.LogSize()
	must(t, err)
	must(t, s.Close())
	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	sizeAfter, err := s2.LogSize()
	must(t, err)
	if sizeAfter != sizeBefore {
		t.Fatalf("log changed: %d vs %d", sizeAfter, sizeBefore)
	}
	got, err := s2.Database().Holds("Flies", "Tweety")
	must(t, err)
	if !got {
		t.Fatal("recovery broken")
	}
}

// TestAddEdgeLogged: extra is-a edges round-trip through the WAL.
func TestAddEdgeLogged(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	populateStore(t, s)
	must(t, s.AddInstance("Animal", "Pamela", "AFP"))
	must(t, s.AddEdge("Animal", "Penguin", "Pamela"))
	must(t, s.Close())
	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	h, err := s2.Database().Hierarchy("Animal")
	must(t, err)
	if h.Irredundant() {
		t.Fatal("redundant edge lost in recovery")
	}
}
