package storage

import (
	"os"
	"path/filepath"
	"testing"

	"hrdb/internal/catalog"
	"hrdb/internal/core"
)

// This file is the crash-recovery property harness: run a scripted workload
// against a store, then simulate a crash at every byte offset of the WAL by
// truncating a copy and reopening. The recovered database must equal the
// state at the last acknowledged operation whose bytes fit the prefix —
// no acknowledged operation lost, no unacknowledged bracket resurrected.

// fingerprint returns a canonical rendering of a database's full logical
// state (hierarchies, preferences, relations, modes, tuples, policy),
// independent of construction order.
func fingerprint(db *catalog.Database) string { return Fingerprint(db) }

// boundary records the durable WAL size and database state after one
// acknowledged operation.
type boundary struct {
	off int64
	fp  string
}

// expectedAt returns the state an offset-L crash must recover: the
// fingerprint at the largest acknowledged boundary not beyond L.
func expectedAt(bounds []boundary, l int64) string {
	want := bounds[0].fp
	for _, b := range bounds {
		if b.off <= l {
			want = b.fp
		}
	}
	return want
}

// runCrashWorkload drives a fresh store in dir through a scripted workload
// covering the whole mutation surface — standalone DDL and DML,
// transactions (including a rejected one), schema evolution, consolidate
// and explicate — recording a boundary after every acknowledged call. It
// returns the boundaries and the final WAL bytes.
func runCrashWorkload(t testing.TB, dir string) ([]boundary, []byte) {
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bounds []boundary
	mark := func() {
		off, err := s.LogSize()
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, boundary{off: off, fp: fingerprint(s.Database())})
	}
	step := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		mark()
	}
	mark() // empty store at offset 0

	step(s.CreateHierarchy("D"))
	step(s.AddClass("D", "C1"))
	step(s.AddClass("D", "C2", "C1"))
	step(s.AddClass("D", "C3", "C1"))
	step(s.AddInstance("D", "i1", "C2"))
	step(s.AddInstance("D", "i2", "C3"))
	step(s.AddInstance("D", "i3", "C1"))
	step(s.CreateRelation("R", catalog.AttrSpec{Name: "X", Domain: "D"}))
	step(s.Assert("R", "C1"))
	step(s.Deny("R", "C2"))

	// A transaction whose parts are only consistent together.
	step(s.ApplyTx([]catalog.TxOp{
		{Kind: "assert", Relation: "R", Values: []string{"C3"}},
		{Kind: "deny", Relation: "R", Values: []string{"i2"}},
	}))

	// A rejected transaction: its bracket is closed by tx_abort and must
	// never be recovered, at any crash offset.
	if err := s.ApplyTx([]catalog.TxOp{
		{Kind: "assert", Relation: "Nope", Values: []string{"i1"}},
	}); err == nil {
		t.Fatal("transaction on missing relation accepted")
	}
	mark()

	step(s.Assert("R", "i3"))
	step(s.Retract("R", "i3"))
	step(s.AddEdge("D", "C3", "i3"))
	step(s.Prefer("D", "C2", "C3"))
	step(s.SetMode("R", core.OnPath))
	step(s.Consolidate("R"))

	step(s.ApplyTx([]catalog.TxOp{
		{Kind: "retract", Relation: "R", Values: []string{"C3"}},
		{Kind: "assert", Relation: "R", Values: []string{"i2"}},
	}))

	step(s.CreateRelation("Tmp", catalog.AttrSpec{Name: "Y", Domain: "D"}))
	step(s.DropRelation("Tmp"))
	step(s.AddInstance("D", "doomed", "C1"))
	step(s.DropNode("D", "doomed"))
	step(s.Explicate("R"))

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if last := bounds[len(bounds)-1].off; last != int64(len(wal)) {
		t.Fatalf("durable size %d != wal file size %d", last, len(wal))
	}
	return bounds, wal
}

// TestCrashAtEveryOffset: for every byte offset L of the workload's WAL,
// a crash leaving exactly L bytes must recover exactly the committed
// prefix. Run via `make test-crash` (or the ordinary test suite; -short
// strides).
func TestCrashAtEveryOffset(t *testing.T) {
	bounds, wal := runCrashWorkload(t, t.TempDir())

	crashDir := t.TempDir()
	walPath := filepath.Join(crashDir, walFile)
	stride := 1
	if testing.Short() {
		stride = 5
	}
	for l := 0; l <= len(wal); l += stride {
		if err := os.WriteFile(walPath, wal[:l], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(crashDir)
		if err != nil {
			t.Fatalf("crash at offset %d: reopen failed: %v", l, err)
		}
		got := fingerprint(s.Database())
		want := expectedAt(bounds, int64(l))
		s.Close()
		if got != want {
			t.Fatalf("crash at offset %d: recovered state diverges from committed prefix\n got: %s\nwant: %s", l, got, want)
		}
	}
}

// TestCrashRecoveredStoreStaysWritable: after a mid-record crash the
// reopened store accepts new mutations and they survive a further reopen.
func TestCrashRecoveredStoreStaysWritable(t *testing.T) {
	_, wal := runCrashWorkload(t, t.TempDir())

	dir := t.TempDir()
	// Cut inside the final record to force tail truncation.
	if err := os.WriteFile(filepath.Join(dir, walFile), wal[:len(wal)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.AddInstance("D", "post-crash", "C1"))
	must(t, s.Assert("R", "post-crash"))
	must(t, s.Close())

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Database().Holds("R", "post-crash")
	must(t, err)
	if !got {
		t.Fatal("post-crash mutation lost after reopen")
	}
}

// TestCrashBetweenTxBeginAndCommit: records of an unterminated bracket —
// DML and non-DML alike — must not mutate the recovered database, and the
// reopened log must not strand later appends behind the open bracket.
func TestCrashBetweenTxBeginAndCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	populateStore(t, s)
	before := fingerprint(s.Database())
	must(t, s.Close())

	// Simulate a crash mid-transaction: an open bracket with DML and a
	// non-DML record, no commit. (This writer keeps brackets pure DML; the
	// set_mode covers foreign/legacy writers too.)
	l, err := OpenLog(filepath.Join(dir, walFile))
	must(t, err)
	must(t, l.Append(Record{Op: OpTxBegin}))
	must(t, l.Append(Record{Op: OpAssert, Target: "Flies", Args: []string{"GP"}}))
	must(t, l.Append(Record{Op: OpSetMode, Target: "Flies", Args: []string{"on-path"}}))
	must(t, l.Close())

	s2, err := Open(dir)
	must(t, err)
	if got := fingerprint(s2.Database()); got != before {
		t.Fatalf("uncommitted bracket mutated the recovered database\n got: %s\nwant: %s", got, before)
	}
	r, err := s2.Database().Relation("Flies")
	must(t, err)
	if r.Mode() != core.OffPath {
		t.Fatal("set_mode from an uncommitted transaction was applied")
	}
	// The bracket was truncated, so new standalone appends are recovered.
	must(t, s2.AddInstance("Animal", "Pete", "GP"))
	must(t, s2.Close())
	s3, err := Open(dir)
	must(t, err)
	defer s3.Close()
	h, err := s3.Database().Hierarchy("Animal")
	must(t, err)
	if !h.Has("Pete") {
		t.Fatal("standalone append after truncated bracket was lost")
	}
}
