package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hrdb/internal/catalog"
)

// TestCloseConcurrentWithCommitters pins the Store.Close concurrency
// contract (run under -race via `make test`): closing while committers are
// inside ApplyTx must not race, and every operation acknowledged before or
// during the close must survive a reopen. Calls that lose the race to
// Close fail with ErrStoreClosed (or ErrStoreFailed if the log poisoned
// first) — never with a torn or silently dropped commit.
func TestCloseConcurrentWithCommitters(t *testing.T) {
	for round := 0; round < 5; round++ {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.CreateHierarchy("D"); err != nil {
			t.Fatal(err)
		}
		if err := s.CreateRelation("R", catalog.AttrSpec{Name: "A", Domain: "D"}); err != nil {
			t.Fatal(err)
		}

		const committers = 8
		var mu sync.Mutex
		var acked []string
		var wg sync.WaitGroup
		start := make(chan struct{})
		lost := func(err error) bool {
			return errors.Is(err, ErrStoreClosed) || errors.Is(err, ErrStoreFailed)
		}
		for c := 0; c < committers; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				<-start
				for i := 0; ; i++ {
					name := fmt.Sprintf("n%d_%d_%d", round, c, i)
					// Two acknowledged durable steps per iteration: a logged
					// single op (AddInstance) and a bracketed transaction
					// (ApplyTx) — both paths race against Close.
					if err := s.AddInstance("D", name, "D"); err != nil {
						if !lost(err) {
							t.Errorf("AddInstance: unexpected error %v", err)
						}
						return
					}
					err := s.ApplyTx([]catalog.TxOp{
						{Kind: "assert", Relation: "R", Values: []string{name}},
					})
					if err != nil {
						if !lost(err) {
							t.Errorf("ApplyTx: unexpected error %v", err)
						}
						return
					}
					mu.Lock()
					acked = append(acked, name)
					mu.Unlock()
				}
			}(c)
		}
		close(start)
		time.Sleep(2 * time.Millisecond)
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		wg.Wait()

		if err := s.Close(); !errors.Is(err, ErrStoreClosed) {
			t.Fatalf("second Close = %v, want ErrStoreClosed", err)
		}
		if err := s.Assert("R", "D"); !errors.Is(err, ErrStoreClosed) {
			t.Fatalf("Assert after Close = %v, want ErrStoreClosed", err)
		}
		if err := s.ApplyTx([]catalog.TxOp{{Kind: "assert", Relation: "R", Values: []string{"D"}}}); !errors.Is(err, ErrStoreClosed) {
			t.Fatalf("ApplyTx after Close = %v, want ErrStoreClosed", err)
		}
		if err := s.Checkpoint(); !errors.Is(err, ErrStoreClosed) {
			t.Fatalf("Checkpoint after Close = %v, want ErrStoreClosed", err)
		}

		mu.Lock()
		ackedCopy := append([]string(nil), acked...)
		mu.Unlock()

		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		for _, name := range ackedCopy {
			ok, err := s2.Database().Holds("R", name)
			if err != nil {
				t.Fatalf("round %d: Holds(%s) after reopen: %v", round, name, err)
			}
			if !ok {
				t.Fatalf("round %d: acknowledged tuple R(%s) missing after reopen", round, name)
			}
		}
		must(t, s2.Close())
	}
}
