package storage

import (
	"context"
	"fmt"
)

// Tailer follows a Store's committed WAL stream and yields whole committed
// batches: either a single out-of-bracket record or the records of one
// committed transaction bracket (OpTxBegin..OpTxCommit, bracket markers
// stripped, aborted brackets dropped). Each batch carries the resumable
// position just past it — always an out-of-bracket record boundary, so a
// new Tailer started there observes exactly the suffix.
//
// A Tailer is the in-process analogue of a replica's WAL subscription: it
// reads the same frames ReadWAL serves to replicas, but folds bracket
// structure so callers (the materialized-view maintainer) see exactly-once
// committed effects. It is not safe for concurrent use.
type Tailer struct {
	s     *Store
	epoch uint64 // epoch being read
	read  int64  // bytes of s's epoch WAL consumed into dec
	base  int64  // epoch offset corresponding to dec's first byte
	dec   *StreamDecoder
	open  []Record // records inside the currently open bracket
	inTx  bool
}

// NewTailer returns a Tailer positioned at the store's current durable
// position: only batches committed after this call are yielded.
func NewTailer(s *Store) *Tailer {
	epoch, off := s.Position()
	return TailFrom(s, epoch, off)
}

// TailFrom returns a Tailer positioned at (epoch, offset), which must be an
// out-of-bracket record boundary previously returned by NewTailer/Next (or
// Store.Position). If the epoch has been retired by a checkpoint, the first
// Next reports ErrWALUnavailable and the caller must restart from a fresh
// NewTailer plus a full recompute of its derived state.
func TailFrom(s *Store, epoch uint64, offset int64) *Tailer {
	return &Tailer{
		s:     s,
		epoch: epoch,
		read:  offset,
		base:  offset,
		dec:   NewStreamDecoder(),
	}
}

// Position returns the boundary the Tailer has consumed up to: the position
// returned alongside the last batch (or the starting position).
func (t *Tailer) Position() (epoch uint64, offset int64) {
	return t.epoch, t.base + t.dec.Consumed()
}

// readChunk caps how many WAL bytes one ReadWAL call pulls.
const readChunk = 1 << 20

// Next blocks until the next committed batch is durable and returns it with
// the resumable position just past it. It returns ctx.Err() on cancellation,
// ErrStoreClosed when the store shuts down, ErrWALUnavailable when the tail
// position was retired by a checkpoint (caller must resync), and ErrCorrupt
// if the WAL bytes fail to decode.
func (t *Tailer) Next(ctx context.Context) ([]Record, uint64, int64, error) {
	for {
		// Drain everything already buffered in the decoder.
		for {
			rec, ok, err := t.dec.Next()
			if err != nil {
				return nil, 0, 0, err
			}
			if !ok {
				break
			}
			end := t.base + t.dec.Consumed()
			switch rec.Op {
			case OpTxBegin:
				if t.inTx {
					return nil, 0, 0, fmt.Errorf("%w: nested tx bracket at %d/%d", ErrCorrupt, t.epoch, end)
				}
				t.inTx = true
				t.open = nil
			case OpTxCommit:
				if !t.inTx {
					return nil, 0, 0, fmt.Errorf("%w: commit outside bracket at %d/%d", ErrCorrupt, t.epoch, end)
				}
				t.inTx = false
				batch := t.open
				t.open = nil
				if len(batch) > 0 {
					return batch, t.epoch, end, nil
				}
			case OpTxAbort:
				t.inTx = false
				t.open = nil
			default:
				if t.inTx {
					t.open = append(t.open, rec)
					continue
				}
				return []Record{rec}, t.epoch, end, nil
			}
		}

		// Decoder is dry: pull more bytes, rotating epochs as needed.
		buf, err := t.s.ReadWAL(t.epoch, t.read, readChunk)
		if err != nil {
			return nil, 0, 0, err
		}
		if len(buf) > 0 {
			t.dec.Feed(buf)
			t.read += int64(len(buf))
			continue
		}
		// Caught up within this epoch. If the store has rotated past it,
		// step to the next epoch; otherwise wait for new bytes.
		if t.s.LogEpoch() > t.epoch {
			end, known := t.s.EpochEnd(t.epoch)
			if !known {
				return nil, 0, 0, fmt.Errorf("%w: epoch %d end unknown", ErrWALUnavailable, t.epoch)
			}
			if t.read < end {
				continue // more bytes to read before the rotation point
			}
			if t.dec.Buffered() != 0 || t.inTx {
				return nil, 0, 0, fmt.Errorf("%w: epoch %d ends mid-frame", ErrCorrupt, t.epoch)
			}
			t.epoch++
			t.read, t.base = 0, 0
			t.dec = NewStreamDecoder()
			continue
		}
		if err := t.s.WaitChange(ctx, t.epoch, t.read); err != nil {
			return nil, 0, 0, err
		}
	}
}
