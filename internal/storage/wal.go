package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Op identifies a logged operation.
type Op string

// The logged operation kinds.
const (
	OpCreateHierarchy Op = "create_hierarchy"
	OpAddClass        Op = "add_class"
	OpAddInstance     Op = "add_instance"
	OpAddEdge         Op = "add_edge"
	OpPrefer          Op = "prefer"
	OpCreateRelation  Op = "create_relation"
	OpDropRelation    Op = "drop_relation"
	OpAssert          Op = "assert"
	OpDeny            Op = "deny"
	OpRetract         Op = "retract"
	OpConsolidate     Op = "consolidate"
	OpExplicate       Op = "explicate"
	OpTxBegin         Op = "tx_begin"
	OpTxCommit        Op = "tx_commit"
	OpDropNode        Op = "drop_node"
	OpSetMode         Op = "set_mode"
)

// Record is one WAL entry. The Args meaning depends on Op:
//
//	create_hierarchy: Target = domain
//	add_class/add_instance: Target = domain, Args = [name, parents…]
//	add_edge: Target = domain, Args = [parent, child]
//	prefer: Target = domain, Args = [stronger, weaker]
//	create_relation: Target = name, Args = [attr1, dom1, attr2, dom2, …]
//	drop_relation: Target = name
//	assert/deny/retract: Target = relation, Args = item values
//	consolidate: Target = relation
//	explicate: Target = relation, Args = attributes (empty = all)
//	tx_begin/tx_commit: bracket a transaction's records
type Record struct {
	Op     Op
	Target string
	Args   []string
}

// WAL record framing:
//
//	length uint32 little-endian (payload bytes)
//	crc    uint32 of payload
//	payload gob(Record)
//
// A torn final record (crash mid-write) is detected and truncated.

// Log is an append-only operation log.
type Log struct {
	f    *os.File
	path string
}

// OpenLog opens (or creates) the log at path, validating existing records
// and truncating a torn tail.
func OpenLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{f: f, path: path}
	valid, err := l.scanValid()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// scanValid returns the byte offset after the last valid record.
func (l *Log) scanValid() (int64, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	var offset int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(l.f, hdr[:]); err != nil {
			return offset, nil // clean EOF or torn header: stop here
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, n)
		if _, err := io.ReadFull(l.f, payload); err != nil {
			return offset, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return offset, nil // corrupt tail
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return offset, nil
		}
		offset += 8 + int64(n)
	}
}

// Append writes one record and syncs.
func (l *Log) Append(rec Record) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.f.Write(payload.Bytes()); err != nil {
		return err
	}
	return l.f.Sync()
}

// Replay invokes fn for every valid record from the start. The write
// position is restored afterwards.
func (l *Log) Replay(fn func(Record) error) error {
	end, err := l.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return err
	}
	defer l.f.Seek(end, io.SeekStart)
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var hdr [8]byte
	var read int64
	for read < end {
		if _, err := io.ReadFull(l.f, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		payload := make([]byte, n)
		if _, err := io.ReadFull(l.f, payload); err != nil {
			return fmt.Errorf("%w: torn record during replay", ErrCorrupt)
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
		read += 8 + int64(n)
	}
	return nil
}

// Reset truncates the log to empty (after a checkpoint).
func (l *Log) Reset() error {
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return l.f.Sync()
}

// Size returns the current log size in bytes.
func (l *Log) Size() (int64, error) {
	fi, err := l.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Close closes the underlying file.
func (l *Log) Close() error { return l.f.Close() }
