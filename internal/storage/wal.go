package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Op identifies a logged operation.
type Op string

// The logged operation kinds.
const (
	OpCreateHierarchy Op = "create_hierarchy"
	OpAddClass        Op = "add_class"
	OpAddInstance     Op = "add_instance"
	OpAddEdge         Op = "add_edge"
	OpPrefer          Op = "prefer"
	OpCreateRelation  Op = "create_relation"
	OpDropRelation    Op = "drop_relation"
	OpAssert          Op = "assert"
	OpDeny            Op = "deny"
	OpRetract         Op = "retract"
	OpConsolidate     Op = "consolidate"
	OpExplicate       Op = "explicate"
	OpTxBegin         Op = "tx_begin"
	OpTxCommit        Op = "tx_commit"
	OpTxAbort         Op = "tx_abort"
	OpDropNode        Op = "drop_node"
	OpSetMode         Op = "set_mode"
	// OpNewTerm records a primary fencing-term adoption (Args[0] = decimal
	// term). It carries no catalog state — the Applier treats it as inert —
	// but recovery folds it into Store.Term, so a term asserted after the
	// last checkpoint survives a restart.
	OpNewTerm Op = "new_term"
)

// Record is one WAL entry. The Args meaning depends on Op:
//
//	create_hierarchy: Target = domain
//	add_class/add_instance: Target = domain, Args = [name, parents…]
//	add_edge: Target = domain, Args = [parent, child]
//	prefer: Target = domain, Args = [stronger, weaker]
//	create_relation: Target = name, Args = [attr1, dom1, attr2, dom2, …]
//	drop_relation: Target = name
//	assert/deny/retract: Target = relation, Args = item values
//	consolidate: Target = relation
//	explicate: Target = relation, Args = attributes (empty = all)
//	tx_begin/tx_commit: bracket a committed transaction's records
//	tx_abort: closes a bracket whose transaction failed validation; the
//	bracketed records must be discarded on recovery
type Record struct {
	Op     Op
	Target string
	Args   []string
}

// WAL record framing:
//
//	length uint32 little-endian (payload bytes)
//	crc    uint32 of payload
//	payload gob(Record)
//
// Header and payload are assembled in one buffer and issued as one write,
// so a torn append can only produce a torn tail, never a gap between a
// valid header and its payload. A torn final record (crash mid-write) is
// detected and truncated at open; so is an unterminated tx_begin bracket,
// which guarantees later appends are never stranded inside a bracket an
// earlier crash left open.

// ErrLogFailed indicates a log that has been poisoned by a write or sync
// error: the durable tail is unknown, so every later Append, Commit, or
// Replay refuses until the log is reopened (which rescans and truncates).
var ErrLogFailed = errors.New("storage: log failed (write or sync error); reopen to recover")

// errLogClosed poisons a cleanly closed log against accidental reuse.
var errLogClosed = errors.New("storage: log closed")

// Log is an append-only operation log with group commit: concurrent
// committers stage frames into a shared buffer and one leader writes and
// fsyncs the whole batch, so N concurrent commits cost ~1 fsync instead
// of N.
type Log struct {
	fs   FS
	f    File
	path string

	mu      sync.Mutex
	cond    *sync.Cond
	pending []byte // staged frames not yet written
	staged  int64  // bytes staged since open (includes pending)
	durable int64  // bytes written and fsynced since open
	writing bool   // a leader is flushing outside the lock
	base    int64  // valid bytes found at open; appends start here
	err     error  // poison: set permanently by a write/sync error
	syncs   uint64 // fsyncs issued (group commit makes this < records)
	records uint64 // records staged

	// pendingRecs counts the records in pending, so the flushing leader can
	// report how many records its one fsync covered (the group-commit
	// batch-size histogram).
	pendingRecs uint64
}

// OpenLog opens (or creates) the log at path on the real file system.
func OpenLog(path string) (*Log, error) { return OpenLogFS(OsFS{}, path) }

// OpenLogFS opens (or creates) the log at path on fs, validating existing
// records and truncating both a torn tail and an unterminated transaction
// bracket.
func OpenLogFS(fs FS, path string) (*Log, error) {
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{fs: fs, f: f, path: path}
	l.cond = sync.NewCond(&l.mu)
	valid, err := l.scanValid()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.base = valid
	return l, nil
}

// createLog creates (or truncates) an empty log at path, fsyncing the file
// and its directory so the creation survives a crash. Used by checkpoint
// rotation.
func createLog(fs FS, dir, path string) (*Log, error) {
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{fs: fs, f: f, path: path}
	l.cond = sync.NewCond(&l.mu)
	return l, nil
}

// scanValid returns the byte offset after the last valid record that leaves
// the log outside an open transaction bracket. Records of an unterminated
// bracket are excluded even when individually well-formed: they belong to a
// transaction that never committed, and leaving them in place would strand
// post-crash appends behind an open bracket.
func (l *Log) scanValid() (int64, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	var offset, lastClosed int64
	var hdr [8]byte
	inTx := false
	for {
		if _, err := io.ReadFull(l.f, hdr[:]); err != nil {
			return lastClosed, nil // clean EOF or torn header: stop here
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, n)
		if _, err := io.ReadFull(l.f, payload); err != nil {
			return lastClosed, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return lastClosed, nil // corrupt tail
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return lastClosed, nil
		}
		offset += 8 + int64(n)
		switch rec.Op {
		case OpTxBegin:
			inTx = true
		case OpTxCommit, OpTxAbort:
			inTx = false
		}
		if !inTx {
			lastClosed = offset
		}
	}
}

// encodeFrame appends rec's frame (header + payload, one contiguous buffer)
// to dst and returns the extended slice.
func encodeFrame(dst []byte, rec Record) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return nil, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload.Bytes()...)
	return dst, nil
}

// Stage encodes the records and appends their frames to the in-process
// commit buffer, returning a durability mark. The frames reach disk when a
// group-commit flush covers the mark: call Sync(mark) to wait for that.
// Staged frames are written in staging order, so callers that need log
// order to match another order (the store's apply order) serialize their
// Stage calls.
func (l *Log) Stage(recs ...Record) (int64, error) {
	var buf []byte
	var err error
	for _, rec := range recs {
		if buf, err = encodeFrame(buf, rec); err != nil {
			return 0, err
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	l.pending = append(l.pending, buf...)
	l.staged += int64(len(buf))
	l.records += uint64(len(recs))
	l.pendingRecs += uint64(len(recs))
	metricWALRecords.Add(uint64(len(recs)))
	return l.staged, nil
}

// Sync blocks until every byte staged at or before mark is written and
// fsynced, or the log is poisoned. Concurrent Sync callers coalesce: one
// becomes the leader, writes the whole pending buffer in one write, issues
// one fsync, and wakes the rest (group commit).
func (l *Log) Sync(mark int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durable < mark && l.err == nil {
		if l.writing {
			l.cond.Wait()
			continue
		}
		// Become the leader for everything staged so far.
		buf := l.pending
		end := l.staged
		recs := l.pendingRecs
		l.pending = nil
		l.pendingRecs = 0
		l.writing = true
		l.mu.Unlock()

		var werr error
		if len(buf) > 0 {
			if _, werr = l.f.Write(buf); werr == nil {
				werr = l.f.Sync()
			}
			if werr == nil {
				observeFlush(len(buf), recs)
			}
		}

		l.mu.Lock()
		l.writing = false
		l.syncs++
		if werr != nil {
			// Poison: the durable tail is unknown (the write or sync may
			// have partially landed). Every waiter and every later call
			// sees the error; reopening rescans and truncates.
			l.err = fmt.Errorf("%w: %v", ErrLogFailed, werr)
		} else {
			l.durable = end
		}
		l.cond.Broadcast()
	}
	if l.durable >= mark {
		return nil
	}
	return l.err
}

// Append stages one record and waits for it to be durable. Concurrent
// Append calls still coalesce into shared fsyncs.
func (l *Log) Append(rec Record) error {
	mark, err := l.Stage(rec)
	if err != nil {
		return err
	}
	return l.Sync(mark)
}

// Commit stages the records as one contiguous run of frames and waits for
// all of them to be durable.
func (l *Log) Commit(recs []Record) error {
	mark, err := l.Stage(recs...)
	if err != nil {
		return err
	}
	return l.Sync(mark)
}

// Replay invokes fn for every durable record from the start. Staged but
// unflushed frames are not visited. The write position is restored
// afterwards. Replay refuses on a poisoned log.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	for l.writing {
		l.cond.Wait()
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	end := l.base + l.durable
	// Hold the quiescent log for the whole scan: replay is rare (recovery,
	// tests) and the file offset is shared with appends.
	defer l.mu.Unlock()

	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	defer l.f.Seek(end, io.SeekStart)
	var hdr [8]byte
	var read int64
	for read < end {
		if _, err := io.ReadFull(l.f, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		payload := make([]byte, n)
		if _, err := io.ReadFull(l.f, payload); err != nil {
			return fmt.Errorf("%w: torn record during replay", ErrCorrupt)
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
		read += 8 + int64(n)
	}
	return nil
}

// Size returns the durable log size in bytes: the valid prefix found at
// open plus every byte flushed since. Torn bytes beyond it (after a poison)
// are not counted.
func (l *Log) Size() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + l.durable, nil
}

// StagedMark returns the current staging high-water twice: as a durability
// mark suitable for Sync (relative to open, excludes the base prefix) and
// as the absolute log size in bytes once everything staged is flushed.
// Replication uses the pair to capture a consistent position under the
// store's apply lock and make it durable after releasing it.
func (l *Log) StagedMark() (mark, abs int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.staged, l.base + l.staged
}

// observeFlush records the metrics of one successful write+fsync covering
// n bytes and recs records.
func observeFlush(n int, recs uint64) {
	metricWALBytes.Add(uint64(n))
	metricWALFsyncs.Inc()
	metricGroupRecords.Observe(int64(recs))
	metricGroupBytes.Observe(int64(n))
}

// Stats returns the number of records staged and fsyncs issued since open.
// Group commit shows up as syncs < records under concurrent commits.
func (l *Log) Stats() (records, syncs uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records, l.syncs
}

// Close flushes any staged frames and closes the underlying file. A
// poisoned log skips the flush (the durable tail is already unknown).
func (l *Log) Close() error {
	l.mu.Lock()
	for l.writing {
		l.cond.Wait()
	}
	var werr error
	if l.err == nil && l.durable < l.staged {
		if _, werr = l.f.Write(l.pending); werr == nil {
			werr = l.f.Sync()
		}
		if werr == nil {
			observeFlush(len(l.pending), l.pendingRecs)
			l.durable = l.staged
			l.pending = nil
			l.pendingRecs = 0
		}
	}
	if l.err == nil {
		l.err = errLogClosed
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	cerr := l.f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
