package storage

import (
	"io"
	"os"
)

// This file defines the file-system seam the storage layer is written
// against. Production code uses OsFS (the operating system); tests inject a
// FaultFS (faultfs.go) to program short writes, fsync errors, and simulated
// crashes deterministically.

// FS is the minimal file-system surface the storage layer needs: open,
// rename, remove, stat, mkdir, and directory fsync. All paths are
// interpreted by the underlying implementation (the OS for OsFS).
type FS interface {
	// OpenFile opens the named file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// Stat returns file metadata.
	Stat(name string) (os.FileInfo, error)
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory so a rename or file creation inside it is
	// durable. Implementations may degrade to best effort on platforms that
	// do not support directory fsync.
	SyncDir(dir string) error
}

// File is the per-file surface: sequential and positioned I/O, fsync, and
// truncation.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file's data to stable storage.
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Stat returns file metadata.
	Stat() (os.FileInfo, error)
}

// OsFS is the real file system.
type OsFS struct{}

// OpenFile implements FS.
func (OsFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename implements FS.
func (OsFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OsFS) Remove(name string) error { return os.Remove(name) }

// Stat implements FS.
func (OsFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

// MkdirAll implements FS.
func (OsFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// SyncDir implements FS. Directory fsync is best effort: not every platform
// (or filesystem) permits opening and syncing a directory, and its absence
// must not make the store unusable there.
func (OsFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// readFile reads a whole file through the seam.
func readFile(fs FS, name string) ([]byte, error) {
	f, err := fs.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
