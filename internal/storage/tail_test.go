package storage

import (
	"context"
	"errors"
	"testing"
	"time"

	"hrdb/internal/catalog"
	"hrdb/internal/core"
)

func tailStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func nextBatch(t *testing.T, tl *Tailer) ([]Record, uint64, int64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	recs, epoch, off, err := tl.Next(ctx)
	if err != nil {
		t.Fatalf("Tailer.Next: %v", err)
	}
	return recs, epoch, off
}

func seedRelation(t *testing.T, s *Store) {
	t.Helper()
	if err := s.CreateHierarchy("d"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddInstance("d", "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddInstance("d", "b"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateRelation("r", catalog.AttrSpec{Name: "x", Domain: "d"}); err != nil {
		t.Fatal(err)
	}
}

// TestTailerSingleRecords checks that out-of-bracket mutations arrive one
// batch per record, with positions that resume exactly.
func TestTailerSingleRecords(t *testing.T) {
	s := tailStore(t)
	tl := NewTailer(s)
	seedRelation(t, s)

	var ops []Op
	var positions [][2]int64
	for i := 0; i < 4; i++ {
		recs, epoch, off := nextBatch(t, tl)
		if len(recs) != 1 {
			t.Fatalf("batch %d: %d records, want 1", i, len(recs))
		}
		ops = append(ops, recs[0].Op)
		positions = append(positions, [2]int64{int64(epoch), off})
	}
	want := []Op{OpCreateHierarchy, OpAddInstance, OpAddInstance, OpCreateRelation}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}

	// Resuming from an intermediate boundary replays exactly the suffix.
	tl2 := TailFrom(s, uint64(positions[1][0]), positions[1][1])
	recs, _, _ := nextBatch(t, tl2)
	if recs[0].Op != OpAddInstance || recs[0].Target != "d" || recs[0].Args[0] != "b" {
		t.Fatalf("resumed batch = %+v, want AddInstance b", recs[0])
	}
}

// TestTailerBrackets checks committed brackets fold into one batch with the
// markers stripped, and aborted brackets vanish.
func TestTailerBrackets(t *testing.T) {
	s := tailStore(t)
	seedRelation(t, s)
	tl := NewTailer(s)

	ops := []catalog.TxOp{
		{Kind: "assert", Relation: "r", Values: []string{"a"}},
		{Kind: "assert", Relation: "r", Values: []string{"b"}},
	}
	if err := s.ApplyTx(ops); err != nil {
		t.Fatalf("ApplyTx: %v", err)
	}
	recs, _, off := nextBatch(t, tl)
	if len(recs) != 2 {
		t.Fatalf("bracket batch = %+v, want 2 records", recs)
	}
	for _, r := range recs {
		if r.Op != OpAssert {
			t.Fatalf("bracket record %+v, want assert", r)
		}
	}

	// A failing bracket (touches a missing relation) is aborted in the WAL
	// and must not surface from the tail.
	if err := s.ApplyTx([]catalog.TxOp{
		{Kind: "deny", Relation: "r", Values: []string{"a"}},
		{Kind: "assert", Relation: "nope", Values: []string{"a"}},
	}); err == nil {
		t.Fatal("ApplyTx on missing relation succeeded, want error")
	}
	if err := s.Retract("r", "b"); err != nil {
		t.Fatalf("Retract: %v", err)
	}
	recs, _, off2 := nextBatch(t, tl)
	if len(recs) != 1 || recs[0].Op != OpRetract || recs[0].Target != "r" {
		t.Fatalf("post-abort batch = %+v, want single retract", recs)
	}
	if off2 <= off {
		t.Fatalf("position did not advance: %d -> %d", off, off2)
	}
}

// TestTailerRotation checks a tail survives a checkpoint boundary when the
// old epoch's file is still readable, or reports ErrWALUnavailable once the
// file is gone — never silently skips.
func TestTailerRotation(t *testing.T) {
	s := tailStore(t)
	seedRelation(t, s)
	tl := NewTailer(s)
	if err := s.Assert("r", "a"); err != nil {
		t.Fatal(err)
	}
	recs, epoch0, _ := nextBatch(t, tl)
	if recs[0].Op != OpAssert {
		t.Fatalf("got %+v", recs)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := s.Assert("r", "b"); err != nil {
		t.Fatal(err)
	}
	recs, epoch1, _ := nextBatch(t, tl)
	if recs[0].Op != OpAssert || recs[0].Args[0] != "b" {
		t.Fatalf("post-rotation batch = %+v", recs)
	}
	if epoch1 != epoch0+1 {
		t.Fatalf("epoch after rotation = %d, want %d", epoch1, epoch0+1)
	}
}

// TestTailerRetiredEpoch checks that tailing from an epoch this process no
// longer serves reports ErrWALUnavailable rather than data loss.
func TestTailerRetiredEpoch(t *testing.T) {
	s := tailStore(t)
	seedRelation(t, s)
	epoch, off := s.Position()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tl := TailFrom(s, epoch, off)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, _, _, err := tl.Next(ctx); !errors.Is(err, ErrWALUnavailable) && err != nil {
		// Either the epoch file survived (rotation keeps it) and Next
		// blocks until timeout, or the read fails with ErrWALUnavailable.
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Next = %v, want ErrWALUnavailable or timeout", err)
		}
	}
}

// TestTailerCancel checks Next honors context cancellation while waiting.
func TestTailerCancel(t *testing.T) {
	s := tailStore(t)
	tl := NewTailer(s)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, _, _, err := tl.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Next = %v, want deadline exceeded", err)
	}
}

// TestTailerStoreClose checks Next unblocks with ErrStoreClosed on shutdown.
func TestTailerStoreClose(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(s)
	done := make(chan error, 1)
	go func() {
		_, _, _, err := tl.Next(context.Background())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStoreClosed) {
			t.Fatalf("Next = %v, want ErrStoreClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not unblock on store close")
	}
}

var _ = core.Item{} // keep core import if helpers change
