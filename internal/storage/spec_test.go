package storage

import (
	"testing"
)

// TestBuildHierarchyBadSpec: broken specs are rejected with context.
func TestBuildHierarchyBadSpec(t *testing.T) {
	// Parent before child violated.
	_, err := BuildHierarchy(HierarchySpec{
		Domain: "D",
		Nodes:  []NodeSpec{{Name: "child", Parents: []string{"missing"}}},
	})
	if err == nil {
		t.Fatal("missing parent accepted")
	}
	// Duplicate node.
	_, err = BuildHierarchy(HierarchySpec{
		Domain: "D",
		Nodes:  []NodeSpec{{Name: "x"}, {Name: "x"}},
	})
	if err == nil {
		t.Fatal("duplicate accepted")
	}
	// Bad preference.
	_, err = BuildHierarchy(HierarchySpec{
		Domain: "D",
		Prefs:  [][2]string{{"a", "b"}},
	})
	if err == nil {
		t.Fatal("bad preference accepted")
	}
}

// TestBuildDatabaseBadSpecs.
func TestBuildDatabaseBadSpecs(t *testing.T) {
	// Relation referencing a missing hierarchy.
	_, err := BuildDatabase(DatabaseSpec{
		Relations: []RelationSpec{{
			Name:  "R",
			Attrs: []RelationAttr{{Name: "X", Domain: "Missing"}},
		}},
	})
	if err == nil {
		t.Fatal("missing hierarchy accepted")
	}
	// Tuple with a value outside the domain.
	_, err = BuildDatabase(DatabaseSpec{
		Hierarchies: []HierarchySpec{{Domain: "D", Nodes: []NodeSpec{{Name: "a"}}}},
		Relations: []RelationSpec{{
			Name:   "R",
			Attrs:  []RelationAttr{{Name: "X", Domain: "D"}},
			Tuples: []TupleSpec{{Item: []string{"nope"}, Sign: true}},
		}},
	})
	if err == nil {
		t.Fatal("bad tuple accepted")
	}
	// Duplicate hierarchy.
	_, err = BuildDatabase(DatabaseSpec{
		Hierarchies: []HierarchySpec{{Domain: "D"}, {Domain: "D"}},
	})
	if err == nil {
		t.Fatal("duplicate hierarchy accepted")
	}
}

// TestApplyCorruptRecords: the store rejects malformed WAL records with
// ErrCorrupt-wrapped context.
func TestApplyCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	defer s.Close()
	must(t, s.CreateHierarchy("D"))

	bad := []Record{
		{Op: OpAddClass, Target: "D"},                       // missing name
		{Op: OpAddEdge, Target: "D", Args: []string{"one"}}, // wants 2
		{Op: OpPrefer, Target: "D", Args: []string{"one"}},  // wants 2
		{Op: OpCreateRelation, Target: "R", Args: []string{"odd"}},
		{Op: Op("nonsense")},
	}
	for _, rec := range bad {
		if err := applyRecord(s.Database(), rec); err == nil {
			t.Errorf("record %+v accepted", rec)
		}
	}
}

// TestSnapshotRoundTripPreservesMode: preemption modes survive.
func TestSnapshotRoundTripPreservesMode(t *testing.T) {
	db := buildDB(t)
	r, err := db.Relation("Flies")
	must(t, err)
	r.SetMode(2) // NoPreemption
	spec := SnapshotDatabase(db)
	db2, err := BuildDatabase(spec)
	must(t, err)
	r2, err := db2.Relation("Flies")
	must(t, err)
	if int(r2.Mode()) != 2 {
		t.Fatalf("mode = %v", r2.Mode())
	}
}
