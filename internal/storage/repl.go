package storage

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// This file is the storage half of the replication subsystem
// (internal/repl): a global replication position and the primitives a
// primary needs to serve it — read raw WAL bytes by position, wait for the
// position to advance, and cut a snapshot consistent with a position.
//
// A replication position is the pair (checkpoint epoch, absolute WAL byte
// offset). Offsets are meaningful only within one epoch's log file;
// checkpoint rotation retires an epoch at a recorded end offset, and the
// stream continues at (epoch+1, 0). Positions are exchanged at record
// boundaries only, so a resumed stream never starts mid-frame.

// ErrWALUnavailable reports a replication read whose WAL segment this
// process cannot serve: the epoch was retired (and its file removed) before
// the requested offset could be read, or the epoch predates this process.
// The follower's recourse is a fresh snapshot bootstrap.
var ErrWALUnavailable = errors.New("storage: wal segment unavailable (superseded by a checkpoint)")

// Position returns the durable replication position: the current checkpoint
// epoch and the number of durable bytes in its WAL. Every acknowledged
// mutation is at or before this position.
func (s *Store) Position() (epoch uint64, offset int64) {
	s.applyMu.Lock()
	epoch, log := s.epoch, s.log
	s.applyMu.Unlock()
	offset, _ = log.Size()
	return epoch, offset
}

// LogEpoch returns the current checkpoint epoch.
func (s *Store) LogEpoch() uint64 {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	return s.epoch
}

// EpochEnd returns the final byte size of a WAL epoch this process rotated
// away from, and whether it is known. The current epoch has no end yet;
// epochs retired by earlier processes are unknown.
func (s *Store) EpochEnd(epoch uint64) (int64, bool) {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	end, ok := s.epochEnds[epoch]
	return end, ok
}

// ReadWAL returns up to max raw WAL bytes of the given epoch starting at
// byte offset from, bounded by the epoch's durable size. An empty slice
// means the reader is caught up (from == the bound). The bytes are raw
// frame data: they may begin or end mid-frame if from or max does, so
// stream consumers reassemble frames across reads.
//
// Reading a retired epoch usually fails with ErrWALUnavailable — checkpoint
// removes the superseded file — and the caller falls back to a snapshot
// bootstrap.
func (s *Store) ReadWAL(epoch uint64, from int64, max int) ([]byte, error) {
	if from < 0 || max <= 0 {
		return nil, fmt.Errorf("storage: ReadWAL: bad range (from=%d, max=%d)", from, max)
	}
	s.applyMu.Lock()
	cur, log := s.epoch, s.log
	end, retired := s.epochEnds[epoch]
	s.applyMu.Unlock()

	var limit int64
	switch {
	case epoch == cur:
		limit, _ = log.Size()
	case retired:
		limit = end
	default:
		return nil, fmt.Errorf("%w: epoch %d not served by this process", ErrWALUnavailable, epoch)
	}
	if from > limit {
		return nil, fmt.Errorf("storage: ReadWAL: offset %d beyond end %d of epoch %d", from, limit, epoch)
	}
	if from == limit {
		return nil, nil
	}

	f, err := s.fs.OpenFile(filepath.Join(s.dir, walName(epoch)), os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWALUnavailable, err)
	}
	defer f.Close()
	if _, err := f.Seek(from, io.SeekStart); err != nil {
		return nil, err
	}
	n := limit - from
	if int64(max) < n {
		n = int64(max)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("storage: ReadWAL: short read at %d/%d of epoch %d: %v", from, limit, epoch, err)
	}
	return buf, nil
}

// WaitChange blocks until the durable replication position advances beyond
// (epoch, offset), the context is done (returning ctx.Err()), or the store
// is closed (returning ErrStoreClosed). It returns immediately when the
// current position is already past the given one.
func (s *Store) WaitChange(ctx context.Context, epoch uint64, offset int64) error {
	for {
		// Subscribe before sampling the position so an advance between the
		// sample and the wait still wakes us.
		s.watchMu.Lock()
		ch := s.watch
		s.watchMu.Unlock()
		if s.closed.Load() {
			return ErrStoreClosed
		}
		curEpoch, curOff := s.Position()
		if curEpoch > epoch || (curEpoch == epoch && curOff > offset) {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// ReplicationSnapshot captures the database state and the replication
// position it corresponds to, for bootstrapping a follower: replaying the
// WAL stream from the returned (epoch, offset) onto the returned spec
// yields exactly the primary's state. The staged log equals the in-memory
// state under the apply lock, so the spec is cut there; the position is
// made durable (one group-commit flush) before returning, ensuring the
// follower never sees state the primary could lose.
func (s *Store) ReplicationSnapshot() (DatabaseSpec, uint64, int64, error) {
	if err := s.usable(); err != nil {
		return DatabaseSpec{}, 0, 0, err
	}
	s.applyMu.Lock()
	if err := s.usable(); err != nil {
		s.applyMu.Unlock()
		return DatabaseSpec{}, 0, 0, err
	}
	spec := SnapshotDatabase(s.db)
	epoch, log := s.epoch, s.log
	term := s.term
	takeoverEpoch, takeoverOffset := s.takeoverEpoch, s.takeoverOffset
	mark, abs := log.StagedMark()
	s.applyMu.Unlock()
	if err := log.Sync(mark); err != nil {
		return DatabaseSpec{}, 0, 0, fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	spec.LogEpoch = epoch
	// The bootstrap spec carries the fencing lineage so a follower adopting
	// it also adopts the primary's term (and, transitively, the takeover
	// divergence point if this primary was itself promoted from a replica).
	spec.PrimaryTerm = term
	spec.TakeoverEpoch, spec.TakeoverOffset = takeoverEpoch, takeoverOffset
	return spec, epoch, abs, nil
}

// QuarantineSuffix preserves the committed-but-unreplicated WAL suffix of a
// deposed primary before its store files are removed for rejoin. Everything
// from (fromEpoch, fromOffset) — the new primary's takeover divergence
// point — through the end of the current epoch is copied, as raw WAL frame
// bytes, into a sidecar file named quarantine-<term>-<epoch>-<offset>.wal
// in the store directory, where <term> is the deposing term (falling back
// to the store's own term if it was never fenced). The sidecar is fsynced
// before the call returns.
//
// An empty suffix (the divergence point is the end of the log: nothing was
// lost) writes no file and returns an empty path. Epochs superseded by a
// checkpoint before the divergence point can no longer be read as raw
// records and are skipped; the returned byte count covers what was actually
// preserved.
//
// The store may be fenced — quarantine is exactly the post-deposition flow —
// but must not be closed yet.
func (s *Store) QuarantineSuffix(fromEpoch uint64, fromOffset int64) (path string, n int64, err error) {
	s.applyMu.Lock()
	cur := s.epoch
	term := s.fenced.Load()
	if term == 0 {
		term = s.term
	}
	s.applyMu.Unlock()
	if fromEpoch > cur {
		return "", 0, fmt.Errorf("storage: quarantine from epoch %d beyond current epoch %d", fromEpoch, cur)
	}
	path = filepath.Join(s.dir, fmt.Sprintf("quarantine-%d-%06d-%d.wal", term, fromEpoch, fromOffset))
	var out File
	defer func() {
		if out != nil && err != nil {
			out.Close()
			_ = s.fs.Remove(path)
		}
	}()
	for e := fromEpoch; e <= cur; e++ {
		off := int64(0)
		if e == fromEpoch {
			off = fromOffset
		}
		for {
			buf, rerr := s.ReadWAL(e, off, 1<<20)
			if rerr != nil {
				if errors.Is(rerr, ErrWALUnavailable) {
					// Epoch retired and reclaimed: its records were folded
					// into a checkpoint and cannot be re-read raw.
					break
				}
				return "", 0, rerr
			}
			if len(buf) == 0 {
				break
			}
			if out == nil {
				out, err = s.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
				if err != nil {
					return "", 0, err
				}
			}
			if _, err = out.Write(buf); err != nil {
				return "", 0, err
			}
			off += int64(len(buf))
			n += int64(len(buf))
		}
	}
	if out == nil {
		return "", 0, nil
	}
	if err = out.Sync(); err != nil {
		return "", 0, err
	}
	if err = out.Close(); err != nil {
		out = nil
		_ = s.fs.Remove(path)
		return "", 0, err
	}
	out = nil
	if err = s.fs.SyncDir(s.dir); err != nil {
		return "", 0, err
	}
	return path, n, nil
}
