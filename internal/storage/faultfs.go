package storage

import (
	"errors"
	"os"
	"sync"
)

// FaultFS wraps another FS and injects programmable faults: fsync errors,
// short writes, directory-fsync errors, and a simulated crash after a byte
// budget. It makes torn-write and failed-sync scenarios deterministic, so
// the durability tests do not depend on racing a real kill.
//
// Counters (Writes, Syncs, DirSyncs) observe how the storage layer uses the
// seam — e.g. that a checkpoint really fsyncs the directory, or that group
// commit issues fewer fsyncs than records.

// ErrInjected is the error returned by every injected fault.
var ErrInjected = errors.New("faultfs: injected fault")

// FaultFS is an FS decorator with programmable faults. The zero value is
// not usable; create one with NewFaultFS.
type FaultFS struct {
	base FS

	mu sync.Mutex
	// Countdowns: -1 is disarmed; 0 means the next matching call fails
	// (one-shot), n > 0 means n calls succeed first.
	syncAfter    int
	writeAfter   int
	shortBytes   int // bytes actually written by the failing short write
	dirSyncFail  bool
	dirSyncAfter int   // one-shot SyncDir countdown; -1 disarmed
	removeFail   bool  // every Remove fails while set
	crashBudget  int64 // bytes of write budget before a simulated crash; -1 disarmed
	renameCrash  int   // renames that succeed before the crash; -1 disarmed
	crashed      bool  // after a crash every write and sync fails
	writes       int
	syncs        int
	dirSyncs     int
	renames      int
	removes      int
}

// NewFaultFS creates a fault injector over base (OsFS{} when base is nil).
func NewFaultFS(base FS) *FaultFS {
	if base == nil {
		base = OsFS{}
	}
	return &FaultFS{base: base, syncAfter: -1, writeAfter: -1, dirSyncAfter: -1, crashBudget: -1, renameCrash: -1}
}

// FailSyncAfter arms a one-shot fsync fault: the next n file Sync calls
// succeed, the one after fails with ErrInjected. Later syncs succeed again,
// which is exactly what makes poison semantics observable — the layer above
// must refuse to continue even though the device "recovered".
func (f *FaultFS) FailSyncAfter(n int) {
	f.mu.Lock()
	f.syncAfter = n
	f.mu.Unlock()
}

// FailWriteAfter arms a one-shot short write: the next n file Write calls
// succeed, the one after writes only short bytes of its buffer and returns
// ErrInjected.
func (f *FaultFS) FailWriteAfter(n, short int) {
	f.mu.Lock()
	f.writeAfter, f.shortBytes = n, short
	f.mu.Unlock()
}

// FailDirSync makes SyncDir return ErrInjected while enabled.
func (f *FaultFS) FailDirSync(enabled bool) {
	f.mu.Lock()
	f.dirSyncFail = enabled
	f.mu.Unlock()
}

// FailDirSyncAfter arms a one-shot directory-fsync fault: the next n
// SyncDir calls succeed, the one after fails with ErrInjected. Use it to
// target one SyncDir in a sequence (e.g. the post-removal dir sync of a
// checkpoint) without failing the earlier ones.
func (f *FaultFS) FailDirSyncAfter(n int) {
	f.mu.Lock()
	f.dirSyncAfter = n
	f.mu.Unlock()
}

// FailRemove makes Remove return ErrInjected while enabled.
func (f *FaultFS) FailRemove(enabled bool) {
	f.mu.Lock()
	f.removeFail = enabled
	f.mu.Unlock()
}

// CrashAfterRenames simulates a crash immediately after the n-th further
// Rename completes: the rename itself lands, then every later operation
// fails. This pins windows that contain no writes — e.g. the gap between a
// checkpoint's snapshot rename and its new-log creation.
func (f *FaultFS) CrashAfterRenames(n int) {
	f.mu.Lock()
	f.renameCrash = n
	f.crashed = false
	f.mu.Unlock()
}

// CrashAfterBytes simulates a crash once budget more bytes have been
// written: the write that crosses the budget is truncated to the remaining
// budget (a torn write), and every later write or sync fails.
func (f *FaultFS) CrashAfterBytes(budget int64) {
	f.mu.Lock()
	f.crashBudget = budget
	f.crashed = false
	f.mu.Unlock()
}

// Writes returns the number of file Write calls observed.
func (f *FaultFS) Writes() int { f.mu.Lock(); defer f.mu.Unlock(); return f.writes }

// Syncs returns the number of file Sync calls observed.
func (f *FaultFS) Syncs() int { f.mu.Lock(); defer f.mu.Unlock(); return f.syncs }

// DirSyncs returns the number of SyncDir calls observed.
func (f *FaultFS) DirSyncs() int { f.mu.Lock(); defer f.mu.Unlock(); return f.dirSyncs }

// Renames returns the number of Rename calls observed.
func (f *FaultFS) Renames() int { f.mu.Lock(); defer f.mu.Unlock(); return f.renames }

// OpenFile implements FS.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	f.renames++
	crashed := f.crashed
	crashNext := false
	if !crashed && f.renameCrash >= 0 {
		if f.renameCrash == 0 {
			f.renameCrash = -1
			crashNext = true
		} else {
			f.renameCrash--
		}
	}
	f.mu.Unlock()
	if crashed {
		return ErrInjected
	}
	err := f.base.Rename(oldpath, newpath)
	if crashNext {
		f.mu.Lock()
		f.crashed = true
		f.mu.Unlock()
	}
	return err
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	f.removes++
	fail := f.removeFail || f.crashed
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.base.Remove(name)
}

// Removes returns the number of Remove calls observed.
func (f *FaultFS) Removes() int { f.mu.Lock(); defer f.mu.Unlock(); return f.removes }

// Stat implements FS.
func (f *FaultFS) Stat(name string) (os.FileInfo, error) { return f.base.Stat(name) }

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.base.MkdirAll(path, perm)
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	f.dirSyncs++
	fail := f.dirSyncFail || f.crashed
	if f.dirSyncAfter == 0 {
		f.dirSyncAfter = -1
		fail = true
	} else if f.dirSyncAfter > 0 {
		f.dirSyncAfter--
	}
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.base.SyncDir(dir)
}

// faultFile routes Write and Sync through the injector's fault program.
type faultFile struct {
	fs *FaultFS
	f  File
}

func (ff *faultFile) Read(p []byte) (int, error)                { return ff.f.Read(p) }
func (ff *faultFile) Seek(off int64, whence int) (int64, error) { return ff.f.Seek(off, whence) }
func (ff *faultFile) Close() error                              { return ff.f.Close() }
func (ff *faultFile) Truncate(size int64) error                 { return ff.f.Truncate(size) }
func (ff *faultFile) Stat() (os.FileInfo, error)                { return ff.f.Stat() }

// Write consults the fault program: short-write countdowns and the crash
// byte budget. A short or crossing write persists its allowed prefix (the
// torn bytes really land in the underlying file) and returns ErrInjected.
func (ff *faultFile) Write(p []byte) (int, error) {
	fs := ff.fs
	fs.mu.Lock()
	fs.writes++
	if fs.crashed {
		fs.mu.Unlock()
		return 0, ErrInjected
	}
	allow := len(p)
	injected := false
	if fs.writeAfter == 0 {
		fs.writeAfter = -1
		if fs.shortBytes < allow {
			allow = fs.shortBytes
		}
		injected = true
	} else if fs.writeAfter > 0 {
		fs.writeAfter--
	}
	if fs.crashBudget >= 0 {
		if int64(allow) >= fs.crashBudget {
			allow = int(fs.crashBudget)
			fs.crashBudget = 0
			fs.crashed = true
			injected = true
		} else {
			fs.crashBudget -= int64(allow)
		}
	}
	fs.mu.Unlock()

	n := 0
	var err error
	if allow > 0 {
		n, err = ff.f.Write(p[:allow])
	}
	if injected && err == nil {
		err = ErrInjected
	}
	if n == len(p) && err == nil {
		return n, nil
	}
	if err == nil {
		err = ErrInjected
	}
	return n, err
}

// Sync consults the fsync fault program.
func (ff *faultFile) Sync() error {
	fs := ff.fs
	fs.mu.Lock()
	fs.syncs++
	if fs.crashed {
		fs.mu.Unlock()
		return ErrInjected
	}
	if fs.syncAfter == 0 {
		fs.syncAfter = -1
		fs.mu.Unlock()
		return ErrInjected
	}
	if fs.syncAfter > 0 {
		fs.syncAfter--
	}
	fs.mu.Unlock()
	return ff.f.Sync()
}
