package storage

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"hrdb/internal/catalog"
)

// This file pins the crash-safety of Checkpoint itself: the rotation
// sequence (snapshot temp write → fsync → rename → dir sync → new log →
// dir sync → old-log removal → dir sync) must leave a recoverable
// directory no matter where a crash lands inside it. A checkpoint is
// logically a no-op, so recovery after any mid-checkpoint crash must
// reproduce the exact pre-checkpoint state.

// copyDirFiles copies every regular file of src into dst.
func copyDirFiles(t testing.TB, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			in.Close()
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointCrashAtEveryBudget sweeps a write-byte crash budget across
// the whole Checkpoint operation. Whatever the budget, reopening the
// directory afterwards must recover the exact pre-checkpoint state and
// stay writable: either the rotation completed (new snapshot + new log) or
// it did not (old snapshot + old log), never a hybrid that loses or
// duplicates operations.
func TestCheckpointCrashAtEveryBudget(t *testing.T) {
	seedDir := t.TempDir()
	bounds, _ := runCrashWorkload(t, seedDir)
	want := bounds[len(bounds)-1].fp

	stride := 1
	if testing.Short() {
		stride = 7
	}
	completed := false
	for budget := 0; !completed; budget += stride {
		dir := t.TempDir()
		copyDirFiles(t, seedDir, dir)
		fs := NewFaultFS(nil)
		s, err := OpenOptions(dir, Options{FS: fs})
		if err != nil {
			t.Fatalf("budget %d: open: %v", budget, err)
		}
		fs.CrashAfterBytes(int64(budget))
		if err := s.Checkpoint(); err == nil {
			// The budget covered every write of the checkpoint: the sweep
			// has crossed the whole operation.
			completed = true
		}
		_ = s.Close()

		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("budget %d: reopen after crash: %v", budget, err)
		}
		if got := fingerprint(s2.Database()); got != want {
			t.Fatalf("budget %d: recovered state diverges from pre-checkpoint state\n got: %s\nwant: %s", budget, got, want)
		}
		if err := s2.CreateRelation("PostCrash", catalog.AttrSpec{Name: "X", Domain: "D"}); err != nil {
			t.Fatalf("budget %d: recovered store not writable: %v", budget, err)
		}
		must(t, s2.Close())
	}
}

// TestCheckpointCrashBetweenRenameAndNewLog pins the window the byte-budget
// sweep cannot reach (it contains no writes): the snapshot rename has
// landed, the new-epoch log does not exist yet. Open must read the new
// snapshot, create the empty new-epoch log itself, and recover the exact
// checkpoint state.
func TestCheckpointCrashBetweenRenameAndNewLog(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil)
	s, err := OpenOptions(dir, Options{FS: fs})
	must(t, err)
	populateStore(t, s)
	want := fingerprint(s.Database())

	// Crash immediately after the next rename: the snapshot rename is the
	// only rename Checkpoint performs.
	fs.CrashAfterRenames(0)
	if err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded through a crash after the snapshot rename")
	}
	// The crashed process is poisoned; mutations must refuse.
	if err := s.Assert("Flies", "GP"); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("mutation after mid-checkpoint crash: got %v, want ErrStoreFailed", err)
	}
	_ = s.Close()

	// The directory now holds the new snapshot (epoch 1) and the old
	// epoch-0 WAL, but no epoch-1 WAL.
	if _, err := os.Stat(filepath.Join(dir, walName(1))); !os.IsNotExist(err) {
		t.Fatalf("epoch-1 wal exists in the crash window (stat err=%v)", err)
	}

	s2, err := Open(dir)
	must(t, err)
	if got := fingerprint(s2.Database()); got != want {
		t.Fatalf("recovered state diverges from checkpoint state\n got: %s\nwant: %s", got, want)
	}
	if got := s2.LogEpoch(); got != 1 {
		t.Fatalf("recovered epoch = %d, want 1", got)
	}
	// The superseded epoch-0 WAL is removed lazily by Open.
	if _, err := os.Stat(filepath.Join(dir, walFile)); !os.IsNotExist(err) {
		t.Fatalf("superseded epoch-0 wal survived reopen (stat err=%v)", err)
	}
	// Recovered store stays writable and its writes survive a reopen.
	must(t, s2.AddInstance("Animal", "Pete", "GP"))
	must(t, s2.Close())
	s3, err := Open(dir)
	must(t, err)
	defer s3.Close()
	h, err := s3.Database().Hierarchy("Animal")
	must(t, err)
	if !h.Has("Pete") {
		t.Fatal("post-recovery write lost")
	}
}

// TestCheckpointRemoveFailureReported: a failed old-WAL removal must be
// reported (wrapped in ErrCheckpointGC) instead of silently discarded, and
// must not poison the store — the rotation itself completed.
func TestCheckpointRemoveFailureReported(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil)
	s, err := OpenOptions(dir, Options{FS: fs})
	must(t, err)
	defer s.Close()
	populateStore(t, s)

	fs.FailRemove(true)
	err = s.Checkpoint()
	if !errors.Is(err, ErrCheckpointGC) {
		t.Fatalf("checkpoint with failing Remove: got %v, want ErrCheckpointGC", err)
	}
	// The superseded WAL is still on disk…
	if _, err := os.Stat(filepath.Join(dir, walFile)); err != nil {
		t.Fatalf("old wal missing despite failed removal: %v", err)
	}
	// …but the rotation landed and the store keeps working on the new log.
	if got := s.LogEpoch(); got != 1 {
		t.Fatalf("epoch after GC failure = %d, want 1", got)
	}
	fs.FailRemove(false)
	must(t, s.Assert("Flies", "GP"))
}

// TestCheckpointDirSyncAfterRemoval: Checkpoint must fsync the directory
// after removing the old WAL (so the removal survives a crash), and a
// failure of exactly that fsync must surface as ErrCheckpointGC without
// poisoning the store.
func TestCheckpointDirSyncAfterRemoval(t *testing.T) {
	// First measure a clean checkpoint: snapshot rename, new-log creation,
	// and old-WAL removal each fsync the directory.
	dir := t.TempDir()
	fs := NewFaultFS(nil)
	s, err := OpenOptions(dir, Options{FS: fs})
	must(t, err)
	populateStore(t, s)
	before := fs.DirSyncs()
	must(t, s.Checkpoint())
	perCheckpoint := fs.DirSyncs() - before
	if perCheckpoint != 3 {
		t.Fatalf("clean checkpoint issued %d dir syncs, want 3 (rename, new log, removal)", perCheckpoint)
	}
	must(t, s.Close())

	// Now target the last of the three: the post-removal dir sync.
	dir2 := t.TempDir()
	fs2 := NewFaultFS(nil)
	s2, err := OpenOptions(dir2, Options{FS: fs2})
	must(t, err)
	defer s2.Close()
	populateStore(t, s2)
	fs2.FailDirSyncAfter(2)
	err = s2.Checkpoint()
	if !errors.Is(err, ErrCheckpointGC) {
		t.Fatalf("checkpoint with failing post-removal dir sync: got %v, want ErrCheckpointGC", err)
	}
	// Not poisoned: the rotation is complete and writes continue.
	must(t, s2.Assert("Flies", "GP"))
	// The removal itself happened; only its durability is in doubt.
	if _, err := os.Stat(filepath.Join(dir2, walFile)); !os.IsNotExist(err) {
		t.Fatalf("old wal still present after removal (stat err=%v)", err)
	}
}
