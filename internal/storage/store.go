package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"hrdb/internal/catalog"
	"hrdb/internal/core"
)

// Store is a durable hierarchical relational database: an in-memory catalog
// plus a snapshot file and a write-ahead log. Mutations go through Store
// methods, which log first and then apply (write-ahead); Open recovers by
// loading the snapshot and replaying the log.
type Store struct {
	db  *catalog.Database
	log *Log
	dir string
	// failed is set when an in-memory mutation succeeded but its log
	// append did not: memory and disk have diverged, and the only safe
	// continuation is to reopen (recovering the logged prefix).
	failed bool
}

// ErrStoreFailed indicates a store whose WAL append failed after the
// in-memory mutation was applied; reopen the store to recover.
var ErrStoreFailed = errors.New("storage: store failed (WAL append error); reopen to recover")

// Filenames inside a store directory.
const (
	snapshotFile = "snapshot.hrdb"
	walFile      = "wal.log"
)

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var db *catalog.Database
	snapPath := filepath.Join(dir, snapshotFile)
	if _, err := os.Stat(snapPath); err == nil {
		spec, err := ReadSnapshot(snapPath)
		if err != nil {
			return nil, err
		}
		db, err = BuildDatabase(spec)
		if err != nil {
			return nil, err
		}
	} else {
		db = catalog.New()
	}
	log, err := OpenLog(filepath.Join(dir, walFile))
	if err != nil {
		return nil, err
	}
	s := &Store{db: db, log: log, dir: dir}
	if err := s.replay(); err != nil {
		log.Close()
		return nil, err
	}
	return s, nil
}

// Database exposes the underlying catalog for queries. Mutations should go
// through Store methods so they are logged.
func (s *Store) Database() *catalog.Database { return s.db }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// replay applies every log record to the freshly loaded database. Records
// between tx_begin and tx_commit are buffered and applied as one catalog
// transaction, since an individual record of a batch may be inconsistent
// on its own (§3.1's whole point).
func (s *Store) replay() error {
	var txBuf []catalog.TxOp
	inTx := false
	return s.log.Replay(func(rec Record) error {
		switch rec.Op {
		case OpTxBegin:
			inTx = true
			txBuf = nil
			return nil
		case OpTxCommit:
			inTx = false
			ops := txBuf
			txBuf = nil
			return s.db.ApplyOps(ops)
		case OpAssert, OpDeny, OpRetract:
			if inTx {
				kind := map[Op]string{OpAssert: "assert", OpDeny: "deny", OpRetract: "retract"}[rec.Op]
				txBuf = append(txBuf, catalog.TxOp{Kind: kind, Relation: rec.Target, Values: rec.Args})
				return nil
			}
		}
		return s.apply(rec)
	})
}

// ApplyTx applies the operations in one transaction and, on success, logs
// them bracketed by tx_begin/tx_commit records.
func (s *Store) ApplyTx(ops []catalog.TxOp) error {
	if s.failed {
		return ErrStoreFailed
	}
	if err := s.db.ApplyOps(ops); err != nil {
		return err
	}
	if err := s.log.Append(Record{Op: OpTxBegin}); err != nil {
		s.failed = true
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	for _, o := range ops {
		var op Op
		switch o.Kind {
		case "assert":
			op = OpAssert
		case "deny":
			op = OpDeny
		case "retract":
			op = OpRetract
		default:
			return fmt.Errorf("storage: unknown tx op %q", o.Kind)
		}
		if err := s.log.Append(Record{Op: op, Target: o.Relation, Args: o.Values}); err != nil {
			s.failed = true
			return fmt.Errorf("%w: %v", ErrStoreFailed, err)
		}
	}
	if err := s.log.Append(Record{Op: OpTxCommit}); err != nil {
		s.failed = true
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	return nil
}

// apply executes one record against the catalog.
func (s *Store) apply(rec Record) error {
	db := s.db
	switch rec.Op {
	case OpCreateHierarchy:
		_, err := db.CreateHierarchy(rec.Target)
		return err
	case OpAddClass, OpAddInstance:
		h, err := db.Hierarchy(rec.Target)
		if err != nil {
			return err
		}
		if len(rec.Args) == 0 {
			return fmt.Errorf("%w: %s without a name", ErrCorrupt, rec.Op)
		}
		name, parents := rec.Args[0], rec.Args[1:]
		if rec.Op == OpAddInstance {
			return h.AddInstance(name, parents...)
		}
		return h.AddClass(name, parents...)
	case OpAddEdge:
		h, err := db.Hierarchy(rec.Target)
		if err != nil {
			return err
		}
		if len(rec.Args) != 2 {
			return fmt.Errorf("%w: add_edge wants 2 args", ErrCorrupt)
		}
		return h.AddEdge(rec.Args[0], rec.Args[1])
	case OpPrefer:
		h, err := db.Hierarchy(rec.Target)
		if err != nil {
			return err
		}
		if len(rec.Args) != 2 {
			return fmt.Errorf("%w: prefer wants 2 args", ErrCorrupt)
		}
		return h.Prefer(rec.Args[0], rec.Args[1])
	case OpCreateRelation:
		if len(rec.Args)%2 != 0 {
			return fmt.Errorf("%w: create_relation wants attr/domain pairs", ErrCorrupt)
		}
		attrs := make([]catalog.AttrSpec, 0, len(rec.Args)/2)
		for i := 0; i+1 < len(rec.Args); i += 2 {
			attrs = append(attrs, catalog.AttrSpec{Name: rec.Args[i], Domain: rec.Args[i+1]})
		}
		_, err := db.CreateRelation(rec.Target, attrs...)
		return err
	case OpDropRelation:
		return db.DropRelation(rec.Target)
	case OpAssert:
		return db.Assert(rec.Target, rec.Args...)
	case OpDeny:
		return db.Deny(rec.Target, rec.Args...)
	case OpRetract:
		_, err := db.Retract(rec.Target, rec.Args...)
		return err
	case OpConsolidate:
		_, err := db.Consolidate(rec.Target)
		return err
	case OpExplicate:
		return db.Explicate(rec.Target, rec.Args...)
	case OpDropNode:
		if len(rec.Args) != 1 {
			return fmt.Errorf("%w: drop_node wants 1 arg", ErrCorrupt)
		}
		return db.DropNode(rec.Target, rec.Args[0])
	case OpSetMode:
		if len(rec.Args) != 1 {
			return fmt.Errorf("%w: set_mode wants 1 arg", ErrCorrupt)
		}
		mode, err := parseMode(rec.Args[0])
		if err != nil {
			return err
		}
		return db.SetMode(rec.Target, mode)
	case OpTxBegin, OpTxCommit:
		// Transaction brackets: records between them were individually
		// applied; commit-time consistency held when they were logged.
		return nil
	default:
		return fmt.Errorf("%w: unknown op %q", ErrCorrupt, rec.Op)
	}
}

// logged performs a mutation write-ahead: the record is appended to the log
// only after the in-memory application succeeds (a failed application must
// not leave a poisoned log). If the append itself fails, memory and disk
// have diverged: the store is marked failed and refuses further mutations
// until reopened.
func (s *Store) logged(rec Record, do func() error) error {
	if s.failed {
		return ErrStoreFailed
	}
	if err := do(); err != nil {
		return err
	}
	if err := s.log.Append(rec); err != nil {
		s.failed = true
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	return nil
}

// CreateHierarchy creates and logs a hierarchy.
func (s *Store) CreateHierarchy(domain string) error {
	return s.logged(Record{Op: OpCreateHierarchy, Target: domain}, func() error {
		_, err := s.db.CreateHierarchy(domain)
		return err
	})
}

// AddClass adds and logs a class.
func (s *Store) AddClass(domain, name string, parents ...string) error {
	return s.logged(Record{Op: OpAddClass, Target: domain, Args: append([]string{name}, parents...)}, func() error {
		h, err := s.db.Hierarchy(domain)
		if err != nil {
			return err
		}
		return h.AddClass(name, parents...)
	})
}

// AddInstance adds and logs an instance.
func (s *Store) AddInstance(domain, name string, parents ...string) error {
	return s.logged(Record{Op: OpAddInstance, Target: domain, Args: append([]string{name}, parents...)}, func() error {
		h, err := s.db.Hierarchy(domain)
		if err != nil {
			return err
		}
		return h.AddInstance(name, parents...)
	})
}

// AddEdge adds and logs an extra is-a edge.
func (s *Store) AddEdge(domain, parent, child string) error {
	return s.logged(Record{Op: OpAddEdge, Target: domain, Args: []string{parent, child}}, func() error {
		h, err := s.db.Hierarchy(domain)
		if err != nil {
			return err
		}
		return h.AddEdge(parent, child)
	})
}

// Prefer adds and logs a preference edge.
func (s *Store) Prefer(domain, stronger, weaker string) error {
	return s.logged(Record{Op: OpPrefer, Target: domain, Args: []string{stronger, weaker}}, func() error {
		h, err := s.db.Hierarchy(domain)
		if err != nil {
			return err
		}
		return h.Prefer(stronger, weaker)
	})
}

// CreateRelation creates and logs a relation.
func (s *Store) CreateRelation(name string, attrs ...catalog.AttrSpec) error {
	args := make([]string, 0, 2*len(attrs))
	for _, a := range attrs {
		args = append(args, a.Name, a.Domain)
	}
	return s.logged(Record{Op: OpCreateRelation, Target: name, Args: args}, func() error {
		_, err := s.db.CreateRelation(name, attrs...)
		return err
	})
}

// DropRelation drops and logs.
func (s *Store) DropRelation(name string) error {
	return s.logged(Record{Op: OpDropRelation, Target: name}, func() error {
		return s.db.DropRelation(name)
	})
}

// Assert inserts and logs a positive tuple.
func (s *Store) Assert(rel string, values ...string) error {
	return s.logged(Record{Op: OpAssert, Target: rel, Args: values}, func() error {
		return s.db.Assert(rel, values...)
	})
}

// Deny inserts and logs a negated tuple.
func (s *Store) Deny(rel string, values ...string) error {
	return s.logged(Record{Op: OpDeny, Target: rel, Args: values}, func() error {
		return s.db.Deny(rel, values...)
	})
}

// Retract removes and logs.
func (s *Store) Retract(rel string, values ...string) error {
	return s.logged(Record{Op: OpRetract, Target: rel, Args: values}, func() error {
		_, err := s.db.Retract(rel, values...)
		return err
	})
}

// Consolidate consolidates and logs.
func (s *Store) Consolidate(rel string) error {
	return s.logged(Record{Op: OpConsolidate, Target: rel}, func() error {
		_, err := s.db.Consolidate(rel)
		return err
	})
}

// Explicate explicates and logs.
func (s *Store) Explicate(rel string, attrs ...string) error {
	return s.logged(Record{Op: OpExplicate, Target: rel, Args: attrs}, func() error {
		return s.db.Explicate(rel, attrs...)
	})
}

// DropNode removes a childless, unreferenced hierarchy node and logs it.
func (s *Store) DropNode(domain, name string) error {
	return s.logged(Record{Op: OpDropNode, Target: domain, Args: []string{name}}, func() error {
		return s.db.DropNode(domain, name)
	})
}

// SetMode switches a relation's preemption semantics and logs it.
func (s *Store) SetMode(rel string, mode core.Preemption) error {
	return s.logged(Record{Op: OpSetMode, Target: rel, Args: []string{mode.String()}}, func() error {
		return s.db.SetMode(rel, mode)
	})
}

// parseMode decodes a Preemption from its String form.
func parseMode(v string) (core.Preemption, error) {
	switch v {
	case "off-path":
		return core.OffPath, nil
	case "on-path":
		return core.OnPath, nil
	case "none":
		return core.NoPreemption, nil
	default:
		return 0, fmt.Errorf("%w: unknown mode %q", ErrCorrupt, v)
	}
}

// Checkpoint writes a snapshot of the current database and resets the log.
func (s *Store) Checkpoint() error {
	spec := SnapshotDatabase(s.db)
	if err := WriteSnapshot(filepath.Join(s.dir, snapshotFile), spec); err != nil {
		return err
	}
	return s.log.Reset()
}

// LogSize returns the current WAL size in bytes.
func (s *Store) LogSize() (int64, error) { return s.log.Size() }

// Close closes the store's files.
func (s *Store) Close() error { return s.log.Close() }
