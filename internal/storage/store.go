package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hrdb/internal/catalog"
	"hrdb/internal/core"
)

// Store is a durable hierarchical relational database: an in-memory catalog
// plus a snapshot file and a write-ahead log.
//
// Durability contract:
//
//   - Transactions (ApplyTx) are write-ahead: the operation records are
//     staged to the WAL inside a tx_begin bracket before the in-memory
//     apply, and the call acknowledges only after the closing tx_commit
//     record is fsynced. A transaction whose in-memory apply is rejected
//     closes its bracket with a tx_abort record; recovery discards it.
//   - Single operations (Assert, AddClass, …) validate by applying in
//     memory, then append one record and acknowledge only after it is
//     fsynced. Either way nothing is acknowledged before it is durable,
//     and recovery restores exactly the acknowledged prefix.
//   - Concurrent committers coalesce into shared fsyncs (group commit);
//     a store-level mutex keeps WAL order identical to apply order.
//   - A WAL write or sync error poisons the store: memory may be ahead of
//     disk, so every later mutation returns ErrStoreFailed until the store
//     is reopened (recovering the durable prefix).
//
// Open recovers by loading the snapshot and replaying the log named by the
// snapshot's log epoch; checkpointing rotates to a fresh log atomically
// (temp snapshot → fsync → rename → dir fsync → new log → dir fsync).
type Store struct {
	db    *catalog.Database
	log   *Log
	dir   string
	fs    FS
	opts  Options
	epoch uint64
	// applyMu serializes WAL staging with the in-memory apply so that log
	// order equals apply order, and keeps transaction brackets contiguous
	// in the log. Fsync waits happen outside it, so concurrent committers
	// still share flushes.
	applyMu sync.Mutex
	// failed is set when memory and disk may have diverged (a WAL append
	// or sync error after an in-memory mutation): the only safe
	// continuation is to reopen, recovering the durable prefix.
	failed atomic.Bool
	// closed is set by the first Close. It is read both atomically (cheap
	// fast-path rejection) and under applyMu (the authoritative check that
	// orders mutations against Close): a committer that passes the locked
	// check finishes staging before Close can run, and Close's log flush
	// makes every staged byte durable, so acknowledged records survive a
	// concurrent Close.
	closed atomic.Bool
}

// Options configures Open.
type Options struct {
	// FS is the file-system seam; nil selects the operating system.
	// Tests inject a FaultFS to program write, fsync, and crash faults.
	FS FS
	// PerRecordSync disables group commit: every record is appended and
	// fsynced individually, serialized across committers. This is the
	// pre-group-commit behavior, kept as the measurable baseline for the
	// E10 experiment; production callers should leave it false.
	PerRecordSync bool
}

// ErrStoreFailed indicates a store whose WAL write or sync failed at a
// point where memory may be ahead of disk; reopen the store to recover the
// durable prefix.
var ErrStoreFailed = errors.New("storage: store failed (WAL append error); reopen to recover")

// ErrStoreClosed is returned by every mutation (and by repeated Close
// calls) after the store has been closed. Like ErrStoreFailed it means the
// store object is done; unlike it, everything acknowledged is durable and
// reopening the directory recovers the complete state.
var ErrStoreClosed = errors.New("storage: store closed")

// Filenames inside a store directory.
const (
	snapshotFile = "snapshot.hrdb"
	walFile      = "wal.log"
)

// walName returns the WAL filename for a checkpoint epoch. Epoch 0 keeps
// the legacy name so stores created before epoch rotation still open.
func walName(epoch uint64) string {
	if epoch == 0 {
		return walFile
	}
	return fmt.Sprintf("wal.%06d.log", epoch)
}

// Open opens (creating if needed) a store rooted at dir on the real file
// system with default options.
func Open(dir string) (*Store, error) { return OpenOptions(dir, Options{}) }

// OpenOptions opens (creating if needed) a store rooted at dir.
func OpenOptions(dir string, opts Options) (*Store, error) {
	fs := opts.FS
	if fs == nil {
		fs = OsFS{}
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var db *catalog.Database
	var epoch uint64
	snapPath := filepath.Join(dir, snapshotFile)
	if _, err := fs.Stat(snapPath); err == nil {
		spec, err := ReadSnapshotFS(fs, snapPath)
		if err != nil {
			return nil, err
		}
		db, err = BuildDatabase(spec)
		if err != nil {
			return nil, err
		}
		epoch = spec.LogEpoch
	} else {
		db = catalog.New()
	}
	log, err := OpenLogFS(fs, filepath.Join(dir, walName(epoch)))
	if err != nil {
		return nil, err
	}
	s := &Store{db: db, log: log, dir: dir, fs: fs, opts: opts, epoch: epoch}
	if err := s.replay(); err != nil {
		log.Close()
		return nil, err
	}
	metricOpens.Inc()
	// A crash between checkpoint's snapshot rename and old-log removal can
	// leave the previous epoch's log behind; it is superseded by the
	// snapshot, so drop it (best effort).
	if epoch > 0 {
		_ = fs.Remove(filepath.Join(dir, walName(epoch-1)))
	}
	return s, nil
}

// Database exposes the underlying catalog for queries. Mutations should go
// through Store methods so they are logged.
func (s *Store) Database() *catalog.Database { return s.db }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// replay applies every durable log record to the freshly loaded database.
// Records inside a tx_begin bracket — DML and otherwise — are buffered and
// applied only when the bracket closes with tx_commit, as one catalog
// transaction per DML run (an individual record of a batch may be
// inconsistent on its own, §3.1's whole point). A tx_abort bracket is
// discarded wholesale. An unterminated bracket cannot reach here: OpenLog
// truncates it with the torn tail.
func (s *Store) replay() error {
	start := time.Now()
	defer func() { metricReplayNS.ObserveDuration(time.Since(start)) }()
	var txBuf []Record
	inTx := false
	return s.log.Replay(func(rec Record) error {
		metricReplayRecords.Inc()
		switch rec.Op {
		case OpTxBegin:
			inTx = true
			txBuf = nil
			return nil
		case OpTxAbort:
			inTx = false
			txBuf = nil
			return nil
		case OpTxCommit:
			inTx = false
			recs := txBuf
			txBuf = nil
			return s.applyCommitted(recs)
		}
		if inTx {
			txBuf = append(txBuf, rec)
			return nil
		}
		return s.apply(rec)
	})
}

// applyCommitted applies the records of one committed bracket in order:
// consecutive DML records form one catalog transaction; any other record
// (not produced by this writer, but tolerated from foreign or legacy logs)
// is applied at its position.
func (s *Store) applyCommitted(recs []Record) error {
	var ops []catalog.TxOp
	flush := func() error {
		if len(ops) == 0 {
			return nil
		}
		err := s.db.ApplyOps(ops)
		ops = nil
		return err
	}
	for _, rec := range recs {
		switch rec.Op {
		case OpAssert, OpDeny, OpRetract:
			kind := map[Op]string{OpAssert: "assert", OpDeny: "deny", OpRetract: "retract"}[rec.Op]
			ops = append(ops, catalog.TxOp{Kind: kind, Relation: rec.Target, Values: rec.Args})
		default:
			if err := flush(); err != nil {
				return err
			}
			if err := s.apply(rec); err != nil {
				return err
			}
		}
	}
	return flush()
}

// txRecordOps maps TxOp kinds to their WAL record ops.
var txRecordOps = map[string]Op{"assert": OpAssert, "deny": OpDeny, "retract": OpRetract}

// ApplyTx applies the operations of one transaction write-ahead: the
// records are staged to the WAL first (bracketed by tx_begin), then applied
// to memory, and the call returns success only after the closing tx_commit
// record is durable. If the in-memory apply rejects the transaction, the
// bracket is closed with tx_abort so recovery discards it, and the apply
// error is returned.
func (s *Store) ApplyTx(ops []catalog.TxOp) error {
	if err := s.usable(); err != nil {
		return err
	}
	recs := make([]Record, 0, len(ops)+2)
	recs = append(recs, Record{Op: OpTxBegin})
	for _, o := range ops {
		op, ok := txRecordOps[o.Kind]
		if !ok {
			return fmt.Errorf("storage: unknown tx op %q", o.Kind)
		}
		recs = append(recs, Record{Op: op, Target: o.Relation, Args: o.Values})
	}
	if s.opts.PerRecordSync {
		return s.applyTxPerRecord(recs, ops)
	}

	s.applyMu.Lock()
	if err := s.usable(); err != nil {
		s.applyMu.Unlock()
		return err
	}
	// Capture the log while holding applyMu: Checkpoint may rotate s.log,
	// and a mark is only meaningful against the log that issued it.
	log := s.log
	if _, err := log.Stage(recs...); err != nil {
		s.failed.Store(true)
		s.applyMu.Unlock()
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	if err := s.db.ApplyOps(ops); err != nil {
		// The staged bracket must not commit: close it with an abort so
		// recovery discards it. The abort need not be fsynced here — if it
		// is lost to a crash, the bracket is unterminated and OpenLog
		// discards it anyway.
		if _, aerr := log.Stage(Record{Op: OpTxAbort}); aerr != nil {
			s.failed.Store(true)
		}
		s.applyMu.Unlock()
		return err
	}
	mark, err := log.Stage(Record{Op: OpTxCommit})
	s.applyMu.Unlock()
	if err != nil {
		s.failed.Store(true)
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	// Group commit: concurrent committers waiting here share one flush.
	if err := log.Sync(mark); err != nil {
		s.failed.Store(true)
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	return nil
}

// applyTxPerRecord is the E10 baseline: one write and one fsync per record,
// fully serialized, with the pre-group-commit apply-then-log order.
func (s *Store) applyTxPerRecord(recs []Record, ops []catalog.TxOp) error {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	if err := s.db.ApplyOps(ops); err != nil {
		return err
	}
	for _, rec := range recs {
		if err := s.log.Append(rec); err != nil {
			s.failed.Store(true)
			return fmt.Errorf("%w: %v", ErrStoreFailed, err)
		}
	}
	if err := s.log.Append(Record{Op: OpTxCommit}); err != nil {
		s.failed.Store(true)
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	return nil
}

// apply executes one record against the catalog.
func (s *Store) apply(rec Record) error {
	db := s.db
	switch rec.Op {
	case OpCreateHierarchy:
		_, err := db.CreateHierarchy(rec.Target)
		return err
	case OpAddClass, OpAddInstance:
		h, err := db.Hierarchy(rec.Target)
		if err != nil {
			return err
		}
		if len(rec.Args) == 0 {
			return fmt.Errorf("%w: %s without a name", ErrCorrupt, rec.Op)
		}
		name, parents := rec.Args[0], rec.Args[1:]
		if rec.Op == OpAddInstance {
			return h.AddInstance(name, parents...)
		}
		return h.AddClass(name, parents...)
	case OpAddEdge:
		h, err := db.Hierarchy(rec.Target)
		if err != nil {
			return err
		}
		if len(rec.Args) != 2 {
			return fmt.Errorf("%w: add_edge wants 2 args", ErrCorrupt)
		}
		return h.AddEdge(rec.Args[0], rec.Args[1])
	case OpPrefer:
		h, err := db.Hierarchy(rec.Target)
		if err != nil {
			return err
		}
		if len(rec.Args) != 2 {
			return fmt.Errorf("%w: prefer wants 2 args", ErrCorrupt)
		}
		return h.Prefer(rec.Args[0], rec.Args[1])
	case OpCreateRelation:
		if len(rec.Args)%2 != 0 {
			return fmt.Errorf("%w: create_relation wants attr/domain pairs", ErrCorrupt)
		}
		attrs := make([]catalog.AttrSpec, 0, len(rec.Args)/2)
		for i := 0; i+1 < len(rec.Args); i += 2 {
			attrs = append(attrs, catalog.AttrSpec{Name: rec.Args[i], Domain: rec.Args[i+1]})
		}
		_, err := db.CreateRelation(rec.Target, attrs...)
		return err
	case OpDropRelation:
		return db.DropRelation(rec.Target)
	case OpAssert:
		return db.Assert(rec.Target, rec.Args...)
	case OpDeny:
		return db.Deny(rec.Target, rec.Args...)
	case OpRetract:
		_, err := db.Retract(rec.Target, rec.Args...)
		return err
	case OpConsolidate:
		_, err := db.Consolidate(rec.Target)
		return err
	case OpExplicate:
		return db.Explicate(rec.Target, rec.Args...)
	case OpDropNode:
		if len(rec.Args) != 1 {
			return fmt.Errorf("%w: drop_node wants 1 arg", ErrCorrupt)
		}
		return db.DropNode(rec.Target, rec.Args[0])
	case OpSetMode:
		if len(rec.Args) != 1 {
			return fmt.Errorf("%w: set_mode wants 1 arg", ErrCorrupt)
		}
		mode, err := parseMode(rec.Args[0])
		if err != nil {
			return err
		}
		return db.SetMode(rec.Target, mode)
	case OpTxBegin, OpTxCommit, OpTxAbort:
		// Brackets are interpreted by replay; standalone ones are inert.
		return nil
	default:
		return fmt.Errorf("%w: unknown op %q", ErrCorrupt, rec.Op)
	}
}

// logged performs one single-record mutation: validate by applying in
// memory, stage the record (under applyMu, so it cannot land inside
// another committer's bracket), then wait for durability before
// acknowledging. A failed application stages nothing; a failed stage or
// sync poisons the store, because memory is now ahead of disk.
func (s *Store) logged(rec Record, do func() error) error {
	if err := s.usable(); err != nil {
		return err
	}
	s.applyMu.Lock()
	if err := s.usable(); err != nil {
		s.applyMu.Unlock()
		return err
	}
	log := s.log
	if err := do(); err != nil {
		s.applyMu.Unlock()
		return err
	}
	mark, err := log.Stage(rec)
	s.applyMu.Unlock()
	if err != nil {
		s.failed.Store(true)
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	if err := log.Sync(mark); err != nil {
		s.failed.Store(true)
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	return nil
}

// CreateHierarchy creates and logs a hierarchy.
func (s *Store) CreateHierarchy(domain string) error {
	return s.logged(Record{Op: OpCreateHierarchy, Target: domain}, func() error {
		_, err := s.db.CreateHierarchy(domain)
		return err
	})
}

// AddClass adds and logs a class.
func (s *Store) AddClass(domain, name string, parents ...string) error {
	return s.logged(Record{Op: OpAddClass, Target: domain, Args: append([]string{name}, parents...)}, func() error {
		h, err := s.db.Hierarchy(domain)
		if err != nil {
			return err
		}
		return h.AddClass(name, parents...)
	})
}

// AddInstance adds and logs an instance.
func (s *Store) AddInstance(domain, name string, parents ...string) error {
	return s.logged(Record{Op: OpAddInstance, Target: domain, Args: append([]string{name}, parents...)}, func() error {
		h, err := s.db.Hierarchy(domain)
		if err != nil {
			return err
		}
		return h.AddInstance(name, parents...)
	})
}

// AddEdge adds and logs an extra is-a edge.
func (s *Store) AddEdge(domain, parent, child string) error {
	return s.logged(Record{Op: OpAddEdge, Target: domain, Args: []string{parent, child}}, func() error {
		h, err := s.db.Hierarchy(domain)
		if err != nil {
			return err
		}
		return h.AddEdge(parent, child)
	})
}

// Prefer adds and logs a preference edge.
func (s *Store) Prefer(domain, stronger, weaker string) error {
	return s.logged(Record{Op: OpPrefer, Target: domain, Args: []string{stronger, weaker}}, func() error {
		h, err := s.db.Hierarchy(domain)
		if err != nil {
			return err
		}
		return h.Prefer(stronger, weaker)
	})
}

// CreateRelation creates and logs a relation.
func (s *Store) CreateRelation(name string, attrs ...catalog.AttrSpec) error {
	args := make([]string, 0, 2*len(attrs))
	for _, a := range attrs {
		args = append(args, a.Name, a.Domain)
	}
	return s.logged(Record{Op: OpCreateRelation, Target: name, Args: args}, func() error {
		_, err := s.db.CreateRelation(name, attrs...)
		return err
	})
}

// DropRelation drops and logs.
func (s *Store) DropRelation(name string) error {
	return s.logged(Record{Op: OpDropRelation, Target: name}, func() error {
		return s.db.DropRelation(name)
	})
}

// Assert inserts and logs a positive tuple.
func (s *Store) Assert(rel string, values ...string) error {
	return s.logged(Record{Op: OpAssert, Target: rel, Args: values}, func() error {
		return s.db.Assert(rel, values...)
	})
}

// Deny inserts and logs a negated tuple.
func (s *Store) Deny(rel string, values ...string) error {
	return s.logged(Record{Op: OpDeny, Target: rel, Args: values}, func() error {
		return s.db.Deny(rel, values...)
	})
}

// Retract removes and logs.
func (s *Store) Retract(rel string, values ...string) error {
	return s.logged(Record{Op: OpRetract, Target: rel, Args: values}, func() error {
		_, err := s.db.Retract(rel, values...)
		return err
	})
}

// Consolidate consolidates and logs.
func (s *Store) Consolidate(rel string) error {
	return s.logged(Record{Op: OpConsolidate, Target: rel}, func() error {
		_, err := s.db.Consolidate(rel)
		return err
	})
}

// Explicate explicates and logs.
func (s *Store) Explicate(rel string, attrs ...string) error {
	return s.logged(Record{Op: OpExplicate, Target: rel, Args: attrs}, func() error {
		return s.db.Explicate(rel, attrs...)
	})
}

// DropNode removes a childless, unreferenced hierarchy node and logs it.
func (s *Store) DropNode(domain, name string) error {
	return s.logged(Record{Op: OpDropNode, Target: domain, Args: []string{name}}, func() error {
		return s.db.DropNode(domain, name)
	})
}

// SetMode switches a relation's preemption semantics and logs it.
func (s *Store) SetMode(rel string, mode core.Preemption) error {
	return s.logged(Record{Op: OpSetMode, Target: rel, Args: []string{mode.String()}}, func() error {
		return s.db.SetMode(rel, mode)
	})
}

// parseMode decodes a Preemption from its String form.
func parseMode(v string) (core.Preemption, error) {
	switch v {
	case "off-path":
		return core.OffPath, nil
	case "on-path":
		return core.OnPath, nil
	case "none":
		return core.NoPreemption, nil
	default:
		return 0, fmt.Errorf("%w: unknown mode %q", ErrCorrupt, v)
	}
}

// Checkpoint writes a snapshot of the current database and rotates to a
// fresh, empty WAL. The sequence is crash-safe at every step:
//
//  1. The snapshot (stamped with the next log epoch) is written to a temp
//     file, fsynced, renamed over the old snapshot, and the directory is
//     fsynced. A crash before the rename leaves the old snapshot + old log.
//  2. A new, empty WAL named for the next epoch is created, fsynced, and
//     the directory is fsynced. A crash between 1 and 2 is benign: Open
//     reads the new snapshot and creates the (empty) new-epoch log itself;
//     the old log is superseded and removed lazily.
//  3. The old log is closed and removed (best effort).
//
// A failure after step 1 may leave the directory referencing the new
// epoch while this process still holds the old log, so the store is
// poisoned and must be reopened.
func (s *Store) Checkpoint() error {
	if err := s.usable(); err != nil {
		return err
	}
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	start := time.Now()
	newEpoch := s.epoch + 1
	spec := SnapshotDatabase(s.db)
	spec.LogEpoch = newEpoch
	if err := WriteSnapshotFS(s.fs, filepath.Join(s.dir, snapshotFile), spec); err != nil {
		// The rename may or may not have landed; this process can no
		// longer know which log the directory designates.
		s.failed.Store(true)
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	newLog, err := createLog(s.fs, s.dir, filepath.Join(s.dir, walName(newEpoch)))
	if err != nil {
		s.failed.Store(true)
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	old, oldEpoch := s.log, s.epoch
	s.log, s.epoch = newLog, newEpoch
	_ = old.Close()
	_ = s.fs.Remove(filepath.Join(s.dir, walName(oldEpoch)))
	metricCheckpoints.Inc()
	metricCheckpointNS.ObserveDuration(time.Since(start))
	return nil
}

// LogSize returns the durable WAL size in bytes.
func (s *Store) LogSize() (int64, error) {
	s.applyMu.Lock()
	log := s.log
	s.applyMu.Unlock()
	return log.Size()
}

// LogStats returns the number of WAL records staged and fsyncs issued since
// the log was opened; group commit shows up as syncs < records.
func (s *Store) LogStats() (records, syncs uint64) {
	s.applyMu.Lock()
	log := s.log
	s.applyMu.Unlock()
	return log.Stats()
}

// usable rejects mutations on a closed or poisoned store. Callers invoke
// it twice: once lock-free as a fast path, and once under applyMu, where
// it orders the check against a concurrent Close.
func (s *Store) usable() error {
	if s.closed.Load() {
		return ErrStoreClosed
	}
	if s.failed.Load() {
		return ErrStoreFailed
	}
	return nil
}

// Close flushes staged WAL frames and closes the store's files. Close is
// safe to call concurrently with committers: the closed flag is set under
// applyMu, so no committer can begin staging afterwards, and the log's own
// Close flushes everything already staged — an ApplyTx waiting for its
// durability mark therefore still acknowledges (and its records survive).
// Only the first call closes; subsequent calls — and any mutation after
// the first Close — return ErrStoreClosed.
func (s *Store) Close() error {
	s.applyMu.Lock()
	if s.closed.Load() {
		s.applyMu.Unlock()
		return ErrStoreClosed
	}
	s.closed.Store(true)
	log := s.log
	s.applyMu.Unlock()
	return log.Close()
}
