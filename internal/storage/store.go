package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hrdb/internal/catalog"
	"hrdb/internal/core"
)

// Store is a durable hierarchical relational database: an in-memory catalog
// plus a snapshot file and a write-ahead log.
//
// Durability contract:
//
//   - Transactions (ApplyTx) are write-ahead: the operation records are
//     staged to the WAL inside a tx_begin bracket before the in-memory
//     apply, and the call acknowledges only after the closing tx_commit
//     record is fsynced. A transaction whose in-memory apply is rejected
//     closes its bracket with a tx_abort record; recovery discards it.
//   - Single operations (Assert, AddClass, …) validate by applying in
//     memory, then append one record and acknowledge only after it is
//     fsynced. Either way nothing is acknowledged before it is durable,
//     and recovery restores exactly the acknowledged prefix.
//   - Concurrent committers coalesce into shared fsyncs (group commit);
//     a store-level mutex keeps WAL order identical to apply order.
//   - A WAL write or sync error poisons the store: memory may be ahead of
//     disk, so every later mutation returns ErrStoreFailed until the store
//     is reopened (recovering the durable prefix).
//
// Open recovers by loading the snapshot and replaying the log named by the
// snapshot's log epoch; checkpointing rotates to a fresh log atomically
// (temp snapshot → fsync → rename → dir fsync → new log → dir fsync).
type Store struct {
	db    *catalog.Database
	log   *Log
	dir   string
	fs    FS
	opts  Options
	epoch uint64
	// applyMu serializes WAL staging with the in-memory apply so that log
	// order equals apply order, and keeps transaction brackets contiguous
	// in the log. Fsync waits happen outside it, so concurrent committers
	// still share flushes.
	applyMu sync.Mutex
	// failed is set when memory and disk may have diverged (a WAL append
	// or sync error after an in-memory mutation): the only safe
	// continuation is to reopen, recovering the durable prefix.
	failed atomic.Bool
	// closed is set by the first Close. It is read both atomically (cheap
	// fast-path rejection) and under applyMu (the authoritative check that
	// orders mutations against Close): a committer that passes the locked
	// check finishes staging before Close can run, and Close's log flush
	// makes every staged byte durable, so acknowledged records survive a
	// concurrent Close.
	closed atomic.Bool
	// epochEnds records, under applyMu, the final byte size of each WAL
	// epoch this process has rotated away from, so a replication stream
	// positioned exactly at a retired epoch's end can be told to continue
	// at (epoch+1, 0) instead of re-bootstrapping. Epochs rotated by
	// earlier processes are absent: a follower parked inside one is stale
	// and must take a fresh snapshot.
	epochEnds map[uint64]int64
	// term is the primary fencing term (under applyMu): the highest term
	// this store has adopted, recovered from the snapshot and any OpNewTerm
	// records in the WAL. Terms rise by one per failover promotion; a
	// mutation is only legitimate while no peer holds a higher term.
	term uint64
	// takeoverEpoch/takeoverOffset preserve the spec's takeover position
	// (the divergence point for deposed-primary rejoin) across checkpoints.
	takeoverEpoch  uint64
	takeoverOffset int64
	// fenced, when nonzero, is the higher term that deposed this store:
	// another node proved it was promoted past us, so every mutation is
	// refused with ErrDeposed — accepting any would fork history. Reads and
	// WAL access stay available (quarantine forensics need them).
	fenced atomic.Uint64
	// watch is closed and replaced by notify() whenever the durable
	// replication position advances (commit, checkpoint, close), waking
	// WaitChange subscribers.
	watchMu sync.Mutex
	watch   chan struct{}
}

// Options configures Open.
type Options struct {
	// FS is the file-system seam; nil selects the operating system.
	// Tests inject a FaultFS to program write, fsync, and crash faults.
	FS FS
	// PerRecordSync disables group commit: every record is appended and
	// fsynced individually, serialized across committers. This is the
	// pre-group-commit behavior, kept as the measurable baseline for the
	// E10 experiment; production callers should leave it false.
	PerRecordSync bool
}

// ErrStoreFailed indicates a store whose WAL write or sync failed at a
// point where memory may be ahead of disk; reopen the store to recover the
// durable prefix.
var ErrStoreFailed = errors.New("storage: store failed (WAL append error); reopen to recover")

// ErrStoreClosed is returned by every mutation (and by repeated Close
// calls) after the store has been closed. Like ErrStoreFailed it means the
// store object is done; unlike it, everything acknowledged is durable and
// reopening the directory recovers the complete state.
var ErrStoreClosed = errors.New("storage: store closed")

// ErrDeposed rejects mutations on a store fenced by a higher primary term:
// a newer primary exists, so writing here would fork history. The check
// runs before any staging or in-memory apply, making the rejection a
// definitive not-executed signal — safe for clients to retry against the
// current primary. Unlike ErrStoreFailed the store itself is healthy; it
// serves reads and its WAL remains readable for divergence quarantine.
var ErrDeposed = errors.New("storage: deposed by a higher primary term; writes fenced")

// ErrCheckpointGC wraps a failure in Checkpoint's final garbage-collection
// step (removing the superseded WAL and fsyncing the directory). The
// rotation itself succeeded and the store remains usable; the error tells
// the caller that the old WAL file may survive a crash.
var ErrCheckpointGC = errors.New("storage: checkpoint garbage-collection incomplete")

// Filenames inside a store directory.
const (
	snapshotFile = "snapshot.hrdb"
	walFile      = "wal.log"
)

// walName returns the WAL filename for a checkpoint epoch. Epoch 0 keeps
// the legacy name so stores created before epoch rotation still open.
func walName(epoch uint64) string {
	if epoch == 0 {
		return walFile
	}
	return fmt.Sprintf("wal.%06d.log", epoch)
}

// Open opens (creating if needed) a store rooted at dir on the real file
// system with default options.
func Open(dir string) (*Store, error) { return OpenOptions(dir, Options{}) }

// OpenOptions opens (creating if needed) a store rooted at dir.
func OpenOptions(dir string, opts Options) (*Store, error) {
	fs := opts.FS
	if fs == nil {
		fs = OsFS{}
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var db *catalog.Database
	var epoch, term, takeoverEpoch uint64
	var takeoverOffset int64
	snapPath := filepath.Join(dir, snapshotFile)
	if _, err := fs.Stat(snapPath); err == nil {
		spec, err := ReadSnapshotFS(fs, snapPath)
		if err != nil {
			return nil, err
		}
		db, err = BuildDatabase(spec)
		if err != nil {
			return nil, err
		}
		epoch = spec.LogEpoch
		term = spec.PrimaryTerm
		takeoverEpoch, takeoverOffset = spec.TakeoverEpoch, spec.TakeoverOffset
	} else {
		db = catalog.New()
	}
	log, err := OpenLogFS(fs, filepath.Join(dir, walName(epoch)))
	if err != nil {
		return nil, err
	}
	s := &Store{
		db: db, log: log, dir: dir, fs: fs, opts: opts, epoch: epoch,
		term: term, takeoverEpoch: takeoverEpoch, takeoverOffset: takeoverOffset,
		epochEnds: make(map[uint64]int64),
		watch:     make(chan struct{}),
	}
	if err := s.replay(); err != nil {
		log.Close()
		return nil, err
	}
	metricOpens.Inc()
	// A crash between checkpoint's snapshot rename and old-log removal can
	// leave the previous epoch's log behind; it is superseded by the
	// snapshot, so drop it (best effort).
	if epoch > 0 {
		_ = fs.Remove(filepath.Join(dir, walName(epoch-1)))
	}
	return s, nil
}

// Create materializes a brand-new store directory from a complete spec.
// This is the durable half of a replica's promotion: the replica's applied
// state becomes the snapshot, the spec's LogEpoch starts a fresh WAL
// lineage (disjoint from the deposed primary's), and PrimaryTerm plus the
// Takeover fields record the fencing term and divergence point. It refuses
// to overwrite an existing store — if the snapshot or the spec's WAL file
// already exists, the directory holds state someone else may depend on.
func Create(dir string, spec DatabaseSpec, opts Options) (*Store, error) {
	fs := opts.FS
	if fs == nil {
		fs = OsFS{}
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	for _, name := range []string{snapshotFile, walName(spec.LogEpoch)} {
		if _, err := fs.Stat(filepath.Join(dir, name)); err == nil {
			return nil, fmt.Errorf("storage: create %s: %s already exists", dir, name)
		}
	}
	if err := WriteSnapshotFS(fs, filepath.Join(dir, snapshotFile), spec); err != nil {
		return nil, err
	}
	return OpenOptions(dir, opts)
}

// RemoveStoreFiles deletes the snapshot and every WAL file under dir,
// leaving everything else — quarantine sidecars in particular — in place.
// It is the destructive step of a deposed primary's rejoin: once the
// divergent WAL suffix has been quarantined, the old store files must go so
// the node can re-bootstrap from the new primary without its stale lineage
// shadowing the fresh one. Operates on the real file system (rejoin is an
// operator-level flow); a missing directory is not an error.
func RemoveStoreFiles(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	var firstErr error
	for _, e := range entries {
		name := e.Name()
		if name != snapshotFile && !(strings.HasPrefix(name, "wal") && strings.HasSuffix(name, ".log")) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return (OsFS{}).SyncDir(dir)
}

// Term returns the primary fencing term this store has adopted.
func (s *Store) Term() uint64 {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	return s.term
}

// AdoptTerm durably raises the store's fencing term: the adoption is
// WAL-logged (OpNewTerm) and acknowledged only once fsynced, so a primary
// that asserted term T cannot forget it across a crash and accept writes
// under an older term. Adopting the current term again is a no-op append;
// adopting a lower term is an error.
func (s *Store) AdoptTerm(term uint64) error {
	return s.logged(Record{Op: OpNewTerm, Args: []string{strconv.FormatUint(term, 10)}}, func() error {
		if term < s.term {
			return fmt.Errorf("storage: cannot adopt term %d below current term %d", term, s.term)
		}
		s.term = term
		return nil
	})
}

// Fence marks the store deposed by a higher term: every subsequent mutation
// fails with ErrDeposed, while reads and WAL access remain available for
// divergence quarantine. Returns true iff term exceeds the store's own
// adopted term (a genuine deposition — also when already fenced by that or
// a lower term); terms at or below the store's own are ignored, because a
// primary is never deposed by its past.
func (s *Store) Fence(term uint64) bool {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	if term <= s.term {
		return false
	}
	if term > s.fenced.Load() {
		s.fenced.Store(term)
	}
	return true
}

// FencedBy returns the term that deposed this store, or zero if it has not
// been fenced.
func (s *Store) FencedBy() uint64 { return s.fenced.Load() }

// Takeover returns the divergence point recorded when this store was
// materialized by a replica's promotion: the position (in the previous
// primary's epoch numbering) up to which the promoting replica had applied.
// Zero values mean the store was never promoted from a replica.
func (s *Store) Takeover() (epoch uint64, offset int64) {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	return s.takeoverEpoch, s.takeoverOffset
}

// Database exposes the underlying catalog for queries. Mutations should go
// through Store methods so they are logged.
func (s *Store) Database() *catalog.Database { return s.db }

// ReadLocked runs fn with the apply lock held, giving it a mutation-free
// window over the in-memory database: every logged mutation serializes on
// the same lock, so fn can evaluate shared hierarchy structures without
// racing writers. Intended for subsystems that read concurrently with
// writers (view maintenance); fn must not call mutating Store methods.
func (s *Store) ReadLocked(fn func(db *catalog.Database) error) error {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	return fn(s.db)
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// replay applies every durable log record to the freshly loaded database
// through an Applier, which owns the transaction-bracket semantics (commit
// applies, abort discards). An unterminated bracket cannot reach here:
// OpenLog truncates it with the torn tail.
func (s *Store) replay() error {
	start := time.Now()
	defer func() { metricReplayNS.ObserveDuration(time.Since(start)) }()
	a := NewApplier(s.db)
	return s.log.Replay(func(rec Record) error {
		metricReplayRecords.Inc()
		// Fold term adoptions into the recovered term: a term asserted after
		// the last checkpoint exists only as an OpNewTerm record.
		if rec.Op == OpNewTerm && len(rec.Args) == 1 {
			if t, err := strconv.ParseUint(rec.Args[0], 10, 64); err == nil && t > s.term {
				s.term = t
			}
		}
		return a.Apply(rec)
	})
}

// txRecordOps maps TxOp kinds to their WAL record ops.
var txRecordOps = map[string]Op{"assert": OpAssert, "deny": OpDeny, "retract": OpRetract}

// ApplyTx applies the operations of one transaction write-ahead: the
// records are staged to the WAL first (bracketed by tx_begin), then applied
// to memory, and the call returns success only after the closing tx_commit
// record is durable. If the in-memory apply rejects the transaction, the
// bracket is closed with tx_abort so recovery discards it, and the apply
// error is returned.
func (s *Store) ApplyTx(ops []catalog.TxOp) error {
	if err := s.usable(); err != nil {
		return err
	}
	recs := make([]Record, 0, len(ops)+2)
	recs = append(recs, Record{Op: OpTxBegin})
	for _, o := range ops {
		op, ok := txRecordOps[o.Kind]
		if !ok {
			return fmt.Errorf("storage: unknown tx op %q", o.Kind)
		}
		recs = append(recs, Record{Op: op, Target: o.Relation, Args: o.Values})
	}
	if s.opts.PerRecordSync {
		return s.applyTxPerRecord(recs, ops)
	}

	s.applyMu.Lock()
	if err := s.usable(); err != nil {
		s.applyMu.Unlock()
		return err
	}
	// Capture the log while holding applyMu: Checkpoint may rotate s.log,
	// and a mark is only meaningful against the log that issued it.
	log := s.log
	if _, err := log.Stage(recs...); err != nil {
		s.failed.Store(true)
		s.applyMu.Unlock()
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	if err := s.db.ApplyOps(ops); err != nil {
		// The staged bracket must not commit: close it with an abort so
		// recovery discards it. The abort need not be fsynced here — if it
		// is lost to a crash, the bracket is unterminated and OpenLog
		// discards it anyway.
		if _, aerr := log.Stage(Record{Op: OpTxAbort}); aerr != nil {
			s.failed.Store(true)
		}
		s.applyMu.Unlock()
		return err
	}
	mark, err := log.Stage(Record{Op: OpTxCommit})
	s.applyMu.Unlock()
	if err != nil {
		s.failed.Store(true)
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	// Group commit: concurrent committers waiting here share one flush.
	if err := log.Sync(mark); err != nil {
		s.failed.Store(true)
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	s.notify()
	return nil
}

// applyTxPerRecord is the E10 baseline: one write and one fsync per record,
// fully serialized, with the pre-group-commit apply-then-log order.
func (s *Store) applyTxPerRecord(recs []Record, ops []catalog.TxOp) error {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	if err := s.db.ApplyOps(ops); err != nil {
		return err
	}
	for _, rec := range recs {
		if err := s.log.Append(rec); err != nil {
			s.failed.Store(true)
			return fmt.Errorf("%w: %v", ErrStoreFailed, err)
		}
	}
	if err := s.log.Append(Record{Op: OpTxCommit}); err != nil {
		s.failed.Store(true)
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	s.notify()
	return nil
}

// logged performs one single-record mutation: validate by applying in
// memory, stage the record (under applyMu, so it cannot land inside
// another committer's bracket), then wait for durability before
// acknowledging. A failed application stages nothing; a failed stage or
// sync poisons the store, because memory is now ahead of disk.
func (s *Store) logged(rec Record, do func() error) error {
	if err := s.usable(); err != nil {
		return err
	}
	s.applyMu.Lock()
	if err := s.usable(); err != nil {
		s.applyMu.Unlock()
		return err
	}
	log := s.log
	if err := do(); err != nil {
		s.applyMu.Unlock()
		return err
	}
	mark, err := log.Stage(rec)
	s.applyMu.Unlock()
	if err != nil {
		s.failed.Store(true)
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	if err := log.Sync(mark); err != nil {
		s.failed.Store(true)
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	s.notify()
	return nil
}

// CreateHierarchy creates and logs a hierarchy.
func (s *Store) CreateHierarchy(domain string) error {
	return s.logged(Record{Op: OpCreateHierarchy, Target: domain}, func() error {
		_, err := s.db.CreateHierarchy(domain)
		return err
	})
}

// AddClass adds and logs a class.
func (s *Store) AddClass(domain, name string, parents ...string) error {
	return s.logged(Record{Op: OpAddClass, Target: domain, Args: append([]string{name}, parents...)}, func() error {
		h, err := s.db.Hierarchy(domain)
		if err != nil {
			return err
		}
		return h.AddClass(name, parents...)
	})
}

// AddInstance adds and logs an instance.
func (s *Store) AddInstance(domain, name string, parents ...string) error {
	return s.logged(Record{Op: OpAddInstance, Target: domain, Args: append([]string{name}, parents...)}, func() error {
		h, err := s.db.Hierarchy(domain)
		if err != nil {
			return err
		}
		return h.AddInstance(name, parents...)
	})
}

// AddEdge adds and logs an extra is-a edge.
func (s *Store) AddEdge(domain, parent, child string) error {
	return s.logged(Record{Op: OpAddEdge, Target: domain, Args: []string{parent, child}}, func() error {
		h, err := s.db.Hierarchy(domain)
		if err != nil {
			return err
		}
		return h.AddEdge(parent, child)
	})
}

// Prefer adds and logs a preference edge.
func (s *Store) Prefer(domain, stronger, weaker string) error {
	return s.logged(Record{Op: OpPrefer, Target: domain, Args: []string{stronger, weaker}}, func() error {
		h, err := s.db.Hierarchy(domain)
		if err != nil {
			return err
		}
		return h.Prefer(stronger, weaker)
	})
}

// CreateRelation creates and logs a relation.
func (s *Store) CreateRelation(name string, attrs ...catalog.AttrSpec) error {
	args := make([]string, 0, 2*len(attrs))
	for _, a := range attrs {
		args = append(args, a.Name, a.Domain)
	}
	return s.logged(Record{Op: OpCreateRelation, Target: name, Args: args}, func() error {
		_, err := s.db.CreateRelation(name, attrs...)
		return err
	})
}

// DropRelation drops and logs.
func (s *Store) DropRelation(name string) error {
	return s.logged(Record{Op: OpDropRelation, Target: name}, func() error {
		return s.db.DropRelation(name)
	})
}

// Assert inserts and logs a positive tuple.
func (s *Store) Assert(rel string, values ...string) error {
	return s.logged(Record{Op: OpAssert, Target: rel, Args: values}, func() error {
		return s.db.Assert(rel, values...)
	})
}

// Deny inserts and logs a negated tuple.
func (s *Store) Deny(rel string, values ...string) error {
	return s.logged(Record{Op: OpDeny, Target: rel, Args: values}, func() error {
		return s.db.Deny(rel, values...)
	})
}

// Retract removes and logs.
func (s *Store) Retract(rel string, values ...string) error {
	return s.logged(Record{Op: OpRetract, Target: rel, Args: values}, func() error {
		_, err := s.db.Retract(rel, values...)
		return err
	})
}

// Consolidate consolidates and logs.
func (s *Store) Consolidate(rel string) error {
	return s.logged(Record{Op: OpConsolidate, Target: rel}, func() error {
		_, err := s.db.Consolidate(rel)
		return err
	})
}

// Explicate explicates and logs.
func (s *Store) Explicate(rel string, attrs ...string) error {
	return s.logged(Record{Op: OpExplicate, Target: rel, Args: attrs}, func() error {
		return s.db.Explicate(rel, attrs...)
	})
}

// DropNode removes a childless, unreferenced hierarchy node and logs it.
func (s *Store) DropNode(domain, name string) error {
	return s.logged(Record{Op: OpDropNode, Target: domain, Args: []string{name}}, func() error {
		return s.db.DropNode(domain, name)
	})
}

// SetMode switches a relation's preemption semantics and logs it.
func (s *Store) SetMode(rel string, mode core.Preemption) error {
	return s.logged(Record{Op: OpSetMode, Target: rel, Args: []string{mode.String()}}, func() error {
		return s.db.SetMode(rel, mode)
	})
}

// parseMode decodes a Preemption from its String form.
func parseMode(v string) (core.Preemption, error) {
	switch v {
	case "off-path":
		return core.OffPath, nil
	case "on-path":
		return core.OnPath, nil
	case "none":
		return core.NoPreemption, nil
	default:
		return 0, fmt.Errorf("%w: unknown mode %q", ErrCorrupt, v)
	}
}

// Checkpoint writes a snapshot of the current database and rotates to a
// fresh, empty WAL. The sequence is crash-safe at every step:
//
//  1. The snapshot (stamped with the next log epoch) is written to a temp
//     file, fsynced, renamed over the old snapshot, and the directory is
//     fsynced. A crash before the rename leaves the old snapshot + old log.
//  2. A new, empty WAL named for the next epoch is created, fsynced, and
//     the directory is fsynced. A crash between 1 and 2 is benign: Open
//     reads the new snapshot and creates the (empty) new-epoch log itself;
//     the old log is superseded and removed lazily.
//  3. The old log is closed and removed, and the directory is fsynced so
//     the removal is durable (otherwise a crash can resurrect a WAL from
//     two epochs ago that Open's lazy epoch-1 cleanup never reclaims).
//
// A failure after step 1 may leave the directory referencing the new
// epoch while this process still holds the old log, so the store is
// poisoned and must be reopened. A failure in step 3 does NOT poison the
// store — the rotation itself is complete and the new log is live — but
// it is reported (wrapped in ErrCheckpointGC) so callers know the
// superseded WAL may still be on disk.
func (s *Store) Checkpoint() error {
	if err := s.usable(); err != nil {
		return err
	}
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	start := time.Now()
	newEpoch := s.epoch + 1
	spec := SnapshotDatabase(s.db)
	spec.LogEpoch = newEpoch
	// Carry the fencing lineage forward: a checkpoint supersedes the WAL
	// (including any OpNewTerm records), so the snapshot must preserve the
	// adopted term and the takeover divergence point.
	spec.PrimaryTerm = s.term
	spec.TakeoverEpoch, spec.TakeoverOffset = s.takeoverEpoch, s.takeoverOffset
	if err := WriteSnapshotFS(s.fs, filepath.Join(s.dir, snapshotFile), spec); err != nil {
		// The rename may or may not have landed; this process can no
		// longer know which log the directory designates.
		s.failed.Store(true)
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	newLog, err := createLog(s.fs, s.dir, filepath.Join(s.dir, walName(newEpoch)))
	if err != nil {
		s.failed.Store(true)
		return fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	old, oldEpoch := s.log, s.epoch
	_, oldEnd := old.StagedMark()
	s.log, s.epoch = newLog, newEpoch
	// The retired epoch ends where its staged bytes end: old.Close below
	// flushes everything staged, and nothing can stage more (s.log has been
	// swapped under applyMu).
	s.epochEnds[oldEpoch] = oldEnd
	s.notify()
	metricCheckpoints.Inc()
	metricCheckpointNS.ObserveDuration(time.Since(start))
	// Step 3: garbage-collect the superseded log. Failures here are
	// reported but do not poison — the new snapshot and log are durable.
	_ = old.Close()
	if err := s.fs.Remove(filepath.Join(s.dir, walName(oldEpoch))); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: remove %s: %v", ErrCheckpointGC, walName(oldEpoch), err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("%w: dir sync after removing %s: %v", ErrCheckpointGC, walName(oldEpoch), err)
	}
	return nil
}

// LogSize returns the durable WAL size in bytes.
func (s *Store) LogSize() (int64, error) {
	s.applyMu.Lock()
	log := s.log
	s.applyMu.Unlock()
	return log.Size()
}

// LogStats returns the number of WAL records staged and fsyncs issued since
// the log was opened; group commit shows up as syncs < records.
func (s *Store) LogStats() (records, syncs uint64) {
	s.applyMu.Lock()
	log := s.log
	s.applyMu.Unlock()
	return log.Stats()
}

// usable rejects mutations on a closed or poisoned store. Callers invoke
// it twice: once lock-free as a fast path, and once under applyMu, where
// it orders the check against a concurrent Close.
func (s *Store) usable() error {
	if s.closed.Load() {
		return ErrStoreClosed
	}
	if s.failed.Load() {
		return ErrStoreFailed
	}
	if s.fenced.Load() != 0 {
		return ErrDeposed
	}
	return nil
}

// Close flushes staged WAL frames and closes the store's files. Close is
// safe to call concurrently with committers: the closed flag is set under
// applyMu, so no committer can begin staging afterwards, and the log's own
// Close flushes everything already staged — an ApplyTx waiting for its
// durability mark therefore still acknowledges (and its records survive).
// Only the first call closes; subsequent calls — and any mutation after
// the first Close — return ErrStoreClosed.
func (s *Store) Close() error {
	s.applyMu.Lock()
	if s.closed.Load() {
		s.applyMu.Unlock()
		return ErrStoreClosed
	}
	s.closed.Store(true)
	log := s.log
	s.applyMu.Unlock()
	// Wake WaitChange subscribers so replication streams observe the close
	// instead of blocking until their heartbeat deadline.
	s.notify()
	return log.Close()
}

// notify wakes every WaitChange subscriber by closing the current watch
// channel and installing a fresh one.
func (s *Store) notify() {
	s.watchMu.Lock()
	close(s.watch)
	s.watch = make(chan struct{})
	s.watchMu.Unlock()
}
