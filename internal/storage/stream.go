package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
)

// StreamDecoder reassembles WAL records from a byte stream. Replication
// ships raw WAL bytes in arbitrarily sized chunks (ReadWAL and the wire
// both split without regard for frame boundaries), so the decoder buffers
// partial frames across Feed calls and yields a record only when its
// complete frame — length, CRC, payload — has arrived and verified.
//
// A decoder is not safe for concurrent use.
type StreamDecoder struct {
	buf      []byte
	consumed int64
}

// maxStreamFrame bounds a frame's payload length. WAL records are small
// (one operation each); a length beyond this is certainly a desynced or
// corrupt stream, and rejecting it keeps a hostile length prefix from
// forcing a giant allocation.
const maxStreamFrame = 16 << 20

// NewStreamDecoder creates an empty decoder.
func NewStreamDecoder() *StreamDecoder { return &StreamDecoder{} }

// Feed appends a chunk of raw stream bytes. The decoder copies the bytes,
// so the caller may reuse p.
func (d *StreamDecoder) Feed(p []byte) { d.buf = append(d.buf, p...) }

// Next returns the next complete record. ok is false when the buffered
// bytes end mid-frame (feed more and retry). A CRC mismatch, oversized
// length, or undecodable payload returns an ErrCorrupt-wrapped error: the
// stream is desynced and the consumer must resynchronize by position (for
// replication: reconnect and resume from the last applied offset).
func (d *StreamDecoder) Next() (rec Record, ok bool, err error) {
	if len(d.buf) < 8 {
		return Record{}, false, nil
	}
	n := binary.LittleEndian.Uint32(d.buf[0:4])
	crc := binary.LittleEndian.Uint32(d.buf[4:8])
	if n > maxStreamFrame {
		return Record{}, false, fmt.Errorf("%w: stream frame of %d bytes", ErrCorrupt, n)
	}
	if len(d.buf) < 8+int(n) {
		return Record{}, false, nil
	}
	payload := d.buf[8 : 8+n]
	if crc32.ChecksumIEEE(payload) != crc {
		return Record{}, false, fmt.Errorf("%w: stream frame CRC mismatch", ErrCorrupt)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return Record{}, false, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	frame := 8 + int64(n)
	d.buf = d.buf[frame:]
	d.consumed += frame
	return rec, true, nil
}

// Buffered returns the number of fed bytes not yet consumed by completed
// frames — the partial frame awaiting its remainder.
func (d *StreamDecoder) Buffered() int { return len(d.buf) }

// Consumed returns the total bytes of completed frames decoded since the
// decoder was created. A consumer that started at WAL offset p has applied
// the log exactly up to p + Consumed().
func (d *StreamDecoder) Consumed() int64 { return d.consumed }
