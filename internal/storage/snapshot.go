package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot file format:
//
//	magic   [4]byte  "HRDB"
//	version uint32   little-endian
//	length  uint64   payload byte count
//	crc     uint32   CRC-32 (IEEE) of the payload
//	payload []byte   gob-encoded DatabaseSpec
//
// Snapshots are written atomically (temp file + rename).

var snapshotMagic = [4]byte{'H', 'R', 'D', 'B'}

// SnapshotVersion is the current snapshot format version.
const SnapshotVersion = 1

// WriteSnapshot serializes the spec to path atomically.
func WriteSnapshot(path string, spec DatabaseSpec) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(spec); err != nil {
		return fmt.Errorf("storage: encode snapshot: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(snapshotMagic[:])
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], SnapshotVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(payload.Bytes()))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())

	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// ReadSnapshot loads and verifies a snapshot file.
func ReadSnapshot(path string) (DatabaseSpec, error) {
	var spec DatabaseSpec
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	if len(data) < 20 || !bytes.Equal(data[:4], snapshotMagic[:]) {
		return spec, fmt.Errorf("%w: bad magic in %s", ErrCorrupt, path)
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	if version != SnapshotVersion {
		return spec, fmt.Errorf("%w: snapshot version %d", ErrVersion, version)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	crc := binary.LittleEndian.Uint32(data[16:20])
	payload := data[20:]
	if uint64(len(payload)) != n {
		return spec, fmt.Errorf("%w: truncated snapshot %s (%d of %d bytes)", ErrCorrupt, path, len(payload), n)
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return spec, fmt.Errorf("%w: checksum mismatch in %s", ErrCorrupt, path)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&spec); err != nil {
		return spec, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return spec, nil
}

// syncDir fsyncs a directory so a rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil // best effort; not all platforms allow dir fsync
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
