package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot file format:
//
//	magic   [4]byte  "HRDB"
//	version uint32   little-endian
//	length  uint64   payload byte count
//	crc     uint32   CRC-32 (IEEE) of the payload
//	payload []byte   gob-encoded DatabaseSpec
//
// Snapshots are written atomically and durably: temp file → fsync →
// rename → directory fsync. Readers therefore see either the old snapshot
// or the new one, never a partial write.

var snapshotMagic = [4]byte{'H', 'R', 'D', 'B'}

// SnapshotVersion is the current snapshot format version.
const SnapshotVersion = 1

// WriteSnapshot serializes the spec to path atomically on the real file
// system.
func WriteSnapshot(path string, spec DatabaseSpec) error {
	return WriteSnapshotFS(OsFS{}, path, spec)
}

// WriteSnapshotFS serializes the spec to path atomically on fs: the bytes
// are written to a temp file, fsynced, renamed over path, and the directory
// is fsynced so the rename itself is durable.
func WriteSnapshotFS(fs FS, path string, spec DatabaseSpec) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(spec); err != nil {
		return fmt.Errorf("storage: encode snapshot: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(snapshotMagic[:])
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], SnapshotVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(payload.Bytes()))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())

	tmp := path + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	// fsync before rename: otherwise the rename can become durable while
	// the data it points at is still only in the page cache, and a crash
	// yields a corrupt "new" snapshot in place of the intact old one.
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}

// ReadSnapshot loads and verifies a snapshot file from the real file
// system.
func ReadSnapshot(path string) (DatabaseSpec, error) {
	return ReadSnapshotFS(OsFS{}, path)
}

// ReadSnapshotFS loads and verifies a snapshot file from fs.
func ReadSnapshotFS(fs FS, path string) (DatabaseSpec, error) {
	var spec DatabaseSpec
	data, err := readFile(fs, path)
	if err != nil {
		return spec, err
	}
	if len(data) < 20 || !bytes.Equal(data[:4], snapshotMagic[:]) {
		return spec, fmt.Errorf("%w: bad magic in %s", ErrCorrupt, path)
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	if version != SnapshotVersion {
		return spec, fmt.Errorf("%w: snapshot version %d", ErrVersion, version)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	crc := binary.LittleEndian.Uint32(data[16:20])
	payload := data[20:]
	if uint64(len(payload)) != n {
		return spec, fmt.Errorf("%w: truncated snapshot %s (%d of %d bytes)", ErrCorrupt, path, len(payload), n)
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return spec, fmt.Errorf("%w: checksum mismatch in %s", ErrCorrupt, path)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&spec); err != nil {
		return spec, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return spec, nil
}
