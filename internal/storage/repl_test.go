package storage

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hrdb/internal/catalog"
)

// Tests for the replication position API: Position, EpochEnd, ReadWAL,
// WaitChange, ReplicationSnapshot. The streaming layer on top lives in
// internal/repl.

// TestPositionAdvancesWithCommits: the durable position starts at the
// epoch's durable size and advances monotonically with every acknowledged
// mutation; a checkpoint moves it to (epoch+1, 0).
func TestPositionAdvancesWithCommits(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	defer s.Close()

	epoch, off := s.Position()
	if epoch != 0 || off != 0 {
		t.Fatalf("fresh store position = (%d, %d), want (0, 0)", epoch, off)
	}
	must(t, s.CreateHierarchy("D"))
	_, off1 := s.Position()
	if off1 <= 0 {
		t.Fatalf("position did not advance after a commit: %d", off1)
	}
	must(t, s.AddClass("D", "C"))
	_, off2 := s.Position()
	if off2 <= off1 {
		t.Fatalf("position did not advance: %d then %d", off1, off2)
	}

	must(t, s.Checkpoint())
	epoch, off = s.Position()
	if epoch != 1 || off != 0 {
		t.Fatalf("post-checkpoint position = (%d, %d), want (1, 0)", epoch, off)
	}
	// The retired epoch's end is recorded and equals its final size.
	end, ok := s.EpochEnd(0)
	if !ok || end != off2 {
		t.Fatalf("EpochEnd(0) = (%d, %v), want (%d, true)", end, ok, off2)
	}
	if _, ok := s.EpochEnd(1); ok {
		t.Fatal("current epoch reported an end")
	}
}

// TestReadWALReturnsDurableBytes: ReadWAL serves exactly the durable bytes
// of the current epoch, honors the max bound, and reports caught-up as an
// empty read.
func TestReadWALReturnsDurableBytes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	defer s.Close()
	populateStore(t, s)

	_, size := s.Position()
	want, err := os.ReadFile(filepath.Join(dir, walFile))
	must(t, err)
	if int64(len(want)) != size {
		t.Fatalf("durable size %d != wal file size %d", size, len(want))
	}

	got, err := s.ReadWAL(0, 0, int(size))
	must(t, err)
	if string(got) != string(want) {
		t.Fatal("ReadWAL bytes differ from the wal file")
	}
	// Bounded read from an interior (mid-frame) offset.
	part, err := s.ReadWAL(0, 3, 10)
	must(t, err)
	if string(part) != string(want[3:13]) {
		t.Fatal("bounded ReadWAL bytes differ")
	}
	// Caught up: empty, no error.
	empty, err := s.ReadWAL(0, size, 1024)
	must(t, err)
	if len(empty) != 0 {
		t.Fatalf("caught-up read returned %d bytes", len(empty))
	}
	// Beyond the end: an error, not silence.
	if _, err := s.ReadWAL(0, size+1, 1); err == nil {
		t.Fatal("read beyond the durable end accepted")
	}
}

// TestReadWALRetiredEpoch: after a checkpoint the superseded epoch's file
// is gone, so reads of it fail with ErrWALUnavailable — the signal that a
// follower must re-bootstrap from a snapshot. An epoch retired before this
// process is equally unavailable.
func TestReadWALRetiredEpoch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	defer s.Close()
	populateStore(t, s)
	_, end := s.Position()
	must(t, s.Checkpoint())

	if _, err := s.ReadWAL(0, 0, int(end)); !errors.Is(err, ErrWALUnavailable) {
		t.Fatalf("read of removed epoch: got %v, want ErrWALUnavailable", err)
	}
	// But the recorded end still lets a caught-up follower rotate forward.
	if got, ok := s.EpochEnd(0); !ok || got != end {
		t.Fatalf("EpochEnd(0) = (%d, %v), want (%d, true)", got, ok, end)
	}
	if _, err := s.ReadWAL(7, 0, 10); !errors.Is(err, ErrWALUnavailable) {
		t.Fatalf("read of unknown epoch: got %v, want ErrWALUnavailable", err)
	}
}

// TestWaitChangeWakesOnCommit: WaitChange blocks while the position is
// unchanged, wakes when a commit advances it, and reports a closed store.
func TestWaitChangeWakesOnCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	epoch, off := s.Position()

	// Already-past positions return immediately.
	must(t, s.CreateHierarchy("D"))
	if err := s.WaitChange(context.Background(), epoch, off); err != nil {
		t.Fatalf("WaitChange on a stale position: %v", err)
	}

	// Blocks until the next commit.
	epoch, off = s.Position()
	done := make(chan error, 1)
	go func() { done <- s.WaitChange(context.Background(), epoch, off) }()
	select {
	case err := <-done:
		t.Fatalf("WaitChange returned before any commit: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	must(t, s.AddClass("D", "C"))
	select {
	case err := <-done:
		must(t, err)
	case <-time.After(2 * time.Second):
		t.Fatal("WaitChange missed the commit")
	}

	// Context cancellation unblocks.
	epoch, off = s.Position()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.WaitChange(ctx, epoch, off); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitChange under a dead context: got %v", err)
	}

	// Close wakes waiters with ErrStoreClosed.
	go func() { done <- s.WaitChange(context.Background(), epoch, off) }()
	time.Sleep(10 * time.Millisecond)
	must(t, s.Close())
	select {
	case err := <-done:
		if !errors.Is(err, ErrStoreClosed) {
			t.Fatalf("WaitChange on close: got %v, want ErrStoreClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitChange missed the close")
	}
}

// TestReplicationSnapshotConsistent: the snapshot's spec plus the WAL tail
// from its position reconstructs the primary's state exactly — the
// bootstrap invariant the follower relies on.
func TestReplicationSnapshotConsistent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	defer s.Close()
	populateStore(t, s)

	spec, epoch, off, err := s.ReplicationSnapshot()
	must(t, err)
	if epoch != 0 {
		t.Fatalf("snapshot epoch = %d, want 0", epoch)
	}
	curEpoch, curOff := s.Position()
	if curEpoch != epoch || curOff != off {
		t.Fatalf("snapshot position (%d, %d) != durable position (%d, %d)", epoch, off, curEpoch, curOff)
	}

	// Mutate further, then replay the tail beyond the snapshot position
	// onto the bootstrapped spec: states must converge.
	must(t, s.Assert("Flies", "GP"))
	must(t, s.ApplyTx([]catalog.TxOp{
		{Kind: "assert", Relation: "Flies", Values: []string{"Tweety"}},
		{Kind: "retract", Relation: "Flies", Values: []string{"AFP"}},
	}))

	db, err := BuildDatabase(spec)
	must(t, err)
	_, size := s.Position()
	tail, err := s.ReadWAL(epoch, off, int(size-off))
	must(t, err)
	a := NewApplier(db)
	if err := decodeFrames(t, tail, func(rec Record) error { return a.Apply(rec) }); err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(db), fingerprint(s.Database()); got != want {
		t.Fatalf("bootstrap + tail replay diverges from primary\n got: %s\nwant: %s", got, want)
	}
}

// decodeFrames decodes a contiguous run of complete WAL frames.
func decodeFrames(t testing.TB, buf []byte, fn func(Record) error) error {
	t.Helper()
	d := NewStreamDecoder()
	d.Feed(buf)
	for {
		rec, ok, err := d.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	if n := d.Buffered(); n != 0 {
		t.Fatalf("%d undecoded bytes left", n)
	}
	return nil
}
