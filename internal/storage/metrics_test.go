package storage

import (
	"testing"

	"hrdb/internal/catalog"
)

// Storage metrics are process-wide, so every assertion below is on a delta:
// other tests in the package move the same counters.

func TestWALMetrics(t *testing.T) {
	dir := t.TempDir()

	rec0 := metricWALRecords.Value()
	byt0 := metricWALBytes.Value()
	syn0 := metricWALFsyncs.Value()
	grp0 := metricGroupRecords.Snapshot()
	opn0 := metricOpens.Value()

	s, err := Open(dir)
	must(t, err)
	must(t, s.CreateHierarchy("Animal"))
	must(t, s.AddClass("Animal", "Bird"))
	must(t, s.AddInstance("Animal", "Tweety", "Bird"))
	must(t, s.CreateRelation("Flies", catalog.AttrSpec{Name: "Creature", Domain: "Animal"}))
	must(t, s.Assert("Flies", "Bird"))
	must(t, s.ApplyTx([]catalog.TxOp{
		{Kind: "assert", Relation: "Flies", Values: []string{"Tweety"}},
	}))

	recs := metricWALRecords.Value() - rec0
	if recs < 6 {
		t.Errorf("WAL record counter delta = %d, want ≥ 6", recs)
	}
	if d := metricWALBytes.Value() - byt0; d == 0 {
		t.Error("WAL byte counter did not move")
	}
	syncs := metricWALFsyncs.Value() - syn0
	if syncs == 0 {
		t.Error("WAL fsync counter did not move")
	}
	grp1 := metricGroupRecords.Snapshot()
	if d := grp1.Count - grp0.Count; d != syncs {
		t.Errorf("group-commit histogram grew by %d, want one observation per fsync (%d)", d, syncs)
	}
	if d := grp1.Sum - grp0.Sum; d != recs {
		t.Errorf("group-commit histogram sum grew by %d records, want %d", d, recs)
	}
	if d := metricOpens.Value() - opn0; d != 1 {
		t.Errorf("open counter delta = %d, want 1", d)
	}
	must(t, s.Close())
}

func TestCheckpointAndReplayMetrics(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	must(t, err)
	must(t, s.CreateHierarchy("Animal"))
	must(t, s.AddClass("Animal", "Bird"))
	must(t, s.CreateRelation("Flies", catalog.AttrSpec{Name: "Creature", Domain: "Animal"}))
	must(t, s.Assert("Flies", "Bird"))

	chk0 := metricCheckpoints.Value()
	chkNS0 := metricCheckpointNS.Snapshot()
	must(t, s.Checkpoint())
	if d := metricCheckpoints.Value() - chk0; d != 1 {
		t.Errorf("checkpoint counter delta = %d, want 1", d)
	}
	if d := metricCheckpointNS.Snapshot().Count - chkNS0.Count; d != 1 {
		t.Errorf("checkpoint duration histogram delta = %d, want 1", d)
	}

	// Post-checkpoint mutations land in the fresh WAL epoch and are
	// re-applied (and counted) by replay on the next open.
	must(t, s.AddClass("Animal", "Penguin", "Bird"))
	must(t, s.Deny("Flies", "Penguin"))
	must(t, s.Close())

	rep0 := metricReplayRecords.Value()
	repNS0 := metricReplayNS.Snapshot()
	s2, err := Open(dir)
	must(t, err)
	defer s2.Close()
	if d := metricReplayRecords.Value() - rep0; d < 2 {
		t.Errorf("replay record counter delta = %d, want ≥ 2", d)
	}
	if d := metricReplayNS.Snapshot().Count - repNS0.Count; d != 1 {
		t.Errorf("replay duration histogram delta = %d, want 1", d)
	}
}
