package shard

import (
	"testing"

	"hrdb/internal/catalog"
	"hrdb/internal/hierarchy"
)

func TestHomeShardStableAndInRange(t *testing.T) {
	for _, count := range []int{1, 2, 3, 7} {
		a := HomeShard("Flies", []string{"Tweety"}, count)
		b := HomeShard("Flies", []string{"Tweety"}, count)
		if a != b {
			t.Fatalf("count %d: not deterministic: %d vs %d", count, a, b)
		}
		if a < 0 || a >= count {
			t.Fatalf("count %d: shard %d out of range", count, a)
		}
	}
	if HomeShard("anything", []string{"x"}, 1) != 0 {
		t.Fatal("single shard owns everything")
	}
	if HomeShard("anything", []string{"x"}, 0) != 0 {
		t.Fatal("degenerate count must not divide by zero")
	}
}

func TestHomeShardSpreads(t *testing.T) {
	// Not a strict distribution test — just that the hash isn't constant.
	seen := map[int]bool{}
	vals := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	for _, v := range vals {
		seen[HomeShard("r", []string{v}, 3)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("10 keys all hashed to one of 3 shards: %v", seen)
	}
}

func testCatalog(t *testing.T) *catalog.Database {
	t.Helper()
	db := catalog.New()
	h := hierarchy.New("Animal")
	if err := h.AddClass("Bird"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddInstance("Tweety", "Bird"); err != nil {
		t.Fatal(err)
	}
	if err := db.AttachHierarchy(h); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("Flies", catalog.AttrSpec{Name: "Creature", Domain: "Animal"}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPlacement(t *testing.T) {
	db := testCatalog(t)
	local, err := Placement(db, "Flies", []string{"Tweety"})
	if err != nil || !local {
		t.Fatalf("all-instance tuple must be local: %v, %v", local, err)
	}
	local, err = Placement(db, "Flies", []string{"Bird"})
	if err != nil || local {
		t.Fatalf("class tuple must be global: %v, %v", local, err)
	}
	// Wrong arity and unknown values classify global so every shard raises
	// the same validation error the broadcast write will hit.
	if local, _ := Placement(db, "Flies", []string{"Tweety", "extra"}); local {
		t.Fatal("wrong arity must classify global")
	}
	if local, _ := Placement(db, "Flies", []string{"Bigfoot"}); local {
		t.Fatal("unknown value must classify global")
	}
	if _, err := Placement(db, "NoSuch", []string{"x"}); err == nil {
		t.Fatal("missing relation must error")
	}
}
