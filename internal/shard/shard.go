// Package shard partitions a hierarchical-relational database horizontally
// across N primaries while keeping every query semantically identical to a
// single-node database.
//
// The partitioning rule exploits the hierarchy model's own structure. The
// catalog — hierarchies, relation schemas, policies, modes — is replicated
// to every shard (every DDL statement broadcasts). Tuples split by the kind
// of values they carry:
//
//   - A local tuple has an instance at every coordinate. Instances are
//     enforced leaves of their hierarchies, so an instance value subsumes
//     only itself: a local tuple can bind only the one item equal to it.
//     Local tuples hash to a home shard by relation name and item key.
//   - A global tuple has at least one class coordinate. It is replicated to
//     every shard (writes go through two-phase commit).
//
// This placement makes per-shard evaluation exact. Any binder of a
// class-containing query item must itself contain classes (an instance
// cannot subsume a class), so it is global and present on every shard; any
// binder of an all-instance query item is either the identical local tuple
// (on its home shard) or global (everywhere). Either way the home shard of
// the query item sees every applicable tuple, so keyed HOLDS/WHY route to
// one shard, selections scatter and merge without cross-shard conflict
// resolution, and per-shard CONSOLIDATE removes exactly the globally
// redundant tuples.
//
// The one operation the invariant cannot distribute is EXPLICATE, which
// rewrites class tuples into their instance extensions — turning global
// tuples into local ones that would then live on the wrong shard. The
// coordinator rejects it on clusters with more than one shard.
package shard

import (
	"hash/fnv"

	"hrdb/internal/catalog"
)

// HomeShard returns the shard owning a local tuple of the relation: FNV-1a
// over the relation name and the item key, reduced modulo the shard count.
// Keyed reads use the same function for all-instance items; class-containing
// items are answerable on any shard, so hashing them too is harmless and
// spreads the read load.
func HomeShard(rel string, values []string, count int) int {
	if count <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(rel))
	h.Write([]byte(sep))
	for i, v := range values {
		if i > 0 {
			h.Write([]byte(sep))
		}
		h.Write([]byte(v))
	}
	return int(h.Sum32() % uint32(count))
}

// Placement classifies a keyed write against the catalog: local (every
// value is a hierarchy instance in its attribute's domain) or global. The
// relation must exist in the given catalog; values of the wrong arity or
// outside their domains classify as global, so the resulting broadcast
// surfaces the same validation error every shard would produce.
func Placement(db *catalog.Database, rel string, values []string) (local bool, err error) {
	r, err := db.Relation(rel)
	if err != nil {
		return false, err
	}
	s := r.Schema()
	if len(values) != s.Arity() {
		return false, nil
	}
	for i, v := range values {
		h := s.Attr(i).Domain
		if !h.Has(v) || !h.IsInstance(v) {
			return false, nil
		}
	}
	return true, nil
}
