package shard

import (
	"fmt"
	"strings"

	"hrdb/internal/catalog"
	"hrdb/internal/core"
)

// The shard operation wire format rides inside the server protocols' opaque
// payload (the EXECSHARD verb on v1, the EXECSHARD frame on v2), so it only
// needs to be a string. The first line is the operation header — fields
// joined by the same 0x1f separator core.Item.Key uses — and every
// following line is one record, its fields 0x1f-joined:
//
//	TUPLES <rel>                         → "+v1␟v2" / "-v1␟v2" lines
//	SELECT <rel> <attr> <class> …        → signed tuple lines (as TUPLES)
//	EVAL <rel>   + item lines            → "true"/"false" lines, in order
//	PREPARE <gid> + op lines             → "prepared <n>"
//	COMMIT <gid>                         → "committed" | "unknown"
//	ABORT <gid>                          → "aborted"
//	APPLY <gid>  + op lines              → "applied"
//
// An op line is "<kind>␟<rel>␟<v1>␟<v2>…" with kind one of the catalog.TxOp
// kinds. Values therefore must not contain 0x1f or newline — the same
// constraint core.Item.Key and the HQL dump already impose on node names.
// Encoders reject offending values; the decoders are strict so a corrupted
// frame fails loudly instead of applying a mangled operation.

// sep separates fields within one line of a shard operation.
const sep = "\x1f"

// OpIdempotent reports whether a shard operation is safe to retry on a
// fresh connection after a transport error. All shard operations are:
// reads trivially, and the 2PC verbs because they are gid-guarded on the
// participant (a duplicate PREPARE overwrites the same journal entry, a
// duplicate COMMIT/ABORT/APPLY of a finished gid answers from the done
// set without re-applying).
func OpIdempotent(op string) bool { return op != "" }

// checkWireSafe rejects values that would corrupt the line format.
func checkWireSafe(vals []string) error {
	for _, v := range vals {
		if strings.ContainsAny(v, sep+"\n") {
			return fmt.Errorf("shard: value %q contains a wire separator byte", v)
		}
	}
	return nil
}

// EncodeTuples builds the TUPLES op: dump a relation's stored tuples.
func EncodeTuples(rel string) (string, error) {
	if err := checkWireSafe([]string{rel}); err != nil {
		return "", err
	}
	return "TUPLES" + sep + rel, nil
}

// EncodeSelect builds the SELECT op: run a per-shard selection push-down
// and return the matching stored tuples (unconsolidated — the coordinator
// consolidates after the cross-shard merge).
func EncodeSelect(rel string, conds [][2]string) (string, error) {
	fields := []string{"SELECT", rel}
	for _, c := range conds {
		fields = append(fields, c[0], c[1])
	}
	if err := checkWireSafe(fields); err != nil {
		return "", err
	}
	return strings.Join(fields, sep), nil
}

// EncodeEval builds the EVAL op: batch-evaluate items against a relation.
func EncodeEval(rel string, items []core.Item) (string, error) {
	if err := checkWireSafe([]string{rel}); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("EVAL" + sep + rel)
	for _, it := range items {
		if err := checkWireSafe(it); err != nil {
			return "", err
		}
		b.WriteString("\n")
		b.WriteString(strings.Join(it, sep))
	}
	return b.String(), nil
}

// EncodePrepare builds the PREPARE op of a two-phase commit.
func EncodePrepare(gid string, ops []catalog.TxOp) (string, error) {
	return encodeWithOps("PREPARE", gid, ops)
}

// EncodeCommit builds the COMMIT op of a two-phase commit.
func EncodeCommit(gid string) (string, error) {
	if err := checkWireSafe([]string{gid}); err != nil {
		return "", err
	}
	return "COMMIT" + sep + gid, nil
}

// EncodeAbort builds the ABORT op of a two-phase commit.
func EncodeAbort(gid string) (string, error) {
	if err := checkWireSafe([]string{gid}); err != nil {
		return "", err
	}
	return "ABORT" + sep + gid, nil
}

// EncodeApply builds the APPLY op: the commit-recovery fallback that
// re-sends a transaction's operations to a participant that lost its
// in-memory journal (restart, failover) between PREPARE and COMMIT.
func EncodeApply(gid string, ops []catalog.TxOp) (string, error) {
	return encodeWithOps("APPLY", gid, ops)
}

func encodeWithOps(verb, gid string, ops []catalog.TxOp) (string, error) {
	if err := checkWireSafe([]string{gid}); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(verb + sep + gid)
	for _, o := range ops {
		if err := checkWireSafe(append([]string{o.Kind, o.Relation}, o.Values...)); err != nil {
			return "", err
		}
		b.WriteString("\n")
		b.WriteString(o.Kind + sep + o.Relation)
		for _, v := range o.Values {
			b.WriteString(sep)
			b.WriteString(v)
		}
	}
	return b.String(), nil
}

// EncodeTupleLines renders signed tuples as response lines (node side).
func EncodeTupleLines(tuples []core.Tuple) string {
	var b strings.Builder
	for i, t := range tuples {
		if i > 0 {
			b.WriteString("\n")
		}
		if t.Sign {
			b.WriteString("+")
		} else {
			b.WriteString("-")
		}
		b.WriteString(strings.Join(t.Item, sep))
	}
	return b.String()
}

// DecodeTuples parses a TUPLES/SELECT response back into signed tuples.
func DecodeTuples(resp string) ([]core.Tuple, error) {
	if resp == "" {
		return nil, nil
	}
	lines := strings.Split(resp, "\n")
	out := make([]core.Tuple, 0, len(lines))
	for _, ln := range lines {
		if ln == "" {
			continue
		}
		var sign bool
		switch ln[0] {
		case '+':
			sign = true
		case '-':
			sign = false
		default:
			return nil, fmt.Errorf("shard: malformed tuple line %q (no sign byte)", ln)
		}
		out = append(out, core.Tuple{Item: core.Item(strings.Split(ln[1:], sep)), Sign: sign})
	}
	return out, nil
}

// DecodeBools parses an EVAL response.
func DecodeBools(resp string) ([]bool, error) {
	if resp == "" {
		return nil, nil
	}
	lines := strings.Split(resp, "\n")
	out := make([]bool, 0, len(lines))
	for _, ln := range lines {
		switch ln {
		case "true":
			out = append(out, true)
		case "false":
			out = append(out, false)
		case "":
		default:
			return nil, fmt.Errorf("shard: malformed EVAL line %q", ln)
		}
	}
	return out, nil
}

// parsedOp is a decoded shard operation (node side).
type parsedOp struct {
	verb   string
	fields []string // header fields after the verb
	lines  []string // record lines, still encoded
}

// parseOp splits an operation into its header and record lines.
func parseOp(input string) (parsedOp, error) {
	head, rest, hasBody := strings.Cut(input, "\n")
	fields := strings.Split(head, sep)
	if fields[0] == "" {
		return parsedOp{}, fmt.Errorf("shard: empty operation")
	}
	op := parsedOp{verb: fields[0], fields: fields[1:]}
	if hasBody && rest != "" {
		op.lines = strings.Split(rest, "\n")
	}
	return op, nil
}

// decodeOps parses PREPARE/APPLY record lines into transaction operations.
func decodeOps(lines []string) ([]catalog.TxOp, error) {
	ops := make([]catalog.TxOp, 0, len(lines))
	for _, ln := range lines {
		if ln == "" {
			continue
		}
		f := strings.Split(ln, sep)
		if len(f) < 2 {
			return nil, fmt.Errorf("shard: malformed op line %q", ln)
		}
		switch f[0] {
		case "assert", "deny", "retract":
		default:
			return nil, fmt.Errorf("shard: unknown op kind %q", f[0])
		}
		ops = append(ops, catalog.TxOp{Kind: f[0], Relation: f[1], Values: f[2:]})
	}
	return ops, nil
}

// decodeItems parses EVAL record lines into items.
func decodeItems(lines []string) []core.Item {
	items := make([]core.Item, 0, len(lines))
	for _, ln := range lines {
		if ln == "" {
			continue
		}
		items = append(items, core.Item(strings.Split(ln, sep)))
	}
	return items
}
