package shard

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"hrdb/internal/catalog"
	"hrdb/internal/hql"
)

func TestClusterCloseAndShardCount(t *testing.T) {
	c, conns := newTestCluster(t, 3)
	if c.ShardCount() != 3 {
		t.Fatalf("ShardCount = %d", c.ShardCount())
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_ = conns
}

func TestClusterBusyRejectsConcurrentExec(t *testing.T) {
	c, conns := newTestCluster(t, 2)
	// Park one Exec inside a shard op, then race a second one against it.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	conns[0].setHook(func(op string) error {
		once.Do(func() {
			close(entered)
			<-release
		})
		return nil
	})
	done := make(chan error, 1)
	go func() {
		_, err := c.Exec(context.Background(), "SELECT FROM Flies WHERE Creature UNDER Bird;")
		done <- err
	}()
	<-entered
	if _, err := c.Exec(context.Background(), "EXTENSION Flies;"); !errors.Is(err, ErrClusterBusy) {
		t.Fatalf("concurrent Exec = %v, want ErrClusterBusy", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("parked Exec: %v", err)
	}
}

// TestClusterRulesAndInfer: RULE registers on the coordinator, SHOW RULES
// lists it, and INFER runs the Datalog program over the merged logical
// database — all byte-identical to a single node.
func TestClusterRulesAndInfer(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	ref, refDB := refSession(t)
	seed := "ASSERT Flies (Bird);\nDENY Flies (Penguin);\nASSERT FliesAt (Tweety, h1);"
	runBoth(t, c, ref, seed)
	runBoth(t, c, ref, "RULE travelsFar(?X) IF Flies(?X);")
	runBoth(t, c, ref, "SHOW RULES;")
	runBoth(t, c, ref, "INFER travelsFar(Tweety);")
	runBoth(t, c, ref, "INFER travelsFar(Paul);")
	runBoth(t, c, ref, "INFER travelsFar(?Who);")
	fingerprintsMatch(t, c, refDB)
}

// TestClusterDumpRoundTrips: the coordinator's DUMP reconstructs the whole
// logical database; replaying it into a fresh single node reproduces the
// cluster's fingerprint.
func TestClusterDumpRoundTrips(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	if _, err := c.Exec(context.Background(),
		"ASSERT Flies (Bird);\nDENY Flies (Penguin);\nASSERT FliesAt (Robin, l1);"); err != nil {
		t.Fatal(err)
	}
	dump, err := c.Exec(context.Background(), "DUMP;")
	if err != nil {
		t.Fatal(err)
	}
	db := catalog.New()
	replayed := hql.NewSession(hql.MemTarget{DB: db})
	if _, err := replayed.Exec(dump); err != nil {
		t.Fatalf("replaying cluster dump: %v", err)
	}
	fingerprintsMatch(t, c, db)
}

// TestClusterMoreAlgebra covers the coordinator-side operators the main
// algebra test leaves out: INTERSECT, DIFFERENCE, EXPLAIN of a binary
// operator, and SELECT with no shard-side match.
func TestClusterMoreAlgebra(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	ref, _ := refSession(t)
	runBoth(t, c, ref, "ASSERT Flies (Bird);\nASSERT FliesAt (Tweety, h1);\nASSERT FliesAt (Paul, l1);")
	runBoth(t, c, ref, "PROJECT FliesAt ON (Creature) AS Fliers;")
	runBoth(t, c, ref, "INTERSECT Flies Fliers AS Both;")
	runBoth(t, c, ref, "DIFFERENCE Flies Fliers AS OnlyClaimed;")
	runBoth(t, c, ref, "EXPLAIN JOIN Flies Fliers AS J2;")
	runBoth(t, c, ref, "SELECT FROM FliesAt WHERE Alt UNDER high AND Creature UNDER Penguin;")
}

func TestClusterTxStateErrors(t *testing.T) {
	c, _ := newTestCluster(t, 2)
	ctx := context.Background()
	if _, err := c.Exec(ctx, "COMMIT;"); !errors.Is(err, hql.ErrNoTx) {
		t.Fatalf("COMMIT outside tx = %v", err)
	}
	if _, err := c.Exec(ctx, "ROLLBACK;"); !errors.Is(err, hql.ErrNoTx) {
		t.Fatalf("ROLLBACK outside tx = %v", err)
	}
	if _, err := c.Exec(ctx, "BEGIN;\nBEGIN;"); !errors.Is(err, hql.ErrInTx) {
		t.Fatalf("nested BEGIN = %v", err)
	}
	if _, err := c.Exec(ctx, "ROLLBACK;"); err != nil {
		t.Fatalf("unwinding: %v", err)
	}
}

// failingConn errors on everything — NewCluster's bootstrap must surface it.
type failingConn struct{}

func (failingConn) Exec(context.Context, string) (string, error) {
	return "", errors.New("boom")
}
func (failingConn) ExecShard(context.Context, string) (string, error) {
	return "", errors.New("boom")
}
func (failingConn) Close() error { return nil }

func TestNewClusterBootstrapErrors(t *testing.T) {
	if _, err := NewCluster(context.Background(), nil); err == nil {
		t.Fatal("empty cluster must fail")
	}
	if _, err := NewCluster(context.Background(), []Conn{failingConn{}}); err == nil || !strings.Contains(err.Error(), "bootstrap") {
		t.Fatalf("failing bootstrap dump = %v", err)
	}
}
