package shard

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"hrdb/internal/algebra"
	"hrdb/internal/catalog"
	"hrdb/internal/core"
	"hrdb/internal/hql"
)

// testNode builds a shard node over a fresh in-memory catalog seeded with
// the Animal hierarchy and the Flies relation.
func testNode(t *testing.T) (*Node, *catalog.Database) {
	t.Helper()
	db := catalog.New()
	sess := hql.NewSession(hql.MemTarget{DB: db})
	script := `CREATE HIERARCHY Animal;
CLASS Bird UNDER Animal IN Animal;
CLASS Penguin UNDER Bird IN Animal;
INSTANCE Tweety UNDER Bird IN Animal;
INSTANCE Paul UNDER Penguin IN Animal;
CREATE RELATION Flies (Creature: Animal);`
	if _, err := sess.Exec(script); err != nil {
		t.Fatal(err)
	}
	return NewNode(hql.MemTarget{DB: db}, 0, 1), db
}

func exec(t *testing.T, n *Node, op string) string {
	t.Helper()
	out, err := n.Execute(context.Background(), op)
	if err != nil {
		t.Fatalf("Execute(%q): %v", op, err)
	}
	return out
}

func TestNodeTuplesSelectEval(t *testing.T) {
	n, db := testNode(t)
	if err := db.ApplyOps([]catalog.TxOp{
		{Kind: "assert", Relation: "Flies", Values: []string{"Bird"}},
		{Kind: "deny", Relation: "Flies", Values: []string{"Penguin"}},
	}); err != nil {
		t.Fatal(err)
	}

	op, _ := EncodeTuples("Flies")
	tuples, err := DecodeTuples(exec(t, n, op))
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Fatalf("want 2 stored tuples, got %v", tuples)
	}

	op, _ = EncodeSelect("Flies", [][2]string{{"Creature", "Penguin"}})
	got := exec(t, n, op)
	// The node's SELECT is exactly the algebra operator over its local
	// snapshot, without consolidation.
	snap, err := db.Snapshot("Flies")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := algebra.SelectContext(context.Background(), "σ", snap,
		algebra.Condition{Attr: "Creature", Class: "Penguin"})
	if err != nil {
		t.Fatal(err)
	}
	if want := EncodeTupleLines(ref.Tuples()); got != want {
		t.Fatalf("select result %q, want %q", got, want)
	}

	op, _ = EncodeEval("Flies", []core.Item{{"Tweety"}, {"Paul"}})
	verdicts, err := DecodeBools(exec(t, n, op))
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 2 || !verdicts[0] || verdicts[1] {
		t.Fatalf("verdicts %v (want Tweety flies, Paul doesn't)", verdicts)
	}
}

func TestNodePrepareCommitLifecycle(t *testing.T) {
	n, db := testNode(t)
	ops := []catalog.TxOp{{Kind: "assert", Relation: "Flies", Values: []string{"Tweety"}}}

	prep, _ := EncodePrepare("g1", ops)
	if out := exec(t, n, prep); out != "prepared 1" {
		t.Fatalf("prepare: %q", out)
	}
	if n.PendingCount() != 1 {
		t.Fatalf("pending %d", n.PendingCount())
	}
	// PREPARE journals only: nothing visible yet.
	r, _ := db.Relation("Flies")
	if len(r.Tuples()) != 0 {
		t.Fatal("prepare must not apply")
	}

	commit, _ := EncodeCommit("g1")
	if out := exec(t, n, commit); out != "committed" {
		t.Fatalf("commit: %q", out)
	}
	if len(r.Tuples()) != 1 {
		t.Fatal("commit must apply the journaled ops")
	}
	// Idempotent under retries.
	if out := exec(t, n, commit); out != "committed" {
		t.Fatalf("duplicate commit: %q", out)
	}
	if len(r.Tuples()) != 1 {
		t.Fatal("duplicate commit must not re-apply")
	}
	// A finished gid cannot be re-prepared.
	if _, err := n.Execute(context.Background(), prep); err == nil {
		t.Fatal("re-prepare of a finished gid must fail")
	}
}

func TestNodeCommitUnknownAndApplyFallback(t *testing.T) {
	n, db := testNode(t)
	commit, _ := EncodeCommit("lost")
	if out := exec(t, n, commit); out != "unknown" {
		t.Fatalf("commit of unseen gid: %q", out)
	}
	// The coordinator answers "unknown" with APPLY.
	ops := []catalog.TxOp{{Kind: "assert", Relation: "Flies", Values: []string{"Tweety"}}}
	apply, _ := EncodeApply("lost", ops)
	if out := exec(t, n, apply); out != "applied" {
		t.Fatalf("apply: %q", out)
	}
	r, _ := db.Relation("Flies")
	if len(r.Tuples()) != 1 {
		t.Fatal("apply must apply")
	}
	// APPLY is idempotent too (the retry path retries it blindly).
	if out := exec(t, n, apply); out != "applied" {
		t.Fatalf("duplicate apply: %q", out)
	}
	if len(r.Tuples()) != 1 {
		t.Fatal("duplicate apply must not re-apply")
	}
	// And a late COMMIT for the now-finished gid answers from the done set.
	if out := exec(t, n, commit); out != "committed" {
		t.Fatalf("late commit: %q", out)
	}
}

func TestNodeAbortDropsJournal(t *testing.T) {
	n, db := testNode(t)
	ops := []catalog.TxOp{{Kind: "assert", Relation: "Flies", Values: []string{"Tweety"}}}
	prep, _ := EncodePrepare("g2", ops)
	exec(t, n, prep)
	abort, _ := EncodeAbort("g2")
	if out := exec(t, n, abort); out != "aborted" {
		t.Fatalf("abort: %q", out)
	}
	if n.PendingCount() != 0 {
		t.Fatal("abort must drop the journal entry")
	}
	r, _ := db.Relation("Flies")
	if len(r.Tuples()) != 0 {
		t.Fatal("abort must not apply")
	}
}

func TestNodePrepareValidates(t *testing.T) {
	n, db := testNode(t)
	// Unknown value caught at prepare time, not commit time.
	prep, _ := EncodePrepare("g3", []catalog.TxOp{
		{Kind: "assert", Relation: "Flies", Values: []string{"Bigfoot"}},
	})
	if _, err := n.Execute(context.Background(), prep); err == nil {
		t.Fatal("unknown value must vote no")
	}
	if n.PendingCount() != 0 {
		t.Fatal("a failed prepare must not journal")
	}
	r, _ := db.Relation("Flies")
	if len(r.Tuples()) != 0 {
		t.Fatal("validation is a dry run: live state untouched")
	}
	// Missing relation votes no too.
	prep, _ = EncodePrepare("g4", []catalog.TxOp{
		{Kind: "assert", Relation: "NoSuch", Values: []string{"Tweety"}},
	})
	if _, err := n.Execute(context.Background(), prep); err == nil {
		t.Fatal("missing relation must vote no")
	}
}

func TestNodeDoneSetEviction(t *testing.T) {
	n, _ := testNode(t)
	// Finish doneCap+10 gids via prepare/abort (no state applied).
	for i := 0; i < doneCap+10; i++ {
		gid := fmt.Sprintf("g%d", i)
		prep, _ := EncodePrepare(gid, nil)
		exec(t, n, prep)
		abort, _ := EncodeAbort(gid)
		exec(t, n, abort)
	}
	n.mu.Lock()
	doneLen, fifoLen := len(n.done), len(n.doneFIFO)
	n.mu.Unlock()
	if doneLen != doneCap || fifoLen != doneCap {
		t.Fatalf("done set not bounded: %d/%d (cap %d)", doneLen, fifoLen, doneCap)
	}
	// The oldest gid was evicted, so a COMMIT for it answers "unknown" again.
	commit, _ := EncodeCommit("g0")
	if out := exec(t, n, commit); out != "unknown" {
		t.Fatalf("evicted gid: %q", out)
	}
}

func TestNodeRejectsMalformedOps(t *testing.T) {
	n, _ := testNode(t)
	for _, op := range []string{
		"FROBNICATE" + "\x1f" + "x",
		"PREPARE", // no gid
		"TUPLES",  // no relation
		strings.Join([]string{"SELECT", "Flies", "Creature"}, "\x1f"), // dangling cond
	} {
		if _, err := n.Execute(context.Background(), op); err == nil {
			t.Fatalf("op %q must fail", op)
		}
	}
}
