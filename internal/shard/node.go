package shard

import (
	"context"
	"fmt"
	"sync"

	"hrdb/internal/algebra"
	"hrdb/internal/catalog"
	"hrdb/internal/hql"
)

// doneCap bounds the participant's memory of finished transactions. 2PC
// retries arrive within a connection-failover window, not hours later, so a
// small FIFO window is enough to keep COMMIT/APPLY idempotent.
const doneCap = 1024

// Node is the shard-local half of the cluster: it executes shard operations
// against the server's target and acts as the two-phase-commit participant.
// One Node is attached to a server (Options.Shard) and shared by all of its
// connections; all methods are safe for concurrent use (reads go through
// the catalog's own synchronization, participant state is mutex-guarded).
//
// The participant protocol is journal-then-apply: PREPARE validates the
// transaction against a throwaway copy of the current state and journals
// the operations in memory — nothing durable happens, so a participant
// that dies after voting yes restarts clean. COMMIT applies the journaled
// operations through the target's transactional bracket (the WAL on a
// durable server). A COMMIT for a gid the node has never seen — the journal
// died with a crashed process, or this node is a replica promoted after the
// original participant was lost — answers "unknown", and the coordinator
// completes the transaction by re-sending the operations with APPLY. The
// done set makes COMMIT and APPLY idempotent under retries and at-least-once
// delivery.
type Node struct {
	// ID and Count are this shard's index and the cluster's shard count,
	// served to clients by the SHARDMAP verb.
	ID    int
	Count int

	target hql.Target

	mu       sync.Mutex
	pending  map[string][]catalog.TxOp
	done     map[string]bool
	doneFIFO []string
}

// NewNode creates the shard-local executor over a server target.
func NewNode(target hql.Target, id, count int) *Node {
	return &Node{
		ID:      id,
		Count:   count,
		target:  target,
		pending: map[string][]catalog.TxOp{},
		done:    map[string]bool{},
	}
}

// Execute runs one encoded shard operation and returns its response text.
func (n *Node) Execute(ctx context.Context, input string) (string, error) {
	op, err := parseOp(input)
	if err != nil {
		return "", err
	}
	switch op.verb {
	case "TUPLES":
		if len(op.fields) != 1 {
			return "", fmt.Errorf("shard: TUPLES wants 1 field, got %d", len(op.fields))
		}
		r, err := n.target.Database().Snapshot(op.fields[0])
		if err != nil {
			return "", err
		}
		return EncodeTupleLines(r.Tuples()), nil

	case "SELECT":
		if len(op.fields) < 1 || len(op.fields)%2 != 1 {
			return "", fmt.Errorf("shard: malformed SELECT header")
		}
		r, err := n.target.Database().Snapshot(op.fields[0])
		if err != nil {
			return "", err
		}
		conds := make([]algebra.Condition, 0, (len(op.fields)-1)/2)
		for i := 1; i+1 < len(op.fields); i += 2 {
			conds = append(conds, algebra.Condition{Attr: op.fields[i], Class: op.fields[i+1]})
		}
		res, err := algebra.SelectContext(ctx, "σ", r, conds...)
		if err != nil {
			return "", err
		}
		// No per-shard consolidation: subsumption between a shard's local
		// tuples and another shard's globals is resolved after the merge.
		return EncodeTupleLines(res.Tuples()), nil

	case "EVAL":
		if len(op.fields) != 1 {
			return "", fmt.Errorf("shard: EVAL wants 1 field, got %d", len(op.fields))
		}
		verdicts, err := n.target.Database().HoldsBatch(ctx, op.fields[0], decodeItems(op.lines))
		if err != nil {
			return "", err
		}
		out := make([]byte, 0, len(verdicts)*6)
		for i, v := range verdicts {
			if i > 0 {
				out = append(out, '\n')
			}
			out = append(out, fmt.Sprintf("%v", v)...)
		}
		return string(out), nil

	case "PREPARE":
		ops, err := decodeOps(op.lines)
		if err != nil {
			return "", err
		}
		if err := n.prepare(gidOf(op), ops); err != nil {
			return "", err
		}
		return fmt.Sprintf("prepared %d", len(ops)), nil

	case "COMMIT":
		return n.commit(gidOf(op))

	case "ABORT":
		n.abort(gidOf(op))
		return "aborted", nil

	case "APPLY":
		ops, err := decodeOps(op.lines)
		if err != nil {
			return "", err
		}
		if err := n.apply(gidOf(op), ops); err != nil {
			return "", err
		}
		return "applied", nil

	default:
		return "", fmt.Errorf("shard: unknown operation %q", op.verb)
	}
}

func gidOf(op parsedOp) string {
	if len(op.fields) > 0 {
		return op.fields[0]
	}
	return ""
}

// prepare validates the transaction and journals it in memory.
func (n *Node) prepare(gid string, ops []catalog.TxOp) error {
	if gid == "" {
		return fmt.Errorf("shard: PREPARE without gid")
	}
	if err := n.validate(ops); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.done[gid] {
		return fmt.Errorf("shard: transaction %s already finished", gid)
	}
	n.pending[gid] = ops
	return nil
}

// validate dry-runs the operations against a throwaway catalog built from
// the live hierarchies (shared read-only) and snapshots of the touched
// relations, so a vote of yes means the real apply cannot fail on this
// state. Two transactions prepared concurrently validate against the same
// base and are not isolated from each other; the coordinator serializes
// its own transactions, and the residual race is documented in
// docs/SHARDING.md.
func (n *Node) validate(ops []catalog.TxOp) error {
	db := n.target.Database()
	tmp := catalog.New()
	tmp.SetPolicy(db.Policy())
	for _, d := range db.Hierarchies() {
		h, err := db.Hierarchy(d)
		if err != nil {
			return err
		}
		if err := tmp.AttachHierarchy(h); err != nil {
			return err
		}
	}
	seen := map[string]bool{}
	for _, o := range ops {
		if seen[o.Relation] {
			continue
		}
		seen[o.Relation] = true
		snap, err := db.Snapshot(o.Relation)
		if err != nil {
			return err
		}
		if err := tmp.AttachRelation(snap); err != nil {
			return err
		}
	}
	return tmp.ApplyOps(ops)
}

// commit durably applies a journaled transaction. "unknown" (with no error)
// tells the coordinator this node has no journal for the gid and needs the
// operations re-sent via APPLY.
func (n *Node) commit(gid string) (string, error) {
	n.mu.Lock()
	if n.done[gid] {
		n.mu.Unlock()
		return "committed", nil
	}
	ops, ok := n.pending[gid]
	n.mu.Unlock()
	if !ok {
		return "unknown", nil
	}
	if err := n.target.ApplyTx(ops); err != nil {
		return "", err
	}
	n.finish(gid)
	return "committed", nil
}

// abort drops a journaled transaction.
func (n *Node) abort(gid string) {
	n.finish(gid)
}

// apply is the commit-recovery fallback: apply re-sent operations unless
// the gid already finished here.
func (n *Node) apply(gid string, ops []catalog.TxOp) error {
	if gid == "" {
		return fmt.Errorf("shard: APPLY without gid")
	}
	n.mu.Lock()
	if n.done[gid] {
		n.mu.Unlock()
		return nil
	}
	n.mu.Unlock()
	if err := n.target.ApplyTx(ops); err != nil {
		return err
	}
	n.finish(gid)
	return nil
}

// finish marks a gid done (idempotency guard) and drops its journal entry,
// evicting the oldest done entries beyond doneCap.
func (n *Node) finish(gid string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.pending, gid)
	if n.done[gid] {
		return
	}
	n.done[gid] = true
	n.doneFIFO = append(n.doneFIFO, gid)
	for len(n.doneFIFO) > doneCap {
		delete(n.done, n.doneFIFO[0])
		n.doneFIFO = n.doneFIFO[1:]
	}
}

// PendingCount reports the number of journaled-but-undecided transactions
// (exposed for tests and server stats).
func (n *Node) PendingCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.pending)
}
