package shard

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hrdb/internal/catalog"
	"hrdb/internal/core"
	"hrdb/internal/hql"
	"hrdb/internal/storage"
)

// localConn is an in-process shard connection: a Node plus an HQL session
// over one target, with a fault-injection hook on the shard-op channel. It
// is what *server.Client/*server.Router provide over TCP, minus the wire.
type localConn struct {
	target hql.MemTarget
	db     *catalog.Database
	sess   *hql.Session

	mu   sync.Mutex
	node *Node
	hook func(op string) error // runs before each ExecShard
}

func newLocalConn(id, count int) *localConn {
	db := catalog.New()
	target := hql.MemTarget{DB: db}
	return &localConn{
		target: target,
		db:     db,
		sess:   hql.NewSession(target),
		node:   NewNode(target, id, count),
	}
}

func (c *localConn) Exec(ctx context.Context, input string) (string, error) {
	return c.sess.ExecContext(ctx, input)
}

func (c *localConn) ExecShard(ctx context.Context, op string) (string, error) {
	c.mu.Lock()
	hook := c.hook
	c.mu.Unlock()
	if hook != nil {
		if err := hook(op); err != nil {
			return "", err
		}
	}
	c.mu.Lock()
	node := c.node
	c.mu.Unlock()
	return node.Execute(ctx, op)
}

func (c *localConn) Close() error { return nil }

func (c *localConn) setHook(h func(op string) error) {
	c.mu.Lock()
	c.hook = h
	c.mu.Unlock()
}

// restart simulates a participant crash-and-recover (or failover to a
// promoted replica): the applied state survives, the in-memory 2PC journal
// does not.
func (c *localConn) restart() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.node = NewNode(c.target, c.node.ID, c.node.Count)
}

const clusterDDL = `CREATE HIERARCHY Animal;
CLASS Bird UNDER Animal IN Animal;
CLASS Penguin UNDER Bird IN Animal;
INSTANCE Tweety UNDER Bird IN Animal;
INSTANCE Paul UNDER Penguin IN Animal;
INSTANCE Robin UNDER Bird IN Animal;
CREATE HIERARCHY Alt;
CLASS high UNDER Alt IN Alt;
CLASS low UNDER Alt IN Alt;
INSTANCE h1 UNDER high IN Alt;
INSTANCE l1 UNDER low IN Alt;
CREATE RELATION Flies (Creature: Animal);
CREATE RELATION FliesAt (Creature: Animal, Alt: Alt);`

// newTestCluster builds an n-shard in-process cluster with the test schema
// broadcast to every shard.
func newTestCluster(t *testing.T, n int) (*Cluster, []*localConn) {
	t.Helper()
	conns := make([]*localConn, n)
	ifaces := make([]Conn, n)
	for i := range conns {
		conns[i] = newLocalConn(i, n)
		ifaces[i] = conns[i]
	}
	c, err := NewCluster(context.Background(), ifaces)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(context.Background(), clusterDDL); err != nil {
		t.Fatal(err)
	}
	return c, conns
}

// refSession builds the single-node reference the cluster must be
// indistinguishable from.
func refSession(t *testing.T) (*hql.Session, *catalog.Database) {
	t.Helper()
	db := catalog.New()
	sess := hql.NewSession(hql.MemTarget{DB: db})
	if _, err := sess.Exec(clusterDDL); err != nil {
		t.Fatal(err)
	}
	return sess, db
}

// runBoth executes the same script on the cluster and the reference session
// and fails on any output divergence.
func runBoth(t *testing.T, c *Cluster, ref *hql.Session, script string) string {
	t.Helper()
	got, gerr := c.Exec(context.Background(), script)
	want, werr := ref.Exec(script)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("script %q: cluster err %v, reference err %v", script, gerr, werr)
	}
	if got != want {
		t.Fatalf("script %q diverges\ncluster:\n%s\nreference:\n%s", script, got, want)
	}
	return got
}

// fingerprintsMatch fails unless the cluster's merged state equals the
// reference database.
func fingerprintsMatch(t *testing.T, c *Cluster, ref *catalog.Database) {
	t.Helper()
	got, err := c.Fingerprint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := storage.Fingerprint(ref); got != want {
		t.Fatalf("cluster state diverged from single-node reference\ncluster:  %s\nreference: %s", got, want)
	}
}

func TestClusterKeyedPlacement(t *testing.T) {
	c, conns := newTestCluster(t, 3)
	out, err := c.Exec(context.Background(), "ASSERT Flies (Tweety);")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "asserted Flies(Tweety)") {
		t.Fatalf("output %q", out)
	}
	// The local tuple lives only on its home shard.
	home := HomeShard("Flies", []string{"Tweety"}, 3)
	for i, conn := range conns {
		r, err := conn.db.Relation("Flies")
		if err != nil {
			t.Fatal(err)
		}
		n := len(r.Tuples())
		if i == home && n != 1 {
			t.Fatalf("home shard %d holds %d tuples", i, n)
		}
		if i != home && n != 0 {
			t.Fatalf("shard %d (not home %d) holds %d tuples", i, home, n)
		}
	}
	// A class tuple is global: 2PC replicates it to every shard.
	if _, err := c.Exec(context.Background(), "DENY Flies (Penguin);"); err != nil {
		t.Fatal(err)
	}
	for i, conn := range conns {
		r, _ := conn.db.Relation("Flies")
		found := false
		for _, tu := range r.Tuples() {
			if tu.Item[0] == "Penguin" && !tu.Sign {
				found = true
			}
		}
		if !found {
			t.Fatalf("shard %d missing the global Penguin exception", i)
		}
	}
}

func TestClusterMatchesReference(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	ref, refDB := refSession(t)
	script := `ASSERT Flies (Bird);
DENY Flies (Penguin);
ASSERT FliesAt (Robin, h1);
ASSERT FliesAt (Tweety, l1);
ASSERT FliesAt (Bird, low);`
	runBoth(t, c, ref, script)

	for _, q := range []string{
		"HOLDS Flies (Tweety);",
		"HOLDS Flies (Paul);",
		"WHY Flies (Paul);",
		"SELECT FROM Flies WHERE Creature UNDER Bird;",
		"SELECT FROM FliesAt WHERE Creature UNDER Bird AND Alt UNDER low;",
		"EXTENSION Flies;",
		"COUNT FliesAt BY (Alt);",
		"SHOW RELATION FliesAt;",
		"SHOW RELATIONS;",
		"SHOW HIERARCHY Animal;",
	} {
		runBoth(t, c, ref, q)
	}
	fingerprintsMatch(t, c, refDB)
}

func TestClusterCoordinatorAlgebra(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	ref, _ := refSession(t)
	runBoth(t, c, ref, `ASSERT Flies (Bird);
DENY Flies (Penguin);
ASSERT FliesAt (Robin, h1);
ASSERT FliesAt (Paul, l1);`)

	for _, q := range []string{
		"SELECT FROM FliesAt WHERE Alt UNDER high AS HighFliers;",
		"SELECT FROM HighFliers;", // derived: served from the coordinator mirror
		"PROJECT FliesAt ON (Creature) AS AnyAlt;",
		"JOIN Flies AnyAlt AS J;",
		"UNION Flies Flies AS U;",
		"EXPLAIN SELECT FROM Flies WHERE Creature UNDER Bird;",
	} {
		runBoth(t, c, ref, q)
	}
}

func TestClusterTransactions(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	ref, refDB := refSession(t)
	runBoth(t, c, ref, `BEGIN;
ASSERT Flies (Bird);
ASSERT FliesAt (Tweety, h1);
ASSERT FliesAt (Robin, l1);
COMMIT;`)
	fingerprintsMatch(t, c, refDB)

	// ROLLBACK discards the buffer.
	runBoth(t, c, ref, `BEGIN;
ASSERT Flies (Robin);
ROLLBACK;`)
	fingerprintsMatch(t, c, refDB)

	// Transaction-state errors mirror the session's.
	if _, err := c.Exec(context.Background(), "COMMIT;"); err != hql.ErrNoTx {
		t.Fatalf("COMMIT outside tx: %v", err)
	}
	if _, err := c.Exec(context.Background(), "BEGIN;\nBEGIN;"); err != hql.ErrInTx {
		t.Fatalf("nested BEGIN: %v", err)
	}
	if _, err := c.Exec(context.Background(), "ROLLBACK;"); err != nil {
		t.Fatalf("cleanup rollback: %v", err)
	}
}

func TestClusterExplicateRejected(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	if _, err := c.Exec(context.Background(), "ASSERT Flies (Bird);"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(context.Background(), "EXPLICATE Flies;"); err == nil {
		t.Fatal("EXPLICATE must be rejected on a multi-shard cluster")
	}

	single, _ := newTestCluster(t, 1)
	if _, err := single.Exec(context.Background(), "ASSERT Flies (Bird);"); err != nil {
		t.Fatal(err)
	}
	if _, err := single.Exec(context.Background(), "EXPLICATE Flies;"); err != nil {
		t.Fatalf("EXPLICATE on a single shard: %v", err)
	}
}

func TestClusterHoldsBatch(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	ref, refDB := refSession(t)
	runBoth(t, c, ref, "ASSERT Flies (Bird);\nDENY Flies (Penguin);")

	items := []core.Item{{"Tweety"}, {"Paul"}, {"Robin"}, {"Penguin"}}
	got, err := c.HoldsBatch(context.Background(), "Flies", items)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refDB.HoldsBatch(context.Background(), "Flies", items)
	if err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if got[i] != want[i] {
			t.Fatalf("item %v: cluster %v, reference %v", items[i], got[i], want[i])
		}
	}
}

func TestCluster2PCPrepareFailureIsAtomic(t *testing.T) {
	c, conns := newTestCluster(t, 3)
	ref, refDB := refSession(t)
	runBoth(t, c, ref, "ASSERT Flies (Tweety);")

	conns[1].setHook(func(op string) error {
		if strings.HasPrefix(op, "PREPARE") {
			return fmt.Errorf("injected: shard 1 unreachable during prepare")
		}
		return nil
	})
	// A global op involves every shard; shard 1's no vote must abort all.
	_, err := c.Exec(context.Background(), "BEGIN;\nASSERT Flies (Bird);\nASSERT FliesAt (Robin, h1);\nCOMMIT;")
	if err == nil {
		t.Fatal("commit must fail when a participant cannot prepare")
	}
	conns[1].setHook(nil)
	for i, conn := range conns {
		if n := conn.node.PendingCount(); n != 0 {
			t.Fatalf("shard %d still has %d journaled transactions after abort", i, n)
		}
	}
	fingerprintsMatch(t, c, refDB) // nothing applied anywhere
}

func TestCluster2PCJournalLossRecoversViaApply(t *testing.T) {
	c, conns := newTestCluster(t, 3)
	ref, refDB := refSession(t)

	// Shard 2 "crashes" (journal lost, state kept) between its prepare ack
	// and the commit — the coordinator must drive it to completion with
	// APPLY after its COMMIT answers "unknown".
	var once sync.Once
	conns[2].setHook(func(op string) error {
		if strings.HasPrefix(op, "COMMIT") {
			once.Do(conns[2].restart)
		}
		return nil
	})
	runBoth(t, c, ref, "BEGIN;\nASSERT Flies (Bird);\nASSERT FliesAt (Robin, h1);\nCOMMIT;")
	conns[2].setHook(nil)
	fingerprintsMatch(t, c, refDB)
}

// chaosRounds mirrors the knob the repl chaos suite uses: CHAOS_ROUNDS
// overrides, -short shrinks.
func chaosRounds(t *testing.T, def, short int) int {
	if s := os.Getenv("CHAOS_ROUNDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad CHAOS_ROUNDS %q", s)
		}
		return n
	}
	if testing.Short() {
		return short
	}
	return def
}

// TestClusterChaos2PC runs randomized cross-shard transactions under
// injected participant failures and checks after every round that the
// cluster's merged state is byte-identical to a single-node database that
// applied exactly the transactions whose commit succeeded.
func TestClusterChaos2PC(t *testing.T) {
	rounds := chaosRounds(t, 40, 8)
	rng := rand.New(rand.NewSource(7))

	c, conns := newTestCluster(t, 3)
	_, refDB := refSession(t)

	// A pool of pre-declared instances so every round can pick fresh keys
	// (all-positive asserts: no contradictions, so prepare always validates).
	var ddl strings.Builder
	for i := 0; i < rounds*4+4; i++ {
		fmt.Fprintf(&ddl, "INSTANCE chaos%d UNDER Bird IN Animal;\n", i)
	}
	if _, err := c.Exec(context.Background(), ddl.String()); err != nil {
		t.Fatal(err)
	}
	refSess := hql.NewSession(hql.MemTarget{DB: refDB})
	if _, err := refSess.Exec(ddl.String()); err != nil {
		t.Fatal(err)
	}

	next := 0
	for round := 0; round < rounds; round++ {
		// 1-3 local ops on fresh instances plus one global op, so every
		// transaction involves all three shards and runs real 2PC.
		ops := []catalog.TxOp{{Kind: "assert", Relation: "Flies", Values: []string{"Bird"}}}
		var script strings.Builder
		script.WriteString("BEGIN;\nASSERT Flies (Bird);\n")
		for i := 0; i < 1+rng.Intn(3); i++ {
			v := fmt.Sprintf("chaos%d", next)
			next++
			ops = append(ops, catalog.TxOp{Kind: "assert", Relation: "Flies", Values: []string{v}})
			fmt.Fprintf(&script, "ASSERT Flies (%s);\n", v)
		}
		script.WriteString("COMMIT;")

		victim := conns[rng.Intn(len(conns))]
		var injected bool
		switch rng.Intn(3) {
		case 1: // participant unreachable during prepare → abort everywhere
			victim.setHook(func(op string) error {
				if strings.HasPrefix(op, "PREPARE") {
					injected = true
					return fmt.Errorf("injected prepare failure")
				}
				return nil
			})
		case 2: // journal lost between prepare and commit → APPLY fallback
			var once sync.Once
			victim.setHook(func(op string) error {
				if strings.HasPrefix(op, "COMMIT") {
					once.Do(func() { injected = true; victim.restart() })
				}
				return nil
			})
		}

		_, err := c.Exec(context.Background(), script.String())
		victim.setHook(nil)
		_ = injected

		if err == nil {
			// Committed: the reference applies the same ops atomically.
			if rerr := refDB.ApplyOps(ops); rerr != nil {
				t.Fatalf("round %d: reference apply: %v", round, rerr)
			}
		}
		// Aborted: the reference applies nothing.

		fingerprintsMatch(t, c, refDB)
		for i, conn := range conns {
			if n := conn.node.PendingCount(); n != 0 {
				t.Fatalf("round %d: shard %d leaks %d journal entries", round, i, n)
			}
		}
	}
}
