package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hrdb/internal/algebra"
	"hrdb/internal/catalog"
	"hrdb/internal/core"
	"hrdb/internal/hql"
	"hrdb/internal/storage"
)

// Conn is what the coordinator needs from a shard connection: full HQL
// execution plus the shard operation side channel. *server.Client and
// *server.Router both satisfy it (the server package imports shard, so the
// dependency points this way).
type Conn interface {
	Exec(ctx context.Context, input string) (string, error)
	ExecShard(ctx context.Context, op string) (string, error)
	Close() error
}

// ErrClusterBusy reports concurrent use of a Cluster. Like hql.Session, a
// Cluster holds transaction state and is strictly single-goroutine; the
// CAS guard makes interleaved Exec calls fail loudly.
var ErrClusterBusy = errors.New("shard: cluster is single-goroutine; concurrent Exec rejected")

// Cluster is the scatter-gather coordinator: an HQL session whose target is
// N shard primaries. It classifies each statement with hql.ShardOf and
//
//   - broadcasts catalog mutations to every shard,
//   - routes keyed statements to the owning shard (local tuples) or through
//     two-phase commit (global tuples),
//   - scatters per-tuple reads and merges at the coordinator,
//   - executes multi-relation algebra itself over gathered snapshots.
//
// The coordinator keeps a catalog mirror: the full replicated schema
// (hierarchies, relation definitions, policy, modes) with every base
// relation left empty, plus the materialized derived relations created by
// AS clauses, JOIN/UNION/…, and PROJECT — those live only here, not on the
// shards. Transactions buffer on the coordinator exactly like a Session
// and commit through commitOps.
type Cluster struct {
	conns   []Conn
	mirror  *catalog.Database
	msess   *hql.Session    // session over the mirror, used to replay catalog statements
	derived map[string]bool // relations that exist only in the mirror
	rules   []string        // rendered RULE statements, replayed for INFER
	inTx    bool
	txOps   []catalog.TxOp
	busy    atomic.Bool
	gidBase string
	gidSeq  atomic.Uint64
}

// NewCluster builds a coordinator over the given shard connections,
// bootstrapping the catalog mirror from shard 0's DUMP (the catalog is
// replicated, so any shard has all of it; tuple statements in the dump are
// skipped — base relations stay empty in the mirror).
func NewCluster(ctx context.Context, conns []Conn) (*Cluster, error) {
	if len(conns) == 0 {
		return nil, errors.New("shard: cluster needs at least one connection")
	}
	mirror := catalog.New()
	c := &Cluster{
		conns:   conns,
		mirror:  mirror,
		msess:   hql.NewSession(hql.MemTarget{DB: mirror}),
		derived: map[string]bool{},
		gidBase: fmt.Sprintf("g%x", time.Now().UnixNano()),
	}
	dump, err := conns[0].Exec(ctx, "DUMP;")
	if err != nil {
		return nil, fmt.Errorf("shard: bootstrap dump: %w", err)
	}
	stmts, err := hql.Parse(dump)
	if err != nil {
		return nil, fmt.Errorf("shard: bootstrap dump does not parse: %w", err)
	}
	for _, st := range stmts {
		switch st.(type) {
		case hql.AssertStmt, hql.RetractStmt, hql.BeginStmt, hql.CommitStmt:
			continue
		}
		if _, err := c.msess.ExecContext(ctx, hql.Render(st)+";"); err != nil {
			return nil, fmt.Errorf("shard: bootstrap replay: %w", err)
		}
	}
	return c, nil
}

// ShardCount returns the number of shards the coordinator talks to.
func (c *Cluster) ShardCount() int { return len(c.conns) }

// Close closes every shard connection, returning the first error.
func (c *Cluster) Close() error {
	var first error
	for _, cn := range c.conns {
		if err := cn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Exec parses and executes an HQL script against the cluster, mirroring
// hql.Session's output format statement for statement.
func (c *Cluster) Exec(ctx context.Context, input string) (string, error) {
	if !c.busy.CompareAndSwap(false, true) {
		return "", ErrClusterBusy
	}
	defer c.busy.Store(false)
	stmts, err := hql.Parse(input)
	if err != nil {
		return "", err
	}
	var out strings.Builder
	for _, st := range stmts {
		if err := ctx.Err(); err != nil {
			return out.String(), err
		}
		res, err := c.exec(ctx, st)
		if err != nil {
			return out.String(), err
		}
		if res != "" {
			out.WriteString(res)
			if !strings.HasSuffix(res, "\n") {
				out.WriteString("\n")
			}
		}
	}
	return out.String(), nil
}

// exec dispatches one statement by its shard routing class.
func (c *Cluster) exec(ctx context.Context, st hql.Stmt) (string, error) {
	info := hql.ShardOf(st)

	// Statements over coordinator-only derived relations never leave the
	// mirror, whatever their routing class. Keyed/broadcast statements name
	// their relation in Relation; scatter reads carry it in Relations.
	if info.Relation != "" && c.derived[info.Relation] {
		return c.mirrorExec(ctx, st)
	}
	if len(info.Relations) > 0 {
		allDerived := true
		for _, r := range info.Relations {
			if !c.derived[r] {
				allDerived = false
				break
			}
		}
		if allDerived {
			out, err := c.mirrorExec(ctx, st)
			if err == nil {
				// A SELECT … AS over a derived relation materializes another
				// derived relation inside the mirror session; track it so
				// later statements stay on the mirror too.
				if sel, ok := st.(hql.SelectStmt); ok && sel.As != "" {
					c.derived[sel.As] = true
				}
			}
			return out, err
		}
	}

	switch info.Route {
	case hql.RouteBroadcast:
		return c.broadcast(ctx, st)
	case hql.RouteKeyed:
		return c.keyed(ctx, st, info)
	case hql.RouteScatter:
		return c.scatter(ctx, st)
	case hql.RouteCoordinator:
		return c.coordinate(ctx, st)
	default:
		return "", fmt.Errorf("shard: unhandled route %v", info.Route)
	}
}

// mirrorExec runs a statement only against the coordinator's mirror.
func (c *Cluster) mirrorExec(ctx context.Context, st hql.Stmt) (string, error) {
	out, err := c.msess.ExecContext(ctx, hql.Render(st)+";")
	return strings.TrimSuffix(out, "\n"), err
}

// broadcast sends a catalog mutation to every shard, then replays it into
// the mirror. DDL is not two-phase committed: a shard failing mid-broadcast
// leaves the error with the caller and the catalogs divergent until the
// statement is retried (see docs/SHARDING.md).
func (c *Cluster) broadcast(ctx context.Context, st hql.Stmt) (string, error) {
	if ex, ok := st.(hql.ExplicateStmt); ok && len(c.conns) > 1 {
		return "", fmt.Errorf("shard: EXPLICATE %s is not supported on a multi-shard cluster (it rewrites global tuples into local ones that would land on the wrong shard)", ex.Relation)
	}
	rendered := hql.Render(st) + ";"
	resps, err := c.fanout(ctx, len(c.conns), func(i int) (string, error) {
		return c.conns[i].Exec(ctx, rendered)
	})
	if err != nil {
		return "", err
	}
	if _, err := c.msess.ExecContext(ctx, rendered); err != nil {
		return "", fmt.Errorf("shard: mirror replay of %q: %w", rendered, err)
	}
	return strings.TrimSuffix(resps[0], "\n"), nil
}

// keyed routes a single-tuple statement. Reads go to the item's home shard
// (global tuples are replicated everywhere, so the home shard always sees
// every applicable tuple). Writes go to the home shard when the tuple is
// local, and through two-phase commit when it is global; inside an open
// transaction they buffer on the coordinator instead.
func (c *Cluster) keyed(ctx context.Context, st hql.Stmt, info hql.ShardInfo) (string, error) {
	rendered := hql.Render(st) + ";"
	switch st := st.(type) {
	case hql.HoldsStmt, hql.WhyStmt:
		home := HomeShard(info.Relation, info.Values, len(c.conns))
		out, err := c.conns[home].Exec(ctx, rendered)
		return strings.TrimSuffix(out, "\n"), err

	case hql.AssertStmt:
		kind := "assert"
		if !st.Sign {
			kind = "deny"
		}
		if c.inTx {
			c.txOps = append(c.txOps, catalog.TxOp{Kind: kind, Relation: st.Relation, Values: st.Values})
			return fmt.Sprintf("staged %s on %s", kind, st.Relation), nil
		}
		return c.keyedWrite(ctx, rendered, catalog.TxOp{Kind: kind, Relation: st.Relation, Values: st.Values},
			func() string {
				past := "asserted"
				if !st.Sign {
					past = "denied"
				}
				return fmt.Sprintf("%s %s(%s)", past, st.Relation, strings.Join(st.Values, ", "))
			})

	case hql.RetractStmt:
		if c.inTx {
			c.txOps = append(c.txOps, catalog.TxOp{Kind: "retract", Relation: st.Relation, Values: st.Values})
			return fmt.Sprintf("staged retract on %s", st.Relation), nil
		}
		return c.keyedWrite(ctx, rendered, catalog.TxOp{Kind: "retract", Relation: st.Relation, Values: st.Values},
			func() string {
				return fmt.Sprintf("retracted %s(%s)", st.Relation, strings.Join(st.Values, ", "))
			})

	default:
		return "", fmt.Errorf("shard: unhandled keyed statement %T", st)
	}
}

// keyedWrite applies one autocommit write: local tuples execute as plain
// HQL on their home shard (whose response carries any policy warnings);
// global tuples commit everywhere via 2PC, with the success line built
// locally (per-shard warnings are not aggregated — documented caveat).
func (c *Cluster) keyedWrite(ctx context.Context, rendered string, op catalog.TxOp, okLine func() string) (string, error) {
	local, err := Placement(c.mirror, op.Relation, op.Values)
	if err != nil {
		return "", err
	}
	if local {
		home := HomeShard(op.Relation, op.Values, len(c.conns))
		out, err := c.conns[home].Exec(ctx, rendered)
		return strings.TrimSuffix(out, "\n"), err
	}
	if err := c.commitOps(ctx, []catalog.TxOp{op}); err != nil {
		return "", err
	}
	return okLine(), nil
}

// scatter fans a per-tuple read out to every shard and merges the results.
func (c *Cluster) scatter(ctx context.Context, st hql.Stmt) (string, error) {
	switch st := st.(type) {
	case hql.SelectStmt:
		snap, err := c.mirror.Snapshot(st.Relation)
		if err != nil {
			return "", err
		}
		op, err := EncodeSelect(st.Relation, st.Conds)
		if err != nil {
			return "", err
		}
		resps, err := c.fanout(ctx, len(c.conns), func(i int) (string, error) {
			return c.conns[i].ExecShard(ctx, op)
		})
		if err != nil {
			return "", err
		}
		name := st.As
		if name == "" {
			name = "σ(" + st.Relation + ")"
		}
		res := core.NewRelation(name, snap.Schema())
		res.SetMode(snap.Mode())
		for _, resp := range resps {
			tuples, err := DecodeTuples(resp)
			if err != nil {
				return "", err
			}
			for _, t := range tuples {
				if err := res.Insert(t.Item, t.Sign); err != nil {
					return "", fmt.Errorf("shard: merging %s: %w", st.Relation, err)
				}
			}
		}
		res = res.Consolidate()
		if st.As != "" {
			if err := c.mirror.AttachRelation(res); err != nil {
				return "", err
			}
			c.derived[st.As] = true
		}
		return res.Table(), nil

	case hql.ExtensionStmt:
		r, err := c.relationSnapshot(ctx, st.Relation)
		if err != nil {
			return "", err
		}
		ext, err := r.ExtensionContext(ctx)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s: %d atomic items\n", st.Relation, len(ext))
		for _, it := range ext {
			fmt.Fprintf(&b, "  %s\n", it)
		}
		return b.String(), nil

	case hql.CountStmt:
		r, err := c.relationSnapshot(ctx, st.Relation)
		if err != nil {
			return "", err
		}
		counts, err := algebra.Count(r, st.By...)
		if err != nil {
			return "", err
		}
		return algebra.FormatCounts(st.Relation, st.By, counts), nil

	default:
		return "", fmt.Errorf("shard: unhandled scatter statement %T", st)
	}
}

// coordinate executes coordinator-local statements: multi-relation algebra
// over gathered snapshots, session state, and whole-database views.
func (c *Cluster) coordinate(ctx context.Context, st hql.Stmt) (string, error) {
	switch st := st.(type) {
	case hql.BinOpStmt:
		left, err := c.relationSnapshot(ctx, st.Left)
		if err != nil {
			return "", err
		}
		right, err := c.relationSnapshot(ctx, st.Right)
		if err != nil {
			return "", err
		}
		var res *core.Relation
		switch st.Op {
		case "union":
			res, err = algebra.UnionContext(ctx, st.As, left, right)
		case "intersect":
			res, err = algebra.IntersectContext(ctx, st.As, left, right)
		case "difference":
			res, err = algebra.DifferenceContext(ctx, st.As, left, right)
		case "join":
			res, err = algebra.JoinContext(ctx, st.As, left, right)
		default:
			err = fmt.Errorf("shard: unknown operator %q", st.Op)
		}
		if err != nil {
			return "", err
		}
		if err := c.mirror.AttachRelation(res); err != nil {
			return "", err
		}
		c.derived[st.As] = true
		return res.Table(), nil

	case hql.ProjectStmt:
		r, err := c.relationSnapshot(ctx, st.Relation)
		if err != nil {
			return "", err
		}
		res, err := algebra.ProjectContext(ctx, st.As, r, st.Attrs...)
		if err != nil {
			return "", err
		}
		if err := c.mirror.AttachRelation(res); err != nil {
			return "", err
		}
		c.derived[st.As] = true
		return res.Table(), nil

	case hql.ShowStmt:
		switch st.What {
		case "relation":
			r, err := c.relationSnapshot(ctx, st.Target)
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		case "rules":
			return c.withRules(ctx, catalog.New(), "SHOW RULES;")
		default: // hierarchies, relations, hierarchy — all answerable from the mirror
			return c.mirrorExec(ctx, st)
		}

	case hql.RuleStmt:
		rendered := hql.Render(st) + ";"
		probe := hql.NewSession(hql.MemTarget{DB: catalog.New()})
		out, err := probe.ExecContext(ctx, rendered)
		if err != nil {
			return "", err
		}
		c.rules = append(c.rules, rendered)
		return strings.TrimSuffix(out, "\n"), nil

	case hql.InferStmt:
		m, err := c.merged(ctx)
		if err != nil {
			return "", err
		}
		return c.withRules(ctx, m, hql.Render(st)+";")

	case hql.DumpStmt:
		m, err := c.merged(ctx)
		if err != nil {
			return "", err
		}
		return hql.Dump(m)

	case hql.ExplainStmt:
		switch inner := st.Inner.(type) {
		case hql.SelectStmt:
			r, err := c.relationSnapshot(ctx, inner.Relation)
			if err != nil {
				return "", err
			}
			conds := make([]algebra.Condition, len(inner.Conds))
			for i, cd := range inner.Conds {
				conds[i] = algebra.Condition{Attr: cd[0], Class: cd[1]}
			}
			plan, err := algebra.PlanSelect(r, conds...)
			if err != nil {
				return "", err
			}
			return plan.String(), nil
		case hql.BinOpStmt:
			left, err := c.relationSnapshot(ctx, inner.Left)
			if err != nil {
				return "", err
			}
			right, err := c.relationSnapshot(ctx, inner.Right)
			if err != nil {
				return "", err
			}
			plan, err := algebra.PlanBinOp(inner.Op, left, right)
			if err != nil {
				return "", err
			}
			return plan.String(), nil
		}
		return "", fmt.Errorf("shard: EXPLAIN: unsupported statement %T", st.Inner)

	case hql.BeginStmt:
		if c.inTx {
			return "", hql.ErrInTx
		}
		c.inTx = true
		c.txOps = nil
		return "transaction started", nil

	case hql.CommitStmt:
		if !c.inTx {
			return "", hql.ErrNoTx
		}
		ops := c.txOps
		c.inTx = false
		c.txOps = nil
		if err := c.commitOps(ctx, ops); err != nil {
			return "", err
		}
		return fmt.Sprintf("committed %d operations", len(ops)), nil

	case hql.RollbackStmt:
		if !c.inTx {
			return "", hql.ErrNoTx
		}
		n := len(c.txOps)
		c.inTx = false
		c.txOps = nil
		return fmt.Sprintf("rolled back %d operations", n), nil

	default:
		return "", fmt.Errorf("shard: unhandled coordinator statement %T", st)
	}
}

// withRules replays the coordinator's rules into a fresh session over db,
// then executes the final statement and returns its output.
func (c *Cluster) withRules(ctx context.Context, db *catalog.Database, final string) (string, error) {
	sess := hql.NewSession(hql.MemTarget{DB: db})
	for _, r := range c.rules {
		if _, err := sess.ExecContext(ctx, r); err != nil {
			return "", err
		}
	}
	out, err := sess.ExecContext(ctx, final)
	return strings.TrimSuffix(out, "\n"), err
}

// commitOps commits a buffered transaction across the cluster. Each local
// op goes to its home shard, each global op to every shard, order
// preserved per shard. One involved shard is a fast path — a rendered
// BEGIN…COMMIT script, atomic under the shard's own WAL bracket. Multiple
// shards run 2PC: PREPARE everywhere (validate + journal, nothing
// applied), then COMMIT everywhere; a participant that lost its journal
// (crash, failover to a promoted replica) answers "unknown" and is
// completed by re-sending its operations with APPLY.
func (c *Cluster) commitOps(ctx context.Context, ops []catalog.TxOp) error {
	n := len(c.conns)
	perShard := make([][]catalog.TxOp, n)
	for _, o := range ops {
		local, err := Placement(c.mirror, o.Relation, o.Values)
		if err != nil {
			return err
		}
		if local {
			s := HomeShard(o.Relation, o.Values, n)
			perShard[s] = append(perShard[s], o)
		} else {
			for s := range perShard {
				perShard[s] = append(perShard[s], o)
			}
		}
	}
	var involved []int
	for s, list := range perShard {
		if len(list) > 0 {
			involved = append(involved, s)
		}
	}
	switch len(involved) {
	case 0:
		return nil
	case 1:
		s := involved[0]
		var b strings.Builder
		b.WriteString("BEGIN;\n")
		for _, o := range perShard[s] {
			b.WriteString(renderOp(o))
			b.WriteString(";\n")
		}
		b.WriteString("COMMIT;")
		_, err := c.conns[s].Exec(ctx, b.String())
		return err
	}

	gid := fmt.Sprintf("%s.%d", c.gidBase, c.gidSeq.Add(1))

	// Phase 1: prepare. Any failure aborts everywhere — nothing was applied.
	_, perr := c.fanout(ctx, len(involved), func(i int) (string, error) {
		s := involved[i]
		op, err := EncodePrepare(gid, perShard[s])
		if err != nil {
			return "", err
		}
		return c.conns[s].ExecShard(ctx, op)
	})
	if perr != nil {
		abort, _ := EncodeAbort(gid)
		c.fanout(context.WithoutCancel(ctx), len(involved), func(i int) (string, error) {
			return c.conns[involved[i]].ExecShard(ctx, abort)
		})
		return perr
	}

	// Phase 2: commit point passed — drive every participant to completion.
	commit, err := EncodeCommit(gid)
	if err != nil {
		return err
	}
	_, cerr := c.fanout(ctx, len(involved), func(i int) (string, error) {
		s := involved[i]
		resp, err := c.conns[s].ExecShard(ctx, commit)
		if err != nil {
			return "", fmt.Errorf("shard %d: commit of %s in doubt: %w", s, gid, err)
		}
		if resp == "unknown" {
			apply, err := EncodeApply(gid, perShard[s])
			if err != nil {
				return "", err
			}
			if _, err := c.conns[s].ExecShard(ctx, apply); err != nil {
				return "", fmt.Errorf("shard %d: apply of %s in doubt: %w", s, gid, err)
			}
		}
		return "", nil
	})
	return cerr
}

// renderOp renders a transaction op as its HQL statement.
func renderOp(o catalog.TxOp) string {
	switch o.Kind {
	case "assert":
		return hql.Render(hql.AssertStmt{Relation: o.Relation, Values: o.Values, Sign: true})
	case "deny":
		return hql.Render(hql.AssertStmt{Relation: o.Relation, Values: o.Values, Sign: false})
	default:
		return hql.Render(hql.RetractStmt{Relation: o.Relation, Values: o.Values})
	}
}

// gather collects a base relation's stored tuples from every shard.
func (c *Cluster) gather(ctx context.Context, rel string) ([]core.Tuple, error) {
	op, err := EncodeTuples(rel)
	if err != nil {
		return nil, err
	}
	resps, err := c.fanout(ctx, len(c.conns), func(i int) (string, error) {
		return c.conns[i].ExecShard(ctx, op)
	})
	if err != nil {
		return nil, err
	}
	var out []core.Tuple
	for _, resp := range resps {
		tuples, err := DecodeTuples(resp)
		if err != nil {
			return nil, err
		}
		out = append(out, tuples...)
	}
	return out, nil
}

// relationSnapshot materializes one relation for coordinator-side algebra:
// derived relations snapshot from the mirror, base relations gather from
// the shards into an empty clone of the mirror's schema carrier.
func (c *Cluster) relationSnapshot(ctx context.Context, name string) (*core.Relation, error) {
	if c.derived[name] {
		return c.mirror.Snapshot(name)
	}
	snap, err := c.mirror.Snapshot(name) // empty: schema + mode carrier
	if err != nil {
		return nil, err
	}
	tuples, err := c.gather(ctx, name)
	if err != nil {
		return nil, err
	}
	for _, t := range tuples {
		if err := snap.Insert(t.Item, t.Sign); err != nil {
			return nil, fmt.Errorf("shard: merging %s: %w", name, err)
		}
	}
	return snap, nil
}

// merged reconstructs the whole logical database on the coordinator: the
// mirror's dump (catalog, derived relations) replayed into a fresh catalog,
// then every base relation's tuples gathered from the shards. Global tuples
// arrive once per shard and dedup on insert.
func (c *Cluster) merged(ctx context.Context) (*catalog.Database, error) {
	dump, err := hql.Dump(c.mirror)
	if err != nil {
		return nil, err
	}
	fresh := catalog.New()
	sess := hql.NewSession(hql.MemTarget{DB: fresh})
	if _, err := sess.ExecContext(ctx, dump); err != nil {
		return nil, fmt.Errorf("shard: replaying mirror dump: %w", err)
	}
	for _, name := range c.mirror.Relations() {
		if c.derived[name] {
			continue
		}
		tuples, err := c.gather(ctx, name)
		if err != nil {
			return nil, err
		}
		r, err := fresh.Relation(name)
		if err != nil {
			return nil, err
		}
		for _, t := range tuples {
			if err := r.Insert(t.Item, t.Sign); err != nil {
				return nil, fmt.Errorf("shard: merging %s: %w", name, err)
			}
		}
	}
	return fresh, nil
}

// Fingerprint returns the canonical fingerprint of the cluster's merged
// logical state — equal to the fingerprint of a single node holding the
// same data, which is how the chaos tests verify cross-shard atomicity.
func (c *Cluster) Fingerprint(ctx context.Context) (string, error) {
	m, err := c.merged(ctx)
	if err != nil {
		return "", err
	}
	return storage.Fingerprint(m), nil
}

// HoldsBatch evaluates items against a relation across the cluster: each
// item is answered by its home shard (correct for class-containing items
// too, since their binders are global and replicated), grouped per shard
// and evaluated with the shards' batch engine.
func (c *Cluster) HoldsBatch(ctx context.Context, rel string, items []core.Item) ([]bool, error) {
	if c.derived[rel] {
		return c.mirror.HoldsBatch(ctx, rel, items)
	}
	n := len(c.conns)
	groups := make([][]core.Item, n)
	idx := make([][]int, n)
	for i, it := range items {
		s := HomeShard(rel, it, n)
		groups[s] = append(groups[s], it)
		idx[s] = append(idx[s], i)
	}
	out := make([]bool, len(items))
	var mu sync.Mutex
	_, err := c.fanout(ctx, n, func(s int) (string, error) {
		if len(groups[s]) == 0 {
			return "", nil
		}
		op, err := EncodeEval(rel, groups[s])
		if err != nil {
			return "", err
		}
		resp, err := c.conns[s].ExecShard(ctx, op)
		if err != nil {
			return "", err
		}
		vals, err := DecodeBools(resp)
		if err != nil {
			return "", err
		}
		if len(vals) != len(groups[s]) {
			return "", fmt.Errorf("shard %d: EVAL returned %d verdicts for %d items", s, len(vals), len(groups[s]))
		}
		mu.Lock()
		for j, v := range vals {
			out[idx[s][j]] = v
		}
		mu.Unlock()
		return "", nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fanout runs fn(0..n-1) concurrently, returning every result and the
// first error (after all calls finish, so no goroutine outlives the call).
func (c *Cluster) fanout(ctx context.Context, n int, fn func(i int) (string, error)) ([]string, error) {
	resps := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return resps, err
		}
	}
	return resps, nil
}
