package shard

import (
	"reflect"
	"strings"
	"testing"

	"hrdb/internal/catalog"
	"hrdb/internal/core"
)

func TestEncodeDecodeTuples(t *testing.T) {
	tuples := []core.Tuple{
		{Item: core.Item{"Tweety", "high"}, Sign: true},
		{Item: core.Item{"Paul", "low"}, Sign: false},
	}
	resp := EncodeTupleLines(tuples)
	got, err := DecodeTuples(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tuples) {
		t.Fatalf("round trip mismatch: %v != %v", got, tuples)
	}
	if got, err := DecodeTuples(""); err != nil || got != nil {
		t.Fatalf("empty response: got %v, %v", got, err)
	}
	if _, err := DecodeTuples("Tweety\x1fhigh"); err == nil {
		t.Fatal("line without sign byte must fail")
	}
}

func TestEncodeSelectParses(t *testing.T) {
	op, err := EncodeSelect("Flies", [][2]string{{"Creature", "Bird"}, {"Alt", "high"}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := parseOp(op)
	if err != nil {
		t.Fatal(err)
	}
	if p.verb != "SELECT" || !reflect.DeepEqual(p.fields, []string{"Flies", "Creature", "Bird", "Alt", "high"}) {
		t.Fatalf("parsed %+v", p)
	}
}

func TestEncodeEvalRoundTrip(t *testing.T) {
	items := []core.Item{{"Tweety"}, {"Paul"}}
	op, err := EncodeEval("Flies", items)
	if err != nil {
		t.Fatal(err)
	}
	p, err := parseOp(op)
	if err != nil {
		t.Fatal(err)
	}
	if p.verb != "EVAL" || len(p.fields) != 1 || p.fields[0] != "Flies" {
		t.Fatalf("parsed %+v", p)
	}
	if got := decodeItems(p.lines); !reflect.DeepEqual(got, items) {
		t.Fatalf("items %v != %v", got, items)
	}
}

func TestEncodePrepareRoundTrip(t *testing.T) {
	ops := []catalog.TxOp{
		{Kind: "assert", Relation: "Flies", Values: []string{"Bird"}},
		{Kind: "deny", Relation: "Flies", Values: []string{"Penguin"}},
		{Kind: "retract", Relation: "Eats", Values: []string{"Paul", "fish"}},
	}
	op, err := EncodePrepare("g1.7", ops)
	if err != nil {
		t.Fatal(err)
	}
	p, err := parseOp(op)
	if err != nil {
		t.Fatal(err)
	}
	if p.verb != "PREPARE" || gidOf(p) != "g1.7" {
		t.Fatalf("parsed %+v", p)
	}
	got, err := decodeOps(p.lines)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatalf("ops %v != %v", got, ops)
	}
}

func TestDecodeOpsRejectsUnknownKind(t *testing.T) {
	if _, err := decodeOps([]string{"upsert\x1fFlies\x1fBird"}); err == nil {
		t.Fatal("unknown kind must fail")
	}
	if _, err := decodeOps([]string{"assert"}); err == nil {
		t.Fatal("op without relation must fail")
	}
}

func TestWireSafetyRejected(t *testing.T) {
	if _, err := EncodeTuples("bad\x1fname"); err == nil {
		t.Fatal("separator in relation name must fail")
	}
	if _, err := EncodeEval("r", []core.Item{{"a\nb"}}); err == nil {
		t.Fatal("newline in value must fail")
	}
	if _, err := EncodePrepare("gid", []catalog.TxOp{{Kind: "assert", Relation: "r", Values: []string{"x\x1fy"}}}); err == nil {
		t.Fatal("separator in op value must fail")
	}
}

func TestDecodeBools(t *testing.T) {
	got, err := DecodeBools("true\nfalse\ntrue")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []bool{true, false, true}) {
		t.Fatalf("got %v", got)
	}
	if _, err := DecodeBools("maybe"); err == nil {
		t.Fatal("malformed EVAL line must fail")
	}
}

func TestOpIdempotent(t *testing.T) {
	op, err := EncodeCommit("g1")
	if err != nil {
		t.Fatal(err)
	}
	if !OpIdempotent(op) {
		t.Fatal("every encoded shard op is idempotent")
	}
	if OpIdempotent("") {
		t.Fatal("the empty op is not a valid operation")
	}
}

func TestParseOpRejectsEmpty(t *testing.T) {
	if _, err := parseOp(""); err == nil {
		t.Fatal("empty operation must fail")
	}
	if _, err := parseOp(strings.Repeat("\x1f", 3)); err == nil {
		t.Fatal("empty verb must fail")
	}
}
