package shard

import (
	"context"
	"errors"
	"strings"
	"testing"

	"hrdb/internal/core"
)

// TestClusterSingleShardTxRendersAllOpKinds: a transaction whose ops all
// land on one shard takes the rendered-script fast path; deny and retract
// must render as their own statements, not as asserts.
func TestClusterSingleShardTxRendersAllOpKinds(t *testing.T) {
	c, conns := newTestCluster(t, 3)
	ref, refDB := refSession(t)
	// All three ops target the same local tuple — one involved shard.
	runBoth(t, c, ref, "BEGIN;\nASSERT Flies (Tweety);\nCOMMIT;")
	runBoth(t, c, ref, "BEGIN;\nASSERT Flies (Tweety);\nRETRACT Flies (Tweety);\nCOMMIT;")
	fingerprintsMatch(t, c, refDB)
	// The ops never left the home shard.
	home := HomeShard("Flies", []string{"Tweety"}, 3)
	for i, conn := range conns {
		if i == home {
			continue
		}
		r, err := conn.db.Relation("Flies")
		if err != nil {
			t.Fatal(err)
		}
		if n := len(r.Tuples()); n != 0 {
			t.Fatalf("shard %d (not home %d) saw %d tuples of a single-shard tx", i, home, n)
		}
	}
}

func TestClusterKeyedErrorsMatchReference(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	ref, _ := refSession(t)
	// Unknown relation: Placement fails identically to a single node.
	runBoth(t, c, ref, "ASSERT NoSuch (Tweety);")
	// Autocommit retract and WHY, both keyed to the home shard.
	runBoth(t, c, ref, "ASSERT Flies (Tweety);")
	runBoth(t, c, ref, "WHY Flies (Tweety);")
	runBoth(t, c, ref, "RETRACT Flies (Tweety);")
	runBoth(t, c, ref, "HOLDS Flies (Tweety);")
}

func TestClusterScatterErrorsMatchReference(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	ref, _ := refSession(t)
	runBoth(t, c, ref, "SELECT FROM NoSuch WHERE X UNDER Bird;")
	runBoth(t, c, ref, "EXTENSION NoSuch;")
	runBoth(t, c, ref, "COUNT NoSuch BY (X);")
	runBoth(t, c, ref, "SHOW RELATION NoSuch;")
}

// TestClusterShardFailureSurfaces: a shard connection failing mid-gather
// fails the read instead of silently answering from a partial scatter.
func TestClusterShardFailureSurfaces(t *testing.T) {
	c, conns := newTestCluster(t, 3)
	if _, err := c.Exec(context.Background(), "ASSERT Flies (Bird);"); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("shard down")
	conns[1].setHook(func(op string) error { return boom })
	for _, script := range []string{
		"SELECT FROM Flies WHERE Creature UNDER Bird;",
		"EXTENSION Flies;",
		"DUMP;",
	} {
		if _, err := c.Exec(context.Background(), script); !errors.Is(err, boom) {
			t.Fatalf("script %q with a dead shard = %v, want the shard error", script, err)
		}
	}
	if _, err := c.Fingerprint(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Fingerprint with a dead shard = %v", err)
	}
	if _, err := c.HoldsBatch(context.Background(), "Flies",
		[]core.Item{{"Tweety"}, {"Paul"}, {"Robin"}}); !errors.Is(err, boom) {
		t.Fatalf("HoldsBatch with a dead shard = %v", err)
	}
	conns[1].setHook(nil)
	if _, err := c.Exec(context.Background(), "EXTENSION Flies;"); err != nil {
		t.Fatalf("recovered shard still failing: %v", err)
	}
}

func TestClusterHoldsBatchDerived(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	ctx := context.Background()
	if _, err := c.Exec(ctx, "ASSERT Flies (Bird);\nSELECT FROM Flies WHERE Creature UNDER Bird AS F2;"); err != nil {
		t.Fatal(err)
	}
	got, err := c.HoldsBatch(ctx, "F2", []core.Item{{"Tweety"}, {"Paul"}})
	if err != nil {
		t.Fatalf("HoldsBatch on derived: %v", err)
	}
	if len(got) != 2 || !got[0] {
		t.Fatalf("verdicts %v (want Tweety true)", got)
	}
}

// garbageConn answers DUMP with text that does not parse as HQL.
type garbageConn struct{ failingConn }

func (garbageConn) Exec(context.Context, string) (string, error) {
	return "THIS IS NOT HQL ;;;", nil
}

func TestNewClusterRejectsGarbageDump(t *testing.T) {
	if _, err := NewCluster(context.Background(), []Conn{garbageConn{}}); err == nil ||
		!strings.Contains(err.Error(), "parse") {
		t.Fatalf("garbage dump = %v, want a parse error", err)
	}
}

func TestEncodeCommitAbortRejectUnsafeGid(t *testing.T) {
	for _, gid := range []string{"g\x1f1", "g\n1"} {
		if _, err := EncodeCommit(gid); err == nil {
			t.Fatalf("EncodeCommit(%q) must fail", gid)
		}
		if _, err := EncodeAbort(gid); err == nil {
			t.Fatalf("EncodeAbort(%q) must fail", gid)
		}
	}
}
