package flat

import "testing"

func TestNameAccessor(t *testing.T) {
	r := New("Loves", "A")
	if r.Name() != "Loves" {
		t.Fatalf("Name = %q", r.Name())
	}
}
