package flat

import (
	"context"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MembershipBaseline implements the traditional design the paper's
// footnote 1 describes: "store the class membership in a separate relation
// and keep only a single tuple with a class name, in the standard
// relational model. The problem then is that repeated joins are required,
// causing a degradation in performance."
//
// Facts is a relation whose attribute values may name classes; IsA is the
// binary (parent, child) membership relation holding the DIRECT hierarchy
// edges. Query answering repeatedly joins IsA with itself to climb the
// hierarchy — exactly the repeated joins the paper warns about.
type MembershipBaseline struct {
	// Facts holds one row per stored (possibly class-valued) fact, plus a
	// final sign column "+" or "-".
	Facts *Relation
	// IsA holds the direct hierarchy edges per attribute domain, keyed by
	// the domain name.
	IsA map[string]*Relation
	// domains maps fact attributes to their domain names.
	domains map[string]string
}

// NewMembershipBaseline creates an empty baseline store. attrDomains maps
// each fact attribute to its domain name.
func NewMembershipBaseline(factAttrs []string, attrDomains map[string]string) *MembershipBaseline {
	mb := &MembershipBaseline{
		Facts: New("facts", append(append([]string(nil), factAttrs...), "sign")...),
		IsA:   map[string]*Relation{},
	}
	seen := map[string]bool{}
	for _, a := range factAttrs {
		d := attrDomains[a]
		if !seen[d] {
			seen[d] = true
			mb.IsA[d] = New("isa_"+d, "parent", "child")
		}
	}
	mb.domains = attrDomains
	return mb
}

// AddEdge records a direct is-a edge in the named domain.
func (mb *MembershipBaseline) AddEdge(domain, parent, child string) error {
	return mb.IsA[domain].Insert(parent, child)
}

// AddFact stores a signed fact row.
func (mb *MembershipBaseline) AddFact(sign bool, values ...string) error {
	s := "+"
	if !sign {
		s = "-"
	}
	return mb.Facts.Insert(append(append([]string(nil), values...), s)...)
}

// AncestorsByJoins computes the ancestors of x (including x) in the named
// domain with repeated self-joins of the IsA relation: the frontier
// relation F(node) is joined with IsA(parent, child=node) until a fixpoint
// — one join per hierarchy level, the paper's predicted cost.
//
// It returns the set of ancestors and the number of joins performed.
func (mb *MembershipBaseline) AncestorsByJoins(domain, x string) (map[string]bool, int) {
	isa := mb.IsA[domain]
	anc := map[string]bool{x: true}
	frontier := New("frontier", "child")
	_ = frontier.Insert(x)
	joins := 0
	for frontier.Len() > 0 {
		// frontier(child) ⋈ isa(parent, child) → parents of the frontier
		joined := frontier.NaturalJoin(isa)
		joins++
		next := New("frontier", "child")
		for _, row := range joined.Rows() {
			parent := row[1] // attrs: child, parent
			if !anc[parent] {
				anc[parent] = true
				_ = next.Insert(parent)
			}
		}
		frontier = next
	}
	return anc, joins
}

// Holds answers "does the relation hold for the atomic row x?" the way a
// flat system with a separate membership relation must: climb each
// attribute's hierarchy by repeated joins, gather every applicable fact,
// and apply most-specific-wins (which the flat system must re-implement in
// application code — the paper's point about pushing inference out of the
// database).
//
// attrOrder lists the fact attributes in schema order; depthOf must give
// each node's depth (distance from the domain root) so specificity can be
// compared. Returns the truth value and the total number of joins used.
func (mb *MembershipBaseline) Holds(attrOrder []string, x []string, depthOf func(attr, node string) int) (bool, int) {
	joins := 0
	ancestors := make([]map[string]bool, len(attrOrder))
	for i, attr := range attrOrder {
		a, j := mb.AncestorsByJoins(mb.domains[attr], x[i])
		ancestors[i] = a
		joins += j
	}
	best := -1
	value := false
	for _, row := range mb.Facts.Rows() {
		applicable := true
		depth := 0
		for i := range attrOrder {
			if !ancestors[i][row[i]] {
				applicable = false
				break
			}
			depth += depthOf(attrOrder[i], row[i])
		}
		if !applicable {
			continue
		}
		if depth > best {
			best = depth
			value = row[len(attrOrder)] == "+"
		}
	}
	return value, joins
}

// HoldsBatch answers Holds for many rows concurrently — the fair
// multi-core counterpart to the hierarchical engine's EvaluateBatch, so
// benchmark comparisons measure model cost rather than parallelism.
// Results are positional; the returned join count is the total across all
// rows. Cancelling ctx stops the remaining rows and returns its error.
func (mb *MembershipBaseline) HoldsBatch(ctx context.Context, attrOrder []string, rows [][]string, depthOf func(attr, node string) int) ([]bool, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(rows)
	out := make([]bool, n)
	var joins atomic.Int64
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				v, j := mb.Holds(attrOrder, rows[i], depthOf)
				out[i] = v
				joins.Add(int64(j))
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	return out, int(joins.Load()), nil
}

// FactKey renders a fact row canonically (for tests).
func FactKey(values []string, sign bool) string {
	s := "+"
	if !sign {
		s = "-"
	}
	return strings.Join(append(append([]string(nil), values...), s), "\x1f")
}

// SortedDomainNames returns the baseline's domain names, sorted.
func (mb *MembershipBaseline) SortedDomainNames() []string {
	out := make([]string, 0, len(mb.IsA))
	for d := range mb.IsA {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
