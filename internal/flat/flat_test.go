package flat

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func loves(t *testing.T) *Relation {
	t.Helper()
	r := New("Loves", "Who", "Whom")
	for _, row := range [][2]string{
		{"Jack", "Tweety"}, {"Jack", "Pamela"}, {"Jill", "Tweety"}, {"Jill", "Peter"},
	} {
		if err := r.Insert(row[0], row[1]); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestInsertAndHas(t *testing.T) {
	r := loves(t)
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
	if !r.Has("Jack", "Tweety") || r.Has("Jack", "Peter") {
		t.Fatal("Has wrong")
	}
	// Duplicate insert absorbed.
	if err := r.Insert("Jack", "Tweety"); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 4 {
		t.Fatal("duplicate changed Len")
	}
	if err := r.Insert("onlyone"); !errors.Is(err, ErrArity) {
		t.Fatalf("arity: got %v", err)
	}
}

func TestRowsSortedAndCloneIndependent(t *testing.T) {
	r := loves(t)
	rows := r.Rows()
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Key() >= rows[i].Key() {
			t.Fatal("rows not sorted")
		}
	}
	c := r.Clone()
	if err := c.Insert("Extra", "Row"); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 4 || c.Len() != 5 {
		t.Fatal("clone not independent")
	}
}

func TestSelectEq(t *testing.T) {
	r := loves(t)
	s, err := r.SelectEq("Who", "Jack")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || !s.Has("Jack", "Tweety") || !s.Has("Jack", "Pamela") {
		t.Fatalf("select = %v", s.Rows())
	}
	if _, err := r.SelectEq("Nope", "x"); err == nil {
		t.Fatal("unknown attr accepted")
	}
}

func TestProject(t *testing.T) {
	r := loves(t)
	p, err := r.Project("Whom")
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{{"Pamela"}, {"Peter"}, {"Tweety"}}
	if !reflect.DeepEqual(p.Rows(), want) {
		t.Fatalf("project = %v", p.Rows())
	}
	if _, err := r.Project("Nope"); err == nil {
		t.Fatal("unknown attr accepted")
	}
}

func TestSetOps(t *testing.T) {
	a := New("A", "X")
	b := New("B", "X")
	for _, v := range []string{"1", "2", "3"} {
		_ = a.Insert(v)
	}
	for _, v := range []string{"2", "3", "4"} {
		_ = b.Insert(v)
	}
	u, err := a.Union(b)
	if err != nil || u.Len() != 4 {
		t.Fatalf("union: %v %v", err, u.Rows())
	}
	i, err := a.Intersect(b)
	if err != nil || i.Len() != 2 {
		t.Fatalf("intersect: %v %v", err, i.Rows())
	}
	d, err := a.Difference(b)
	if err != nil || d.Len() != 1 || !d.Has("1") {
		t.Fatalf("difference: %v %v", err, d.Rows())
	}
	bad := New("C", "X", "Y")
	if _, err := a.Union(bad); !errors.Is(err, ErrArity) {
		t.Fatalf("incompatible union: %v", err)
	}
	if _, err := a.Intersect(bad); !errors.Is(err, ErrArity) {
		t.Fatalf("incompatible intersect: %v", err)
	}
	if _, err := a.Difference(bad); !errors.Is(err, ErrArity) {
		t.Fatalf("incompatible difference: %v", err)
	}
}

func TestEqual(t *testing.T) {
	a := loves(t)
	b := loves(t)
	if !a.Equal(b) {
		t.Fatal("equal relations not Equal")
	}
	_ = b.Insert("Jill", "Pamela")
	if a.Equal(b) {
		t.Fatal("different rows Equal")
	}
	c := New("C", "Who")
	if a.Equal(c) {
		t.Fatal("different headers Equal")
	}
}

func TestNaturalJoin(t *testing.T) {
	color := New("Color", "Animal", "Color")
	_ = color.Insert("Clyde", "Dappled")
	_ = color.Insert("Appu", "White")
	size := New("Size", "Animal", "Enclosure")
	_ = size.Insert("Clyde", "3000")
	_ = size.Insert("Appu", "2000")
	j := color.NaturalJoin(size)
	if !reflect.DeepEqual(j.Attrs(), []string{"Animal", "Color", "Enclosure"}) {
		t.Fatalf("attrs = %v", j.Attrs())
	}
	if j.Len() != 2 || !j.Has("Clyde", "Dappled", "3000") || !j.Has("Appu", "White", "2000") {
		t.Fatalf("join = %v", j.Rows())
	}
	// Projection back loses nothing here.
	back, err := j.Project("Animal", "Color")
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(color.Clone()) {
		// names differ; compare rows
		if back.Len() != 2 || !back.Has("Clyde", "Dappled") {
			t.Fatalf("project back = %v", back.Rows())
		}
	}
}

func TestJoinNoSharedAttrsIsCrossProduct(t *testing.T) {
	a := New("A", "X")
	_ = a.Insert("1")
	_ = a.Insert("2")
	b := New("B", "Y")
	_ = b.Insert("u")
	j := a.NaturalJoin(b)
	if j.Len() != 2 || !j.Has("1", "u") || !j.Has("2", "u") {
		t.Fatalf("cross = %v", j.Rows())
	}
}

func TestTableRender(t *testing.T) {
	r := loves(t)
	tab := r.Table()
	if tab != r.Table() {
		t.Fatal("Table not deterministic")
	}
	for _, want := range []string{"Loves", "Who", "Whom", "Jack", "Tweety"} {
		if !strings.Contains(tab, want) {
			t.Errorf("missing %q", want)
		}
	}
}

// baselineFixture builds the Figure 1 animal hierarchy as a membership
// baseline with the Flies facts.
func baselineFixture(t *testing.T) *MembershipBaseline {
	t.Helper()
	mb := NewMembershipBaseline([]string{"Creature"}, map[string]string{"Creature": "Animal"})
	edges := [][2]string{
		{"Animal", "Bird"}, {"Bird", "Canary"}, {"Canary", "Tweety"},
		{"Bird", "Penguin"}, {"Penguin", "GalapagosPenguin"}, {"Penguin", "AmazingFlyingPenguin"},
		{"GalapagosPenguin", "Paul"}, {"GalapagosPenguin", "Patricia"},
		{"AmazingFlyingPenguin", "Patricia"}, {"AmazingFlyingPenguin", "Pamela"},
		{"AmazingFlyingPenguin", "Peter"},
	}
	for _, e := range edges {
		if err := mb.AddEdge("Animal", e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range []struct {
		v    string
		sign bool
	}{{"Bird", true}, {"Penguin", false}, {"AmazingFlyingPenguin", true}, {"Peter", true}} {
		if err := mb.AddFact(f.sign, f.v); err != nil {
			t.Fatal(err)
		}
	}
	return mb
}

var depth = map[string]int{
	"Animal": 0, "Bird": 1, "Canary": 2, "Penguin": 2,
	"Tweety": 3, "GalapagosPenguin": 3, "AmazingFlyingPenguin": 3,
	"Paul": 4, "Patricia": 4, "Pamela": 4, "Peter": 4,
}

func depthOf(attr, node string) int { return depth[node] }

// TestBaselineAncestorsByJoins: climbing Tweety's hierarchy takes one join
// per level.
func TestBaselineAncestorsByJoins(t *testing.T) {
	mb := baselineFixture(t)
	anc, joins := mb.AncestorsByJoins("Animal", "Tweety")
	want := map[string]bool{"Tweety": true, "Canary": true, "Bird": true, "Animal": true}
	if !reflect.DeepEqual(anc, want) {
		t.Fatalf("ancestors = %v", anc)
	}
	// 3 levels up plus the final empty-frontier join.
	if joins != 4 {
		t.Fatalf("joins = %d, want 4", joins)
	}
}

// TestBaselineHolds: the baseline reproduces the Figure 1 answers, at the
// cost of repeated joins.
func TestBaselineHolds(t *testing.T) {
	mb := baselineFixture(t)
	cases := []struct {
		who  string
		want bool
	}{
		{"Tweety", true}, {"Paul", false}, {"Pamela", true}, {"Peter", true},
	}
	for _, c := range cases {
		got, joins := mb.Holds([]string{"Creature"}, []string{c.who}, depthOf)
		if got != c.want {
			t.Errorf("Holds(%s) = %v, want %v", c.who, got, c.want)
		}
		if joins < 2 {
			t.Errorf("Holds(%s) used %d joins; the baseline must pay join costs", c.who, joins)
		}
	}
}

func TestBaselineDomains(t *testing.T) {
	mb := baselineFixture(t)
	if got := mb.SortedDomainNames(); !reflect.DeepEqual(got, []string{"Animal"}) {
		t.Fatalf("domains = %v", got)
	}
	if FactKey([]string{"a"}, true) == FactKey([]string{"a"}, false) {
		t.Fatal("FactKey ignores sign")
	}
}
