// Package flat implements a standard (non-hierarchical) relational engine.
//
// It serves two roles in the reproduction of Jagadish (SIGMOD '89):
//
//   - Semantic oracle: every hierarchical relation is equivalent to a flat
//     relation (its extension); the algebra package's operators are
//     property-tested to commute with flattening into this engine.
//
//   - Baseline: the paper's footnote 1 sketches the traditional alternative
//     to class-valued tuples — store class membership in a separate
//     relation and answer queries with repeated joins. MembershipBaseline
//     implements that design so the benchmarks can measure the degradation
//     the paper predicts.
package flat

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrArity is returned when a row's length does not match the relation's
// attribute count, or when set operations see incompatible headers.
var ErrArity = errors.New("flat: arity mismatch")

// Row is one tuple of atomic values.
type Row []string

// Key returns a canonical map key for the row.
func (r Row) Key() string { return strings.Join(r, "\x1f") }

// Clone returns a copy of the row.
func (r Row) Clone() Row { return append(Row(nil), r...) }

// Relation is a set of rows over named attributes.
type Relation struct {
	name  string
	attrs []string
	index map[string]int
	rows  map[string]Row
}

// New creates an empty flat relation.
func New(name string, attrs ...string) *Relation {
	idx := make(map[string]int, len(attrs))
	for i, a := range attrs {
		idx[a] = i
	}
	return &Relation{name: name, attrs: append([]string(nil), attrs...), index: idx, rows: map[string]Row{}}
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Attrs returns the attribute names in order.
func (r *Relation) Attrs() []string { return append([]string(nil), r.attrs...) }

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.rows) }

// Insert adds a row (duplicates are absorbed, as in a set).
func (r *Relation) Insert(values ...string) error {
	if len(values) != len(r.attrs) {
		return fmt.Errorf("%w: row %v vs attrs %v", ErrArity, values, r.attrs)
	}
	row := Row(values).Clone()
	r.rows[row.Key()] = row
	return nil
}

// Has reports whether the exact row is present.
func (r *Relation) Has(values ...string) bool {
	_, ok := r.rows[Row(values).Key()]
	return ok
}

// Rows returns all rows sorted by key.
func (r *Relation) Rows() []Row {
	keys := make([]string, 0, len(r.rows))
	for k := range r.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Row, len(keys))
	for i, k := range keys {
		out[i] = r.rows[k]
	}
	return out
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := New(r.name, r.attrs...)
	for k, row := range r.rows {
		c.rows[k] = row.Clone()
	}
	return c
}

// Equal reports whether two relations have the same attributes and rows.
func (r *Relation) Equal(o *Relation) bool {
	if len(r.attrs) != len(o.attrs) || len(r.rows) != len(o.rows) {
		return false
	}
	for i := range r.attrs {
		if r.attrs[i] != o.attrs[i] {
			return false
		}
	}
	for k := range r.rows {
		if _, ok := o.rows[k]; !ok {
			return false
		}
	}
	return true
}

// Select returns the rows satisfying pred.
func (r *Relation) Select(pred func(Row) bool) *Relation {
	out := New(r.name, r.attrs...)
	for k, row := range r.rows {
		if pred(row) {
			out.rows[k] = row
		}
	}
	return out
}

// SelectEq selects rows whose named attribute equals value.
func (r *Relation) SelectEq(attr, value string) (*Relation, error) {
	i, ok := r.index[attr]
	if !ok {
		return nil, fmt.Errorf("flat: no attribute %q in %q", attr, r.name)
	}
	return r.Select(func(row Row) bool { return row[i] == value }), nil
}

// Project returns the relation restricted to the named attributes
// (duplicates collapse).
func (r *Relation) Project(attrs ...string) (*Relation, error) {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		j, ok := r.index[a]
		if !ok {
			return nil, fmt.Errorf("flat: no attribute %q in %q", a, r.name)
		}
		cols[i] = j
	}
	out := New(r.name, attrs...)
	for _, row := range r.rows {
		proj := make(Row, len(cols))
		for i, c := range cols {
			proj[i] = row[c]
		}
		out.rows[proj.Key()] = proj
	}
	return out, nil
}

// sameHeader verifies union compatibility.
func (r *Relation) sameHeader(o *Relation) error {
	if len(r.attrs) != len(o.attrs) {
		return fmt.Errorf("%w: %v vs %v", ErrArity, r.attrs, o.attrs)
	}
	for i := range r.attrs {
		if r.attrs[i] != o.attrs[i] {
			return fmt.Errorf("%w: %v vs %v", ErrArity, r.attrs, o.attrs)
		}
	}
	return nil
}

// Union returns r ∪ o.
func (r *Relation) Union(o *Relation) (*Relation, error) {
	if err := r.sameHeader(o); err != nil {
		return nil, err
	}
	out := r.Clone()
	for k, row := range o.rows {
		out.rows[k] = row
	}
	return out, nil
}

// Intersect returns r ∩ o.
func (r *Relation) Intersect(o *Relation) (*Relation, error) {
	if err := r.sameHeader(o); err != nil {
		return nil, err
	}
	out := New(r.name, r.attrs...)
	for k, row := range r.rows {
		if _, ok := o.rows[k]; ok {
			out.rows[k] = row
		}
	}
	return out, nil
}

// Difference returns r − o.
func (r *Relation) Difference(o *Relation) (*Relation, error) {
	if err := r.sameHeader(o); err != nil {
		return nil, err
	}
	out := New(r.name, r.attrs...)
	for k, row := range r.rows {
		if _, ok := o.rows[k]; !ok {
			out.rows[k] = row
		}
	}
	return out, nil
}

// NaturalJoin joins on all shared attribute names. The result's header is
// r's attributes followed by o's non-shared attributes.
func (r *Relation) NaturalJoin(o *Relation) *Relation {
	shared := [][2]int{} // (index in r, index in o)
	var oOnly []int
	for j, a := range o.attrs {
		if i, ok := r.index[a]; ok {
			shared = append(shared, [2]int{i, j})
		} else {
			oOnly = append(oOnly, j)
		}
	}
	outAttrs := append([]string(nil), r.attrs...)
	for _, j := range oOnly {
		outAttrs = append(outAttrs, o.attrs[j])
	}
	out := New(r.name+"⋈"+o.name, outAttrs...)

	// Hash join on the shared attributes.
	hash := map[string][]Row{}
	for _, row := range o.rows {
		parts := make([]string, len(shared))
		for i, s := range shared {
			parts[i] = row[s[1]]
		}
		k := strings.Join(parts, "\x1f")
		hash[k] = append(hash[k], row)
	}
	for _, row := range r.rows {
		parts := make([]string, len(shared))
		for i, s := range shared {
			parts[i] = row[s[0]]
		}
		k := strings.Join(parts, "\x1f")
		for _, orow := range hash[k] {
			joined := make(Row, 0, len(outAttrs))
			joined = append(joined, row...)
			for _, j := range oOnly {
				joined = append(joined, orow[j])
			}
			out.rows[joined.Key()] = joined
		}
	}
	return out
}

// Table renders the relation as an aligned text table, deterministic.
func (r *Relation) Table() string {
	var b strings.Builder
	widths := make([]int, len(r.attrs))
	for i, a := range r.attrs {
		widths[i] = len(a)
	}
	rows := r.Rows()
	for _, row := range rows {
		for i, v := range row {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	fmt.Fprintf(&b, "%s\n", r.name)
	for i, a := range r.attrs {
		fmt.Fprintf(&b, "%-*s  ", widths[i], a)
	}
	b.WriteString("\n")
	for _, row := range rows {
		for i, v := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], v)
		}
		b.WriteString("\n")
	}
	return b.String()
}
