package dag

import (
	"errors"
	"reflect"
	"testing"
)

func TestPredAccessor(t *testing.T) {
	g, ids := buildDiamond(t)
	if got := g.Pred(ids[3]); !reflect.DeepEqual(got, []int{ids[1], ids[2]}) {
		t.Fatalf("Pred = %v", got)
	}
	if got := g.Pred(99); got != nil {
		t.Fatalf("Pred(missing) = %v", got)
	}
}

func TestReachableSetAccessor(t *testing.T) {
	g, ids := buildDiamond(t)
	set, err := g.ReachableSet(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if set.Count() != 4 {
		t.Fatalf("reach count = %d", set.Count())
	}
	if _, err := g.ReachableSet(99); !errors.Is(err, ErrNoNode) {
		t.Fatalf("got %v", err)
	}
}
