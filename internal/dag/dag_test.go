package dag

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// buildChain returns a graph 0→1→2→…→(n-1) and the node ids.
func buildChain(t *testing.T, n int) (*Graph, []int) {
	t.Helper()
	g := New()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = g.AddNode()
	}
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(ids[i], ids[i+1]); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", ids[i], ids[i+1], err)
		}
	}
	return g, ids
}

// buildDiamond returns a→{b,c}→d.
func buildDiamond(t *testing.T) (*Graph, [4]int) {
	t.Helper()
	g := New()
	var ids [4]int
	for i := range ids {
		ids[i] = g.AddNode()
	}
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(ids[e[0]], ids[e[1]]); err != nil {
			t.Fatal(err)
		}
	}
	return g, ids
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New()
	for want := 0; want < 5; want++ {
		if got := g.AddNode(); got != want {
			t.Fatalf("AddNode() = %d, want %d", got, want)
		}
	}
	if g.Len() != 5 {
		t.Fatalf("Len() = %d, want 5", g.Len())
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New()
	a := g.AddNode()
	if err := g.AddEdge(a, a); !errors.Is(err, ErrCycle) {
		t.Fatalf("self loop: got %v, want ErrCycle", err)
	}
}

func TestAddEdgeRejectsCycle(t *testing.T) {
	g, ids := buildChain(t, 3)
	if err := g.AddEdge(ids[2], ids[0]); !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle: got %v, want ErrCycle", err)
	}
	// graph unchanged
	if g.HasEdge(ids[2], ids[0]) {
		t.Fatal("rejected edge was inserted")
	}
}

func TestAddEdgeMissingNode(t *testing.T) {
	g := New()
	a := g.AddNode()
	if err := g.AddEdge(a, 99); !errors.Is(err, ErrNoNode) {
		t.Fatalf("missing node: got %v, want ErrNoNode", err)
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New()
	a, b := g.AddNode(), g.AddNode()
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(a, b); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.EdgeCount(); got != 1 {
		t.Fatalf("EdgeCount() = %d, want 1", got)
	}
}

func TestHasPathReflexiveAndTransitive(t *testing.T) {
	g, ids := buildChain(t, 4)
	if !g.HasPath(ids[0], ids[0]) {
		t.Error("node must reach itself")
	}
	if !g.HasPath(ids[0], ids[3]) {
		t.Error("chain head must reach tail")
	}
	if g.HasPath(ids[3], ids[0]) {
		t.Error("tail must not reach head")
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g, ids := buildDiamond(t)
	order, err := g.Topo()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[int]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violates topo order %v", e, order)
		}
	}
	if len(order) != 4 {
		t.Fatalf("order has %d nodes, want 4", len(order))
	}
	_ = ids
}

func TestTopoDeterministic(t *testing.T) {
	g, _ := buildDiamond(t)
	a, _ := g.Topo()
	b, _ := g.Topo()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Topo not deterministic: %v vs %v", a, b)
	}
}

func TestDescendantsAncestors(t *testing.T) {
	g, ids := buildDiamond(t)
	gotD := g.Descendants(ids[0])
	wantD := []int{ids[1], ids[2], ids[3]}
	sort.Ints(wantD)
	if !reflect.DeepEqual(gotD, wantD) {
		t.Errorf("Descendants(root) = %v, want %v", gotD, wantD)
	}
	gotA := g.Ancestors(ids[3])
	wantA := []int{ids[0], ids[1], ids[2]}
	sort.Ints(wantA)
	if !reflect.DeepEqual(gotA, wantA) {
		t.Errorf("Ancestors(sink) = %v, want %v", gotA, wantA)
	}
	if got := g.Descendants(ids[3]); len(got) != 0 {
		t.Errorf("Descendants(sink) = %v, want empty", got)
	}
}

func TestRootsLeaves(t *testing.T) {
	g, ids := buildDiamond(t)
	if got := g.Roots(); !reflect.DeepEqual(got, []int{ids[0]}) {
		t.Errorf("Roots() = %v, want [%d]", got, ids[0])
	}
	if got := g.Leaves(); !reflect.DeepEqual(got, []int{ids[3]}) {
		t.Errorf("Leaves() = %v, want [%d]", got, ids[3])
	}
}

func TestRemoveNodeDropsEdges(t *testing.T) {
	g, ids := buildDiamond(t)
	g.RemoveNode(ids[1])
	if g.Has(ids[1]) {
		t.Fatal("node still present")
	}
	if g.HasPath(ids[0], ids[3]) == false {
		// still reachable through ids[2]
		t.Fatal("path through surviving branch lost")
	}
	g.RemoveNode(ids[2])
	if g.HasPath(ids[0], ids[3]) {
		t.Fatal("path should be gone after both branches removed")
	}
}

// TestEliminatePreservesReachability checks the central contract of the
// paper's node elimination procedure: reachability among surviving nodes is
// unchanged.
func TestEliminatePreservesReachability(t *testing.T) {
	g, ids := buildDiamond(t)
	if err := g.Eliminate(ids[1], false); err != nil {
		t.Fatal(err)
	}
	if !g.HasPath(ids[0], ids[3]) {
		t.Fatal("elimination broke reachability")
	}
}

// TestEliminateAvoidsRedundantEdges reproduces the paper's requirement that
// elimination not introduce an edge j→k when a path already exists: in the
// diamond, eliminating b must not add a→d because a→c→d survives.
func TestEliminateAvoidsRedundantEdges(t *testing.T) {
	g, ids := buildDiamond(t)
	if err := g.Eliminate(ids[1], false); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(ids[0], ids[3]) {
		t.Fatal("redundant edge a→d was added in off-path mode")
	}
}

// TestEliminateKeepRedundant checks the on-path variant: the direct edge IS
// added even though an alternate path exists.
func TestEliminateKeepRedundant(t *testing.T) {
	g, ids := buildDiamond(t)
	if err := g.Eliminate(ids[1], true); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(ids[0], ids[3]) {
		t.Fatal("on-path elimination must add the direct edge a→d")
	}
}

// TestEliminateChainMiddle eliminates the middle of a chain and expects the
// ends to be joined directly.
func TestEliminateChainMiddle(t *testing.T) {
	g, ids := buildChain(t, 3)
	if err := g.Eliminate(ids[1], false); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(ids[0], ids[2]) {
		t.Fatal("chain ends not joined after elimination")
	}
}

func TestEliminateMissing(t *testing.T) {
	g := New()
	if err := g.Eliminate(3, false); !errors.Is(err, ErrNoNode) {
		t.Fatalf("got %v, want ErrNoNode", err)
	}
}

func TestTransitiveReductionDiamondPlusShortcut(t *testing.T) {
	g, ids := buildDiamond(t)
	if err := g.AddEdge(ids[0], ids[3]); err != nil {
		t.Fatal(err)
	}
	if !g.IsRedundantEdge(ids[0], ids[3]) {
		t.Fatal("shortcut should be redundant")
	}
	if err := g.TransitiveReduction(); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(ids[0], ids[3]) {
		t.Fatal("transitive reduction kept the shortcut edge")
	}
	if g.EdgeCount() != 4 {
		t.Fatalf("EdgeCount() = %d, want 4", g.EdgeCount())
	}
}

func TestTransitiveClosure(t *testing.T) {
	g, ids := buildChain(t, 4)
	if err := g.TransitiveClosure(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if !g.HasEdge(ids[i], ids[j]) {
				t.Errorf("closure missing edge %d→%d", i, j)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g, ids := buildDiamond(t)
	c := g.Clone()
	c.RemoveNode(ids[3])
	if !g.Has(ids[3]) {
		t.Fatal("mutating clone changed original")
	}
	if c.Has(ids[3]) {
		t.Fatal("clone removal failed")
	}
}

func TestDOTOutputStable(t *testing.T) {
	g, _ := buildDiamond(t)
	a := g.DOT("d", nil)
	b := g.DOT("d", nil)
	if a != b {
		t.Fatal("DOT output not deterministic")
	}
	if len(a) == 0 {
		t.Fatal("DOT output empty")
	}
}

// randomDAG builds a random DAG with n nodes where edges only go from lower
// to higher ids (guaranteeing acyclicity).
func randomDAG(rng *rand.Rand, n int, p float64) *Graph {
	g := New()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = g.AddNode()
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				if err := g.AddEdge(ids[i], ids[j]); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

// TestEliminateReachabilityProperty: property test that Eliminate preserves
// reachability among all surviving node pairs on random DAGs, in both modes.
func TestEliminateReachabilityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(8)
		g := randomDAG(rng, n, 0.35)
		victim := rng.Intn(n)
		keepRedundant := trial%2 == 1

		// record reachability among survivors before
		type pair struct{ a, b int }
		want := map[pair]bool{}
		for _, a := range g.Nodes() {
			for _, b := range g.Nodes() {
				if a != victim && b != victim {
					want[pair{a, b}] = g.HasPath(a, b)
				}
			}
		}
		if err := g.Eliminate(victim, keepRedundant); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for p, w := range want {
			if got := g.HasPath(p.a, p.b); got != w {
				t.Fatalf("trial %d (keepRedundant=%v): reachability %d→%d changed: got %v want %v",
					trial, keepRedundant, p.a, p.b, got, w)
			}
		}
	}
}

// TestEliminateIrredundancyProperty: off-path elimination on an initially
// irredundant graph leaves the graph irredundant.
func TestEliminateIrredundancyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(8)
		g := randomDAG(rng, n, 0.3)
		if err := g.TransitiveReduction(); err != nil {
			t.Fatal(err)
		}
		victim := rng.Intn(n)
		if err := g.Eliminate(victim, false); err != nil {
			t.Fatal(err)
		}
		for _, e := range g.Edges() {
			if g.IsRedundantEdge(e[0], e[1]) {
				t.Fatalf("trial %d: edge %v is redundant after off-path elimination", trial, e)
			}
		}
	}
}

// TestTransitiveReductionMinimalProperty: after reduction, no edge is
// redundant, and reachability is preserved.
func TestTransitiveReductionMinimalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(8)
		g := randomDAG(rng, n, 0.5)
		before := map[[2]int]bool{}
		for _, a := range g.Nodes() {
			for _, b := range g.Nodes() {
				before[[2]int{a, b}] = g.HasPath(a, b)
			}
		}
		if err := g.TransitiveReduction(); err != nil {
			t.Fatal(err)
		}
		for p, w := range before {
			if g.HasPath(p[0], p[1]) != w {
				t.Fatalf("trial %d: reduction changed reachability %v", trial, p)
			}
		}
		for _, e := range g.Edges() {
			if g.IsRedundantEdge(e[0], e[1]) {
				t.Fatalf("trial %d: redundant edge %v survived reduction", trial, e)
			}
		}
	}
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 1, 63, 64, 65, 129} {
		b.Set(i)
	}
	if got := b.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if !b.Get(64) || b.Get(2) {
		t.Fatal("get misbehaves")
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("clear failed")
	}
	want := []int{0, 1, 63, 65, 129}
	if got := b.Members(); !reflect.DeepEqual(got, want) {
		t.Fatalf("members = %v, want %v", got, want)
	}
}

func TestBitsetOrAnd(t *testing.T) {
	a := NewBitset(128)
	b := NewBitset(128)
	a.Set(3)
	b.Set(3)
	b.Set(70)
	a.Or(b)
	if !a.Get(70) {
		t.Fatal("or failed")
	}
	c := a.Clone()
	c.And(b)
	if got := c.Members(); !reflect.DeepEqual(got, []int{3, 70}) {
		t.Fatalf("and: got %v", got)
	}
}

// TestBitsetRoundTripQuick uses testing/quick: setting a list of small ints
// then reading members returns the sorted unique list.
func TestBitsetRoundTripQuick(t *testing.T) {
	f := func(xs []uint8) bool {
		b := NewBitset(256)
		uniq := map[int]bool{}
		for _, x := range xs {
			b.Set(int(x))
			uniq[int(x)] = true
		}
		var want []int
		for k := range uniq {
			want = append(want, k)
		}
		sort.Ints(want)
		got := b.Members()
		if len(want) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
