// Package dag provides the directed-acyclic-graph substrate used by the
// hierarchical relational model: topological ordering, reachability,
// transitive closure and reduction, and the node-elimination procedure of
// Jagadish (SIGMOD '89), in both its irredundant (off-path preemption) and
// redundant-edge-preserving (on-path preemption) variants.
//
// Nodes are dense non-negative integer ids assigned by AddNode. The graph is
// mutable; derived structures (topological order, reachability) are computed
// on demand and cached until the next mutation. The memos are published
// through atomic pointers, so a graph that is not being mutated may be
// queried from any number of goroutines concurrently (mutation remains
// single-writer, with no concurrent readers).
package dag

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrCycle is returned when an operation would create, or requires the
// absence of, a directed cycle.
var ErrCycle = errors.New("dag: graph contains a cycle")

// ErrNoNode is returned when an operation references a node id that is not
// present in the graph.
var ErrNoNode = errors.New("dag: no such node")

// Graph is a mutable directed graph intended to be acyclic. Acyclicity is
// enforced by AddEdge. The zero value is an empty graph ready for use.
type Graph struct {
	// succ[i] and pred[i] are the adjacency sets of node i. A node exists
	// iff alive[i]. Deleted ids are never reused.
	succ  []map[int]struct{}
	pred  []map[int]struct{}
	alive []bool
	nodes int // count of live nodes

	// memoized derived state, invalidated on mutation and safe for
	// concurrent readers: lookups go through atomic loads, builds are
	// serialized by memoMu and published with atomic stores.
	memoMu    sync.Mutex
	topoMemo  atomic.Pointer[[]int]
	reachMemo atomic.Pointer[[]Bitset] // reach[i] = nodes reachable from i (including i)
	labelMemo atomic.Pointer[Labels]   // interval-label reachability index (labels.go)

	// gen counts mutations; derived structures are stamped with the
	// generation they were built at, so callers holding an index across a
	// mutation can detect staleness the same way the verdict cache does.
	gen atomic.Uint64

	// pathQueries counts HasPath calls since the last mutation; once the
	// graph has been stable for about one query per node, the full
	// reachability index pays for itself and is built.
	pathQueries atomic.Int64
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// invalidate drops memoized derived state after a mutation.
func (g *Graph) invalidate() {
	g.gen.Add(1)
	g.topoMemo.Store(nil)
	g.reachMemo.Store(nil)
	g.labelMemo.Store(nil)
	g.pathQueries.Store(0)
}

// Generation returns a counter that increases on every mutation. Derived
// indexes record the generation they were built at; equality proves the
// index still describes the current graph.
func (g *Graph) Generation() uint64 { return g.gen.Load() }

// AddNode creates a new node and returns its id.
func (g *Graph) AddNode() int {
	id := len(g.succ)
	g.succ = append(g.succ, map[int]struct{}{})
	g.pred = append(g.pred, map[int]struct{}{})
	g.alive = append(g.alive, true)
	g.nodes++
	g.invalidate()
	return id
}

// Has reports whether id is a live node of the graph.
func (g *Graph) Has(id int) bool {
	return id >= 0 && id < len(g.alive) && g.alive[id]
}

// Len returns the number of live nodes.
func (g *Graph) Len() int { return g.nodes }

// MaxID returns the largest id ever allocated plus one (the capacity needed
// to index any node of this graph).
func (g *Graph) MaxID() int { return len(g.alive) }

// AddEdge inserts the edge from→to. It returns ErrCycle if the edge would
// create a cycle (including self-loops) and ErrNoNode if either endpoint is
// missing. Adding an existing edge is a no-op.
func (g *Graph) AddEdge(from, to int) error {
	if !g.Has(from) || !g.Has(to) {
		return ErrNoNode
	}
	if from == to {
		return ErrCycle
	}
	if _, ok := g.succ[from][to]; ok {
		return nil
	}
	if g.HasPath(to, from) {
		return ErrCycle
	}
	g.succ[from][to] = struct{}{}
	g.pred[to][from] = struct{}{}
	g.invalidate()
	return nil
}

// RemoveEdge deletes the edge from→to if present.
func (g *Graph) RemoveEdge(from, to int) {
	if !g.Has(from) || !g.Has(to) {
		return
	}
	if _, ok := g.succ[from][to]; !ok {
		return
	}
	delete(g.succ[from], to)
	delete(g.pred[to], from)
	g.invalidate()
}

// HasEdge reports whether the direct edge from→to exists.
func (g *Graph) HasEdge(from, to int) bool {
	if !g.Has(from) || !g.Has(to) {
		return false
	}
	_, ok := g.succ[from][to]
	return ok
}

// Succ returns the direct successors of id in ascending order.
func (g *Graph) Succ(id int) []int {
	if !g.Has(id) {
		return nil
	}
	return sortedKeys(g.succ[id])
}

// Pred returns the direct predecessors of id in ascending order.
func (g *Graph) Pred(id int) []int {
	if !g.Has(id) {
		return nil
	}
	return sortedKeys(g.pred[id])
}

// Nodes returns all live node ids in ascending order.
func (g *Graph) Nodes() []int {
	out := make([]int, 0, g.nodes)
	for id, ok := range g.alive {
		if ok {
			out = append(out, id)
		}
	}
	return out
}

// Edges returns all edges as [2]int{from, to} pairs in deterministic order.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for from, ok := range g.alive {
		if !ok {
			continue
		}
		for _, to := range sortedKeys(g.succ[from]) {
			out = append(out, [2]int{from, to})
		}
	}
	return out
}

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for id, ok := range g.alive {
		if ok {
			n += len(g.succ[id])
		}
	}
	return n
}

// Roots returns all live nodes with no predecessors, ascending.
func (g *Graph) Roots() []int {
	var out []int
	for id, ok := range g.alive {
		if ok && len(g.pred[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Leaves returns all live nodes with no successors, ascending.
func (g *Graph) Leaves() []int {
	var out []int
	for id, ok := range g.alive {
		if ok && len(g.succ[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// RemoveNode deletes a node and all edges incident on it. This is a plain
// deletion; use Eliminate for the paper's reachability-preserving node
// elimination procedure.
func (g *Graph) RemoveNode(id int) {
	if !g.Has(id) {
		return
	}
	for s := range g.succ[id] {
		delete(g.pred[s], id)
	}
	for p := range g.pred[id] {
		delete(g.succ[p], id)
	}
	g.succ[id] = map[int]struct{}{}
	g.pred[id] = map[int]struct{}{}
	g.alive[id] = false
	g.nodes--
	g.invalidate()
}

// Topo returns a deterministic topological ordering of the live nodes
// (Kahn's algorithm with an ascending-id tie-break). It returns ErrCycle if
// the graph is cyclic (possible only if the graph was built by Decode from
// corrupted data, since AddEdge rejects cycles).
func (g *Graph) Topo() ([]int, error) {
	if t := g.topoMemo.Load(); t != nil {
		return append([]int(nil), (*t)...), nil
	}
	g.memoMu.Lock()
	defer g.memoMu.Unlock()
	order, err := g.topoLocked()
	if err != nil {
		return nil, err
	}
	return append([]int(nil), order...), nil
}

// topoLocked returns (memoizing) the topological order; caller holds memoMu.
func (g *Graph) topoLocked() ([]int, error) {
	if t := g.topoMemo.Load(); t != nil {
		return *t, nil
	}
	order, err := g.computeTopo()
	if err != nil {
		return nil, err
	}
	g.topoMemo.Store(&order)
	return order, nil
}

// computeTopo runs Kahn's algorithm without touching the memo.
func (g *Graph) computeTopo() ([]int, error) {
	indeg := make(map[int]int, g.nodes)
	var frontier []int
	for id, ok := range g.alive {
		if !ok {
			continue
		}
		d := len(g.pred[id])
		indeg[id] = d
		if d == 0 {
			frontier = append(frontier, id)
		}
	}
	sort.Ints(frontier)
	order := make([]int, 0, g.nodes)
	for len(frontier) > 0 {
		// pop the smallest id for determinism
		id := frontier[0]
		frontier = frontier[1:]
		order = append(order, id)
		next := sortedKeys(g.succ[id])
		var added bool
		for _, s := range next {
			indeg[s]--
			if indeg[s] == 0 {
				frontier = append(frontier, s)
				added = true
			}
		}
		if added {
			sort.Ints(frontier)
		}
	}
	if len(order) != g.nodes {
		return nil, ErrCycle
	}
	return order, nil
}

// ensureReach computes (memoizing) the reachability bitsets for all live
// nodes and returns them.
func (g *Graph) ensureReach() ([]Bitset, error) {
	if r := g.reachMemo.Load(); r != nil {
		return *r, nil
	}
	g.memoMu.Lock()
	defer g.memoMu.Unlock()
	return g.reachLocked()
}

// reachLocked returns (memoizing) the reachability bitsets; caller holds
// memoMu.
func (g *Graph) reachLocked() ([]Bitset, error) {
	if r := g.reachMemo.Load(); r != nil {
		return *r, nil
	}
	order, err := g.topoLocked()
	if err != nil {
		return nil, err
	}
	reach := make([]Bitset, len(g.alive))
	// process in reverse topological order so successors are ready
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		b := NewBitset(len(g.alive))
		b.Set(id)
		for s := range g.succ[id] {
			b.Or(reach[s])
		}
		reach[id] = b
	}
	g.reachMemo.Store(&reach)
	return reach, nil
}

// Warm eagerly builds the memoized derived state (topological order, the
// interval-label index and the reachability index) so that subsequent
// concurrent readers share it instead of racing to build it. It is a no-op
// on an already-warm graph.
func (g *Graph) Warm() {
	_, _ = g.ensureLabels()
	_, _ = g.ensureReach()
}

// HasPath reports whether to is reachable from from (every node reaches
// itself). It returns false if either node is missing. On a warm graph this
// is an O(1) interval compare (plus a bitset probe for non-tree DAG edges);
// during construction it falls back to a bounded DFS.
func (g *Graph) HasPath(from, to int) bool {
	if !g.Has(from) || !g.Has(to) {
		return false
	}
	if from == to {
		return true
	}
	if l := g.labelMemo.Load(); l != nil {
		return l.HasPath(from, to)
	}
	if r := g.reachMemo.Load(); r != nil {
		return (*r)[from].Get(to)
	}
	// During construction (mutations interleaved with queries) a plain DFS
	// avoids thrashing the cache; once the graph has been stable for about
	// one query per node, the label index pays for itself and is built.
	if g.pathQueries.Add(1) > int64(g.nodes+16) {
		if l, err := g.ensureLabels(); err == nil {
			return l.HasPath(from, to)
		}
	}
	// Mark on push: a node enters the stack at most once, so the stack is
	// bounded by V even on dense graphs.
	seen := make([]bool, len(g.alive))
	seen[from] = true
	stack := []int{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := range g.succ[n] {
			if s == to {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// Descendants returns every node reachable from id, excluding id itself,
// in ascending order.
func (g *Graph) Descendants(id int) []int {
	if !g.Has(id) {
		return nil
	}
	reach, err := g.ensureReach()
	if err != nil {
		return nil
	}
	var out []int
	for _, n := range reach[id].Members() {
		if n != id {
			out = append(out, n)
		}
	}
	return out
}

// Ancestors returns every node from which id is reachable, excluding id
// itself, in ascending order. Implemented as an upward DFS so the cost is
// proportional to the ancestor region, not the whole graph.
func (g *Graph) Ancestors(id int) []int {
	if !g.Has(id) {
		return nil
	}
	seen := make([]bool, len(g.alive))
	stack := []int{id}
	var out []int
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := range g.pred[n] {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
				stack = append(stack, p)
			}
		}
	}
	sort.Ints(out)
	return out
}

// ReachableSet returns the Bitset of nodes reachable from id (including id).
// The returned Bitset must not be modified.
func (g *Graph) ReachableSet(id int) (Bitset, error) {
	if !g.Has(id) {
		return nil, ErrNoNode
	}
	reach, err := g.ensureReach()
	if err != nil {
		return nil, err
	}
	return reach[id], nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		succ:  make([]map[int]struct{}, len(g.succ)),
		pred:  make([]map[int]struct{}, len(g.pred)),
		alive: append([]bool(nil), g.alive...),
		nodes: g.nodes,
	}
	for i := range g.succ {
		c.succ[i] = copySet(g.succ[i])
		c.pred[i] = copySet(g.pred[i])
	}
	return c
}

// Eliminate removes node id using the node-elimination procedure of
// Jagadish §2.1: for each immediate predecessor j (in reverse topological
// order) and each immediate successor k (in topological order), an edge j→k
// is introduced unless a directed path from j to k already exists after the
// deletion. This preserves reachability among the remaining nodes while
// keeping the graph irredundant (the off-path preemption variant).
//
// If keepRedundant is true, the edge j→k is added even when a path already
// exists (the on-path preemption variant from the paper's appendix).
func (g *Graph) Eliminate(id int, keepRedundant bool) error {
	if !g.Has(id) {
		return ErrNoNode
	}
	order, err := g.Topo()
	if err != nil {
		return err
	}
	pos := make(map[int]int, len(order))
	for i, n := range order {
		pos[n] = i
	}
	preds := sortedKeys(g.pred[id])
	succs := sortedKeys(g.succ[id])
	// reverse topological order over predecessors
	sort.Slice(preds, func(a, b int) bool { return pos[preds[a]] > pos[preds[b]] })
	// topological order over successors
	sort.Slice(succs, func(a, b int) bool { return pos[succs[a]] < pos[succs[b]] })

	g.RemoveNode(id)

	for _, j := range preds {
		for _, k := range succs {
			if keepRedundant || !g.HasPath(j, k) {
				if err := g.AddEdge(j, k); err != nil {
					return fmt.Errorf("dag: eliminate %d: %w", id, err)
				}
			}
		}
	}
	return nil
}

// TransitiveReduction removes every edge u→v for which an alternative path
// from u to v exists. For a DAG the transitive reduction is unique.
func (g *Graph) TransitiveReduction() error {
	order, err := g.Topo()
	if err != nil {
		return err
	}
	_ = order
	for _, u := range g.Nodes() {
		for _, v := range g.Succ(u) {
			// Temporarily remove the edge and test for an alternate path.
			g.RemoveEdge(u, v)
			if !g.HasPath(u, v) {
				if err := g.AddEdge(u, v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// TransitiveClosure adds an edge u→v for every pair where v is reachable
// from u.
func (g *Graph) TransitiveClosure() error {
	reach, err := g.ensureReach()
	if err != nil {
		return err
	}
	// Snapshot reachability before mutating (mutation invalidates it).
	type edge struct{ u, v int }
	var add []edge
	for _, u := range g.Nodes() {
		for _, v := range reach[u].Members() {
			if u != v && !g.HasEdge(u, v) {
				add = append(add, edge{u, v})
			}
		}
	}
	for _, e := range add {
		if err := g.AddEdge(e.u, e.v); err != nil {
			return err
		}
	}
	return nil
}

// IsRedundantEdge reports whether the existing edge u→v is transitively
// redundant (an alternate directed path from u to v exists). The check is a
// pure read — in a DAG, an alternate path must leave u through a successor
// other than v — so it is safe under concurrent readers and does not thrash
// the memoized derived state.
func (g *Graph) IsRedundantEdge(u, v int) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	for w := range g.succ[u] {
		if w != v && g.HasPath(w, v) {
			return true
		}
	}
	return false
}

func sortedKeys(m map[int]struct{}) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func copySet(m map[int]struct{}) map[int]struct{} {
	c := make(map[int]struct{}, len(m))
	for k := range m {
		c[k] = struct{}{}
	}
	return c
}
