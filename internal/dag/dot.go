package dag

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax. The label function maps node
// ids to display labels; if nil, ids are used. Output is deterministic.
func (g *Graph) DOT(name string, label func(int) string) string {
	if label == nil {
		label = func(id int) string { return fmt.Sprintf("n%d", id) }
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for _, id := range g.Nodes() {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", id, label(id))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}
