package dag

import "sort"

// Labels is the interval-label reachability index: every live node carries a
// [pre, post] DFS interval over a spanning forest of the graph, so "to is a
// tree descendant of from" is two integer compares. Tree descent implies
// reachability in the graph (tree edges are graph edges), and when the graph
// *is* a forest — every node has at most one parent, the common shape for
// single-inheritance taxonomies — the intervals decide every query exactly
// with O(V) memory and no bitsets at all. Graphs with multi-parent nodes
// keep the dense reachability bitsets as a fallback for the paths the
// spanning forest cannot see.
//
// A Labels value is immutable once built and stamped with the graph
// generation it was built at; Graph.invalidate drops it, so a stale index is
// never consulted through the Graph API.
type Labels struct {
	pre      []int32  // DFS entry clock per node id; -1 for dead nodes
	post     []int32  // DFS exit clock per node id; -1 for dead nodes
	treeOnly bool     // every edge is a tree edge: intervals are exact
	reach    []Bitset // fallback for non-tree edges; nil when treeOnly
	gen      uint64   // graph generation this index was built at
}

// HasPath reports whether to is reachable from from. Both ids must be live
// nodes of the graph the index was built from. It never allocates.
func (l *Labels) HasPath(from, to int) bool {
	if from == to {
		return true
	}
	if l.pre[from] <= l.pre[to] && l.post[to] <= l.post[from] {
		return true
	}
	if l.treeOnly {
		return false
	}
	return l.reach[from].Get(to)
}

// TreeOnly reports whether the index answers every query from intervals
// alone (the graph was a forest when the index was built).
func (l *Labels) TreeOnly() bool { return l.treeOnly }

// Generation returns the graph generation the index was built at.
func (l *Labels) Generation() uint64 { return l.gen }

// Interval returns the [pre, post] DFS interval of id, or (-1, -1) if id was
// dead when the index was built.
func (l *Labels) Interval(id int) (pre, post int32) {
	if id < 0 || id >= len(l.pre) {
		return -1, -1
	}
	return l.pre[id], l.post[id]
}

// ensureLabels computes (memoizing) the interval-label index.
func (g *Graph) ensureLabels() (*Labels, error) {
	if l := g.labelMemo.Load(); l != nil {
		return l, nil
	}
	g.memoMu.Lock()
	defer g.memoMu.Unlock()
	if l := g.labelMemo.Load(); l != nil {
		return l, nil
	}
	l, err := g.buildLabelsLocked()
	if err != nil {
		return nil, err
	}
	g.labelMemo.Store(l)
	return l, nil
}

// buildLabelsLocked constructs the label index; caller holds memoMu. The
// spanning forest takes each node's smallest-id predecessor as its tree
// parent, and children are visited in ascending order, so the labeling is
// deterministic.
func (g *Graph) buildLabelsLocked() (*Labels, error) {
	// Reject cyclic graphs (possible only via Decode of corrupted data)
	// before the DFS rather than mislabeling them.
	if _, err := g.topoLocked(); err != nil {
		return nil, err
	}
	n := len(g.alive)
	l := &Labels{
		pre:      make([]int32, n),
		post:     make([]int32, n),
		treeOnly: true,
		gen:      g.gen.Load(),
	}
	kids := make([][]int32, n)
	for id := 0; id < n; id++ {
		l.pre[id], l.post[id] = -1, -1
		if !g.alive[id] {
			continue
		}
		if len(g.pred[id]) == 0 {
			continue
		}
		if len(g.pred[id]) > 1 {
			l.treeOnly = false
		}
		parent := -1
		for p := range g.pred[id] {
			if parent < 0 || p < parent {
				parent = p
			}
		}
		kids[parent] = append(kids[parent], int32(id))
	}
	for id := range kids {
		sort.Slice(kids[id], func(a, b int) bool { return kids[id][a] < kids[id][b] })
	}
	type frame struct {
		node int32
		next int // index into kids[node] of the next child to enter
	}
	var clock int32
	stack := make([]frame, 0, 64)
	for root := 0; root < n; root++ {
		if !g.alive[root] || len(g.pred[root]) > 0 {
			continue
		}
		l.pre[root] = clock
		clock++
		stack = append(stack[:0], frame{node: int32(root)})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(kids[f.node]) {
				c := kids[f.node][f.next]
				f.next++
				l.pre[c] = clock
				clock++
				stack = append(stack, frame{node: c})
				continue
			}
			l.post[f.node] = clock
			clock++
			stack = stack[:len(stack)-1]
		}
	}
	if !l.treeOnly {
		reach, err := g.reachLocked()
		if err != nil {
			return nil, err
		}
		l.reach = reach
	}
	return l, nil
}

// Labels returns the graph's interval-label index, building it if needed.
// The returned index is immutable; it describes the graph as of the returned
// index's Generation and must be re-fetched after mutations.
func (g *Graph) Labels() (*Labels, error) {
	return g.ensureLabels()
}

// LabelsWarm reports whether the interval-label index is currently built,
// i.e. whether HasPath runs in O(1) without touching adjacency. The planner
// uses this as its "label-index warmth" cost signal.
func (g *Graph) LabelsWarm() bool { return g.labelMemo.Load() != nil }
