package dag

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// eliminateAll removes every node in victims (in the given order) with the
// node-elimination procedure and returns the surviving edge set as a sorted
// string for comparison.
func eliminateAll(t *testing.T, g *Graph, victims []int, keepRedundant bool) string {
	t.Helper()
	for _, v := range victims {
		if err := g.Eliminate(v, keepRedundant); err != nil {
			t.Fatal(err)
		}
	}
	var edges []string
	for _, e := range g.Edges() {
		edges = append(edges, fmt.Sprintf("%d→%d", e[0], e[1]))
	}
	sort.Strings(edges)
	return fmt.Sprint(edges)
}

// TestEliminateOnPathOrderIndependence: under the keep-redundant (on-path)
// variant, the final edge set after eliminating a set of nodes does not
// depend on the elimination order — an edge j→k survives iff some path
// j→k runs entirely through eliminated nodes.
func TestEliminateOnPathOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(5)
		base := randomDAG(rng, n, 0.4)
		// Pick 2-3 victims.
		perm := rng.Perm(n)
		k := 2 + rng.Intn(2)
		victims := append([]int(nil), perm[:k]...)

		g1 := base.Clone()
		order1 := append([]int(nil), victims...)
		res1 := eliminateAll(t, g1, order1, true)

		g2 := base.Clone()
		order2 := append([]int(nil), victims...)
		for i := range order2 { // reverse
			j := len(order2) - 1 - i
			if i < j {
				order2[i], order2[j] = order2[j], order2[i]
			}
		}
		res2 := eliminateAll(t, g2, order2, true)

		if res1 != res2 {
			t.Fatalf("trial %d: on-path elimination order-dependent\norder %v: %s\norder %v: %s",
				trial, order1, res1, order2, res2)
		}
	}
}

// TestEliminateOffPathIrredundantOrderIndependence: starting from a
// transitive reduction, off-path elimination yields the transitive
// reduction of the induced order — which is unique, hence order-free.
func TestEliminateOffPathIrredundantOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(5)
		base := randomDAG(rng, n, 0.4)
		if err := base.TransitiveReduction(); err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(n)
		k := 2 + rng.Intn(2)
		victims := append([]int(nil), perm[:k]...)

		g1 := base.Clone()
		res1 := eliminateAll(t, g1, victims, false)

		g2 := base.Clone()
		rev := append([]int(nil), victims...)
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		res2 := eliminateAll(t, g2, rev, false)

		if res1 != res2 {
			t.Fatalf("trial %d: off-path elimination order-dependent on irredundant input\n%s\nvs\n%s",
				trial, res1, res2)
		}
	}
}

func TestMaxIDAndEdgesAfterRemovals(t *testing.T) {
	g := New()
	a, b, c := g.AddNode(), g.AddNode(), g.AddNode()
	if g.MaxID() != 3 {
		t.Fatalf("MaxID = %d", g.MaxID())
	}
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	g.RemoveNode(b)
	if g.MaxID() != 3 || g.Len() != 2 {
		t.Fatalf("MaxID=%d Len=%d", g.MaxID(), g.Len())
	}
	if got := g.EdgeCount(); got != 0 {
		t.Fatalf("EdgeCount = %d", got)
	}
	// Removed ids are not resurrected by new nodes.
	d := g.AddNode()
	if d != 3 {
		t.Fatalf("new id = %d", d)
	}
}

func TestRemoveEdgeMissing(t *testing.T) {
	g := New()
	a, b := g.AddNode(), g.AddNode()
	g.RemoveEdge(a, b) // absent: no-op
	g.RemoveEdge(9, b) // bad ids: no-op
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	g.RemoveEdge(a, b)
	if g.HasEdge(a, b) {
		t.Fatal("edge survived removal")
	}
}

// TestHasPathIndexSwitch: after enough stable queries the reachability
// index kicks in and answers stay identical.
func TestHasPathIndexSwitch(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	g := randomDAG(rng, 10, 0.3)
	type q struct{ a, b int }
	var qs []q
	var want []bool
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b++ {
			qs = append(qs, q{a, b})
			want = append(want, g.HasPath(a, b))
		}
	}
	// Re-query everything (the index is certainly built by now).
	for i, query := range qs {
		if got := g.HasPath(query.a, query.b); got != want[i] {
			t.Fatalf("HasPath(%d,%d) changed after index switch", query.a, query.b)
		}
	}
}
