package dag

import (
	"math/rand"
	"strings"
	"testing"
)

// refReachable is an independent BFS over the adjacency lists, used as the
// ground truth the label index is checked against.
func refReachable(g *Graph, from, to int) bool {
	if !g.Has(from) || !g.Has(to) {
		return false
	}
	seen := map[int]bool{from: true}
	queue := []int{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == to {
			return true
		}
		for s := range g.succ[n] {
			if !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	return false
}

// randomForest builds a random single-parent DAG (every node's parent is a
// smaller id), the shape where intervals alone decide every query.
func randomForest(rng *rand.Rand, n int) *Graph {
	g := New()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = g.AddNode()
	}
	for i := 1; i < n; i++ {
		if rng.Intn(5) == 0 {
			continue // extra root
		}
		if err := g.AddEdge(ids[rng.Intn(i)], ids[i]); err != nil {
			panic(err)
		}
	}
	return g
}

func TestLabelsForestExactAndTreeOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		g := randomForest(rng, 30)
		l, err := g.Labels()
		if err != nil {
			t.Fatalf("trial %d: Labels: %v", trial, err)
		}
		if !l.TreeOnly() {
			t.Fatalf("trial %d: forest labeled non-tree", trial)
		}
		for a := 0; a < 30; a++ {
			for b := 0; b < 30; b++ {
				if got, want := g.HasPath(a, b), refReachable(g, a, b); got != want {
					t.Fatalf("trial %d: HasPath(%d,%d) = %v, want %v", trial, a, b, got, want)
				}
			}
		}
	}
}

func TestLabelsDAGFallbackMatchesDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(rng, 25, 0.25)
		l, err := g.Labels()
		if err != nil {
			t.Fatal(err)
		}
		_ = l
		for a := 0; a < 25; a++ {
			for b := 0; b < 25; b++ {
				if got, want := g.HasPath(a, b), refReachable(g, a, b); got != want {
					t.Fatalf("trial %d: HasPath(%d,%d) = %v, want %v", trial, a, b, got, want)
				}
			}
		}
	}
}

func TestLabelsInvalidatedByMutation(t *testing.T) {
	g, ids := buildChain(t, 5)
	g.Warm()
	if !g.LabelsWarm() {
		t.Fatal("Warm did not build the label index")
	}
	l, _ := g.Labels()
	gen := l.Generation()
	if gen != g.Generation() {
		t.Fatalf("label generation %d != graph generation %d", gen, g.Generation())
	}
	extra := g.AddNode()
	if g.LabelsWarm() {
		t.Fatal("mutation left a stale label index published")
	}
	if err := g.AddEdge(ids[4], extra); err != nil {
		t.Fatal(err)
	}
	if !g.HasPath(ids[0], extra) {
		t.Fatal("new path not visible after invalidation")
	}
	g.Warm()
	l2, _ := g.Labels()
	if l2.Generation() == gen {
		t.Fatal("rebuilt index kept the old generation stamp")
	}
	if !l2.HasPath(ids[0], extra) {
		t.Fatal("rebuilt index misses the new path")
	}
}

func TestLabelsIntervalAccessor(t *testing.T) {
	g, ids := buildChain(t, 3)
	l, err := g.Labels()
	if err != nil {
		t.Fatal(err)
	}
	pre0, post0 := l.Interval(ids[0])
	pre2, post2 := l.Interval(ids[2])
	if !(pre0 <= pre2 && post2 <= post0) {
		t.Fatalf("chain tail [%d,%d] not nested in head [%d,%d]", pre2, post2, pre0, post0)
	}
	if pre, post := l.Interval(-1); pre != -1 || post != -1 {
		t.Fatalf("Interval(-1) = (%d,%d), want (-1,-1)", pre, post)
	}
	if pre, post := l.Interval(99); pre != -1 || post != -1 {
		t.Fatalf("Interval(99) = (%d,%d), want (-1,-1)", pre, post)
	}
}

func TestLabelsAfterRemoveNode(t *testing.T) {
	g, _ := buildDiamond(t)
	g.Warm()
	g.RemoveNode(1)
	l, err := g.Labels()
	if err != nil {
		t.Fatal(err)
	}
	if pre, post := l.Interval(1); pre != -1 || post != -1 {
		t.Fatalf("dead node labeled (%d,%d)", pre, post)
	}
	if !g.HasPath(0, 3) {
		t.Fatal("path through surviving branch lost")
	}
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if got, want := g.HasPath(a, b), refReachable(g, a, b); got != want {
				t.Fatalf("HasPath(%d,%d) = %v, want %v", a, b, got, want)
			}
		}
	}
}

// TestHasPathWarmNoAllocs pins the acceptance criterion: a warm HasPath is
// a pure label compare — zero allocations, no graph walk.
func TestHasPathWarmNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g := randomDAG(rng, 64, 0.15)
	g.Warm()
	if avg := testing.AllocsPerRun(200, func() {
		g.HasPath(0, 63)
		g.HasPath(63, 0)
		g.HasPath(5, 40)
	}); avg != 0 {
		t.Fatalf("warm HasPath allocates %.1f per run, want 0", avg)
	}
}

// TestHasPathDenseStackBounded pins the mark-on-push fix: on a complete DAG
// the DFS stack is bounded by V, not E. The pre-fix DFS pushed one stack
// entry per edge, which on this graph grows the stack slice past 250 KiB
// per query; the fixed DFS stays within a few KiB (seen slice + V ints).
func TestHasPathDenseStackBounded(t *testing.T) {
	const n = 256
	g := New()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = g.AddNode()
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddEdge(ids[i], ids[j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	target := g.AddNode() // unreachable: forces a full traversal
	if g.HasPath(ids[0], target) {
		t.Fatal("target should be unreachable")
	}
	if !g.HasPath(ids[0], ids[n-1]) {
		t.Fatal("dense DAG lost reachability")
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.pathQueries.Store(0) // stay on the DFS path, not the index
			g.HasPath(ids[0], target)
		}
	})
	if bytes := res.AllocedBytesPerOp(); bytes > 32*1024 {
		t.Fatalf("dense DFS allocates %d B/op, want < 32 KiB (stack must be V-bounded)", bytes)
	}
}

func TestBitsetOrShapes(t *testing.T) {
	// Longer receiver: classic merge.
	a := NewBitset(256)
	b := NewBitset(64)
	b.Set(3)
	a.Or(b)
	if !a.Get(3) {
		t.Fatal("merge into longer receiver lost a bit")
	}
	// Shorter receiver, zero tail in other: tolerated.
	short := NewBitset(64)
	long := NewBitset(256)
	long.Set(10)
	short.Or(long)
	if !short.Get(10) {
		t.Fatal("merge into shorter receiver lost an in-range bit")
	}
	// Shorter receiver, set bit beyond capacity: loud failure, not an
	// index panic and not silent truncation.
	long.Set(200)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Or with unrepresentable bit did not panic")
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "Bitset.Or") {
				t.Fatalf("panic %v lacks a descriptive message", r)
			}
		}()
		short.Or(long)
	}()
}

func TestBitsetOrGrow(t *testing.T) {
	short := NewBitset(64)
	short.Set(1)
	long := NewBitset(256)
	long.Set(200)
	merged := short.OrGrow(long)
	if !merged.Get(1) || !merged.Get(200) {
		t.Fatalf("OrGrow members = %v, want [1 200]", merged.Members())
	}
	// No growth needed: storage is reused.
	big := NewBitset(256)
	big.Set(7)
	same := big.OrGrow(long)
	if &same[0] != &big[0] {
		t.Fatal("OrGrow reallocated when the receiver was large enough")
	}
	if !same.Get(7) || !same.Get(200) {
		t.Fatal("in-place OrGrow lost bits")
	}
}
