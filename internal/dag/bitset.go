package dag

import (
	"fmt"
	"math/bits"
)

// Bitset is a fixed-capacity set of small non-negative integers used for
// dense reachability computations.
type Bitset []uint64

// NewBitset returns a bitset able to hold values in [0, capacity).
func NewBitset(capacity int) Bitset {
	return make(Bitset, (capacity+63)/64)
}

// Set adds i to the set. i must be within capacity.
func (b Bitset) Set(i int) {
	b[i/64] |= 1 << (uint(i) % 64)
}

// Clear removes i from the set.
func (b Bitset) Clear(i int) {
	b[i/64] &^= 1 << (uint(i) % 64)
}

// Get reports whether i is in the set. Out-of-range values report false.
func (b Bitset) Get(i int) bool {
	w := i / 64
	if w >= len(b) {
		return false
	}
	return b[w]&(1<<(uint(i)%64)) != 0
}

// Or merges other into b. A longer other is tolerated as long as its tail
// beyond the receiver's capacity is all-zero; a set bit that cannot be
// represented in b panics with a descriptive message instead of silently
// dropping reachability information (use OrGrow to merge with growth).
func (b Bitset) Or(other Bitset) {
	n := len(other)
	if n > len(b) {
		for _, w := range other[len(b):] {
			if w != 0 {
				panic(fmt.Sprintf("dag: Bitset.Or: receiver too short (%d < %d words) and tail is nonzero", len(b), len(other)))
			}
		}
		n = len(b)
	}
	for i, w := range other[:n] {
		b[i] |= w
	}
}

// OrGrow merges other into b, growing the result as needed, and returns
// the merged bitset. When no growth is required the receiver's storage is
// reused, so callers must use the return value in place of b.
func (b Bitset) OrGrow(other Bitset) Bitset {
	if len(other) > len(b) {
		grown := make(Bitset, len(other))
		copy(grown, b)
		b = grown
	}
	b.Or(other)
	return b
}

// And intersects b with other in place.
func (b Bitset) And(other Bitset) {
	for i := range b {
		if i < len(other) {
			b[i] &= other[i]
		} else {
			b[i] = 0
		}
	}
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Members returns the set bits in ascending order.
func (b Bitset) Members() []int {
	var out []int
	for i, w := range b {
		for w != 0 {
			t := bits.TrailingZeros64(w)
			out = append(out, i*64+t)
			w &^= 1 << uint(t)
		}
	}
	return out
}

// Clone returns a copy of b.
func (b Bitset) Clone() Bitset {
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}
