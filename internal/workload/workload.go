// Package workload generates synthetic hierarchies, relations and flat
// baselines for the benchmark harness. The generators are deterministic
// (seeded) so the EXPERIMENTS.md tables are reproducible.
//
// The shapes mirror the scenarios the paper's introduction motivates: a
// taxonomy of C classes with F instances each (one class-valued tuple
// replaces F flat rows), exception chains of depth D (binding must walk
// the chain), and clustered flat data for the mining extension.
package workload

import (
	"fmt"
	"math/rand"

	"hrdb/internal/core"
	"hrdb/internal/flat"
	"hrdb/internal/hierarchy"
)

// Taxonomy builds a hierarchy with classes classes, each holding fanout
// instances. Classes sit directly under the root.
func Taxonomy(domain string, classes, fanout int) (*hierarchy.Hierarchy, error) {
	h := hierarchy.New(domain)
	for c := 0; c < classes; c++ {
		class := fmt.Sprintf("class%04d", c)
		if err := h.AddClass(class); err != nil {
			return nil, err
		}
		for i := 0; i < fanout; i++ {
			if err := h.AddInstance(fmt.Sprintf("c%04d_i%05d", c, i), class); err != nil {
				return nil, err
			}
		}
	}
	return h, nil
}

// Chain builds a linear hierarchy root → l0 → l1 → … → l(depth-1), with one
// instance ("leafInstance") under the deepest class and width extra
// instances at each level.
func Chain(domain string, depth, width int) (*hierarchy.Hierarchy, error) {
	h := hierarchy.New(domain)
	parent := domain
	for d := 0; d < depth; d++ {
		class := fmt.Sprintf("level%03d", d)
		if err := h.AddClass(class, parent); err != nil {
			return nil, err
		}
		for w := 0; w < width; w++ {
			if err := h.AddInstance(fmt.Sprintf("l%03d_i%03d", d, w), class); err != nil {
				return nil, err
			}
		}
		parent = class
	}
	if err := h.AddInstance("leafInstance", parent); err != nil {
		return nil, err
	}
	return h, nil
}

// ClassRelation builds the hierarchical relation the taxonomy motivates:
// one positive tuple per class (each standing for fanout instances).
func ClassRelation(name string, h *hierarchy.Hierarchy, classes int) (*core.Relation, error) {
	s, err := core.NewSchema(core.Attribute{Name: "X", Domain: h})
	if err != nil {
		return nil, err
	}
	r := core.NewRelation(name, s)
	for c := 0; c < classes; c++ {
		if err := r.Assert(fmt.Sprintf("class%04d", c)); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// ExceptionChain builds a relation over a Chain hierarchy with alternating
// signs down the chain: level0 +, level1 −, level2 +, … — exceptions to
// exceptions of the given depth.
func ExceptionChain(name string, h *hierarchy.Hierarchy, depth int) (*core.Relation, error) {
	s, err := core.NewSchema(core.Attribute{Name: "X", Domain: h})
	if err != nil {
		return nil, err
	}
	r := core.NewRelation(name, s)
	for d := 0; d < depth; d++ {
		if err := r.Insert(core.Item{fmt.Sprintf("level%03d", d)}, d%2 == 0); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// MembershipBaseline converts a hierarchy plus relation into the paper's
// footnote-1 flat design: facts plus a direct-edge membership relation.
func MembershipBaseline(h *hierarchy.Hierarchy, r *core.Relation) *flat.MembershipBaseline {
	attr := r.Schema().Attr(0).Name
	mb := flat.NewMembershipBaseline([]string{attr}, map[string]string{attr: h.Domain()})
	for _, n := range h.Nodes() {
		for _, c := range h.Children(n) {
			_ = mb.AddEdge(h.Domain(), n, c)
		}
	}
	for _, t := range r.Tuples() {
		_ = mb.AddFact(t.Sign, t.Item...)
	}
	return mb
}

// DepthFunc returns a depth lookup for a hierarchy (distance from the
// root), as the membership baseline needs for specificity ordering.
func DepthFunc(h *hierarchy.Hierarchy) func(attr, node string) int {
	depth := map[string]int{}
	var rec func(n string, d int)
	rec = func(n string, d int) {
		if old, ok := depth[n]; ok && old >= d {
			return
		}
		depth[n] = d
		for _, c := range h.Children(n) {
			rec(c, d+1)
		}
	}
	rec(h.Domain(), 0)
	return func(attr, node string) int { return depth[node] }
}

// RedundantRelation builds a relation with base class tuples plus extra
// instance-level tuples that repeat the inherited sign (all redundant), to
// exercise Consolidate.
func RedundantRelation(name string, h *hierarchy.Hierarchy, classes, redundantPerClass int) (*core.Relation, error) {
	r, err := ClassRelation(name, h, classes)
	if err != nil {
		return nil, err
	}
	for c := 0; c < classes; c++ {
		for i := 0; i < redundantPerClass; i++ {
			if err := r.Assert(fmt.Sprintf("c%04d_i%05d", c, i)); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// ClusteredFlat builds a flat relation with groups value-groups; every
// value in a group shares the same contexts different contexts.
func ClusteredFlat(name string, groups, membersPerGroup, contextsPerGroup int) *flat.Relation {
	r := flat.New(name, "Entity", "Context")
	for g := 0; g < groups; g++ {
		for m := 0; m < membersPerGroup; m++ {
			for c := 0; c < contextsPerGroup; c++ {
				_ = r.Insert(
					fmt.Sprintf("g%03d_m%03d", g, m),
					fmt.Sprintf("g%03d_ctx%03d", g, c),
				)
			}
		}
	}
	return r
}

// RandomConsistent builds a random consistent relation over two random
// hierarchies (the algebra benchmarks' input).
func RandomConsistent(seed int64, name string, hierNodes, tuples int) (*core.Relation, error) {
	rng := rand.New(rand.NewSource(seed))
	h0, err := randomHierarchy(rng, "D0"+name, hierNodes)
	if err != nil {
		return nil, err
	}
	h1, err := randomHierarchy(rng, "D1"+name, hierNodes/2+1)
	if err != nil {
		return nil, err
	}
	s, err := core.NewSchema(
		core.Attribute{Name: "A0", Domain: h0},
		core.Attribute{Name: "A1", Domain: h1},
	)
	if err != nil {
		return nil, err
	}
	r := core.NewRelation(name, s)
	pools := [][]string{h0.Nodes(), h1.Nodes()}
	for attempts := 0; attempts < tuples*8 && r.Len() < tuples; attempts++ {
		item := core.Item{
			pools[0][rng.Intn(len(pools[0]))],
			pools[1][rng.Intn(len(pools[1]))],
		}
		if _, present := r.Lookup(item); present {
			continue
		}
		if err := r.Insert(item, rng.Intn(2) == 0); err != nil {
			continue
		}
		if len(r.Conflicts()) > 0 {
			r.Retract(item)
		}
	}
	return r, nil
}

// randomHierarchy builds a random irredundant hierarchy.
func randomHierarchy(rng *rand.Rand, domain string, n int) (*hierarchy.Hierarchy, error) {
	h := hierarchy.New(domain)
	names := []string{domain}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s_n%04d", domain, i)
		p1 := names[rng.Intn(len(names))]
		parents := []string{p1}
		if rng.Intn(3) == 0 {
			p2 := names[rng.Intn(len(names))]
			if p2 != p1 && !h.Subsumes(p1, p2) && !h.Subsumes(p2, p1) {
				parents = append(parents, p2)
			}
		}
		if err := h.AddClass(name, parents...); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return h, nil
}

// ApproxTupleBytes estimates the storage footprint of a hierarchical
// relation: the sum of item string lengths plus a per-tuple overhead.
func ApproxTupleBytes(r *core.Relation) int {
	total := 0
	for _, t := range r.Tuples() {
		total += 16 // sign + bookkeeping
		for _, v := range t.Item {
			total += len(v) + 16
		}
	}
	return total
}

// ApproxRowBytes estimates a flat relation's footprint the same way.
func ApproxRowBytes(r *flat.Relation) int {
	total := 0
	for _, row := range r.Rows() {
		total += 16
		for _, v := range row {
			total += len(v) + 16
		}
	}
	return total
}
