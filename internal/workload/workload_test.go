package workload

import (
	"testing"
)

func TestTaxonomyShape(t *testing.T) {
	h, err := Taxonomy("D", 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h.AllLeaves()); got != 15 {
		t.Fatalf("leaves = %d, want 15", got)
	}
	if !h.Subsumes("class0001", "c0001_i00003") {
		t.Fatal("membership broken")
	}
}

func TestChainShape(t *testing.T) {
	h, err := Chain("D", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Subsumes("level000", "leafInstance") {
		t.Fatal("chain membership broken")
	}
	if got := len(h.Ancestors("leafInstance")); got != 5 { // root + 4 levels
		t.Fatalf("ancestors = %d, want 5", got)
	}
}

func TestClassRelationExtension(t *testing.T) {
	h, err := Taxonomy("D", 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ClassRelation("R", h, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("tuples = %d", r.Len())
	}
	n, err := r.ExtensionSize()
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 {
		t.Fatalf("extension = %d, want 15", n)
	}
}

func TestExceptionChainAlternates(t *testing.T) {
	h, err := Chain("D", 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ExceptionChain("R", h, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Deepest level is level004 (+ since 4 is even); leafInstance under it.
	ok, err := r.Holds("leafInstance")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("leafInstance should be + (depth 4 even)")
	}
	// An instance at level001 picks up the − at that level.
	ok, err = r.Holds("l001_i000")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("level-1 instance should be −")
	}
}

func TestMembershipBaselineAgrees(t *testing.T) {
	h, err := Chain("D", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ExceptionChain("R", h, 4)
	if err != nil {
		t.Fatal(err)
	}
	mb := MembershipBaseline(h, r)
	depth := DepthFunc(h)
	for _, leaf := range h.AllLeaves() {
		want, err := r.Holds(leaf)
		if err != nil {
			t.Fatal(err)
		}
		got, joins := mb.Holds([]string{"X"}, []string{leaf}, depth)
		if got != want {
			t.Fatalf("baseline disagrees at %s: %v vs %v", leaf, got, want)
		}
		if joins < 2 {
			t.Fatalf("baseline did no joins at %s", leaf)
		}
	}
}

func TestRedundantRelationConsolidates(t *testing.T) {
	h, err := Taxonomy("D", 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RedundantRelation("R", h, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2+8 {
		t.Fatalf("tuples = %d", r.Len())
	}
	c := r.Consolidate()
	if c.Len() != 2 {
		t.Fatalf("consolidated = %d, want 2", c.Len())
	}
}

func TestClusteredFlatShape(t *testing.T) {
	r := ClusteredFlat("R", 3, 4, 2)
	if r.Len() != 24 {
		t.Fatalf("rows = %d", r.Len())
	}
}

func TestRandomConsistentIsConsistent(t *testing.T) {
	r, err := RandomConsistent(7, "R", 12, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if r.Len() == 0 {
		t.Fatal("no tuples generated")
	}
}

func TestApproxBytesPositive(t *testing.T) {
	h, _ := Taxonomy("D", 2, 3)
	r, _ := ClassRelation("R", h, 2)
	if ApproxTupleBytes(r) <= 0 {
		t.Fatal("tuple bytes")
	}
	f := ClusteredFlat("F", 1, 2, 2)
	if ApproxRowBytes(f) <= 0 {
		t.Fatal("row bytes")
	}
}
