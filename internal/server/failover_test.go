package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hrdb/internal/hql"
	"hrdb/internal/storage"
)

// Server-side failover machinery tested with stubs: the Shutdown drain gate
// on replication verbs, and the Router's primary re-discovery. The
// full-stack versions (real stores, real elections) live in internal/repl.

// TestShutdownRefusesNewReplicationWork pins the drain gate: once Shutdown
// has begun, SNAP and REPL on already-open connections are answered with a
// retryable shutdown error instead of being admitted — a bootstrap started
// during the drain would race the store's close. The drain itself still
// completes cleanly (no goroutine wedged on the refused work).
func TestShutdownRefusesNewReplicationWork(t *testing.T) {
	gate := &gateTarget{Target: newMemTarget(t), gate: make(chan struct{})}
	srv := New(gate, Options{Repl: &stubRepl{snapshot: []byte("boot")}})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}

	// Park one mutation in flight so the drain has something to wait for
	// (Shutdown must not return before we've probed the gate).
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cli.Close()
	execDone := make(chan error, 1)
	go func() {
		_, err := cli.Exec(context.Background(), "ASSERT Flies (Tweety);")
		execDone <- err
	}()
	waitFor(t, func() bool { return gate.waiting.Load() == 1 }, "statement never parked")

	// Raw connections opened before the listener closes: one per verb,
	// since a refused replication verb retires the connection.
	snapConn, err := netDial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer snapConn.Close()
	replConn, err := netDial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer replConn.Close()

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	waitFor(t, srv.drainingNow, "Shutdown never marked the server draining")

	fmt.Fprintln(snapConn, "SNAP")
	resp, err := readResponseConn(snapConn)
	if err != nil {
		t.Fatalf("SNAP during drain: %v", err)
	}
	if resp.ok || resp.code != codeShutdown {
		t.Fatalf("SNAP during drain = ok=%v code=%q, want ERR %s", resp.ok, resp.code, codeShutdown)
	}
	fmt.Fprintln(replConn, "REPL 0 0 1")
	resp, err = readResponseConn(replConn)
	if err != nil {
		t.Fatalf("REPL during drain: %v", err)
	}
	if resp.ok || resp.code != codeShutdown {
		t.Fatalf("REPL during drain = ok=%v code=%q, want ERR %s", resp.ok, resp.code, codeShutdown)
	}

	// Release the parked statement: the drain finishes and the in-flight
	// write is answered, not abandoned.
	close(gate.gate)
	if err := <-execDone; err != nil {
		t.Fatalf("in-flight statement during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// deposedTarget answers every mutation with storage.ErrDeposed — a store
// fenced by a newer primary term.
type deposedTarget struct{ hql.Target }

func (d deposedTarget) Assert(rel string, values ...string) error {
	return storage.ErrDeposed
}

// TestRouterFailsOverOnStale: a write answered with the "stale" code makes
// the router probe its replicas for whoever reports itself promoted, adopt
// it as the new primary, and retry the write there — transparently to the
// caller. The deposed node stays in the pool as a replica.
func TestRouterFailsOverOnStale(t *testing.T) {
	old := startServer(t, deposedTarget{newMemTarget(t)}, Options{})
	promoted := startServer(t, newMemTarget(t), Options{
		LagProbe: lagConst(LagInfo{Staleness: 0, State: "promoted", Term: 3, ID: "r1"}),
	})

	router := dialRouterT(t, old, promoted)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	before := metricRouterFailovers.Value()
	if _, err := router.Exec(ctx, "ASSERT Flies (Tweety);"); err != nil {
		t.Fatalf("write during failover: %v", err)
	}
	if router.PrimaryAddr() != promoted.Addr() {
		t.Fatalf("router primary = %q, want the promoted node %q", router.PrimaryAddr(), promoted.Addr())
	}
	if got := metricRouterFailovers.Value(); got != before+1 {
		t.Fatalf("failover metric delta = %d, want 1", got-before)
	}

	// Subsequent writes go straight to the new primary (no second hop, no
	// stale error), and the write actually landed there.
	if _, err := router.Exec(ctx, "ASSERT Flies (Paul);"); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	if got := metricRouterFailovers.Value(); got != before+1 {
		t.Fatalf("second write re-failed-over (metric %d)", got-before)
	}
	out, err := router.Exec(ctx, "HOLDS Flies (Tweety);")
	if err != nil || strings.TrimSpace(out) != "true" {
		t.Fatalf("read after failover = %q, %v", out, err)
	}
}

// TestRouterConcurrentFailoverRediscovery: many writers hit the deposed
// primary at once, so the stale answers race into discoverPrimary from
// several goroutines concurrently. Every writer must come out the other
// side successfully (re-routed and retried, never a surfaced stale error),
// the router must settle on the one promoted peer, and once settled no
// further Exec may flap the primary again.
func TestRouterConcurrentFailoverRediscovery(t *testing.T) {
	old := startServer(t, deposedTarget{newMemTarget(t)}, Options{})
	promoted := startServer(t, newMemTarget(t), Options{
		LagProbe: lagConst(LagInfo{Staleness: 0, State: "promoted", Term: 3, ID: "r1"}),
	})
	router := dialRouterT(t, old, promoted)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const writers = 8
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := router.Exec(ctx, "ASSERT Flies (Tweety);"); err != nil {
					errs[w] = fmt.Errorf("iteration %d: %w", i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	if router.PrimaryAddr() != promoted.Addr() {
		t.Fatalf("router primary = %q, want the promoted node %q", router.PrimaryAddr(), promoted.Addr())
	}

	// Settled: a fresh write goes straight through without another failover.
	before := metricRouterFailovers.Value()
	if _, err := router.Exec(ctx, "ASSERT Flies (Paul);"); err != nil {
		t.Fatalf("write after concurrent failover: %v", err)
	}
	if got := metricRouterFailovers.Value(); got != before {
		t.Fatalf("settled router failed over again (metric delta %d)", got-before)
	}
	out, err := router.Exec(ctx, "HOLDS Flies (Tweety);")
	if err != nil || strings.TrimSpace(out) != "true" {
		t.Fatalf("read after concurrent failover = %q, %v", out, err)
	}
}

// TestRouterStaleWithNoPromotedPeerSurfaces: when no replica claims
// promotion the router cannot re-route; the stale error reaches the caller
// (who retries later) instead of being swallowed or looping.
func TestRouterStaleWithNoPromotedPeerSurfaces(t *testing.T) {
	old := startServer(t, deposedTarget{newMemTarget(t)}, Options{})
	replica := startServer(t, newMemTarget(t), Options{
		LagProbe: lagConst(LagInfo{Staleness: 0, State: "streaming"}),
	})
	router := dialRouterT(t, old, replica)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := router.Exec(ctx, "ASSERT Flies (Tweety);"); !errors.Is(err, ErrStaleReplica) {
		t.Fatalf("write with no promoted peer = %v, want ErrStaleReplica", err)
	}
	if router.PrimaryAddr() != old.Addr() {
		t.Fatal("router swapped primary without a promoted peer")
	}
}
