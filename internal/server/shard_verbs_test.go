package server

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"hrdb/internal/shard"
)

// The shard verbs (SHARDMAP inline, EXECSHARD on the worker pool) across
// both wire protocols, plus the Router's shard-aware plumbing. The full
// coordinator stack over these verbs lives in the root-level
// shard_integration_test.go; here we pin the per-verb wire behavior.

func shardServer(t *testing.T, id, count int) *Server {
	t.Helper()
	target := newMemTarget(t)
	return startServer(t, target, Options{Shard: shard.NewNode(target, id, count)})
}

func TestShardVerbsBothProtocols(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv := shardServer(t, 1, 3)

	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"v2", nil},
		{"v1", []Option{WithProtocol(ProtocolV1)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Dial(srv.Addr(), tc.opts...)
			if err != nil {
				t.Fatalf("Dial: %v", err)
			}
			defer c.Close()

			id, count, err := c.ShardMap(ctx)
			if err != nil || id != 1 || count != 3 {
				t.Fatalf("ShardMap = %d/%d, %v; want 1/3", id, count, err)
			}

			// A pure shard read: the fixture stores Flies(Bird)+ and
			// Flies(Penguin)-.
			op, err := shard.EncodeTuples("Flies")
			if err != nil {
				t.Fatal(err)
			}
			out, err := c.ExecShard(ctx, op)
			if err != nil {
				t.Fatalf("ExecShard: %v", err)
			}
			tuples, err := shard.DecodeTuples(out)
			if err != nil || len(tuples) != 2 {
				t.Fatalf("TUPLES = %q (%v), want 2 tuples", out, err)
			}

			// A malformed op is a server-side exec failure, not a hangup.
			if _, err := c.ExecShard(ctx, "FROBNICATE"); err == nil {
				t.Fatal("malformed shard op must fail")
			}
			if _, _, err := c.ShardMap(ctx); err != nil {
				t.Fatalf("connection unusable after failed shard op: %v", err)
			}
		})
	}
}

func TestShardVerbsUnsupportedOnPlainServer(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv := startServer(t, newMemTarget(t), Options{})
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"v2", nil},
		{"v1", []Option{WithProtocol(ProtocolV1)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Dial(srv.Addr(), tc.opts...)
			if err != nil {
				t.Fatalf("Dial: %v", err)
			}
			defer c.Close()
			if _, _, err := c.ShardMap(ctx); !errors.Is(err, ErrUnsupported) {
				t.Fatalf("SHARDMAP on plain server = %v, want ErrUnsupported", err)
			}
			op, _ := shard.EncodeTuples("Flies")
			if _, err := c.ExecShard(ctx, op); !errors.Is(err, ErrUnsupported) {
				t.Fatalf("EXECSHARD on plain server = %v, want ErrUnsupported", err)
			}
		})
	}
}

func TestParseShardMapRejectsGarbage(t *testing.T) {
	if id, count, err := parseShardMap("1 3"); err != nil || id != 1 || count != 3 {
		t.Fatalf("parseShardMap(\"1 3\") = %d/%d, %v", id, count, err)
	}
	for _, bad := range []string{"", "x y", "1", "1 2 3"} {
		if _, _, err := parseShardMap(bad); !errors.Is(err, ErrProtocol) {
			t.Fatalf("parseShardMap(%q) = %v, want ErrProtocol", bad, err)
		}
	}
}

// TestRouterShardVerbs: the Router forwards shard operations to the current
// primary and fails over on a stale answer exactly like Exec — the property
// that keeps a coordinator's 2PC alive through a shard primary's death.
func TestRouterShardVerbs(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	target := newMemTarget(t)
	primary := startServer(t, target, Options{Shard: shard.NewNode(target, 0, 1)})
	rtarget := newMemTarget(t)
	replica := startServer(t, rtarget, Options{
		Shard:    shard.NewNode(rtarget, 0, 1),
		LagProbe: lagConst(LagInfo{Staleness: 0, State: "streaming"}),
	})
	router := dialRouterT(t, primary, replica)

	id, count, err := router.ShardMap(ctx)
	if err != nil || id != 0 || count != 1 {
		t.Fatalf("ShardMap = %d/%d, %v; want 0/1", id, count, err)
	}
	op, _ := shard.EncodeTuples("Flies")
	out, err := router.ExecShard(ctx, op)
	if err != nil {
		t.Fatalf("ExecShard: %v", err)
	}
	if tuples, err := shard.DecodeTuples(out); err != nil || len(tuples) != 2 {
		t.Fatalf("TUPLES via router = %q (%v)", out, err)
	}
}

// TestRouterShardFailsOverOnStale: a shard op answered with the stale code
// re-routes to the promoted peer, like any primary-bound request.
func TestRouterShardFailsOverOnStale(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	old := startServer(t, deposedShardTarget{deposedTarget{newMemTarget(t)}}, Options{})
	ptarget := newMemTarget(t)
	promoted := startServer(t, ptarget, Options{
		Shard:    shard.NewNode(ptarget, 0, 1),
		LagProbe: lagConst(LagInfo{Staleness: 0, State: "promoted", Term: 7, ID: "r1"}),
	})
	router := dialRouterT(t, old, promoted)

	// The old node is not even a shard (unsupported is NOT a failover
	// trigger — it's a topology error the caller must see).
	op, _ := shard.EncodeTuples("Flies")
	if _, err := router.ExecShard(ctx, op); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("ExecShard on non-shard primary = %v, want ErrUnsupported", err)
	}

	// But a write answered stale re-routes, after which shard ops land on
	// the promoted node.
	if _, err := router.Exec(ctx, "ASSERT Flies (Tweety);"); err != nil {
		t.Fatalf("write during failover: %v", err)
	}
	out, err := router.ExecShard(ctx, op)
	if err != nil {
		t.Fatalf("ExecShard after failover: %v", err)
	}
	if !strings.Contains(out, "Bird") {
		t.Fatalf("shard read after failover = %q", out)
	}
}

// deposedShardTarget is a deposed store that still parses as a server
// target; the type exists so the test above reads as what it is.
type deposedShardTarget struct{ deposedTarget }
