package server

import (
	"bufio"
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// This file is the server's replication surface. The server itself knows
// nothing about WAL shipping: it decodes the replication verbs and
// delegates to pluggable hooks (Options.Repl, Options.Promote,
// Options.LagProbe), so the dependency points from internal/repl — which
// implements them — into this package's wire contract, never back.

// ReplSource serves replication to followers. Implemented by repl.Primary
// (and by repl.Replica once durably promoted).
type ReplSource interface {
	// Snapshot returns an opaque bootstrap payload: the database spec plus
	// the replication position it corresponds to (the follower decodes it
	// with the matching repl code). Served as a normal OK frame.
	Snapshot() ([]byte, error)
	// ServeStream takes over a connection after a `REPL <epoch> <offset>
	// [term]` request: it writes stream frames to w and consumes ACK lines
	// from r until the stream ends (connection severed, source closed, or
	// the position unservable). term is the follower's highest fencing term
	// (zero from pre-term followers); a source holding a lower term has
	// been deposed and must fence itself rather than serve. The server
	// closes the connection afterwards.
	ServeStream(r *bufio.Reader, w *bufio.Writer, epoch uint64, offset int64, term uint64) error
}

// LagInfo is a replica's replication state, served by the LAG verb and
// consumed by lag-bounded read routing.
type LagInfo struct {
	// Staleness is the wall-clock age of the replica's view: how long ago
	// it was last known to be caught up with the primary's durable
	// position. Negative means unknown (never caught up, or disconnected
	// with no bound) — routing must treat it as infinitely stale.
	Staleness time.Duration
	// Epoch and Offset are the replica's applied replication position.
	Epoch  uint64
	Offset int64
	// State names the replica's phase: "streaming", "catchup",
	// "connecting", "promoted", "stopped".
	State string
	// Term is the node's highest fencing term (zero from pre-term peers).
	Term uint64
	// ID is the node's election identity ("" when unset).
	ID string
	// Source is the address to stream from this node: its advertised
	// replication address once promoted, its upstream otherwise.
	Source string
}

// lagPayload renders a LagInfo as the LAG verb's payload:
// `<ms> <epoch> <offset> <state> <term> <id> <source>`, with "-" encoding
// an empty id or source. Pre-failover clients read only the first four
// fields... which is why the extension appends rather than reorders.
func lagPayload(li LagInfo) string {
	ms := int64(-1)
	if li.Staleness >= 0 {
		ms = li.Staleness.Milliseconds()
	}
	state := li.State
	if state == "" {
		state = "unknown"
	}
	id, source := li.ID, li.Source
	if id == "" {
		id = "-"
	}
	if source == "" {
		source = "-"
	}
	return fmt.Sprintf("%d %d %d %s %d %s %s", ms, li.Epoch, li.Offset, state, li.Term, id, source)
}

// parseLagPayload decodes a LAG payload (client side): the legacy 4-field
// form or the extended 7-field form with term/id/source appended.
func parseLagPayload(payload string) (LagInfo, error) {
	fields := strings.Fields(payload)
	if len(fields) != 4 && len(fields) != 7 {
		return LagInfo{}, fmt.Errorf("%w: bad LAG payload %q", errProto, payload)
	}
	ms, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return LagInfo{}, fmt.Errorf("%w: bad staleness %q", errProto, fields[0])
	}
	epoch, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return LagInfo{}, fmt.Errorf("%w: bad epoch %q", errProto, fields[1])
	}
	off, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return LagInfo{}, fmt.Errorf("%w: bad offset %q", errProto, fields[2])
	}
	staleness := time.Duration(-1)
	if ms >= 0 {
		staleness = time.Duration(ms) * time.Millisecond
	}
	li := LagInfo{Staleness: staleness, Epoch: epoch, Offset: off, State: fields[3]}
	if len(fields) == 7 {
		term, err := strconv.ParseUint(fields[4], 10, 64)
		if err != nil {
			return LagInfo{}, fmt.Errorf("%w: bad LAG term %q", errProto, fields[4])
		}
		li.Term = term
		if fields[5] != "-" {
			li.ID = fields[5]
		}
		if fields[6] != "-" {
			li.Source = fields[6]
		}
	}
	return li, nil
}

// serveRepl dispatches the replication verbs. It reports whether the
// connection may continue to the next request (REPL never continues: the
// stream owns the connection until it ends).
//
// A draining server refuses to START a snapshot or stream: Shutdown closes
// the store after the drain, and a follower bootstrap admitted during the
// drain would race that close — it gets a retryable shutdown error and
// bootstraps elsewhere (or later) instead. Streams already running are
// unaffected; they end when the store closes under them.
func (s *Server) serveRepl(bw *bufio.Writer, br *bufio.Reader, req request) bool {
	switch req.verb {
	case "SNAP":
		if s.opts.Repl == nil {
			return writeErr(bw, codeUnsupported, 0, "replication not enabled") == nil
		}
		if s.drainingNow() {
			writeErr(bw, codeShutdown, 0, "server draining")
			return false
		}
		payload, err := s.opts.Repl.Snapshot()
		if err != nil {
			return writeErr(bw, codeExec, 0, err.Error()) == nil
		}
		metricReplSnapshots.Inc()
		return writeOK(bw, string(payload)) == nil
	case "REPL":
		if s.opts.Repl == nil {
			writeErr(bw, codeUnsupported, 0, "replication not enabled")
			return false
		}
		if s.drainingNow() {
			writeErr(bw, codeShutdown, 0, "server draining")
			return false
		}
		metricReplStreams.Inc()
		defer metricReplStreams.Dec()
		_ = s.opts.Repl.ServeStream(br, bw, req.epoch, req.offset, req.term)
		return false
	case "PROMOTE":
		if s.opts.Promote == nil {
			return writeErr(bw, codeUnsupported, 0, "not a replica") == nil
		}
		if err := s.opts.Promote(); err != nil {
			return writeErr(bw, codeExec, 0, err.Error()) == nil
		}
		return writeOK(bw, "promoted") == nil
	case "LAG":
		if s.opts.LagProbe == nil {
			return writeErr(bw, codeUnsupported, 0, "not a replica") == nil
		}
		return writeOK(bw, lagPayload(s.opts.LagProbe())) == nil
	}
	writeErr(bw, codeProto, 0, "unknown replication verb")
	return false
}

// Lag queries a replica server's replication state (the LAG verb). Servers
// without a lag probe answer with an "unsupported" ServerError.
func (c *Client) Lag(ctx context.Context) (LagInfo, error) {
	payload, err := c.inlineVerb(ctx, "LAG")
	if err != nil {
		return LagInfo{}, err
	}
	return parseLagPayload(payload)
}

// Promote asks a replica server to stop following and accept writes (the
// PROMOTE verb). It is manual failover: the caller decides the old primary
// is gone; the replica finishes applying whatever it has and flips
// writable. Like Lag, it dispatches per protocol: a frame on v2, a text
// line on v1 (see Client.inlineVerb).
func (c *Client) Promote(ctx context.Context) error {
	_, err := c.inlineVerb(ctx, "PROMOTE")
	return err
}
