package server

import (
	"context"
	"errors"
	"testing"
)

// TestErrorCodeTableExhaustive pins the wire error-code registry: every
// code the protocol documents exists, maps to exactly the sentinel the
// documentation promises, and nothing else is registered. A new defineCode
// call fails this test until the documented table (docs/HQL.md and this
// list) is updated with it — registration and documentation cannot drift.
func TestErrorCodeTableExhaustive(t *testing.T) {
	documented := map[Code]error{
		codeProto:       ErrProtocol,
		codeTooLarge:    ErrStatementTooLarge,
		codeExec:        ErrExecFailed,
		codeOverloaded:  ErrOverloaded,
		codeDeadline:    context.DeadlineExceeded,
		codeCanceled:    context.Canceled,
		codePanic:       ErrStatementPanicked,
		codeShutdown:    ErrServerClosed,
		codeUnsupported: ErrUnsupported,
		codeQuota:       ErrQuotaExceeded,
		codeTenant:      ErrUnknownTenant,
		codeStale:       ErrStaleReplica,
	}
	if got, want := len(codeSentinels), len(documented); got != want {
		t.Errorf("registry has %d codes, documentation lists %d", got, want)
	}
	for code, sentinel := range documented {
		got, ok := codeSentinels[code]
		if !ok {
			t.Errorf("documented code %q is not registered", code)
			continue
		}
		if got != sentinel {
			t.Errorf("code %q registered with sentinel %v, documented as %v", code, got, sentinel)
		}
	}
	for code := range codeSentinels {
		if _, ok := documented[code]; !ok {
			t.Errorf("registered code %q is undocumented: add it to docs/HQL.md and this table", code)
		}
	}
}

// TestServerErrorIs: errors.Is on a ServerError matches the code's sentinel
// (and, transitively, whatever that sentinel wraps) without string games.
func TestServerErrorIs(t *testing.T) {
	cases := []struct {
		code Code
		want error
	}{
		{codeOverloaded, ErrOverloaded},
		{codeQuota, ErrQuotaExceeded},
		{codeDeadline, context.DeadlineExceeded},
		{codeCanceled, context.Canceled},
		{codeTenant, ErrUnknownTenant},
		{codeShutdown, ErrServerClosed},
		{codeProto, ErrProtocol},
		{codeTooLarge, ErrStatementTooLarge},
		{codeExec, ErrExecFailed},
		{codePanic, ErrStatementPanicked},
		{codeUnsupported, ErrUnsupported},
		{codeStale, ErrStaleReplica},
	}
	for _, tc := range cases {
		err := error(&ServerError{Code: tc.code, Msg: "x"})
		if !errors.Is(err, tc.want) {
			t.Errorf("ServerError{%q} does not match %v", tc.code, tc.want)
		}
		// One code, one sentinel: it must not match any other case's sentinel.
		for _, other := range cases {
			if other.want != tc.want && errors.Is(err, other.want) {
				t.Errorf("ServerError{%q} also matches %v", tc.code, other.want)
			}
		}
	}
	// A code this build does not know matches no sentinel at all.
	unknown := error(&ServerError{Code: "fancy-new-code", Msg: "x"})
	for _, tc := range cases {
		if errors.Is(unknown, tc.want) {
			t.Errorf("unknown code matched %v", tc.want)
		}
	}
	// ErrClientClosed is a client-side condition, never a wire code.
	if _, ok := codeSentinels[Code("client-closed")]; ok {
		t.Error("ErrClientClosed must not be a wire code")
	}
	for code, sentinel := range codeSentinels {
		if errors.Is(sentinel, ErrClientClosed) {
			t.Errorf("code %q maps to ErrClientClosed", code)
		}
	}
}
