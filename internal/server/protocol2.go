package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// Protocol v2 framing. Every message after the HELLO handshake is one
// frame:
//
//	u32 length | u8 type | u8 flags | u64 id | u32 stream | payload
//
// All integers big-endian. length counts everything after itself (type
// through payload), so the minimum legal value is frameHeader. id echoes
// back in the response; stream groups requests into logical
// sub-connections with per-stream FIFO execution order.
//
// Frame types (client → server unless noted):
//
//	EXEC       payload = u32 timeout_ms | script bytes
//	CANCEL     abort the request with this id (best effort, no reply)
//	PING       liveness probe → OK "pong"
//	STATS      metrics snapshot → OK <prometheus text>
//	GOODBYE    orderly close; the server stops reading
//	ENDSTREAM  dispose the stream in the stream field (no reply)
//	LAG        replication lag probe → OK <lag payload>
//	PROMOTE    promote a replica → OK "promoted"
//	SHARDMAP   shard identity probe → OK "<shard_id> <shard_count>"
//	EXECSHARD  payload as EXEC, but a shard operation, not an HQL script
//	SUBSCRIBE  payload = u8 resume | u64 epoch | u64 offset | name bytes;
//	           opens a change feed answered with SUB frames
//	OK         (server → client) success, payload = output
//	ERR        (server → client) failure,
//	           payload = u8 codeLen | code | u32 retry_ms | message
//	SUB        (server → client) one subwire feed frame (SNAP/DELTA/HB/ERR,
//	           see internal/subwire) of the subscription with this id
//
// The flagEndStream bit on an EXEC asks the server to dispose the stream's
// session right after the reply — the one-request-per-stream pattern plain
// Client.Exec uses, so throwaway streams don't accumulate server state.
const (
	fvExec      = byte(0x01)
	fvCancel    = byte(0x02)
	fvPing      = byte(0x03)
	fvStats     = byte(0x04)
	fvGoodbye   = byte(0x05)
	fvEndStream = byte(0x06)
	fvLag       = byte(0x07)
	fvPromote   = byte(0x08)
	fvShardMap  = byte(0x09)
	fvExecShard = byte(0x0A)
	fvSubscribe = byte(0x0B)
	fvOK        = byte(0x81)
	fvErr       = byte(0x82)
	fvSub       = byte(0x83)
)

// flagEndStream on an EXEC frame disposes the stream's session after the
// reply.
const flagEndStream = byte(0x01)

// frameHeader is the fixed part of a frame after the length prefix:
// type (1) + flags (1) + id (8) + stream (4).
const frameHeader = 14

// frame is one decoded v2 frame.
type frame struct {
	typ     byte
	flags   byte
	id      uint64
	stream  uint32
	payload []byte
}

// appendFrame encodes f onto dst.
func appendFrame(dst []byte, f frame) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(frameHeader+len(f.payload)))
	dst = append(dst, f.typ, f.flags)
	dst = binary.BigEndian.AppendUint64(dst, f.id)
	dst = binary.BigEndian.AppendUint32(dst, f.stream)
	return append(dst, f.payload...)
}

// writeFrame encodes and writes one frame as a single Write call, so
// concurrent senders interleave at frame granularity, never mid-frame.
func writeFrame(w io.Writer, f frame) error {
	buf := appendFrame(make([]byte, 0, 4+frameHeader+len(f.payload)), f)
	_, err := w.Write(buf)
	return err
}

// readFrame decodes one frame. maxBytes bounds the payload; oversized
// frames fail with errTooLarge, structurally bad ones with errProto.
func readFrame(br *bufio.Reader, maxBytes int) (frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < frameHeader {
		return frame{}, fmt.Errorf("%w: frame length %d below header size", errProto, n)
	}
	if uint64(n) > uint64(maxBytes)+frameHeader {
		return frame{}, errTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return frame{}, fmt.Errorf("%w: truncated frame: %v", errProto, err)
	}
	return frame{
		typ:     body[0],
		flags:   body[1],
		id:      binary.BigEndian.Uint64(body[2:10]),
		stream:  binary.BigEndian.Uint32(body[10:14]),
		payload: body[frameHeader:],
	}, nil
}

// execPayload encodes an EXEC frame payload: u32 timeout_ms | script.
func execPayload(timeout time.Duration, input string) []byte {
	ms := timeout.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > math.MaxUint32 {
		ms = math.MaxUint32
	}
	p := make([]byte, 4+len(input))
	binary.BigEndian.PutUint32(p, uint32(ms))
	copy(p[4:], input)
	return p
}

// parseExecPayload decodes an EXEC frame payload.
func parseExecPayload(p []byte) (timeout time.Duration, input string, err error) {
	if len(p) < 4 {
		return 0, "", fmt.Errorf("%w: EXEC payload %d bytes, want ≥ 4", errProto, len(p))
	}
	ms := binary.BigEndian.Uint32(p)
	return time.Duration(ms) * time.Millisecond, string(p[4:]), nil
}

// errFramePayload encodes an ERR frame payload:
// u8 codeLen | code | u32 retry_ms | message.
func errFramePayload(code Code, retryAfter time.Duration, msg string) []byte {
	if len(code) > math.MaxUint8 {
		code = code[:math.MaxUint8]
	}
	ms := retryAfter.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > math.MaxUint32 {
		ms = math.MaxUint32
	}
	p := make([]byte, 0, 1+len(code)+4+len(msg))
	p = append(p, byte(len(code)))
	p = append(p, code...)
	p = binary.BigEndian.AppendUint32(p, uint32(ms))
	return append(p, msg...)
}

// parseErrFramePayload decodes an ERR frame payload.
func parseErrFramePayload(p []byte) (code Code, retryAfter time.Duration, msg string, err error) {
	if len(p) < 1 {
		return "", 0, "", fmt.Errorf("%w: empty ERR payload", errProto)
	}
	cl := int(p[0])
	if len(p) < 1+cl+4 {
		return "", 0, "", fmt.Errorf("%w: ERR payload truncated", errProto)
	}
	code = Code(p[1 : 1+cl])
	ms := binary.BigEndian.Uint32(p[1+cl:])
	return code, time.Duration(ms) * time.Millisecond, string(p[1+cl+4:]), nil
}

// okFrame builds a success response frame.
func okFrame(id uint64, stream uint32, payload string) frame {
	return frame{typ: fvOK, id: id, stream: stream, payload: []byte(payload)}
}

// errFrame builds a failure response frame.
func errFrame(id uint64, stream uint32, code Code, retryAfter time.Duration, msg string) frame {
	return frame{typ: fvErr, id: id, stream: stream, payload: errFramePayload(code, retryAfter, msg)}
}

// frameResponse converts a response frame into the protocol-neutral
// response struct the client layers share with v1.
func frameResponse(f frame) (response, error) {
	switch f.typ {
	case fvOK:
		return response{ok: true, payload: string(f.payload)}, nil
	case fvErr:
		code, retryAfter, msg, err := parseErrFramePayload(f.payload)
		if err != nil {
			return response{}, err
		}
		return response{code: code, retryAfter: retryAfter, payload: msg}, nil
	default:
		return response{}, fmt.Errorf("%w: unexpected response frame type 0x%02x", errProto, f.typ)
	}
}
