package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"hrdb/internal/backoff"
	"hrdb/internal/hql"
	"hrdb/internal/shard"
)

// ServerError is a failure the server reported in an ERR frame (either
// protocol version).
type ServerError struct {
	Code       Code          // wire error code ("exec", "overloaded", …)
	Msg        string        // server-side error text
	RetryAfter time.Duration // backoff hint (nonzero for "overloaded"/"quota")
}

// Error implements error.
func (e *ServerError) Error() string {
	return fmt.Sprintf("server: %s: %s", e.Code, e.Msg)
}

// Is maps wire codes onto their sentinels through the code table in
// errors.go: every code matches exactly one exported error (or a context
// error), so callers use errors.Is without knowing the wire strings.
func (e *ServerError) Is(target error) bool {
	s := sentinelFor(e.Code)
	return s != nil && errors.Is(s, target)
}

// Protocol versions for WithProtocol.
const (
	// ProtocolAuto negotiates: offer v2, fall back to v1 against servers
	// that don't speak it. The default.
	ProtocolAuto = 0
	// ProtocolV1 forces the sequential line protocol.
	ProtocolV1 = 1
	// ProtocolV2 requires the framed multiplexed protocol; dialing a
	// server without it fails instead of falling back.
	ProtocolV2 = 2
)

// Option configures Dial and DialRouter: one functional-options surface
// for every client-side knob.
type Option func(*dialConfig)

// ClientOption is the pre-unification name for Option.
//
// Deprecated: use Option.
type ClientOption = Option

// RouterOption is the pre-unification name for Option.
//
// Deprecated: use Option.
type RouterOption = Option

// dialConfig collects every client and router knob.
type dialConfig struct {
	maxRetries  int
	baseBackoff time.Duration
	maxBackoff  time.Duration
	dialTimeout time.Duration
	retryAll    bool
	maxResponse int
	tenant      string
	protocol    int
	// Router-only knobs (ignored by plain Dial).
	maxStale time.Duration
	probeTTL time.Duration
}

// defaultDialConfig is the option baseline shared by Dial and DialRouter.
func defaultDialConfig() dialConfig {
	return dialConfig{
		maxRetries:  3,
		baseBackoff: 10 * time.Millisecond,
		maxBackoff:  time.Second,
		dialTimeout: 5 * time.Second,
		maxResponse: 64 << 20,
		maxStale:    500 * time.Millisecond,
		probeTTL:    100 * time.Millisecond,
	}
}

// WithMaxRetries sets how many times a failed request may be retried
// (default 3; 0 disables retries).
func WithMaxRetries(n int) Option {
	return func(o *dialConfig) { o.maxRetries = n }
}

// WithBackoff sets the exponential backoff's base and cap (defaults 10ms,
// 1s). Sleeps use full jitter: a uniform draw from (0, base·2^attempt],
// never below the server's Retry-After hint.
func WithBackoff(base, max time.Duration) Option {
	return func(o *dialConfig) {
		if base > 0 {
			o.baseBackoff = base
		}
		if max > 0 {
			o.maxBackoff = max
		}
	}
}

// WithDialTimeout bounds each connection attempt (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(o *dialConfig) { o.dialTimeout = d }
}

// WithRetryNonIdempotent opts in to retrying mutating statements after
// ambiguous failures (connection severed before the reply). By default
// only read-only scripts are retried then — a mutation whose reply was
// lost may have committed, and blind re-execution would double-apply it.
// Shed requests ("overloaded", "quota") are always retried: the server
// guarantees they were never executed.
func WithRetryNonIdempotent(enabled bool) Option {
	return func(o *dialConfig) { o.retryAll = enabled }
}

// WithTenant names the server-side namespace this client's statements run
// in. Resolved during the handshake: protocol v2 carries it in HELLO, the
// v1 fallback sends USE after connecting. Dialing a server that does not
// know the tenant fails with ErrUnknownTenant.
func WithTenant(name string) Option {
	return func(o *dialConfig) { o.tenant = name }
}

// WithProtocol pins the wire protocol: ProtocolAuto (default, negotiate
// with fallback), ProtocolV1, or ProtocolV2 (fail rather than fall back).
func WithProtocol(v int) Option {
	return func(o *dialConfig) {
		if v == ProtocolV1 || v == ProtocolV2 {
			o.protocol = v
		} else {
			o.protocol = ProtocolAuto
		}
	}
}

// Client is a connection to a Server with automatic protocol negotiation,
// reconnect, deadline plumbing, and retry with exponential backoff. A
// Client is safe for concurrent use: on protocol v2, concurrent requests
// pipeline over one connection and complete out of order; on v1 they
// serialize. Close may be called at any time, including with requests in
// flight — they fail with ErrClientClosed rather than delaying Close.
type Client struct {
	addr string
	o    dialConfig

	// reqMu serializes v1 round trips (the line protocol admits one
	// request at a time); v2 requests bypass it. connMu guards connection
	// state and is never held across network I/O, so Close can always
	// acquire it.
	reqMu sync.Mutex

	connMu sync.Mutex
	closed bool
	conn   net.Conn      // v1 mode
	br     *bufio.Reader // v1 mode
	c2     *conn2        // v2 mode (exactly one of conn/c2 is set)
	tenant string        // namespace confirmed by the server ("" = default)
}

// Dial connects to a server. The initial connection — including the
// protocol handshake and tenant resolution — is established eagerly so
// configuration errors surface immediately; later disconnects repair
// themselves on the next call.
func Dial(addr string, opts ...Option) (*Client, error) {
	o := defaultDialConfig()
	for _, opt := range opts {
		opt(&o)
	}
	c := &Client{addr: addr, o: o}
	c.connMu.Lock()
	err := c.connectLocked()
	c.connMu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) dial() (net.Conn, error) {
	return net.DialTimeout("tcp", c.addr, c.o.dialTimeout)
}

// Tenant returns the namespace the server confirmed for this client
// ("default" once connected with no tenant requested; empty before any
// tenant-aware handshake, e.g. plain v1 without USE).
func (c *Client) Tenant() string {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.tenant
}

// connectLocked dials and negotiates. Callers hold c.connMu. On return
// either c.c2 (v2) or c.conn/c.br (v1) is live.
func (c *Client) connectLocked() error {
	if c.o.protocol == ProtocolV1 {
		conn, err := c.dial()
		if err != nil {
			return err
		}
		return c.setupV1(conn)
	}
	conn, err := c.dial()
	if err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	// The upgrade offer rides v1 text framing so a pre-v2 server parses it
	// as an unknown verb and answers ERR proto before closing.
	hello := "HELLO 2\n"
	if c.o.tenant != "" {
		hello = "HELLO 2 " + c.o.tenant + "\n"
	}
	if _, err := io.WriteString(conn, hello); err != nil {
		conn.Close()
		return err
	}
	resp, err := readResponse(br, c.o.maxResponse)
	if err != nil {
		conn.Close()
		return err
	}
	if resp.ok {
		fields := strings.Fields(resp.payload)
		if len(fields) == 0 || fields[0] != "v2" {
			conn.Close()
			return fmt.Errorf("%w: unexpected HELLO reply %q", ErrProtocol, resp.payload)
		}
		c.tenant = c.o.tenant
		for _, f := range fields[1:] {
			if t, ok := strings.CutPrefix(f, "tenant="); ok {
				c.tenant = t
			}
		}
		c.c2 = newConn2(conn, br, c.o.maxResponse)
		return nil
	}
	conn.Close()
	if resp.code == codeProto && c.o.protocol == ProtocolAuto {
		// Pre-v2 server: redial and speak the line protocol.
		v1conn, err := c.dial()
		if err != nil {
			return err
		}
		return c.setupV1(v1conn)
	}
	return &ServerError{Code: resp.code, Msg: resp.payload, RetryAfter: resp.retryAfter}
}

// setupV1 finishes a v1 connection: resolve the tenant with USE when one
// was requested (a server too old for USE answers ERR proto, which
// surfaces — the namespace cannot be silently ignored).
func (c *Client) setupV1(conn net.Conn) error {
	br := bufio.NewReader(conn)
	if c.o.tenant != "" {
		if _, err := io.WriteString(conn, "USE "+c.o.tenant+"\n"); err != nil {
			conn.Close()
			return err
		}
		resp, err := readResponse(br, c.o.maxResponse)
		if err != nil {
			conn.Close()
			return err
		}
		if !resp.ok {
			conn.Close()
			return &ServerError{Code: resp.code, Msg: resp.payload, RetryAfter: resp.retryAfter}
		}
		c.tenant = strings.TrimPrefix(resp.payload, "tenant=")
	}
	c.conn = conn
	c.br = br
	return nil
}

// Close closes the connection and marks the client unusable. In-flight
// requests — pipelined v2 waiters and any v1 round trip — fail with
// ErrClientClosed instead of delaying Close or leaking their goroutines.
func (c *Client) Close() error {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	var err error
	if c.c2 != nil {
		err = c.c2.close()
		c.c2 = nil
	}
	if c.conn != nil {
		if cerr := c.conn.Close(); err == nil {
			err = cerr
		}
		c.conn = nil
		c.br = nil
	}
	return err
}

// isClosed reports whether Close has run.
func (c *Client) isClosed() bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.closed
}

// ensure returns the live connection in exactly one mode: (c2, nil, nil)
// for v2, (nil, conn, br) for v1; dialing and negotiating if needed.
func (c *Client) ensure() (*conn2, net.Conn, *bufio.Reader, error) {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.closed {
		return nil, nil, nil, ErrClientClosed
	}
	if c.c2 != nil {
		if c.c2.alive() {
			return c.c2, nil, nil, nil
		}
		c.c2 = nil
	}
	if c.conn != nil {
		return nil, c.conn, c.br, nil
	}
	if err := c.connectLocked(); err != nil {
		return nil, nil, nil, err
	}
	if c.c2 != nil {
		return c.c2, nil, nil, nil
	}
	return nil, c.conn, c.br, nil
}

// discardConn drops a v1 connection whose stream state is unknown.
func (c *Client) discardConn() {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.br = nil
	}
}

// Exec executes an HQL script and returns its output. The ctx deadline is
// propagated to the server (which enforces it during execution) and
// bounds the whole call including backoff sleeps.
//
// Retry policy: "overloaded"/"quota"/"shutdown" replies are definitive
// not-executed signals and are always retried (with backoff, honoring
// Retry-After). Ambiguous failures — the connection died before a reply —
// are retried only when the script is read-only (hql.ReadOnly) or the
// client was built WithRetryNonIdempotent. Definitive statement failures
// ("exec", "deadline", "panic", …) are never retried.
func (c *Client) Exec(ctx context.Context, input string) (string, error) {
	return c.execRetry(ctx, "EXEC", fvExec, input, hql.ReadOnlyScript(input))
}

// ExecShard runs one encoded shard operation (internal/shard wire format)
// and returns its response. The transport, deadline, and retry machinery is
// Exec's; only the verb differs (EXECSHARD / the EXECSHARD frame) and the
// idempotence predicate is shard.OpIdempotent instead of hql.ReadOnlyScript
// — every shard operation is retry-safe (reads are pure, 2PC verbs are
// gid-guarded on the participant).
func (c *Client) ExecShard(ctx context.Context, op string) (string, error) {
	return c.execRetry(ctx, "EXECSHARD", fvExecShard, op, shard.OpIdempotent(op))
}

// ShardMap asks the server for its shard identity. Answered inline (like
// PING), so it works against a saturated admission queue. Servers without a
// shard node answer ErrUnsupported.
func (c *Client) ShardMap(ctx context.Context) (id, count int, err error) {
	out, err := c.inlineVerb(ctx, "SHARDMAP")
	if err != nil {
		return 0, 0, err
	}
	return parseShardMap(out)
}

// parseShardMap decodes a SHARDMAP reply: exactly "<shard_id> <shard_count>".
func parseShardMap(out string) (id, count int, err error) {
	fields := strings.Fields(strings.TrimSpace(out))
	if len(fields) != 2 {
		return 0, 0, fmt.Errorf("%w: bad SHARDMAP reply %q", ErrProtocol, out)
	}
	id, err1 := strconv.Atoi(fields[0])
	count, err2 := strconv.Atoi(fields[1])
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("%w: bad SHARDMAP reply %q", ErrProtocol, out)
	}
	return id, count, nil
}

// execRetry is the shared retry loop behind Exec and ExecShard: verb and typ
// name the request in each protocol, idempotent gates retry after ambiguous
// transport failures.
func (c *Client) execRetry(ctx context.Context, verb string, typ byte, input string, idempotent bool) (string, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		out, err := c.roundTrip(ctx, verb, typ, input)
		if err == nil {
			return out, nil
		}
		lastErr = err

		retryable, hint := c.classify(err, idempotent)
		if !retryable || attempt >= c.o.maxRetries || ctx.Err() != nil {
			return "", lastErr
		}
		if err := sleepCtx(ctx, c.backoff(attempt, hint)); err != nil {
			return "", lastErr
		}
	}
}

// roundTrip performs one request/response exchange on whichever protocol
// the connection negotiated.
func (c *Client) roundTrip(ctx context.Context, verb string, typ byte, input string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	for {
		cc, conn, br, err := c.ensure()
		if err != nil {
			return "", err
		}
		if cc != nil {
			return c.execV2(ctx, cc, typ, input)
		}
		out, err, stale := c.execV1(ctx, conn, br, verb, input)
		if !stale {
			return out, err
		}
		// The connection changed hands while we waited for the v1 turn
		// (another goroutine hit a transport error and redialed): re-ensure.
	}
}

// execV2 runs one statement as a throwaway v2 stream: a fresh stream id,
// end-of-stream flagged on the single EXEC, responses correlated by id.
// Concurrent callers pipeline on the shared connection.
func (c *Client) execV2(ctx context.Context, cc *conn2, typ byte, input string) (string, error) {
	var timeout time.Duration
	if dl, ok := ctx.Deadline(); ok {
		timeout = time.Until(dl)
		if timeout <= 0 {
			return "", context.DeadlineExceeded
		}
	}
	resp, err := cc.do(ctx, typ, flagEndStream, cc.nextStream.Add(1), execPayload(timeout, input))
	if err != nil {
		return "", err
	}
	if !resp.ok {
		return "", &ServerError{Code: resp.code, Msg: resp.payload, RetryAfter: resp.retryAfter}
	}
	return resp.payload, nil
}

// execV1 performs one line-protocol round trip. stale=true means the
// connection identity changed before the turn came up; the caller should
// re-ensure and try again.
func (c *Client) execV1(ctx context.Context, conn net.Conn, br *bufio.Reader, verb, input string) (out string, err error, stale bool) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	c.connMu.Lock()
	switch {
	case c.closed:
		c.connMu.Unlock()
		return "", ErrClientClosed, false
	case c.conn != conn:
		c.connMu.Unlock()
		return "", nil, true
	}
	c.connMu.Unlock()

	// Deadline plumbing: the remaining ctx budget rides in the EXEC header
	// so the server enforces it during execution; the socket deadline and
	// the AfterFunc below cover the transport.
	var timeoutMS int64
	if dl, ok := ctx.Deadline(); ok {
		remain := time.Until(dl)
		if remain <= 0 {
			return "", context.DeadlineExceeded, false
		}
		timeoutMS = int64(remain / time.Millisecond)
		if timeoutMS == 0 {
			timeoutMS = 1
		}
		conn.SetDeadline(dl.Add(100 * time.Millisecond))
	} else {
		conn.SetDeadline(time.Time{})
	}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	if _, err := fmt.Fprintf(conn, "%s %d %d\n%s\n", verb, timeoutMS, len(input), input); err != nil {
		c.discardConn()
		return "", c.transportErr(ctx, err), false
	}
	resp, err := readResponse(br, c.o.maxResponse)
	if err != nil {
		c.discardConn()
		return "", c.transportErr(ctx, err), false
	}
	if !resp.ok {
		// The v1 server retires the connection after these codes; drop ours
		// in lockstep so the next request redials instead of desyncing.
		switch resp.code {
		case codePanic, codeDeadline, codeCanceled, codeShutdown, codeProto, codeTooLarge:
			c.discardConn()
		}
		return "", &ServerError{Code: resp.code, Msg: resp.payload, RetryAfter: resp.retryAfter}, false
	}
	return resp.payload, nil, false
}

// Ping performs a liveness round trip.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.inlineVerb(ctx, "PING")
	return err
}

// Stats fetches the server process's metrics in Prometheus text exposition
// format (the STATS verb). It is answered inline by the connection handler,
// so it works even when the server's admission queue is saturated.
func (c *Client) Stats(ctx context.Context) (string, error) {
	return c.inlineVerb(ctx, "STATS")
}

// inlineVerb performs one argument-less request/response exchange (the
// PING/STATS/LAG/PROMOTE/SHARDMAP family, answered inline by the
// connection handler) on whichever protocol the connection negotiated.
func (c *Client) inlineVerb(ctx context.Context, verb string) (string, error) {
	for {
		cc, conn, br, err := c.ensure()
		if err != nil {
			return "", err
		}
		if cc != nil {
			var typ byte
			switch verb {
			case "PING":
				typ = fvPing
			case "STATS":
				typ = fvStats
			case "LAG":
				typ = fvLag
			case "PROMOTE":
				typ = fvPromote
			case "SHARDMAP":
				typ = fvShardMap
			default:
				return "", fmt.Errorf("%w: no v2 frame for verb %s", ErrProtocol, verb)
			}
			resp, err := cc.do(ctx, typ, 0, 0, nil)
			if err != nil {
				return "", err
			}
			if !resp.ok {
				return "", &ServerError{Code: resp.code, Msg: resp.payload, RetryAfter: resp.retryAfter}
			}
			return resp.payload, nil
		}
		out, err, stale := c.inlineVerbV1(ctx, conn, br, verb)
		if !stale {
			return out, err
		}
	}
}

// inlineVerbV1 is the line-protocol leg of inlineVerb.
func (c *Client) inlineVerbV1(ctx context.Context, conn net.Conn, br *bufio.Reader, verb string) (out string, err error, stale bool) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	c.connMu.Lock()
	switch {
	case c.closed:
		c.connMu.Unlock()
		return "", ErrClientClosed, false
	case c.conn != conn:
		c.connMu.Unlock()
		return "", nil, true
	}
	c.connMu.Unlock()

	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if _, err := io.WriteString(conn, verb+"\n"); err != nil {
		c.discardConn()
		return "", c.transportErr(ctx, err), false
	}
	resp, err := readResponse(br, c.o.maxResponse)
	if err != nil {
		c.discardConn()
		return "", c.transportErr(ctx, err), false
	}
	if !resp.ok {
		return "", &ServerError{Code: resp.code, Msg: resp.payload, RetryAfter: resp.retryAfter}, false
	}
	return resp.payload, nil, false
}

// transportErr maps a transport failure to its real cause: the context's
// error when the AfterFunc severed the connection, ErrClientClosed when a
// concurrent Close did.
func (c *Client) transportErr(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	if c.isClosed() {
		return ErrClientClosed
	}
	return err
}

// classify decides whether an error may be retried and extracts the
// server's backoff hint.
func (c *Client) classify(err error, idempotent bool) (retryable bool, hint time.Duration) {
	var se *ServerError
	if errors.As(err, &se) {
		switch se.Code {
		case codeOverloaded, codeShutdown, codeQuota:
			// Definitive not-executed: safe for any statement.
			return true, se.RetryAfter
		default:
			return false, 0
		}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false, 0
	}
	// A locally closed client must not resurrect itself.
	if errors.Is(err, ErrClientClosed) || errors.Is(err, net.ErrClosed) {
		return false, 0
	}
	// Transport error: the request may or may not have executed.
	return idempotent || c.o.retryAll, 0
}

// backoff returns the sleep before retry attempt+1: full jitter over an
// exponentially growing window, floored at the server's hint. The policy
// lives in internal/backoff and is shared with the replication follower's
// reconnect loop, so every reconnecting component paces identically.
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	return backoff.Policy{Base: c.o.baseBackoff, Max: c.o.maxBackoff}.Delay(attempt, hint)
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	return backoff.Sleep(ctx, d)
}
