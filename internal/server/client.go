package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"hrdb/internal/hql"
)

// ErrOverloaded is the client-side sentinel for a request the server shed
// (admission queue or connection limit). The statement was NOT executed,
// so retrying is always safe; the client does so automatically, honoring
// the server's Retry-After hint. Match with errors.Is.
var ErrOverloaded = errors.New("server overloaded")

// ServerError is a failure the server reported in an ERR frame.
type ServerError struct {
	Code       string        // protocol error code ("exec", "overloaded", …)
	Msg        string        // server-side error text
	RetryAfter time.Duration // backoff hint (nonzero for "overloaded")
}

// Error implements error.
func (e *ServerError) Error() string {
	return fmt.Sprintf("server: %s: %s", e.Code, e.Msg)
}

// Is maps protocol codes onto standard sentinels: "overloaded" and
// "shutdown" match ErrOverloaded / ErrServerClosed, "deadline" and
// "canceled" match the context errors, so callers use errors.Is without
// knowing the wire codes.
func (e *ServerError) Is(target error) bool {
	switch e.Code {
	case codeOverloaded:
		return target == ErrOverloaded
	case codeShutdown:
		return target == ErrServerClosed
	case codeDeadline:
		return target == context.DeadlineExceeded
	case codeCanceled:
		return target == context.Canceled
	}
	return false
}

// ClientOption configures Dial.
type ClientOption func(*clientOptions)

type clientOptions struct {
	maxRetries  int
	baseBackoff time.Duration
	maxBackoff  time.Duration
	dialTimeout time.Duration
	retryAll    bool
	maxResponse int
}

// WithMaxRetries sets how many times a failed request may be retried
// (default 3; 0 disables retries).
func WithMaxRetries(n int) ClientOption {
	return func(o *clientOptions) { o.maxRetries = n }
}

// WithBackoff sets the exponential backoff's base and cap (defaults 10ms,
// 1s). Sleeps use full jitter: a uniform draw from (0, base·2^attempt],
// never below the server's Retry-After hint.
func WithBackoff(base, max time.Duration) ClientOption {
	return func(o *clientOptions) {
		if base > 0 {
			o.baseBackoff = base
		}
		if max > 0 {
			o.maxBackoff = max
		}
	}
}

// WithDialTimeout bounds each connection attempt (default 5s).
func WithDialTimeout(d time.Duration) ClientOption {
	return func(o *clientOptions) { o.dialTimeout = d }
}

// WithRetryNonIdempotent opts in to retrying mutating statements after
// ambiguous failures (connection severed before the reply). By default
// only read-only scripts are retried then — a mutation whose reply was
// lost may have committed, and blind re-execution would double-apply it.
// Shed requests ("overloaded") are always retried: the server guarantees
// they were never executed.
func WithRetryNonIdempotent(enabled bool) ClientOption {
	return func(o *clientOptions) { o.retryAll = enabled }
}

// Client is a connection to a Server with automatic reconnect, deadline
// plumbing, and retry with exponential backoff. A Client is safe for
// concurrent use; requests are serialized over one connection. Close may
// be called at any time, including while a request is in flight — it
// severs the connection, failing the in-flight call, rather than waiting
// behind it.
type Client struct {
	addr string
	o    clientOptions

	// reqMu serializes round trips; connMu guards connection state and is
	// never held across network I/O, so Close can always acquire it.
	reqMu sync.Mutex

	connMu sync.Mutex
	closed bool
	conn   net.Conn
	br     *bufio.Reader
}

// Dial connects to a server. The initial connection is established eagerly
// so configuration errors surface immediately; later disconnects repair
// themselves on the next call.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	o := clientOptions{
		maxRetries:  3,
		baseBackoff: 10 * time.Millisecond,
		maxBackoff:  time.Second,
		dialTimeout: 5 * time.Second,
		maxResponse: 64 << 20,
	}
	for _, opt := range opts {
		opt(&o)
	}
	c := &Client{addr: addr, o: o}
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	return c, nil
}

func (c *Client) dial() (net.Conn, error) {
	return net.DialTimeout("tcp", c.addr, c.o.dialTimeout)
}

// Close closes the connection and marks the client unusable. An in-flight
// request fails with a transport error instead of delaying Close.
func (c *Client) Close() error {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	c.br = nil
	return err
}

// Exec executes an HQL script and returns its output. The ctx deadline is
// propagated to the server (which enforces it during execution) and
// bounds the whole call including backoff sleeps.
//
// Retry policy: "overloaded"/"shutdown" replies are definitive
// not-executed signals and are always retried (with backoff, honoring
// Retry-After). Ambiguous failures — the connection died before a reply —
// are retried only when the script is read-only (hql.ReadOnly) or the
// client was built WithRetryNonIdempotent. Definitive statement failures
// ("exec", "deadline", "panic", …) are never retried.
func (c *Client) Exec(ctx context.Context, input string) (string, error) {
	idempotent := hql.ReadOnlyScript(input)
	var lastErr error
	for attempt := 0; ; attempt++ {
		out, err := c.roundTrip(ctx, input)
		if err == nil {
			return out, nil
		}
		lastErr = err

		retryable, hint := c.classify(err, idempotent)
		if !retryable || attempt >= c.o.maxRetries || ctx.Err() != nil {
			return "", lastErr
		}
		if err := sleepCtx(ctx, c.backoff(attempt, hint)); err != nil {
			return "", lastErr
		}
	}
}

// Ping performs a liveness round trip.
func (c *Client) Ping(ctx context.Context) error {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	conn, br, err := c.ensureConn()
	if err != nil {
		return err
	}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if _, err := fmt.Fprintf(conn, "PING\n"); err != nil {
		c.discardConn()
		return err
	}
	resp, err := readResponse(br, c.o.maxResponse)
	if err != nil {
		c.discardConn()
		return err
	}
	if !resp.ok {
		return &ServerError{Code: resp.code, Msg: resp.payload, RetryAfter: resp.retryAfter}
	}
	return nil
}

// Stats fetches the server process's metrics in Prometheus text exposition
// format (the STATS verb). It is answered inline by the connection handler,
// so it works even when the server's admission queue is saturated.
func (c *Client) Stats(ctx context.Context) (string, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	conn, br, err := c.ensureConn()
	if err != nil {
		return "", err
	}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if _, err := fmt.Fprintf(conn, "STATS\n"); err != nil {
		c.discardConn()
		return "", ctxPreferred(ctx, err)
	}
	resp, err := readResponse(br, c.o.maxResponse)
	if err != nil {
		c.discardConn()
		return "", ctxPreferred(ctx, err)
	}
	if !resp.ok {
		return "", &ServerError{Code: resp.code, Msg: resp.payload, RetryAfter: resp.retryAfter}
	}
	return resp.payload, nil
}

// classify decides whether an error may be retried and extracts the
// server's backoff hint.
func (c *Client) classify(err error, idempotent bool) (retryable bool, hint time.Duration) {
	var se *ServerError
	if errors.As(err, &se) {
		switch se.Code {
		case codeOverloaded, codeShutdown:
			// Definitive not-executed: safe for any statement.
			return true, se.RetryAfter
		default:
			return false, 0
		}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false, 0
	}
	// net.ErrClosed means this client was Closed locally; don't resurrect it.
	if errors.Is(err, net.ErrClosed) {
		return false, 0
	}
	// Transport error: the request may or may not have executed.
	return idempotent || c.o.retryAll, 0
}

// backoff returns the sleep before retry attempt+1: full jitter over an
// exponentially growing window, floored at the server's hint.
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	window := c.o.baseBackoff << uint(attempt)
	if window > c.o.maxBackoff || window <= 0 {
		window = c.o.maxBackoff
	}
	d := time.Duration(rand.Int63n(int64(window))) + 1
	if d < hint {
		d = hint
	}
	return d
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ensureConn (re)establishes the connection. Callers hold c.reqMu, so the
// returned conn/br pair is theirs to use until they release it.
func (c *Client) ensureConn() (net.Conn, *bufio.Reader, error) {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.closed {
		return nil, nil, net.ErrClosed
	}
	if c.conn != nil {
		return c.conn, c.br, nil
	}
	conn, err := c.dial()
	if err != nil {
		return nil, nil, err
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	return conn, c.br, nil
}

// discardConn drops a connection whose stream state is unknown.
func (c *Client) discardConn() {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.br = nil
	}
}

// roundTrip performs one request/response exchange.
func (c *Client) roundTrip(ctx context.Context, input string) (string, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	if err := ctx.Err(); err != nil {
		return "", err
	}
	conn, br, err := c.ensureConn()
	if err != nil {
		return "", err
	}
	// Deadline plumbing: the remaining ctx budget rides in the EXEC header
	// so the server enforces it during execution; the socket deadline and
	// the AfterFunc below cover the transport.
	var timeoutMS int64
	if dl, ok := ctx.Deadline(); ok {
		remain := time.Until(dl)
		if remain <= 0 {
			return "", context.DeadlineExceeded
		}
		timeoutMS = int64(remain / time.Millisecond)
		if timeoutMS == 0 {
			timeoutMS = 1
		}
		conn.SetDeadline(dl.Add(100 * time.Millisecond))
	} else {
		conn.SetDeadline(time.Time{})
	}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	if _, err := fmt.Fprintf(conn, "EXEC %d %d\n%s\n", timeoutMS, len(input), input); err != nil {
		c.discardConn()
		return "", ctxPreferred(ctx, err)
	}
	resp, err := readResponse(br, c.o.maxResponse)
	if err != nil {
		c.discardConn()
		return "", ctxPreferred(ctx, err)
	}
	if !resp.ok {
		// The server retires the connection after these codes; drop ours in
		// lockstep so the next request redials instead of desyncing.
		switch resp.code {
		case codePanic, codeDeadline, codeCanceled, codeShutdown, codeProto, codeTooLarge:
			c.discardConn()
		}
		return "", &ServerError{Code: resp.code, Msg: resp.payload, RetryAfter: resp.retryAfter}
	}
	return resp.payload, nil
}

// ctxPreferred reports the context's error when it caused the transport
// failure (the AfterFunc closed the conn), else the transport error.
func ctxPreferred(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return err
}
