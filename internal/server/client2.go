package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// conn2 is one negotiated protocol v2 connection: a writer shared by all
// requests (frame-at-a-time), a reader goroutine that routes response
// frames to waiters by request id, and the waiter table itself. Callers
// pipeline freely; responses arrive in completion order.
type conn2 struct {
	c           net.Conn
	br          *bufio.Reader
	maxResponse int

	wmu        sync.Mutex // serializes frame writes
	nextID     atomic.Uint64
	nextStream atomic.Uint32

	mu      sync.Mutex
	err     error // terminal failure; nil while healthy
	closed  bool  // Close() ran locally
	waiters map[uint64]chan response
}

// newConn2 wraps a negotiated connection and starts its reader.
func newConn2(c net.Conn, br *bufio.Reader, maxResponse int) *conn2 {
	cc := &conn2{c: c, br: br, maxResponse: maxResponse, waiters: make(map[uint64]chan response)}
	go cc.readLoop()
	return cc
}

// alive reports whether the connection can still carry requests.
func (cc *conn2) alive() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err == nil
}

// close is the local Close: closing the socket makes the reader fail every
// outstanding waiter with ErrClientClosed. Safe to call multiple times and
// concurrently with in-flight requests — that is the point.
func (cc *conn2) close() error {
	cc.mu.Lock()
	cc.closed = true
	cc.mu.Unlock()
	// Best-effort goodbye so the server tears the connection down without
	// logging a read error; the close below is what actually ends things.
	cc.wmu.Lock()
	writeFrame(cc.c, frame{typ: fvGoodbye, id: cc.nextID.Add(1)})
	cc.wmu.Unlock()
	return cc.c.Close()
}

// fail poisons the connection and wakes every waiter. The first terminal
// error wins; a locally closed connection always reports ErrClientClosed.
func (cc *conn2) fail(err error) {
	cc.mu.Lock()
	if cc.closed {
		err = ErrClientClosed
	}
	if cc.err == nil {
		cc.err = err
	}
	ws := cc.waiters
	cc.waiters = make(map[uint64]chan response)
	cc.mu.Unlock()
	cc.c.Close()
	for _, ch := range ws {
		close(ch) // closed channel = transport failure; see do()
	}
}

// lastErr returns the terminal error (ErrClientClosed after a local
// Close).
func (cc *conn2) lastErr() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err != nil {
		return cc.err
	}
	return fmt.Errorf("%w: connection failed", ErrProtocol)
}

// readLoop routes response frames to their waiters until the connection
// dies. Responses for forgotten ids (canceled requests) are dropped.
func (cc *conn2) readLoop() {
	for {
		f, err := readFrame(cc.br, cc.maxResponse)
		if err != nil {
			cc.fail(err)
			return
		}
		resp, err := frameResponse(f)
		if err != nil {
			cc.fail(err)
			return
		}
		cc.mu.Lock()
		ch := cc.waiters[f.id]
		delete(cc.waiters, f.id)
		cc.mu.Unlock()
		if ch != nil {
			ch <- resp // buffered; never blocks the reader
		}
	}
}

// forget deregisters a waiter; reports whether it was still registered.
func (cc *conn2) forget(id uint64) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if _, ok := cc.waiters[id]; !ok {
		return false
	}
	delete(cc.waiters, id)
	return true
}

// write sends one frame.
func (cc *conn2) write(f frame) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	return writeFrame(cc.c, f)
}

// do performs one pipelined round trip: register a waiter, send the frame,
// wait for the correlated response. On ctx expiry it deregisters, fires a
// best-effort CANCEL, and returns the ctx error — the connection stays
// usable for everyone else.
func (cc *conn2) do(ctx context.Context, typ, flags byte, stream uint32, payload []byte) (response, error) {
	if err := ctx.Err(); err != nil {
		return response{}, err
	}
	id := cc.nextID.Add(1)
	ch := make(chan response, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return response{}, err
	}
	cc.waiters[id] = ch
	cc.mu.Unlock()

	if err := cc.write(frame{typ: typ, flags: flags, id: id, stream: stream, payload: payload}); err != nil {
		cc.forget(id)
		cc.fail(err)
		return response{}, cc.lastErr()
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return response{}, cc.lastErr()
		}
		return resp, nil
	case <-ctx.Done():
		if cc.forget(id) {
			cc.write(frame{typ: fvCancel, id: id, stream: stream})
		}
		return response{}, ctx.Err()
	}
}

// Stream is a logical sub-connection multiplexed over a protocol v2
// client: statements on one Stream execute in order on one server-side
// session — so a transaction can span Exec calls — while other Streams
// (and plain Client.Exec calls) proceed concurrently on the same socket.
//
// A Stream does not retry: its statements are positional (a retried BEGIN
// or COMMIT on a fresh connection would not mean the same thing), so
// transport failures and server errors surface directly. A statement
// abandoned mid-execution (deadline, cancel) retires the stream server-side;
// subsequent Execs answer "canceled" and the caller should open a new
// Stream.
type Stream struct {
	cc *conn2
	id uint32

	mu     sync.Mutex
	closed bool
}

// Stream opens a new logical stream. Requires protocol v2; on a v1
// connection it fails with ErrUnsupported.
func (c *Client) Stream() (*Stream, error) {
	cc, _, _, err := c.ensure()
	if err != nil {
		return nil, err
	}
	if cc == nil {
		return nil, fmt.Errorf("%w: streams require protocol v2", ErrUnsupported)
	}
	return &Stream{cc: cc, id: cc.nextStream.Add(1)}, nil
}

// Exec runs one statement on the stream's server-side session. Calls are
// serialized per stream (FIFO is the point of a stream); the ctx deadline
// rides to the server like Client.Exec's.
func (st *Stream) Exec(ctx context.Context, input string) (string, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return "", ErrClientClosed
	}
	var timeout time.Duration
	if dl, ok := ctx.Deadline(); ok {
		timeout = time.Until(dl)
		if timeout <= 0 {
			return "", context.DeadlineExceeded
		}
	}
	resp, err := st.cc.do(ctx, fvExec, 0, st.id, execPayload(timeout, input))
	if err != nil {
		return "", err
	}
	if !resp.ok {
		return "", &ServerError{Code: resp.code, Msg: resp.payload, RetryAfter: resp.retryAfter}
	}
	return resp.payload, nil
}

// Close disposes the stream's server-side session (fire-and-forget
// ENDSTREAM; no reply). Further Execs fail with ErrClientClosed.
func (st *Stream) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	return st.cc.write(frame{typ: fvEndStream, id: st.cc.nextID.Add(1), stream: st.id})
}
