package server

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// waitParked blocks until n statements are parked on the gate.
func waitParked(t *testing.T, gate *gateTarget, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for gate.waiting.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d statements parked", gate.waiting.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitAnswered blocks until the server has recorded more request latencies
// than before — i.e. it has written at least one more reply. The latency
// histogram is observed at reply time on both protocols, so this is the
// reliable "the server answered" synchronization point (the client can
// return earlier off its own local ctx timer).
func waitAnswered(t *testing.T, before uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for metricRequestNS.Snapshot().Count == before {
		if time.Now().After(deadline) {
			t.Fatal("server never answered")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMuxPipeliningOutOfOrder is the point of protocol v2: two requests
// pipelined on ONE connection complete out of order — a fast read overtakes
// a slow mutation instead of queueing behind it the way v1's one-at-a-time
// line protocol forces.
func TestMuxPipeliningOutOfOrder(t *testing.T) {
	gate := &gateTarget{Target: newMemTarget(t), gate: make(chan struct{})}
	srv := startServer(t, gate, Options{Workers: 2, QueueDepth: 8})
	release := sync.OnceFunc(func() { close(gate.gate) })
	t.Cleanup(release)

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	c.connMu.Lock()
	v2 := c.c2 != nil
	c.connMu.Unlock()
	if !v2 {
		t.Fatal("auto-negotiation did not land on protocol v2")
	}
	ctx := context.Background()

	order := make(chan string, 2)
	var slowErr, fastErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, slowErr = c.Exec(ctx, "ASSERT Flies (Tweety);") // parks on the gate
		order <- "slow"
	}()
	waitParked(t, gate, 1)

	var fastOut string
	wg.Add(1)
	go func() {
		defer wg.Done()
		fastOut, fastErr = c.Exec(ctx, "HOLDS Flies (Bird);")
		order <- "fast"
	}()

	if first := <-order; first != "fast" {
		t.Fatalf("completion order: %q finished first, want the fast read to overtake", first)
	}
	release()
	<-order
	wg.Wait()
	if slowErr != nil || fastErr != nil {
		t.Fatalf("slow err %v, fast err %v", slowErr, fastErr)
	}
	if strings.TrimSpace(fastOut) != "true" {
		t.Fatalf("fast HOLDS = %q, want true", fastOut)
	}
}

// TestStreamTransactionAcrossExecs: statements on one Stream share one
// server-side session, so BEGIN/ASSERT/COMMIT may arrive as separate Exec
// calls; plain Client.Exec calls on the same socket use other sessions and
// never see the open transaction.
func TestStreamTransactionAcrossExecs(t *testing.T) {
	srv := startServer(t, newMemTarget(t), Options{Workers: 2})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx := context.Background()

	st, err := c.Stream()
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	for _, stmt := range []string{"BEGIN;", "ASSERT Flies (Tweety);"} {
		if _, err := st.Exec(ctx, stmt); err != nil {
			t.Fatalf("stream %q: %v", stmt, err)
		}
	}
	// A different session on the same connection is outside the stream's
	// transaction: COMMIT there is an error, proving session isolation.
	if _, err := c.Exec(ctx, "COMMIT;"); err == nil {
		t.Fatal("COMMIT on a non-stream session found an open transaction")
	}
	out, err := st.Exec(ctx, "COMMIT;")
	if err != nil {
		t.Fatalf("stream COMMIT: %v", err)
	}
	if !strings.Contains(out, "committed 1 operations") {
		t.Fatalf("COMMIT output %q", out)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("stream Close: %v", err)
	}
	if _, err := st.Exec(ctx, "HOLDS Flies (Bird);"); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Exec on closed stream: %v, want ErrClientClosed", err)
	}

	// Streams are a v2 construct; a v1 connection says so explicitly.
	c1, err := Dial(srv.Addr(), WithProtocol(ProtocolV1))
	if err != nil {
		t.Fatalf("Dial v1: %v", err)
	}
	defer c1.Close()
	if _, err := c1.Stream(); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Stream on v1: %v, want ErrUnsupported", err)
	}
}

// TestCancelFrameLeavesConnectionUsable: canceling a pipelined request
// kills that request (the server answers "canceled" promptly, while the
// statement is still parked) and nothing else — the same connection keeps
// serving other requests, unlike v1 where abandoning a statement retired
// the whole connection.
func TestCancelFrameLeavesConnectionUsable(t *testing.T) {
	gate := &gateTarget{Target: newMemTarget(t), gate: make(chan struct{})}
	srv := startServer(t, gate, Options{Workers: 2, QueueDepth: 8})
	release := sync.OnceFunc(func() { close(gate.gate) })
	t.Cleanup(release)

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	answered := metricRequestNS.Snapshot().Count
	errc := make(chan error, 1)
	go func() {
		_, err := c.Exec(ctx, "ASSERT Flies (Tweety);")
		errc <- err
	}()
	waitParked(t, gate, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Exec: %v, want context.Canceled", err)
	}
	// The server answers the canceled request while its statement is still
	// parked — the worker is occupied, but the connection is not.
	waitAnswered(t, answered)
	if gate.waiting.Load() != 1 {
		t.Fatalf("statement should still be parked, waiting=%d", gate.waiting.Load())
	}
	out, err := c.Exec(context.Background(), "HOLDS Flies (Bird);")
	if err != nil || strings.TrimSpace(out) != "true" {
		t.Fatalf("Exec after cancel = %q, %v; want true", out, err)
	}
}

// TestDeadlineRetiresStreamNotConnection: a statement abandoned at its
// deadline poisons only its stream — later Execs on that stream answer
// "canceled" — while new streams on the same connection keep working.
func TestDeadlineRetiresStreamNotConnection(t *testing.T) {
	gate := &gateTarget{Target: newMemTarget(t), gate: make(chan struct{})}
	srv := startServer(t, gate, Options{Workers: 2, QueueDepth: 8})
	release := sync.OnceFunc(func() { close(gate.gate) })
	t.Cleanup(release)

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	st, err := c.Stream()
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	answered := metricRequestNS.Snapshot().Count
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := st.Exec(ctx, "ASSERT Flies (Tweety);"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("gated stream Exec: %v, want deadline", err)
	}
	// Wait for the server's reply (it may trail the client's local timer),
	// after which the stream is retired or in the process of retiring.
	waitAnswered(t, answered)
	_, err = st.Exec(context.Background(), "HOLDS Flies (Bird);")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Exec on retired stream: %v, want canceled", err)
	}
	// The connection survives: plain Execs (fresh streams) still work.
	out, err := c.Exec(context.Background(), "HOLDS Flies (Bird);")
	if err != nil || strings.TrimSpace(out) != "true" {
		t.Fatalf("Exec after stream retirement = %q, %v; want true", out, err)
	}
}

// TestTenantNamespaceIsolation: a named tenant is its own catalog, resolved
// at HELLO on v2 and via USE on v1; statements in one namespace are
// invisible in the other.
func TestTenantNamespaceIsolation(t *testing.T) {
	srv := startServer(t, newMemTarget(t), Options{
		Tenants: []TenantConfig{{Name: "mux-iso-acme"}},
	})
	ctx := context.Background()

	for _, proto := range []struct {
		name string
		opt  Option
	}{
		{"v2-hello", WithProtocol(ProtocolAuto)},
		{"v1-use", WithProtocol(ProtocolV1)},
	} {
		t.Run(proto.name, func(t *testing.T) {
			ct, err := Dial(srv.Addr(), proto.opt, WithTenant("mux-iso-acme"))
			if err != nil {
				t.Fatalf("Dial tenant: %v", err)
			}
			defer ct.Close()
			if got := ct.Tenant(); got != "mux-iso-acme" {
				t.Fatalf("Tenant() = %q", got)
			}
			cd, err := Dial(srv.Addr(), proto.opt)
			if err != nil {
				t.Fatalf("Dial default: %v", err)
			}
			defer cd.Close()

			// The fixture relation lives only in the default namespace.
			out, err := ct.Exec(ctx, "SHOW RELATIONS;")
			if err != nil {
				t.Fatalf("tenant SHOW RELATIONS: %v", err)
			}
			if strings.Contains(out, "Flies") {
				t.Fatalf("tenant namespace sees the default catalog: %q", out)
			}
			out, err = cd.Exec(ctx, "SHOW RELATIONS;")
			if err != nil || !strings.Contains(out, "Flies") {
				t.Fatalf("default SHOW RELATIONS = %q, %v", out, err)
			}

			// And writes go the other way: a hierarchy created in the tenant
			// namespace never shows up in the default one.
			zoo := "Zoo" + strings.ReplaceAll(proto.name, "-", "")
			if _, err := ct.Exec(ctx, "CREATE HIERARCHY "+zoo+";"); err != nil {
				t.Fatalf("tenant CREATE HIERARCHY: %v", err)
			}
			out, err = cd.Exec(ctx, "SHOW HIERARCHIES;")
			if err != nil || strings.Contains(out, zoo) {
				t.Fatalf("default namespace sees tenant hierarchy: %q, %v", out, err)
			}
		})
	}
}

// TestUnknownTenantFailsDial: naming a tenant the server does not serve is
// a hard, typed failure at Dial on both protocols.
func TestUnknownTenantFailsDial(t *testing.T) {
	srv := startServer(t, newMemTarget(t), Options{})
	for _, proto := range []Option{WithProtocol(ProtocolAuto), WithProtocol(ProtocolV1)} {
		if _, err := Dial(srv.Addr(), proto, WithTenant("mux-no-such-tenant")); !errors.Is(err, ErrUnknownTenant) {
			t.Errorf("Dial unknown tenant: %v, want ErrUnknownTenant", err)
		}
	}
}

// TestTenantQuotaShedIsolation: a tenant over its own budget is shed with
// the "quota" code — and only that tenant pays. The noisy neighbor's shed
// counter moves; the quiet tenant's requests keep succeeding and its shed
// counter and latency series stay its own.
func TestTenantQuotaShedIsolation(t *testing.T) {
	gate := &gateTarget{Target: newMemTarget(t), gate: make(chan struct{})}
	srv := startServer(t, newMemTarget(t), Options{
		Workers: 2, QueueDepth: 8,
		Tenants: []TenantConfig{
			{Name: "mux-quota-a", Target: gate, Limits: TenantLimits{MaxInflight: 1}},
			{Name: "mux-quota-b"},
			{Name: "mux-quota-c", Limits: TenantLimits{RatePerSec: 0.5}}, // burst defaults to 1
		},
	})
	release := sync.OnceFunc(func() { close(gate.gate) })
	t.Cleanup(release)
	ctx := context.Background()

	ca, err := Dial(srv.Addr(), WithTenant("mux-quota-a"), WithMaxRetries(0))
	if err != nil {
		t.Fatalf("Dial a: %v", err)
	}
	defer ca.Close()
	cb, err := Dial(srv.Addr(), WithTenant("mux-quota-b"))
	if err != nil {
		t.Fatalf("Dial b: %v", err)
	}
	defer cb.Close()

	// Fill tenant A's single inflight slot with a parked statement.
	errc := make(chan error, 1)
	go func() {
		_, err := ca.Exec(ctx, "ASSERT Flies (Tweety);")
		errc <- err
	}()
	waitParked(t, gate, 1)

	tnA, tnB := srv.tenants["mux-quota-a"], srv.tenants["mux-quota-b"]
	shedA0, shedB0 := tnA.mShed.Value(), tnB.mShed.Value()
	latB0 := tnB.mLatency.Snapshot().Count

	// A's next request is over quota; the global pool (2 workers, queue of
	// 8) has plenty of room, so this is A's own budget, not server load.
	if _, err := ca.Exec(ctx, "HOLDS Flies (Bird);"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota Exec: %v, want ErrQuotaExceeded", err)
	}
	// B sails through while A is being shed.
	if _, err := cb.Exec(ctx, "CREATE HIERARCHY QuotaZoo;"); err != nil {
		t.Fatalf("tenant b Exec during a's flood: %v", err)
	}

	if d := tnA.mShed.Value() - shedA0; d == 0 {
		t.Error("tenant a shed counter did not move")
	}
	if d := tnB.mShed.Value() - shedB0; d != 0 {
		t.Errorf("tenant b shed counter moved by %d during a's flood", d)
	}
	if d := tnB.mLatency.Snapshot().Count - latB0; d == 0 {
		t.Error("tenant b latency histogram did not record b's own request")
	}

	// The shed is visible as a labeled series on the shared metric names.
	stats, err := cb.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if !strings.Contains(stats, `hrdb_tenant_shed_total{tenant="mux-quota-a"}`) {
		t.Error("scrape lacks tenant a's labeled shed series")
	}

	// Rate limits shed the same way: burst 1 admits one statement, the
	// second arrives long before the 2s refill.
	cc, err := Dial(srv.Addr(), WithTenant("mux-quota-c"), WithMaxRetries(0))
	if err != nil {
		t.Fatalf("Dial c: %v", err)
	}
	defer cc.Close()
	if _, err := cc.Exec(ctx, "CREATE HIERARCHY RateZoo;"); err != nil {
		t.Fatalf("first rate-limited Exec: %v", err)
	}
	if _, err := cc.Exec(ctx, "CREATE HIERARCHY RateZoo2;"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second rate-limited Exec: %v, want ErrQuotaExceeded", err)
	}

	release()
	if err := <-errc; err != nil {
		t.Fatalf("parked Exec after release: %v", err)
	}
}

// TestClientCloseFailsInflightPipelined: Close with pipelined requests in
// flight fails each of them with ErrClientClosed immediately instead of
// waiting for replies that will never come — and three dial/flood/close
// cycles leak no goroutines on either side.
func TestClientCloseFailsInflightPipelined(t *testing.T) {
	srv := startServer(t, newMemTarget(t), Options{Workers: 2, QueueDepth: 32})
	proxy, err := NewChaosProxy(srv.Addr())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	t.Cleanup(func() { proxy.Close() })

	baseline := runtime.NumGoroutine()
	const inflight = 8
	for cycle := 0; cycle < 3; cycle++ {
		c, err := Dial(proxy.Addr())
		if err != nil {
			t.Fatalf("cycle %d Dial: %v", cycle, err)
		}
		// From here the proxy swallows every response, so all requests are
		// genuinely in flight when Close runs.
		proxy.DropResponses(true)
		before := metricRequests.Value()
		errs := make(chan error, inflight)
		for i := 0; i < inflight; i++ {
			go func() {
				_, err := c.Exec(context.Background(), "HOLDS Flies (Bird);")
				errs <- err
			}()
		}
		// The server-side request counter ticks at frame receipt: once it
		// has advanced by `inflight`, every request made it out of the
		// client and is awaiting a (dropped) reply.
		deadline := time.Now().Add(5 * time.Second)
		for metricRequests.Value() < before+inflight {
			if time.Now().After(deadline) {
				t.Fatalf("cycle %d: server saw %d/%d requests", cycle, metricRequests.Value()-before, inflight)
			}
			time.Sleep(time.Millisecond)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("cycle %d Close: %v", cycle, err)
		}
		for i := 0; i < inflight; i++ {
			if err := <-errs; !errors.Is(err, ErrClientClosed) {
				t.Fatalf("cycle %d inflight request: %v, want ErrClientClosed", cycle, err)
			}
		}
		proxy.DropResponses(false)
		proxy.KillAll()
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCrossVersionMatrix pins both directions of compatibility: a v2
// server serves forced-v1 clients; a v1-only server downgrades auto
// clients through the HELLO rejection; and a client that insists on v2
// against a v1-only server fails with a typed protocol error.
func TestCrossVersionMatrix(t *testing.T) {
	ctx := context.Background()
	check := func(t *testing.T, c *Client, wantV2 bool) {
		t.Helper()
		c.connMu.Lock()
		v2 := c.c2 != nil
		c.connMu.Unlock()
		if v2 != wantV2 {
			t.Fatalf("negotiated v2=%v, want %v", v2, wantV2)
		}
		if err := c.Ping(ctx); err != nil {
			t.Fatalf("Ping: %v", err)
		}
		out, err := c.Exec(ctx, "HOLDS Flies (Tweety);")
		if err != nil || strings.TrimSpace(out) != "true" {
			t.Fatalf("Exec = %q, %v", out, err)
		}
		if _, err := c.Stats(ctx); err != nil {
			t.Fatalf("Stats: %v", err)
		}
	}

	t.Run("v2-server", func(t *testing.T) {
		srv := startServer(t, newMemTarget(t), Options{})
		auto, err := Dial(srv.Addr())
		if err != nil {
			t.Fatalf("Dial auto: %v", err)
		}
		defer auto.Close()
		check(t, auto, true)

		v1, err := Dial(srv.Addr(), WithProtocol(ProtocolV1))
		if err != nil {
			t.Fatalf("Dial v1: %v", err)
		}
		defer v1.Close()
		check(t, v1, false)
	})

	t.Run("v1-only-server", func(t *testing.T) {
		srv := startServer(t, newMemTarget(t), Options{DisableV2: true})
		auto, err := Dial(srv.Addr())
		if err != nil {
			t.Fatalf("Dial auto: %v", err)
		}
		defer auto.Close()
		check(t, auto, false)

		if _, err := Dial(srv.Addr(), WithProtocol(ProtocolV2)); !errors.Is(err, ErrProtocol) {
			t.Fatalf("forced v2 against v1-only server: %v, want ErrProtocol", err)
		}
	})
}

// TestChaosV2MidFrameSever: the proxy cuts the connection five bytes into
// a v2 response frame — inside the header. The client must surface a
// transport error (not a garbled success) and heal on the next call by
// redialing.
func TestChaosV2MidFrameSever(t *testing.T) {
	srv := startServer(t, newMemTarget(t), Options{})
	proxy, err := NewChaosProxy(srv.Addr())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	t.Cleanup(func() { proxy.Close() })

	c, err := Dial(proxy.Addr(), WithMaxRetries(0))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("Ping: %v", err)
	}

	proxy.SeverResponseAfter(5)
	_, err = c.Exec(ctx, "HOLDS Flies (Tweety);")
	if err == nil {
		t.Fatal("Exec across a severed frame succeeded")
	}
	if se := new(ServerError); errors.As(err, &se) || errors.Is(err, ErrClientClosed) {
		t.Fatalf("mid-frame sever produced %v, want a transport error", err)
	}

	// The sever disarmed itself; the next call redials and succeeds.
	out, err := c.Exec(ctx, "HOLDS Flies (Tweety);")
	if err != nil || strings.TrimSpace(out) != "true" {
		t.Fatalf("Exec after sever = %q, %v; want true", out, err)
	}
}
