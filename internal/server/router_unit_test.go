package server

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"hrdb/internal/catalog"
	"hrdb/internal/hql"
)

// In-package Router tests against stub replicas: plain servers with a
// LagProbe hook over in-memory targets. The targets are deliberately
// different — the "replica" denies what the primary asserts — so the
// answer to a routed read proves which server produced it. (The real
// replication stack keeps copies identical; see internal/repl's router
// tests for that end of the contract.)

// divergentTarget is the Bird fixture with Flies(Bird) denied instead of
// asserted, so HOLDS Flies (Tweety) answers false where the primary
// fixture answers true.
func divergentTarget(t *testing.T) hql.Target {
	t.Helper()
	db := catalog.New()
	sess := hql.NewSession(hql.MemTarget{DB: db})
	if _, err := sess.Exec(`
		CREATE HIERARCHY Animal;
		CLASS Bird IN Animal;
		INSTANCE Tweety UNDER Bird;
		CREATE RELATION Flies (Creature: Animal);
		DENY Flies (Bird);
	`); err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return hql.MemTarget{DB: db}
}

func lagConst(li LagInfo) func() LagInfo {
	return func() LagInfo { return li }
}

func dialRouterT(t *testing.T, primary, replica *Server, opts ...RouterOption) *Router {
	t.Helper()
	router, err := DialRouter(primary.Addr(), []string{replica.Addr()}, opts...)
	if err != nil {
		t.Fatalf("DialRouter: %v", err)
	}
	t.Cleanup(func() { router.Close() })
	return router
}

func TestRouterReadsHitFreshReplica(t *testing.T) {
	primary := startServer(t, newMemTarget(t), Options{})
	replica := startServer(t, divergentTarget(t), Options{
		LagProbe: lagConst(LagInfo{Staleness: 0, State: "streaming"}),
	})
	// A long probe TTL makes the second read exercise the cached-lag path.
	router := dialRouterT(t, primary, replica,
		WithMaxStaleness(time.Minute), WithLagProbeInterval(time.Hour))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	for i := 0; i < 2; i++ {
		out, err := router.Exec(ctx, "HOLDS Flies (Tweety);")
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !strings.Contains(out, "false") {
			t.Fatalf("read %d answered %q — served by the primary, not the replica", i, out)
		}
	}

	// Writes go to the primary even with a fresh replica available.
	if _, err := router.Exec(ctx, "INSTANCE Robin UNDER Bird;"); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := router.primary.Exec(ctx, "HOLDS Flies (Robin);")
	if err != nil {
		t.Fatalf("primary read-back: %v", err)
	}
	if !strings.Contains(out, "true") {
		t.Fatalf("write did not land on the primary: %q", out)
	}

	// A replica that answers with a statement error is the script's real
	// result — the router must not mask it with a primary retry.
	if _, err := router.Exec(ctx, "HOLDS NoSuchRelation (Tweety);"); err == nil {
		t.Fatal("bad read succeeded")
	} else {
		var se *ServerError
		if !errors.As(err, &se) {
			t.Fatalf("bad read error = %v, want ServerError", err)
		}
	}
}

func TestRouterSkipsUnknownAndStaleReplicas(t *testing.T) {
	primary := startServer(t, newMemTarget(t), Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	for _, li := range []LagInfo{
		{Staleness: -1, State: "connecting"},            // never synced
		{Staleness: 10 * time.Second, State: "catchup"}, // beyond the bound
	} {
		replica := startServer(t, divergentTarget(t), Options{LagProbe: lagConst(li)})
		router := dialRouterT(t, primary, replica,
			WithMaxStaleness(time.Second), WithLagProbeInterval(0))
		out, err := router.Exec(ctx, "HOLDS Flies (Tweety);")
		if err != nil {
			t.Fatalf("read (lag %+v): %v", li, err)
		}
		if !strings.Contains(out, "true") {
			t.Fatalf("lag %+v: answer %q came from the stale replica", li, out)
		}
	}
}

func TestRouterFallsBackWhenReplicaUnreachable(t *testing.T) {
	primary := startServer(t, newMemTarget(t), Options{})
	replica := startServer(t, divergentTarget(t), Options{
		LagProbe: lagConst(LagInfo{Staleness: 0, State: "streaming"}),
	})
	router := dialRouterT(t, primary, replica,
		WithMaxStaleness(time.Minute), WithLagProbeInterval(0))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	replica.Shutdown(shutCtx)
	shutCancel()

	out, err := router.Exec(ctx, "HOLDS Flies (Tweety);")
	if err != nil {
		t.Fatalf("read after replica death: %v", err)
	}
	if !strings.Contains(out, "true") {
		t.Fatalf("read after replica death = %q, want primary's answer", out)
	}
}

func TestDialRouterRejectsUnreachableReplica(t *testing.T) {
	primary := startServer(t, newMemTarget(t), Options{})
	if r, err := DialRouter(primary.Addr(), []string{"127.0.0.1:1"}); err == nil {
		r.Close()
		t.Fatal("DialRouter accepted an unreachable replica")
	}
	if _, err := DialRouter("127.0.0.1:1", nil); err == nil {
		t.Fatal("DialRouter accepted an unreachable primary")
	}
}
