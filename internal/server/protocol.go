// Package server is the network front end of the hierarchical relational
// database: a concurrent HQL service over TCP with production-grade
// resilience machinery — admission control with load shedding, per-request
// deadlines, panic isolation, connection and idle limits, per-tenant
// quotas, and graceful drain — plus the matching client (Dial) and a
// fault-injecting ChaosProxy for tests.
//
// Two wire protocols share the port. Protocol v1 is the original textual
// line protocol: strictly sequential per connection, one statement at a
// time. Protocol v2 is a framed binary protocol: a connection carries many
// logical streams, clients pipeline requests, and the server replies out
// of order from its worker pool. docs/HQL.md holds the full reference for
// both; the summary below is the contract this package implements.
//
// # Protocol v1 (line protocol)
//
// Textual frames with length-prefixed payloads. Requests are strictly
// sequential per connection (no pipelining), which is what lets one
// hql.Session — single-goroutine by contract — serve the whole connection:
//
//	client → server:
//	  EXEC <timeout_ms> <n>\n<n payload bytes>\n   execute HQL script
//	  PING\n                                       liveness probe
//	  STATS\n                                      process metrics snapshot
//	  USE <tenant>\n                               switch namespace
//	  QUIT\n                                       close the connection
//	  HELLO <version> [tenant]\n                   offer a protocol upgrade
//	  SNAP\n                                       replication snapshot bootstrap
//	  REPL <epoch> <offset> [term]\n               subscribe to the WAL stream
//	  PROMOTE\n                                    promote a replica to writable
//	  LAG\n                                        replication lag probe
//	  SHARDMAP\n                                   shard identity probe
//	  EXECSHARD <timeout_ms> <n>\n<payload>\n      execute a shard operation
//	  SUBSCRIBE <name> [<epoch> <offset>]\n        follow a view change feed
//
//	server → client:
//	  OK <n>\n<n payload bytes>\n                  statement output
//	  ERR <code> <retry_ms> <n>\n<n bytes>\n       failure, payload = message
//
// STATS answers with an OK frame whose payload is the process's metrics in
// Prometheus text exposition format (the same text the optional HTTP
// /metrics endpoint serves); it is answered inline, without consuming a
// worker, so it works even when the admission queue is saturated.
//
// timeout_ms is the client's deadline for the request in milliseconds
// (0 = none); the server caps it at its MaxDeadline. retry_ms is a
// backoff hint, nonzero for "overloaded" and "quota".
//
// # Handshake
//
// A v2-capable client opens every connection with `HELLO 2 [tenant]` in v1
// text framing. A v2-capable server answers `OK` with payload
// `v2 tenant=<resolved>` and the connection switches to binary framing; a
// pre-v2 server rejects HELLO as an unknown verb (`ERR proto`) and closes,
// and the client redials in v1 mode (sending `USE <tenant>` first when a
// tenant was requested). An unknown tenant answers `ERR tenant` and is a
// hard failure — no fallback, since no protocol serves that namespace.
//
// # Protocol v2 (framed binary)
//
// After the handshake every message is one length-prefixed frame:
//
//	u32 length | u8 type | u8 flags | u64 id | u32 stream | payload
//
// (big-endian; length counts everything after itself, minimum 14). The id
// correlates a response to its request; the stream groups requests into
// logical sub-connections. Requests on one stream execute in order on one
// server-side session (so transactions work); distinct streams execute
// concurrently on the worker pool, and responses come back in completion
// order, not submission order. CANCEL aborts a request by id; a deadline
// or cancellation that catches a statement mid-execution retires only its
// stream — the connection and every other stream keep going (under v1 the
// same condition retires the whole connection). Frame types and payloads
// are defined in protocol2.go; error frames carry the same codes as v1.
//
// # Error codes
//
// Shared by both protocol versions. Each code maps to exactly one exported
// sentinel via errors.Is (see errors.go):
//
//	proto       malformed frame; the connection is closed
//	toolarge    statement exceeds MaxStatementBytes; connection closed
//	exec        the statement failed (parse or execution error)
//	overloaded  admission queue full — not executed, safe to retry
//	quota       tenant over its admission quota or rate limit — not
//	            executed, safe to retry after backoff
//	tenant      unknown namespace in HELLO or USE
//	deadline    the deadline expired; if the statement was already
//	            running its effects may still apply (v1 closes the
//	            connection then; v2 retires only the stream)
//	canceled    the request was canceled (CANCEL frame, stream teardown,
//	            or server drain deadline)
//	panic       the statement panicked; isolated; the session is retired
//	            (v1: connection closed; v2: stream retired)
//	shutdown    server is draining — not executed, retry elsewhere/later
//	unsupported the verb is not enabled on this server (e.g. REPL/SNAP on
//	            a server without a replication source, PROMOTE on a
//	            primary, LAG on a non-replica)
//	stale       a REPL position this server can no longer serve (the WAL
//	            was superseded by a checkpoint); re-bootstrap via SNAP
//
// # Multi-tenancy
//
// A server may host named namespaces (Options.Tenants), each an
// independent hql.Target with its own admission quota, rate limit, and
// labeled metrics. Connections resolve their namespace at HELLO (v2) or
// via USE (v1); the default namespace is the server's main target.
//
// # Replication verbs
//
// SNAP answers with an OK frame whose payload is a gob-encoded bootstrap
// (database spec + the replication position it corresponds to). REPL does
// not answer with an OK frame at all: on success the server takes the
// connection over and emits stream frames (see internal/repl for the
// framing: SHIP/HB/ROTATE lines, ACK lines flowing back) until either side
// closes; on failure it answers ERR ("unsupported" or "stale") and closes.
// LAG answers "<staleness_ms> <epoch> <offset> <state> <term> <id>
// <source>" (staleness_ms = -1 when unknown, e.g. while the replica has
// never been caught up; "-" encodes an empty id or source; pre-failover
// servers emit only the first four fields). PROMOTE flips a replica
// writable and answers "promoted".
//
// # Subscription verb
//
// Servers with a change-feed source attached (Options.Subscribe, typically
// a view.Manager) answer SUBSCRIBE. On success the server replies with an
// empty OK frame and then takes the connection over, pushing subwire
// frames (SNAP/DELTA/HB/ERR — see internal/subwire) until the client
// closes the connection or the feed ends with an in-band ERR frame. With
// the optional position the feed resumes: it replays exactly the committed
// deltas after (epoch, offset), gap- and duplicate-free, or answers an
// in-band ERR "stale" when that position fell out of the retained journal
// (resubscribe without a position for a fresh snapshot). Protocol v2
// carries the same feed in SUB frames (see protocol2.go). Like REPL, a
// draining server refuses new subscriptions with "shutdown", and running
// feeds end when their connections are retired.
//
// # Shard verbs
//
// Servers started as cluster members (Options.Shard) additionally answer
// SHARDMAP — inline, with "<shard_id> <shard_count>" — and EXECSHARD, which
// is framed exactly like EXEC (and has a matching v2 frame type) but whose
// payload is a shard operation in internal/shard's wire format (TUPLES,
// SELECT, EVAL, and the two-phase-commit verbs PREPARE/COMMIT/ABORT/APPLY)
// instead of an HQL script. EXECSHARD runs on the worker pool under the
// same admission control and deadlines as EXEC. Both verbs answer ERR
// "unsupported" on a server with no shard node attached.
package server

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// errProto reports a malformed frame. It is the unexported spelling of
// ErrProtocol (the code table in errors.go owns the exported sentinel).
var errProto = ErrProtocol

// request is one decoded client frame.
type request struct {
	verb    string // "EXEC" | "EXECSHARD" | "PING" | "STATS" | "QUIT" | "HELLO" | "USE" | "SNAP" | "REPL" | "PROMOTE" | "LAG" | "SHARDMAP" | "SUBSCRIBE"
	timeout time.Duration
	input   string
	epoch   uint64 // REPL and SUBSCRIBE: stream position
	offset  int64  // REPL and SUBSCRIBE: stream position
	term    uint64 // REPL only: follower's highest fencing term (0 = pre-term)
	resume  bool   // SUBSCRIBE only: a position was supplied
	proto   int    // HELLO only: requested protocol version
	tenant  string // HELLO and USE: requested namespace ("" = default)
}

// readRequest decodes one request frame. maxBytes bounds the payload; a
// larger announced length fails with errProto-wrapped "toolarge" handling
// at the caller.
func readRequest(br *bufio.Reader, maxBytes int) (request, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return request{}, err
	}
	line = strings.TrimRight(line, "\r\n")
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return request{}, fmt.Errorf("%w: empty request line", errProto)
	}
	switch fields[0] {
	case "PING", "STATS", "QUIT", "SNAP", "PROMOTE", "LAG", "SHARDMAP":
		if len(fields) != 1 {
			return request{}, fmt.Errorf("%w: %s takes no arguments", errProto, fields[0])
		}
		return request{verb: fields[0]}, nil
	case "HELLO":
		// HELLO <version> [tenant] — protocol upgrade offer. It rides the v1
		// text framing so a pre-v2 server rejects it as an unknown verb and
		// the client falls back (see the package doc).
		if len(fields) != 2 && len(fields) != 3 {
			return request{}, fmt.Errorf("%w: want HELLO <version> [tenant]", errProto)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil || v < 1 {
			return request{}, fmt.Errorf("%w: bad protocol version %q", errProto, fields[1])
		}
		req := request{verb: "HELLO", proto: v}
		if len(fields) == 3 {
			req.tenant = fields[2]
		}
		return req, nil
	case "USE":
		// USE <tenant> — switch this v1 connection's namespace.
		if len(fields) != 2 {
			return request{}, fmt.Errorf("%w: want USE <tenant>", errProto)
		}
		return request{verb: "USE", tenant: fields[1]}, nil
	case "REPL":
		// REPL <epoch> <offset> [term] — the optional term announces the
		// follower's highest fencing term (absent from pre-term followers).
		if len(fields) != 3 && len(fields) != 4 {
			return request{}, fmt.Errorf("%w: want REPL <epoch> <offset> [term]", errProto)
		}
		epoch, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return request{}, fmt.Errorf("%w: bad epoch %q", errProto, fields[1])
		}
		offset, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || offset < 0 {
			return request{}, fmt.Errorf("%w: bad offset %q", errProto, fields[2])
		}
		req := request{verb: "REPL", epoch: epoch, offset: offset}
		if len(fields) == 4 {
			term, err := strconv.ParseUint(fields[3], 10, 64)
			if err != nil {
				return request{}, fmt.Errorf("%w: bad term %q", errProto, fields[3])
			}
			req.term = term
		}
		return req, nil
	case "SUBSCRIBE":
		// SUBSCRIBE <name> [<epoch> <offset>] — follow a view or relation
		// change feed, optionally resuming after a position.
		if len(fields) != 2 && len(fields) != 4 {
			return request{}, fmt.Errorf("%w: want SUBSCRIBE <name> [<epoch> <offset>]", errProto)
		}
		req := request{verb: "SUBSCRIBE", input: fields[1]}
		if len(fields) == 4 {
			epoch, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return request{}, fmt.Errorf("%w: bad epoch %q", errProto, fields[2])
			}
			offset, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil || offset < 0 {
				return request{}, fmt.Errorf("%w: bad offset %q", errProto, fields[3])
			}
			req.epoch, req.offset, req.resume = epoch, offset, true
		}
		return req, nil
	case "EXEC", "EXECSHARD":
		// EXECSHARD is framed exactly like EXEC; only the payload's
		// interpretation differs (shard operation vs HQL script).
		if len(fields) != 3 {
			return request{}, fmt.Errorf("%w: want %s <timeout_ms> <n>", errProto, fields[0])
		}
		ms, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || ms < 0 {
			return request{}, fmt.Errorf("%w: bad timeout %q", errProto, fields[1])
		}
		n, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || n < 0 {
			return request{}, fmt.Errorf("%w: bad length %q", errProto, fields[2])
		}
		if n > int64(maxBytes) {
			return request{}, errTooLarge
		}
		payload := make([]byte, n+1)
		if _, err := io.ReadFull(br, payload); err != nil {
			return request{}, fmt.Errorf("%w: truncated payload: %v", errProto, err)
		}
		if payload[n] != '\n' {
			return request{}, fmt.Errorf("%w: missing payload terminator", errProto)
		}
		return request{
			verb:    fields[0],
			timeout: time.Duration(ms) * time.Millisecond,
			input:   string(payload[:n]),
		}, nil
	default:
		return request{}, fmt.Errorf("%w: unknown verb %q", errProto, fields[0])
	}
}

// errTooLarge marks a statement over the size limit (alias of the exported
// sentinel; see errors.go).
var errTooLarge = ErrStatementTooLarge

// writeOK emits an OK frame.
func writeOK(bw *bufio.Writer, payload string) error {
	if _, err := fmt.Fprintf(bw, "OK %d\n%s\n", len(payload), payload); err != nil {
		return err
	}
	return bw.Flush()
}

// writeErr emits an ERR frame.
func writeErr(bw *bufio.Writer, code Code, retryAfter time.Duration, msg string) error {
	if _, err := fmt.Fprintf(bw, "ERR %s %d %d\n%s\n",
		code, retryAfter.Milliseconds(), len(msg), msg); err != nil {
		return err
	}
	return bw.Flush()
}

// response is one decoded server frame (client side), shared by both
// protocol versions: v1 parses it from a text frame, v2 from a binary one.
type response struct {
	ok         bool
	code       Code
	retryAfter time.Duration
	payload    string
}

// readResponse decodes one response frame.
func readResponse(br *bufio.Reader, maxBytes int) (response, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return response{}, err
	}
	line = strings.TrimRight(line, "\r\n")
	fields := strings.Fields(line)
	read := func(lenField string) (string, error) {
		n, err := strconv.ParseInt(lenField, 10, 64)
		if err != nil || n < 0 || n > int64(maxBytes) {
			return "", fmt.Errorf("%w: bad response length %q", errProto, lenField)
		}
		payload := make([]byte, n+1)
		if _, err := io.ReadFull(br, payload); err != nil {
			return "", err
		}
		if payload[n] != '\n' {
			return "", fmt.Errorf("%w: missing response terminator", errProto)
		}
		return string(payload[:n]), nil
	}
	switch {
	case len(fields) == 2 && fields[0] == "OK":
		payload, err := read(fields[1])
		if err != nil {
			return response{}, err
		}
		return response{ok: true, payload: payload}, nil
	case len(fields) == 4 && fields[0] == "ERR":
		ms, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || ms < 0 {
			return response{}, fmt.Errorf("%w: bad retry hint %q", errProto, fields[2])
		}
		payload, err := read(fields[3])
		if err != nil {
			return response{}, err
		}
		return response{
			code:       Code(fields[1]),
			retryAfter: time.Duration(ms) * time.Millisecond,
			payload:    payload,
		}, nil
	default:
		return response{}, fmt.Errorf("%w: bad response line %q", errProto, line)
	}
}
