// Package server is the network front end of the hierarchical relational
// database: a concurrent line-protocol HQL service over TCP with
// production-grade resilience machinery — admission control with load
// shedding, per-request deadlines, panic isolation, connection and idle
// limits, and graceful drain — plus the matching client (Dial) and a
// fault-injecting ChaosProxy for tests.
//
// # Wire protocol
//
// The protocol is a textual line protocol with length-prefixed payloads.
// Requests are strictly sequential per connection (no pipelining), which
// is what lets one hql.Session — single-goroutine by contract — serve the
// whole connection. Frames:
//
//	client → server:
//	  EXEC <timeout_ms> <n>\n<n payload bytes>\n   execute HQL script
//	  PING\n                                       liveness probe
//	  STATS\n                                      process metrics snapshot
//	  QUIT\n                                       close the connection
//	  SNAP\n                                       replication snapshot bootstrap
//	  REPL <epoch> <offset>\n                      subscribe to the WAL stream
//	  PROMOTE\n                                    promote a replica to writable
//	  LAG\n                                        replication lag probe
//
// STATS answers with an OK frame whose payload is the process's metrics in
// Prometheus text exposition format (the same text the optional HTTP
// /metrics endpoint serves); it is answered inline, without consuming a
// worker, so it works even when the admission queue is saturated.
//
//	server → client:
//	  OK <n>\n<n payload bytes>\n                  statement output
//	  ERR <code> <retry_ms> <n>\n<n bytes>\n       failure, payload = message
//
// timeout_ms is the client's deadline for the request in milliseconds
// (0 = none); the server caps it at its MaxDeadline. retry_ms is a
// backoff hint, nonzero only for "overloaded". Error codes:
//
//	proto       malformed frame; the connection is closed
//	toolarge    statement exceeds MaxStatementBytes; connection closed
//	exec        the statement failed (parse or execution error)
//	overloaded  admission queue full — not executed, safe to retry
//	deadline    the deadline expired; if the statement was already
//	            running its effects may still apply (connection closed
//	            when the server abandoned a still-running statement)
//	canceled    the request was canceled (server drain deadline)
//	panic       the statement panicked; isolated, connection closed
//	shutdown    server is draining — not executed, retry elsewhere/later
//	unsupported the verb is not enabled on this server (e.g. REPL/SNAP on
//	            a server without a replication source, PROMOTE on a
//	            primary, LAG on a non-replica)
//	stale       a REPL position this server can no longer serve (the WAL
//	            was superseded by a checkpoint); re-bootstrap via SNAP
//
// # Replication verbs
//
// SNAP answers with an OK frame whose payload is a gob-encoded bootstrap
// (database spec + the replication position it corresponds to). REPL does
// not answer with an OK frame at all: on success the server takes the
// connection over and emits stream frames (see internal/repl for the
// framing: SHIP/HB/ROTATE lines, ACK lines flowing back) until either side
// closes; on failure it answers ERR ("unsupported" or "stale") and closes.
// LAG answers "<staleness_ms> <epoch> <offset> <state>" (staleness_ms = -1
// when unknown, e.g. while the replica has never been caught up). PROMOTE
// flips a replica writable and answers "promoted".
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Error codes carried by ERR frames.
const (
	codeProto       = "proto"
	codeTooLarge    = "toolarge"
	codeExec        = "exec"
	codeOverloaded  = "overloaded"
	codeDeadline    = "deadline"
	codeCanceled    = "canceled"
	codePanic       = "panic"
	codeShutdown    = "shutdown"
	codeUnsupported = "unsupported"
)

// errProto reports a malformed frame.
var errProto = errors.New("server: protocol error")

// request is one decoded client frame.
type request struct {
	verb    string // "EXEC" | "PING" | "STATS" | "QUIT" | "SNAP" | "REPL" | "PROMOTE" | "LAG"
	timeout time.Duration
	input   string
	epoch   uint64 // REPL only
	offset  int64  // REPL only
}

// readRequest decodes one request frame. maxBytes bounds the payload; a
// larger announced length fails with errProto-wrapped "toolarge" handling
// at the caller.
func readRequest(br *bufio.Reader, maxBytes int) (request, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return request{}, err
	}
	line = strings.TrimRight(line, "\r\n")
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return request{}, fmt.Errorf("%w: empty request line", errProto)
	}
	switch fields[0] {
	case "PING", "STATS", "QUIT", "SNAP", "PROMOTE", "LAG":
		if len(fields) != 1 {
			return request{}, fmt.Errorf("%w: %s takes no arguments", errProto, fields[0])
		}
		return request{verb: fields[0]}, nil
	case "REPL":
		if len(fields) != 3 {
			return request{}, fmt.Errorf("%w: want REPL <epoch> <offset>", errProto)
		}
		epoch, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return request{}, fmt.Errorf("%w: bad epoch %q", errProto, fields[1])
		}
		offset, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || offset < 0 {
			return request{}, fmt.Errorf("%w: bad offset %q", errProto, fields[2])
		}
		return request{verb: "REPL", epoch: epoch, offset: offset}, nil
	case "EXEC":
		if len(fields) != 3 {
			return request{}, fmt.Errorf("%w: want EXEC <timeout_ms> <n>", errProto)
		}
		ms, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || ms < 0 {
			return request{}, fmt.Errorf("%w: bad timeout %q", errProto, fields[1])
		}
		n, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || n < 0 {
			return request{}, fmt.Errorf("%w: bad length %q", errProto, fields[2])
		}
		if n > int64(maxBytes) {
			return request{}, errTooLarge
		}
		payload := make([]byte, n+1)
		if _, err := io.ReadFull(br, payload); err != nil {
			return request{}, fmt.Errorf("%w: truncated payload: %v", errProto, err)
		}
		if payload[n] != '\n' {
			return request{}, fmt.Errorf("%w: missing payload terminator", errProto)
		}
		return request{
			verb:    "EXEC",
			timeout: time.Duration(ms) * time.Millisecond,
			input:   string(payload[:n]),
		}, nil
	default:
		return request{}, fmt.Errorf("%w: unknown verb %q", errProto, fields[0])
	}
}

// errTooLarge marks a statement over the size limit.
var errTooLarge = errors.New("server: statement too large")

// writeOK emits an OK frame.
func writeOK(bw *bufio.Writer, payload string) error {
	if _, err := fmt.Fprintf(bw, "OK %d\n%s\n", len(payload), payload); err != nil {
		return err
	}
	return bw.Flush()
}

// writeErr emits an ERR frame.
func writeErr(bw *bufio.Writer, code string, retryAfter time.Duration, msg string) error {
	if _, err := fmt.Fprintf(bw, "ERR %s %d %d\n%s\n",
		code, retryAfter.Milliseconds(), len(msg), msg); err != nil {
		return err
	}
	return bw.Flush()
}

// response is one decoded server frame (client side).
type response struct {
	ok         bool
	code       string
	retryAfter time.Duration
	payload    string
}

// readResponse decodes one response frame.
func readResponse(br *bufio.Reader, maxBytes int) (response, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return response{}, err
	}
	line = strings.TrimRight(line, "\r\n")
	fields := strings.Fields(line)
	read := func(lenField string) (string, error) {
		n, err := strconv.ParseInt(lenField, 10, 64)
		if err != nil || n < 0 || n > int64(maxBytes) {
			return "", fmt.Errorf("%w: bad response length %q", errProto, lenField)
		}
		payload := make([]byte, n+1)
		if _, err := io.ReadFull(br, payload); err != nil {
			return "", err
		}
		if payload[n] != '\n' {
			return "", fmt.Errorf("%w: missing response terminator", errProto)
		}
		return string(payload[:n]), nil
	}
	switch {
	case len(fields) == 2 && fields[0] == "OK":
		payload, err := read(fields[1])
		if err != nil {
			return response{}, err
		}
		return response{ok: true, payload: payload}, nil
	case len(fields) == 4 && fields[0] == "ERR":
		ms, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || ms < 0 {
			return response{}, fmt.Errorf("%w: bad retry hint %q", errProto, fields[2])
		}
		payload, err := read(fields[3])
		if err != nil {
			return response{}, err
		}
		return response{
			code:       fields[1],
			retryAfter: time.Duration(ms) * time.Millisecond,
			payload:    payload,
		}, nil
	default:
		return response{}, fmt.Errorf("%w: bad response line %q", errProto, line)
	}
}
