package server

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosProxy is a fault-injecting TCP proxy for resilience tests, in the
// spirit of the storage layer's FaultFS: it sits between a client and a
// server and can delay traffic, sever connections mid-reply after a
// programmed byte budget, or black-hole the response stream entirely —
// the network failures a resilient service must answer with retries,
// deadlines, and shedding rather than corruption or leaked goroutines.
//
// Faults are programmed at any time and apply to all current and future
// connections. The zero state forwards faithfully.
type ChaosProxy struct {
	target string
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// delay is a per-chunk forwarding delay in nanoseconds (both
	// directions).
	delay atomic.Int64
	// severBudget, when armed (>= 0), counts down response-path bytes;
	// when it is exhausted mid-reply both sides of that connection are
	// severed. -1 = disarmed.
	severBudget atomic.Int64
	// dropResponses black-holes server→client bytes (requests still pass),
	// simulating a reply that never arrives: the client must save itself
	// with its deadline.
	dropResponses atomic.Bool
}

// NewChaosProxy starts a proxy on a free localhost port forwarding to
// target (a "host:port" of a running server).
func NewChaosProxy(target string) (*ChaosProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &ChaosProxy{target: target, ln: ln, conns: make(map[net.Conn]struct{})}
	p.severBudget.Store(-1)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; point clients here.
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// SetDelay injects d of latency before each forwarded chunk.
func (p *ChaosProxy) SetDelay(d time.Duration) { p.delay.Store(int64(d)) }

// SeverResponseAfter arms the kill switch: after n more response-path
// bytes reach clients, the carrying connection is severed (both sides),
// truncating the reply mid-frame. Pass n=0 to sever on the next byte.
func (p *ChaosProxy) SeverResponseAfter(n int64) { p.severBudget.Store(n) }

// DropResponses toggles black-holing of server→client traffic.
func (p *ChaosProxy) DropResponses(drop bool) { p.dropResponses.Store(drop) }

// KillAll severs every active connection immediately.
func (p *ChaosProxy) KillAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		c.Close()
	}
}

// Close shuts the proxy down, severing every connection, and waits for
// its goroutines to exit.
func (p *ChaosProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.KillAll()
	p.wg.Wait()
	return err
}

func (p *ChaosProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			up.Close()
			continue
		}
		p.conns[c] = struct{}{}
		p.conns[up] = struct{}{}
		p.wg.Add(2)
		p.mu.Unlock()
		sever := func() {
			c.Close()
			up.Close()
		}
		go p.pump(up, c, false, sever) // client → server
		go p.pump(c, up, true, sever)  // server → client (response path)
	}
}

// pump copies src→dst in small chunks, applying the programmed faults.
func (p *ChaosProxy) pump(dst, src net.Conn, responsePath bool, sever func()) {
	defer p.wg.Done()
	defer func() {
		p.mu.Lock()
		delete(p.conns, dst)
		delete(p.conns, src)
		p.mu.Unlock()
		sever()
	}()
	buf := make([]byte, 512)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if d := p.delay.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			out := buf[:n]
			if responsePath {
				if p.dropResponses.Load() {
					continue // black hole; keep draining the server side
				}
				if budget := p.severBudget.Load(); budget >= 0 {
					if int64(n) >= budget {
						// Forward the allowed prefix, then cut the line
						// mid-reply and disarm.
						allowed := out[:budget]
						p.severBudget.Store(-1)
						if len(allowed) > 0 {
							dst.Write(allowed)
						}
						return
					}
					p.severBudget.Add(int64(-n))
				}
			}
			if _, werr := dst.Write(out); werr != nil {
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				return
			}
			// Half-close: propagate EOF to the peer's read side if possible.
			if t, ok := dst.(*net.TCPConn); ok {
				t.CloseWrite()
			}
			return
		}
	}
}
