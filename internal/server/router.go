package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"hrdb/internal/hql"
)

// Router is a lag-bounded read/write splitter over one primary and any
// number of read replicas. Scripts that hql.ReadOnlyScript classifies as
// read-only are routed to a replica whose reported staleness is within the
// configured bound (round-robin over eligible replicas); everything else —
// mutations, transactions, unparseable input — goes to the primary, as do
// reads when no replica is fresh enough or every eligible replica fails at
// the transport level.
//
// Freshness comes from the replicas' LAG verb, cached per replica for a
// short interval so routing doesn't pay a round trip per request. The
// classification predicate is compile-time exhaustive (every statement
// kind declares itself), so a newly added statement can't silently start
// routing writes to replicas.
type Router struct {
	primary  *Client
	replicas []*Client

	maxStale time.Duration
	probeTTL time.Duration

	mu    sync.Mutex
	next  int       // round-robin cursor
	lag   []LagInfo // last probe result per replica
	lagAt []time.Time
}

// WithMaxStaleness sets the freshness bound: a replica is eligible for a
// read only if its reported staleness is known and at most d. Default
// 500ms. Replicas that have never synced report unknown staleness and are
// never eligible. Router-only; plain Dial ignores it.
func WithMaxStaleness(d time.Duration) Option {
	return func(o *dialConfig) { o.maxStale = d }
}

// WithLagProbeInterval sets how long a replica's LAG answer is cached
// before the next probe. Default 100ms; zero probes on every read.
// Router-only; plain Dial ignores it.
func WithLagProbeInterval(d time.Duration) Option {
	return func(o *dialConfig) { o.probeTTL = d }
}

// DialRouter connects to the primary and each replica, passing the same
// options (retry policy, tenant, protocol, …) to every connection. The
// primary connection is established eagerly (as Dial does); replica
// connections are too, but a replica that cannot be reached at dial time
// is an error — topology mistakes should surface at startup, not as
// silent primary-only routing.
func DialRouter(primaryAddr string, replicaAddrs []string, opts ...Option) (*Router, error) {
	cfg := defaultDialConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	primary, err := Dial(primaryAddr, opts...)
	if err != nil {
		return nil, err
	}
	r := &Router{
		primary:  primary,
		maxStale: cfg.maxStale,
		probeTTL: cfg.probeTTL,
		lag:      make([]LagInfo, len(replicaAddrs)),
		lagAt:    make([]time.Time, len(replicaAddrs)),
	}
	for _, addr := range replicaAddrs {
		rc, err := Dial(addr, opts...)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.replicas = append(r.replicas, rc)
	}
	return r, nil
}

// Close closes every connection.
func (r *Router) Close() error {
	err := r.primary.Close()
	for _, rc := range r.replicas {
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Exec routes one script: read-only scripts to a fresh-enough replica,
// everything else to the primary.
func (r *Router) Exec(ctx context.Context, input string) (string, error) {
	if len(r.replicas) == 0 || !hql.ReadOnlyScript(input) {
		return r.primary.Exec(ctx, input)
	}
	start := r.advance()
	for i := 0; i < len(r.replicas); i++ {
		idx := (start + i) % len(r.replicas)
		li, at, err := r.lagInfo(ctx, idx)
		if err != nil || !r.fresh(li, at) {
			continue
		}
		out, err := r.replicas[idx].Exec(ctx, input)
		if err == nil {
			metricReplicaServed.Inc()
			return out, nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			// The replica answered: a definitive statement failure is the
			// script's real result, not a routing problem.
			return "", err
		}
		if ctx.Err() != nil {
			return "", err
		}
		// Transport failure: try the next replica, then the primary.
	}
	metricPrimaryFallback.Inc()
	return r.primary.Exec(ctx, input)
}

// advance returns the current round-robin start and bumps the cursor.
func (r *Router) advance() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := r.next
	if len(r.replicas) > 0 {
		r.next = (r.next + 1) % len(r.replicas)
	}
	return start
}

// fresh reports whether a lag answer taken at time at is still within the
// staleness bound: the answer itself ages while cached, so the probe's age
// counts against the bound too. A promoted replica reports zero staleness
// — it is the authoritative copy.
func (r *Router) fresh(li LagInfo, at time.Time) bool {
	if li.Staleness < 0 {
		return false
	}
	return li.Staleness+time.Since(at) <= r.maxStale
}

// lagInfo returns replica idx's lag and when it was measured, probing at
// most every probeTTL.
func (r *Router) lagInfo(ctx context.Context, idx int) (LagInfo, time.Time, error) {
	r.mu.Lock()
	li, at := r.lag[idx], r.lagAt[idx]
	r.mu.Unlock()
	if !at.IsZero() && time.Since(at) < r.probeTTL {
		return li, at, nil
	}
	li, err := r.replicas[idx].Lag(ctx)
	if err != nil {
		return LagInfo{Staleness: -1}, time.Time{}, err
	}
	now := time.Now()
	r.mu.Lock()
	r.lag[idx], r.lagAt[idx] = li, now
	r.mu.Unlock()
	return li, now, nil
}
