package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"hrdb/internal/hql"
	"hrdb/internal/shard"
)

// Router is a lag-bounded read/write splitter over one primary and any
// number of read replicas. Scripts that hql.ReadOnlyScript classifies as
// read-only are routed to a replica whose reported staleness is within the
// configured bound (round-robin over eligible replicas); everything else —
// mutations, transactions, unparseable input — goes to the primary, as do
// reads when no replica is fresh enough or every eligible replica fails at
// the transport level.
//
// Freshness comes from the replicas' LAG verb, cached per replica for a
// short interval so routing doesn't pay a round trip per request. The
// classification predicate is compile-time exhaustive (every statement
// kind declares itself), so a newly added statement can't silently start
// routing writes to replicas.
//
// The primary is not fixed: when a write is answered with a "stale" error —
// the node was fenced by a newer primary, so the write definitively did not
// execute — the router probes its replicas for whoever reports itself
// promoted under the highest term, adopts it as the primary, and retries
// once. Writes failing at the transport level re-route the same way only
// under WithRetryAll, mirroring the Client's own retry policy: without it a
// vanished connection leaves "did it commit?" unanswered, and re-routing
// would risk a duplicate.
type Router struct {
	maxStale time.Duration
	probeTTL time.Duration
	retryAll bool

	mu       sync.Mutex
	primary  *Client
	replicas []*Client
	next     int       // round-robin cursor
	lag      []LagInfo // last probe result per replica
	lagAt    []time.Time
}

// WithMaxStaleness sets the freshness bound: a replica is eligible for a
// read only if its reported staleness is known and at most d. Default
// 500ms. Replicas that have never synced report unknown staleness and are
// never eligible. Router-only; plain Dial ignores it.
func WithMaxStaleness(d time.Duration) Option {
	return func(o *dialConfig) { o.maxStale = d }
}

// WithLagProbeInterval sets how long a replica's LAG answer is cached
// before the next probe. Default 100ms; zero probes on every read.
// Router-only; plain Dial ignores it.
func WithLagProbeInterval(d time.Duration) Option {
	return func(o *dialConfig) { o.probeTTL = d }
}

// DialRouter connects to the primary and each replica, passing the same
// options (retry policy, tenant, protocol, …) to every connection. The
// primary connection is established eagerly (as Dial does); replica
// connections are too, but a replica that cannot be reached at dial time
// is an error — topology mistakes should surface at startup, not as
// silent primary-only routing.
func DialRouter(primaryAddr string, replicaAddrs []string, opts ...Option) (*Router, error) {
	cfg := defaultDialConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	primary, err := Dial(primaryAddr, opts...)
	if err != nil {
		return nil, err
	}
	r := &Router{
		primary:  primary,
		maxStale: cfg.maxStale,
		probeTTL: cfg.probeTTL,
		retryAll: cfg.retryAll,
		lag:      make([]LagInfo, len(replicaAddrs)),
		lagAt:    make([]time.Time, len(replicaAddrs)),
	}
	for _, addr := range replicaAddrs {
		rc, err := Dial(addr, opts...)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.replicas = append(r.replicas, rc)
	}
	return r, nil
}

// Close closes every connection.
func (r *Router) Close() error {
	r.mu.Lock()
	primary, replicas := r.primary, append([]*Client(nil), r.replicas...)
	r.mu.Unlock()
	err := primary.Close()
	for _, rc := range replicas {
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// PrimaryAddr returns the address currently treated as primary (it changes
// after a failover re-route).
func (r *Router) PrimaryAddr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.primary.addr
}

// replicaSet snapshots the replica list (failover swaps mutate it).
func (r *Router) replicaSet() []*Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Client(nil), r.replicas...)
}

// Exec routes one script: read-only scripts to a fresh-enough replica,
// everything else to the current primary (with failover re-routing).
func (r *Router) Exec(ctx context.Context, input string) (string, error) {
	replicas := r.replicaSet()
	if len(replicas) == 0 || !hql.ReadOnlyScript(input) {
		return r.execPrimary(ctx, input)
	}
	start := r.advance(len(replicas))
	for i := 0; i < len(replicas); i++ {
		idx := (start + i) % len(replicas)
		li, at, err := r.lagInfo(ctx, idx, replicas[idx])
		if err != nil || !r.fresh(li, at) {
			continue
		}
		out, err := replicas[idx].Exec(ctx, input)
		if err == nil {
			metricReplicaServed.Inc()
			return out, nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			// The replica answered: a definitive statement failure is the
			// script's real result, not a routing problem.
			return "", err
		}
		if ctx.Err() != nil {
			return "", err
		}
		// Transport failure: try the next replica, then the primary.
	}
	metricPrimaryFallback.Inc()
	return r.execPrimary(ctx, input)
}

// execPrimary runs input on the current primary, re-routing once if the
// answer proves the primary has moved. Transport errors re-route only under
// retryAll (matching Client's own policy for ambiguous outcomes) or for
// read-only input.
func (r *Router) execPrimary(ctx context.Context, input string) (string, error) {
	retryTransport := r.retryAll || hql.ReadOnlyScript(input)
	return r.execOnPrimary(ctx, retryTransport, func(c *Client) (string, error) {
		return c.Exec(ctx, input)
	})
}

// ExecShard routes one encoded shard operation to the current primary with
// the same failover re-routing as Exec. Shard operations are idempotent by
// construction (reads are pure, 2PC verbs are gid-guarded), so transport
// failures always re-route — this is what lets a coordinator's COMMIT
// survive a shard primary dying mid-2PC: the retry lands on the promoted
// replica, which answers "unknown" and triggers the APPLY fallback.
func (r *Router) ExecShard(ctx context.Context, op string) (string, error) {
	retryTransport := r.retryAll || shard.OpIdempotent(op)
	return r.execOnPrimary(ctx, retryTransport, func(c *Client) (string, error) {
		return c.ExecShard(ctx, op)
	})
}

// ShardMap fetches the shard identity from the current primary (every node
// of a shard's replica set reports the same identity). Failover-aware like
// any primary-bound request; always transport-retryable (pure read).
func (r *Router) ShardMap(ctx context.Context) (id, count int, err error) {
	out, err := r.execOnPrimary(ctx, true, func(c *Client) (string, error) {
		return c.inlineVerb(ctx, "SHARDMAP")
	})
	if err != nil {
		return 0, 0, err
	}
	return parseShardMap(out)
}

// execOnPrimary runs do against the current primary, re-routing once if the
// answer proves the primary has moved. Two triggers:
//
//   - A "stale" ServerError: the node is fenced, the request definitively
//     did not execute — always safe to retry on the real primary.
//   - A transport error, only when retryTransport says the request is safe
//     to re-issue after an ambiguous outcome.
func (r *Router) execOnPrimary(ctx context.Context, retryTransport bool, do func(*Client) (string, error)) (string, error) {
	r.mu.Lock()
	primary := r.primary
	r.mu.Unlock()
	out, err := do(primary)
	if err == nil || ctx.Err() != nil {
		return out, err
	}
	var se *ServerError
	switch {
	case errors.As(err, &se):
		if se.Code != codeStale {
			return out, err // a real statement failure, not a deposed node
		}
	default:
		if !retryTransport {
			return out, err
		}
	}
	if !r.discoverPrimary(ctx, primary) {
		return out, err
	}
	metricRouterFailovers.Inc()
	r.mu.Lock()
	cur := r.primary
	r.mu.Unlock()
	return do(cur)
}

// discoverPrimary probes the replicas for a node reporting itself promoted,
// adopts the one with the highest term as the new primary, and demotes the
// failed connection into the replica slot it vacated (the old node, if it
// ever comes back, will be a replica). Reports whether a promoted node was
// found. The lag cache is invalidated on a swap: its entries describe the
// old topology.
func (r *Router) discoverPrimary(ctx context.Context, failed *Client) bool {
	r.mu.Lock()
	swapped := r.primary != failed
	r.mu.Unlock()
	if swapped {
		return true // a concurrent caller already swapped
	}
	replicas := r.replicaSet()
	var promoted *Client
	var bestTerm uint64
	for _, rc := range replicas {
		li, err := rc.Lag(ctx)
		if err != nil {
			continue
		}
		if li.State == "promoted" && (promoted == nil || li.Term > bestTerm) {
			promoted, bestTerm = rc, li.Term
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.primary != failed {
		// A concurrent caller swapped while we probed — our own probe saw
		// the post-swap replica set (the demoted node), so its emptiness
		// proves nothing. The retry on the adopted primary is what matters.
		return true
	}
	if promoted == nil {
		return false
	}
	for i, rc := range r.replicas {
		if rc == promoted {
			r.replicas[i] = failed
			r.primary = promoted
			for j := range r.lag {
				r.lag[j], r.lagAt[j] = LagInfo{Staleness: -1}, time.Time{}
			}
			return true
		}
	}
	return false
}

// advance returns the current round-robin start and bumps the cursor.
func (r *Router) advance(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := r.next
	if n > 0 {
		r.next = (r.next + 1) % n
	}
	return start
}

// fresh reports whether a lag answer taken at time at is still within the
// staleness bound: the answer itself ages while cached, so the probe's age
// counts against the bound too. A promoted replica reports zero staleness
// — it is the authoritative copy.
func (r *Router) fresh(li LagInfo, at time.Time) bool {
	if li.Staleness < 0 {
		return false
	}
	return li.Staleness+time.Since(at) <= r.maxStale
}

// lagInfo returns a replica's lag and when it was measured, probing at most
// every probeTTL. The cache is slot-indexed; a failover swap invalidates
// every slot, so a stale index never vouches for the wrong client.
func (r *Router) lagInfo(ctx context.Context, idx int, rc *Client) (LagInfo, time.Time, error) {
	r.mu.Lock()
	li, at := r.lag[idx], r.lagAt[idx]
	r.mu.Unlock()
	if !at.IsZero() && time.Since(at) < r.probeTTL {
		return li, at, nil
	}
	li, err := rc.Lag(ctx)
	if err != nil {
		return LagInfo{Staleness: -1}, time.Time{}, err
	}
	now := time.Now()
	r.mu.Lock()
	r.lag[idx], r.lagAt[idx] = li, now
	r.mu.Unlock()
	return li, now, nil
}
