package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"hrdb/internal/backoff"
	"hrdb/internal/subwire"
)

// This file is the server's change-feed surface and its client. The server
// knows nothing about view maintenance: it decodes the SUBSCRIBE verb and
// delegates to a pluggable hook (Options.Subscribe), so the dependency
// points from internal/view — which implements it — into this package's
// wire contract, never back. The feed itself is encoded by internal/subwire
// on both protocols: v1 streams the frames raw after an empty OK accept,
// v2 wraps each one in a SUB frame correlated by request id.

// SubscribeSource serves change feeds to subscribers. Implemented by
// view.Manager.
type SubscribeSource interface {
	// ServeFeed streams the named view's (or relation's) feed to w in
	// subwire frames, one frame per Write call. Without resume it opens
	// with a full snapshot; with resume it replays exactly the committed
	// deltas after (epoch, offset) or reports an in-band ERR "stale". It
	// returns when ctx is canceled (nil), w fails (the write error), or
	// the feed ends server-side after an in-band ERR frame (nil).
	ServeFeed(ctx context.Context, w io.Writer, name string, epoch uint64, offset int64, resume bool) error
}

// serveSubscribe dispatches one v1 SUBSCRIBE request. It reports whether
// the connection may continue to the next request (an accepted feed never
// continues: it owns the connection until it ends).
//
// A draining server refuses to start a feed — Shutdown closes the store
// (and the view manager) after the drain, and a feed admitted during it
// would race that close. Feeds already running end when Shutdown retires
// their connections: the watchdog below sees the close and cancels the
// feed context, so the drain is never held up by an idle subscriber.
func (s *Server) serveSubscribe(bw *bufio.Writer, br *bufio.Reader, req request) bool {
	if s.opts.Subscribe == nil {
		return writeErr(bw, codeUnsupported, 0, "subscriptions not enabled") == nil
	}
	if s.drainingNow() {
		writeErr(bw, codeShutdown, 0, "server draining")
		return false
	}
	// Accept, then the subwire stream owns the connection.
	if writeOK(bw, "") != nil {
		return false
	}
	metricSubStarted.Inc()
	metricSubStreams.Inc()
	defer metricSubStreams.Dec()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		// The client sends nothing during a feed: any byte — or the EOF of
		// a closed or drained connection — ends it.
		br.ReadByte()
		cancel()
	}()
	s.opts.Subscribe.ServeFeed(ctx, flushWriter{bw}, req.input, req.epoch, req.offset, req.resume)
	return false
}

// flushWriter flushes after every Write so each feed frame reaches the
// socket as soon as the source emits it.
type flushWriter struct{ bw *bufio.Writer }

func (w flushWriter) Write(p []byte) (int, error) {
	if _, err := w.bw.Write(p); err != nil {
		return 0, err
	}
	return len(p), w.bw.Flush()
}

// subscribePayload encodes a v2 SUBSCRIBE frame payload:
// u8 resume | u64 epoch | u64 offset | name bytes.
func subscribePayload(name string, epoch uint64, offset int64, resume bool) []byte {
	p := make([]byte, 0, 17+len(name))
	var r byte
	if resume {
		r = 1
	}
	p = append(p, r)
	p = binary.BigEndian.AppendUint64(p, epoch)
	p = binary.BigEndian.AppendUint64(p, uint64(offset))
	return append(p, name...)
}

// parseSubscribePayload decodes a v2 SUBSCRIBE frame payload.
func parseSubscribePayload(p []byte) (name string, epoch uint64, offset int64, resume bool, err error) {
	if len(p) < 17 {
		return "", 0, 0, false, fmt.Errorf("%w: SUBSCRIBE payload %d bytes, want ≥ 17", errProto, len(p))
	}
	offset = int64(binary.BigEndian.Uint64(p[9:17]))
	if offset < 0 {
		return "", 0, 0, false, fmt.Errorf("%w: negative SUBSCRIBE offset", errProto)
	}
	return string(p[17:]), binary.BigEndian.Uint64(p[1:9]), offset, p[0] != 0, nil
}

// subFrameWriter adapts a muxConn into the io.Writer ServeFeed pushes
// subwire frames through: each Write becomes one SUB frame.
type subFrameWriter struct {
	m      *muxConn
	id     uint64
	stream uint32
}

func (w subFrameWriter) Write(p []byte) (int, error) {
	payload := append([]byte(nil), p...)
	if err := w.m.send(frame{typ: fvSub, id: w.id, stream: w.stream, payload: payload}); err != nil {
		return 0, err
	}
	return len(p), nil
}

// subscribe handles one v2 SUBSCRIBE frame: the feed runs in its own
// goroutine, pushing SUB frames through the shared writer, so the reader
// loop (and every other stream) keeps going. It reports whether the
// connection may continue (a malformed payload or duplicate id desyncs the
// conversation and closes it).
func (m *muxConn) subscribe(f frame) bool {
	s := m.srv
	name, epoch, offset, resume, err := parseSubscribePayload(f.payload)
	if err != nil {
		m.send(errFrame(f.id, f.stream, codeProto, 0, err.Error()))
		return false
	}
	if s.opts.Subscribe == nil {
		m.send(errFrame(f.id, f.stream, codeUnsupported, 0, "subscriptions not enabled"))
		return true
	}
	if s.drainingNow() {
		m.send(errFrame(f.id, f.stream, codeShutdown, 0, "server draining"))
		return true
	}
	ctx, cancel := context.WithCancel(context.Background())
	m.mu.Lock()
	_, dupTask := m.byID[f.id]
	_, dupSub := m.subs[f.id]
	if dupTask || dupSub {
		m.mu.Unlock()
		cancel()
		m.send(errFrame(f.id, f.stream, codeProto, 0, "duplicate request id"))
		return false
	}
	if m.subs == nil {
		m.subs = make(map[uint64]context.CancelFunc)
	}
	m.subs[f.id] = cancel
	m.mu.Unlock()

	metricSubStarted.Inc()
	metricSubStreams.Inc()
	m.subWG.Add(1)
	go func() {
		defer m.subWG.Done()
		defer metricSubStreams.Dec()
		s.opts.Subscribe.ServeFeed(ctx, subFrameWriter{m, f.id, f.stream}, name, epoch, offset, resume)
		cancel()
		m.mu.Lock()
		delete(m.subs, f.id)
		m.mu.Unlock()
		// The terminating frame unblocks a client reader deterministically
		// even when the feed ended without an in-band subwire ERR.
		m.send(errFrame(f.id, f.stream, codeCanceled, 0, "subscription ended"))
	}()
	return true
}

// SubChange is one change delivered by a Subscription. A "snapshot" change
// carries the feed's full row set and resets any state the consumer keeps;
// a "delta" carries incremental row changes to apply on top. Epoch/Offset
// is the resumable position after applying the change.
type SubChange struct {
	Kind           string // "snapshot" | "delta"
	Epoch          uint64
	Offset         int64
	Rows           []string // snapshot: the full row set, sorted
	Added, Removed []string // delta: row changes, sorted
}

// Subscription is a client-side change feed over its own dedicated
// connection (feeds are long-lived streams; sharing the request connection
// would head-of-line block it). It reconnects automatically: after a
// severed connection or a server restart, Next resumes from the last
// delivered position, so the caller sees exactly the committed changes,
// gap- and duplicate-free. When the server can no longer serve that
// position (the retained journal was trimmed) the feed transparently
// restarts with a fresh "snapshot" change.
//
// Next and Close may be called from different goroutines; Next itself is
// not reentrant.
type Subscription struct {
	addr string
	name string
	o    dialConfig

	reqMu sync.Mutex // serializes Next

	mu     sync.Mutex // guards conn identity and closed (Close vs Next)
	conn   net.Conn
	closed bool

	// Connection-epoch state, used only under reqMu.
	br      *bufio.Reader
	v2      bool
	dec     subwire.Decoder
	scratch []byte

	havePos bool
	epoch   uint64
	offset  int64
	attempt int
}

// Subscribe opens a change feed over the named view (or relation),
// starting with a full snapshot. The feed uses a dedicated connection,
// negotiated like the client's own (protocol pinning applies); it is lazy —
// the first Next dials.
func (c *Client) Subscribe(name string) (*Subscription, error) {
	return c.subscribe(name, 0, 0, false)
}

// SubscribeFrom opens a change feed resuming after a previously delivered
// position: only committed changes after (epoch, offset) are delivered. A
// position the server no longer retains restarts the feed with a fresh
// snapshot, exactly like a reconnect-time stale position.
func (c *Client) SubscribeFrom(name string, epoch uint64, offset int64) (*Subscription, error) {
	return c.subscribe(name, epoch, offset, true)
}

func (c *Client) subscribe(name string, epoch uint64, offset int64, resume bool) (*Subscription, error) {
	if name == "" || strings.ContainsAny(name, " \t\r\n") {
		return nil, fmt.Errorf("%w: bad feed name %q", ErrProtocol, name)
	}
	if c.isClosed() {
		return nil, ErrClientClosed
	}
	return &Subscription{
		addr:    c.addr,
		name:    name,
		o:       c.o,
		havePos: resume,
		epoch:   epoch,
		offset:  offset,
	}, nil
}

// Close severs the feed's connection and retires the subscription. A
// blocked Next returns ErrClientClosed.
func (sub *Subscription) Close() error {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return nil
	}
	sub.closed = true
	if sub.conn != nil {
		sub.conn.Close()
		sub.conn = nil
	}
	return nil
}

// install registers a new connection unless the subscription was closed
// meanwhile.
func (sub *Subscription) install(conn net.Conn) error {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		conn.Close()
		return ErrClientClosed
	}
	sub.conn = conn
	return nil
}

// drop discards the current connection.
func (sub *Subscription) drop() {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.conn != nil {
		sub.conn.Close()
		sub.conn = nil
	}
	sub.br = nil
}

func (sub *Subscription) isClosed() bool {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.closed
}

func (sub *Subscription) current() net.Conn {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.conn
}

// Next blocks until the feed delivers the next change. Heartbeats are
// consumed internally (they advance the resume position); reconnects with
// backoff are transparent. It returns the ctx error on expiry (the feed
// resumes on the following call), ErrClientClosed after Close, and a
// terminal *ServerError when the feed cannot continue — the name is
// unknown ("notfound"), the view was dropped ("dropped"), or the server
// refused the subscription outright (e.g. ErrUnsupported).
func (sub *Subscription) Next(ctx context.Context) (SubChange, error) {
	sub.reqMu.Lock()
	defer sub.reqMu.Unlock()
	for {
		if sub.isClosed() {
			return SubChange{}, ErrClientClosed
		}
		if err := ctx.Err(); err != nil {
			return SubChange{}, err
		}
		if sub.current() == nil {
			if err := sub.connect(ctx); err != nil {
				if terminal, werr := sub.setback(ctx, err); terminal {
					return SubChange{}, werr
				}
				continue
			}
		}
		f, err := sub.readFeedFrame(ctx)
		if err != nil {
			sub.drop()
			if terminal, werr := sub.setback(ctx, err); terminal {
				return SubChange{}, werr
			}
			continue
		}
		switch f.Kind {
		case subwire.KindHB:
			sub.markPos(f.Epoch, f.Offset)
		case subwire.KindSnap:
			sub.markPos(f.Epoch, f.Offset)
			return SubChange{Kind: "snapshot", Epoch: f.Epoch, Offset: f.Offset, Rows: f.Rows}, nil
		case subwire.KindDelta:
			sub.markPos(f.Epoch, f.Offset)
			return SubChange{Kind: "delta", Epoch: f.Epoch, Offset: f.Offset, Added: f.Added, Removed: f.Removed}, nil
		case subwire.KindErr:
			sub.drop()
			switch f.Code {
			case "stale":
				// The journal no longer covers our position: restart fresh.
				// The next change is a full snapshot, which resets the
				// consumer's state, so nothing is silently lost.
				sub.havePos = false
			case "shutdown":
				// Server-side source closing (restart, failover): retry.
				if terminal, werr := sub.setback(ctx, &ServerError{Code: codeShutdown, Msg: f.Msg}); terminal {
					return SubChange{}, werr
				}
			default: // notfound, dropped, future codes: terminal
				return SubChange{}, &ServerError{Code: Code(f.Code), Msg: f.Msg}
			}
		}
	}
}

// markPos records a delivered position and resets the reconnect backoff (a
// healthy frame proves the feed is live).
func (sub *Subscription) markPos(epoch uint64, offset int64) {
	sub.havePos = true
	sub.epoch = epoch
	sub.offset = offset
	sub.attempt = 0
}

// setback classifies an error and sleeps the backoff when it is worth
// retrying. Terminal errors (and ctx expiry during the sleep) stop Next.
func (sub *Subscription) setback(ctx context.Context, err error) (terminal bool, out error) {
	if sub.isClosed() {
		return true, ErrClientClosed
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return true, ctxErr
	}
	var hint time.Duration
	if se, ok := err.(*ServerError); ok {
		switch se.Code {
		case codeShutdown, codeOverloaded, codeQuota, codeCanceled:
			// Not executed / feed ended server-side: reconnect and resume.
			hint = se.RetryAfter
		default:
			// unsupported, tenant, proto, notfound, …: retrying cannot help.
			return true, err
		}
	}
	delay := backoff.Policy{Base: sub.o.baseBackoff, Max: sub.o.maxBackoff}.Delay(sub.attempt, hint)
	sub.attempt++
	if serr := backoff.Sleep(ctx, delay); serr != nil {
		return true, serr
	}
	return false, nil
}

// connect dials a fresh connection, negotiates the protocol like the
// owning client would, and sends the SUBSCRIBE request (resuming from the
// last delivered position when one is known).
func (sub *Subscription) connect(ctx context.Context) error {
	conn, v2, br, err := sub.negotiate(ctx)
	if err != nil {
		return err
	}
	if err := sub.install(conn); err != nil {
		return err
	}
	sub.br = br
	sub.v2 = v2
	sub.dec = subwire.Decoder{}

	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if v2 {
		f := frame{typ: fvSubscribe, id: 1, stream: 1,
			payload: subscribePayload(sub.name, sub.epoch, sub.offset, sub.havePos)}
		if err := writeFrame(conn, f); err != nil {
			sub.drop()
			return err
		}
		// Acceptance is implicit: the first frame back is either SUB (feed
		// running) or ERR (refused), handled by readFeedFrame.
		return nil
	}
	reqLine := "SUBSCRIBE " + sub.name + "\n"
	if sub.havePos {
		reqLine = fmt.Sprintf("SUBSCRIBE %s %d %d\n", sub.name, sub.epoch, sub.offset)
	}
	if _, err := io.WriteString(conn, reqLine); err != nil {
		sub.drop()
		return err
	}
	resp, err := readResponse(br, sub.o.maxResponse)
	if err != nil {
		sub.drop()
		return err
	}
	if !resp.ok {
		sub.drop()
		return &ServerError{Code: resp.code, Msg: resp.payload, RetryAfter: resp.retryAfter}
	}
	return nil
}

// negotiate dials and runs the protocol handshake, mirroring
// Client.connectLocked: offer v2 unless pinned to v1, fall back to v1 when
// the server rejects the upgrade (unless pinned to v2).
func (sub *Subscription) negotiate(ctx context.Context) (net.Conn, bool, *bufio.Reader, error) {
	dial := func() (net.Conn, error) {
		d := net.Dialer{Timeout: sub.o.dialTimeout}
		return d.DialContext(ctx, "tcp", sub.addr)
	}
	conn, err := dial()
	if err != nil {
		return nil, false, nil, err
	}
	if sub.o.protocol == ProtocolV1 {
		return conn, false, bufio.NewReader(conn), nil
	}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	br := bufio.NewReader(conn)
	hello := "HELLO 2\n"
	if sub.o.tenant != "" {
		hello = "HELLO 2 " + sub.o.tenant + "\n"
	}
	if _, err := io.WriteString(conn, hello); err != nil {
		conn.Close()
		return nil, false, nil, err
	}
	resp, err := readResponse(br, sub.o.maxResponse)
	if err != nil {
		conn.Close()
		return nil, false, nil, err
	}
	if resp.ok {
		if !strings.HasPrefix(resp.payload, "v2") {
			conn.Close()
			return nil, false, nil, fmt.Errorf("%w: unexpected HELLO reply %q", ErrProtocol, resp.payload)
		}
		return conn, true, br, nil
	}
	conn.Close()
	if resp.code == codeProto && sub.o.protocol == ProtocolAuto {
		v1conn, err := dial()
		if err != nil {
			return nil, false, nil, err
		}
		return v1conn, false, bufio.NewReader(v1conn), nil
	}
	return nil, false, nil, &ServerError{Code: resp.code, Msg: resp.payload, RetryAfter: resp.retryAfter}
}

// readFeedFrame returns the next subwire frame from the current
// connection, unwrapping v2 SUB frames when the feed rides protocol v2. A
// ctx expiry severs the connection (the next call reconnects and resumes,
// so nothing is lost).
func (sub *Subscription) readFeedFrame(ctx context.Context) (subwire.Frame, error) {
	conn := sub.current()
	if conn == nil {
		return subwire.Frame{}, ErrClientClosed
	}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	for {
		if f, ok, err := sub.dec.Next(); err != nil {
			return subwire.Frame{}, err
		} else if ok {
			return f, nil
		}
		if sub.v2 {
			fr, err := readFrame(sub.br, sub.o.maxResponse)
			if err != nil {
				return subwire.Frame{}, err
			}
			switch fr.typ {
			case fvSub:
				sub.dec.Feed(fr.payload)
			case fvErr:
				code, retryAfter, msg, perr := parseErrFramePayload(fr.payload)
				if perr != nil {
					return subwire.Frame{}, perr
				}
				return subwire.Frame{}, &ServerError{Code: code, Msg: msg, RetryAfter: retryAfter}
			default:
				return subwire.Frame{}, fmt.Errorf("%w: unexpected frame type 0x%02x on a feed", ErrProtocol, fr.typ)
			}
			continue
		}
		if sub.scratch == nil {
			sub.scratch = make([]byte, 4096)
		}
		n, err := sub.br.Read(sub.scratch)
		if n > 0 {
			sub.dec.Feed(sub.scratch[:n])
			continue // drain the decoder before surfacing a read error
		}
		if err != nil {
			return subwire.Frame{}, err
		}
	}
}
