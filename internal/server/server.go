package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strconv"
	"sync"
	"time"

	"hrdb/internal/hql"
	"hrdb/internal/obs"
	"hrdb/internal/shard"
	"hrdb/internal/storage"
)

// ErrServerClosed is returned by Start and Shutdown on a server that is
// already draining or closed.
var ErrServerClosed = errors.New("server: closed")

// Options tunes the resilience machinery. The zero value selects sensible
// defaults (see the field comments).
type Options struct {
	// Workers is the number of statement-executing goroutines; admitted
	// requests beyond it wait in the queue. Default: GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue. A request arriving when
	// Workers are busy and the queue is full is shed with "overloaded"
	// instead of growing an unbounded backlog. Default: 4 × Workers.
	QueueDepth int
	// MaxConns bounds concurrent connections; excess connections receive
	// an "overloaded" error frame and are closed. Default: 256.
	MaxConns int
	// IdleTimeout closes connections with no request activity. Default:
	// 5 minutes; negative disables.
	IdleTimeout time.Duration
	// MaxStatementBytes bounds one EXEC payload. Default: 1 MiB.
	MaxStatementBytes int
	// MaxDeadline caps (and, when the client sends none, provides) the
	// per-request execution deadline. Default: 30 seconds; negative
	// disables.
	MaxDeadline time.Duration
	// RetryAfter is the backoff hint attached to "overloaded" errors.
	// Default: 50 ms.
	RetryAfter time.Duration
	// CloseTarget makes Shutdown close the target (via its Close() error
	// method, e.g. a storage.Store) exactly once after the drain.
	CloseTarget bool
	// SlowQuery, when non-nil, records statements slower than its threshold
	// (one line per offending EXEC, with per-stage timings).
	SlowQuery *obs.SlowQueryLog
	// Tracer, when non-nil, receives a span per executed statement.
	Tracer obs.Tracer
	// Repl, when non-nil, enables the SNAP and REPL verbs: this server can
	// bootstrap and stream WAL records to follower processes. Typically a
	// repl.Primary over the same store the server executes against.
	Repl ReplSource
	// Promote, when non-nil, enables the PROMOTE verb (manual failover):
	// it must flip the serving target writable and is typically wired to a
	// repl.Replica on a server that fronts one.
	Promote func() error
	// LagProbe, when non-nil, enables the LAG verb: it reports the serving
	// replica's replication state for lag-bounded read routing.
	LagProbe func() LagInfo
	// Tenants declares named namespaces this server hosts besides the
	// default one (the main target). Connections resolve a namespace at
	// HELLO (protocol v2) or with USE (protocol v1); each tenant carries
	// its own admission quota, rate limit, and labeled metric series. A
	// config named DefaultTenant attaches limits to the default namespace.
	Tenants []TenantConfig
	// DisableV2 makes the server reject the HELLO upgrade exactly like a
	// pre-v2 build (ERR proto, connection closed), serving only the v1
	// line protocol. For cross-version compatibility testing.
	DisableV2 bool
	// Shard, when non-nil, marks this server a cluster member: it enables
	// the SHARDMAP verb (shard identity probe, answered inline) and the
	// EXECSHARD verb (shard operations — scatter reads and two-phase-commit
	// participation — executed on the worker pool like EXEC).
	Shard *shard.Node
	// Subscribe, when non-nil, enables the SUBSCRIBE verb on both
	// protocols: clients follow materialized-view (and relation) change
	// feeds with resumable positions. Typically a view.Manager over the
	// same store the server executes against.
	Subscribe SubscribeSource
}

// withDefaults resolves zero values.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.MaxConns <= 0 {
		o.MaxConns = 256
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.MaxStatementBytes <= 0 {
		o.MaxStatementBytes = 1 << 20
	}
	if o.MaxDeadline == 0 {
		o.MaxDeadline = 30 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 50 * time.Millisecond
	}
	return o
}

// taskResult is a finished statement execution.
type taskResult struct {
	out      string
	err      error
	panicked bool
}

// task is one admitted EXEC request travelling through the work queue.
type task struct {
	sess   *hql.Session
	input  string
	ctx    context.Context
	cancel context.CancelFunc
	// run, when non-nil, replaces the session execution (EXECSHARD runs
	// the shard node instead of parsing input as HQL).
	run func(ctx context.Context) (string, error)
	// tn is the namespace the request runs under; the worker returns its
	// admission slot when the statement leaves the pool.
	tn *tenantState
	// done carries the result; buffered so an abandoning connection
	// handler (deadline fired first) never blocks the worker.
	done chan taskResult
}

// Server is a TCP front end over one hql.Target. Each connection gets its
// own hql.Session (sessions are single-goroutine; the protocol admits one
// request at a time per connection), writes are serialized by the target
// itself, and statement execution runs on a fixed worker pool behind a
// bounded admission queue.
type Server struct {
	target  hql.Target
	opts    Options
	tenants map[string]*tenantState // immutable after New

	ln   net.Listener
	work chan *task

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	tasks    map[*task]struct{} // admitted, not yet finished (for drain cancel)
	started  bool
	draining bool

	inflight  sync.WaitGroup // admitted tasks
	replyWG   sync.WaitGroup // EXEC request/reply cycles (reply flushed)
	workerWG  sync.WaitGroup
	connWG    sync.WaitGroup
	acceptWG  sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// New creates a server over target. The target must be internally
// synchronized for concurrent use (catalog.Database and storage.Store
// both are).
func New(target hql.Target, opts Options) *Server {
	o := opts.withDefaults()
	return &Server{
		target:  target,
		opts:    o,
		tenants: buildTenants(target, o.Tenants),
		conns:   make(map[net.Conn]struct{}),
		tasks:   make(map[*task]struct{}),
	}
}

// Start listens on addr ("host:port"; port 0 picks a free port) and begins
// serving in background goroutines. Use Addr to learn the bound address
// and Shutdown to stop.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.started || s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.started = true
	s.ln = ln
	s.work = make(chan *task, s.opts.QueueDepth)
	s.mu.Unlock()

	for i := 0; i < s.opts.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the listener's address (empty before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// acceptLoop admits connections up to MaxConns; beyond the limit the
// connection is answered with one "overloaded" frame and closed, so the
// client backs off instead of hanging in the TCP backlog.
func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown (or fatal; accept loop ends)
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			s.refuse(c, codeShutdown, 0, "server is shutting down")
			continue
		}
		if len(s.conns) >= s.opts.MaxConns {
			s.mu.Unlock()
			metricConnRefused.Inc()
			s.refuse(c, codeOverloaded, s.opts.RetryAfter, "server at connection limit")
			continue
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		metricActiveConns.Inc()
		go s.handleConn(c)
	}
}

// refuse answers a connection with one error frame and closes it.
func (s *Server) refuse(c net.Conn, code Code, retryAfter time.Duration, msg string) {
	c.SetWriteDeadline(time.Now().Add(2 * time.Second))
	bw := bufio.NewWriter(c)
	writeErr(bw, code, retryAfter, msg)
	c.Close()
}

// dropConn unregisters and closes a connection.
func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	if _, ok := s.conns[c]; ok {
		delete(s.conns, c)
		metricActiveConns.Dec()
	}
	s.mu.Unlock()
	c.Close()
}

// handleConn serves one connection: a strictly sequential read-execute-
// reply loop over the connection's private session. A panic anywhere in
// the handler is confined to this connection.
func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	defer s.dropConn(c)
	defer func() {
		if p := recover(); p != nil {
			// Handler bug or poisoned connection state: drop the
			// connection, keep the server.
			_ = p
		}
	}()

	tn := s.tenants[DefaultTenant]
	sess := s.newSession(tn)
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	for {
		if s.opts.IdleTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		req, err := readRequest(br, s.opts.MaxStatementBytes)
		if err != nil {
			switch {
			case errors.Is(err, errTooLarge):
				writeErr(bw, codeTooLarge, 0, err.Error())
			case errors.Is(err, errProto):
				writeErr(bw, codeProto, 0, err.Error())
			}
			return // EOF, idle timeout, or desync: close
		}
		c.SetReadDeadline(time.Time{})

		switch req.verb {
		case "PING":
			if writeOK(bw, "pong") != nil {
				return
			}
			continue
		case "STATS":
			if writeOK(bw, obs.Default().RenderText()) != nil {
				return
			}
			continue
		case "QUIT":
			return
		case "HELLO":
			if s.opts.DisableV2 {
				// Byte-identical to what a pre-v2 build answers, so clients
				// exercise the same fallback against both.
				writeErr(bw, codeProto, 0, `protocol error: unknown verb "HELLO"`)
				return
			}
			if req.proto < 2 {
				writeErr(bw, codeProto, 0, "unsupported protocol version")
				return
			}
			htn, ok := s.resolveTenant(req.tenant)
			if !ok {
				writeErr(bw, codeTenant, 0, "unknown tenant "+strconv.Quote(req.tenant))
				return
			}
			// Accept: confirm in v1 text framing, then the connection
			// switches to binary frames. serveMux owns it until it ends.
			if writeOK(bw, "v2 tenant="+htn.name) != nil {
				return
			}
			s.serveMux(c, br, htn)
			return
		case "USE":
			utn, ok := s.resolveTenant(req.tenant)
			if !ok {
				// Recoverable: the connection keeps its current namespace.
				if writeErr(bw, codeTenant, 0, "unknown tenant "+strconv.Quote(req.tenant)) != nil {
					return
				}
				continue
			}
			tn = utn
			sess = s.newSession(tn)
			if writeOK(bw, "tenant="+tn.name) != nil {
				return
			}
			continue
		case "SHARDMAP":
			if s.opts.Shard == nil {
				if writeErr(bw, codeUnsupported, 0, "this server is not a shard") != nil {
					return
				}
				continue
			}
			if writeOK(bw, fmt.Sprintf("%d %d", s.opts.Shard.ID, s.opts.Shard.Count)) != nil {
				return
			}
			continue
		case "SNAP", "REPL", "PROMOTE", "LAG":
			// REPL hands the whole connection to the stream until it ends
			// (the read deadline is already cleared above; the stream
			// heartbeats on its own cadence).
			if !s.serveRepl(bw, br, req) {
				return
			}
			continue
		case "SUBSCRIBE":
			// Like REPL, an accepted subscription owns the connection until
			// the feed ends.
			if !s.serveSubscribe(bw, br, req) {
				return
			}
			continue
		}

		if !s.serveExec(bw, sess, req, tn) {
			return
		}
	}
}

// newSession builds a session over a tenant's target with the server's
// observability hooks attached.
func (s *Server) newSession(tn *tenantState) *hql.Session {
	sess := hql.NewSession(tn.target)
	sess.SetSlowQueryLog(s.opts.SlowQuery)
	sess.SetTracer(s.opts.Tracer)
	return sess
}

// serveExec admits, executes, and answers one EXEC request. It reports
// whether the connection may continue to the next request.
func (s *Server) serveExec(bw *bufio.Writer, sess *hql.Session, req request, tn *tenantState) bool {
	// replyWG spans the whole request/reply cycle so a graceful drain keeps
	// the connection open until the answer has been written — the worker
	// marks the statement done before the handler flushes the reply.
	s.replyWG.Add(1)
	defer s.replyWG.Done()
	metricRequests.Inc()
	tn.mRequests.Inc()
	reqStart := time.Now()
	defer func() {
		d := time.Since(reqStart)
		metricRequestNS.ObserveDuration(d)
		tn.mLatency.ObserveDuration(d)
	}()
	ctx, cancel := context.WithCancel(context.Background())
	timeout := req.timeout
	if s.opts.MaxDeadline > 0 && (timeout <= 0 || timeout > s.opts.MaxDeadline) {
		timeout = s.opts.MaxDeadline
	}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeout)
	}
	t := &task{sess: sess, input: req.input, ctx: ctx, cancel: cancel, tn: tn, done: make(chan taskResult, 1)}
	if req.verb == "EXECSHARD" {
		if s.opts.Shard == nil {
			cancel()
			return writeErr(bw, codeUnsupported, 0, "this server is not a shard") == nil
		}
		node, input := s.opts.Shard, req.input
		t.run = func(ctx context.Context) (string, error) { return node.Execute(ctx, input) }
	}

	if code, err := s.submit(t); err != nil {
		cancel()
		switch code {
		case codeOverloaded, codeQuota:
			return writeErr(bw, code, s.opts.RetryAfter, err.Error()) == nil
		default: // shutdown
			writeErr(bw, codeShutdown, 0, err.Error())
			return false
		}
	}

	select {
	case res := <-t.done:
		cancel()
		switch {
		case res.panicked:
			// The session may hold arbitrarily corrupt state: answer, then
			// retire the connection. The server stays up.
			metricPanics.Inc()
			writeErr(bw, codePanic, 0, res.err.Error())
			return false
		case res.err != nil:
			code := codeExec
			if errors.Is(res.err, context.DeadlineExceeded) {
				code = codeDeadline
				metricDeadline.Inc()
			} else if errors.Is(res.err, context.Canceled) {
				code = codeCanceled
			} else if errors.Is(res.err, storage.ErrDeposed) {
				// This node was fenced by a newer primary. The fence check
				// runs before any staging or apply, so the write definitively
				// did not execute — "stale" tells a router to re-discover the
				// primary and retry there.
				code = codeStale
			}
			return writeErr(bw, code, 0, res.err.Error()) == nil
		default:
			return writeOK(bw, res.out) == nil
		}
	case <-ctx.Done():
		// Deadline or drain-cancel fired while the statement was queued or
		// still running. Answer now — the server always answers or sheds —
		// and retire the connection: its session may still be executing, so
		// it must never be handed another statement.
		code := codeDeadline
		if errors.Is(ctx.Err(), context.Canceled) {
			code = codeCanceled
		} else {
			metricDeadline.Inc()
		}
		writeErr(bw, code, 0, ctx.Err().Error())
		return false
	}
}

// submit offers a task to the bounded admission queue without blocking:
// a full queue sheds the request with "overloaded", a tenant over its own
// quota or rate limit is shed with "quota". The inflight count is raised
// before the queue send so drain never misses an admitted task.
// drainingNow reports whether Shutdown has begun. Replication verbs check
// it so no new bootstrap or stream starts once the store's close is
// scheduled.
func (s *Server) drainingNow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) submit(t *task) (code Code, err error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return codeShutdown, errors.New("server is shutting down")
	}
	if t.tn != nil && !t.tn.admit() {
		s.mu.Unlock()
		metricShed.Inc()
		t.tn.mShed.Inc()
		return codeQuota, t.tn.quotaErr()
	}
	s.inflight.Add(1)
	s.tasks[t] = struct{}{}
	select {
	case s.work <- t:
		s.mu.Unlock()
		metricQueueDepth.Inc()
		return "", nil
	default:
		delete(s.tasks, t)
		s.inflight.Done()
		if t.tn != nil {
			t.tn.release()
		}
		s.mu.Unlock()
		metricShed.Inc()
		return codeOverloaded, errors.New("server overloaded: admission queue full")
	}
}

// worker executes queued tasks until the queue is closed and drained.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for t := range s.work {
		metricQueueDepth.Dec()
		res := runTask(t)
		t.done <- res
		if t.tn != nil {
			t.tn.release()
		}
		s.mu.Lock()
		delete(s.tasks, t)
		s.mu.Unlock()
		s.inflight.Done()
	}
}

// runTask executes one statement with panic isolation: a panicking
// statement yields an error result instead of taking the worker (and the
// server) down.
func runTask(t *task) (res taskResult) {
	defer func() {
		if p := recover(); p != nil {
			res = taskResult{
				err:      fmt.Errorf("statement panicked: %v", p),
				panicked: true,
			}
		}
	}()
	if t.run != nil {
		out, err := t.run(t.ctx)
		return taskResult{out: out, err: err}
	}
	out, err := t.sess.ExecContext(t.ctx, t.input)
	return taskResult{out: out, err: err}
}

// Shutdown gracefully stops the server: it stops accepting connections and
// admitting statements, drains in-flight statements, and — once the drain
// completes or ctx expires — cancels whatever is still running, closes
// every connection, and (with Options.CloseTarget) closes the target
// exactly once. It returns ctx.Err() if the drain deadline cut the wait
// short, nil on a clean drain. Repeated calls return ErrServerClosed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.started || s.draining {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.draining = true
	ln := s.ln
	s.mu.Unlock()

	// 1. Stop accepting. The accept loop exits on the listener error.
	ln.Close()
	// 2. No submit can start now (draining is set under mu), so the queue
	//    can close: workers finish the backlog and exit.
	close(s.work)

	// 3. Drain: wait for admitted statements, bounded by ctx.
	drained := waitCh(&s.inflight)
	var drainErr error
	select {
	case <-drained:
		// Statements finished; also wait (ctx-bounded) for their replies to
		// reach the sockets before step 4 severs the connections.
		select {
		case <-waitCh(&s.replyWG):
		case <-ctx.Done():
			drainErr = ctx.Err()
		}
	case <-ctx.Done():
		drainErr = ctx.Err()
		// Deadline: cancel everything still queued or running. Statements
		// on the context-aware paths abort promptly; a statement blocked in
		// non-cancellable code keeps its worker until it returns, but every
		// connection still gets an answer (the handler watches task.ctx).
		s.mu.Lock()
		for t := range s.tasks {
			t.cancel()
		}
		s.mu.Unlock()
		select {
		case <-drained:
			drainErr = nil // everything aborted in time after the cancel
		case <-time.After(100 * time.Millisecond):
		}
	}

	// 4. Retire connections; handlers unblock on the closed conns.
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()

	if drainErr == nil {
		// Clean drain: workers and handlers exit promptly; wait so the
		// caller observes zero server goroutines after Shutdown.
		s.workerWG.Wait()
		s.connWG.Wait()
	}
	s.acceptWG.Wait()

	// 5. Close the target exactly once, after the drain, so every
	//    acknowledged statement is durable before the store closes.
	if s.opts.CloseTarget {
		s.closeOnce.Do(func() {
			if c, ok := s.target.(interface{ Close() error }); ok {
				s.closeErr = c.Close()
			}
		})
		if drainErr == nil && s.closeErr != nil {
			return s.closeErr
		}
	}
	return drainErr
}

// waitCh adapts a WaitGroup to a channel.
func waitCh(wg *sync.WaitGroup) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		wg.Wait()
		close(ch)
	}()
	return ch
}
