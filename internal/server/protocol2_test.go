package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"testing/iotest"
	"time"
)

// fuzzMaxBytes keeps the fuzz target's size limit small so the corpus can
// actually reach the errTooLarge branch without megabyte inputs.
const fuzzMaxBytes = 1 << 10

func TestFrameRoundTrip(t *testing.T) {
	cases := []frame{
		{typ: fvPing, id: 1, stream: 0},
		{typ: fvExec, flags: flagEndStream, id: math.MaxUint64, stream: math.MaxUint32, payload: execPayload(time.Second, "HOLDS Flies (Tweety);")},
		{typ: fvOK, id: 7, stream: 3, payload: []byte("true\n")},
		{typ: fvErr, id: 9, stream: 2, payload: errFramePayload(codeOverloaded, 50*time.Millisecond, "server overloaded")},
		{typ: fvCancel, id: 12, stream: 1},
		{typ: fvEndStream, id: 13, stream: 4},
		{typ: fvExec, id: 14, stream: 5, payload: execPayload(0, "")},
	}
	for i, want := range cases {
		wire := appendFrame(nil, want)
		got, err := readFrame(bufio.NewReader(bytes.NewReader(wire)), maxInt(len(want.payload), 64))
		if err != nil {
			t.Fatalf("case %d: readFrame: %v", i, err)
		}
		if got.typ != want.typ || got.flags != want.flags || got.id != want.id || got.stream != want.stream || !bytes.Equal(got.payload, want.payload) {
			t.Errorf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestExecPayloadRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in     time.Duration
		want   time.Duration
		script string
	}{
		{750 * time.Millisecond, 750 * time.Millisecond, "SHOW RELATIONS;"},
		{0, 0, ""},
		{-time.Second, 0, "x"}, // negative clamps to no deadline
		{5000 * time.Hour, math.MaxUint32 * time.Millisecond, "y"},       // overflow clamps to the field max
		{time.Millisecond / 2, 0, "sub-millisecond rounds down to zero"}, // ms granularity
	} {
		timeout, script, err := parseExecPayload(execPayload(tc.in, tc.script))
		if err != nil {
			t.Fatalf("parseExecPayload(%v, %q): %v", tc.in, tc.script, err)
		}
		if timeout != tc.want || script != tc.script {
			t.Errorf("exec payload (%v, %q): got (%v, %q), want (%v, %q)", tc.in, tc.script, timeout, script, tc.want, tc.script)
		}
	}
	if _, _, err := parseExecPayload([]byte{1, 2, 3}); !errors.Is(err, errProto) {
		t.Errorf("short EXEC payload: got %v, want errProto", err)
	}
}

func TestErrFramePayloadRoundTrip(t *testing.T) {
	code, retry, msg, err := parseErrFramePayload(errFramePayload(codeQuota, 250*time.Millisecond, "tenant over budget"))
	if err != nil {
		t.Fatalf("parseErrFramePayload: %v", err)
	}
	if code != codeQuota || retry != 250*time.Millisecond || msg != "tenant over budget" {
		t.Errorf("got (%q, %v, %q)", code, retry, msg)
	}

	// A pathological code longer than the u8 length field truncates rather
	// than corrupting the frame.
	long := Code(bytes.Repeat([]byte("c"), 300))
	code, _, msg, err = parseErrFramePayload(errFramePayload(long, 0, "m"))
	if err != nil {
		t.Fatalf("parseErrFramePayload(long code): %v", err)
	}
	if len(code) != math.MaxUint8 || msg != "m" {
		t.Errorf("long code: got len %d, msg %q; want %d, %q", len(code), msg, math.MaxUint8, "m")
	}

	for _, bad := range [][]byte{
		{},             // empty
		{5, 'a', 'b'},  // code shorter than announced
		{1, 'a', 0, 0}, // retry field truncated
		{255},          // announced code with no bytes at all
	} {
		if _, _, _, err := parseErrFramePayload(bad); !errors.Is(err, errProto) {
			t.Errorf("parseErrFramePayload(%v): got %v, want errProto", bad, err)
		}
	}
}

func TestReadFrameRejectsMalformed(t *testing.T) {
	// Announced length below the fixed header is structurally impossible.
	under := binary4(frameHeader - 1)
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(under)), fuzzMaxBytes); !errors.Is(err, errProto) {
		t.Errorf("undersized length: got %v, want errProto", err)
	}

	// Announced length over maxBytes+header is rejected before allocation.
	over := binary4(uint32(fuzzMaxBytes) + frameHeader + 1)
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(over)), fuzzMaxBytes); !errors.Is(err, errTooLarge) {
		t.Errorf("oversized length: got %v, want errTooLarge", err)
	}

	// A frame whose body stops short of the announced length is a protocol
	// error, not a silent EOF.
	whole := appendFrame(nil, frame{typ: fvPing, id: 1})
	truncated := whole[:len(whole)-1]
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(truncated)), fuzzMaxBytes); !errors.Is(err, errProto) {
		t.Errorf("truncated body: got %v, want errProto", err)
	}

	// Clean EOF before any frame byte is io.EOF, so idle connection teardown
	// is distinguishable from corruption.
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(nil)), fuzzMaxBytes); !errors.Is(err, io.EOF) {
		t.Errorf("empty stream: got %v, want io.EOF", err)
	}
}

func binary4(n uint32) []byte {
	return []byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
}

func TestFrameResponseRejectsUnknownType(t *testing.T) {
	if _, err := frameResponse(frame{typ: fvExec}); !errors.Is(err, errProto) {
		t.Errorf("request-typed frame as response: got %v, want errProto", err)
	}
	resp, err := frameResponse(frame{typ: fvOK, payload: []byte("out")})
	if err != nil || !resp.ok || resp.payload != "out" {
		t.Errorf("OK frame: got (%+v, %v)", resp, err)
	}
	resp, err = frameResponse(frame{typ: fvErr, payload: errFramePayload(codeExec, 0, "boom")})
	if err != nil || resp.ok || resp.code != codeExec || resp.payload != "boom" {
		t.Errorf("ERR frame: got (%+v, %v)", resp, err)
	}
}

// FuzzFrameDecode holds the decoder to two properties on arbitrary bytes:
//
//  1. Chunked delivery is invisible: decoding from a reader that yields one
//     byte per Read returns exactly the same frame (or same error class) as
//     decoding the whole buffer at once. TCP segmentation must never change
//     the result.
//  2. Malformed input fails loudly with a classified error — errProto,
//     errTooLarge, or io EOF variants — never a panic, hang, or garbage
//     frame that re-encodes differently than it arrived.
func FuzzFrameDecode(f *testing.F) {
	f.Add(appendFrame(nil, frame{typ: fvPing, id: 1}))
	f.Add(appendFrame(nil, frame{typ: fvExec, flags: flagEndStream, id: 42, stream: 7, payload: execPayload(time.Second, "HOLDS Flies (Tweety);")}))
	f.Add(appendFrame(nil, frame{typ: fvErr, id: 3, stream: 1, payload: errFramePayload(codeQuota, time.Second, "shed")}))
	f.Add(binary4(frameHeader - 1))                         // undersized announced length
	f.Add(binary4(uint32(fuzzMaxBytes) + frameHeader + 1))  // oversized announced length
	f.Add(appendFrame(nil, frame{typ: fvPing, id: 9})[:10]) // truncated body
	f.Add([]byte{})                                         // clean EOF
	f.Add([]byte{0, 0})                                     // truncated length prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		oneShot, errOne := readFrame(bufio.NewReaderSize(bytes.NewReader(data), 16), fuzzMaxBytes)
		chunked, errChunk := readFrame(bufio.NewReaderSize(iotest.OneByteReader(bytes.NewReader(data)), 16), fuzzMaxBytes)

		if (errOne == nil) != (errChunk == nil) {
			t.Fatalf("chunking changed the outcome: one-shot err %v, chunked err %v", errOne, errChunk)
		}
		if errOne != nil {
			// Same failure class regardless of delivery. io.ReadFull turns a
			// mid-read EOF into ErrUnexpectedEOF, and the truncated-body path
			// wraps it in errProto; which of the EOF flavors appears can
			// legitimately differ at the length-prefix boundary, so compare
			// at the class level.
			class := func(err error) string {
				switch {
				case errors.Is(err, errTooLarge):
					return "toolarge"
				case errors.Is(err, errProto):
					return "proto"
				case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
					return "eof"
				default:
					return "other"
				}
			}
			c1, c2 := class(errOne), class(errChunk)
			if c1 == "other" || c2 == "other" {
				t.Fatalf("unclassified decode error: one-shot %v, chunked %v", errOne, errChunk)
			}
			if c1 != c2 {
				t.Fatalf("chunking changed the error class: one-shot %v (%s), chunked %v (%s)", errOne, c1, errChunk, c2)
			}
			return
		}

		if oneShot.typ != chunked.typ || oneShot.flags != chunked.flags ||
			oneShot.id != chunked.id || oneShot.stream != chunked.stream ||
			!bytes.Equal(oneShot.payload, chunked.payload) {
			t.Fatalf("chunking changed the frame:\n one-shot %+v\n  chunked %+v", oneShot, chunked)
		}

		// A successfully decoded frame re-encodes to exactly the bytes
		// consumed: decode∘encode is the identity on valid frames.
		wire := appendFrame(nil, oneShot)
		if !bytes.Equal(wire, data[:len(wire)]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", wire, data[:len(wire)])
		}
	})
}
