package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// The replication verbs at the protocol level, against stub hooks — the
// full stack (real Primary/Replica) is exercised by internal/repl's tests;
// here the server's dispatch, framing, and client surface are pinned in
// isolation.

// stubRepl is a canned ReplSource.
type stubRepl struct {
	snapshot []byte
	snapErr  error
	streamed chan [3]int64 // (epoch, offset, term) each ServeStream received
}

func (s *stubRepl) Snapshot() ([]byte, error) { return s.snapshot, s.snapErr }

func (s *stubRepl) ServeStream(r *bufio.Reader, w *bufio.Writer, epoch uint64, offset int64, term uint64) error {
	if s.streamed != nil {
		s.streamed <- [3]int64{int64(epoch), offset, int64(term)}
	}
	// Emit one heartbeat so the follower side has something to read, then
	// end the stream.
	fmt.Fprintf(w, "HB %d %d\n", epoch, offset)
	return w.Flush()
}

func TestLagPayloadRoundTrip(t *testing.T) {
	cases := []LagInfo{
		{Staleness: 0, Epoch: 0, Offset: 0, State: "streaming"},
		{Staleness: 1500 * time.Millisecond, Epoch: 3, Offset: 12345, State: "catchup"},
		{Staleness: -1, Epoch: 0, Offset: 0, State: "connecting"},
		{Staleness: 0, Epoch: 9, Offset: 7, State: "promoted", Term: 4, ID: "r1", Source: "10.0.0.9:7584"},
	}
	for _, want := range cases {
		got, err := parseLagPayload(lagPayload(want))
		if err != nil {
			t.Fatalf("parse(%q): %v", lagPayload(want), err)
		}
		if want.Staleness < 0 {
			if got.Staleness >= 0 {
				t.Fatalf("unknown staleness round-tripped to %v", got.Staleness)
			}
			got.Staleness = want.Staleness
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
	// Empty id/source render as "-" so the payload stays field-splittable.
	if li := (LagInfo{Staleness: -1}); lagPayload(li) != "-1 0 0 unknown 0 - -" {
		t.Fatalf("empty-state payload = %q", lagPayload(li))
	}
	// The legacy 4-field payload (pre-failover peers) still parses.
	legacy, err := parseLagPayload("250 1 42 streaming")
	if err != nil || legacy.State != "streaming" || legacy.Term != 0 || legacy.ID != "" {
		t.Fatalf("legacy payload = %+v, %v", legacy, err)
	}
	for _, bad := range []string{"", "1 2 3", "x 2 3 s", "1 x 3 s", "1 2 x s", "1 2 3 s extra",
		"1 2 3 s x id src", "1 2 3 s 4 id src extra"} {
		if _, err := parseLagPayload(bad); err == nil {
			t.Fatalf("parseLagPayload(%q) accepted", bad)
		}
	}
}

func TestReplVerbsUnsupportedWithoutHooks(t *testing.T) {
	srv := startServer(t, newMemTarget(t), Options{})
	for _, verb := range []string{"SNAP", "LAG", "PROMOTE"} {
		c, err := netDial(srv.Addr())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		fmt.Fprintf(c, "%s\n", verb)
		resp, err := readResponseConn(c)
		c.Close()
		if err != nil {
			t.Fatalf("%s: %v", verb, err)
		}
		if resp.ok || resp.code != codeUnsupported {
			t.Fatalf("%s = ok=%v code=%q, want ERR %s", verb, resp.ok, resp.code, codeUnsupported)
		}
	}
}

func TestSnapServesSnapshotPayload(t *testing.T) {
	srv := startServer(t, newMemTarget(t), Options{Repl: &stubRepl{snapshot: []byte("opaque-bootstrap-bytes")}})
	c, err := netDial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	fmt.Fprintln(c, "SNAP")
	resp, err := readResponseConn(c)
	if err != nil {
		t.Fatalf("SNAP: %v", err)
	}
	if !resp.ok || resp.payload != "opaque-bootstrap-bytes" {
		t.Fatalf("SNAP = ok=%v payload=%q", resp.ok, resp.payload)
	}

	// Snapshot failures surface as exec errors.
	broken := startServer(t, newMemTarget(t), Options{Repl: &stubRepl{snapErr: errors.New("store busted")}})
	c2, err := netDial(broken.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c2.Close()
	fmt.Fprintln(c2, "SNAP")
	resp, err = readResponseConn(c2)
	if err != nil {
		t.Fatalf("SNAP(err): %v", err)
	}
	if resp.ok || resp.code != codeExec {
		t.Fatalf("SNAP with failing source = ok=%v code=%q", resp.ok, resp.code)
	}
}

func TestReplHandsConnectionToStream(t *testing.T) {
	repl := &stubRepl{streamed: make(chan [3]int64, 1)}
	srv := startServer(t, newMemTarget(t), Options{Repl: repl})
	c, err := netDial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	// The optional third field is the follower's fencing term.
	fmt.Fprintln(c, "REPL 2 99 7")
	got := <-repl.streamed
	if got != [3]int64{2, 99, 7} {
		t.Fatalf("ServeStream got %v, want [2 99 7]", got)
	}
	// The stream's frame arrives raw (no OK envelope), then the server
	// closes the connection.
	br := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("read stream frame: %v", err)
	}
	if line != "HB 2 99\n" {
		t.Fatalf("stream frame = %q", line)
	}
	if _, err := br.ReadString('\n'); err == nil {
		t.Fatal("connection stayed open after the stream ended")
	}
}

func TestReplRejectsBadPositions(t *testing.T) {
	srv := startServer(t, newMemTarget(t), Options{Repl: &stubRepl{}})
	for _, req := range []string{"REPL", "REPL 1", "REPL x 0", "REPL 1 -5", "REPL 1 0 badterm", "REPL 1 0 7 extra"} {
		c, err := netDial(srv.Addr())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		fmt.Fprintf(c, "%s\n", req)
		resp, err := readResponseConn(c)
		c.Close()
		if err != nil {
			t.Fatalf("%q: %v", req, err)
		}
		if resp.ok || resp.code != codeProto {
			t.Fatalf("%q = ok=%v code=%q, want ERR %s", req, resp.ok, resp.code, codeProto)
		}
	}
}

func TestClientLagAndPromote(t *testing.T) {
	var promoted atomic.Bool
	srv := startServer(t, newMemTarget(t), Options{
		LagProbe: func() LagInfo {
			return LagInfo{Staleness: 250 * time.Millisecond, Epoch: 1, Offset: 42, State: "streaming"}
		},
		Promote: func() error {
			if !promoted.CompareAndSwap(false, true) {
				return errors.New("already promoted")
			}
			return nil
		},
	})
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	li, err := cli.Lag(ctx)
	if err != nil {
		t.Fatalf("Lag: %v", err)
	}
	want := LagInfo{Staleness: 250 * time.Millisecond, Epoch: 1, Offset: 42, State: "streaming"}
	if li != want {
		t.Fatalf("Lag = %+v, want %+v", li, want)
	}

	if err := cli.Promote(ctx); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if !promoted.Load() {
		t.Fatal("promote hook not called")
	}
	// A failing hook surfaces as a ServerError.
	var se *ServerError
	if err := cli.Promote(ctx); !errors.As(err, &se) || se.Code != codeExec {
		t.Fatalf("second Promote = %v, want exec ServerError", err)
	}
}
