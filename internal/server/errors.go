package server

import (
	"context"
	"errors"
)

// This file is the single source of truth for the wire error-code table.
// Every failure class the protocol can report is minted here through
// defineCode, which binds the code to the exported sentinel errors.Is will
// surface for it. Definition is registration: a code cannot exist without
// choosing its sentinel, and the exhaustiveness test in errors_test.go
// walks the registry against the documented code list — the same
// declare-at-definition trick the hql readOnly classifier uses.

// Sentinels for wire error codes. A *ServerError carries the raw code;
// errors.Is maps it onto exactly one of these (or a context error), so
// callers never string-match codes.
var (
	// ErrOverloaded: the request was shed (admission queue or connection
	// limit). The statement was NOT executed, so retrying is always safe;
	// the client does so automatically, honoring the Retry-After hint.
	ErrOverloaded = errors.New("server overloaded")
	// ErrQuotaExceeded: the tenant is over its admission quota or rate
	// limit. Like ErrOverloaded it is a definitive not-executed signal and
	// safe to retry, but backing off harder is the only cure — the budget
	// is the tenant's own, not the server's.
	ErrQuotaExceeded = errors.New("server: tenant quota exceeded")
	// ErrProtocol: a malformed frame (either direction); the connection —
	// or on protocol v2, sometimes just the stream — cannot continue.
	ErrProtocol = errors.New("server: protocol error")
	// ErrStatementTooLarge: the statement exceeds MaxStatementBytes.
	ErrStatementTooLarge = errors.New("server: statement too large")
	// ErrExecFailed: the statement itself failed (parse or execution
	// error). The failure is definitive; retrying re-runs the same script.
	ErrExecFailed = errors.New("server: statement failed")
	// ErrStatementPanicked: the statement panicked inside the engine. The
	// panic was isolated; the session that ran it is retired.
	ErrStatementPanicked = errors.New("server: statement panicked")
	// ErrUnsupported: the verb is not enabled on this server (REPL/SNAP
	// without a replication source, PROMOTE/LAG on a primary, streams on a
	// v1 connection).
	ErrUnsupported = errors.New("server: verb not supported")
	// ErrUnknownTenant: HELLO or USE named a tenant this server does not
	// serve. Hard failure — there is no point retrying the same name.
	ErrUnknownTenant = errors.New("server: unknown tenant")
	// ErrStaleReplica: a REPL position this server can no longer serve
	// (the WAL was superseded by a checkpoint); re-bootstrap via SNAP.
	ErrStaleReplica = errors.New("server: replication position not servable")
)

// ErrClientClosed is returned by every call on a Client after Close,
// including pipelined requests that were still in flight when Close ran —
// their waiters are failed immediately instead of leaking. It is a
// client-side condition, not a wire code.
var ErrClientClosed = errors.New("hrdb: client closed")

// Code is a wire protocol error code: the <code> field of a v1 ERR frame
// and the code string of a v2 ERR payload. Codes compare like strings.
type Code string

// codeSentinels maps every defined Code to its errors.Is sentinel.
var codeSentinels = map[Code]error{}

// defineCode mints a wire code bound to the sentinel ServerError.Is
// surfaces for it. Duplicate names and nil sentinels are programming
// errors, caught at init.
func defineCode(name string, sentinel error) Code {
	c := Code(name)
	if _, dup := codeSentinels[c]; dup {
		panic("server: duplicate wire code " + name)
	}
	if sentinel == nil {
		panic("server: wire code " + name + " defined without a sentinel")
	}
	codeSentinels[c] = sentinel
	return c
}

// Error codes carried by ERR frames. See the protocol documentation in
// protocol.go (and docs/HQL.md) for the semantics of each.
var (
	codeProto       = defineCode("proto", ErrProtocol)
	codeTooLarge    = defineCode("toolarge", ErrStatementTooLarge)
	codeExec        = defineCode("exec", ErrExecFailed)
	codeOverloaded  = defineCode("overloaded", ErrOverloaded)
	codeDeadline    = defineCode("deadline", context.DeadlineExceeded)
	codeCanceled    = defineCode("canceled", context.Canceled)
	codePanic       = defineCode("panic", ErrStatementPanicked)
	codeShutdown    = defineCode("shutdown", ErrServerClosed)
	codeUnsupported = defineCode("unsupported", ErrUnsupported)
	codeQuota       = defineCode("quota", ErrQuotaExceeded)
	codeTenant      = defineCode("tenant", ErrUnknownTenant)
	codeStale       = defineCode("stale", ErrStaleReplica)
)

// sentinelFor returns the sentinel for a code, nil for codes this build
// does not know (a newer server may mint codes an older client lacks;
// such errors simply match no sentinel).
func sentinelFor(c Code) error { return codeSentinels[c] }
