package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hrdb/internal/catalog"
	"hrdb/internal/hql"
)

// netDial opens a raw TCP connection to the server for protocol-level tests.
func netDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 2*time.Second)
}

// readResponseConn reads one response frame off a raw connection.
func readResponseConn(c net.Conn) (response, error) {
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	return readResponse(bufio.NewReader(c), 1<<20)
}

// newMemTarget builds a synchronized in-memory target preloaded with the
// Bird/Penguin fixture.
func newMemTarget(t *testing.T) hql.Target {
	t.Helper()
	db := catalog.New()
	sess := hql.NewSession(hql.MemTarget{DB: db})
	if _, err := sess.Exec(`
		CREATE HIERARCHY Animal;
		CLASS Bird IN Animal;
		CLASS Penguin UNDER Bird;
		INSTANCE Tweety UNDER Bird;
		INSTANCE Paul UNDER Penguin;
		CREATE RELATION Flies (Creature: Animal);
		ASSERT Flies (Bird);
		DENY Flies (Penguin);
	`); err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return hql.MemTarget{DB: db}
}

// startServer runs a server over target and tears it down with the test.
func startServer(t *testing.T, target hql.Target, opts Options) *Server {
	t.Helper()
	srv := New(target, opts)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

// gateTarget parks mutations on a gate so requests can be held in flight;
// reads pass through. The gate is per-target, counted so tests know how
// many statements are parked.
type gateTarget struct {
	hql.Target
	gate    chan struct{}
	waiting atomic.Int64
}

func (g *gateTarget) Assert(rel string, values ...string) error {
	g.waiting.Add(1)
	defer g.waiting.Add(-1)
	<-g.gate
	return g.Target.Assert(rel, values...)
}

// panicTarget panics on Deny.
type panicTarget struct{ hql.Target }

func (p panicTarget) Deny(rel string, values ...string) error {
	panic("injected fault: deny exploded")
}

func TestServeBasic(t *testing.T) {
	srv := startServer(t, newMemTarget(t), Options{})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx := context.Background()

	if err := c.Ping(ctx); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	out, err := c.Exec(ctx, "HOLDS Flies (Tweety);")
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if strings.TrimSpace(out) != "true" {
		t.Fatalf("HOLDS Tweety = %q, want true", out)
	}
	out, err = c.Exec(ctx, "HOLDS Flies (Paul);")
	if err != nil || strings.TrimSpace(out) != "false" {
		t.Fatalf("HOLDS Paul = %q, %v; want false", out, err)
	}
	// Mutation round trip plus a statement error.
	if _, err := c.Exec(ctx, "ASSERT Flies (NoSuchCreature);"); err == nil {
		t.Fatal("assert of unknown value should fail")
	} else {
		var se *ServerError
		if !errors.As(err, &se) || se.Code != codeExec {
			t.Fatalf("want exec ServerError, got %v", err)
		}
	}
	// Sessions are per-connection: transactions work over the wire.
	out, err = c.Exec(ctx, "BEGIN; ASSERT Flies (Tweety); COMMIT;")
	if err != nil {
		t.Fatalf("tx: %v", err)
	}
	if !strings.Contains(out, "committed 1 operations") {
		t.Fatalf("tx output = %q", out)
	}
}

// TestOverloadShedding is the headline acceptance test: with a work
// capacity of N (workers + queue) and 4N concurrent mutating clients on a
// gated target, the server sheds the excess with "overloaded" instead of
// growing goroutines without bound, and every admitted request completes
// once the gate opens.
func TestOverloadShedding(t *testing.T) {
	mem := newMemTarget(t)
	gate := &gateTarget{Target: mem, gate: make(chan struct{})}
	const workers, queue = 2, 2
	capacity := workers + queue // statements that can be in the system
	srv := startServer(t, gate, Options{
		Workers:    workers,
		QueueDepth: queue,
		MaxConns:   64,
		// The gated Assert ignores ctx; a deadline would abandon it.
		MaxDeadline: -1,
	})

	// Park enough requests to fill every worker.
	var wg sync.WaitGroup
	results := make(chan error, 4*capacity)
	launch := func(n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := Dial(srv.Addr(), WithMaxRetries(0))
				if err != nil {
					results <- err
					return
				}
				defer c.Close()
				_, err = c.Exec(context.Background(), "ASSERT Flies (Bird);")
				results <- err
			}()
		}
	}
	// Fill deterministically: first occupy every worker (wait until each is
	// parked inside Assert), then fill the queue, so none of the capacity
	// batch is shed by a transient race for the queue slots.
	launch(workers)
	deadline := time.Now().Add(5 * time.Second)
	for gate.waiting.Load() < int64(workers) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d statements parked", gate.waiting.Load())
		}
		time.Sleep(time.Millisecond)
	}
	launch(queue)
	// Give the queued pair time to be admitted.
	time.Sleep(100 * time.Millisecond)

	before := runtime.NumGoroutine()
	launch(3 * capacity) // the flood: all of these must be shed
	shed := 0
	for i := 0; i < 3*capacity; i++ {
		err := <-results
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("flood request %d: got %v, want ErrOverloaded", i, err)
		}
		shed++
	}
	during := runtime.NumGoroutine()
	// Goroutine growth while shedding must be bounded by the handler
	// goroutines of the flood connections, not by queued statements:
	// workers and queue were already saturated before the flood.
	if growth := during - before; growth > 3*capacity+8 {
		t.Fatalf("goroutine growth under flood = %d (before=%d during=%d)", growth, before, during)
	}

	close(gate.gate) // release: every admitted request must now complete
	for i := 0; i < capacity; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
	}
	wg.Wait()
	if shed != 3*capacity {
		t.Fatalf("shed %d, want %d", shed, 3*capacity)
	}
}

// TestOverloadRetryAfterHint: shed replies carry a Retry-After hint.
func TestOverloadRetryAfterHint(t *testing.T) {
	mem := newMemTarget(t)
	gate := &gateTarget{Target: mem, gate: make(chan struct{})}
	defer close(gate.gate)
	srv := startServer(t, gate, Options{
		Workers: 1, QueueDepth: 1, MaxDeadline: -1,
		RetryAfter: 70 * time.Millisecond,
	})
	fill := make([]*Client, 2)
	for i := range fill {
		c, err := Dial(srv.Addr(), WithMaxRetries(0))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		go c.Exec(context.Background(), "ASSERT Flies (Bird);")
		fill[i] = c
	}
	for gate.waiting.Load() < 1 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)

	c, err := Dial(srv.Addr(), WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec(context.Background(), "ASSERT Flies (Bird);")
	var se *ServerError
	if !errors.As(err, &se) || se.Code != codeOverloaded {
		t.Fatalf("got %v, want overloaded", err)
	}
	if se.RetryAfter != 70*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 70ms", se.RetryAfter)
	}
}

// TestDeadlineAlwaysAnswered: a request whose statement ignores
// cancellation still gets a deadline reply — the server answers and
// retires the connection rather than hanging the client.
func TestDeadlineAlwaysAnswered(t *testing.T) {
	mem := newMemTarget(t)
	gate := &gateTarget{Target: mem, gate: make(chan struct{})}
	defer close(gate.gate)
	srv := startServer(t, gate, Options{Workers: 2, MaxDeadline: 30 * time.Second})
	c, err := Dial(srv.Addr(), WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Exec(ctx, "ASSERT Flies (Bird);")
	if err == nil {
		t.Fatal("want deadline error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline answer took %v", elapsed)
	}
}

// TestDeadlinePropagatedToStatement: the request deadline reaches
// Session.ExecContext, which aborts a multi-statement script at the first
// statement boundary after expiry — observable as the second statement's
// side effect never happening.
func TestDeadlinePropagatedToStatement(t *testing.T) {
	mem := newMemTarget(t)
	gate := &gateTarget{Target: mem, gate: make(chan struct{})}
	srv := startServer(t, gate, Options{})
	db := mem.Database()
	c, err := Dial(srv.Addr(), WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	baseLen := relLen(t, db)
	answered := metricRequestNS.Snapshot().Count
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	// Statement 1 parks in Assert past the deadline; statement 2 must then
	// never run, because ExecContext observes the expired ctx between them.
	_, err = c.Exec(ctx, "ASSERT Flies (Tweety); ASSERT Flies (Animal);")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	// Exec can return from the client's local deadline before the server's
	// request ctx has fired (the two timers are independent). Wait until the
	// server answered the request — the reply is recorded only after its ctx
	// is done — so releasing the gate cannot race the server-side timer.
	for metricRequestNS.Snapshot().Count == answered {
		time.Sleep(time.Millisecond)
	}
	close(gate.gate) // release statement 1 well after the deadline
	deadline := time.Now().Add(5 * time.Second)
	for relLen(t, db) != baseLen+1 {
		if time.Now().After(deadline) {
			t.Fatalf("statement 1 never applied (len=%d)", relLen(t, db))
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	if got := relLen(t, db); got != baseLen+1 {
		t.Fatalf("statement 2 ran despite expired deadline (len=%d, want %d)", got, baseLen+1)
	}
}

// relLen returns the current tuple count of Flies.
func relLen(t *testing.T, db *catalog.Database) int {
	t.Helper()
	r, err := db.Snapshot("Flies")
	if err != nil {
		t.Fatal(err)
	}
	return r.Len()
}

// TestPanicIsolation: a panicking statement answers its own connection
// with a panic error and closes it; the server keeps serving others.
func TestPanicIsolation(t *testing.T) {
	srv := startServer(t, panicTarget{newMemTarget(t)}, Options{})
	c1, err := Dial(srv.Addr(), WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	_, err = c1.Exec(context.Background(), "DENY Flies (Penguin);")
	var se *ServerError
	if !errors.As(err, &se) || se.Code != codePanic {
		t.Fatalf("got %v, want panic ServerError", err)
	}
	if !strings.Contains(se.Msg, "deny exploded") {
		t.Fatalf("panic message lost: %q", se.Msg)
	}
	// The server survives: a fresh connection works, and so does the same
	// client (it redials transparently).
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for _, c := range []*Client{c2, c1} {
		out, err := c.Exec(context.Background(), "HOLDS Flies (Tweety);")
		if err != nil || strings.TrimSpace(out) != "true" {
			t.Fatalf("after panic: %q, %v", out, err)
		}
	}
}

// TestGracefulDrain: Shutdown lets the in-flight statement finish, sheds
// new work with "shutdown", and reports a clean drain.
func TestGracefulDrain(t *testing.T) {
	mem := newMemTarget(t)
	gate := &gateTarget{Target: mem, gate: make(chan struct{})}
	srv := New(gate, Options{Workers: 2, MaxDeadline: -1})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr(), WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	inflight := make(chan error, 1)
	go func() {
		_, err := c.Exec(context.Background(), "ASSERT Flies (Bird);")
		inflight <- err
	}()
	for gate.waiting.Load() < 1 {
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond) // let Shutdown stop the intake

	// New connections are refused while draining.
	if c2, err := Dial(srv.Addr(), WithMaxRetries(0)); err == nil {
		_, execErr := c2.Exec(context.Background(), "HOLDS Flies (Tweety);")
		if execErr == nil {
			t.Fatal("statement admitted during drain")
		}
		c2.Close()
	}

	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned before drain: %v", err)
	default:
	}

	close(gate.gate) // in-flight statement finishes now
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight statement failed during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Second shutdown: already closed.
	if err := srv.Shutdown(context.Background()); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("second Shutdown = %v, want ErrServerClosed", err)
	}
}

// closeCounter counts Close calls on the way to the wrapped target.
type closeCounter struct {
	hql.Target
	n atomic.Int64
}

func (c *closeCounter) Close() error {
	c.n.Add(1)
	return nil
}

// TestShutdownClosesTargetOnce: with CloseTarget, concurrent Shutdown
// calls close the target exactly once.
func TestShutdownClosesTargetOnce(t *testing.T) {
	cc := &closeCounter{Target: newMemTarget(t)}
	srv := New(cc, Options{CloseTarget: true})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
	}
	wg.Wait()
	if got := cc.n.Load(); got != 1 {
		t.Fatalf("target closed %d times, want exactly 1", got)
	}
}

// TestShutdownDrainDeadline: a statement stuck past the drain deadline is
// cancelled; Shutdown returns the deadline error but the server still
// tears down and the stuck client still gets an answer.
func TestShutdownDrainDeadline(t *testing.T) {
	mem := newMemTarget(t)
	gate := &gateTarget{Target: mem, gate: make(chan struct{})}
	defer close(gate.gate)
	srv := New(gate, Options{Workers: 1, MaxDeadline: -1})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr(), WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	answered := make(chan error, 1)
	go func() {
		_, err := c.Exec(context.Background(), "ASSERT Flies (Bird);")
		answered <- err
	}()
	for gate.waiting.Load() < 1 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err = srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	select {
	case err := <-answered:
		if err == nil {
			t.Fatal("stuck statement reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stuck client never answered")
	}
}

// TestGoroutineHygiene: a full serve/load/shutdown cycle returns the
// process to its baseline goroutine count — no leaked handlers, workers,
// or task watchers.
func TestGoroutineHygiene(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		srv := New(newMemTarget(t), Options{Workers: 4})
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := Dial(srv.Addr())
				if err != nil {
					return
				}
				defer c.Close()
				for j := 0; j < 5; j++ {
					c.Exec(context.Background(), "HOLDS Flies (Tweety);")
				}
			}()
		}
		wg.Wait()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline=%d now=%d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConnectionLimit: connections beyond MaxConns get an overloaded
// error frame instead of hanging.
func TestConnectionLimit(t *testing.T) {
	srv := startServer(t, newMemTarget(t), Options{MaxConns: 2})
	keep := make([]*Client, 2)
	for i := range keep {
		c, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Ping(context.Background()); err != nil {
			t.Fatal(err)
		}
		keep[i] = c
	}
	// The handshake reads the server's refusal during Dial, so the error
	// surfaces eagerly there; a v1-pinned client wouldn't notice until the
	// first round trip. Either way the connection is answered, not hung.
	c, err := Dial(srv.Addr(), WithMaxRetries(0))
	if err == nil {
		defer c.Close()
		err = c.Ping(context.Background())
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third connection: got %v, want ErrOverloaded", err)
	}
}

// TestIdleTimeout: idle connections are reaped.
func TestIdleTimeout(t *testing.T) {
	srv := startServer(t, newMemTarget(t), Options{IdleTimeout: 100 * time.Millisecond})
	c, err := Dial(srv.Addr(), WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	// The server closed the idle conn; a plain round trip on the dead
	// socket fails, and the client repairs itself on redial.
	if err := c.Ping(context.Background()); err == nil {
		// Depending on timing the ping may already see the reset; both
		// outcomes are fine as long as Exec below works.
		_ = err
	}
	out, err := c.Exec(context.Background(), "HOLDS Flies (Tweety);")
	if err != nil || strings.TrimSpace(out) != "true" {
		t.Fatalf("after idle reap: %q, %v", out, err)
	}
}

// TestProtocolErrors: malformed frames are answered with proto errors and
// oversized statements with toolarge; the server survives both.
func TestProtocolErrors(t *testing.T) {
	srv := startServer(t, newMemTarget(t), Options{MaxStatementBytes: 64})
	raw := func(payload string) response {
		t.Helper()
		conn, err := netDial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte(payload)); err != nil {
			t.Fatal(err)
		}
		resp, err := readResponseConn(conn)
		if err != nil {
			t.Fatalf("no reply to %q: %v", payload, err)
		}
		return resp
	}
	if resp := raw("BOGUS\n"); resp.code != codeProto {
		t.Fatalf("BOGUS: %+v", resp)
	}
	if resp := raw("EXEC 0 nope\n"); resp.code != codeProto {
		t.Fatalf("bad length: %+v", resp)
	}
	big := fmt.Sprintf("EXEC 0 %d\n%s\n", 100, strings.Repeat("x", 100))
	if resp := raw(big); resp.code != codeTooLarge {
		t.Fatalf("oversized: %+v", resp)
	}
	// Server is still healthy.
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}
