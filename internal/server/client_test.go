package server

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// fakeServer speaks the wire protocol from a canned reply script so tests
// can count exactly how many times the client delivered a request. The
// i-th EXEC gets replies[i] (clamped to the last entry); a reply func
// returns false to drop the connection afterwards.
type fakeServer struct {
	ln       net.Listener
	attempts atomic.Int64
	replies  []func(net.Conn, *bufio.Writer) bool
}

func newFakeServer(t *testing.T, replies ...func(net.Conn, *bufio.Writer) bool) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeServer{ln: ln, replies: replies}
	t.Cleanup(func() { ln.Close() })
	go f.loop()
	return f
}

func (f *fakeServer) addr() string { return f.ln.Addr().String() }

func (f *fakeServer) loop() {
	for {
		c, err := f.ln.Accept()
		if err != nil {
			return
		}
		f.serve(c) // one client at a time; the Client serializes anyway
	}
}

func (f *fakeServer) serve(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	for {
		req, err := readRequest(br, 1<<20)
		if err != nil {
			return
		}
		if req.verb == "HELLO" {
			// Emulate a pre-v2 server: reject the upgrade offer as an
			// unknown verb and drop the connection, so these tests cover
			// the client's v1 fallback path on every dial.
			writeErr(bw, codeProto, 0, `protocol error: unknown verb "HELLO"`)
			return
		}
		if req.verb != "EXEC" {
			if writeOK(bw, "pong") != nil {
				return
			}
			continue
		}
		i := int(f.attempts.Add(1)) - 1
		if i >= len(f.replies) {
			i = len(f.replies) - 1
		}
		if !f.replies[i](c, bw) {
			return
		}
	}
}

// Canned replies.
func okReply(payload string) func(net.Conn, *bufio.Writer) bool {
	return func(_ net.Conn, bw *bufio.Writer) bool { return writeOK(bw, payload) == nil }
}

func errReply(code Code, hint time.Duration) func(net.Conn, *bufio.Writer) bool {
	return func(_ net.Conn, bw *bufio.Writer) bool {
		return writeErr(bw, code, hint, "injected "+string(code)) == nil
	}
}

// severReply drops the connection without answering: the client cannot
// know whether the statement executed.
func severReply(c net.Conn, _ *bufio.Writer) bool {
	c.Close()
	return false
}

// TestClientRetryPolicy pins the retry matrix: ambiguous transport
// failures are retried only for idempotent (read-only) scripts or with an
// explicit opt-in, definitive not-executed shed replies are retried for
// anything, and definitive statement failures are never retried.
func TestClientRetryPolicy(t *testing.T) {
	const (
		mutation = "ASSERT Flies (Tweety);"
		readOnly = "HOLDS Flies (Tweety);"
	)
	fast := WithBackoff(time.Millisecond, 5*time.Millisecond)
	cases := []struct {
		name         string
		script       string
		replies      []func(net.Conn, *bufio.Writer) bool
		opts         []ClientOption
		wantAttempts int64
		wantErr      bool
	}{
		{
			name:         "mutation never auto-retried after severed reply",
			script:       mutation,
			replies:      []func(net.Conn, *bufio.Writer) bool{severReply, okReply("late")},
			opts:         []ClientOption{WithMaxRetries(3), fast},
			wantAttempts: 1,
			wantErr:      true,
		},
		{
			name:         "read-only retried after severed reply",
			script:       readOnly,
			replies:      []func(net.Conn, *bufio.Writer) bool{severReply, okReply("true")},
			opts:         []ClientOption{WithMaxRetries(3), fast},
			wantAttempts: 2,
		},
		{
			name:         "mutation retried after severed reply when opted in",
			script:       mutation,
			replies:      []func(net.Conn, *bufio.Writer) bool{severReply, okReply("done")},
			opts:         []ClientOption{WithMaxRetries(3), WithRetryNonIdempotent(true), fast},
			wantAttempts: 2,
		},
		{
			name:   "mutation retried after overloaded: definitively not executed",
			script: mutation,
			replies: []func(net.Conn, *bufio.Writer) bool{
				errReply(codeOverloaded, time.Millisecond), okReply("done"),
			},
			opts:         []ClientOption{WithMaxRetries(3), fast},
			wantAttempts: 2,
		},
		{
			name:   "mutation retried after shutdown: definitively not executed",
			script: mutation,
			replies: []func(net.Conn, *bufio.Writer) bool{
				errReply(codeShutdown, 0), okReply("done"),
			},
			opts:         []ClientOption{WithMaxRetries(3), fast},
			wantAttempts: 2,
		},
		{
			name:         "exec error never retried",
			script:       readOnly,
			replies:      []func(net.Conn, *bufio.Writer) bool{errReply(codeExec, 0), okReply("true")},
			opts:         []ClientOption{WithMaxRetries(3), fast},
			wantAttempts: 1,
			wantErr:      true,
		},
		{
			name:         "retry budget bounds attempts",
			script:       readOnly,
			replies:      []func(net.Conn, *bufio.Writer) bool{severReply},
			opts:         []ClientOption{WithMaxRetries(2), fast},
			wantAttempts: 3, // initial + 2 retries
			wantErr:      true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newFakeServer(t, tc.replies...)
			c, err := Dial(f.addr(), tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			_, err = c.Exec(context.Background(), tc.script)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if got := f.attempts.Load(); got != tc.wantAttempts {
				t.Fatalf("server saw %d attempts, want %d", got, tc.wantAttempts)
			}
		})
	}
}

// TestBackoffHonorsRetryAfterHint: the sleep before a retry never
// undercuts the server's hint.
func TestBackoffHonorsRetryAfterHint(t *testing.T) {
	f := newFakeServer(t,
		errReply(codeOverloaded, 150*time.Millisecond), okReply("done"))
	c, err := Dial(f.addr(), WithMaxRetries(2), WithBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Exec(context.Background(), "ASSERT Flies (Tweety);"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 140*time.Millisecond {
		t.Fatalf("retried after %v, before the 150ms Retry-After hint", elapsed)
	}
	if got := f.attempts.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
}

// TestBackoffRespectsContextDeadline: a huge Retry-After hint cannot make
// the client sleep past its own deadline — the backoff sleep aborts and
// Exec returns promptly.
func TestBackoffRespectsContextDeadline(t *testing.T) {
	f := newFakeServer(t, errReply(codeOverloaded, 10*time.Second))
	c, err := Dial(f.addr(), WithMaxRetries(5))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Exec(ctx, "HOLDS Flies (Tweety);")
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, ErrOverloaded) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("backoff ignored ctx deadline: took %v", elapsed)
	}
	if got := f.attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (sleep aborted before a retry)", got)
	}
}

// TestBackoffWindow exercises the jitter math directly: samples stay in
// (0, min(base·2^attempt, max)] and the hint is a floor.
func TestBackoffWindow(t *testing.T) {
	c := &Client{o: dialConfig{baseBackoff: 10 * time.Millisecond, maxBackoff: 80 * time.Millisecond}}
	for attempt := 0; attempt < 10; attempt++ {
		window := c.o.baseBackoff << uint(attempt)
		if window > c.o.maxBackoff || window <= 0 {
			window = c.o.maxBackoff
		}
		for i := 0; i < 50; i++ {
			d := c.backoff(attempt, 0)
			if d <= 0 || d > window {
				t.Fatalf("attempt %d: backoff %v outside (0, %v]", attempt, d, window)
			}
		}
	}
	if d := c.backoff(0, 500*time.Millisecond); d != 500*time.Millisecond {
		t.Fatalf("hint floor: got %v, want 500ms", d)
	}
}
