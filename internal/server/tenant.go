package server

import (
	"fmt"
	"sync"
	"time"

	"hrdb/internal/catalog"
	"hrdb/internal/hql"
	"hrdb/internal/obs"
)

// DefaultTenant is the namespace served to connections that never name one
// (HELLO without a tenant, or the v1 protocol without USE). It is always
// backed by the server's main target.
const DefaultTenant = "default"

// TenantLimits bounds one tenant's demand on the shared worker pool. Limits
// feed the same shed path as global admission control, but answer with the
// "quota" code so a client can tell "the server is busy" from "I am over my
// own budget". The zero value is unlimited.
type TenantLimits struct {
	// MaxInflight caps the tenant's concurrently admitted statements
	// (queued + executing). 0 = unlimited.
	MaxInflight int
	// RatePerSec is the sustained statement admission rate, enforced by a
	// token bucket. 0 = unlimited.
	RatePerSec float64
	// Burst is the token bucket depth — how many statements may be
	// admitted back-to-back after an idle period. Defaults to
	// max(1, ceil(RatePerSec)).
	Burst int
}

// TenantConfig declares one named namespace on a server: an independent
// catalog (hql.Target) plus its admission limits. A config named
// DefaultTenant may omit Target to attach limits to the server's main
// target.
type TenantConfig struct {
	Name   string
	Target hql.Target
	Limits TenantLimits
}

// tenantState is the server-side runtime of one namespace: its target, its
// admission bookkeeping, and its labeled metric series. One per tenant per
// Server; connections hold a pointer after resolving their namespace.
type tenantState struct {
	name   string
	target hql.Target
	limits TenantLimits

	mu       sync.Mutex
	inflight int       // admitted (queued + executing) statements
	tokens   float64   // rate-limit token bucket level
	lastFill time.Time // last bucket refill

	// Labeled series on the default registry: every tenant shows up as its
	// own {tenant="..."} time series under the shared metric names.
	mRequests *obs.Counter
	mShed     *obs.Counter
	mInflight *obs.Gauge
	mLatency  *obs.Histogram
}

// newTenantState builds the runtime for one namespace.
func newTenantState(name string, target hql.Target, limits TenantLimits) *tenantState {
	if limits.RatePerSec > 0 && limits.Burst <= 0 {
		limits.Burst = int(limits.RatePerSec)
		if float64(limits.Burst) < limits.RatePerSec {
			limits.Burst++
		}
		if limits.Burst < 1 {
			limits.Burst = 1
		}
	}
	series := obs.Default().With(obs.Label{Key: "tenant", Value: name})
	return &tenantState{
		name:      name,
		target:    target,
		limits:    limits,
		tokens:    float64(limits.Burst),
		lastFill:  time.Now(),
		mRequests: series.Counter("hrdb_tenant_requests_total"),
		mShed:     series.Counter("hrdb_tenant_shed_total"),
		mInflight: series.Gauge("hrdb_tenant_inflight"),
		mLatency:  series.Histogram("hrdb_tenant_request_duration_ns"),
	}
}

// admit claims one admission slot, enforcing the inflight cap and the rate
// limit. On success the caller owes a release() once the statement leaves
// the worker pool. A consumed rate token is never refunded — the rate
// limit meters arrivals, not completions.
func (tn *tenantState) admit() bool {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	if tn.limits.MaxInflight > 0 && tn.inflight >= tn.limits.MaxInflight {
		return false
	}
	if tn.limits.RatePerSec > 0 {
		now := time.Now()
		tn.tokens += now.Sub(tn.lastFill).Seconds() * tn.limits.RatePerSec
		if max := float64(tn.limits.Burst); tn.tokens > max {
			tn.tokens = max
		}
		tn.lastFill = now
		if tn.tokens < 1 {
			return false
		}
		tn.tokens--
	}
	tn.inflight++
	tn.mInflight.Inc()
	return true
}

// release returns an admission slot claimed by admit.
func (tn *tenantState) release() {
	tn.mu.Lock()
	tn.inflight--
	tn.mu.Unlock()
	tn.mInflight.Dec()
}

// quotaErr renders the shed message for this tenant.
func (tn *tenantState) quotaErr() error {
	return fmt.Errorf("tenant %q over quota", tn.name)
}

// buildTenants resolves Options.Tenants into the server's namespace table.
// The default namespace always exists over the main target; a TenantConfig
// named DefaultTenant overrides its limits (and may not replace its
// target — the main target is what the replication and drain machinery
// manage).
func buildTenants(target hql.Target, configs []TenantConfig) map[string]*tenantState {
	tenants := map[string]*tenantState{}
	var defaultLimits TenantLimits
	for _, tc := range configs {
		if tc.Name == DefaultTenant || tc.Name == "" {
			defaultLimits = tc.Limits
			continue
		}
		tgt := tc.Target
		if tgt == nil {
			// A declared tenant with no target gets its own empty in-memory
			// catalog: a namespace that exists from the first statement.
			tgt = hql.MemTarget{DB: catalog.New()}
		}
		tenants[tc.Name] = newTenantState(tc.Name, tgt, tc.Limits)
	}
	tenants[DefaultTenant] = newTenantState(DefaultTenant, target, defaultLimits)
	return tenants
}

// resolveTenant maps a requested namespace name ("" = default) to its
// runtime state.
func (s *Server) resolveTenant(name string) (*tenantState, bool) {
	if name == "" {
		name = DefaultTenant
	}
	tn, ok := s.tenants[name]
	return tn, ok
}
