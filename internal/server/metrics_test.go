package server

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// metricValue extracts the value of a plain (unlabeled) counter line from
// Prometheus exposition text.
func metricValue(t *testing.T, text, name string) uint64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in STATS output", name)
	return 0
}

// TestShedMetricAndStats saturates a tiny server and verifies that (a) the
// shed counter moves once per rejected request, and (b) the STATS verb is
// answered inline — even while the admission queue is full — with
// exposition text reflecting the sheds and the request-latency histogram.
// Metrics are process-global, so all assertions are on deltas.
func TestShedMetricAndStats(t *testing.T) {
	mem := newMemTarget(t)
	gate := &gateTarget{Target: mem, gate: make(chan struct{})}
	const workers, queue = 1, 1
	capacity := workers + queue
	srv := startServer(t, gate, Options{
		Workers:     workers,
		QueueDepth:  queue,
		MaxConns:    64,
		MaxDeadline: -1, // the gated Assert ignores ctx
	})

	shed0 := metricShed.Value()
	req0 := metricRequests.Value()
	ns0 := metricRequestNS.Snapshot()

	var wg sync.WaitGroup
	results := make(chan error, 4*capacity)
	launch := func(n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := Dial(srv.Addr(), WithMaxRetries(0))
				if err != nil {
					results <- err
					return
				}
				defer c.Close()
				_, err = c.Exec(context.Background(), "ASSERT Flies (Bird);")
				results <- err
			}()
		}
	}
	// Saturate deterministically: park the worker, then fill the queue.
	launch(workers)
	deadline := time.Now().Add(5 * time.Second)
	for gate.waiting.Load() < int64(workers) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d statements parked", gate.waiting.Load())
		}
		time.Sleep(time.Millisecond)
	}
	launch(queue)
	time.Sleep(100 * time.Millisecond)

	flood := 3 * capacity
	launch(flood)
	for i := 0; i < flood; i++ {
		if err := <-results; !errors.Is(err, ErrOverloaded) {
			t.Fatalf("flood request %d: got %v, want ErrOverloaded", i, err)
		}
	}
	if d := metricShed.Value() - shed0; d != uint64(flood) {
		t.Errorf("shed counter delta = %d, want %d", d, flood)
	}

	// STATS must answer while the queue is still saturated: it is served
	// inline by the connection handler, not through the worker pool.
	c, err := Dial(srv.Addr(), WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	statsCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	text, err := c.Stats(statsCtx)
	cancel()
	if err != nil {
		t.Fatalf("Stats under saturation: %v", err)
	}
	if got := metricValue(t, text, "hrdb_server_shed_total"); got < uint64(flood) {
		t.Errorf("STATS shed_total = %d, want ≥ %d", got, flood)
	}
	if got := metricValue(t, text, "hrdb_server_request_duration_ns_count"); got == 0 {
		t.Error("STATS request-duration histogram is empty")
	}

	close(gate.gate) // release: every admitted request completes
	for i := 0; i < capacity; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
	}
	wg.Wait()

	// Every EXEC — admitted or shed — counts as a request and lands one
	// latency observation; STATS itself does not go through serveExec.
	if d := metricRequests.Value() - req0; d != uint64(capacity+flood) {
		t.Errorf("request counter delta = %d, want %d", d, capacity+flood)
	}
	if d := metricRequestNS.Snapshot().Count - ns0.Count; d != uint64(capacity+flood) {
		t.Errorf("request latency observations delta = %d, want %d", d, capacity+flood)
	}
}

// TestConnRefusedMetric: connections refused at MaxConns move the
// overloaded-connections counter, not the per-request shed counter.
func TestConnRefusedMetric(t *testing.T) {
	mem := newMemTarget(t)
	gate := &gateTarget{Target: mem, gate: make(chan struct{})}
	defer close(gate.gate)
	srv := startServer(t, gate, Options{MaxConns: 1, MaxDeadline: -1})

	hold, err := Dial(srv.Addr(), WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	if err := hold.Ping(context.Background()); err != nil {
		t.Fatalf("Ping on held connection: %v", err)
	}

	ref0 := metricConnRefused.Value()
	c2, err := Dial(srv.Addr(), WithMaxRetries(0))
	if err == nil {
		defer c2.Close()
		if err := c2.Ping(context.Background()); err == nil {
			t.Fatal("second connection should be refused at MaxConns=1")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for metricConnRefused.Value() == ref0 {
		if time.Now().After(deadline) {
			t.Fatal("overloaded-connections counter did not move")
		}
		time.Sleep(time.Millisecond)
	}
}
