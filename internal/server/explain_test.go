package server

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestExplainOverBothProtocols: EXPLAIN is an ordinary read-only statement,
// so it must answer over the sequential v1 line protocol and the framed
// multiplexed v2 protocol alike, and planning must not attach the result
// relation the wrapped statement names.
func TestExplainOverBothProtocols(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv := startServer(t, newMemTarget(t), Options{})

	for _, tc := range []struct {
		name  string
		proto int
	}{
		{"v1", ProtocolV1},
		{"v2", ProtocolV2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Dial(srv.Addr(), WithProtocol(tc.proto), WithMaxRetries(0))
			if err != nil {
				t.Fatalf("Dial: %v", err)
			}
			defer c.Close()

			out, err := c.Exec(ctx, "EXPLAIN SELECT FROM Flies WHERE Creature UNDER Penguin;")
			if err != nil {
				t.Fatalf("EXPLAIN SELECT: %v", err)
			}
			for _, want := range []string{"select Flies:", "est candidates:", "full scan:"} {
				if !strings.Contains(out, want) {
					t.Fatalf("EXPLAIN SELECT = %q, missing %q", out, want)
				}
			}

			out, err = c.Exec(ctx, "EXPLAIN JOIN Flies Flies AS j;")
			if err != nil {
				t.Fatalf("EXPLAIN JOIN: %v", err)
			}
			if !strings.HasPrefix(out, "join Flies:") {
				t.Fatalf("EXPLAIN JOIN = %q", out)
			}
			// Planning must not have executed the join: no relation j.
			out, err = c.Exec(ctx, "SHOW RELATIONS;")
			if err != nil {
				t.Fatalf("SHOW RELATIONS: %v", err)
			}
			for _, line := range strings.Split(out, "\n") {
				if strings.TrimSpace(line) == "j" {
					t.Fatalf("EXPLAIN attached the join result: %q", out)
				}
			}

			// Errors in the wrapped statement surface as exec failures.
			if _, err := c.Exec(ctx, "EXPLAIN SELECT FROM NoSuchRel;"); err == nil {
				t.Fatal("EXPLAIN over a missing relation should fail")
			}
		})
	}
}
