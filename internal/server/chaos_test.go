package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"hrdb/internal/hql"
	"hrdb/internal/storage"
)

// TestChaosKillMidReplyDurablePrefix is the chaos acceptance test: a client
// drives sequential mutations through a ChaosProxy that repeatedly severs
// connections mid-reply; after a graceful shutdown the store is reopened
// and must contain every acknowledged mutation — an acked reply is a
// durability receipt that no network fault can claw back.
func TestChaosKillMidReplyDurablePrefix(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, Options{CloseTarget: true})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	proxy, err := NewChaosProxy(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c, err := Dial(proxy.Addr(), WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Exec(ctx, "CREATE HIERARCHY D; CREATE RELATION R (A: D);"); err != nil {
		t.Fatalf("schema: %v", err)
	}

	const n = 24
	acked := make([]bool, n)
	faults := 0
	for i := 0; i < n; i++ {
		if i%3 == 1 {
			// Cut the next reply after i%5 bytes — sometimes zero bytes,
			// sometimes mid-frame after the status line started.
			proxy.SeverResponseAfter(int64(i % 5))
		}
		script := fmt.Sprintf("INSTANCE v%d UNDER D; ASSERT R (v%d);", i, i)
		if _, err := c.Exec(ctx, script); err == nil {
			acked[i] = true
		} else {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("chaos proxy injected no faults; test proved nothing")
	}
	ackedCount := 0
	for _, ok := range acked {
		if ok {
			ackedCount++
		}
	}
	if ackedCount == 0 {
		t.Fatal("no mutation was ever acknowledged; test proved nothing")
	}

	// Graceful shutdown closes the store (CloseTarget) after the drain.
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Recovery: every acknowledged mutation must be in the reopened store.
	st2, err := storage.Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	sess := hql.NewSession(st2)
	for i := 0; i < n; i++ {
		out, err := sess.Exec(fmt.Sprintf("HOLDS R (v%d);", i))
		applied := err == nil && strings.TrimSpace(out) == "true"
		if acked[i] && !applied {
			t.Errorf("mutation %d was acknowledged but lost on recovery", i)
		}
	}
	t.Logf("chaos run: %d/%d acked, %d faulted replies", ackedCount, n, faults)
}

// TestChaosDropResponsesClientDeadline: when the network black-holes every
// reply, the client's deadline saves it — the call returns
// context.DeadlineExceeded instead of hanging — and once the fault clears
// the same client recovers by redialing.
func TestChaosDropResponsesClientDeadline(t *testing.T) {
	srv := startServer(t, newMemTarget(t), Options{})
	proxy, err := NewChaosProxy(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	c, err := Dial(proxy.Addr(), WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	proxy.DropResponses(true)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Exec(ctx, "HOLDS Flies (Tweety);")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("client hung %v in a black hole", elapsed)
	}

	proxy.DropResponses(false)
	out, err := c.Exec(context.Background(), "HOLDS Flies (Tweety);")
	if err != nil || strings.TrimSpace(out) != "true" {
		t.Fatalf("after fault cleared: %q, %v", out, err)
	}
}

// TestChaosRetryHealsReadOnly: a read-only script rides through a severed
// connection on the client's automatic retry; added latency alone never
// fails a request. Ends with a goroutine-hygiene check over the whole
// chaos session.
func TestChaosRetryHealsReadOnly(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv := New(newMemTarget(t), Options{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	proxy, err := NewChaosProxy(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(proxy.Addr(), WithMaxRetries(4), WithBackoff(5*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	proxy.SetDelay(2 * time.Millisecond)
	proxy.SeverResponseAfter(0) // first reply vanishes; retry must heal it
	out, err := c.Exec(context.Background(), "HOLDS Flies (Tweety);")
	if err != nil || strings.TrimSpace(out) != "true" {
		t.Fatalf("retry did not heal severed read: %q, %v", out, err)
	}

	c.Close()
	proxy.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			nb := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after chaos: baseline=%d now=%d\n%s",
				baseline, runtime.NumGoroutine(), buf[:nb])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
