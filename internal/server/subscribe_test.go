package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"testing"
	"time"

	"hrdb/internal/storage"
	"hrdb/internal/view"
)

// newSubscribeServer starts a server whose target carries a view manager
// wired as the SUBSCRIBE source, seeded with a small hierarchy, a relation
// and one materialized view over it.
func newSubscribeServer(t *testing.T, opts Options) (*Server, *view.Manager) {
	t.Helper()
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, err := view.Open(st, view.Options{Heartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	opts.Subscribe = m
	opts.CloseTarget = true
	srv := New(view.NewTarget(st, m), opts)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Exec(ctx, `
		CREATE HIERARCHY Animal;
		CLASS bird IN Animal; CLASS mammal IN Animal;
		INSTANCE tweety UNDER bird; INSTANCE rex UNDER mammal;
		CREATE RELATION flies (who: Animal);
		ASSERT flies (bird);
		CREATE MATERIALIZED VIEW flat AS EXTENSION flies;
	`); err != nil {
		t.Fatalf("seed: %v", err)
	}
	return srv, m
}

// nextChange fetches the next change with a bounded wait.
func nextChange(t *testing.T, sub *Subscription) SubChange {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ch, err := sub.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	return ch
}

// testSubscribeFeed is the end-to-end feed contract, run on each protocol:
// snapshot first, then exactly the committed deltas, then resume from a
// recorded position without gaps or duplicates.
func testSubscribeFeed(t *testing.T, proto int) {
	srv, _ := newSubscribeServer(t, Options{})
	c, err := Dial(srv.Addr(), WithProtocol(proto))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	sub, err := c.Subscribe("flat")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	snap := nextChange(t, sub)
	if snap.Kind != "snapshot" {
		t.Fatalf("first change = %q, want snapshot", snap.Kind)
	}
	if got := strings.Join(snap.Rows, ","); got != "(tweety)" {
		t.Fatalf("snapshot rows = %q, want (tweety)", got)
	}

	if _, err := c.Exec(ctx, "INSTANCE polly UNDER bird;"); err != nil {
		t.Fatal(err)
	}
	d := nextChange(t, sub)
	if d.Kind != "delta" {
		t.Fatalf("change = %q, want delta", d.Kind)
	}
	if got := strings.Join(d.Added, ","); got != "(polly)" || len(d.Removed) != 0 {
		t.Fatalf("delta = +%v -%v, want +[(polly)] -[]", d.Added, d.Removed)
	}

	// Subscription metrics: one live feed, at least one ever started.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "hrdb_server_subscribe_streams_active 1") {
		t.Fatalf("stats missing active feed gauge:\n%s", grepMetric(stats, "subscribe"))
	}
	if !strings.Contains(stats, "hrdb_server_subscribe_streams_total") {
		t.Fatalf("stats missing feed counter:\n%s", grepMetric(stats, "subscribe"))
	}

	// Resume: a second subscriber from the delta's position sees only what
	// comes after it — no replayed snapshot, no duplicate delta.
	sub.Close()
	if _, err := c.Exec(ctx, "ASSERT flies (rex);"); err != nil {
		t.Fatal(err)
	}
	sub2, err := c.SubscribeFrom("flat", d.Epoch, d.Offset)
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	d2 := nextChange(t, sub2)
	if d2.Kind != "delta" {
		t.Fatalf("resumed change = %q, want delta", d2.Kind)
	}
	if got := strings.Join(d2.Added, ","); got != "(rex)" {
		t.Fatalf("resumed delta added = %q, want (rex)", got)
	}
}

func grepMetric(stats, substr string) string {
	var out []string
	for _, line := range strings.Split(stats, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

func TestSubscribeV1(t *testing.T) { testSubscribeFeed(t, ProtocolV1) }
func TestSubscribeV2(t *testing.T) { testSubscribeFeed(t, ProtocolV2) }

// TestSubscribeErrors covers the refusal paths: no source configured,
// unknown feed name.
func TestSubscribeErrors(t *testing.T) {
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bare := New(st, Options{CloseTarget: true})
	if err := bare.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		bare.Shutdown(ctx)
	})
	c, err := Dial(bare.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, err := c.Subscribe("flat")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := sub.Next(ctx); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Next without a source = %v, want ErrUnsupported", err)
	}
	sub.Close()

	srv, _ := newSubscribeServer(t, Options{})
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	sub2, err := c2.Subscribe("nosuch")
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	_, err = sub2.Next(ctx)
	var se *ServerError
	if !errors.As(err, &se) || se.Code != "notfound" {
		t.Fatalf("Next on unknown feed = %v, want notfound ServerError", err)
	}

	if _, err := c2.Subscribe("bad name"); err == nil {
		t.Fatal("Subscribe accepted a name with whitespace")
	}
}

// TestSubscribeNegotiate pins the handshake matrix the subscription's own
// dialer must mirror: auto-negotiation falling back to v1 on a v1-only
// server, a pinned-v2 client refusing that same server, and a tenant
// subscription riding the tenant HELLO.
func TestSubscribeNegotiate(t *testing.T) {
	v1only, _ := newSubscribeServer(t, Options{DisableV2: true})
	c, err := Dial(v1only.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, err := c.Subscribe("flat")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if ch := nextChange(t, sub); ch.Kind != "snapshot" || strings.Join(ch.Rows, ",") != "(tweety)" {
		t.Fatalf("fallback feed snapshot = %+v", ch)
	}

	cv2, err := Dial(v1only.Addr(), WithProtocol(ProtocolV2))
	if err == nil {
		defer cv2.Close()
		sub2, err := cv2.Subscribe("flat")
		if err != nil {
			t.Fatal(err)
		}
		defer sub2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		var se *ServerError
		if _, err := sub2.Next(ctx); !errors.As(err, &se) || se.Code != "proto" {
			t.Fatalf("pinned-v2 Next on a v1-only server = %v, want proto ServerError", err)
		}
	}

	tsrv, _ := newSubscribeServer(t, Options{Tenants: []TenantConfig{{Name: "acme"}}})
	ct, err := Dial(tsrv.Addr(), WithTenant("acme"))
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	sub3, err := ct.Subscribe("flat")
	if err != nil {
		t.Fatal(err)
	}
	defer sub3.Close()
	if ch := nextChange(t, sub3); ch.Kind != "snapshot" {
		t.Fatalf("tenant feed first change = %q, want snapshot", ch.Kind)
	}
}

// TestSubscribeStaleResume: resuming from a position the feed's journal
// cannot cover (here, a fabricated future epoch) must not error out the
// subscription — the server reports it stale, and the client restarts with
// a fresh snapshot that resets consumer state.
func TestSubscribeStaleResume(t *testing.T) {
	for _, proto := range []int{ProtocolV1, ProtocolV2} {
		srv, _ := newSubscribeServer(t, Options{})
		c, err := Dial(srv.Addr(), WithProtocol(proto))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		sub, err := c.SubscribeFrom("flat", 99, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		if ch := nextChange(t, sub); ch.Kind != "snapshot" || strings.Join(ch.Rows, ",") != "(tweety)" {
			t.Fatalf("proto %d: stale resume delivered %+v, want a fresh snapshot", proto, ch)
		}
	}
}

// TestSubscribeV1WireErrors drives the raw v1 verb with malformed lines:
// each must produce a protocol error, not a hung or hijacked connection.
func TestSubscribeV1WireErrors(t *testing.T) {
	srv, _ := newSubscribeServer(t, Options{})
	for _, line := range []string{
		"SUBSCRIBE\n",                // missing name
		"SUBSCRIBE flat 1\n",         // position needs both fields
		"SUBSCRIBE flat x 0\n",       // bad epoch
		"SUBSCRIBE flat 1 -5\n",      // negative offset
		"SUBSCRIBE flat 1 0 extra\n", // trailing field
	} {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.WriteString(conn, line); err != nil {
			t.Fatal(err)
		}
		resp, err := readResponse(bufio.NewReader(conn), 1<<20)
		if err != nil {
			t.Fatalf("%q: read response: %v", line, err)
		}
		if resp.ok || resp.code != codeProto {
			t.Fatalf("%q: response ok=%v code=%q, want proto error", line, resp.ok, resp.code)
		}
		conn.Close()
	}
}

// TestSubscribeV1Unsupported: the v1 verb on a server without a subscribe
// source refuses with "unsupported" and keeps the connection usable.
func TestSubscribeV1Unsupported(t *testing.T) {
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bare := New(st, Options{CloseTarget: true})
	if err := bare.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		bare.Shutdown(ctx)
	})
	c, err := Dial(bare.Addr(), WithProtocol(ProtocolV1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, err := c.Subscribe("flat")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := sub.Next(ctx); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("v1 Next without a source = %v, want ErrUnsupported", err)
	}
}

// TestSubscribeV2WireErrors drives raw v2 SUBSCRIBE frames that must desync
// the conversation: a truncated payload and a duplicate request id.
func TestSubscribeV2WireErrors(t *testing.T) {
	srv, _ := newSubscribeServer(t, Options{})

	dialV2 := func() (net.Conn, *bufio.Reader) {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReader(conn)
		if _, err := io.WriteString(conn, "HELLO 2\n"); err != nil {
			t.Fatal(err)
		}
		if resp, err := readResponse(br, 1<<20); err != nil || !resp.ok {
			t.Fatalf("HELLO = %+v, %v", resp, err)
		}
		return conn, br
	}

	// Truncated payload: fvErr proto, then the server hangs up.
	conn, br := dialV2()
	if err := writeFrame(conn, frame{typ: fvSubscribe, id: 1, stream: 1, payload: []byte("short")}); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(br, 1<<20)
	if err != nil || f.typ != fvErr {
		t.Fatalf("short payload reply = %+v, %v (want ERR frame)", f, err)
	}
	if code, _, _, err := parseErrFramePayload(f.payload); err != nil || code != codeProto {
		t.Fatalf("short payload error code = %q, %v, want proto", code, err)
	}
	if _, err := readFrame(br, 1<<20); err == nil {
		t.Fatal("connection survived a malformed SUBSCRIBE")
	}
	conn.Close()

	// Duplicate id: the second SUBSCRIBE reusing a live feed's id desyncs.
	conn, br = dialV2()
	defer conn.Close()
	sub := frame{typ: fvSubscribe, id: 7, stream: 1, payload: subscribePayload("flat", 0, 0, false)}
	if err := writeFrame(conn, sub); err != nil {
		t.Fatal(err)
	}
	if f, err := readFrame(br, 1<<20); err != nil || f.typ != fvSub {
		t.Fatalf("first feed frame = %+v, %v (want SUB)", f, err)
	}
	if err := writeFrame(conn, sub); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		f, err := readFrame(br, 1<<20)
		if err != nil {
			break // server hung up after the proto error
		}
		if f.typ == fvErr {
			if code, _, _, perr := parseErrFramePayload(f.payload); perr == nil && code == codeProto {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("duplicate id never produced a proto error")
		}
	}
}

// TestSubscribePayloadRoundTrip pins the v2 SUBSCRIBE payload encoding and
// its decoder's rejection of truncated or negative-offset payloads.
func TestSubscribePayloadRoundTrip(t *testing.T) {
	p := subscribePayload("feed", 3, 99, true)
	name, epoch, offset, resume, err := parseSubscribePayload(p)
	if err != nil || name != "feed" || epoch != 3 || offset != 99 || !resume {
		t.Fatalf("round trip = %q %d %d %v, %v", name, epoch, offset, resume, err)
	}
	if _, _, _, _, err := parseSubscribePayload(p[:16]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	neg := subscribePayload("feed", 0, 0, false)
	neg[9] = 0xFF // sign bit of the offset
	if _, _, _, _, err := parseSubscribePayload(neg); err == nil {
		t.Fatal("negative offset accepted")
	}
}

// TestSubscribeDrain: a server with live feeds shuts down cleanly and
// promptly — subscriptions never hold up the drain.
func TestSubscribeDrain(t *testing.T) {
	srv, _ := newSubscribeServer(t, Options{})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, err := c.Subscribe("flat")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if ch := nextChange(t, sub); ch.Kind != "snapshot" {
		t.Fatalf("first change = %q, want snapshot", ch.Kind)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with a live feed: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("drain took %v with a live feed", d)
	}
	// The subscriber observes the severed feed and keeps retrying until
	// its context expires; it must not fabricate changes.
	nctx, ncancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer ncancel()
	if ch, err := sub.Next(nctx); err == nil {
		t.Fatalf("Next after shutdown delivered %v, want error", ch)
	}
}

// TestSubscribeChaosSever severs the feed's response path at small byte
// budgets — mid-frame included — while a writer keeps mutating. The
// subscription must reassemble, via resume, exactly the committed history:
// folding every delivered change must reproduce the view's final rows.
func TestSubscribeChaosSever(t *testing.T) {
	srv, m := newSubscribeServer(t, Options{})
	proxy, err := NewChaosProxy(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Writer path goes straight to the server; only the feed suffers.
	w, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c, err := Dial(proxy.Addr(), WithBackoff(time.Millisecond, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sub, err := c.Subscribe("flat")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	have := map[string]bool{}
	apply := func(ch SubChange) {
		if ch.Kind == "snapshot" {
			have = map[string]bool{}
			for _, r := range ch.Rows {
				have[r] = true
			}
			return
		}
		for _, r := range ch.Removed {
			if !have[r] {
				t.Fatalf("delta removes %q which the feed never delivered (gap or duplicate)", r)
			}
			delete(have, r)
		}
		for _, r := range ch.Added {
			if have[r] {
				t.Fatalf("delta re-adds %q (duplicate delivery)", r)
			}
			have[r] = true
		}
	}
	apply(nextChange(t, sub))

	ctx := context.Background()
	const n = 12
	for i := 0; i < n; i++ {
		// Arm mid-frame severs on a cadence: budgets land inside headers,
		// inside payloads, and at frame boundaries.
		if i%2 == 0 {
			proxy.SeverResponseAfter(int64(3 + i*7%40))
		}
		if _, err := w.Exec(ctx, fmt.Sprintf("INSTANCE b%d UNDER bird; ASSERT flies (b%d);", i, i)); err != nil {
			t.Fatal(err)
		}
		// Drain whatever the feed has caught up to before the next sever.
		apply(nextChange(t, sub))
	}

	// Catch up: fold deltas until the feed reflects the final view.
	want, err := m.Rows("flat")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := make([]string, 0, len(have))
		for r := range have {
			got = append(got, r)
		}
		sort.Strings(got)
		if strings.Join(got, "\n") == strings.Join(want, "\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("feed never converged\n got: %q\nwant: %q", got, want)
		}
		nctx, ncancel := context.WithTimeout(context.Background(), time.Second)
		ch, err := sub.Next(nctx)
		ncancel()
		if err == nil {
			apply(ch)
		}
	}
}
