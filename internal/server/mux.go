package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"hrdb/internal/hql"
	"hrdb/internal/obs"
	"hrdb/internal/storage"
)

// This file is the protocol v2 server path: after a HELLO handshake
// accepts the upgrade, serveMux owns the connection and multiplexes many
// logical streams over it. The concurrency model:
//
//   - The reader goroutine (serveMux's loop) decodes frames and never
//     blocks on execution: EXEC frames are queued per stream.
//   - Each stream is a FIFO over one private hql.Session — at most one of
//     its statements is in the worker pool at a time, preserving the
//     session's single-goroutine contract while distinct streams run
//     concurrently.
//   - An admitted statement gets an await goroutine that writes the reply
//     when the worker finishes (or the deadline fires) and then advances
//     the stream. Await goroutines are bounded by admission capacity
//     (Workers + QueueDepth), not by client appetite.
//   - Replies go through one mutex-guarded writer, a frame per Write
//     call, so responses interleave at frame granularity in completion
//     order.
//
// Deadline semantics diverge from v1 deliberately: when a deadline or
// cancellation abandons a statement that may still be executing, v1 must
// retire the whole connection (its one session is poisoned); v2 retires
// only the stream — queued statements behind it answer "canceled", other
// streams never notice.

// maxFreeSessions caps a connection's pool of reusable sessions from
// cleanly ended one-shot streams.
const maxFreeSessions = 8

// muxTask is one EXEC frame travelling through a stream's FIFO.
type muxTask struct {
	id     uint64
	stream uint32
	end    bool // flagEndStream: dispose the stream after this reply
	// started flips (under muxConn.mu) when the task leaves the FIFO for
	// submission; CANCEL uses it to tell "still queued" from "in the pool".
	started bool
	t       *task
	start   time.Time
}

// muxStream is one logical sub-connection: a FIFO of tasks over a private
// session. dead marks a retired stream — its session may still be
// executing an abandoned statement, so nothing runs on it again; the
// tombstone stays in the stream table so late frames answer deterministically.
type muxStream struct {
	id      uint32
	sess    *hql.Session
	queue   []*muxTask
	running bool // a task of this stream is submitted (or being submitted)
	dead    bool
}

// muxConn is the per-connection state of the v2 protocol.
type muxConn struct {
	srv *Server
	tn  *tenantState
	c   net.Conn

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	streams map[uint32]*muxStream
	byID    map[uint64]*muxTask
	free    []*hql.Session // reusable sessions from ended one-shot streams

	// subs tracks live SUBSCRIBE feeds by request id so CANCEL and
	// teardown can end them; subWG lets teardown wait for their
	// goroutines (they exit promptly once canceled).
	subs  map[uint64]context.CancelFunc
	subWG sync.WaitGroup
}

// serveMux serves a negotiated v2 connection until it ends. The caller
// (handleConn) closes the socket afterwards.
func (s *Server) serveMux(c net.Conn, br *bufio.Reader, tn *tenantState) {
	m := &muxConn{
		srv:     s,
		tn:      tn,
		c:       c,
		streams: make(map[uint32]*muxStream),
		byID:    make(map[uint64]*muxTask),
	}
	defer m.teardown()
	for {
		if s.opts.IdleTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		f, err := readFrame(br, s.opts.MaxStatementBytes+64)
		if err != nil {
			// Best-effort diagnosis; framing is lost either way, so close.
			switch {
			case errors.Is(err, errTooLarge):
				m.send(errFrame(0, 0, codeTooLarge, 0, err.Error()))
			case errors.Is(err, errProto):
				m.send(errFrame(0, 0, codeProto, 0, err.Error()))
			}
			return
		}
		c.SetReadDeadline(time.Time{})

		switch f.typ {
		case fvPing:
			if m.send(okFrame(f.id, f.stream, "pong")) != nil {
				return
			}
		case fvStats:
			if m.send(okFrame(f.id, f.stream, obs.Default().RenderText())) != nil {
				return
			}
		case fvLag:
			if s.opts.LagProbe == nil {
				m.send(errFrame(f.id, f.stream, codeUnsupported, 0, "not a replica"))
			} else if m.send(okFrame(f.id, f.stream, lagPayload(s.opts.LagProbe()))) != nil {
				return
			}
		case fvPromote:
			switch {
			case s.opts.Promote == nil:
				m.send(errFrame(f.id, f.stream, codeUnsupported, 0, "not a replica"))
			case s.opts.Promote() != nil:
				m.send(errFrame(f.id, f.stream, codeExec, 0, "promote failed"))
			default:
				if m.send(okFrame(f.id, f.stream, "promoted")) != nil {
					return
				}
			}
		case fvShardMap:
			if s.opts.Shard == nil {
				m.send(errFrame(f.id, f.stream, codeUnsupported, 0, "this server is not a shard"))
			} else if m.send(okFrame(f.id, f.stream,
				fmt.Sprintf("%d %d", s.opts.Shard.ID, s.opts.Shard.Count))) != nil {
				return
			}
		case fvGoodbye:
			return
		case fvCancel:
			m.cancelID(f.id)
		case fvEndStream:
			m.endStream(f.stream)
		case fvSubscribe:
			if !m.subscribe(f) {
				return
			}
		case fvExec, fvExecShard:
			if f.typ == fvExecShard && s.opts.Shard == nil {
				m.send(errFrame(f.id, f.stream, codeUnsupported, 0, "this server is not a shard"))
				continue
			}
			if !m.exec(f) {
				return
			}
		default:
			m.send(errFrame(f.id, f.stream, codeProto, 0, "unknown frame type"))
			return
		}
	}
}

// teardown cancels every outstanding task when the connection ends, so
// abandoned statements release their workers promptly instead of running
// to completion for a reader that is gone.
func (m *muxConn) teardown() {
	m.mu.Lock()
	tasks := make([]*muxTask, 0, len(m.byID))
	for _, mt := range m.byID {
		tasks = append(tasks, mt)
	}
	subs := make([]context.CancelFunc, 0, len(m.subs))
	for _, cancel := range m.subs {
		subs = append(subs, cancel)
	}
	m.mu.Unlock()
	for _, mt := range tasks {
		mt.t.cancel()
	}
	for _, cancel := range subs {
		cancel()
	}
	m.subWG.Wait()
}

// send writes one frame. Whoever completes a request writes its reply;
// wmu keeps frames whole. Write errors mean the connection is going away —
// callers on the reply path ignore them (teardown handles the rest).
func (m *muxConn) send(f frame) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	return writeFrame(m.c, f)
}

// reply answers one EXEC task and records its latency (received → reply)
// in the global and tenant histograms.
func (m *muxConn) reply(mt *muxTask, f frame) {
	d := time.Since(mt.start)
	metricRequestNS.ObserveDuration(d)
	m.tn.mLatency.ObserveDuration(d)
	m.send(f)
}

// exec enqueues one EXEC frame on its stream, starting the stream if it is
// idle. It reports whether the connection may continue (a malformed or
// duplicate frame desyncs the conversation and closes it).
func (m *muxConn) exec(f frame) bool {
	timeout, input, err := parseExecPayload(f.payload)
	if err != nil {
		m.send(errFrame(f.id, f.stream, codeProto, 0, err.Error()))
		return false
	}
	s := m.srv
	metricRequests.Inc()
	m.tn.mRequests.Inc()

	// Build the task at receipt so the deadline clock covers time spent
	// waiting in the stream FIFO — a pipelined request's budget starts
	// when the server reads it, not when the stream gets around to it.
	if s.opts.MaxDeadline > 0 && (timeout <= 0 || timeout > s.opts.MaxDeadline) {
		timeout = s.opts.MaxDeadline
	}
	ctx, cancel := context.WithCancel(context.Background())
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeout)
	}

	m.mu.Lock()
	if _, dup := m.byID[f.id]; dup {
		m.mu.Unlock()
		cancel()
		m.send(errFrame(f.id, f.stream, codeProto, 0, "duplicate request id"))
		return false
	}
	st := m.streams[f.stream]
	if st == nil {
		st = &muxStream{id: f.stream, sess: m.takeSession()}
		m.streams[f.stream] = st
	}
	if st.dead {
		m.mu.Unlock()
		cancel()
		m.send(errFrame(f.id, f.stream, codeCanceled, 0, "stream retired after an abandoned statement"))
		return true
	}
	mt := &muxTask{
		id: f.id, stream: f.stream, end: f.flags&flagEndStream != 0, start: time.Now(),
		t: &task{sess: st.sess, input: input, ctx: ctx, cancel: cancel, tn: m.tn, done: make(chan taskResult, 1)},
	}
	if f.typ == fvExecShard {
		// Guarded at the dispatch switch: opts.Shard is non-nil here.
		node := s.opts.Shard
		mt.t.run = func(ctx context.Context) (string, error) { return node.Execute(ctx, input) }
	}
	m.byID[f.id] = mt
	if st.running {
		st.queue = append(st.queue, mt)
		m.mu.Unlock()
		return true
	}
	st.running = true
	m.mu.Unlock()
	m.runStream(mt, st)
	return true
}

// takeSession pops a pooled session or builds a fresh one over the
// tenant's target. Callers hold m.mu.
func (m *muxConn) takeSession() *hql.Session {
	for n := len(m.free); n > 0; n = len(m.free) {
		sess := m.free[n-1]
		m.free = m.free[:n-1]
		if sess.Reset() == nil {
			return sess
		}
	}
	return m.srv.newSession(m.tn)
}

// runStream advances a stream: it submits the head task and, whenever a
// task is answered without entering the worker pool (shed, pre-expired),
// continues inline with the next queued one. Exactly one goroutine
// advances a given stream at a time (st.running).
func (m *muxConn) runStream(mt *muxTask, st *muxStream) {
	for mt != nil {
		if m.startTask(mt, st) {
			return // admitted; the await goroutine advances the stream next
		}
		mt = m.afterTask(mt, st, false)
	}
}

// startTask submits one task to the admission queue. It reports whether an
// await goroutine now owns the reply; on false the task has already been
// answered here.
func (m *muxConn) startTask(mt *muxTask, st *muxStream) bool {
	m.mu.Lock()
	mt.started = true
	m.mu.Unlock()
	s := m.srv
	t := mt.t
	if err := t.ctx.Err(); err != nil {
		// Expired or canceled while waiting in the stream FIFO: the
		// statement never ran, so the stream itself is fine.
		t.cancel()
		code := codeDeadline
		if errors.Is(err, context.Canceled) {
			code = codeCanceled
		} else {
			metricDeadline.Inc()
		}
		m.reply(mt, errFrame(mt.id, mt.stream, code, 0, err.Error()))
		return false
	}
	if code, err := s.submit(t); err != nil {
		t.cancel()
		var hint time.Duration
		if code == codeOverloaded || code == codeQuota {
			hint = s.opts.RetryAfter
		}
		m.reply(mt, errFrame(mt.id, mt.stream, code, hint, err.Error()))
		return false
	}
	s.replyWG.Add(1)
	go m.await(mt, st)
	return true
}

// await waits for an admitted task's result (or its deadline), writes the
// reply, and advances the stream. One await goroutine exists per admitted
// task, so their count is bounded by Workers + QueueDepth.
func (m *muxConn) await(mt *muxTask, st *muxStream) {
	defer m.srv.replyWG.Done()
	t := mt.t
	retire := false
	select {
	case res := <-t.done:
		t.cancel()
		switch {
		case res.panicked:
			// The session may hold arbitrarily corrupt state: answer, then
			// retire the stream. The connection and the server stay up.
			metricPanics.Inc()
			m.reply(mt, errFrame(mt.id, mt.stream, codePanic, 0, res.err.Error()))
			retire = true
		case res.err != nil:
			code := codeExec
			if errors.Is(res.err, context.DeadlineExceeded) {
				code = codeDeadline
				metricDeadline.Inc()
			} else if errors.Is(res.err, context.Canceled) {
				code = codeCanceled
			} else if errors.Is(res.err, storage.ErrDeposed) {
				// This node was fenced by a newer primary; the write
				// definitively did not execute — "stale" tells a router to
				// re-discover the primary and retry there.
				code = codeStale
			}
			m.reply(mt, errFrame(mt.id, mt.stream, code, 0, res.err.Error()))
		default:
			m.reply(mt, okFrame(mt.id, mt.stream, res.out))
		}
	case <-t.ctx.Done():
		// Deadline or cancel fired while the statement was queued or still
		// running. Answer now — the server always answers or sheds — and
		// retire only this stream: its session may still be executing, so
		// it must never run another statement, but the connection and every
		// other stream keep going (v1 had to retire the whole connection
		// here).
		code := codeDeadline
		if errors.Is(t.ctx.Err(), context.Canceled) {
			code = codeCanceled
		} else {
			metricDeadline.Inc()
		}
		m.reply(mt, errFrame(mt.id, mt.stream, code, 0, t.ctx.Err().Error()))
		retire = true
	}
	if next := m.afterTask(mt, st, retire); next != nil {
		m.runStream(next, st)
	}
}

// afterTask retires a finished head-of-stream task and returns the next
// task to run, if any. retire marks the stream dead (its session may still
// be executing the abandoned statement); a dead or cleanly ended stream
// answers everything still queued with "canceled".
func (m *muxConn) afterTask(mt *muxTask, st *muxStream, retire bool) *muxTask {
	m.mu.Lock()
	delete(m.byID, mt.id)
	if retire {
		st.dead = true
	}
	var next *muxTask
	var dropped []*muxTask
	switch {
	case st.dead:
		dropped = st.queue
		st.queue = nil
		st.running = false
	case mt.end:
		// One-shot stream: recycle the session, forget the stream. Anything
		// pipelined behind an end-flagged EXEC is a client bug; answer it
		// rather than run it on a disposed session.
		dropped = st.queue
		st.queue = nil
		st.running = false
		delete(m.streams, st.id)
		if len(m.free) < maxFreeSessions {
			m.free = append(m.free, st.sess)
		}
		st.sess = nil
	case len(st.queue) > 0:
		next = st.queue[0]
		st.queue = st.queue[1:]
	default:
		st.running = false
	}
	for _, d := range dropped {
		delete(m.byID, d.id)
	}
	m.mu.Unlock()
	for _, d := range dropped {
		d.t.cancel()
		m.reply(d, errFrame(d.id, d.stream, codeCanceled, 0, "stream closed before execution"))
	}
	return next
}

// cancelID handles a CANCEL frame: best effort, no reply of its own. A
// still-queued request is answered "canceled" immediately; a request in
// the worker pool gets its context canceled and answers through the normal
// await path; an unknown id (already answered, never seen) is a no-op.
func (m *muxConn) cancelID(id uint64) {
	m.mu.Lock()
	if cancel := m.subs[id]; cancel != nil {
		m.mu.Unlock()
		cancel() // the feed goroutine answers and deregisters itself
		return
	}
	mt := m.byID[id]
	queued := false
	if mt != nil && !mt.started {
		if st := m.streams[mt.stream]; st != nil {
			for i, q := range st.queue {
				if q == mt {
					st.queue = append(st.queue[:i], st.queue[i+1:]...)
					queued = true
					break
				}
			}
		}
		if queued {
			delete(m.byID, id)
		}
	}
	m.mu.Unlock()
	if mt == nil {
		return
	}
	mt.t.cancel()
	if queued {
		m.reply(mt, errFrame(mt.id, mt.stream, codeCanceled, 0, "canceled before execution"))
	}
}

// endStream disposes a stream. An idle stream is forgotten at once (its
// session recycled); a stream with work in flight is marked dead so it
// winds down through afterTask.
func (m *muxConn) endStream(stream uint32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.streams[stream]
	if st == nil {
		return
	}
	if st.running {
		st.dead = true
		return
	}
	delete(m.streams, stream)
	if st.sess != nil && !st.dead && len(m.free) < maxFreeSessions {
		m.free = append(m.free, st.sess)
	}
	st.sess = nil
}
