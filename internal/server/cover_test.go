package server

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// This file pins surfaces the behavioral suites reach only incidentally:
// error formatting, the code-table init guards, the v2 replication verbs,
// and raw-frame edge traffic a well-behaved client never emits.

func TestServerErrorString(t *testing.T) {
	e := &ServerError{Code: codeExec, Msg: "boom"}
	if got := e.Error(); got != "server: exec: boom" {
		t.Fatalf("Error() = %q", got)
	}
}

// TestDefineCodeGuards: the code table refuses duplicates and nil
// sentinels at init. Both guards fire before the registry is touched, so
// the exhaustive-table test stays valid after this one runs.
func TestDefineCodeGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() { defineCode("proto", ErrProtocol) })
	mustPanic("nil sentinel", func() { defineCode("cover-only-nil", nil) })
	if _, ok := codeSentinels[Code("cover-only-nil")]; ok {
		t.Fatal("rejected code leaked into the registry")
	}
}

// TestV2ReplVerbs: LAG and PROMOTE over v2 frames — unsupported on a
// plain server, proxied to the hooks on a replica, and a failing promote
// hook surfaces as an exec failure.
func TestV2ReplVerbs(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	t.Run("not-a-replica", func(t *testing.T) {
		srv := startServer(t, newMemTarget(t), Options{})
		c, err := Dial(srv.Addr(), WithMaxRetries(0), WithDialTimeout(2*time.Second))
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer c.Close()
		if _, err := c.Lag(ctx); !errors.Is(err, ErrUnsupported) {
			t.Fatalf("Lag on non-replica: %v, want ErrUnsupported", err)
		}
		if err := c.Promote(ctx); !errors.Is(err, ErrUnsupported) {
			t.Fatalf("Promote on non-replica: %v, want ErrUnsupported", err)
		}
	})

	t.Run("hooks", func(t *testing.T) {
		want := LagInfo{Staleness: 7 * time.Millisecond, Epoch: 3, Offset: 99, State: "streaming"}
		promoteErr := errors.New("injected: promote refused")
		var promoted bool
		srv := startServer(t, newMemTarget(t), Options{
			LagProbe: func() LagInfo { return want },
			Promote: func() error {
				if promoted {
					return promoteErr
				}
				promoted = true
				return nil
			},
		})
		c, err := Dial(srv.Addr(), WithMaxRetries(0))
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer c.Close()
		got, err := c.Lag(ctx)
		if err != nil || got != want {
			t.Fatalf("Lag = %+v, %v; want %+v", got, err, want)
		}
		if err := c.Promote(ctx); err != nil {
			t.Fatalf("Promote: %v", err)
		}
		if err := c.Promote(ctx); !errors.Is(err, ErrExecFailed) {
			t.Fatalf("failing Promote hook: %v, want ErrExecFailed", err)
		}
	})
}

// TestV1ForcedPaths keeps the v1 legs exercised now that clients upgrade
// to v2 by default: statement execution and failure, the inline verb
// family, panic retirement, and deadlines, all over the line protocol.
func TestV1ForcedPaths(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	srv := startServer(t, panicTarget{newMemTarget(t)}, Options{})
	c, err := Dial(srv.Addr(), WithProtocol(ProtocolV1), WithMaxRetries(0))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	if out, err := c.Exec(ctx, "HOLDS Flies (Tweety);"); err != nil || strings.TrimSpace(out) != "true" {
		t.Fatalf("v1 Exec = %q, %v", out, err)
	}
	if _, err := c.Exec(ctx, "HOLDS Nope (X);"); !errors.Is(err, ErrExecFailed) {
		t.Fatalf("v1 exec failure: %v, want ErrExecFailed", err)
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("v1 Ping: %v", err)
	}
	if out, err := c.Stats(ctx); err != nil || !strings.Contains(out, "hrdb_") {
		t.Fatalf("v1 Stats = %v (%d bytes)", err, len(out))
	}
	if _, err := c.Lag(ctx); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("v1 Lag on non-replica: %v, want ErrUnsupported", err)
	}
	if err := c.Promote(ctx); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("v1 Promote on non-replica: %v, want ErrUnsupported", err)
	}
	// A panicking statement answers, retires its connection, and the
	// client's next statement transparently redials.
	if _, err := c.Exec(ctx, "DENY Flies (Tweety);"); !errors.Is(err, ErrStatementPanicked) {
		t.Fatalf("v1 panic: %v, want ErrStatementPanicked", err)
	}
	if out, err := c.Exec(ctx, "HOLDS Flies (Tweety);"); err != nil || strings.TrimSpace(out) != "true" {
		t.Fatalf("v1 Exec after panic = %q, %v", out, err)
	}

	// Deadline on a parked statement, line protocol.
	gate := &gateTarget{Target: newMemTarget(t), gate: make(chan struct{})}
	srv2 := startServer(t, gate, Options{Workers: 1})
	release := sync.OnceFunc(func() { close(gate.gate) })
	t.Cleanup(release)
	c2, err := Dial(srv2.Addr(), WithProtocol(ProtocolV1), WithMaxRetries(0))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c2.Close()
	dctx, dcancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer dcancel()
	if _, err := c2.Exec(dctx, "ASSERT Flies (Tweety);"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("v1 deadline: %v, want DeadlineExceeded", err)
	}
	release()
}

// rawHello dials addr, upgrades to v2 by hand, and returns the connection
// with the reader that owns its buffered bytes.
func rawHello(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	c, err := netDial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	if _, err := io.WriteString(c, "HELLO 2\n"); err != nil {
		t.Fatalf("hello: %v", err)
	}
	br := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := readResponse(br, 1<<20)
	if err != nil || !resp.ok || !strings.HasPrefix(resp.payload, "v2 tenant=") {
		t.Fatalf("hello reply = %+v, %v", resp, err)
	}
	return c, br
}

// TestRawV2EdgeFrames drives the mux with hand-built frames: canceling a
// statement still queued behind a running one on the same stream answers
// it without executing; CANCEL and ENDSTREAM for unknown IDs are no-ops;
// an unknown frame type is a protocol error that ends the connection.
func TestRawV2EdgeFrames(t *testing.T) {
	gate := &gateTarget{Target: newMemTarget(t), gate: make(chan struct{})}
	srv := startServer(t, gate, Options{Workers: 1, QueueDepth: 8})
	release := sync.OnceFunc(func() { close(gate.gate) })
	t.Cleanup(release)

	c, br := rawHello(t, srv.Addr())
	send := func(f frame) {
		t.Helper()
		c.SetWriteDeadline(time.Now().Add(2 * time.Second))
		if err := writeFrame(c, f); err != nil {
			t.Fatalf("writeFrame(type %#x): %v", f.typ, err)
		}
	}
	recv := func() frame {
		t.Helper()
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		f, err := readFrame(br, 1<<20)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		return f
	}

	// id 1 parks on the gate; id 2 queues behind it on the same stream.
	// The read loop enqueues id 2 before it sees the CANCEL, so the
	// cancel deterministically hits a queued-not-started statement.
	send(frame{typ: fvExec, id: 1, stream: 1, payload: execPayload(0, "ASSERT Flies (Tweety);")})
	waitParked(t, gate, 1)
	send(frame{typ: fvExec, id: 2, stream: 1, payload: execPayload(0, "HOLDS Flies (Tweety);")})
	send(frame{typ: fvCancel, id: 2})
	f := recv()
	code, _, msg, err := parseErrFramePayload(f.payload)
	if f.typ != fvErr || f.id != 2 || err != nil || code != codeCanceled {
		t.Fatalf("canceled-while-queued reply = %+v (%s %q %v)", f, code, msg, err)
	}
	if !strings.Contains(msg, "before execution") {
		t.Fatalf("queued cancel msg = %q", msg)
	}

	// Unknown IDs are no-ops: the stream above must still complete.
	send(frame{typ: fvCancel, id: 77})
	send(frame{typ: fvEndStream, stream: 99})
	release()
	if f := recv(); f.typ != fvOK || f.id != 1 {
		t.Fatalf("gated statement reply = %+v", f)
	}
	// Retiring the now-idle stream recycles its session silently.
	send(frame{typ: fvEndStream, stream: 1})

	// An unrecognized frame type is answered and ends the connection.
	send(frame{typ: 0x7f, id: 9})
	f = recv()
	code, _, _, err = parseErrFramePayload(f.payload)
	if f.typ != fvErr || f.id != 9 || err != nil || code != codeProto {
		t.Fatalf("unknown-type reply = %+v (%s %v)", f, code, err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := readFrame(br, 1<<20); err != io.EOF {
		t.Fatalf("after protocol error: %v, want EOF", err)
	}
}

// TestRawV2Goodbye: GOODBYE closes the connection cleanly, no reply.
func TestRawV2Goodbye(t *testing.T) {
	srv := startServer(t, newMemTarget(t), Options{})
	c, br := rawHello(t, srv.Addr())
	c.SetWriteDeadline(time.Now().Add(2 * time.Second))
	if err := writeFrame(c, frame{typ: fvGoodbye}); err != nil {
		t.Fatalf("goodbye: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := readFrame(br, 1<<20); err != io.EOF {
		t.Fatalf("after GOODBYE: %v, want EOF", err)
	}
}
