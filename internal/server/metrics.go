package server

import "hrdb/internal/obs"

// Server metrics, registered on the obs default registry. Process-wide:
// every Server in the process feeds the same series. The request path
// already pays for socket reads and queue hops, so per-request timing is
// unconditional.
var (
	metricActiveConns = obs.Default().Gauge("hrdb_server_active_conns")
	metricQueueDepth  = obs.Default().Gauge("hrdb_server_queue_depth")

	metricRequests = obs.Default().Counter("hrdb_server_requests_total")
	// metricShed counts EXEC requests shed by a full admission queue;
	// metricConnRefused counts whole connections refused at MaxConns.
	metricShed        = obs.Default().Counter("hrdb_server_shed_total")
	metricConnRefused = obs.Default().Counter("hrdb_server_overloaded_conns_total")
	metricDeadline    = obs.Default().Counter("hrdb_server_deadline_total")
	metricPanics      = obs.Default().Counter("hrdb_server_panics_total")

	metricRequestNS = obs.Default().Histogram("hrdb_server_request_duration_ns")

	// Replication front-end: active REPL streams and served SNAP bootstraps
	// (the shipping-side byte/lag series live in internal/repl).
	metricReplStreams   = obs.Default().Gauge("hrdb_server_repl_streams_active")
	metricReplSnapshots = obs.Default().Counter("hrdb_server_repl_snapshots_served_total")

	// Subscription front-end: live SUBSCRIBE feeds and feeds ever started
	// (both protocols; the per-frame delta/lag series live in
	// internal/view).
	metricSubStreams = obs.Default().Gauge("hrdb_server_subscribe_streams_active")
	metricSubStarted = obs.Default().Counter("hrdb_server_subscribe_streams_total")

	// Lag-bounded read routing (Router): reads served by a replica vs
	// reads that fell back to the primary.
	metricReplicaServed   = obs.Default().Counter("hrdb_router_replica_served_total")
	metricPrimaryFallback = obs.Default().Counter("hrdb_router_primary_fallback_total")
	// metricRouterFailovers counts primary re-routes: the router learned its
	// primary was deposed (or unreachable under retry-all) and adopted a
	// promoted replica in its place.
	metricRouterFailovers = obs.Default().Counter("hrdb_router_failovers_total")
)
