package server

import "hrdb/internal/obs"

// Server metrics, registered on the obs default registry. Process-wide:
// every Server in the process feeds the same series. The request path
// already pays for socket reads and queue hops, so per-request timing is
// unconditional.
var (
	metricActiveConns = obs.Default().Gauge("hrdb_server_active_conns")
	metricQueueDepth  = obs.Default().Gauge("hrdb_server_queue_depth")

	metricRequests = obs.Default().Counter("hrdb_server_requests_total")
	// metricShed counts EXEC requests shed by a full admission queue;
	// metricConnRefused counts whole connections refused at MaxConns.
	metricShed        = obs.Default().Counter("hrdb_server_shed_total")
	metricConnRefused = obs.Default().Counter("hrdb_server_overloaded_conns_total")
	metricDeadline    = obs.Default().Counter("hrdb_server_deadline_total")
	metricPanics      = obs.Default().Counter("hrdb_server_panics_total")

	metricRequestNS = obs.Default().Histogram("hrdb_server_request_duration_ns")
)
