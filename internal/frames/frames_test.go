package frames

import (
	"errors"
	"testing"
)

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// elephants builds the paper's Figure 4 world as frames: elephants are
// grey; royal elephants white; Clyde dappled.
func elephants(t *testing.T) *KB {
	t.Helper()
	kb := NewKB()
	must(t, kb.DefClass("Elephant"))
	must(t, kb.DefClass("RoyalElephant", "Elephant"))
	must(t, kb.DefClass("IndianElephant", "Elephant"))
	must(t, kb.DefInstance("Clyde", "RoyalElephant"))
	must(t, kb.DefInstance("Appu", "RoyalElephant", "IndianElephant"))
	must(t, kb.Set("Elephant", "color", "grey"))
	must(t, kb.Set("RoyalElephant", "color", "white"))
	must(t, kb.Set("Clyde", "color", "dappled"))
	return kb
}

// TestInheritanceWithAutoCancellation: Set generates the explicit
// cancellations, so each frame sees exactly one color.
func TestInheritanceWithAutoCancellation(t *testing.T) {
	kb := elephants(t)
	cases := []struct {
		frame, want string
	}{
		{"Elephant", "grey"},
		{"RoyalElephant", "white"},
		{"IndianElephant", "grey"},
		{"Clyde", "dappled"},
		{"Appu", "white"}, // royal binds tighter than elephant; Indian is silent
	}
	for _, c := range cases {
		got, ok, err := kb.Get(c.frame, "color")
		if err != nil {
			t.Errorf("Get(%s): %v", c.frame, err)
			continue
		}
		if !ok || got != c.want {
			t.Errorf("Get(%s) = %q/%v, want %q", c.frame, got, ok, c.want)
		}
	}
}

// TestAutoCancellationGeneratesNegation: the slot relation contains the
// explicit cancellation tuples of Figure 4.
func TestAutoCancellationGeneratesNegation(t *testing.T) {
	kb := elephants(t)
	rel, err := kb.SlotRelation("color")
	must(t, err)
	// Royal elephants are not grey, Clyde is not white: Figure 4's rows.
	negations := 0
	for _, tu := range rel.Tuples() {
		if !tu.Sign {
			negations++
		}
	}
	if negations < 2 {
		t.Fatalf("expected explicit cancellations, tuples: %v", rel.Tuples())
	}
	if err := rel.CheckConsistency(); err != nil {
		t.Fatalf("slot relation inconsistent: %v", err)
	}
}

// TestUnknownSlotAndFrame error paths.
func TestUnknownSlotAndFrame(t *testing.T) {
	kb := elephants(t)
	if _, _, err := kb.Get("Nobody", "color"); !errors.Is(err, ErrUnknownFrame) {
		t.Fatalf("got %v", err)
	}
	if _, _, err := kb.Get("Clyde", "weight"); !errors.Is(err, ErrUnknownSlot) {
		t.Fatalf("got %v", err)
	}
	if err := kb.Set("Nobody", "color", "x"); !errors.Is(err, ErrUnknownFrame) {
		t.Fatalf("got %v", err)
	}
	if _, err := kb.ResolveLeftPrecedence("Nobody", "color"); !errors.Is(err, ErrUnknownFrame) {
		t.Fatalf("got %v", err)
	}
	if _, err := kb.ResolveLeftPrecedence("Clyde", "weight"); !errors.Is(err, ErrUnknownSlot) {
		t.Fatalf("got %v", err)
	}
}

// TestUnsetSlotIsUnknown: a frame with no applicable value reports !ok.
func TestUnsetSlotIsUnknown(t *testing.T) {
	kb := NewKB()
	must(t, kb.DefClass("Rock"))
	must(t, kb.DefClass("Bird"))
	must(t, kb.Set("Bird", "locomotion", "flies"))
	_, ok, err := kb.Get("Rock", "locomotion")
	must(t, err)
	if ok {
		t.Fatal("rocks have no locomotion")
	}
}

// TestMultipleInheritanceConflictAndLeftPrecedence: the paper's LISP
// Flavors scenario — two parents disagree; left precedence compiles the
// choice into explicit tuples.
func TestMultipleInheritanceConflictAndLeftPrecedence(t *testing.T) {
	kb := NewKB()
	must(t, kb.DefClass("Swimmer"))
	must(t, kb.DefClass("Flyer"))
	must(t, kb.Set("Swimmer", "habitat", "water"))
	must(t, kb.Set("Flyer", "habitat", "air"))
	must(t, kb.DefInstance("Duck", "Flyer", "Swimmer")) // Flyer declared first

	_, _, err := kb.Get("Duck", "habitat")
	if !errors.Is(err, ErrNeedsResolution) {
		t.Fatalf("got %v, want ErrNeedsResolution", err)
	}

	winner, err := kb.ResolveLeftPrecedence("Duck", "habitat")
	must(t, err)
	if winner != "air" {
		t.Fatalf("winner = %q, want air (leftmost parent)", winner)
	}
	got, ok, err := kb.Get("Duck", "habitat")
	must(t, err)
	if !ok || got != "air" {
		t.Fatalf("Get = %q/%v", got, ok)
	}
	// The underlying relation is consistent after compilation.
	rel, err := kb.SlotRelation("habitat")
	must(t, err)
	if err := rel.CheckConsistency(); err != nil {
		t.Fatalf("inconsistent after resolution: %v", err)
	}
}

// TestLeftPrecedenceRecursesThroughParents: the leftmost parent may itself
// be conflicted; resolution recurses.
func TestLeftPrecedenceRecursesThroughParents(t *testing.T) {
	kb := NewKB()
	must(t, kb.DefClass("A"))
	must(t, kb.DefClass("B"))
	must(t, kb.Set("A", "s", "va"))
	must(t, kb.Set("B", "s", "vb"))
	must(t, kb.DefClass("AB", "A", "B")) // conflicted class
	must(t, kb.DefClass("C"))
	must(t, kb.Set("C", "s", "vc"))
	must(t, kb.DefInstance("x", "AB", "C"))

	winner, err := kb.ResolveLeftPrecedence("x", "s")
	must(t, err)
	if winner != "va" {
		t.Fatalf("winner = %q, want va (leftmost of leftmost)", winner)
	}
}

// TestSetOverridesOwnValue: re-setting a slot replaces the old value.
func TestSetOverridesOwnValue(t *testing.T) {
	kb := elephants(t)
	must(t, kb.Set("Clyde", "color", "pink"))
	got, ok, err := kb.Get("Clyde", "color")
	must(t, err)
	if !ok || got != "pink" {
		t.Fatalf("Get = %q/%v", got, ok)
	}
	// Other frames untouched.
	got, _, err = kb.Get("Appu", "color")
	must(t, err)
	if got != "white" {
		t.Fatalf("Appu = %q", got)
	}
}

// TestSlotsAndParentsAccessors.
func TestSlotsAndParentsAccessors(t *testing.T) {
	kb := elephants(t)
	if got := kb.Slots(); len(got) != 1 || got[0] != "color" {
		t.Fatalf("Slots = %v", got)
	}
	if got := kb.Parents("Appu"); len(got) != 2 || got[0] != "RoyalElephant" {
		t.Fatalf("Parents = %v", got)
	}
	if kb.Things().Domain() != "Thing" {
		t.Fatal("root wrong")
	}
	if _, err := kb.SlotRelation("nope"); !errors.Is(err, ErrUnknownSlot) {
		t.Fatalf("got %v", err)
	}
}

// TestExceptionChain: exceptions to exceptions through three levels.
func TestExceptionChain(t *testing.T) {
	kb := NewKB()
	must(t, kb.DefClass("Vehicle"))
	must(t, kb.DefClass("Car", "Vehicle"))
	must(t, kb.DefClass("SportsCar", "Car"))
	must(t, kb.DefInstance("myCar", "SportsCar"))
	must(t, kb.Set("Vehicle", "wheels", "four"))
	must(t, kb.Set("SportsCar", "wheels", "three")) // quirky kit car class
	must(t, kb.Set("myCar", "wheels", "four"))      // mine is normal after all

	for _, c := range []struct{ f, want string }{
		{"Vehicle", "four"}, {"Car", "four"}, {"SportsCar", "three"}, {"myCar", "four"},
	} {
		got, ok, err := kb.Get(c.f, "wheels")
		must(t, err)
		if !ok || got != c.want {
			t.Errorf("%s = %q/%v, want %q", c.f, got, ok, c.want)
		}
	}
}
