package frames

import (
	"errors"
	"testing"
)

// TestResolveWhenNoConflict: left precedence on an unconflicted frame just
// returns its value.
func TestResolveWhenNoConflict(t *testing.T) {
	kb := elephants(t)
	winner, err := kb.ResolveLeftPrecedence("Clyde", "color")
	must(t, err)
	if winner != "dappled" {
		t.Fatalf("winner = %q", winner)
	}
}

// TestResolveNoInheritedValue: resolution with nothing to inherit errors.
func TestResolveNoInheritedValue(t *testing.T) {
	kb := NewKB()
	must(t, kb.DefClass("A"))
	must(t, kb.DefClass("B"))
	must(t, kb.DefInstance("x", "A", "B"))
	must(t, kb.Set("A", "s", "va")) // slot exists
	must(t, kb.DefInstance("orphan"))
	if _, err := kb.ResolveLeftPrecedence("orphan", "s"); err == nil {
		t.Fatal("expected error for frame with no inherited value")
	}
}

// TestResolveSkipsValuelessLeftParent: when the leftmost parent has no
// value, the next parent supplies the winner.
func TestResolveSkipsValuelessLeftParent(t *testing.T) {
	kb := NewKB()
	must(t, kb.DefClass("Mute"))
	must(t, kb.DefClass("Loud"))
	must(t, kb.DefClass("Quiet"))
	must(t, kb.Set("Loud", "volume", "high"))
	must(t, kb.Set("Quiet", "volume", "low"))
	must(t, kb.DefInstance("x", "Mute", "Loud", "Quiet"))

	// x inherits high vs low: conflict; Mute contributes nothing.
	if _, _, err := kb.Get("x", "volume"); !errors.Is(err, ErrNeedsResolution) {
		t.Fatalf("got %v", err)
	}
	winner, err := kb.ResolveLeftPrecedence("x", "volume")
	must(t, err)
	if winner != "high" {
		t.Fatalf("winner = %q, want high (Loud precedes Quiet)", winner)
	}
}

// TestResolveIdempotent: resolving twice is stable.
func TestResolveIdempotent(t *testing.T) {
	kb := NewKB()
	must(t, kb.DefClass("A"))
	must(t, kb.DefClass("B"))
	must(t, kb.Set("A", "s", "va"))
	must(t, kb.Set("B", "s", "vb"))
	must(t, kb.DefInstance("x", "A", "B"))
	w1, err := kb.ResolveLeftPrecedence("x", "s")
	must(t, err)
	w2, err := kb.ResolveLeftPrecedence("x", "s")
	must(t, err)
	if w1 != w2 || w1 != "va" {
		t.Fatalf("w1=%q w2=%q", w1, w2)
	}
	got, ok, err := kb.Get("x", "s")
	must(t, err)
	if !ok || got != "va" {
		t.Fatalf("Get = %q/%v", got, ok)
	}
}

// TestSetOnClassAfterInstanceException: class-level updates do not disturb
// instance-level pins.
func TestSetOnClassAfterInstanceException(t *testing.T) {
	kb := elephants(t)
	// Repaint all royal elephants gold; Clyde stays dappled (exact pin).
	must(t, kb.Set("RoyalElephant", "color", "gold"))
	got, _, err := kb.Get("Clyde", "color")
	must(t, err)
	if got != "dappled" {
		t.Fatalf("Clyde = %q", got)
	}
	got, _, err = kb.Get("Appu", "color")
	must(t, err)
	if got != "gold" {
		t.Fatalf("Appu = %q", got)
	}
}
