package backoff

import (
	"context"
	"testing"
	"time"
)

// TestDelayWindowBounds pins the full-jitter window: every draw for attempt
// n lands in (0, min(Base·2ⁿ, Max)].
func TestDelayWindowBounds(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	for attempt := 0; attempt <= 6; attempt++ {
		want := p.Base << uint(attempt)
		if want > p.Max {
			want = p.Max
		}
		for i := 0; i < 200; i++ {
			d := p.Delay(attempt, 0)
			if d <= 0 || d > want {
				t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, want)
			}
		}
	}
}

// TestDelayHintFloor: the server's Retry-After hint is a floor, not a cap.
func TestDelayHintFloor(t *testing.T) {
	p := Policy{Base: time.Millisecond, Max: 2 * time.Millisecond}
	hint := 50 * time.Millisecond
	for i := 0; i < 100; i++ {
		if d := p.Delay(0, hint); d < hint {
			t.Fatalf("delay %v below hint %v", d, hint)
		}
	}
}

// TestDelayOverflowClamps: attempts large enough to overflow the shift
// clamp to Max instead of producing zero or negative windows.
func TestDelayOverflowClamps(t *testing.T) {
	p := Policy{Base: time.Second, Max: 4 * time.Second}
	for _, attempt := range []int{40, 62, 63, 64, 100} {
		d := p.Delay(attempt, 0)
		if d <= 0 || d > p.Max {
			t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, p.Max)
		}
	}
}

// TestDelayZeroPolicyDefaults: a zero Policy still produces sane delays.
func TestDelayZeroPolicyDefaults(t *testing.T) {
	var p Policy
	for i := 0; i < 50; i++ {
		d := p.Delay(3, 0)
		if d <= 0 || d > time.Second {
			t.Fatalf("zero policy delay %v outside (0, 1s]", d)
		}
	}
}

// TestSleepCancel: Sleep aborts promptly when the context is canceled
// instead of finishing the full delay.
func TestSleepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Sleep(ctx, 10*time.Second)
	if err == nil {
		t.Fatal("Sleep returned nil after cancel")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Sleep took %v after cancel", elapsed)
	}
}

// TestSleepCompletes: an undisturbed Sleep returns nil after d.
func TestSleepCompletes(t *testing.T) {
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
}
