// Package backoff is the single retry-delay policy shared by every
// reconnecting component: the server client's request retries and the
// replication follower's stream reconnects both draw their sleeps here, so
// "how we back off" is defined once and tested once.
package backoff

import (
	"context"
	"math/rand"
	"time"
)

// Policy is a full-jitter exponential backoff: attempt n sleeps a uniform
// draw from (0, min(Base·2ⁿ, Max)]. Full jitter (rather than a jittered
// offset around the exponential value) is deliberate — a fleet of clients
// or followers severed by the same failure must not reconnect in lockstep.
type Policy struct {
	// Base is the first attempt's window. Values ≤ 0 fall back to 10ms.
	Base time.Duration
	// Max caps the window. Values ≤ 0 fall back to 1s.
	Max time.Duration
}

// Delay returns the sleep before retry attempt+1 (attempt counts from 0):
// a uniform draw from (0, window] where window = min(Base·2^attempt, Max),
// floored at hint (a server-provided Retry-After; pass 0 for none). The
// result is always positive: even attempt 0 sleeps at least a nanosecond,
// so callers can use it as an unconditional pacing step.
func (p Policy) Delay(attempt int, hint time.Duration) time.Duration {
	base, max := p.Base, p.Max
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	window := base << uint(attempt)
	// The shift overflows for large attempts; both the overflow (negative
	// or wrapped) and the legitimate growth past Max clamp to Max.
	if window > max || window <= 0 {
		window = max
	}
	d := time.Duration(rand.Int63n(int64(window))) + 1
	if d < hint {
		d = hint
	}
	return d
}

// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
// latter case. It is the ctx-aborted companion to Delay: retry loops that
// sleep through it stop promptly on cancellation instead of finishing
// their backoff first.
func Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
