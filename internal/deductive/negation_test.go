package deductive

import (
	"errors"
	"testing"
)

// TestStratifiedNegation: grounded(X) :- isa(X, Bird), not flies(X) — the
// penguins (and only they) are grounded.
func TestStratifiedNegation(t *testing.T) {
	h, flies := fliesFixture(t)
	p := NewProgram()
	p.AddEDB("flies", flies)
	p.AddTaxonomy(h)
	// bird(X) :- isa(X, Bird). (restrict to leaves via flies? isa yields
	// classes too; filter to instances by joining with isa twice is messy —
	// grounded over all Bird nodes is fine for the test.)
	p.MustRule(A("grounded", V("X")),
		A("isa", V("X"), C("Bird")),
		Not("flies", V("X")),
	)
	ok, err := p.Holds(A("grounded", C("Paul")))
	must(t, err)
	if !ok {
		t.Fatal("Paul should be grounded")
	}
	ok, err = p.Holds(A("grounded", C("Tweety")))
	must(t, err)
	if ok {
		t.Fatal("Tweety is not grounded")
	}
	ok, err = p.Holds(A("grounded", C("Pamela")))
	must(t, err)
	if ok {
		t.Fatal("Pamela (AFP) is not grounded")
	}
}

// TestNegationOverIDB: negation of a derived predicate forces a second
// stratum.
func TestNegationOverIDB(t *testing.T) {
	p := NewProgram()
	p.MustRule(A("node", C("a")))
	p.MustRule(A("node", C("b")))
	p.MustRule(A("node", C("c")))
	p.MustRule(A("edge", C("a"), C("b")))
	p.MustRule(A("covered", V("Y")), A("edge", V("X"), V("Y")))
	p.MustRule(A("root", V("X")), A("node", V("X")), Not("covered", V("X")))

	res, err := p.Solve(A("root", V("X")))
	must(t, err)
	got := map[string]bool{}
	for _, b := range res {
		got[b["X"]] = true
	}
	if len(got) != 2 || !got["a"] || !got["c"] {
		t.Fatalf("roots = %v", got)
	}
}

// TestNotStratifiedRejected: p :- not q; q :- not p.
func TestNotStratifiedRejected(t *testing.T) {
	p := NewProgram()
	p.MustRule(A("item", C("x")))
	p.MustRule(A("p", V("X")), A("item", V("X")), Not("q", V("X")))
	p.MustRule(A("q", V("X")), A("item", V("X")), Not("p", V("X")))
	if _, err := p.Solve(A("p", V("X"))); !errors.Is(err, ErrNotStratified) {
		t.Fatalf("got %v, want ErrNotStratified", err)
	}
}

// TestNegationSafety: variables in negated literals must be positively
// bound; negated heads are rejected.
func TestNegationSafety(t *testing.T) {
	p := NewProgram()
	err := p.AddRule(Rule{
		Head: A("q", V("X")),
		Body: []Atom{A("item", V("X")), Not("other", V("Y"))},
	})
	if !errors.Is(err, ErrUnsafeRule) {
		t.Fatalf("unbound negated var: %v", err)
	}
	err = p.AddRule(Rule{Head: Not("q", C("a"))})
	if !errors.Is(err, ErrUnsafeRule) {
		t.Fatalf("negated head: %v", err)
	}
}

// TestNegatedAtomString.
func TestNegatedAtomString(t *testing.T) {
	if got := Not("p", V("X")).String(); got != "not p(?X)" {
		t.Fatalf("got %q", got)
	}
}

// TestNegationWithConstants: ground negative filters.
func TestNegationWithConstants(t *testing.T) {
	p := NewProgram()
	p.MustRule(A("likes", C("alice"), C("tea")))
	p.MustRule(A("person", C("alice")))
	p.MustRule(A("person", C("bob")))
	p.MustRule(A("teaHater", V("X")), A("person", V("X")), Not("likes", V("X"), C("tea")))
	res, err := p.Solve(A("teaHater", V("X")))
	must(t, err)
	if len(res) != 1 || res[0]["X"] != "bob" {
		t.Fatalf("res = %v", res)
	}
}
