package deductive

import (
	"errors"
	"testing"

	"hrdb/internal/core"
	"hrdb/internal/hierarchy"
)

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// fliesFixture builds the paper's Figure 1 Flies relation.
func fliesFixture(t *testing.T) (*hierarchy.Hierarchy, *core.Relation) {
	t.Helper()
	h := hierarchy.New("Animal")
	must(t, h.AddClass("Bird"))
	must(t, h.AddClass("Canary", "Bird"))
	must(t, h.AddInstance("Tweety", "Canary"))
	must(t, h.AddClass("Penguin", "Bird"))
	must(t, h.AddInstance("Paul", "Penguin"))
	must(t, h.AddClass("AFP", "Penguin"))
	must(t, h.AddInstance("Pamela", "AFP"))
	s := core.MustSchema(core.Attribute{Name: "Creature", Domain: h})
	r := core.NewRelation("flies", s)
	must(t, r.Assert("Bird"))
	must(t, r.Deny("Penguin"))
	must(t, r.Assert("AFP"))
	return h, r
}

// TestTweetyTravelsFar reproduces the paper's §2.1 example: flying things
// travel far; the hierarchical relation supplies flies/1 with exceptions.
func TestTweetyTravelsFar(t *testing.T) {
	_, flies := fliesFixture(t)
	p := NewProgram()
	p.AddEDB("flies", flies)
	p.MustRule(A("travelsFar", V("X")), A("flies", V("X")))

	ok, err := p.Holds(A("travelsFar", C("Tweety")))
	must(t, err)
	if !ok {
		t.Fatal("Tweety should travel far")
	}
	ok, err = p.Holds(A("travelsFar", C("Paul")))
	must(t, err)
	if ok {
		t.Fatal("Paul (a penguin) should not travel far")
	}
	ok, err = p.Holds(A("travelsFar", C("Pamela")))
	must(t, err)
	if !ok {
		t.Fatal("Pamela (an amazing flying penguin) should travel far")
	}
}

// TestSolveEnumeratesBindings: open queries enumerate all derivations.
func TestSolveEnumeratesBindings(t *testing.T) {
	_, flies := fliesFixture(t)
	p := NewProgram()
	p.AddEDB("flies", flies)
	p.MustRule(A("travelsFar", V("X")), A("flies", V("X")))
	res, err := p.Solve(A("travelsFar", V("Who")))
	must(t, err)
	got := map[string]bool{}
	for _, b := range res {
		got[b["Who"]] = true
	}
	want := map[string]bool{"Tweety": true, "Pamela": true}
	if len(got) != len(want) {
		t.Fatalf("bindings = %v", got)
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing %s in %v", k, got)
		}
	}
}

// TestIsaBuiltin: taxonomy membership is available as isa/2.
func TestIsaBuiltin(t *testing.T) {
	h, flies := fliesFixture(t)
	p := NewProgram()
	p.AddEDB("flies", flies)
	p.AddTaxonomy(h)
	// Penguins that fly (AFP members only).
	p.MustRule(A("flyingPenguin", V("X")),
		A("isa", V("X"), C("Penguin")),
		A("flies", V("X")),
	)
	res, err := p.Solve(A("flyingPenguin", V("X")))
	must(t, err)
	names := map[string]bool{}
	for _, b := range res {
		names[b["X"]] = true
	}
	// Pamela (instance) and AFP (a class counts as a node subsumed by
	// Penguin, but flies/1 facts are atomic leaves: Pamela only).
	if len(names) != 1 || !names["Pamela"] {
		t.Fatalf("flyingPenguin = %v", names)
	}
}

// TestRecursiveRules: transitive closure through IDB recursion.
func TestRecursiveRules(t *testing.T) {
	h := hierarchy.New("Node")
	for _, n := range []string{"a", "b", "c", "d"} {
		must(t, h.AddInstance(n))
	}
	s := core.MustSchema(
		core.Attribute{Name: "From", Domain: h},
		core.Attribute{Name: "To", Domain: h},
	)
	edge := core.NewRelation("edge", s)
	must(t, edge.Assert("a", "b"))
	must(t, edge.Assert("b", "c"))
	must(t, edge.Assert("c", "d"))

	p := NewProgram()
	p.AddEDB("edge", edge)
	p.MustRule(A("path", V("X"), V("Y")), A("edge", V("X"), V("Y")))
	p.MustRule(A("path", V("X"), V("Z")), A("edge", V("X"), V("Y")), A("path", V("Y"), V("Z")))

	ok, err := p.Holds(A("path", C("a"), C("d")))
	must(t, err)
	if !ok {
		t.Fatal("a should reach d")
	}
	ok, err = p.Holds(A("path", C("d"), C("a")))
	must(t, err)
	if ok {
		t.Fatal("d should not reach a")
	}
	res, err := p.Solve(A("path", C("a"), V("Y")))
	must(t, err)
	if len(res) != 3 {
		t.Fatalf("paths from a = %v", res)
	}
}

// TestFactsAndJoins: ground facts plus a two-literal join.
func TestFactsAndJoins(t *testing.T) {
	p := NewProgram()
	p.MustRule(A("parent", C("alice"), C("bob")))
	p.MustRule(A("parent", C("bob"), C("carol")))
	p.MustRule(A("grandparent", V("X"), V("Z")),
		A("parent", V("X"), V("Y")), A("parent", V("Y"), V("Z")))
	ok, err := p.Holds(A("grandparent", C("alice"), C("carol")))
	must(t, err)
	if !ok {
		t.Fatal("alice is carol's grandparent")
	}
	res, err := p.Solve(A("grandparent", V("G"), V("C")))
	must(t, err)
	if len(res) != 1 {
		t.Fatalf("res = %v", res)
	}
}

// TestUnsafeRuleRejected.
func TestUnsafeRuleRejected(t *testing.T) {
	p := NewProgram()
	err := p.AddRule(Rule{Head: A("q", V("X"))})
	if !errors.Is(err, ErrUnsafeRule) {
		t.Fatalf("fact with variable: %v", err)
	}
	err = p.AddRule(Rule{Head: A("q", V("X")), Body: []Atom{A("p", V("Y"))}})
	if !errors.Is(err, ErrUnsafeRule) {
		t.Fatalf("unbound head var: %v", err)
	}
}

// TestUnknownPredicate and arity errors.
func TestUnknownPredicateAndArity(t *testing.T) {
	_, flies := fliesFixture(t)
	p := NewProgram()
	p.AddEDB("flies", flies)
	p.MustRule(A("q", V("X")), A("flies", V("X")))
	if _, err := p.Solve(A("nothing", V("X"))); !errors.Is(err, ErrUnknownPredicate) {
		t.Fatalf("got %v", err)
	}
	if _, err := p.Solve(A("flies", V("X"), V("Y"))); !errors.Is(err, ErrArity) {
		t.Fatalf("got %v", err)
	}
	if _, err := p.Solve(A("isa", V("X"))); !errors.Is(err, ErrArity) {
		t.Fatalf("got %v", err)
	}
	if _, err := p.Holds(A("q", V("X"))); err == nil {
		t.Fatal("Holds with variable accepted")
	}
}

// TestEmptyIDBPredicateIsKnown: a head predicate that derives nothing still
// answers (with no results).
func TestEmptyIDBPredicateIsKnown(t *testing.T) {
	_, flies := fliesFixture(t)
	p := NewProgram()
	p.AddEDB("flies", flies)
	p.MustRule(A("q", V("X")), A("flies", V("X")), A("flies", V("X")))
	// r depends on nothing derivable
	p.MustRule(A("r", V("X")), A("q", V("X")), A("impossible", V("X")))
	if _, err := p.Solve(A("r", V("X"))); !errors.Is(err, ErrUnknownPredicate) {
		t.Fatalf("got %v", err) // "impossible" really is unknown
	}
}

// TestRuleAndAtomStrings.
func TestRuleAndAtomStrings(t *testing.T) {
	r := Rule{Head: A("q", V("X"), C("a")), Body: []Atom{A("p", V("X"))}}
	if got := r.String(); got != "q(?X, a) :- p(?X)." {
		t.Fatalf("rule = %q", got)
	}
	f := Rule{Head: A("p", C("a"))}
	if got := f.String(); got != "p(a)." {
		t.Fatalf("fact = %q", got)
	}
}

// TestExceptionsVisibleThroughRules: changing the hierarchical relation
// changes deductions (the database is the single source of truth).
func TestExceptionsVisibleThroughRules(t *testing.T) {
	h, flies := fliesFixture(t)
	p := NewProgram()
	p.AddEDB("flies", flies)
	p.MustRule(A("travelsFar", V("X")), A("flies", V("X")))

	// Add a new canary: it immediately travels far.
	must(t, h.AddInstance("Bibi", "Canary"))
	ok, err := p.Holds(A("travelsFar", C("Bibi")))
	must(t, err)
	if !ok {
		t.Fatal("Bibi should travel far")
	}
	// Ground Bibi with an exception: no longer derivable.
	must(t, flies.Deny("Bibi"))
	ok, err = p.Holds(A("travelsFar", C("Bibi")))
	must(t, err)
	if ok {
		t.Fatal("grounded Bibi should not travel far")
	}
}
