// Package deductive implements a Datalog evaluator over the hierarchical
// relational model, realizing the inference layer §2.1 of Jagadish
// (SIGMOD '89) sketches: "through the use of logic programming, such as
// PROLOG or DATALOG, on top of our hierarchical data model, we are able to
// provide an even more powerful inference mechanism with no loss of
// succinctness."
//
// The paper's own example: from the hierarchy alone one cannot conclude
// "Tweety can travel far since flying things can travel far", because
// FLYING-THINGS is an association (a relation), not a taxonomy class. With
// a rule
//
//	travelsFar(X) :- flies(X).
//
// the deduction goes through, with flies/1 answered by the hierarchical
// relation (inheritance, exceptions and all).
//
// EDB predicates are hierarchical relations (their extensions, computed
// through tuple binding); the built-in isa/2 exposes class membership.
// Rules are range-restricted Horn clauses with optional stratified
// negation as failure (Not); evaluation is bottom-up to a fixpoint,
// stratum by stratum, with EDB extensions memoized per Solve.
package deductive

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"hrdb/internal/core"
	"hrdb/internal/hierarchy"
)

// Sentinel errors.
var (
	// ErrUnsafeRule indicates a head variable that no body literal binds,
	// or a negated literal with a variable no positive literal binds.
	ErrUnsafeRule = errors.New("deductive: unsafe rule (unbound head variable)")
	// ErrUnknownPredicate indicates a body literal with no EDB relation,
	// IDB rule, or builtin.
	ErrUnknownPredicate = errors.New("deductive: unknown predicate")
	// ErrArity indicates a literal whose argument count disagrees with its
	// predicate.
	ErrArity = errors.New("deductive: arity mismatch")
	// ErrNotStratified indicates recursion through negation.
	ErrNotStratified = errors.New("deductive: program is not stratified (recursion through negation)")
)

// Term is a Datalog term: a variable (capitalized by convention, but any
// term constructed with V is a variable) or a constant.
type Term struct {
	Name string
	Var  bool
}

// V builds a variable term.
func V(name string) Term { return Term{Name: name, Var: true} }

// C builds a constant term.
func C(name string) Term { return Term{Name: name} }

// String renders the term (variables with a leading '?').
func (t Term) String() string {
	if t.Var {
		return "?" + t.Name
	}
	return t.Name
}

// Atom is a predicate applied to terms, optionally negated (negation as
// failure; programs with negation must be stratified).
type Atom struct {
	Pred    string
	Args    []Term
	Negated bool
}

// A builds a positive atom.
func A(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// Not builds a negated atom for rule bodies.
func Not(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args, Negated: true} }

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	neg := ""
	if a.Negated {
		neg = "not "
	}
	return fmt.Sprintf("%s%s(%s)", neg, a.Pred, strings.Join(parts, ", "))
}

// Rule is a Horn clause Head :- Body. An empty body makes the head a fact
// (its arguments must then be constants).
type Rule struct {
	Head Atom
	Body []Atom
}

// String renders the rule.
func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Program is a set of rules over hierarchical EDB relations.
type Program struct {
	rules []Rule
	edb   map[string]*core.Relation
	// isa builtins: domain name → hierarchy, answering isa(x, Class).
	taxonomies map[string]*hierarchy.Hierarchy
}

// NewProgram creates an empty program.
func NewProgram() *Program {
	return &Program{
		edb:        map[string]*core.Relation{},
		taxonomies: map[string]*hierarchy.Hierarchy{},
	}
}

// AddEDB registers a hierarchical relation as the EDB predicate pred. Its
// extension (positive atomic items) supplies the facts.
func (p *Program) AddEDB(pred string, r *core.Relation) {
	p.edb[pred] = r
}

// AddTaxonomy registers a hierarchy so rules can use the builtin
// "isa"(x, C): true iff x is a node subsumed by C in any registered
// taxonomy.
func (p *Program) AddTaxonomy(h *hierarchy.Hierarchy) {
	p.taxonomies[h.Domain()] = h
}

// AddRule appends a rule after validating safety: every head variable must
// occur in a positive body literal, every variable of a negated literal
// must occur in a positive one, and heads may not be negated.
func (p *Program) AddRule(r Rule) error {
	if r.Head.Negated {
		return fmt.Errorf("%w: negated head in %s", ErrUnsafeRule, r)
	}
	bound := map[string]bool{}
	for _, a := range r.Body {
		if a.Negated {
			continue
		}
		for _, t := range a.Args {
			if t.Var {
				bound[t.Name] = true
			}
		}
	}
	for _, t := range r.Head.Args {
		if t.Var && !bound[t.Name] {
			return fmt.Errorf("%w: %s in %s", ErrUnsafeRule, t, r)
		}
	}
	for _, a := range r.Body {
		if !a.Negated {
			continue
		}
		for _, t := range a.Args {
			if t.Var && !bound[t.Name] {
				return fmt.Errorf("%w: %s in negated %s of %s", ErrUnsafeRule, t, a, r)
			}
		}
	}
	if len(r.Body) == 0 {
		for _, t := range r.Head.Args {
			if t.Var {
				return fmt.Errorf("%w: fact %s has variables", ErrUnsafeRule, r.Head)
			}
		}
	}
	p.rules = append(p.rules, r)
	return nil
}

// stratify assigns each IDB predicate a stratum such that positive
// dependencies stay within or below the stratum and negative dependencies
// point strictly below. EDB relations and builtins are stratum 0.
func (p *Program) stratify() (map[string]int, int, error) {
	stratum := map[string]int{}
	idb := map[string]bool{}
	for _, r := range p.rules {
		idb[r.Head.Pred] = true
		stratum[r.Head.Pred] = 0
	}
	n := len(stratum)
	for round := 0; ; round++ {
		changed := false
		for _, r := range p.rules {
			h := stratum[r.Head.Pred]
			for _, a := range r.Body {
				if !idb[a.Pred] {
					continue // EDB/builtin: stratum 0
				}
				want := stratum[a.Pred]
				if a.Negated {
					want++
				}
				if want > h {
					h = want
					changed = true
				}
			}
			stratum[r.Head.Pred] = h
		}
		if !changed {
			break
		}
		if round > n+1 {
			return nil, 0, ErrNotStratified
		}
	}
	max := 0
	for _, s := range stratum {
		if s > max {
			max = s
		}
	}
	return stratum, max, nil
}

// MustRule is AddRule that panics (for static rule sets in tests/examples).
func (p *Program) MustRule(head Atom, body ...Atom) {
	if err := p.AddRule(Rule{Head: head, Body: body}); err != nil {
		panic(err)
	}
}

// fact is one derived ground tuple.
type fact struct {
	pred string
	args []string
}

func (f fact) key() string { return f.pred + "\x1e" + strings.Join(f.args, "\x1f") }

// binding is a variable assignment.
type binding map[string]string

// Solve computes the fixpoint of the program and returns the result set for
// query: every grounding of the query atom's variables that is derivable.
// Each result maps variable names to constants; a fully ground query that
// holds yields one empty binding.
func (p *Program) Solve(query Atom) ([]map[string]string, error) {
	cache := newEDBCache()
	derived, err := p.fixpoint(cache)
	if err != nil {
		return nil, err
	}
	var out []map[string]string
	seen := map[string]bool{}
	match := func(args []string) {
		b := binding{}
		if !unify(query.Args, args, b) {
			return
		}
		res := map[string]string{}
		for k, v := range b {
			res[k] = v
		}
		k := fmt.Sprint(res)
		if !seen[k] {
			seen[k] = true
			out = append(out, res)
		}
	}

	// Query against EDB/builtin/IDB uniformly.
	facts, err := p.factsFor(query.Pred, len(query.Args), derived, cache)
	if err != nil {
		return nil, err
	}
	for _, f := range facts {
		match(f)
	}
	sort.Slice(out, func(i, j int) bool { return fmt.Sprint(out[i]) < fmt.Sprint(out[j]) })
	return out, nil
}

// Holds reports whether a ground atom is derivable.
func (p *Program) Holds(query Atom) (bool, error) {
	for _, t := range query.Args {
		if t.Var {
			return false, fmt.Errorf("deductive: Holds needs a ground atom, got %s", query)
		}
	}
	res, err := p.Solve(query)
	if err != nil {
		return false, err
	}
	return len(res) > 0, nil
}

// fixpoint evaluates the program stratum by stratum: within a stratum,
// rules iterate to a fixpoint; negated literals consult only facts settled
// by lower strata and the EDB (stratified negation as failure).
func (p *Program) fixpoint(cache *edbCache) (map[string][][]string, error) {
	stratum, max, err := p.stratify()
	if err != nil {
		return nil, err
	}
	derived := map[string][][]string{} // pred → ground args
	index := map[string]bool{}

	add := func(f fact) bool {
		k := f.key()
		if index[k] {
			return false
		}
		index[k] = true
		derived[f.pred] = append(derived[f.pred], f.args)
		return true
	}

	for s := 0; s <= max; s++ {
		// Facts from empty-body rules of this stratum.
		for _, r := range p.rules {
			if stratum[r.Head.Pred] != s || len(r.Body) != 0 {
				continue
			}
			args := make([]string, len(r.Head.Args))
			for i, t := range r.Head.Args {
				args[i] = t.Name
			}
			add(fact{pred: r.Head.Pred, args: args})
		}
		for {
			changed := false
			for _, r := range p.rules {
				if stratum[r.Head.Pred] != s || len(r.Body) == 0 {
					continue
				}
				bindings, err := p.join(r.Body, derived, cache)
				if err != nil {
					return nil, err
				}
				for _, b := range bindings {
					args := make([]string, len(r.Head.Args))
					for i, t := range r.Head.Args {
						if t.Var {
							args[i] = b[t.Name]
						} else {
							args[i] = t.Name
						}
					}
					if add(fact{pred: r.Head.Pred, args: args}) {
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
	}
	return derived, nil
}

// join enumerates the bindings satisfying all body atoms: positive literals
// first (binding variables), then negated literals as filters over the
// fully bound tuples.
func (p *Program) join(body []Atom, derived map[string][][]string, cache *edbCache) ([]binding, error) {
	var positives, negatives []Atom
	for _, a := range body {
		if a.Negated {
			negatives = append(negatives, a)
		} else {
			positives = append(positives, a)
		}
	}
	bindings := []binding{{}}
	for _, atom := range positives {
		facts, err := p.factsFor(atom.Pred, len(atom.Args), derived, cache)
		if err != nil {
			return nil, err
		}
		var next []binding
		for _, b := range bindings {
			for _, f := range facts {
				nb := binding{}
				for k, v := range b {
					nb[k] = v
				}
				if unify(atom.Args, f, nb) {
					next = append(next, nb)
				}
			}
		}
		bindings = next
		if len(bindings) == 0 {
			return nil, nil
		}
	}
	for _, atom := range negatives {
		facts, err := p.factsFor(atom.Pred, len(atom.Args), derived, cache)
		if err != nil {
			return nil, err
		}
		present := make(map[string]bool, len(facts))
		for _, f := range facts {
			present[strings.Join(f, "\x1f")] = true
		}
		var next []binding
		for _, b := range bindings {
			ground := make([]string, len(atom.Args))
			for i, t := range atom.Args {
				if t.Var {
					ground[i] = b[t.Name] // bound by safety validation
				} else {
					ground[i] = t.Name
				}
			}
			if !present[strings.Join(ground, "\x1f")] {
				next = append(next, b)
			}
		}
		bindings = next
		if len(bindings) == 0 {
			return nil, nil
		}
	}
	return bindings, nil
}

// unify extends b so that terms match the ground args; false on clash.
func unify(terms []Term, args []string, b binding) bool {
	if len(terms) != len(args) {
		return false
	}
	for i, t := range terms {
		if !t.Var {
			if t.Name != args[i] {
				return false
			}
			continue
		}
		if v, ok := b[t.Name]; ok {
			if v != args[i] {
				return false
			}
			continue
		}
		b[t.Name] = args[i]
	}
	return true
}

// edbCache memoizes EDB extensions and the isa builtin for the duration of
// one Solve, so repeated fixpoint iterations do not re-explicate relations.
type edbCache struct {
	ext map[string][][]string
	isa [][]string
}

func newEDBCache() *edbCache { return &edbCache{ext: map[string][][]string{}} }

// factsFor returns the ground facts of a predicate: derived IDB facts plus
// the EDB relation's extension plus the isa builtin (both memoized per
// Solve).
func (p *Program) factsFor(pred string, arity int, derived map[string][][]string, cache *edbCache) ([][]string, error) {
	var out [][]string
	known := false

	if r, ok := p.edb[pred]; ok {
		known = true
		if r.Schema().Arity() != arity {
			return nil, fmt.Errorf("%w: %s/%d vs relation arity %d", ErrArity, pred, arity, r.Schema().Arity())
		}
		rows, ok := cache.ext[pred]
		if !ok {
			ext, err := r.Extension()
			if err != nil {
				return nil, err
			}
			rows = make([][]string, 0, len(ext))
			for _, it := range ext {
				rows = append(rows, append([]string(nil), it...))
			}
			cache.ext[pred] = rows
		}
		out = append(out, rows...)
	}

	if pred == "isa" {
		known = true
		if arity != 2 {
			return nil, fmt.Errorf("%w: isa/%d (want isa/2)", ErrArity, arity)
		}
		if cache.isa == nil {
			for _, d := range sortedDomains(p.taxonomies) {
				h := p.taxonomies[d]
				for _, anc := range h.Nodes() {
					for _, desc := range h.Nodes() {
						if h.Subsumes(anc, desc) {
							cache.isa = append(cache.isa, []string{desc, anc})
						}
					}
				}
			}
			if cache.isa == nil {
				cache.isa = [][]string{}
			}
		}
		out = append(out, cache.isa...)
	}

	if facts, ok := derived[pred]; ok {
		known = true
		for _, f := range facts {
			if len(f) != arity {
				return nil, fmt.Errorf("%w: %s used with arity %d and %d", ErrArity, pred, arity, len(f))
			}
			out = append(out, f)
		}
	} else {
		// The predicate may be an IDB head that derived nothing (yet);
		// count it as known if any rule defines it.
		for _, r := range p.rules {
			if r.Head.Pred == pred {
				known = true
				break
			}
		}
	}

	if !known {
		return nil, fmt.Errorf("%w: %s/%d", ErrUnknownPredicate, pred, arity)
	}
	return out, nil
}

func sortedDomains(m map[string]*hierarchy.Hierarchy) []string {
	out := make([]string, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
