package algebra

import (
	"errors"
	"strings"
	"testing"

	"hrdb/internal/core"
)

// TestCountTotal: counting the whole extension of the Flies relation.
func TestCountTotal(t *testing.T) {
	h := animalHierarchy(t)
	s := core.MustSchema(core.Attribute{Name: "Creature", Domain: h})
	r := core.NewRelation("Flies", s)
	must(t, r.Assert("Bird"))
	must(t, r.Deny("Penguin"))
	must(t, r.Assert("AmazingFlyingPenguin"))

	counts, err := Count(r)
	must(t, err)
	if len(counts) != 1 || counts[0].N != 4 { // Tweety, Pamela, Patricia, Peter
		t.Fatalf("counts = %v", counts)
	}
}

// TestCountGrouped on a two-attribute relation.
func TestCountGrouped(t *testing.T) {
	animals := elephantHierarchy(t)
	r := colorRelation(t, animals)
	counts, err := Count(r, "Color")
	must(t, err)
	byColor := map[string]int{}
	for _, gc := range counts {
		byColor[gc.Group[0]] = gc.N
	}
	// Extension atoms: AfricanElephant (a leaf class) grey; Appu white;
	// Clyde dappled. IndianElephant is not a leaf (Appu sits under it).
	if byColor["Grey"] != 1 || byColor["White"] != 1 || byColor["Dappled"] != 1 {
		t.Fatalf("byColor = %v", byColor)
	}
	// The rendering is stable and mentions the groups.
	out := FormatCounts("colors", []string{"Color"}, counts)
	if !strings.Contains(out, "Color=Grey: 1") {
		t.Fatalf("format:\n%s", out)
	}
}

// TestCountEmptyRelation yields a single zero group.
func TestCountEmptyRelation(t *testing.T) {
	h := animalHierarchy(t)
	s := core.MustSchema(core.Attribute{Name: "Creature", Domain: h})
	r := core.NewRelation("Empty", s)
	counts, err := Count(r)
	must(t, err)
	if len(counts) != 1 || counts[0].N != 0 {
		t.Fatalf("counts = %v", counts)
	}
	out := FormatCounts("empty", nil, counts)
	if !strings.Contains(out, "count = 0") {
		t.Fatalf("format: %s", out)
	}
}

// TestCountErrors.
func TestCountErrors(t *testing.T) {
	h := animalHierarchy(t)
	s := core.MustSchema(core.Attribute{Name: "Creature", Domain: h})
	r := core.NewRelation("R", s)
	if _, err := Count(r, "Nope"); !errors.Is(err, core.ErrSchema) {
		t.Fatalf("got %v", err)
	}
	if _, err := CountByClass(r, "Nope", "Bird"); !errors.Is(err, core.ErrSchema) {
		t.Fatalf("got %v", err)
	}
	if _, err := CountByClass(r, "Creature", "Nothing"); !errors.Is(err, core.ErrUnknownValue) {
		t.Fatalf("got %v", err)
	}
}

// TestCountByClass: overlapping taxonomy counts.
func TestCountByClass(t *testing.T) {
	h := animalHierarchy(t)
	s := core.MustSchema(core.Attribute{Name: "Creature", Domain: h})
	r := core.NewRelation("Flies", s)
	must(t, r.Assert("Bird"))
	must(t, r.Deny("Penguin"))
	must(t, r.Assert("AmazingFlyingPenguin"))

	counts, err := CountByClass(r, "Creature", "Bird", "Penguin", "Canary", "GalapagosPenguin")
	must(t, err)
	want := map[string]int{
		"Bird":             4, // the whole extension
		"Penguin":          3, // Pamela, Patricia, Peter
		"Canary":           1, // Tweety
		"GalapagosPenguin": 1, // Patricia (also an AFP)
	}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("count[%s] = %d, want %d", k, counts[k], v)
		}
	}
}
