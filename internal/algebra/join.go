package algebra

import (
	"context"
	"fmt"
	"sort"

	"hrdb/internal/core"
)

// Join computes the natural join of two hierarchical relations over their
// shared attribute names (Fig. 11b). Shared attributes must be drawn from
// the same hierarchy object. The result's schema is a's attributes followed
// by b's non-shared attributes, and its extension equals the flat natural
// join of the argument extensions.
func Join(name string, a, b *core.Relation) (*core.Relation, error) {
	return JoinContext(context.Background(), name, a, b)
}

// sharedCol pairs the positions of one shared attribute in the two join
// arguments (ai in the left schema, bi in the right).
type sharedCol struct{ ai, bi int }

// joinColumns computes the shared columns, the right-only columns, and the
// output schema of a natural join.
func joinColumns(a, b *core.Relation) (shared []sharedCol, bOnly []int, outSchema *core.Schema, err error) {
	sa, sb := a.Schema(), b.Schema()
	for j := 0; j < sb.Arity(); j++ {
		attr := sb.Attr(j)
		if i, ok := sa.Index(attr.Name); ok {
			if sa.Attr(i).Domain != attr.Domain {
				return nil, nil, nil, fmt.Errorf("%w: join: attribute %q has different domains",
					core.ErrIncompatible, attr.Name)
			}
			shared = append(shared, sharedCol{ai: i, bi: j})
		} else {
			bOnly = append(bOnly, j)
		}
	}
	attrs := make([]core.Attribute, 0, sa.Arity()+len(bOnly))
	for i := 0; i < sa.Arity(); i++ {
		attrs = append(attrs, sa.Attr(i))
	}
	for _, j := range bOnly {
		attrs = append(attrs, sb.Attr(j))
	}
	outSchema, err = core.NewSchema(attrs...)
	if err != nil {
		return nil, nil, nil, err
	}
	return shared, bOnly, outSchema, nil
}

// joinPairs enumerates the tuple pairs that can contribute candidates. The
// full scan visits the whole cross product; an index-probe plan iterates
// the smaller side and probes the bigger side's posting lists with each
// outer value, skipping pairs whose probed coordinate cannot overlap —
// pairs the scan would discard anyway when their meets come up empty.
func joinPairs(ctx context.Context, a, b *core.Relation, plan *Plan) [][2]core.Tuple {
	var pairs [][2]core.Tuple
	if plan.Access == IndexProbe && !scanForced(ctx) {
		if plan.outerIsLeft {
			for _, ta := range a.Tuples() {
				for _, tb := range b.OverlapCandidates(plan.attr, ta.Item[plan.outAttr]) {
					pairs = append(pairs, [2]core.Tuple{ta, tb})
				}
			}
		} else {
			for _, tb := range b.Tuples() {
				for _, ta := range a.OverlapCandidates(plan.attr, tb.Item[plan.outAttr]) {
					pairs = append(pairs, [2]core.Tuple{ta, tb})
				}
			}
		}
		return pairs
	}
	for _, ta := range a.Tuples() {
		for _, tb := range b.Tuples() {
			pairs = append(pairs, [2]core.Tuple{ta, tb})
		}
	}
	return pairs
}

// JoinContext is Join with cancellation. Pair enumeration goes through the
// cost-based planner (plan.go): with a selective shared column the bigger
// side is probed through its secondary index per outer tuple, otherwise the
// cross product is scanned. Both paths feed the same candidate set;
// WithForceScan pins the scan for reference runs.
func JoinContext(ctx context.Context, name string, a, b *core.Relation) (*core.Relation, error) {
	sa, sb := a.Schema(), b.Schema()
	shared, bOnly, outSchema, err := joinColumns(a, b)
	if err != nil {
		return nil, err
	}

	// Projections from a result item to the argument items.
	projA := func(m core.Item) core.Item { return m[:sa.Arity()].Clone() }
	projB := func(m core.Item) core.Item {
		it := make(core.Item, sb.Arity())
		for _, sc := range shared {
			it[sc.bi] = m[sc.ai]
		}
		for n, j := range bOnly {
			it[j] = m[sa.Arity()+n]
		}
		return it
	}

	// Candidates: for each contributing pair of tuples, combine a's
	// coordinates with b's extra coordinates, narrowing every shared
	// coordinate to each maximal common subsumee of the pair's values.
	// Pairs with a disjoint shared coordinate produce nothing.
	var cand []core.Item
	for _, pair := range joinPairs(ctx, a, b, planJoin(a, b, shared)) {
		ta, tb := pair[0], pair[1]
		perShared := make([][]string, len(shared))
		ok := true
		for n, sc := range shared {
			meets := sa.Attr(sc.ai).Domain.Meets(ta.Item[sc.ai], tb.Item[sc.bi])
			if len(meets) == 0 {
				ok = false
				break
			}
			perShared[n] = meets
		}
		if !ok {
			continue
		}
		var rec func(m core.Item, n int)
		rec = func(m core.Item, n int) {
			if n == len(shared) {
				cand = append(cand, m.Clone())
				return
			}
			sc := shared[n]
			for _, v := range perShared[n] {
				mm := m.Clone()
				mm[sc.ai] = v
				rec(mm, n+1)
			}
		}
		base := make(core.Item, outSchema.Arity())
		for i := 0; i < sa.Arity(); i++ {
			base[i] = ta.Item[i]
		}
		for n, j := range bOnly {
			base[sa.Arity()+n] = tb.Item[j]
		}
		rec(base, 0)
	}
	sort.Slice(cand, func(i, j int) bool { return cand[i].Key() < cand[j].Key() })

	eval := func(ctx context.Context, items []core.Item) ([]bool, error) {
		itemsA := make([]core.Item, len(items))
		itemsB := make([]core.Item, len(items))
		for i, m := range items {
			itemsA[i] = projA(m)
			itemsB[i] = projB(m)
		}
		xs, err := a.HoldsBatch(ctx, itemsA)
		if err != nil {
			return nil, fmt.Errorf("algebra: join: left argument: %w", err)
		}
		ys, err := b.HoldsBatch(ctx, itemsB)
		if err != nil {
			return nil, fmt.Errorf("algebra: join: right argument: %w", err)
		}
		out := make([]bool, len(items))
		for i := range items {
			out[i] = xs[i] && ys[i]
		}
		return out, nil
	}
	return combine(ctx, name, outSchema, cand, eval)
}
