// Package algebra implements the standard relational operators — selection,
// projection, natural join, union, intersection, difference, rename — on
// the hierarchical relations of the core package (§3.4 of Jagadish,
// SIGMOD '89).
//
// The paper requires each operator to have flat-extension semantics: a
// hierarchical relation is equivalent to a unique flat relation, and an
// operator applied to hierarchical relations must yield a relation whose
// extension equals the flat operator applied to the arguments' extensions.
//
// The implementation strategy is uniform:
//
//  1. Candidates — the result's tuples are placed at the items of the
//     argument tuples and at the pairwise meets (maximal common subsumees)
//     of argument tuples, so every region where the result's truth value
//     can change carries a tuple.
//  2. Pointwise evaluation — each candidate's sign is computed by
//     evaluating the arguments at the candidate item and combining the
//     values with the operator's boolean function.
//  3. Repair — if the candidate placement leaves an ambiguity conflict
//     (possible when incomparable candidates disagree), a resolving tuple
//     with the pointwise-correct sign is inserted at each conflicting item
//     until the result is consistent.
//
// As in the paper's examples, results may contain redundant tuples; apply
// Consolidate to obtain the minimum form.
package algebra

import (
	"context"
	"errors"
	"fmt"

	"hrdb/internal/core"
)

// maxRepairRounds bounds the conflict-repair loop; each round pins at least
// one item with an exact tuple, so realistic inputs converge in one or two
// rounds.
const maxRepairRounds = 64

// ErrRepairDiverged indicates that the conflict-repair loop did not reach a
// consistent result within maxRepairRounds.
var ErrRepairDiverged = errors.New("algebra: conflict repair did not converge")

// batchEval returns the operator's truth value at each of the given items,
// positionally. Implementations evaluate the argument relations through
// the core batch API, so candidate signing fans out across cores.
type batchEval func(ctx context.Context, items []core.Item) ([]bool, error)

// combine builds a result over schema s with candidate items cand; the sign
// of every tuple is the operator's boolean function evaluated on the
// argument relations at that item, computed in bulk by eval.
func combine(ctx context.Context, name string, s *core.Schema, cand []core.Item, eval batchEval) (*core.Relation, error) {
	out := core.NewRelation(name, s)
	seen := map[string]bool{}
	todo := make([]core.Item, 0, len(cand))
	for _, m := range cand {
		if seen[m.Key()] {
			continue
		}
		seen[m.Key()] = true
		todo = append(todo, m)
	}
	signs, err := eval(ctx, todo)
	if err != nil {
		return nil, err
	}
	for i, m := range todo {
		if err := out.Insert(m, signs[i]); err != nil {
			return nil, err
		}
	}
	// Repair: resolve residual ambiguity with pointwise-correct tuples.
	for round := 0; ; round++ {
		conflicts := out.Conflicts()
		if len(conflicts) == 0 {
			return out, nil
		}
		if round >= maxRepairRounds {
			return nil, fmt.Errorf("%w: %s after %d rounds", ErrRepairDiverged, name, maxRepairRounds)
		}
		var fixes []core.Item
		for _, c := range conflicts {
			if _, present := out.Lookup(c.Item); present {
				continue
			}
			fixes = append(fixes, c.Item)
		}
		signs, err := eval(ctx, fixes)
		if err != nil {
			return nil, err
		}
		for i, m := range fixes {
			if err := out.Insert(m, signs[i]); err != nil {
				return nil, err
			}
		}
	}
}

// binaryCandidates returns the tuple items of both relations plus every
// pairwise meet.
func binaryCandidates(a, b *core.Relation) []core.Item {
	var out []core.Item
	at := a.Tuples()
	bt := b.Tuples()
	for _, t := range at {
		out = append(out, t.Item)
	}
	for _, t := range bt {
		out = append(out, t.Item)
	}
	for _, ta := range at {
		for _, tb := range bt {
			out = append(out, a.MinimalResolutionSet(ta.Item, tb.Item)...)
		}
	}
	return out
}

// checkUnionCompatible verifies the two relations share a schema.
func checkUnionCompatible(op string, a, b *core.Relation) error {
	if !a.Schema().Equal(b.Schema()) {
		return fmt.Errorf("%w: %s of %q and %q", core.ErrIncompatible, op, a.Name(), b.Name())
	}
	return nil
}

// setOp runs a binary boolean set operation with flat-extension semantics.
// Candidate items are signed by evaluating both arguments in bulk through
// the core batch evaluator.
func setOp(ctx context.Context, name, op string, a, b *core.Relation, f func(x, y bool) bool) (*core.Relation, error) {
	if err := checkUnionCompatible(op, a, b); err != nil {
		return nil, err
	}
	eval := func(ctx context.Context, items []core.Item) ([]bool, error) {
		xs, err := a.HoldsBatch(ctx, items)
		if err != nil {
			return nil, fmt.Errorf("algebra: %s: left argument: %w", op, err)
		}
		ys, err := b.HoldsBatch(ctx, items)
		if err != nil {
			return nil, fmt.Errorf("algebra: %s: right argument: %w", op, err)
		}
		out := make([]bool, len(items))
		for i := range items {
			out[i] = f(xs[i], ys[i])
		}
		return out, nil
	}
	return combine(ctx, name, a.Schema(), binaryCandidates(a, b), eval)
}

// Union returns a relation whose extension is Ext(a) ∪ Ext(b) (Fig. 10c).
func Union(name string, a, b *core.Relation) (*core.Relation, error) {
	return UnionContext(context.Background(), name, a, b)
}

// UnionContext is Union with cancellation.
func UnionContext(ctx context.Context, name string, a, b *core.Relation) (*core.Relation, error) {
	return setOp(ctx, name, "union", a, b, func(x, y bool) bool { return x || y })
}

// Intersect returns a relation whose extension is Ext(a) ∩ Ext(b)
// (Fig. 10d).
func Intersect(name string, a, b *core.Relation) (*core.Relation, error) {
	return IntersectContext(context.Background(), name, a, b)
}

// IntersectContext is Intersect with cancellation.
func IntersectContext(ctx context.Context, name string, a, b *core.Relation) (*core.Relation, error) {
	return setOp(ctx, name, "intersect", a, b, func(x, y bool) bool { return x && y })
}

// Difference returns a relation whose extension is Ext(a) − Ext(b)
// (Fig. 10e/f).
func Difference(name string, a, b *core.Relation) (*core.Relation, error) {
	return DifferenceContext(context.Background(), name, a, b)
}

// DifferenceContext is Difference with cancellation.
func DifferenceContext(ctx context.Context, name string, a, b *core.Relation) (*core.Relation, error) {
	return setOp(ctx, name, "difference", a, b, func(x, y bool) bool { return x && !y })
}

// Condition restricts one attribute to a class (or instance) of its domain.
type Condition struct {
	Attr  string
	Class string
}

// Select restricts the relation to the sub-hierarchy under the given
// conditions: the result's extension is exactly the argument's extension
// narrowed to atoms whose selected attributes fall under the given classes
// (Figs. 7 and 8). Conditions on the same attribute intersect.
func Select(name string, r *core.Relation, conds ...Condition) (*core.Relation, error) {
	return SelectContext(context.Background(), name, r, conds...)
}

// SelectContext is Select with cancellation. Candidate enumeration goes
// through the cost-based planner (plan.go): a conditioned column whose
// posting lists are selective enough is probed through the secondary index,
// otherwise the stored tuples are scanned. Both paths enumerate the same
// candidate set; WithForceScan pins the scan for reference runs.
func SelectContext(ctx context.Context, name string, r *core.Relation, conds ...Condition) (*core.Relation, error) {
	s := r.Schema()
	region, err := selectRegion(r, conds)
	if err != nil {
		return nil, err
	}

	// The region acts as a one-tuple positive relation ANDed with r.
	regionRel := core.NewRelation("σ-region", s)
	if err := regionRel.Insert(region, true); err != nil {
		return nil, err
	}
	// Candidates that do not overlap the region contribute nothing: every
	// positive result tuple lies under the region, so a non-overlapping
	// candidate can never sit below a positive one. The two access paths
	// enumerate exactly the overlapping tuples, the region item, and the
	// pairwise meets of the two.
	plan := planSelect(r, region)
	var kept []core.Item
	if plan.Access == IndexProbe && !scanForced(ctx) {
		var overlapping []core.Tuple
		for _, t := range r.OverlapCandidates(plan.attr, region[plan.attr]) {
			if r.Overlapping(t.Item, region) {
				overlapping = append(overlapping, t)
			}
		}
		for _, t := range overlapping {
			kept = append(kept, t.Item)
		}
		kept = append(kept, region)
		for _, t := range overlapping {
			kept = append(kept, r.MinimalResolutionSet(t.Item, region)...)
		}
	} else {
		for _, m := range binaryCandidates(r, regionRel) {
			if r.Overlapping(m, region) {
				kept = append(kept, m)
			}
		}
	}
	eval := func(ctx context.Context, items []core.Item) ([]bool, error) {
		xs, err := r.HoldsBatch(ctx, items)
		if err != nil {
			return nil, fmt.Errorf("algebra: select: %w", err)
		}
		ys, err := regionRel.HoldsBatch(ctx, items)
		if err != nil {
			return nil, err
		}
		out := make([]bool, len(items))
		for i := range items {
			out[i] = xs[i] && ys[i]
		}
		return out, nil
	}
	return combine(ctx, name, s, kept, eval)
}

// Rename returns a copy of the relation with attributes renamed according
// to the mapping (attributes not mentioned keep their names). Domains are
// unchanged.
func Rename(name string, r *core.Relation, mapping map[string]string) (*core.Relation, error) {
	s := r.Schema()
	attrs := make([]core.Attribute, s.Arity())
	for i := 0; i < s.Arity(); i++ {
		a := s.Attr(i)
		if n, ok := mapping[a.Name]; ok {
			a.Name = n
		}
		attrs[i] = a
	}
	ns, err := core.NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	out := core.NewRelation(name, ns)
	out.SetMode(r.Mode())
	for _, t := range r.Tuples() {
		if err := out.Insert(t.Item, t.Sign); err != nil {
			return nil, err
		}
	}
	return out, nil
}
