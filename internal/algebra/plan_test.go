package algebra

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"hrdb/internal/core"
)

// sizableRelation builds a relation big enough for the planner to consider
// index probes, over warm two-attribute schemas.
func sizableRelation(t *testing.T, seed int64, tuples int) *core.Relation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := core.MustSchema(
		core.Attribute{Name: "A", Domain: randomHierarchy(rng, "DA", 30)},
		core.Attribute{Name: "B", Domain: randomHierarchy(rng, "DB", 20)},
	)
	return randomConsistentRelation(rng, "r", s, tuples)
}

func TestPlanSelectAccessChoice(t *testing.T) {
	r := sizableRelation(t, 7, 40)
	s := r.Schema()
	s.Attr(0).Domain.Warm()

	// Unconditioned select: nothing narrows a column, scan is forced.
	p, err := PlanSelect(r)
	must(t, err)
	if p.Access != FullScan || !strings.Contains(p.Note, "no condition") {
		t.Fatalf("unconditioned plan = %+v", p)
	}

	// A narrow condition on a sizable relation should probe the index.
	nodes := s.Attr(0).Domain.Nodes()
	var probed bool
	for _, class := range nodes {
		if class == s.Attr(0).Domain.Domain() {
			continue
		}
		p, err := PlanSelect(r, Condition{Attr: "A", Class: class})
		must(t, err)
		if p.Access == IndexProbe {
			probed = true
			if p.Attr != "A" || p.Class != class {
				t.Fatalf("probe plan = %+v", p)
			}
			if !p.Warm {
				t.Fatalf("warmed domain planned cold: %+v", p)
			}
			if p.Cost >= p.ScanCost {
				t.Fatalf("index plan not cheaper than scan: %+v", p)
			}
			break
		}
	}
	if !probed {
		t.Fatal("no condition produced an index-probe plan on a sizable relation")
	}

	// Below the size threshold the planner refuses to probe.
	small := sizableRelation(t, 8, minIndexLen-2)
	p, err = PlanSelect(small, Condition{Attr: "A", Class: small.Schema().Attr(0).Domain.Nodes()[1]})
	must(t, err)
	if p.Access != FullScan || !strings.Contains(p.Note, "below index threshold") {
		t.Fatalf("small-relation plan = %+v", p)
	}

	// Bad attribute and bad class surface the usual errors.
	if _, err := PlanSelect(r, Condition{Attr: "Nope", Class: "x"}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if _, err := PlanSelect(r, Condition{Attr: "A", Class: "no-such"}); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestPlanStringRendering(t *testing.T) {
	p := &Plan{
		Op: "select", Relation: "r", Access: IndexProbe, Attr: "A",
		Class: "c", EstRows: 5, Cost: 12.5, ScanCost: 80, Warm: true,
	}
	s := p.String()
	for _, want := range []string{"select r: index-probe on A under c", "est candidates: 5", "cost: 12.5", "full scan: 80.0", "label index: warm"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	p.Warm = false
	if !strings.Contains(p.String(), "label index: cold") {
		t.Fatalf("cold plan rendering = %q", p.String())
	}
	q := &Plan{Op: "join", Relation: "b", Outer: "a", Access: FullScan, Note: "no shared attributes: cross product"}
	s = q.String()
	for _, want := range []string{"join b: full-scan (outer: a)", "note: no shared"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

// TestSelectPlannerMatchesForceScan is the equivalence property: for random
// relations and random conditions, the planner-chosen access path must give
// byte-identical results to the forced full scan, and at least some trials
// must actually exercise the index path.
func TestSelectPlannerMatchesForceScan(t *testing.T) {
	ctx := context.Background()
	probes := 0
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		r := sizableRelation(t, int64(200+trial), 30+rng.Intn(30))
		s := r.Schema()
		if trial%2 == 0 {
			s.Attr(0).Domain.Warm()
			s.Attr(1).Domain.Warm()
		}
		for q := 0; q < 12; q++ {
			var conds []Condition
			for i := 0; i < s.Arity(); i++ {
				if rng.Intn(2) == 0 {
					nodes := s.Attr(i).Domain.Nodes()
					conds = append(conds, Condition{Attr: s.Attr(i).Name, Class: nodes[rng.Intn(len(nodes))]})
				}
			}
			plan, err := PlanSelect(r, conds...)
			if err != nil {
				continue // incompatible condition pair; both paths reject identically below
			}
			if plan.Access == IndexProbe {
				probes++
			}
			got, gerr := SelectContext(ctx, "σ", r, conds...)
			want, werr := SelectContext(WithForceScan(ctx), "σ", r, conds...)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("trial %d: planner err %v, scan err %v (conds %v)", trial, gerr, werr, conds)
			}
			if gerr != nil {
				continue
			}
			if g, w := got.Table(), want.Table(); g != w {
				t.Fatalf("trial %d conds %v plan %s:\nplanner:\n%s\nscan:\n%s", trial, conds, plan.Access, g, w)
			}
			if got.Consolidate().Table() != want.Consolidate().Table() {
				t.Fatalf("trial %d conds %v: consolidated results differ", trial, conds)
			}
		}
	}
	if probes == 0 {
		t.Fatal("equivalence test never exercised an index-probe plan")
	}
}

// TestJoinPlannerMatchesForceScan: joins over a shared attribute must give
// byte-identical results whether pairs come from the probe or the cross
// product.
func TestJoinPlannerMatchesForceScan(t *testing.T) {
	ctx := context.Background()
	probes := 0
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(300 + trial)))
		shared := randomHierarchy(rng, "DS", 24)
		ha := randomHierarchy(rng, "DA", 12)
		hb := randomHierarchy(rng, "DB", 12)
		sa := core.MustSchema(
			core.Attribute{Name: "S", Domain: shared},
			core.Attribute{Name: "L", Domain: ha},
		)
		sb := core.MustSchema(
			core.Attribute{Name: "S", Domain: shared},
			core.Attribute{Name: "R", Domain: hb},
		)
		a := randomConsistentRelation(rng, "a", sa, 8+rng.Intn(10))
		b := randomConsistentRelation(rng, "b", sb, 16+rng.Intn(16))
		if trial%2 == 1 {
			shared.Warm()
		}
		plan, err := PlanJoin(a, b)
		must(t, err)
		if plan.Access == IndexProbe {
			probes++
		}
		got, err := JoinContext(ctx, "j", a, b)
		must(t, err)
		want, err := JoinContext(WithForceScan(ctx), "j", a, b)
		must(t, err)
		if g, w := got.Table(), want.Table(); g != w {
			t.Fatalf("trial %d plan %s:\nplanner:\n%s\nscan:\n%s", trial, plan.Access, g, w)
		}
	}
	if probes == 0 {
		t.Fatal("join equivalence test never exercised an index-probe plan")
	}
}

func TestPlanJoinShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shared := randomHierarchy(rng, "DS", 20)
	sa := core.MustSchema(core.Attribute{Name: "S", Domain: shared})
	sb := core.MustSchema(core.Attribute{Name: "S", Domain: shared})
	small := randomConsistentRelation(rng, "small", sa, 3)
	big := randomConsistentRelation(rng, "big", sb, 20)

	// The smaller side becomes the outer, the bigger side is probed.
	p, err := PlanJoin(small, big)
	must(t, err)
	if p.Access != IndexProbe || p.Outer != "small" || p.Relation != "big" {
		t.Fatalf("plan = %+v", p)
	}
	// Same answer with the arguments flipped.
	p, err = PlanJoin(big, small)
	must(t, err)
	if p.Access != IndexProbe || p.Outer != "small" || p.Relation != "big" {
		t.Fatalf("flipped plan = %+v", p)
	}

	// Inner below threshold: scan.
	tiny := randomConsistentRelation(rng, "tiny", sb, 2)
	p, err = PlanJoin(small, tiny)
	must(t, err)
	if p.Access != FullScan || !strings.Contains(p.Note, "below index threshold") {
		t.Fatalf("tiny-inner plan = %+v", p)
	}

	// No shared attributes: cross product.
	other := core.MustSchema(core.Attribute{Name: "T", Domain: randomHierarchy(rng, "DT", 5)})
	o := randomConsistentRelation(rng, "o", other, 10)
	p, err = PlanJoin(big, o)
	must(t, err)
	if p.Access != FullScan || !strings.Contains(p.Note, "cross product") {
		t.Fatalf("disjoint-schema plan = %+v", p)
	}
}

func TestPlanBinOp(t *testing.T) {
	r := respects(t)
	p, err := PlanBinOp("union", r, r)
	must(t, err)
	if p.Op != "union" || p.Access != FullScan || !strings.Contains(p.Note, "set operation") {
		t.Fatalf("union plan = %+v", p)
	}
	if want := r.Len() + r.Len() + r.Len()*r.Len(); p.EstRows != want {
		t.Fatalf("union EstRows = %d, want %d", p.EstRows, want)
	}
	// join delegates to PlanJoin.
	p, err = PlanBinOp("join", r, r)
	must(t, err)
	if p.Op != "join" {
		t.Fatalf("join plan op = %q", p.Op)
	}
	// Incompatible schemas are rejected.
	rng := rand.New(rand.NewSource(1))
	other := randomConsistentRelation(rng, "o",
		core.MustSchema(core.Attribute{Name: "Z", Domain: randomHierarchy(rng, "DZ", 4)}), 3)
	if _, err := PlanBinOp("intersect", r, other); err == nil {
		t.Fatal("incompatible set operation accepted")
	}
}

// TestSelectProbeSkipsNonOverlapping pins that the probe path enumerates
// strictly fewer raw candidates on a selective condition but loses nothing:
// the kept extension matches the scan's.
func TestSelectProbeSkipsNonOverlapping(t *testing.T) {
	r := sizableRelation(t, 99, 50)
	s := r.Schema()
	s.Attr(0).Domain.Warm()
	leaves := s.Attr(0).Domain.Nodes()
	class := leaves[len(leaves)-1]
	plan, err := PlanSelect(r, Condition{Attr: "A", Class: class})
	must(t, err)
	got, err := Select("σ", r, Condition{Attr: "A", Class: class})
	must(t, err)
	want, err := SelectContext(WithForceScan(context.Background()), "σ", r, Condition{Attr: "A", Class: class})
	must(t, err)
	ge, err := got.Extension()
	must(t, err)
	we, err := want.Extension()
	must(t, err)
	if !reflect.DeepEqual(ge, we) {
		t.Fatalf("plan %v: extensions differ:\n%v\n%v", plan.Access, ge, we)
	}
}

func TestWithForceScanRoundTrip(t *testing.T) {
	ctx := context.Background()
	if scanForced(ctx) {
		t.Fatal("fresh context reports forced scan")
	}
	if !scanForced(WithForceScan(ctx)) {
		t.Fatal("WithForceScan not visible")
	}
}

// sanity: the helpers really build relations big enough to plan over.
func TestSizableRelationHelper(t *testing.T) {
	r := sizableRelation(t, 1, 30)
	if r.Len() < minIndexLen {
		t.Fatalf("helper built only %d tuples", r.Len())
	}
	if fmt.Sprintf("%v", r.Schema().Names()) != "[A B]" {
		t.Fatalf("schema = %v", r.Schema().Names())
	}
}
