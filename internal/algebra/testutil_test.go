package algebra

import (
	"math/rand"
	"testing"

	"hrdb/internal/core"
	"hrdb/internal/flat"
	"hrdb/internal/hierarchy"
)

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// animalHierarchy builds the Figure 1a class hierarchy.
func animalHierarchy(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("Animal")
	must(t, h.AddClass("Bird"))
	must(t, h.AddClass("Canary", "Bird"))
	must(t, h.AddInstance("Tweety", "Canary"))
	must(t, h.AddClass("Penguin", "Bird"))
	must(t, h.AddClass("GalapagosPenguin", "Penguin"))
	must(t, h.AddClass("AmazingFlyingPenguin", "Penguin"))
	must(t, h.AddInstance("Paul", "GalapagosPenguin"))
	must(t, h.AddInstance("Patricia", "GalapagosPenguin", "AmazingFlyingPenguin"))
	must(t, h.AddInstance("Pamela", "AmazingFlyingPenguin"))
	must(t, h.AddInstance("Peter", "AmazingFlyingPenguin"))
	return h
}

func studentHierarchy(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("Student")
	must(t, h.AddClass("ObsequiousStudent"))
	must(t, h.AddInstance("John", "ObsequiousStudent"))
	must(t, h.AddInstance("Esther", "ObsequiousStudent"))
	must(t, h.AddInstance("Lazy", "Student"))
	return h
}

func teacherHierarchy(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("Teacher")
	must(t, h.AddClass("IncoherentTeacher"))
	must(t, h.AddInstance("Fagin", "IncoherentTeacher"))
	must(t, h.AddInstance("Hobbs", "Teacher"))
	return h
}

// respects builds the Figure 3 relation over shared hierarchies.
func respects(t *testing.T) *core.Relation {
	t.Helper()
	s := core.MustSchema(
		core.Attribute{Name: "Student", Domain: studentHierarchy(t)},
		core.Attribute{Name: "Teacher", Domain: teacherHierarchy(t)},
	)
	r := core.NewRelation("Respects", s)
	must(t, r.Assert("ObsequiousStudent", "Teacher"))
	must(t, r.Deny("Student", "IncoherentTeacher"))
	must(t, r.Assert("ObsequiousStudent", "IncoherentTeacher"))
	return r
}

// elephant fixtures (Figure 4 / Figure 11).
func elephantHierarchy(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("Animal")
	must(t, h.AddClass("Elephant"))
	must(t, h.AddClass("RoyalElephant", "Elephant"))
	must(t, h.AddClass("AfricanElephant", "Elephant"))
	must(t, h.AddClass("IndianElephant", "Elephant"))
	must(t, h.AddInstance("Clyde", "RoyalElephant"))
	must(t, h.AddInstance("Appu", "RoyalElephant", "IndianElephant"))
	return h
}

func colorHierarchy(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("Color")
	for _, c := range []string{"Grey", "White", "Dappled"} {
		must(t, h.AddInstance(c))
	}
	return h
}

func sizeHierarchy(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("EnclosureSize")
	for _, c := range []string{"3000", "2000"} {
		must(t, h.AddInstance(c))
	}
	return h
}

// colorRelation builds Figure 4's Animal–Color relation.
func colorRelation(t *testing.T, animals *hierarchy.Hierarchy) *core.Relation {
	t.Helper()
	s := core.MustSchema(
		core.Attribute{Name: "Animal", Domain: animals},
		core.Attribute{Name: "Color", Domain: colorHierarchy(t)},
	)
	r := core.NewRelation("AnimalColor", s)
	must(t, r.Assert("Elephant", "Grey"))
	must(t, r.Deny("RoyalElephant", "Grey"))
	must(t, r.Assert("RoyalElephant", "White"))
	must(t, r.Deny("Clyde", "White"))
	must(t, r.Assert("Clyde", "Dappled"))
	return r
}

// enclosureRelation builds Figure 11a: elephants get 3000, Indian elephants
// an exception of 2000.
func enclosureRelation(t *testing.T, animals *hierarchy.Hierarchy) *core.Relation {
	t.Helper()
	s := core.MustSchema(
		core.Attribute{Name: "Animal", Domain: animals},
		core.Attribute{Name: "EnclosureSize", Domain: sizeHierarchy(t)},
	)
	r := core.NewRelation("Enclosure", s)
	must(t, r.Assert("Elephant", "3000"))
	must(t, r.Deny("IndianElephant", "3000"))
	must(t, r.Assert("IndianElephant", "2000"))
	return r
}

// flatExtension converts a hierarchical relation's extension to a flat
// relation for oracle comparisons.
func flatExtension(t *testing.T, r *core.Relation) *flat.Relation {
	t.Helper()
	out := flat.New(r.Name(), r.Schema().Names()...)
	ext, err := r.Extension()
	if err != nil {
		t.Fatalf("%s: Extension: %v", r.Name(), err)
	}
	for _, it := range ext {
		if err := out.Insert(it...); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// sameExtension asserts a hierarchical result has exactly the given flat
// extension.
func sameExtension(t *testing.T, got *core.Relation, want *flat.Relation) {
	t.Helper()
	g := flatExtension(t, got)
	gr, wr := g.Rows(), want.Rows()
	if len(gr) != len(wr) {
		t.Fatalf("extension size %d != %d\n got %v\nwant %v", len(gr), len(wr), gr, wr)
	}
	for i := range gr {
		if gr[i].Key() != wr[i].Key() {
			t.Fatalf("extension mismatch at %d: %v vs %v\n got %v\nwant %v", i, gr[i], wr[i], gr, wr)
		}
	}
}

// randomHierarchy builds a random irredundant hierarchy (as in core tests).
func randomHierarchy(rng *rand.Rand, domain string, n int) *hierarchy.Hierarchy {
	h := hierarchy.New(domain)
	names := []string{domain}
	for i := 0; i < n; i++ {
		name := domain + "_" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		p1 := names[rng.Intn(len(names))]
		parents := []string{p1}
		if rng.Intn(3) == 0 {
			p2 := names[rng.Intn(len(names))]
			if p2 != p1 && !h.Subsumes(p1, p2) && !h.Subsumes(p2, p1) {
				parents = append(parents, p2)
			}
		}
		if err := h.AddClass(name, parents...); err != nil {
			panic(err)
		}
		names = append(names, name)
	}
	return h
}

// randomConsistentRelation inserts random signed tuples, skipping any that
// break consistency.
func randomConsistentRelation(rng *rand.Rand, name string, s *core.Schema, tuples int) *core.Relation {
	r := core.NewRelation(name, s)
	var pools [][]string
	for i := 0; i < s.Arity(); i++ {
		pools = append(pools, s.Attr(i).Domain.Nodes())
	}
	for attempts := 0; attempts < tuples*8 && r.Len() < tuples; attempts++ {
		item := make(core.Item, s.Arity())
		for i := range item {
			item[i] = pools[i][rng.Intn(len(pools[i]))]
		}
		if _, present := r.Lookup(item); present {
			continue
		}
		if err := r.Insert(item, rng.Intn(2) == 0); err != nil {
			continue
		}
		if err := r.CheckConsistency(); err != nil {
			r.Retract(item)
		}
	}
	return r
}
