package algebra

import (
	"math/rand"
	"testing"

	"hrdb/internal/core"
	"hrdb/internal/flat"
)

// TestPropertySetOpsCommuteWithFlattening: on random consistent relations
// over a shared schema, Union/Intersect/Difference commute with flattening
// into the flat engine.
func TestPropertySetOpsCommuteWithFlattening(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 50; trial++ {
		h0 := randomHierarchy(rng, "D0", 5+rng.Intn(5))
		attrs := []core.Attribute{{Name: "A0", Domain: h0}}
		if rng.Intn(2) == 0 {
			attrs = append(attrs, core.Attribute{Name: "A1", Domain: randomHierarchy(rng, "D1", 3+rng.Intn(4))})
		}
		s := core.MustSchema(attrs...)
		a := randomConsistentRelation(rng, "A", s, 2+rng.Intn(6))
		b := randomConsistentRelation(rng, "B", s, 2+rng.Intn(6))
		fa, fb := flatExtension(t, a), flatExtension(t, b)

		u, err := Union("U", a, b)
		if err != nil {
			t.Fatalf("trial %d union: %v\nA=%v\nB=%v", trial, err, a.Tuples(), b.Tuples())
		}
		fu, _ := fa.Union(fb)
		checkSame(t, trial, "union", u, fu, a, b)

		i, err := Intersect("I", a, b)
		if err != nil {
			t.Fatalf("trial %d intersect: %v", trial, err)
		}
		fi, _ := fa.Intersect(fb)
		checkSame(t, trial, "intersect", i, fi, a, b)

		d, err := Difference("D", a, b)
		if err != nil {
			t.Fatalf("trial %d difference: %v", trial, err)
		}
		fd, _ := fa.Difference(fb)
		checkSame(t, trial, "difference", d, fd, a, b)
	}
}

func checkSame(t *testing.T, trial int, op string, got *core.Relation, want *flat.Relation, a, b *core.Relation) {
	t.Helper()
	g := flatExtension(t, got)
	if !equalRows(g, want) {
		t.Fatalf("trial %d %s mismatch\n got %v\nwant %v\nA=%v\nB=%v\nresult=%v",
			trial, op, g.Rows(), want.Rows(), a.Tuples(), b.Tuples(), got.Tuples())
	}
	if err := got.CheckConsistency(); err != nil {
		t.Fatalf("trial %d %s: inconsistent result: %v\nresult=%v", trial, op, err, got.Tuples())
	}
}

func equalRows(a, b *flat.Relation) bool {
	ra, rb := a.Rows(), b.Rows()
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if ra[i].Key() != rb[i].Key() {
			return false
		}
	}
	return true
}

// TestPropertySelectionCommutesWithFlattening: σ(attr ⊑ C) equals flat
// row-filtering by class membership.
func TestPropertySelectionCommutesWithFlattening(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 50; trial++ {
		h0 := randomHierarchy(rng, "D0", 5+rng.Intn(5))
		h1 := randomHierarchy(rng, "D1", 3+rng.Intn(4))
		s := core.MustSchema(
			core.Attribute{Name: "A0", Domain: h0},
			core.Attribute{Name: "A1", Domain: h1},
		)
		r := randomConsistentRelation(rng, "R", s, 2+rng.Intn(6))
		nodes := h0.Nodes()
		class := nodes[rng.Intn(len(nodes))]

		sel, err := Select("S", r, Condition{Attr: "A0", Class: class})
		if err != nil {
			t.Fatalf("trial %d: %v\nR=%v class=%s", trial, err, r.Tuples(), class)
		}
		want := flatExtension(t, r).Select(func(row flat.Row) bool {
			return h0.Subsumes(class, row[0])
		})
		g := flatExtension(t, sel)
		if !equalRows(g, want) {
			t.Fatalf("trial %d selection mismatch (class %s)\n got %v\nwant %v\nR=%v\nresult=%v",
				trial, class, g.Rows(), want.Rows(), r.Tuples(), sel.Tuples())
		}
		if err := sel.CheckConsistency(); err != nil {
			t.Fatalf("trial %d: inconsistent selection: %v", trial, err)
		}
	}
}

// TestPropertyProjectionCommutesWithFlattening: π over a random attribute
// subset equals the flat projection of the extension.
func TestPropertyProjectionCommutesWithFlattening(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	for trial := 0; trial < 40; trial++ {
		h0 := randomHierarchy(rng, "D0", 4+rng.Intn(4))
		h1 := randomHierarchy(rng, "D1", 3+rng.Intn(4))
		s := core.MustSchema(
			core.Attribute{Name: "A0", Domain: h0},
			core.Attribute{Name: "A1", Domain: h1},
		)
		r := randomConsistentRelation(rng, "R", s, 2+rng.Intn(6))
		keep := "A0"
		if rng.Intn(2) == 0 {
			keep = "A1"
		}
		p, err := Project("P", r, keep)
		if err != nil {
			t.Fatalf("trial %d: %v\nR=%v", trial, err, r.Tuples())
		}
		want, err := flatExtension(t, r).Project(keep)
		if err != nil {
			t.Fatal(err)
		}
		g := flatExtension(t, p)
		if !equalRows(g, want) {
			t.Fatalf("trial %d projection(%s) mismatch\n got %v\nwant %v\nR=%v\nresult=%v",
				trial, keep, g.Rows(), want.Rows(), r.Tuples(), p.Tuples())
		}
	}
}

// TestPropertyJoinCommutesWithFlattening: the natural join over a shared
// attribute equals the flat natural join of the extensions.
func TestPropertyJoinCommutesWithFlattening(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 40; trial++ {
		shared := randomHierarchy(rng, "S", 4+rng.Intn(4))
		hA := randomHierarchy(rng, "DA", 3+rng.Intn(3))
		hB := randomHierarchy(rng, "DB", 3+rng.Intn(3))
		sa := core.MustSchema(
			core.Attribute{Name: "K", Domain: shared},
			core.Attribute{Name: "X", Domain: hA},
		)
		sb := core.MustSchema(
			core.Attribute{Name: "K", Domain: shared},
			core.Attribute{Name: "Y", Domain: hB},
		)
		a := randomConsistentRelation(rng, "A", sa, 2+rng.Intn(5))
		b := randomConsistentRelation(rng, "B", sb, 2+rng.Intn(5))

		j, err := Join("J", a, b)
		if err != nil {
			t.Fatalf("trial %d: %v\nA=%v\nB=%v", trial, err, a.Tuples(), b.Tuples())
		}
		want := flatExtension(t, a).NaturalJoin(flatExtension(t, b))
		g := flatExtension(t, j)
		if !equalRows(g, want) {
			t.Fatalf("trial %d join mismatch\n got %v\nwant %v\nA=%v\nB=%v\nresult=%v",
				trial, g.Rows(), want.Rows(), a.Tuples(), b.Tuples(), j.Tuples())
		}
		if err := j.CheckConsistency(); err != nil {
			t.Fatalf("trial %d: inconsistent join: %v", trial, err)
		}
	}
}

// TestPropertyOperatorsPreserveCompactness: set-operation results stay
// polynomial in the argument sizes (candidates are pairwise meets, not
// extensions).
func TestPropertyOperatorsPreserveCompactness(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	for trial := 0; trial < 20; trial++ {
		h0 := randomHierarchy(rng, "D0", 8)
		s := core.MustSchema(core.Attribute{Name: "A0", Domain: h0})
		a := randomConsistentRelation(rng, "A", s, 4)
		b := randomConsistentRelation(rng, "B", s, 4)
		u, err := Union("U", a, b)
		if err != nil {
			t.Fatal(err)
		}
		bound := (a.Len() + b.Len()) * (a.Len() + b.Len() + 4)
		if u.Len() > bound {
			t.Fatalf("trial %d: union size %d exceeds bound %d", trial, u.Len(), bound)
		}
	}
}
