package algebra

import (
	"fmt"
	"sort"
	"strings"

	"hrdb/internal/core"
)

// GroupCount is one row of a Count result.
type GroupCount struct {
	Group core.Item // values of the group-by attributes
	N     int
}

// Count computes the size of the relation's extension, optionally grouped
// by attributes. This is the statistical use the paper gives for Explicate
// (§3.3.2): counts are taken over the unique flat extension, never over the
// stored (compact, possibly redundant) tuples. With no group-by attributes
// the result is a single group with the empty item.
func Count(r *core.Relation, groupBy ...string) ([]GroupCount, error) {
	s := r.Schema()
	cols := make([]int, len(groupBy))
	for i, a := range groupBy {
		j, ok := s.Index(a)
		if !ok {
			return nil, fmt.Errorf("%w: count: no attribute %q in %q", core.ErrUnknownAttribute, a, r.Name())
		}
		cols[i] = j
	}
	ext, err := r.Extension()
	if err != nil {
		return nil, err
	}
	counts := map[string]*GroupCount{}
	for _, it := range ext {
		g := make(core.Item, len(cols))
		for i, c := range cols {
			g[i] = it[c]
		}
		k := g.Key()
		gc, ok := counts[k]
		if !ok {
			gc = &GroupCount{Group: g}
			counts[k] = gc
		}
		gc.N++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]GroupCount, 0, len(keys))
	for _, k := range keys {
		out = append(out, *counts[k])
	}
	if len(groupBy) == 0 && len(out) == 0 {
		out = append(out, GroupCount{Group: core.Item{}})
	}
	return out, nil
}

// CountByClass counts the extension grouped by membership in the given
// classes of one attribute: for each class, how many extension atoms fall
// under it. Classes may overlap (an atom can count toward several) — this
// is counting over the taxonomy, which a flat system would need one join
// per class to answer.
func CountByClass(r *core.Relation, attr string, classes ...string) (map[string]int, error) {
	s := r.Schema()
	i, ok := s.Index(attr)
	if !ok {
		return nil, fmt.Errorf("%w: count: no attribute %q in %q", core.ErrUnknownAttribute, attr, r.Name())
	}
	h := s.Attr(i).Domain
	for _, c := range classes {
		if !h.Has(c) {
			return nil, fmt.Errorf("%w: count: %q not in domain %q", core.ErrUnknownValue, c, h.Domain())
		}
	}
	ext, err := r.Extension()
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(classes))
	for _, c := range classes {
		out[c] = 0
	}
	for _, it := range ext {
		for _, c := range classes {
			if h.Subsumes(c, it[i]) {
				out[c]++
			}
		}
	}
	return out, nil
}

// FormatCounts renders count results as an aligned table (deterministic).
func FormatCounts(title string, groupBy []string, counts []GroupCount) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, gc := range counts {
		if len(gc.Group) == 0 {
			fmt.Fprintf(&b, "  count = %d\n", gc.N)
			continue
		}
		pairs := make([]string, len(gc.Group))
		for i, v := range gc.Group {
			pairs[i] = fmt.Sprintf("%s=%s", groupBy[i], v)
		}
		fmt.Fprintf(&b, "  %s: %d\n", strings.Join(pairs, ", "), gc.N)
	}
	return b.String()
}
