package algebra

import (
	"errors"
	"strings"
	"testing"

	"hrdb/internal/core"
	"hrdb/internal/flat"
)

// TestFigure7Selection: "Who do obsequious students respect?" — the answer
// is all teachers (the incoherent-teacher exception is overridden for
// obsequious students by the resolving tuple).
func TestFigure7Selection(t *testing.T) {
	r := respects(t)
	sel, err := Select("Fig7", r, Condition{Attr: "Student", Class: "ObsequiousStudent"})
	must(t, err)

	// The extension: every obsequious student × every teacher.
	want := flat.New("want", "Student", "Teacher")
	for _, s := range []string{"John", "Esther"} {
		for _, te := range []string{"Fagin", "Hobbs"} {
			must(t, want.Insert(s, te))
		}
	}
	sameExtension(t, sel, want)

	// Consolidated, the result is the single tuple the paper's Figure 7
	// shows: obsequious students respect all teachers.
	c := sel.Consolidate()
	tuples := c.Tuples()
	if len(tuples) != 1 || !tuples[0].Item.Equal(core.Item{"ObsequiousStudent", "Teacher"}) || !tuples[0].Sign {
		t.Fatalf("consolidated Fig7 = %v", tuples)
	}
}

// TestFigure8Selection: "Who does John respect?" — all teachers.
func TestFigure8Selection(t *testing.T) {
	r := respects(t)
	sel, err := Select("Fig8", r, Condition{Attr: "Student", Class: "John"})
	must(t, err)
	want := flat.New("want", "Student", "Teacher")
	must(t, want.Insert("John", "Fagin"))
	must(t, want.Insert("John", "Hobbs"))
	sameExtension(t, sel, want)
}

// TestSelectionOfLazyStudent: a non-obsequious student respects nobody
// incoherent; selection keeps the exception structure.
func TestSelectionOfLazyStudent(t *testing.T) {
	r := respects(t)
	sel, err := Select("Lazy", r, Condition{Attr: "Student", Class: "Lazy"})
	must(t, err)
	want := flat.New("want", "Student", "Teacher") // empty: Lazy respects nobody
	sameExtension(t, sel, want)
}

// TestFigure9Justification: σ(Animal=Clyde ∧ Color=Grey) on the
// Animal–Color relation answers "no", and the justification (applicable
// tuples) names the tuples the paper's Figure 9b lists.
func TestFigure9Justification(t *testing.T) {
	animals := elephantHierarchy(t)
	r := colorRelation(t, animals)
	v, err := r.Evaluate(core.Item{"Clyde", "Grey"})
	must(t, err)
	if v.Value {
		t.Fatal("Clyde is not grey")
	}
	// Applicable tuples: (Elephant, Grey)+ and (RoyalElephant, Grey)−.
	if len(v.Applicable) != 2 {
		t.Fatalf("justification = %v", v.Applicable)
	}
	var sawElephant, sawRoyal bool
	for _, tu := range v.Applicable {
		switch tu.Item[0] {
		case "Elephant":
			sawElephant = tu.Sign
		case "RoyalElephant":
			sawRoyal = !tu.Sign
		}
	}
	if !sawElephant || !sawRoyal {
		t.Fatalf("justification = %v", v.Applicable)
	}
	// The binder (strongest) is the royal-elephant negation.
	if len(v.Binders) != 1 || v.Binders[0].Item[0] != "RoyalElephant" {
		t.Fatalf("binders = %v", v.Binders)
	}
}

// lovesFixture builds the two single-attribute relations of Figure 10:
// Jack loves birds except penguins, but also Peter; Jill loves birds.
func lovesFixture(t *testing.T) (*core.Relation, *core.Relation) {
	t.Helper()
	h := animalHierarchy(t)
	s := core.MustSchema(core.Attribute{Name: "Creature", Domain: h})
	jack := core.NewRelation("JackLoves", s)
	must(t, jack.Assert("Bird"))
	must(t, jack.Deny("Penguin"))
	must(t, jack.Assert("Peter"))
	jill := core.NewRelation("JillLoves", s)
	must(t, jill.Assert("Bird"))
	return jack, jill
}

// TestFigure10SetOps: union, intersection and both differences of the two
// Loves relations, checked against the flat set operations.
func TestFigure10SetOps(t *testing.T) {
	jack, jill := lovesFixture(t)
	fj, fl := flatExtension(t, jack), flatExtension(t, jill)

	u, err := Union("BetweenThemLove", jack, jill)
	must(t, err)
	fu, err := fj.Union(fl)
	must(t, err)
	sameExtension(t, u, fu)

	i, err := Intersect("BothLove", jack, jill)
	must(t, err)
	fi, err := fj.Intersect(fl)
	must(t, err)
	sameExtension(t, i, fi)

	d1, err := Difference("JackButNotJill", jack, jill)
	must(t, err)
	fd1, err := fj.Difference(fl)
	must(t, err)
	sameExtension(t, d1, fd1)

	d2, err := Difference("JillButNotJack", jill, jack)
	must(t, err)
	fd2, err := fl.Difference(fj)
	must(t, err)
	sameExtension(t, d2, fd2)

	// Qualitative checks from the paper's Figure 10: between them they
	// love all birds except non-amazing penguins plus Peter; both love the
	// same minus Jack's penguin exception; Jack-but-not-Jill is empty …
	if n, _ := d1.ExtensionSize(); n != 0 {
		t.Fatalf("Jack loves someone Jill doesn't: %v", d1.Tuples())
	}
	// … and Jill-but-not-Jack is exactly the penguins Jack excludes.
	ext, err := d2.Extension()
	must(t, err)
	wantOnly := map[string]bool{"Paul": true, "Patricia": true, "Pamela": true}
	if len(ext) != 3 {
		t.Fatalf("JillButNotJack = %v", ext)
	}
	for _, it := range ext {
		if !wantOnly[it[0]] {
			t.Fatalf("JillButNotJack contains %v", it)
		}
	}
}

// TestFigure10UnionKeepsCompactTuples: the union of the two relations keeps
// class-level tuples (it does not explode to atoms), as the paper's
// Figure 10c shows.
func TestFigure10UnionKeepsCompactTuples(t *testing.T) {
	jack, jill := lovesFixture(t)
	u, err := Union("U", jack, jill)
	must(t, err)
	if _, ok := u.Lookup(core.Item{"Bird"}); !ok {
		t.Fatalf("union lost the ∀Bird tuple: %v", u.Tuples())
	}
	ext, _ := u.ExtensionSize()
	if u.Len() >= ext+3 {
		t.Fatalf("union looks exploded: %d tuples for extension %d", u.Len(), ext)
	}
}

// TestFigure11JoinProjection: join Enclosure-Size with Animal-Color over
// Animal, then project back onto Animal-Color — "there is no loss of
// information in the process".
func TestFigure11JoinProjection(t *testing.T) {
	animals := elephantHierarchy(t)
	colors := colorRelation(t, animals)
	sizes := enclosureRelation(t, animals)

	j, err := Join("Fig11b", sizes, colors)
	must(t, err)
	// Flat oracle.
	fj := flatExtension(t, sizes).NaturalJoin(flatExtension(t, colors))
	sameExtension(t, j, fj)

	// Spot checks from Figure 11b: Clyde is dappled with enclosure 3000;
	// Appu is white with enclosure 2000 (royal color, Indian enclosure).
	for _, c := range []struct {
		item core.Item
		want bool
	}{
		{core.Item{"Clyde", "3000", "Dappled"}, true},
		{core.Item{"Appu", "2000", "White"}, true},
		{core.Item{"Appu", "3000", "White"}, false},
		{core.Item{"Clyde", "3000", "Grey"}, false},
	} {
		v, err := j.Evaluate(c.item)
		must(t, err)
		if v.Value != c.want {
			t.Errorf("join %v = %v, want %v", c.item, v.Value, c.want)
		}
	}

	// Projection back onto (Animal, Color) loses nothing.
	back, err := Project("Fig11c", j, "Animal", "Color")
	must(t, err)
	wantBack, err := fj.Project("Animal", "Color")
	must(t, err)
	sameExtension(t, back, wantBack)
	// And equals the original color relation's extension.
	sameExtension(t, back, flatExtension(t, colors))
}

// TestJoinIncompatibleDomains: shared attribute names over different
// hierarchy objects are rejected.
func TestJoinIncompatibleDomains(t *testing.T) {
	a := respects(t)
	b := respects(t) // fresh hierarchies
	if _, err := Join("J", a, b); !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("got %v, want ErrIncompatible", err)
	}
}

// TestJoinNoSharedAttributesIsProduct: joining relations with disjoint
// attribute sets yields the cross product.
func TestJoinNoSharedAttributesIsProduct(t *testing.T) {
	h := animalHierarchy(t)
	s1 := core.MustSchema(core.Attribute{Name: "A", Domain: h})
	r1 := core.NewRelation("R1", s1)
	must(t, r1.Assert("Tweety"))
	s2 := core.MustSchema(core.Attribute{Name: "B", Domain: h})
	r2 := core.NewRelation("R2", s2)
	must(t, r2.Assert("Peter"))
	must(t, r2.Assert("Paul"))
	j, err := Join("X", r1, r2)
	must(t, err)
	n, err := j.ExtensionSize()
	must(t, err)
	if n != 2 {
		t.Fatalf("cross product size = %d", n)
	}
}

// TestSelectErrors: unknown attribute or class.
func TestSelectErrors(t *testing.T) {
	r := respects(t)
	if _, err := Select("S", r, Condition{Attr: "Nope", Class: "x"}); !errors.Is(err, core.ErrSchema) {
		t.Fatalf("unknown attr: %v", err)
	}
	if _, err := Select("S", r, Condition{Attr: "Student", Class: "Nope"}); !errors.Is(err, core.ErrUnknownValue) {
		t.Fatalf("unknown class: %v", err)
	}
}

// TestSelectConjunction: two conditions on different attributes intersect.
func TestSelectConjunction(t *testing.T) {
	r := respects(t)
	sel, err := Select("S", r,
		Condition{Attr: "Student", Class: "John"},
		Condition{Attr: "Teacher", Class: "IncoherentTeacher"})
	must(t, err)
	want := flat.New("w", "Student", "Teacher")
	must(t, want.Insert("John", "Fagin"))
	sameExtension(t, sel, want)
}

// TestSelectNarrowingSameAttr: two conditions on the same attribute
// intersect to the narrower class.
func TestSelectNarrowingSameAttr(t *testing.T) {
	r := respects(t)
	sel, err := Select("S", r,
		Condition{Attr: "Student", Class: "ObsequiousStudent"},
		Condition{Attr: "Student", Class: "John"})
	must(t, err)
	want := flat.New("w", "Student", "Teacher")
	must(t, want.Insert("John", "Fagin"))
	must(t, want.Insert("John", "Hobbs"))
	sameExtension(t, sel, want)
}

// TestSetOpsIncompatible: set operations demand a shared schema.
func TestSetOpsIncompatible(t *testing.T) {
	a := respects(t)
	b := respects(t)
	if _, err := Union("U", a, b); !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("got %v, want ErrIncompatible", err)
	}
}

// TestInconsistentArgumentRejected: operating on an inconsistent relation
// surfaces the conflict instead of silently computing garbage.
func TestInconsistentArgumentRejected(t *testing.T) {
	s := core.MustSchema(
		core.Attribute{Name: "Student", Domain: studentHierarchy(t)},
		core.Attribute{Name: "Teacher", Domain: teacherHierarchy(t)},
	)
	r := core.NewRelation("Bad", s)
	must(t, r.Assert("ObsequiousStudent", "Teacher"))
	must(t, r.Deny("Student", "IncoherentTeacher"))
	_, err := Select("S", r, Condition{Attr: "Student", Class: "ObsequiousStudent"})
	var ce *core.ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want ConflictError", err)
	}
}

// TestRename: attributes renamed, tuples intact, old name gone.
func TestRename(t *testing.T) {
	r := respects(t)
	rn, err := Rename("R2", r, map[string]string{"Student": "Pupil"})
	must(t, err)
	if _, ok := rn.Schema().Index("Pupil"); !ok {
		t.Fatal("Pupil missing")
	}
	if _, ok := rn.Schema().Index("Student"); ok {
		t.Fatal("Student still present")
	}
	if rn.Len() != r.Len() {
		t.Fatal("tuples lost")
	}
	if _, err := Rename("R3", r, map[string]string{"Student": "Teacher"}); err == nil {
		t.Fatal("rename onto duplicate name accepted")
	}
}

// TestProjectErrors: validation of attribute lists.
func TestProjectErrors(t *testing.T) {
	r := respects(t)
	if _, err := Project("P", r); !errors.Is(err, core.ErrSchema) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := Project("P", r, "Nope"); !errors.Is(err, core.ErrSchema) {
		t.Fatalf("unknown: %v", err)
	}
	if _, err := Project("P", r, "Student", "Student"); !errors.Is(err, core.ErrSchema) {
		t.Fatalf("duplicate: %v", err)
	}
}

// TestProjectAllAttrsIsReorder: projecting onto every attribute reorders
// columns without touching tuples.
func TestProjectAllAttrsIsReorder(t *testing.T) {
	r := respects(t)
	p, err := Project("P", r, "Teacher", "Student")
	must(t, err)
	if p.Len() != r.Len() {
		t.Fatal("tuple count changed")
	}
	if _, ok := p.Lookup(core.Item{"Teacher", "ObsequiousStudent"}); !ok {
		t.Fatalf("reordered tuple missing: %v", p.Tuples())
	}
}

// TestProjectWithNegation: the classic trap — projecting away an attribute
// with a negation must use ∃ semantics. Royal elephants are not grey but
// white: they still appear in π_Animal.
func TestProjectWithNegation(t *testing.T) {
	animals := elephantHierarchy(t)
	r := colorRelation(t, animals)
	p, err := Project("Colored", r, "Animal")
	must(t, err)
	fp, err := flatExtension(t, r).Project("Animal")
	must(t, err)
	sameExtension(t, p, fp)
	// Clyde has a color (dappled) despite two negations.
	v, err := p.Evaluate(core.Item{"Clyde"})
	must(t, err)
	if !v.Value {
		t.Fatal("Clyde must survive projection")
	}
}

// TestUnionWithEmptyRelation: identity.
func TestUnionWithEmptyRelation(t *testing.T) {
	jack, _ := lovesFixture(t)
	empty := core.NewRelation("Empty", jack.Schema())
	u, err := Union("U", jack, empty)
	must(t, err)
	sameExtension(t, u, flatExtension(t, jack))
	i, err := Intersect("I", jack, empty)
	must(t, err)
	if n, _ := i.ExtensionSize(); n != 0 {
		t.Fatal("intersection with empty should be empty")
	}
}

// TestResultsMayCarryRedundantTuples (§3.4): operator results can contain
// redundant tuples, removable by a consolidation that changes nothing else.
func TestResultsMayCarryRedundantTuples(t *testing.T) {
	jack, jill := lovesFixture(t)
	u, err := Union("U", jack, jill)
	must(t, err)
	c := u.Consolidate()
	if c.Len() > u.Len() {
		t.Fatal("consolidation grew the result")
	}
	sameExtension(t, c, flatExtension(t, u))
}

// TestSelectTableShape: the consolidated Figure 7 output renders like the
// paper's table.
func TestSelectTableShape(t *testing.T) {
	r := respects(t)
	sel, err := Select("Fig7", r, Condition{Attr: "Student", Class: "ObsequiousStudent"})
	must(t, err)
	tab := sel.Consolidate().Table()
	if !strings.Contains(tab, "∀ObsequiousStudent") || !strings.Contains(tab, "∀Teacher") {
		t.Fatalf("table:\n%s", tab)
	}
}
