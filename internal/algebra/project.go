package algebra

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hrdb/internal/core"
)

// Project computes the projection of a hierarchical relation onto the named
// attributes with flat-extension (existential) semantics: an atom belongs
// to the result iff some extension of it over the dropped attributes
// belongs to the argument (Fig. 11c).
//
// Negated tuples make naive column-dropping unsound (a negation over a
// dropped attribute means "no witness here", not "not in the projection"),
// so Project proceeds in two steps, both extension-preserving:
//
//  1. Explicate the dropped attributes, so every tuple carries atomic
//     values there (core.Explicate, §3.3.2 of the paper).
//  2. Partition the explicated tuples into slices by their (now atomic)
//     dropped-attribute values. Each slice is a hierarchical relation over
//     the kept attributes whose extension is "the argument holds with the
//     dropped attributes fixed at this witness". The projection is the
//     n-ary union of the slices, computed with the same candidates +
//     pointwise evaluation machinery as Union.
func Project(name string, r *core.Relation, attrs ...string) (*core.Relation, error) {
	return ProjectContext(context.Background(), name, r, attrs...)
}

// ProjectContext is Project with cancellation.
func ProjectContext(ctx context.Context, name string, r *core.Relation, attrs ...string) (*core.Relation, error) {
	s := r.Schema()
	if len(attrs) == 0 {
		return nil, fmt.Errorf("%w: project: no attributes", core.ErrSchema)
	}
	keep := make([]int, 0, len(attrs))
	kept := map[int]bool{}
	for _, a := range attrs {
		i, ok := s.Index(a)
		if !ok {
			return nil, fmt.Errorf("%w: project: no attribute %q in %q", core.ErrUnknownAttribute, a, r.Name())
		}
		if kept[i] {
			return nil, fmt.Errorf("%w: project: duplicate attribute %q", core.ErrSchema, a)
		}
		kept[i] = true
		keep = append(keep, i)
	}
	var drop []int
	var dropNames []string
	for i := 0; i < s.Arity(); i++ {
		if !kept[i] {
			drop = append(drop, i)
			dropNames = append(dropNames, s.Attr(i).Name)
		}
	}

	outAttrs := make([]core.Attribute, len(keep))
	for n, i := range keep {
		outAttrs[n] = s.Attr(i)
	}
	outSchema, err := core.NewSchema(outAttrs...)
	if err != nil {
		return nil, err
	}

	// Projection with nothing to drop is a column reorder.
	if len(drop) == 0 {
		out := core.NewRelation(name, outSchema)
		out.SetMode(r.Mode())
		for _, t := range r.Tuples() {
			it := make(core.Item, len(keep))
			for n, i := range keep {
				it[n] = t.Item[i]
			}
			if err := out.Insert(it, t.Sign); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	// Step 1: explicate the dropped attributes.
	expl, err := r.ExplicateContext(ctx, dropNames...)
	if err != nil {
		return nil, err
	}

	// Step 2: slice by the dropped coordinates.
	slices := map[string]*core.Relation{}
	var sliceKeys []string
	for _, t := range expl.Tuples() {
		parts := make([]string, len(drop))
		for n, i := range drop {
			parts[n] = t.Item[i]
		}
		key := strings.Join(parts, "\x1f")
		slice, ok := slices[key]
		if !ok {
			slice = core.NewRelation(name+"@"+key, outSchema)
			slice.SetMode(r.Mode())
			slices[key] = slice
			sliceKeys = append(sliceKeys, key)
		}
		it := make(core.Item, len(keep))
		for n, i := range keep {
			it[n] = t.Item[i]
		}
		if err := slice.Insert(it, t.Sign); err != nil {
			return nil, err
		}
	}
	sort.Strings(sliceKeys)

	// Union-fold the slices. An empty projection is the empty relation.
	if len(sliceKeys) == 0 {
		return core.NewRelation(name, outSchema), nil
	}
	acc := slices[sliceKeys[0]].WithName(name)
	for _, k := range sliceKeys[1:] {
		acc, err = UnionContext(ctx, name, acc, slices[k])
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}
