package algebra

import (
	"context"
	"fmt"
	"strings"

	"hrdb/internal/core"
)

// This file is the cost-based planner for the candidate-enumeration phase
// of Select and Join. Signing candidates is pointwise and already fans out
// through the core batch evaluator; what the planner chooses is how the
// candidates are found — a full scan of the stored tuples, or a probe of
// the secondary per-attribute posting lists with one overlap test per
// distinct stored value. Either path enumerates the same candidate set, so
// plans never change results, only work.

// Access names the candidate-enumeration strategy an operator uses.
type Access string

const (
	// FullScan enumerates candidates from every stored tuple.
	FullScan Access = "full-scan"
	// IndexProbe enumerates candidates from secondary-index posting lists,
	// testing one representative per distinct stored value.
	IndexProbe Access = "index-probe"
)

// Cost-model constants. Units are arbitrary "work" (roughly one subsumption
// test); only ratios matter. An overlap test against a warm label index is
// the baseline; a cold index amortizes its build into the first probes; an
// enumerated candidate pays for its meets computation and its share of the
// batch evaluation, which dwarfs a label compare.
const (
	costOverlapWarm = 1.0
	costOverlapCold = 4.0
	costCandidate   = 8.0
	// joinSelectivity estimates the fraction of inner tuples whose shared
	// coordinate overlaps a given outer value.
	joinSelectivity = 0.25
	// minIndexLen is the relation size below which planning is pointless:
	// a scan of a handful of tuples beats any probe bookkeeping.
	minIndexLen = 8
)

// Plan describes how one operator enumerates its candidates: the access
// path the cost model chose and the estimates that drove the choice. It is
// what EXPLAIN renders.
type Plan struct {
	Op       string // select, join, union, intersect, difference
	Relation string // relation the access path probes or scans
	Access   Access
	Attr     string  // probe attribute (IndexProbe only)
	Class    string  // probe class (select; join probes vary per outer tuple)
	Outer    string  // join only: the side iterated on the outside
	EstRows  int     // estimated candidates enumerated by the chosen path
	Cost     float64 // estimated cost of the chosen path
	ScanCost float64 // estimated cost of the full-scan alternative
	Warm     bool    // probe domain's label index was warm at plan time
	Note     string

	// execution details (attribute positions) not part of the rendering
	attr        int  // probe column in the probed relation
	outAttr     int  // join: matching column in the outer relation
	outerIsLeft bool // join: outer side is the left argument
}

// String renders the plan in the stable, line-oriented format EXPLAIN
// returns over both wire protocols.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s: %s", p.Op, p.Relation, p.Access)
	if p.Access == IndexProbe {
		fmt.Fprintf(&b, " on %s", p.Attr)
		if p.Class != "" {
			fmt.Fprintf(&b, " under %s", p.Class)
		}
	}
	if p.Outer != "" {
		fmt.Fprintf(&b, " (outer: %s)", p.Outer)
	}
	fmt.Fprintf(&b, "\n  est candidates: %d, cost: %.1f (full scan: %.1f)", p.EstRows, p.Cost, p.ScanCost)
	if p.Access == IndexProbe {
		if p.Warm {
			b.WriteString("\n  label index: warm")
		} else {
			b.WriteString("\n  label index: cold (built on first probe)")
		}
	}
	if p.Note != "" {
		fmt.Fprintf(&b, "\n  note: %s", p.Note)
	}
	return b.String()
}

// forceScanKey marks a context under which the planner is bypassed.
type forceScanKey struct{}

// WithForceScan returns a context under which SelectContext and JoinContext
// ignore the planner and enumerate candidates by full scan — the reference
// path that index-probe plans are verified against in tests, and the
// baseline hrbench measures the index against.
func WithForceScan(ctx context.Context) context.Context {
	return context.WithValue(ctx, forceScanKey{}, true)
}

func scanForced(ctx context.Context) bool {
	v, _ := ctx.Value(forceScanKey{}).(bool)
	return v
}

// planSelect chooses the access path for enumerating the tuples of r that
// overlap the selection region. An attribute is usable when its region
// coordinate actually constrains it (it is not the domain root).
func planSelect(r *core.Relation, region core.Item) *Plan {
	s := r.Schema()
	p := &Plan{
		Op:       "select",
		Relation: r.Name(),
		Access:   FullScan,
		ScanCost: float64(r.Len()) * costCandidate,
		EstRows:  r.Len(),
		attr:     -1,
	}
	p.Cost = p.ScanCost
	if r.Len() < minIndexLen {
		p.Note = fmt.Sprintf("relation below index threshold (%d tuples)", r.Len())
		return p
	}
	conditioned := false
	for i := 0; i < s.Arity(); i++ {
		h := s.Attr(i).Domain
		if region[i] == h.Domain() {
			continue // unconditioned column: every tuple overlaps
		}
		conditioned = true
		warm := h.IndexWarm()
		overlapCost := costOverlapCold
		if warm {
			overlapCost = costOverlapWarm
		}
		// Values that can overlap the region class by subsumption are its
		// ancestors, its descendants, and itself; overlap through a shared
		// descendant only adds multi-inheritance corner cases, so the
		// sub-hierarchy fraction is the row estimate.
		frac := float64(len(h.Descendants(region[i]))+len(h.Ancestors(region[i]))+1) / float64(h.Len())
		rows := int(float64(r.Len())*frac) + 1
		cost := float64(r.DistinctValues(i))*overlapCost + float64(rows)*costCandidate
		if cost < p.Cost {
			p.Access = IndexProbe
			p.Attr = s.Attr(i).Name
			p.Class = region[i]
			p.Cost = cost
			p.EstRows = rows
			p.Warm = warm
			p.attr = i
		}
	}
	if !conditioned {
		p.Note = "no condition narrows a column: every tuple overlaps the region"
	}
	return p
}

// planJoin chooses the outer side and probe attribute for a natural join.
// With no shared attributes the cross product is unavoidable.
func planJoin(a, b *core.Relation, shared []sharedCol) *Plan {
	p := &Plan{
		Op:       "join",
		Relation: b.Name(),
		Outer:    a.Name(),
		Access:   FullScan,
		ScanCost: float64(a.Len()) * float64(b.Len()) * costCandidate,
		EstRows:  a.Len() * b.Len(),
		attr:     -1,
	}
	p.Cost = p.ScanCost
	if len(shared) == 0 {
		p.Note = "no shared attributes: cross product"
		return p
	}
	outer, inner := a, b
	outerIsLeft := true
	if b.Len() < a.Len() {
		outer, inner = b, a
		outerIsLeft = false
	}
	if inner.Len() < minIndexLen {
		p.Note = fmt.Sprintf("inner side below index threshold (%d tuples)", inner.Len())
		return p
	}
	for _, sc := range shared {
		innerAttr, outerAttr := sc.bi, sc.ai
		if !outerIsLeft {
			innerAttr, outerAttr = sc.ai, sc.bi
		}
		h := inner.Schema().Attr(innerAttr).Domain
		warm := h.IndexWarm()
		overlapCost := costOverlapCold
		if warm {
			overlapCost = costOverlapWarm
		}
		matches := float64(inner.Len())*joinSelectivity + 1
		cost := float64(outer.Len()) * (float64(inner.DistinctValues(innerAttr))*overlapCost + matches*costCandidate)
		if cost < p.Cost {
			p.Access = IndexProbe
			p.Relation = inner.Name()
			p.Outer = outer.Name()
			p.Attr = inner.Schema().Attr(innerAttr).Name
			p.Cost = cost
			p.EstRows = int(float64(outer.Len()) * matches)
			p.Warm = warm
			p.attr = innerAttr
			p.outAttr = outerAttr
			p.outerIsLeft = outerIsLeft
		}
	}
	return p
}

// selectRegion folds the conditions into one item: componentwise the
// narrowest class each attribute is restricted to (the domain root where
// unconditioned). Conditions on the same attribute intersect.
func selectRegion(r *core.Relation, conds []Condition) (core.Item, error) {
	s := r.Schema()
	region := make(core.Item, s.Arity())
	for i := 0; i < s.Arity(); i++ {
		region[i] = s.Attr(i).Domain.Domain()
	}
	for _, c := range conds {
		i, ok := s.Index(c.Attr)
		if !ok {
			return nil, fmt.Errorf("%w: select: no attribute %q in %q", core.ErrUnknownAttribute, c.Attr, r.Name())
		}
		h := s.Attr(i).Domain
		if !h.Has(c.Class) {
			return nil, fmt.Errorf("%w: select: %q is not in domain %q", core.ErrUnknownValue, c.Class, h.Domain())
		}
		// Intersect with any previous condition on the same attribute.
		switch {
		case h.Subsumes(region[i], c.Class):
			region[i] = c.Class
		case h.Subsumes(c.Class, region[i]):
			// keep the narrower existing region
		default:
			meets := h.Meets(region[i], c.Class)
			if len(meets) != 1 {
				return nil, fmt.Errorf("%w: select: conditions %q and %q on %q do not intersect in a unique class",
					core.ErrIncompatible, region[i], c.Class, c.Attr)
			}
			region[i] = meets[0]
		}
	}
	return region, nil
}

// PlanSelect returns the plan SelectContext would execute for the given
// conditions, without running the query.
func PlanSelect(r *core.Relation, conds ...Condition) (*Plan, error) {
	region, err := selectRegion(r, conds)
	if err != nil {
		return nil, err
	}
	return planSelect(r, region), nil
}

// PlanJoin returns the plan JoinContext would execute, without running the
// join.
func PlanJoin(a, b *core.Relation) (*Plan, error) {
	shared, _, _, err := joinColumns(a, b)
	if err != nil {
		return nil, err
	}
	return planJoin(a, b, shared), nil
}

// PlanBinOp returns the plan for a binary operator by name: join plans its
// probe side, and the set operations — which must evaluate both operands at
// every candidate — always enumerate both argument tuple sets and their
// pairwise meets.
func PlanBinOp(op string, a, b *core.Relation) (*Plan, error) {
	if op == "join" {
		return PlanJoin(a, b)
	}
	if err := checkUnionCompatible(op, a, b); err != nil {
		return nil, err
	}
	n := a.Len() + b.Len() + a.Len()*b.Len()
	return &Plan{
		Op:       op,
		Relation: a.Name() + ", " + b.Name(),
		Access:   FullScan,
		EstRows:  n,
		Cost:     float64(n) * costCandidate,
		ScanCost: float64(n) * costCandidate,
		Note:     "set operation signs both operand tuple sets and their pairwise meets",
	}, nil
}
