package algebra

import (
	"context"
	"testing"

	"hrdb/internal/core"
	"hrdb/internal/hierarchy"
)

// TestCombineRepairLoop exercises the conflict-repair path of combine
// directly: the candidate set deliberately omits the meet of two
// opposite-sign candidates, so the first placement conflicts and the
// repair pass must insert a pointwise-correct tuple at the meet.
func TestCombineRepairLoop(t *testing.T) {
	h := hierarchy.New("D")
	must(t, h.AddClass("C1"))
	must(t, h.AddClass("C2"))
	must(t, h.AddClass("C12", "C1", "C2"))
	must(t, h.AddInstance("x", "C12"))
	must(t, h.AddInstance("onlyC1", "C1"))
	must(t, h.AddInstance("onlyC2", "C2"))
	s := core.MustSchema(core.Attribute{Name: "X", Domain: h})

	// Pointwise truth: everything under C1 is true, everything else false.
	eval := func(ctx context.Context, items []core.Item) ([]bool, error) {
		out := make([]bool, len(items))
		for i, m := range items {
			out[i] = h.Subsumes("C1", m[0])
		}
		return out, nil
	}
	// Candidates C1 and C2 only — no meet: C1 gets +, C2 gets −, and the
	// shared region (C12 and x) conflicts until repair pins it.
	cand := []core.Item{{"C1"}, {"C2"}}
	out, err := combine(context.Background(), "R", s, cand, eval)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.CheckConsistency(); err != nil {
		t.Fatalf("repair left conflicts: %v", err)
	}
	// The repair tuple sits at the meet with the pointwise value (true).
	if tu, ok := out.Lookup(core.Item{"C12"}); !ok || !tu.Sign {
		t.Fatalf("repair tuple missing/wrong: %v (tuples %v)", tu, out.Tuples())
	}
	// Extension is pointwise-correct everywhere.
	for _, c := range []struct {
		atom string
		want bool
	}{{"x", true}, {"onlyC1", true}, {"onlyC2", false}} {
		v, err := out.Evaluate(core.Item{c.atom})
		must(t, err)
		if v.Value != c.want {
			t.Errorf("eval(%s) = %v, want %v", c.atom, v.Value, c.want)
		}
	}
}

// TestCombineRepairDivergence: an eval whose values cannot be made
// consistent within the round budget reports an error instead of looping
// forever. We simulate it with an eval that flips its answer per call for
// the conflicted item, so no fixpoint exists.
func TestCombineRepairDivergence(t *testing.T) {
	h := hierarchy.New("D")
	must(t, h.AddClass("C1"))
	must(t, h.AddClass("C2"))
	must(t, h.AddClass("C12", "C1", "C2"))
	must(t, h.AddInstance("x", "C12"))
	s := core.MustSchema(core.Attribute{Name: "X", Domain: h})

	calls := map[string]int{}
	evalOne := func(m core.Item) (bool, error) {
		calls[m.Key()]++
		switch m[0] {
		case "C1":
			return true, nil
		case "C2":
			return false, nil
		default:
			// Flip every time: the repair can never settle, because each
			// inserted resolution contradicts the next one demanded.
			return calls[m.Key()]%2 == 0, nil
		}
	}
	eval := func(ctx context.Context, items []core.Item) ([]bool, error) {
		out := make([]bool, len(items))
		for i, m := range items {
			v, err := evalOne(m)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	// Without the meet candidates the repair loop runs; an inconsistent
	// oracle cannot converge… but note each repaired item is pinned with
	// an exact tuple, so the loop actually terminates once every item in
	// the finite space is pinned. We assert only that combine returns
	// either a consistent relation or a divergence error — never hangs.
	out, err := combine(context.Background(), "R", s, []core.Item{{"C1"}, {"C2"}}, eval)
	if err == nil {
		if cerr := out.CheckConsistency(); cerr != nil {
			t.Fatalf("combine returned inconsistent relation: %v", cerr)
		}
	}
}
