package algebra

import (
	"errors"
	"math/rand"
	"testing"

	"hrdb/internal/core"
	"hrdb/internal/flat"
	"hrdb/internal/hierarchy"
)

// threeAttrFixture: a scheduling relation Teaches(Teacher, Course, Term)
// with class-level defaults and exceptions on every attribute.
func threeAttrFixture(t *testing.T) (*core.Relation, [3]*hierarchy.Hierarchy) {
	t.Helper()
	teachers := hierarchy.New("Teacher")
	must(t, teachers.AddClass("Prof"))
	must(t, teachers.AddInstance("Ada", "Prof"))
	must(t, teachers.AddInstance("Bob", "Prof"))
	must(t, teachers.AddInstance("TA1", "Teacher"))

	courses := hierarchy.New("Course")
	must(t, courses.AddClass("CS"))
	must(t, courses.AddInstance("Databases", "CS"))
	must(t, courses.AddInstance("Compilers", "CS"))
	must(t, courses.AddInstance("Pottery", "Course"))

	terms := hierarchy.New("Term")
	must(t, terms.AddClass("AcademicYear"))
	must(t, terms.AddInstance("Fall", "AcademicYear"))
	must(t, terms.AddInstance("Spring", "AcademicYear"))
	must(t, terms.AddInstance("Summer", "Term"))

	s := core.MustSchema(
		core.Attribute{Name: "Teacher", Domain: teachers},
		core.Attribute{Name: "Course", Domain: courses},
		core.Attribute{Name: "Term", Domain: terms},
	)
	r := core.NewRelation("Teaches", s)
	// Professors teach all CS courses across the academic year…
	must(t, r.Assert("Prof", "CS", "AcademicYear"))
	// …but nobody teaches in Spring except Ada with Databases.
	must(t, r.Deny("Prof", "CS", "Spring"))
	must(t, r.Assert("Ada", "Databases", "Spring"))
	return r, [3]*hierarchy.Hierarchy{teachers, courses, terms}
}

// TestThreeAttrEvaluation: binding across three coordinates.
func TestThreeAttrEvaluation(t *testing.T) {
	r, _ := threeAttrFixture(t)
	must(t, r.CheckConsistency())
	cases := []struct {
		item core.Item
		want bool
	}{
		{core.Item{"Ada", "Databases", "Fall"}, true},
		{core.Item{"Bob", "Compilers", "Fall"}, true},
		{core.Item{"Bob", "Compilers", "Spring"}, false},
		{core.Item{"Ada", "Databases", "Spring"}, true}, // the exception's exception
		{core.Item{"Ada", "Compilers", "Spring"}, false},
		{core.Item{"TA1", "Databases", "Fall"}, false}, // not a Prof
		{core.Item{"Ada", "Pottery", "Fall"}, false},   // not CS
		{core.Item{"Ada", "Databases", "Summer"}, false},
	}
	for _, c := range cases {
		v, err := r.Evaluate(c.item)
		must(t, err)
		if v.Value != c.want {
			t.Errorf("Evaluate(%v) = %v, want %v", c.item, v.Value, c.want)
		}
	}
}

// TestThreeAttrOperators: selection, projection and count over three
// attributes, checked against the flat oracle.
func TestThreeAttrOperators(t *testing.T) {
	r, hs := threeAttrFixture(t)
	f := flatExtension(t, r)

	// σ(Term = Spring): only Ada/Databases survives.
	sel, err := Select("spring", r, Condition{Attr: "Term", Class: "Spring"})
	must(t, err)
	want := f.Select(func(row flat.Row) bool { return row[2] == "Spring" })
	if !equalRows(flatExtension(t, sel), want) {
		t.Fatalf("spring selection mismatch: %v", sel.Tuples())
	}

	// π(Teacher, Course): who teaches what at all.
	p, err := Project("pairs", r, "Teacher", "Course")
	must(t, err)
	wantP, err := f.Project("Teacher", "Course")
	must(t, err)
	if !equalRows(flatExtension(t, p), wantP) {
		t.Fatalf("projection mismatch: %v", p.Tuples())
	}

	// π(Teacher): who teaches anything.
	p1, err := Project("who", r, "Teacher")
	must(t, err)
	ext, err := p1.Extension()
	must(t, err)
	if len(ext) != 2 { // Ada and Bob
		t.Fatalf("teachers = %v", ext)
	}

	// COUNT BY Term.
	counts, err := Count(r, "Term")
	must(t, err)
	byTerm := map[string]int{}
	for _, gc := range counts {
		byTerm[gc.Group[0]] = gc.N
	}
	// Fall: Ada×2 + Bob×2 = 4; Spring: 1.
	if byTerm["Fall"] != 4 || byTerm["Spring"] != 1 {
		t.Fatalf("byTerm = %v", byTerm)
	}
	_ = hs
}

// TestThreeAttrJoinTwoShared: a join over TWO shared attributes.
func TestThreeAttrJoinTwoShared(t *testing.T) {
	r, hs := threeAttrFixture(t)
	rooms := hierarchy.New("Room")
	must(t, rooms.AddInstance("R101"))
	must(t, rooms.AddInstance("R202"))
	s2 := core.MustSchema(
		core.Attribute{Name: "Course", Domain: hs[1]},
		core.Attribute{Name: "Term", Domain: hs[2]},
		core.Attribute{Name: "Room", Domain: rooms},
	)
	sched := core.NewRelation("Rooms", s2)
	must(t, sched.Assert("CS", "AcademicYear", "R101"))
	must(t, sched.Deny("Databases", "Fall", "R101"))
	must(t, sched.Assert("Databases", "Fall", "R202"))

	j, err := Join("J", r, sched)
	must(t, err)
	wantJ := flatExtension(t, r).NaturalJoin(flatExtension(t, sched))
	if !equalRows(flatExtension(t, j), wantJ) {
		t.Fatalf("two-shared-attr join mismatch\n got %v\nwant %v",
			flatExtension(t, j).Rows(), wantJ.Rows())
	}
	// Spot check: databases in fall meet in R202, not R101.
	v, err := j.Evaluate(core.Item{"Ada", "Databases", "Fall", "R202"})
	must(t, err)
	if !v.Value {
		t.Fatal("Ada/Databases/Fall should be in R202")
	}
	v, err = j.Evaluate(core.Item{"Ada", "Databases", "Fall", "R101"})
	must(t, err)
	if v.Value {
		t.Fatal("Ada/Databases/Fall should not be in R101")
	}
}

// TestSelectDisjointSameAttrConditions: contradictory conditions error.
func TestSelectDisjointSameAttrConditions(t *testing.T) {
	r, _ := threeAttrFixture(t)
	_, err := Select("bad", r,
		Condition{Attr: "Course", Class: "Databases"},
		Condition{Attr: "Course", Class: "Pottery"})
	if !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("got %v", err)
	}
}

// TestPropertyThreeAttrSetOps: randomized three-attribute commutation.
func TestPropertyThreeAttrSetOps(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for trial := 0; trial < 15; trial++ {
		s := core.MustSchema(
			core.Attribute{Name: "A0", Domain: randomHierarchy(rng, "D0", 4)},
			core.Attribute{Name: "A1", Domain: randomHierarchy(rng, "D1", 4)},
			core.Attribute{Name: "A2", Domain: randomHierarchy(rng, "D2", 3)},
		)
		a := randomConsistentRelation(rng, "A", s, 2+rng.Intn(4))
		b := randomConsistentRelation(rng, "B", s, 2+rng.Intn(4))
		u, err := Union("U", a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fu, _ := flatExtension(t, a).Union(flatExtension(t, b))
		if !equalRows(flatExtension(t, u), fu) {
			t.Fatalf("trial %d: 3-attr union mismatch\nA=%v\nB=%v",
				trial, a.Tuples(), b.Tuples())
		}
	}
}
