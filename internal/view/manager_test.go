package view

import (
	"context"
	"strings"
	"testing"
	"time"

	"hrdb/internal/hql"
	"hrdb/internal/storage"
	"hrdb/internal/subwire"
)

// openView builds a store, manager and HQL session wired together.
func openView(t *testing.T, opts Options) (*storage.Store, *Manager, *hql.Session) {
	t.Helper()
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	m, err := Open(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return st, m, hql.NewSession(NewTarget(st, m))
}

func mustExec(t *testing.T, sess *hql.Session, script string) string {
	t.Helper()
	out, err := sess.Exec(script)
	if err != nil {
		t.Fatalf("exec %q: %v", script, err)
	}
	return out
}

func quiesce(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Wait(ctx); err != nil {
		t.Fatalf("wait: %v", err)
	}
}

const seedDDL = `
	CREATE HIERARCHY Animal;
	CLASS bird IN Animal;
	CLASS mammal IN Animal;
	INSTANCE tweety UNDER bird;
	INSTANCE rex UNDER mammal;
	CREATE RELATION flies (who: Animal);
	ASSERT flies (bird);
`

func TestViewLifecycle(t *testing.T) {
	_, m, sess := openView(t, Options{})
	mustExec(t, sess, seedDDL)
	mustExec(t, sess, "CREATE MATERIALIZED VIEW flat AS EXTENSION flies;")
	quiesce(t, m)

	rows, err := m.Rows("flat")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0] != "(tweety)" {
		t.Fatalf("initial rows = %q, want [(tweety)]", rows)
	}

	// The view reads as a relation through the session.
	if out := mustExec(t, sess, "SHOW VIEWS;"); !strings.Contains(out, "flat") {
		t.Errorf("SHOW VIEWS = %q, want it to name flat", out)
	}
	if out := mustExec(t, sess, "EXTENSION flat;"); !strings.Contains(out, "tweety") {
		t.Errorf("EXTENSION flat = %q, want tweety", out)
	}
	if out := mustExec(t, sess, "HOLDS flat (tweety);"); !strings.Contains(out, "true") {
		t.Errorf("HOLDS flat (tweety) = %q, want true", out)
	}

	// A plain tuple write folds in incrementally.
	mustExec(t, sess, "INSTANCE polly UNDER bird;") // hierarchy edit: recompute
	mustExec(t, sess, "ASSERT flies (rex);")        // tuple write: delta
	quiesce(t, m)
	rows, _ = m.Rows("flat")
	if want := []string{"(polly)", "(rex)", "(tweety)"}; strings.Join(rows, "|") != strings.Join(want, "|") {
		t.Fatalf("rows after writes = %q, want %q", rows, want)
	}
	deltas, recomputes, err := m.Stats("flat")
	if err != nil {
		t.Fatal(err)
	}
	if deltas == 0 {
		t.Errorf("deltas = 0, want the ASSERT folded incrementally")
	}
	if recomputes == 0 {
		t.Errorf("recomputes = 0, want the INSTANCE edit to force a recompute")
	}

	// Name collisions are rejected in both directions.
	if _, err := sess.Exec("CREATE RELATION flat (x: Animal);"); err == nil {
		t.Error("CREATE RELATION over a view name succeeded, want error")
	}
	if _, err := sess.Exec("CREATE MATERIALIZED VIEW flies AS EXTENSION flies;"); err == nil {
		t.Error("CREATE VIEW over a relation name succeeded, want error")
	}
	if _, err := sess.Exec("CREATE MATERIALIZED VIEW flat AS EXTENSION flies;"); err == nil {
		t.Error("duplicate CREATE VIEW succeeded, want error")
	}

	if out := mustExec(t, sess, "SHOW VIEW flat;"); !strings.Contains(out, "EXTENSION flies") {
		t.Errorf("SHOW VIEW flat = %q, want the defining query", out)
	}

	mustExec(t, sess, "DROP VIEW flat;")
	if _, err := m.Rows("flat"); err == nil {
		t.Error("view readable after DROP VIEW")
	}
	if out := mustExec(t, sess, "SHOW VIEWS;"); !strings.Contains(out, "no views") {
		t.Errorf("SHOW VIEWS after drop = %q, want none", out)
	}
}

func TestViewKinds(t *testing.T) {
	_, m, sess := openView(t, Options{})
	mustExec(t, sess, seedDDL)
	mustExec(t, sess, "ASSERT flies (rex);")
	mustExec(t, sess, "CREATE MATERIALIZED VIEW sel AS SELECT FROM flies WHERE who UNDER bird;")
	mustExec(t, sess, "CREATE MATERIALIZED VIEW tally AS COUNT flies BY (who);")
	quiesce(t, m)

	rows, err := m.Rows("sel")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !strings.Contains(rows[0], "(bird)") {
		t.Fatalf("sel rows = %q, want the bird tuple", rows)
	}
	if _, err := m.Snapshot("sel"); err != nil {
		t.Errorf("select view has no relation form: %v", err)
	}
	if _, err := m.Snapshot("tally"); err == nil {
		t.Error("count view returned a relation form, want error")
	}
	rows, _ = m.Rows("tally")
	if len(rows) != 2 {
		t.Fatalf("tally rows = %q, want two groups", rows)
	}

	// Both maintain through recompute on further writes.
	mustExec(t, sess, "RETRACT flies (rex);")
	quiesce(t, m)
	rows, _ = m.Rows("tally")
	if len(rows) != 1 {
		t.Fatalf("tally rows after retract = %q, want one group", rows)
	}
}

func TestViewSourceDropAndRevive(t *testing.T) {
	_, m, sess := openView(t, Options{})
	mustExec(t, sess, seedDDL)
	mustExec(t, sess, "CREATE MATERIALIZED VIEW flat AS EXTENSION flies;")
	mustExec(t, sess, "DROP RELATION flies;")
	quiesce(t, m)
	rows, err := m.Rows("flat")
	if err != nil || len(rows) != 0 {
		t.Fatalf("rows after source drop = %q (%v), want empty", rows, err)
	}
	if status, _ := m.Status("flat"); !strings.Contains(status, "error") {
		t.Errorf("status = %q, want an error note", status)
	}
	mustExec(t, sess, "CREATE RELATION flies (who: Animal); ASSERT flies (tweety);")
	quiesce(t, m)
	rows, _ = m.Rows("flat")
	if len(rows) != 1 || rows[0] != "(tweety)" {
		t.Fatalf("rows after revive = %q, want [(tweety)]", rows)
	}
}

func TestViewPersistence(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Open(st, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sess := hql.NewSession(NewTarget(st, m))
	mustExec(t, sess, seedDDL)
	mustExec(t, sess, "CREATE MATERIALIZED VIEW flat AS EXTENSION flies;")
	quiesce(t, m)
	want, _ := m.Rows("flat")
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean shutdown: rows adopted without recompute.
	m2, err := Open(st, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.Rows("flat")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("reloaded rows = %q, want %q", got, want)
	}
	if _, recomputes, _ := m2.Stats("flat"); recomputes != 0 {
		t.Errorf("clean reload recomputed %d times, want adoption", recomputes)
	}

	// The reloaded view still maintains.
	sess2 := hql.NewSession(NewTarget(st, m2))
	mustExec(t, sess2, "ASSERT flies (rex);")
	quiesce(t, m2)
	got, _ = m2.Rows("flat")
	if len(got) != 2 {
		t.Fatalf("rows after reload+assert = %q, want two", got)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}

	// Writes while no manager is running: stale snapshot, recompute on load.
	plain := hql.NewSession(st)
	mustExec(t, plain, "INSTANCE polly UNDER bird;")
	m3, err := Open(st, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	got, _ = m3.Rows("flat")
	if len(got) != 3 {
		t.Fatalf("rows after offline write = %q, want three", got)
	}
	if _, recomputes, _ := m3.Stats("flat"); recomputes == 0 {
		t.Error("stale snapshot adopted without recompute")
	}
	st.Close()
}

// feedCollector decodes a feed from a pipe in the background.
type feedCollector struct {
	frames chan subwire.Frame
	errs   chan error
}

type chunkWriter struct{ ch chan []byte }

func (w chunkWriter) Write(p []byte) (int, error) {
	buf := append([]byte(nil), p...)
	w.ch <- buf
	return len(p), nil
}

func collectFeed(t *testing.T, m *Manager, ctx context.Context, name string, epoch uint64, offset int64, resume bool) *feedCollector {
	t.Helper()
	fc := &feedCollector{frames: make(chan subwire.Frame, 64), errs: make(chan error, 1)}
	raw := make(chan []byte, 64)
	go func() {
		fc.errs <- m.ServeFeed(ctx, chunkWriter{raw}, name, epoch, offset, resume)
		close(raw)
	}()
	go func() {
		var dec subwire.Decoder
		for chunk := range raw {
			dec.Feed(chunk)
			for {
				f, ok, err := dec.Next()
				if err != nil {
					t.Errorf("feed decode: %v", err)
					return
				}
				if !ok {
					break
				}
				fc.frames <- f
			}
		}
		close(fc.frames)
	}()
	return fc
}

func (fc *feedCollector) next(t *testing.T, kind string) subwire.Frame {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case f, ok := <-fc.frames:
			if !ok {
				t.Fatalf("feed closed while waiting for %s", kind)
			}
			if f.Kind == subwire.KindHB && kind != subwire.KindHB {
				continue // heartbeats are interleaved freely
			}
			if f.Kind != kind {
				t.Fatalf("got %s frame %+v, want %s", f.Kind, f, kind)
			}
			return f
		case <-deadline:
			t.Fatalf("timed out waiting for %s frame", kind)
		}
	}
}

func TestServeFeedSnapshotAndDeltas(t *testing.T) {
	_, m, sess := openView(t, Options{Heartbeat: 20 * time.Millisecond})
	mustExec(t, sess, seedDDL)
	mustExec(t, sess, "CREATE MATERIALIZED VIEW flat AS EXTENSION flies;")
	quiesce(t, m)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fc := collectFeed(t, m, ctx, "flat", 0, 0, false)

	snap := fc.next(t, subwire.KindSnap)
	if len(snap.Rows) != 1 || snap.Rows[0] != "(tweety)" {
		t.Fatalf("SNAP rows = %q, want [(tweety)]", snap.Rows)
	}

	mustExec(t, sess, "ASSERT flies (rex);")
	d := fc.next(t, subwire.KindDelta)
	if len(d.Added) != 1 || d.Added[0] != "(rex)" || len(d.Removed) != 0 {
		t.Fatalf("DELTA = %+v, want +(rex)", d)
	}

	// Resume from the delta's position: nothing to replay, heartbeats only.
	ctx2, cancel2 := context.WithCancel(context.Background())
	fc2 := collectFeed(t, m, ctx2, "flat", d.Epoch, d.Offset, true)
	hb := fc2.next(t, subwire.KindHB)
	if hb.Epoch < d.Epoch {
		t.Fatalf("HB position %d/%d behind resume point %d/%d", hb.Epoch, hb.Offset, d.Epoch, d.Offset)
	}
	mustExec(t, sess, "RETRACT flies (rex);")
	d2 := fc2.next(t, subwire.KindDelta)
	if len(d2.Removed) != 1 || d2.Removed[0] != "(rex)" {
		t.Fatalf("resumed DELTA = %+v, want -(rex)", d2)
	}
	cancel2()
	if err := <-fc2.errs; err != nil {
		t.Fatalf("resumed feed: %v", err)
	}

	// The first feed sees the same retraction.
	d3 := fc.next(t, subwire.KindDelta)
	if len(d3.Removed) != 1 || d3.Removed[0] != "(rex)" {
		t.Fatalf("first feed DELTA = %+v, want -(rex)", d3)
	}

	// Dropping the view terminates the feed with an ERR frame.
	mustExec(t, sess, "DROP VIEW flat;")
	e := fc.next(t, subwire.KindErr)
	if e.Code != "dropped" {
		t.Fatalf("ERR code = %q, want dropped", e.Code)
	}
	if err := <-fc.errs; err != nil {
		t.Fatalf("feed after drop: %v", err)
	}
}

func TestServeFeedErrors(t *testing.T) {
	_, m, sess := openView(t, Options{MaxJournalEntries: 2})
	mustExec(t, sess, seedDDL)
	mustExec(t, sess, "CREATE MATERIALIZED VIEW flat AS EXTENSION flies;")
	quiesce(t, m)

	ctx := context.Background()
	fc := collectFeed(t, m, ctx, "nosuch", 0, 0, false)
	if e := fc.next(t, subwire.KindErr); e.Code != "notfound" {
		t.Fatalf("ERR code = %q, want notfound", e.Code)
	}
	if err := <-fc.errs; err != nil {
		t.Fatal(err)
	}

	// Capture a live position via a snapshot frame, overflow the journal
	// past it (each assert adds a distinct row, so each commits one
	// entry regardless of maintenance timing), then resume from it.
	mustExec(t, sess, `
		INSTANCE i1 UNDER mammal; INSTANCE i2 UNDER mammal;
		INSTANCE i3 UNDER mammal; INSTANCE i4 UNDER mammal;
	`)
	quiesce(t, m)
	cctx, cancel := context.WithCancel(ctx)
	fc = collectFeed(t, m, cctx, "flat", 0, 0, false)
	snap := fc.next(t, subwire.KindSnap)
	cancel()
	<-fc.errs
	for _, who := range []string{"i1", "i2", "i3", "i4"} {
		mustExec(t, sess, "ASSERT flies ("+who+");")
	}
	quiesce(t, m)
	fc = collectFeed(t, m, ctx, "flat", snap.Epoch, snap.Offset, true)
	if e := fc.next(t, subwire.KindErr); e.Code != "stale" {
		t.Fatalf("ERR code = %q, want stale", e.Code)
	}
	if err := <-fc.errs; err != nil {
		t.Fatal(err)
	}
}

// TestRelationMirrorFeed covers SUBSCRIBE <relation>: a feed over a base
// relation's stored tuples, created lazily, maintained by the same loop.
func TestRelationMirrorFeed(t *testing.T) {
	_, m, sess := openView(t, Options{})
	mustExec(t, sess, seedDDL)
	quiesce(t, m)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fc := collectFeed(t, m, ctx, "flies", 0, 0, false)
	snap := fc.next(t, subwire.KindSnap)
	if len(snap.Rows) != 1 || snap.Rows[0] != "+ (bird)" {
		t.Fatalf("mirror SNAP rows = %q, want [+ (bird)]", snap.Rows)
	}

	mustExec(t, sess, "DENY flies (rex);")
	d := fc.next(t, subwire.KindDelta)
	if len(d.Added) != 1 || d.Added[0] != "- (rex)" {
		t.Fatalf("mirror DELTA = %+v, want +\"- (rex)\"", d)
	}
	// Flipping the sign inside a transaction replaces the row.
	mustExec(t, sess, "BEGIN; ASSERT flies (rex); COMMIT;")
	d = fc.next(t, subwire.KindDelta)
	if len(d.Added) != 1 || d.Added[0] != "+ (rex)" || len(d.Removed) != 1 || d.Removed[0] != "- (rex)" {
		t.Fatalf("mirror DELTA = %+v, want sign flip", d)
	}
}

func TestViewMetrics(t *testing.T) {
	d0 := metricDeltas.Value()
	r0 := metricRecomputes.Value()
	_, m, sess := openView(t, Options{})
	mustExec(t, sess, seedDDL)
	mustExec(t, sess, "CREATE MATERIALIZED VIEW flat AS EXTENSION flies;")
	mustExec(t, sess, "ASSERT flies (rex);")
	mustExec(t, sess, "INSTANCE polly UNDER bird;")
	quiesce(t, m)
	if got := metricDeltas.Value(); got <= d0 {
		t.Errorf("hrdb_view_deltas_applied = %d, want > %d", got, d0)
	}
	if got := metricRecomputes.Value(); got <= r0 {
		t.Errorf("hrdb_view_recomputes = %d, want > %d", got, r0)
	}
	rows, _ := m.Rows("flat")
	if got := metricRows.Value(); got != int64(len(rows)) {
		t.Errorf("hrdb_view_rows = %d, want %d", got, len(rows))
	}
}
