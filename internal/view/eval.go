package view

import (
	"context"
	"fmt"
	"sort"

	"hrdb/internal/algebra"
	"hrdb/internal/catalog"
	"hrdb/internal/core"
	"hrdb/internal/hql"
)

// defKind classifies a view's defining query, which decides its maintenance
// strategy (see maintain in manager.go).
type defKind int

const (
	// kindExtension — EXTENSION <rel>: the flat atomic extension. The
	// flagship case: flattening is the paper's expensive read, and its
	// maintenance is O(delta) — a changed tuple re-evaluates only the
	// atoms it subsumes.
	kindExtension defKind = iota
	// kindSelect — SELECT FROM <rel> [WHERE ...]: recomputed on source
	// change (consolidation is a whole-relation operation, so there is no
	// sound tuple-local fold).
	kindSelect
	// kindCount — COUNT <rel> [BY ...]: recomputed on source change.
	kindCount
	// kindMirror — an internal feed over a base relation's stored tuples,
	// backing SUBSCRIBE <relation>. Never user-created.
	kindMirror
)

// def is a compiled view definition.
type def struct {
	kind   defKind
	source string // the single base relation
	conds  []algebra.Condition
	by     []string
}

// compile parses and classifies a canonical defining query.
func compile(query string) (*def, error) {
	stmts, err := hql.Parse(query)
	if err != nil {
		return nil, fmt.Errorf("view: defining query: %w", err)
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("view: defining query must be a single statement, got %d", len(stmts))
	}
	if err := hql.Materializable(stmts[0]); err != nil {
		return nil, err
	}
	switch st := stmts[0].(type) {
	case hql.ExtensionStmt:
		return &def{kind: kindExtension, source: st.Relation}, nil
	case hql.SelectStmt:
		conds := make([]algebra.Condition, len(st.Conds))
		for i, c := range st.Conds {
			conds[i] = algebra.Condition{Attr: c[0], Class: c[1]}
		}
		return &def{kind: kindSelect, source: st.Relation, conds: conds}, nil
	case hql.CountStmt:
		return &def{kind: kindCount, source: st.Relation, by: st.By}, nil
	default:
		return nil, fmt.Errorf("view: %T cannot define a view", st)
	}
}

// evalResult is one full evaluation of a view's defining query.
type evalResult struct {
	rows []string // sorted, newline-free
	// rel is the view's relation form (extension and select views); nil
	// for count views and mirrors.
	rel *core.Relation
	// domains names the hierarchies the result depends on; a mutation of
	// any of them invalidates incremental maintenance.
	domains map[string]bool
}

// eval runs a view's defining query from scratch against the current
// database state.
func eval(ctx context.Context, db *catalog.Database, name string, d *def) (evalResult, error) {
	src, err := db.Snapshot(d.source)
	if err != nil {
		return evalResult{}, err
	}
	domains := map[string]bool{}
	schema := src.Schema()
	for i := 0; i < schema.Arity(); i++ {
		domains[schema.Attr(i).Domain.Domain()] = true
	}
	res := evalResult{domains: domains}

	switch d.kind {
	case kindExtension:
		ext, err := src.ExtensionContext(ctx)
		if err != nil {
			return evalResult{}, err
		}
		rel := core.NewRelation(name, schema)
		rows := make([]string, 0, len(ext))
		for _, it := range ext {
			if err := rel.Insert(it, true); err != nil {
				return evalResult{}, err
			}
			rows = append(rows, it.String())
		}
		sort.Strings(rows)
		res.rows, res.rel = rows, rel

	case kindSelect:
		sel, err := algebra.SelectContext(ctx, name, src, d.conds...)
		if err != nil {
			return evalResult{}, err
		}
		sel = sel.Consolidate()
		res.rows, res.rel = tupleRows(sel), sel

	case kindCount:
		counts, err := algebra.Count(src, d.by...)
		if err != nil {
			return evalResult{}, err
		}
		rows := make([]string, 0, len(counts))
		for _, gc := range counts {
			if len(gc.Group) == 0 {
				rows = append(rows, fmt.Sprintf("count = %d", gc.N))
				continue
			}
			rows = append(rows, fmt.Sprintf("%s = %d", gc.Group, gc.N))
		}
		sort.Strings(rows)
		res.rows = rows

	case kindMirror:
		res.rows = tupleRows(src)

	default:
		return evalResult{}, fmt.Errorf("view: unknown kind %d", d.kind)
	}
	return res, nil
}

// tupleRows renders a relation's stored tuples as sorted row strings
// ("+ (a, b)" / "- (a, b)").
func tupleRows(r *core.Relation) []string {
	ts := r.Tuples()
	rows := make([]string, 0, len(ts))
	for _, t := range ts {
		rows = append(rows, t.String())
	}
	sort.Strings(rows)
	return rows
}
