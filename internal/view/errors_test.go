package view

import (
	"errors"
	"strings"
	"testing"
)

// TestDeltaAtomCapFallsBack: a committed batch whose affected-atom closure
// exceeds MaxDeltaAtoms abandons the incremental fold and recomputes, and
// the fallback is visible in the view's recompute counter.
func TestDeltaAtomCapFallsBack(t *testing.T) {
	_, m, sess := openView(t, Options{MaxDeltaAtoms: 1})
	mustExec(t, sess, seedDDL)
	mustExec(t, sess, "CREATE MATERIALIZED VIEW flat AS EXTENSION flies;")
	mustExec(t, sess, "INSTANCE a UNDER mammal; INSTANCE b UNDER mammal;")
	quiesce(t, m)
	_, rec0, err := m.Stats("flat")
	if err != nil {
		t.Fatal(err)
	}

	// One tuple change, three affected atoms (rex, a, b) — over the cap.
	mustExec(t, sess, "ASSERT flies (mammal);")
	quiesce(t, m)
	deltas1, rec1, err := m.Stats("flat")
	if err != nil {
		t.Fatal(err)
	}
	if rec1 != rec0+1 {
		t.Fatalf("recomputes %d -> %d; the atom cap never forced a fallback", rec0, rec1)
	}
	if deltas1 != 0 {
		t.Fatalf("deltas = %d; the over-cap batch must not take the delta path", deltas1)
	}
	rows, err := m.Rows("flat")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(rows, ","); got != "(a),(b),(rex),(tweety)" {
		t.Fatalf("rows after fallback = %q", got)
	}
}

// TestCreateRejections pins every way a view definition can be refused:
// bad names, unparseable or multi-statement or mutating queries, name
// collisions with views and relations, and defining queries whose first
// evaluation fails.
func TestCreateRejections(t *testing.T) {
	_, m, sess := openView(t, Options{})
	mustExec(t, sess, seedDDL)
	mustExec(t, sess, "CREATE MATERIALIZED VIEW flat AS EXTENSION flies;")

	for _, tc := range []struct{ name, query, wantErr string }{
		{"", "EXTENSION flies", "invalid view name"},
		{"bad name", "EXTENSION flies", "invalid view name"},
		{"v", "NOT A QUERY", "defining query"},
		{"v", "EXTENSION flies; EXTENSION flies", "single statement"},
		{"v", "ASSERT flies (bird)", "cannot define"},
		{"flat", "EXTENSION flies", "already exists"},
		{"flies", "EXTENSION flies", `relation "flies" already exists`},
		{"v", "EXTENSION nosuch", "nosuch"},
	} {
		err := m.Create(tc.name, tc.query)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("Create(%q, %q) = %v, want error containing %q", tc.name, tc.query, err, tc.wantErr)
		}
	}

	if err := m.Drop("nosuch"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Drop(nosuch) = %v, want ErrNotFound", err)
	}
	if _, err := m.Rows("nosuch"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Rows(nosuch) = %v, want ErrNotFound", err)
	}
	if _, err := m.Snapshot("nosuch"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Snapshot(nosuch) = %v, want ErrNotFound", err)
	}
	if _, _, err := m.Stats("nosuch"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stats(nosuch) = %v, want ErrNotFound", err)
	}
	if _, err := m.Status("nosuch"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Status(nosuch) = %v, want ErrNotFound", err)
	}

	// Count views have no relation form to snapshot.
	mustExec(t, sess, "CREATE MATERIALIZED VIEW tally AS COUNT flies;")
	quiesce(t, m)
	if _, err := m.Snapshot("tally"); err == nil {
		t.Fatal("Snapshot of a count view succeeded")
	}

	// A closed manager refuses definitions and further closes are no-ops.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	if err := m.Create("late", "EXTENSION flies"); err == nil {
		t.Fatal("Create after Close succeeded")
	}
}
