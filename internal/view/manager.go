// Package view maintains materialized views over HQL queries: each view's
// result set is computed once, then kept current by tailing the store's
// committed WAL stream and folding every committed batch into the stored
// rows — as an O(delta) patch when the defining query permits it, and by
// full recomputation when a mutation (hierarchy edit, whole-relation
// rewrite) invalidates incremental math. Views double as change feeds:
// every row change is journaled with its WAL position, and ServeFeed
// streams snapshot + deltas to subscribers with gap- and duplicate-free
// resumption, mirroring the replication stream contract.
package view

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"hrdb/internal/catalog"
	"hrdb/internal/core"
	"hrdb/internal/storage"
	"hrdb/internal/subwire"
)

// position is a WAL position (checkpoint epoch, byte offset).
type position struct {
	epoch  uint64
	offset int64
}

func (p position) less(q position) bool {
	return p.epoch < q.epoch || (p.epoch == q.epoch && p.offset < q.offset)
}

// entry is one journaled row change: applying added/removed to the rows as
// of the previous entry yields the rows as of pos. Entries are diffs of the
// view's own row set, so replaying a contiguous suffix is exact.
type entry struct {
	pos            position
	added, removed []string // sorted
}

func (e entry) bytes() int {
	n := 0
	for _, r := range e.added {
		n += len(r)
	}
	for _, r := range e.removed {
		n += len(r)
	}
	return n + 32
}

// view is one maintained view (or internal relation mirror).
type view struct {
	name   string
	query  string // canonical defining query; "" for mirrors
	def    *def
	rows   map[string]struct{}
	sorted []string // cache of sorted rows; nil = dirty
	rel    *core.Relation
	// domains the last successful evaluation depended on.
	domains map[string]bool

	pos     position // WAL position the rows reflect
	floor   position // journal covers (floor, pos]; resume below floor is stale
	journal []entry
	jbytes  int

	deltas, recomputes uint64
	lastErr            string
}

func (v *view) sortedRows() []string {
	if v.sorted == nil {
		v.sorted = make([]string, 0, len(v.rows))
		for r := range v.rows {
			v.sorted = append(v.sorted, r)
		}
		sort.Strings(v.sorted)
	}
	return v.sorted
}

// setRows replaces the row set and returns the sorted diff old -> new.
func (v *view) setRows(rows []string) (added, removed []string) {
	next := make(map[string]struct{}, len(rows))
	for _, r := range rows {
		next[r] = struct{}{}
		if _, ok := v.rows[r]; !ok {
			added = append(added, r)
		}
	}
	for r := range v.rows {
		if _, ok := next[r]; !ok {
			removed = append(removed, r)
		}
	}
	v.rows = next
	v.sorted = nil
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}

// Options configures a Manager.
type Options struct {
	// Dir, when set, persists view definitions (and a clean-shutdown row
	// snapshot) to Dir/views.json so views survive restarts.
	Dir string
	// MaxDeltaAtoms caps how many atoms one committed batch may force an
	// extension view to re-evaluate before falling back to a full
	// recompute. Default 4096.
	MaxDeltaAtoms int
	// MaxJournalEntries / MaxJournalBytes bound each view's change
	// journal; resuming below the trimmed floor yields a stale error.
	// Defaults 1024 entries / 1 MiB.
	MaxJournalEntries int
	MaxJournalBytes   int
	// Heartbeat is the feed heartbeat interval. Default 500ms.
	Heartbeat time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxDeltaAtoms <= 0 {
		o.MaxDeltaAtoms = 4096
	}
	if o.MaxJournalEntries <= 0 {
		o.MaxJournalEntries = 1024
	}
	if o.MaxJournalBytes <= 0 {
		o.MaxJournalBytes = 1 << 20
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 500 * time.Millisecond
	}
	return o
}

// Manager owns every materialized view of one Store: it registers and
// persists definitions, runs the single WAL-tailing maintenance goroutine,
// and serves subscription feeds. Safe for concurrent use.
type Manager struct {
	store *storage.Store
	opts  Options

	mu      sync.Mutex
	views   map[string]*view // user views, by name
	mirrors map[string]*view // relation feeds, by relation name
	pos     position         // last applied batch position
	change  chan struct{}    // closed and replaced on every state change

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	closed bool
}

// ErrNotFound reports an unknown view.
var ErrNotFound = errors.New("view: not found")

// Open starts a Manager over the store, reloading any persisted view
// definitions (recomputing their contents unless a clean-shutdown snapshot
// at the store's exact current position can be adopted).
func Open(store *storage.Store, opts Options) (*Manager, error) {
	epoch, off := store.Position()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		store:   store,
		opts:    opts.withDefaults(),
		views:   map[string]*view{},
		mirrors: map[string]*view{},
		pos:     position{epoch, off},
		change:  make(chan struct{}),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	if err := m.load(); err != nil {
		cancel()
		return nil, err
	}
	go m.run()
	return m, nil
}

// Close stops maintenance and persists a row snapshot for fast adoption on
// the next Open. The store itself is not closed.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	<-m.done
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.saveLocked()
}

// bumpLocked wakes every waiter (feeds, Wait) after a state change.
func (m *Manager) bumpLocked() {
	close(m.change)
	m.change = make(chan struct{})
	total := int64(0)
	for _, v := range m.views {
		total += int64(len(v.rows))
	}
	metricRows.Set(total)
}

// run is the maintenance loop: one committed batch at a time, folded into
// every view under the manager lock.
func (m *Manager) run() {
	defer close(m.done)
	m.mu.Lock()
	tl := storage.TailFrom(m.store, m.pos.epoch, m.pos.offset)
	m.mu.Unlock()
	for {
		recs, epoch, off, err := tl.Next(m.ctx)
		if err != nil {
			if m.ctx.Err() != nil || errors.Is(err, storage.ErrStoreClosed) {
				return
			}
			// The tail position was retired (checkpoint) or unreadable:
			// restart from the store's current position and recompute
			// everything. The recompute diffs keep feeds exact.
			tl = m.resync()
			continue
		}
		start := time.Now()
		m.apply(recs, position{epoch, off})
		metricLagNS.Observe(int64(time.Since(start)))
	}
}

// resync re-anchors the tail at the store's current position, recomputing
// every view there. Journals stay continuous: the recompute diff is one
// entry covering everything the lost WAL range did.
func (m *Manager) resync() *storage.Tailer {
	m.mu.Lock()
	defer m.mu.Unlock()
	tl := storage.NewTailer(m.store)
	epoch, off := tl.Position()
	m.pos = position{epoch, off}
	for _, v := range m.views {
		m.recomputeLocked(v, m.pos)
	}
	for _, v := range m.mirrors {
		m.recomputeLocked(v, m.pos)
	}
	m.bumpLocked()
	return tl
}

// apply folds one committed batch into every view.
func (m *Manager) apply(recs []storage.Record, pos position) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, v := range m.views {
		m.applyViewLocked(v, recs, pos)
	}
	for _, v := range m.mirrors {
		m.applyViewLocked(v, recs, pos)
	}
	m.pos = pos
	m.bumpLocked()
}

// Maintenance actions, in increasing order of cost.
const (
	actNone = iota
	actDelta
	actRecompute
)

// classify decides what a committed batch demands of one view.
func (v *view) classify(recs []storage.Record) int {
	act := actNone
	for _, rec := range recs {
		switch rec.Op {
		case storage.OpAssert, storage.OpDeny, storage.OpRetract:
			if rec.Target == v.def.source && act < actDelta {
				act = actDelta
			}
		case storage.OpConsolidate, storage.OpExplicate, storage.OpSetMode,
			storage.OpCreateRelation, storage.OpDropRelation:
			if rec.Target == v.def.source {
				return actRecompute
			}
		case storage.OpCreateHierarchy, storage.OpAddClass, storage.OpAddInstance,
			storage.OpAddEdge, storage.OpPrefer, storage.OpDropNode:
			// A hierarchy mutation shifts subsumption under the view's
			// domains: incremental math is invalid, recompute. Mirrors are
			// exempt — stored tuples do not move with the hierarchy.
			if v.def.kind != kindMirror && v.domains[rec.Target] {
				return actRecompute
			}
		}
	}
	return act
}

func (m *Manager) applyViewLocked(v *view, recs []storage.Record, pos position) {
	switch v.classify(recs) {
	case actNone:
		v.pos = pos
		return
	case actDelta:
		var added, removed []string
		var ok bool
		switch v.def.kind {
		case kindExtension:
			added, removed, ok = m.deltaExtensionLocked(v, recs)
		case kindMirror:
			added, removed, ok = v.deltaMirror(recs)
		default:
			// SELECT and COUNT views have no sound tuple-local fold.
			ok = false
		}
		if !ok {
			m.recomputeLocked(v, pos)
			return
		}
		v.deltas++
		metricDeltas.Inc()
		m.commitView(v, pos, added, removed)
	case actRecompute:
		m.recomputeLocked(v, pos)
	}
}

func (v *view) appendJournal(m *Manager, e entry) {
	v.journal = append(v.journal, e)
	v.jbytes += e.bytes()
	for len(v.journal) > m.opts.MaxJournalEntries || v.jbytes > m.opts.MaxJournalBytes {
		head := v.journal[0]
		v.floor = head.pos
		v.jbytes -= head.bytes()
		v.journal = v.journal[1:]
	}
}

func (m *Manager) commitView(v *view, pos position, added, removed []string) {
	if len(added) > 0 || len(removed) > 0 {
		v.appendJournal(m, entry{pos: pos, added: added, removed: removed})
	}
	v.pos = pos
}

// recomputeLocked re-evaluates a view from scratch at the current database
// state and journals the diff as one entry at pos. Evaluation failure (for
// example a dropped source relation) empties the view and records the
// error; a later batch that recreates the source revives it.
func (m *Manager) recomputeLocked(v *view, pos position) {
	v.recomputes++
	metricRecomputes.Inc()
	var res evalResult
	err := m.store.ReadLocked(func(db *catalog.Database) error {
		var e error
		res, e = eval(m.ctx, db, v.name, v.def)
		return e
	})
	if err != nil {
		v.lastErr = err.Error()
		res = evalResult{}
	} else {
		v.lastErr = ""
	}
	added, removed := v.setRows(res.rows)
	v.rel = res.rel
	if res.domains != nil {
		v.domains = res.domains
	}
	m.commitView(v, pos, added, removed)
}

// deltaExtensionLocked applies DML records to an extension view by
// re-evaluating only the atoms a change at item J can reach: the atoms
// under J itself, plus the atoms under every stored tuple item K that
// subsumes J. The second set is what makes this sound under the paper's
// preemption semantics — a tuple at J can preempt (or stop preempting) a
// tuple at an ancestor item K for atoms under K that are NOT under J, so
// tuple-locality alone is not enough. Atoms outside both sets see neither
// an applicable-tuple change nor a preemptor change, and keep their
// verdicts. Reports ok=false (caller recomputes) when the affected-atom
// set exceeds the cap or evaluation fails.
func (m *Manager) deltaExtensionLocked(v *view, recs []storage.Record) (added, removed []string, ok bool) {
	if v.rel == nil || v.lastErr != "" {
		return nil, nil, false
	}
	err := m.store.ReadLocked(func(db *catalog.Database) error {
		added, removed, ok = m.deltaExtensionUnderLock(db, v, recs)
		return nil
	})
	if err != nil {
		return nil, nil, false
	}
	return added, removed, ok
}

// deltaExtensionUnderLock is the fold body; the caller holds both the
// manager lock and the store's apply lock (no concurrent mutation).
func (m *Manager) deltaExtensionUnderLock(db *catalog.Database, v *view, recs []storage.Record) (added, removed []string, ok bool) {
	src, err := db.Snapshot(v.def.source)
	if err != nil {
		return nil, nil, false
	}
	schema := v.rel.Schema()
	if src.Schema().Arity() != schema.Arity() {
		return nil, nil, false
	}
	stored := src.Tuples()

	var atoms []core.Item
	seen := map[string]core.Item{}
	// addAtoms expands an item to its leaf product, deduplicated and
	// capped; false means "too big, recompute instead".
	addAtoms := func(item []string) bool {
		leaves := make([][]string, schema.Arity())
		total := 1
		for i := range leaves {
			ls := schema.Attr(i).Domain.Leaves(item[i])
			if len(ls) == 0 {
				return false
			}
			leaves[i] = ls
			total *= len(ls)
			if total > m.opts.MaxDeltaAtoms {
				return false
			}
		}
		if len(atoms)+total > m.opts.MaxDeltaAtoms {
			return false
		}
		idx := make([]int, len(leaves))
		for {
			atom := make(core.Item, len(leaves))
			for i, j := range idx {
				atom[i] = leaves[i][j]
			}
			if k := atom.Key(); seen[k] == nil {
				seen[k] = atom
				atoms = append(atoms, atom)
			}
			i := len(idx) - 1
			for ; i >= 0; i-- {
				idx[i]++
				if idx[i] < len(leaves[i]) {
					break
				}
				idx[i] = 0
			}
			if i < 0 {
				break
			}
		}
		return true
	}
	subsumesItem := func(upper, lower []string) bool {
		for i := range upper {
			if upper[i] != lower[i] && !schema.Attr(i).Domain.Subsumes(upper[i], lower[i]) {
				return false
			}
		}
		return true
	}
	for _, rec := range recs {
		switch rec.Op {
		case storage.OpAssert, storage.OpDeny, storage.OpRetract:
		default:
			continue
		}
		if rec.Target != v.def.source {
			continue
		}
		if len(rec.Args) != schema.Arity() {
			return nil, nil, false
		}
		if !addAtoms(rec.Args) {
			return nil, nil, false
		}
		for _, t := range stored {
			if subsumesItem(t.Item, rec.Args) && !addAtoms(t.Item) {
				return nil, nil, false
			}
		}
	}
	if len(atoms) == 0 {
		return nil, nil, true
	}
	flags, err := db.HoldsBatch(m.ctx, v.def.source, atoms)
	if err != nil {
		return nil, nil, false
	}
	for i, atom := range atoms {
		row := atom.String()
		_, present := v.rows[row]
		switch {
		case flags[i] && !present:
			if err := v.rel.Insert(atom, true); err != nil {
				return nil, nil, false
			}
			v.rows[row] = struct{}{}
			v.sorted = nil
			added = append(added, row)
		case !flags[i] && present:
			v.rel.Retract(atom)
			delete(v.rows, row)
			v.sorted = nil
			removed = append(removed, row)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed, true
}

// deltaMirror folds DML records into a relation mirror: each record sets
// its item's stored-tuple state absolutely (assert -> "+", deny -> "-",
// retract -> absent), so replay converges even when the mirror was
// bootstrapped ahead of the tail position.
func (v *view) deltaMirror(recs []storage.Record) (added, removed []string, ok bool) {
	for _, rec := range recs {
		if rec.Target != v.def.source {
			continue
		}
		it := core.Item(rec.Args)
		plus := core.Tuple{Item: it, Sign: true}.String()
		minus := core.Tuple{Item: it, Sign: false}.String()
		var want string
		switch rec.Op {
		case storage.OpAssert:
			want = plus
		case storage.OpDeny:
			want = minus
		case storage.OpRetract:
			want = ""
		default:
			continue
		}
		for _, row := range []string{plus, minus} {
			if row == want {
				continue
			}
			if _, present := v.rows[row]; present {
				delete(v.rows, row)
				v.sorted = nil
				removed = append(removed, row)
			}
		}
		if want != "" {
			if _, present := v.rows[want]; !present {
				v.rows[want] = struct{}{}
				v.sorted = nil
				added = append(added, want)
			}
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed, true
}

// Create registers a materialized view: the defining query (canonical HQL,
// as produced by hql.Render) is compiled, evaluated once, and maintained
// from this point in the WAL onward.
func (m *Manager) Create(name, query string) error {
	if name == "" || strings.ContainsAny(name, " \n\r\t") {
		return fmt.Errorf("view: invalid view name %q", name)
	}
	d, err := compile(query)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return storage.ErrStoreClosed
	}
	if _, ok := m.views[name]; ok {
		return fmt.Errorf("view: view %q already exists", name)
	}
	if _, err := m.store.Database().Snapshot(name); err == nil {
		return fmt.Errorf("view: relation %q already exists", name)
	}
	var res evalResult
	if err := m.store.ReadLocked(func(db *catalog.Database) error {
		var e error
		res, e = eval(m.ctx, db, name, d)
		return e
	}); err != nil {
		return err
	}
	v := &view{
		name:    name,
		query:   query,
		def:     d,
		rows:    map[string]struct{}{},
		domains: res.domains,
		pos:     m.pos,
		floor:   m.pos,
	}
	added, _ := v.setRows(res.rows)
	_ = added // initial rows are the snapshot, not a journal entry
	v.rel = res.rel
	m.views[name] = v
	m.bumpLocked()
	return m.saveLocked()
}

// Drop unregisters a view. Active feeds terminate with a "dropped" error.
func (m *Manager) Drop(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.views[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(m.views, name)
	m.bumpLocked()
	return m.saveLocked()
}

// Has reports whether a view with the name exists.
func (m *Manager) Has(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.views[name]
	return ok
}

// Names lists registered views, sorted.
func (m *Manager) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.views))
	for n := range m.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Rows returns the view's current rows, sorted.
func (m *Manager) Rows(name string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.views[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return append([]string(nil), v.sortedRows()...), nil
}

// Snapshot returns the view's relation form for catalog-style reads.
func (m *Manager) Snapshot(name string) (*core.Relation, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.views[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if v.rel == nil {
		if v.lastErr != "" {
			return nil, fmt.Errorf("view: %q is broken: %s", name, v.lastErr)
		}
		return nil, fmt.Errorf("view: %q has no relation form", name)
	}
	return v.rel.Clone(), nil
}

// Status renders one view's definition and maintenance state.
func (m *Manager) Status(name string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.views[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", v.name, v.query)
	fmt.Fprintf(&b, "  rows=%d position=%d/%d deltas=%d recomputes=%d journal=%d",
		len(v.rows), v.pos.epoch, v.pos.offset, v.deltas, v.recomputes, len(v.journal))
	if v.lastErr != "" {
		fmt.Fprintf(&b, "\n  error: %s", v.lastErr)
	}
	return b.String(), nil
}

// Stats reports a view's maintenance counters (for tests and benchmarks).
func (m *Manager) Stats(name string) (deltas, recomputes uint64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.views[name]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return v.deltas, v.recomputes, nil
}

// Wait blocks until every committed mutation as of the call has been folded
// into all views — the test and benchmark quiescence point.
func (m *Manager) Wait(ctx context.Context) error {
	epoch, off := m.store.Position()
	target := position{epoch, off}
	for {
		m.mu.Lock()
		cur, ch := m.pos, m.change
		m.mu.Unlock()
		if !cur.less(target) {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-m.ctx.Done():
			return m.ctx.Err()
		case <-ch:
		}
	}
}

// feedViewLocked resolves a feed target: a user view, or a lazily created
// mirror over a base relation (SUBSCRIBE <relation>).
func (m *Manager) feedViewLocked(name string) (*view, error) {
	if v, ok := m.views[name]; ok {
		return v, nil
	}
	if v, ok := m.mirrors[name]; ok {
		return v, nil
	}
	d := &def{kind: kindMirror, source: name}
	var res evalResult
	if err := m.store.ReadLocked(func(db *catalog.Database) error {
		var e error
		res, e = eval(m.ctx, db, name, d)
		return e
	}); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	v := &view{
		name:    name,
		def:     d,
		rows:    map[string]struct{}{},
		domains: res.domains,
		pos:     m.pos,
		floor:   m.pos,
	}
	v.setRows(res.rows)
	m.mirrors[name] = v
	return v, nil
}

// ServeFeed streams a view's (or relation's) change feed to w in subwire
// frames, one frame per Write. Without resume it opens with a SNAP of the
// full row set; with resume it replays exactly the journaled deltas after
// (epoch, offset) — or emits ERR stale when that position was trimmed, in
// which case the client should resubscribe without resume. It returns when
// ctx is canceled (nil), the writer fails (the write error), or the feed
// ends server-side (nil, after an ERR frame).
func (m *Manager) ServeFeed(ctx context.Context, w io.Writer, name string, epoch uint64, offset int64, resume bool) error {
	writeFrame := func(f subwire.Frame) error {
		buf, err := subwire.AppendFrame(nil, f)
		if err != nil {
			return err
		}
		_, err = w.Write(buf)
		return err
	}
	fail := func(code, msg string) error {
		werr := writeFrame(subwire.Frame{Kind: subwire.KindErr, Code: code, Msg: msg})
		if werr != nil {
			return werr
		}
		return nil
	}

	var cur position
	m.mu.Lock()
	v, err := m.feedViewLocked(name)
	if err != nil {
		m.mu.Unlock()
		return fail("notfound", fmt.Sprintf("no view or relation %q", name))
	}
	if resume {
		cur = position{epoch, offset}
		if cur.less(v.floor) || v.pos.less(cur) {
			m.mu.Unlock()
			return fail("stale", "resume position outside the retained journal; resubscribe without resume")
		}
		m.mu.Unlock()
	} else {
		cur = v.pos
		snap := subwire.Frame{
			Kind:   subwire.KindSnap,
			Epoch:  cur.epoch,
			Offset: cur.offset,
			Rows:   append([]string(nil), v.sortedRows()...),
		}
		m.mu.Unlock()
		if err := writeFrame(snap); err != nil {
			return err
		}
	}

	hb := time.NewTicker(m.opts.Heartbeat)
	defer hb.Stop()
	for {
		m.mu.Lock()
		alive := m.views[name] == v || m.mirrors[name] == v
		if !alive {
			m.mu.Unlock()
			return fail("dropped", fmt.Sprintf("view %q was dropped", name))
		}
		var pending []entry
		for _, e := range v.journal {
			if cur.less(e.pos) {
				pending = append(pending, e)
			}
		}
		vpos := v.pos
		ch := m.change
		m.mu.Unlock()

		if len(pending) > 0 {
			for _, e := range pending {
				f := subwire.Frame{
					Kind:    subwire.KindDelta,
					Epoch:   e.pos.epoch,
					Offset:  e.pos.offset,
					Added:   e.added,
					Removed: e.removed,
				}
				if err := writeFrame(f); err != nil {
					return err
				}
				cur = e.pos
			}
			continue
		}
		if cur.less(vpos) {
			cur = vpos // nothing journaled in between: safe to fast-forward
		}

		select {
		case <-ctx.Done():
			return nil
		case <-m.ctx.Done():
			return fail("shutdown", "view manager closing")
		case <-ch:
		case <-hb.C:
			if err := writeFrame(subwire.Frame{Kind: subwire.KindHB, Epoch: cur.epoch, Offset: cur.offset}); err != nil {
				return err
			}
		}
	}
}
