package view

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"hrdb/internal/catalog"
	"hrdb/internal/core"
)

// savedView is the on-disk form of one view: its definition always, plus a
// row snapshot stamped with the WAL position it reflects. On reload the
// snapshot is adopted only when that position equals the store's current
// position (clean shutdown, no writes since); otherwise the definition
// alone is kept and the contents recomputed.
type savedView struct {
	Name   string     `json:"name"`
	Query  string     `json:"query"`
	Epoch  uint64     `json:"epoch"`
	Offset int64      `json:"offset"`
	Rows   []string   `json:"rows"`
	Items  [][]string `json:"items,omitempty"` // relation form: tuple items…
	Signs  []bool     `json:"signs,omitempty"` // …and their signs
}

func (m *Manager) viewsPath() string {
	return filepath.Join(m.opts.Dir, "views.json")
}

// saveLocked persists every view definition (and current rows) atomically.
// No-op without a Dir.
func (m *Manager) saveLocked() error {
	if m.opts.Dir == "" {
		return nil
	}
	out := make([]savedView, 0, len(m.views))
	for _, name := range sortedKeys(m.views) {
		v := m.views[name]
		sv := savedView{
			Name:   v.name,
			Query:  v.query,
			Epoch:  v.pos.epoch,
			Offset: v.pos.offset,
			Rows:   append([]string(nil), v.sortedRows()...),
		}
		if v.rel != nil {
			for _, t := range v.rel.Tuples() {
				sv.Items = append(sv.Items, append([]string(nil), t.Item...))
				sv.Signs = append(sv.Signs, t.Sign)
			}
		}
		out = append(out, sv)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(m.opts.Dir, 0o755); err != nil {
		return err
	}
	tmp := m.viewsPath() + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, m.viewsPath())
}

// load restores persisted views at Open time. Definitions always survive;
// a row snapshot is adopted only when it was taken at the store's exact
// current WAL position, else the view is recomputed once here.
func (m *Manager) load() error {
	if m.opts.Dir == "" {
		return nil
	}
	data, err := os.ReadFile(m.viewsPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var saved []savedView
	if err := json.Unmarshal(data, &saved); err != nil {
		return fmt.Errorf("view: corrupt %s: %w", m.viewsPath(), err)
	}
	for _, sv := range saved {
		d, err := compile(sv.Query)
		if err != nil {
			return fmt.Errorf("view: persisted view %q: %w", sv.Name, err)
		}
		v := &view{
			name:  sv.Name,
			query: sv.Query,
			def:   d,
			rows:  map[string]struct{}{},
			pos:   m.pos,
			floor: m.pos,
		}
		if sv.Epoch == m.pos.epoch && sv.Offset == m.pos.offset && m.adopt(v, sv) {
			m.views[sv.Name] = v
			continue
		}
		m.recomputeLocked(v, m.pos)
		// Restoration is not a change: the journal starts empty.
		v.journal, v.jbytes, v.floor = nil, 0, v.pos
		m.views[sv.Name] = v
	}
	return nil
}

// adopt installs a clean-shutdown row snapshot, rebuilding the relation
// form from the persisted tuples. Any mismatch with the current schema
// reports false and the caller recomputes instead.
func (m *Manager) adopt(v *view, sv savedView) bool {
	adopted := false
	m.store.ReadLocked(func(db *catalog.Database) error {
		adopted = m.adoptUnderLock(db, v, sv)
		return nil
	})
	return adopted
}

func (m *Manager) adoptUnderLock(db *catalog.Database, v *view, sv savedView) bool {
	src, err := db.Snapshot(v.def.source)
	if err != nil {
		return false
	}
	schema := src.Schema()
	v.domains = map[string]bool{}
	for i := 0; i < schema.Arity(); i++ {
		v.domains[schema.Attr(i).Domain.Domain()] = true
	}
	if v.def.kind == kindExtension || v.def.kind == kindSelect {
		rel := core.NewRelation(v.name, schema)
		if len(sv.Items) != len(sv.Signs) {
			return false
		}
		for i, item := range sv.Items {
			if len(item) != schema.Arity() {
				return false
			}
			if err := rel.Insert(core.Item(item), sv.Signs[i]); err != nil {
				return false
			}
		}
		v.rel = rel
	}
	for _, r := range sv.Rows {
		v.rows[r] = struct{}{}
	}
	v.sorted = nil
	return true
}

func sortedKeys(m map[string]*view) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
