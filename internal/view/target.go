package view

import (
	"fmt"

	"hrdb/internal/catalog"
	"hrdb/internal/core"
	"hrdb/internal/hql"
)

// Target wraps any hql.Target with a view Manager, implementing the
// optional hql.ViewCatalog interface so sessions over it can run
// CREATE MATERIALIZED VIEW / DROP VIEW / SHOW VIEWS and read views as
// relations. Everything else passes through to the wrapped target.
type Target struct {
	hql.Target
	Views *Manager
}

// NewTarget wraps base with view support from m.
func NewTarget(base hql.Target, m *Manager) Target {
	return Target{Target: base, Views: m}
}

var _ hql.ViewCatalog = Target{}

// CreateRelation refuses names already taken by a view — views are read
// through the relation namespace, so the two must not collide.
func (t Target) CreateRelation(name string, attrs ...catalog.AttrSpec) error {
	if t.Views.Has(name) {
		return fmt.Errorf("view: %q is a materialized view; drop it first", name)
	}
	return t.Target.CreateRelation(name, attrs...)
}

// CreateView implements hql.ViewCatalog.
func (t Target) CreateView(name, query string) error { return t.Views.Create(name, query) }

// DropView implements hql.ViewCatalog.
func (t Target) DropView(name string) error { return t.Views.Drop(name) }

// ViewSnapshot implements hql.ViewCatalog.
func (t Target) ViewSnapshot(name string) (*core.Relation, error) { return t.Views.Snapshot(name) }

// ViewNames implements hql.ViewCatalog.
func (t Target) ViewNames() []string { return t.Views.Names() }

// ViewStatus implements hql.ViewCatalog.
func (t Target) ViewStatus(name string) (string, error) { return t.Views.Status(name) }
