package view

import (
	"strings"
	"testing"
	"time"
)

// TestResyncAfterCheckpoint: a checkpoint retires the WAL epoch while the
// maintenance tail still has unread bytes in it; the tailer reports the
// range unavailable and the manager must re-anchor at the store's current
// position with a full recompute, then keep folding subsequent writes.
func TestResyncAfterCheckpoint(t *testing.T) {
	st, m, sess := openView(t, Options{})
	mustExec(t, sess, seedDDL)
	mustExec(t, sess, "CREATE MATERIALIZED VIEW flat AS EXTENSION flies;")
	quiesce(t, m)
	_, recomputes0, err := m.Stats("flat")
	if err != nil {
		t.Fatal(err)
	}

	// Park the maintenance loop: holding the manager lock blocks apply()
	// right after the tailer hands over the first batch, so everything
	// written next stays unread in the old epoch. The second write's record
	// exceeds the tailer's read chunk, guaranteeing its bytes are still on
	// disk — not buffered in the decoder — when the checkpoint deletes the
	// epoch file.
	m.mu.Lock()
	if err := st.AddInstance("Animal", "polly", "bird"); err != nil {
		m.mu.Unlock()
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // tailer consumes polly, blocks in apply
	big := "big_" + strings.Repeat("x", 2<<20)
	if err := st.AddInstance("Animal", big, "bird"); err != nil {
		m.mu.Unlock()
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		m.mu.Unlock()
		t.Fatal(err)
	}
	m.mu.Unlock()

	quiesce(t, m)
	rows, err := m.Rows("flat")
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(rows, ",")
	for _, want := range []string{"(polly)", "(tweety)", "(" + big[:8]} {
		if !strings.Contains(got, want) {
			t.Fatalf("rows after resync miss %q (have %d rows)", want, len(rows))
		}
	}
	_, recomputes1, err := m.Stats("flat")
	if err != nil {
		t.Fatal(err)
	}
	if recomputes1 <= recomputes0 {
		t.Fatalf("recomputes %d -> %d; the retired epoch never forced a resync", recomputes0, recomputes1)
	}
}
