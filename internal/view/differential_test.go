package view

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"hrdb/internal/hql"
	"hrdb/internal/storage"
)

// TestDifferentialMaintenance is the property test behind the whole
// subsystem: under a randomized interleaving of tuple writes, transactions
// and hierarchy edits, every view's incrementally maintained contents must
// stay byte-identical to a from-scratch recomputation of its defining
// query. The oracle is eval itself — the same code that computes a view
// once at CREATE time — run against the live database after quiescing, so
// any divergence is the maintenance fold's fault.
func TestDifferentialMaintenance(t *testing.T) {
	seeds := []int64{1, 2, 3, 7, 42}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDifferential(t, seed)
		})
	}
}

func runDifferential(t *testing.T, seed int64) {
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m, err := Open(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sess := hql.NewSession(NewTarget(st, m))

	mustExec(t, sess, `
		CREATE HIERARCHY D;
		CLASS c0 IN D; CLASS c1 IN D; CLASS c2 UNDER c0 IN D; CLASS c3 UNDER c1 IN D;
		INSTANCE i0 UNDER c2; INSTANCE i1 UNDER c2; INSTANCE i2 UNDER c3;
		INSTANCE i3 UNDER c3; INSTANCE i4 UNDER c0; INSTANCE i5 UNDER c1;
		CREATE RELATION r1 (x: D);
		CREATE RELATION r2 (x: D, y: D);
	`)

	views := map[string]string{
		"flat1": "EXTENSION r1",
		"flat2": "EXTENSION r2",
		"sel1":  "SELECT FROM r1 WHERE x UNDER c0",
		"tally": "COUNT r2 BY (x)",
	}
	for name, query := range views {
		if err := m.Create(name, query); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	nodes := []string{"c0", "c1", "c2", "c3", "i0", "i1", "i2", "i3", "i4", "i5"}
	nextInst := 6
	pick := func() string { return nodes[rng.Intn(len(nodes))] }

	const steps = 200
	for step := 0; step < steps; step++ {
		switch k := rng.Intn(20); {
		case k < 8: // single tuple write on r1
			stmt := [...]string{"ASSERT", "DENY", "RETRACT"}[rng.Intn(3)]
			sess.Exec(fmt.Sprintf("%s r1 (%s);", stmt, pick()))
		case k < 14: // single tuple write on r2
			stmt := [...]string{"ASSERT", "DENY", "RETRACT"}[rng.Intn(3)]
			sess.Exec(fmt.Sprintf("%s r2 (%s, %s);", stmt, pick(), pick()))
		case k < 16: // transaction: replacement semantics, one WAL bracket
			sess.Exec(fmt.Sprintf("BEGIN; ASSERT r1 (%s); DENY r2 (%s, %s); COMMIT;",
				pick(), pick(), pick()))
		case k < 18: // hierarchy edit: new instance, or a new edge
			if rng.Intn(2) == 0 {
				name := fmt.Sprintf("i%d", nextInst)
				nextInst++
				if _, err := sess.Exec(fmt.Sprintf("INSTANCE %s UNDER %s IN D;", name, pick())); err == nil {
					nodes = append(nodes, name)
				}
			} else {
				sess.Exec(fmt.Sprintf("EDGE D: %s -> %s;", pick(), pick()))
			}
		case k < 19: // whole-relation rewrite
			sess.Exec([...]string{"CONSOLIDATE r1;", "EXPLICATE r1;"}[rng.Intn(2)])
		default: // preference edit
			sess.Exec(fmt.Sprintf("PREFER %s OVER %s IN D;", pick(), pick()))
		}
		// Most writes above may legitimately fail (contradictions,
		// duplicate edges, cyclic preferences): errors are ignored, the
		// WAL only carries what committed.

		if step%20 == 19 || step == steps-1 {
			compareAll(t, m, views, step, seed)
		}
	}
}

// compareAll quiesces maintenance and diffs every view against its oracle.
func compareAll(t *testing.T, m *Manager, views map[string]string, step int, seed int64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := m.Wait(ctx); err != nil {
		t.Fatalf("seed %d step %d: wait: %v", seed, step, err)
	}
	for name, query := range views {
		got, err := m.Rows(name)
		if err != nil {
			t.Fatalf("seed %d step %d: rows %s: %v", seed, step, name, err)
		}
		d, err := compile(query)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := eval(ctx, m.store.Database(), name, d)
		if err != nil {
			// The defining query itself fails on the current state (for
			// example an ambiguity the random walk created): the view must
			// be parked empty with the error recorded.
			status, serr := m.Status(name)
			if serr != nil {
				t.Fatal(serr)
			}
			if len(got) != 0 || !strings.Contains(status, "error") {
				t.Fatalf("seed %d step %d: oracle %s fails (%v) but view holds %q, status %q",
					seed, step, name, err, got, status)
			}
			continue
		}
		if strings.Join(got, "\n") != strings.Join(oracle.rows, "\n") {
			deltas, recomputes, _ := m.Stats(name)
			t.Fatalf("seed %d step %d: view %s diverged (deltas=%d recomputes=%d)\n got: %q\nwant: %q",
				seed, step, name, deltas, recomputes, got, oracle.rows)
		}
	}
}
