package view

import "hrdb/internal/obs"

// View-maintenance metrics, on the obs default registry. Process-wide,
// matching the server metric idiom.
var (
	// metricDeltas counts committed batches folded incrementally into a
	// view (the O(delta) path).
	metricDeltas = obs.Default().Counter("hrdb_view_deltas_applied")
	// metricRecomputes counts full from-scratch recomputations: hierarchy
	// mutations, whole-relation rewrites (CONSOLIDATE/EXPLICATE/SET MODE),
	// source drops/creates, non-incremental view kinds, delta-cap
	// overflows, and WAL resyncs.
	metricRecomputes = obs.Default().Counter("hrdb_view_recomputes")
	// metricLagNS observes the duration of each maintenance pass: the time
	// from picking a committed batch off the WAL tail to all views having
	// folded it.
	metricLagNS = obs.Default().Histogram("hrdb_view_lag_ns")
	// metricRows tracks the total row count across registered views.
	metricRows = obs.Default().Gauge("hrdb_view_rows")
)
