// Package hql implements a small query language over the hierarchical
// relational model, exposing the paper's operations as statements:
//
//	CREATE HIERARCHY Animal;
//	CLASS Bird UNDER Animal;
//	CLASS Penguin UNDER Bird;
//	INSTANCE Tweety UNDER Canary;
//	EDGE Animal: Penguin -> Pamela;
//	PREFER AFP OVER GP IN Animal;
//	CREATE RELATION Flies (Creature: Animal);
//	ASSERT Flies (Bird);
//	DENY Flies (Penguin);
//	RETRACT Flies (Penguin);
//	HOLDS Flies (Tweety);
//	WHY Flies (Tweety);
//	SELECT FROM Flies WHERE Creature UNDER Penguin;
//	SELECT FROM Flies;
//	EXTENSION Flies;
//	CONSOLIDATE Flies;
//	EXPLICATE Flies ON (Creature);
//	UNION A B AS C;   INTERSECT A B AS C;   DIFFERENCE A B AS C;
//	JOIN A B AS C;    PROJECT A ON (X, Y) AS B;
//	SHOW HIERARCHIES; SHOW RELATIONS; SHOW HIERARCHY Animal;
//	SET POLICY warn;  BEGIN; ...; COMMIT; ROLLBACK;
//	DROP RELATION Flies;
//
// Keywords are case-insensitive; identifiers are case-sensitive. Statements
// end with a semicolon (optional for the last statement of an input).
package hql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokLParen
	tokRParen
	tokComma
	tokSemi
	tokColon
	tokArrow // ->
	tokEq    // =
)

// token is one lexeme with its source position (1-based column in the
// statement text).
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// SyntaxError reports a lexing or parsing failure with position context.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("hql: syntax error at position %d: %s", e.Pos, e.Msg)
}

// lex splits input into tokens. Identifiers may be bare words
// (letters, digits, '_', '.') or single-quoted strings (which may contain
// anything except a quote).
func lex(input string) ([]token, error) {
	var toks []token
	runes := []rune(input)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '-' && i+1 < len(runes) && runes[i+1] == '-':
			// comment to end of line
			for i < len(runes) && runes[i] != '\n' {
				i++
			}
		case r == '(':
			toks = append(toks, token{tokLParen, "(", i + 1})
			i++
		case r == ')':
			toks = append(toks, token{tokRParen, ")", i + 1})
			i++
		case r == ',':
			toks = append(toks, token{tokComma, ",", i + 1})
			i++
		case r == ';':
			toks = append(toks, token{tokSemi, ";", i + 1})
			i++
		case r == ':':
			toks = append(toks, token{tokColon, ":", i + 1})
			i++
		case r == '=':
			toks = append(toks, token{tokEq, "=", i + 1})
			i++
		case r == '-' && i+1 < len(runes) && runes[i+1] == '>':
			toks = append(toks, token{tokArrow, "->", i + 1})
			i += 2
		case r == '\'':
			start := i
			i++
			var sb strings.Builder
			for i < len(runes) && runes[i] != '\'' {
				sb.WriteRune(runes[i])
				i++
			}
			if i >= len(runes) {
				return nil, &SyntaxError{Pos: start + 1, Msg: "unterminated string"}
			}
			i++ // closing quote
			toks = append(toks, token{tokIdent, sb.String(), start + 1})
		case r == '?':
			// Datalog variable for RULE/INFER statements: ?Name.
			start := i
			i++
			for i < len(runes) && (unicode.IsLetter(runes[i]) || unicode.IsDigit(runes[i]) || runes[i] == '_') {
				i++
			}
			if i == start+1 {
				return nil, &SyntaxError{Pos: start + 1, Msg: "'?' must be followed by a variable name"}
			}
			toks = append(toks, token{tokIdent, string(runes[start:i]), start + 1})
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_':
			start := i
			for i < len(runes) && (unicode.IsLetter(runes[i]) || unicode.IsDigit(runes[i]) || runes[i] == '_' || runes[i] == '.') {
				i++
			}
			toks = append(toks, token{tokIdent, string(runes[start:i]), start + 1})
		default:
			return nil, &SyntaxError{Pos: i + 1, Msg: fmt.Sprintf("unexpected character %q", r)}
		}
	}
	toks = append(toks, token{tokEOF, "", len(runes) + 1})
	return toks, nil
}
