package hql

import (
	"errors"
	"strings"
	"testing"
)

// TestSessionReset pins the pooled-session contract the v2 server
// multiplexer relies on: Reset drops an open transaction without applying
// its buffered operations and clears session rules, returning the session
// to its base state for the next stream.
func TestSessionReset(t *testing.T) {
	db := sessionFixture(t)
	sess := NewSession(MemTarget{DB: db})

	if _, err := sess.Exec("BEGIN; ASSERT Flies (Tweety); RULE winged(?X) IF isa(?X, Bird);"); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if !sess.InTx() {
		t.Fatal("transaction should be open")
	}
	if err := sess.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if sess.InTx() {
		t.Fatal("Reset left the transaction open")
	}
	// The buffered ASSERT must never have reached the catalog.
	out, err := sess.Exec("HOLDS Flies (Tweety);")
	if err != nil || strings.TrimSpace(out) != "false" {
		t.Fatalf("HOLDS after Reset = %q, %v; want false (tx discarded)", out, err)
	}
	// COMMIT without BEGIN proves the tx state is really gone.
	if _, err := sess.Exec("COMMIT;"); err == nil {
		t.Fatal("COMMIT after Reset found a transaction")
	}
	// Rules are cleared too: SHOW RULES is empty.
	out, err = sess.Exec("SHOW RULES;")
	if err != nil {
		t.Fatalf("SHOW RULES: %v", err)
	}
	if strings.Contains(out, "winged") {
		t.Fatalf("Reset kept rules: %q", out)
	}
	// A reset session is fully usable.
	if _, err := sess.Exec("BEGIN; ASSERT Flies (Tweety); COMMIT;"); err != nil {
		t.Fatalf("exec after Reset: %v", err)
	}
	out, err = sess.Exec("HOLDS Flies (Tweety);")
	if err != nil || strings.TrimSpace(out) != "true" {
		t.Fatalf("HOLDS after recommit = %q, %v; want true", out, err)
	}
}

// TestSessionResetWhileBusy: Reset during an executing statement is
// rejected with ErrSessionBusy and changes nothing — a pool must retire,
// not recycle, a session whose statement is still running.
func TestSessionResetWhileBusy(t *testing.T) {
	db := sessionFixture(t)
	target := slowTarget{
		Target:  MemTarget{DB: db},
		entered: make(chan struct{}),
		gate:    make(chan struct{}),
	}
	sess := NewSession(target)
	done := make(chan error, 1)
	go func() {
		_, err := sess.Exec("ASSERT Flies (Tweety);")
		done <- err
	}()
	<-target.entered // the ASSERT is now parked mid-statement
	if err := sess.Reset(); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("Reset while busy: %v, want ErrSessionBusy", err)
	}
	close(target.gate)
	if err := <-done; err != nil {
		t.Fatalf("statement after rejected Reset: %v", err)
	}
	// The rejected Reset did not clobber the committed result.
	out, err := sess.Exec("HOLDS Flies (Tweety);")
	if err != nil || strings.TrimSpace(out) != "true" {
		t.Fatalf("HOLDS = %q, %v; want true", out, err)
	}
}
