package hql

import (
	"fmt"
	"sort"
	"strings"
	"unicode"

	"hrdb/internal/catalog"
	"hrdb/internal/core"
)

// Dump serializes a database to an HQL script that, executed against an
// empty database, reproduces it: hierarchies (classes, instances, extra
// and deliberately redundant edges, preferences), relations, tuples and
// the exception policy. The output is deterministic.
func Dump(db *catalog.Database) (string, error) {
	var b strings.Builder
	b.WriteString("-- hrdb dump\n")

	switch db.Policy() {
	case catalog.WarnExceptions:
		b.WriteString("SET POLICY warn;\n")
	case catalog.ForbidExceptions:
		b.WriteString("SET POLICY forbid;\n")
	}

	for _, domain := range db.Hierarchies() {
		h, err := db.Hierarchy(domain)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\nCREATE HIERARCHY %s;\n", quote(domain))
		// Emit nodes parents-first.
		idx := h.TopoIndex()
		nodes := h.Nodes()
		sort.Slice(nodes, func(i, j int) bool {
			if idx[nodes[i]] != idx[nodes[j]] {
				return idx[nodes[i]] < idx[nodes[j]]
			}
			return nodes[i] < nodes[j]
		})
		for _, n := range nodes {
			if n == domain {
				continue
			}
			kw := "CLASS"
			if h.IsInstance(n) {
				kw = "INSTANCE"
			}
			parents := h.Parents(n)
			qp := make([]string, len(parents))
			for i, p := range parents {
				qp[i] = quote(p)
			}
			fmt.Fprintf(&b, "%s %s UNDER %s IN %s;\n", kw, quote(n), strings.Join(qp, ", "), quote(domain))
		}
		for _, pref := range h.Preferences() {
			fmt.Fprintf(&b, "PREFER %s OVER %s IN %s;\n", quote(pref[0]), quote(pref[1]), quote(domain))
		}
	}

	for _, name := range db.Relations() {
		r, err := db.Snapshot(name)
		if err != nil {
			return "", err
		}
		s := r.Schema()
		attrs := make([]string, s.Arity())
		for i := 0; i < s.Arity(); i++ {
			a := s.Attr(i)
			attrs[i] = fmt.Sprintf("%s: %s", quote(a.Name), quote(a.Domain.Domain()))
		}
		fmt.Fprintf(&b, "\nCREATE RELATION %s (%s);\n", quote(name), strings.Join(attrs, ", "))
		switch r.Mode() {
		case core.OnPath:
			fmt.Fprintf(&b, "SET MODE %s on_path;\n", quote(name))
		case core.NoPreemption:
			fmt.Fprintf(&b, "SET MODE %s none;\n", quote(name))
		}
		// Tuples inside one transaction so interleaved exceptions commit
		// regardless of emission order.
		tuples := r.Tuples()
		if len(tuples) > 0 {
			b.WriteString("BEGIN;\n")
			for _, t := range tuples {
				stmt := "ASSERT"
				if !t.Sign {
					stmt = "DENY"
				}
				vals := make([]string, len(t.Item))
				for i, v := range t.Item {
					vals[i] = quote(v)
				}
				fmt.Fprintf(&b, "%s %s (%s);\n", stmt, quote(name), strings.Join(vals, ", "))
			}
			b.WriteString("COMMIT;\n")
		}
	}
	return b.String(), nil
}

// quote wraps a name in single quotes when it is not a plain identifier.
func quote(name string) string {
	plain := name != ""
	for _, r := range name {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '.' {
			plain = false
			break
		}
	}
	// Avoid keywords being re-parsed as statement heads inside lists (the
	// grammar is positional, so bare keywords are fine as values; only
	// non-identifier characters need quoting).
	if plain {
		return name
	}
	return "'" + name + "'"
}
