package hql

import (
	"context"
	"fmt"
	"strings"
	"time"

	"hrdb/internal/obs"
)

// metricStatements counts every executed HQL statement, process-wide.
var metricStatements = obs.Default().Counter("hrdb_hql_statements_total")

// SetSlowQueryLog attaches a slow-query log to the session (nil detaches).
// Scripts slower than the log's threshold are recorded with per-stage
// timings. Like every Session method this must not race with ExecContext.
func (s *Session) SetSlowQueryLog(l *obs.SlowQueryLog) { s.slow = l }

// SetTracer attaches a tracer to the session (nil detaches): one span per
// executed script ("hql.exec") plus one per statement ("hql.<kind>").
func (s *Session) SetTracer(t obs.Tracer) { s.tracer = t }

// stmtName names a statement kind for stage labels and span names:
// "HoldsStmt" → "holds", "CreateHierarchyStmt" → "createhierarchy".
func stmtName(st Stmt) string {
	name := fmt.Sprintf("%T", st)
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	name = strings.TrimSuffix(name, "Stmt")
	return strings.ToLower(name)
}

// observed wraps run with the session's observability hooks. It is called
// only when a slow-query log or tracer is attached, so the plain path pays
// nothing for either.
func (s *Session) observed(ctx context.Context, input string) (string, error) {
	began := time.Now()
	var stages []obs.Stage
	out, err := s.run(ctx, input, &stages)
	total := time.Since(began)
	s.slow.Record(obs.SlowQuery{Time: began, Statement: input, Duration: total, Stages: stages})
	if s.tracer != nil {
		s.tracer.Span(obs.Span{
			Name:     "hql.exec",
			Start:    began,
			Duration: total,
			Attrs:    []obs.Label{{Key: "stages", Value: fmt.Sprint(len(stages))}},
			Err:      err,
		})
	}
	return out, err
}
