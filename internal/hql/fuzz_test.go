package hql

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that accepted inputs
// re-execute cleanly against a fresh database (errors are fine; crashes are
// not). The seeds cover every statement form.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"CREATE HIERARCHY Animal;",
		"CLASS Bird UNDER Animal;",
		"CLASS X IN D;",
		"INSTANCE Tweety UNDER Canary;",
		"EDGE Animal: Penguin -> Pamela;",
		"PREFER A OVER B IN D;",
		"CREATE RELATION Flies (Creature: Animal);",
		"DROP RELATION Flies;",
		"ASSERT Flies (Bird);",
		"DENY Flies (Penguin);",
		"RETRACT Flies (Penguin);",
		"HOLDS Flies (Tweety);",
		"WHY Flies (Tweety);",
		"SELECT FROM Flies WHERE Creature UNDER Penguin AS P;",
		"SELECT FROM Flies WHERE A = b AND C UNDER d;",
		"EXTENSION Flies;",
		"CONSOLIDATE Flies;",
		"EXPLICATE Flies ON (Creature);",
		"UNION A B AS C;",
		"INTERSECT A B AS C;",
		"DIFFERENCE A B AS C;",
		"JOIN A B AS C;",
		"PROJECT R ON (X, Y) AS P;",
		"SHOW HIERARCHIES; SHOW RELATIONS; SHOW RULES;",
		"SHOW HIERARCHY Animal; SHOW RELATION Flies;",
		"SET POLICY warn;",
		"BEGIN; ASSERT R (x); COMMIT;",
		"ROLLBACK;",
		"RULE p(?X) IF q(?X) AND isa(?X, C);",
		"INFER p(?X);",
		"-- just a comment\n",
		"ASSERT R ('quoted value', plain);",
		"';;';;",
		"?",
		"CREATE RELATION R (",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 4096 {
			return
		}
		stmts, err := Parse(input)
		if err != nil {
			// Errors must be SyntaxError-shaped, never panics.
			if !strings.Contains(err.Error(), "hql:") {
				t.Fatalf("non-hql error: %v", err)
			}
			return
		}
		// Execute against a throwaway database; runtime errors are fine.
		s := newSession()
		for range stmts {
			break
		}
		_, _ = s.Exec(input)
	})
}
