package hql

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"hrdb/internal/catalog"
)

// slowTarget wraps a MemTarget and parks Assert calls on a gate so a
// statement can be held mid-execution from a test. Entering Assert is
// announced on entered, making "the session is busy right now" a
// deterministic observation instead of a spin.
type slowTarget struct {
	Target
	entered chan struct{}
	gate    chan struct{}
}

func (t slowTarget) Assert(rel string, values ...string) error {
	t.entered <- struct{}{}
	<-t.gate
	return t.Target.Assert(rel, values...)
}

func sessionFixture(t *testing.T) *catalog.Database {
	t.Helper()
	db := catalog.New()
	sess := NewSession(MemTarget{DB: db})
	if _, err := sess.Exec(`
		CREATE HIERARCHY Animal;
		CLASS Bird IN Animal;
		INSTANCE Tweety UNDER Bird;
		CREATE RELATION Flies (Creature: Animal);
	`); err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return db
}

// TestSessionConcurrentMisuse pins the single-goroutine guard: a second
// ExecContext entered while a statement is executing fails loudly with
// ErrSessionBusy instead of interleaving with (and corrupting) the first.
func TestSessionConcurrentMisuse(t *testing.T) {
	db := sessionFixture(t)
	entered := make(chan struct{})
	gate := make(chan struct{})
	sess := NewSession(slowTarget{Target: MemTarget{DB: db}, entered: entered, gate: gate})

	firstErr := make(chan error, 1)
	go func() {
		_, err := sess.Exec("ASSERT Flies (Bird);")
		firstErr <- err
	}()
	<-entered // the first statement is parked inside Assert, busy held
	if _, err := sess.Exec("HOLDS Flies (Tweety);"); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("concurrent Exec = %v, want ErrSessionBusy", err)
	}
	close(gate)
	if err := <-firstErr; err != nil {
		t.Fatalf("first statement: %v", err)
	}
	// Guard released: the session works again.
	out, err := sess.Exec("HOLDS Flies (Tweety);")
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	if strings.TrimSpace(out) != "true" {
		t.Fatalf("HOLDS = %q, want true", out)
	}
}

// TestSessionConcurrentMisuseRace hammers one session from many goroutines
// under the race detector: every call either succeeds or returns
// ErrSessionBusy, and transaction state survives intact.
func TestSessionConcurrentMisuseRace(t *testing.T) {
	db := sessionFixture(t)
	sess := NewSession(MemTarget{DB: db})
	var wg sync.WaitGroup
	var busy, ok atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, err := sess.Exec("HOLDS Flies (Tweety);")
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrSessionBusy):
					busy.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatal("no call succeeded")
	}
	if sess.InTx() {
		t.Fatal("stray transaction state after concurrent misuse")
	}
}

// TestSessionBusyDoesNotClobberTx: a rejected concurrent call must not
// disturb an open transaction.
func TestSessionBusyDoesNotClobberTx(t *testing.T) {
	db := sessionFixture(t)
	entered := make(chan struct{})
	gate := make(chan struct{})
	sess := NewSession(slowTarget{Target: MemTarget{DB: db}, entered: entered, gate: gate})
	if _, err := sess.Exec("BEGIN; ASSERT Flies (Bird);"); err != nil {
		t.Fatalf("begin: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		// slowTarget only parks direct Asserts; COMMIT goes through ApplyTx,
		// so the script commits the transaction, then parks on the direct
		// assert that follows it.
		_, err := sess.ExecContext(context.Background(), "COMMIT; ASSERT Flies (Tweety);")
		done <- err
	}()
	<-entered // COMMIT done, the direct assert is parked, busy held
	if _, err := sess.Exec("SHOW RELATIONS;"); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("concurrent Exec = %v, want ErrSessionBusy", err)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("commit script: %v", err)
	}
	v, err := db.Holds("Flies", "Tweety")
	if err != nil || !v {
		t.Fatalf("Holds(Tweety) = %v, %v; want true", v, err)
	}
}

// TestReadOnlyClassification is the table the network client's retry policy
// relies on: only statements classified read-only may be auto-retried.
func TestReadOnlyClassification(t *testing.T) {
	cases := []struct {
		input string
		want  bool
	}{
		{"HOLDS Flies (Tweety);", true},
		{"WHY Flies (Tweety);", true},
		{"EXTENSION Flies;", true},
		{"COUNT Flies;", true},
		{"DUMP;", true},
		{"SHOW RELATIONS;", true},
		{"SHOW HIERARCHY Animal;", true},
		{"INFER flies(?X);", true},
		{"SELECT FROM Flies WHERE Creature UNDER Bird;", true},
		{"HOLDS Flies (Tweety); SHOW RELATIONS;", true},

		{"SELECT FROM Flies WHERE Creature UNDER Bird AS F2;", false},
		{"ASSERT Flies (Bird);", false},
		{"DENY Flies (Penguin);", false},
		{"RETRACT Flies (Bird);", false},
		{"CREATE HIERARCHY X;", false},
		{"CREATE RELATION R (A: Animal);", false},
		{"DROP RELATION Flies;", false},
		{"CONSOLIDATE Flies;", false},
		{"EXPLICATE Flies;", false},
		{"UNION A B AS C;", false},
		{"JOIN A B AS C;", false},
		{"PROJECT Flies ON (Creature) AS P;", false},
		{"RULE f(?X) IF g(?X);", false},
		{"SET POLICY warn;", false},
		{"SET MODE Flies on_path;", false},
		{"BEGIN;", false},
		{"COMMIT;", false},
		{"ROLLBACK;", false},
		{"DROP NODE Tweety IN Animal;", false},
		{"HOLDS Flies (Tweety); ASSERT Flies (Bird);", false},
		{"not hql at all", false},
		{"", false},
	}
	for _, c := range cases {
		if got := ReadOnlyScript(c.input); got != c.want {
			t.Errorf("ReadOnlyScript(%q) = %v, want %v", c.input, got, c.want)
		}
	}
}
