package hql

import (
	"reflect"
	"strings"
	"testing"

	"hrdb/internal/catalog"
	"hrdb/internal/storage"
)

// buildRichDB constructs a database exercising every dumpable feature:
// multiple hierarchies, multiple inheritance, a deliberately redundant
// edge, preferences, policy, and relations with mixed-sign tuples.
func buildRichDB(t *testing.T) *catalog.Database {
	t.Helper()
	db := catalog.New()
	db.SetPolicy(catalog.WarnExceptions)

	h, err := db.CreateHierarchy("Animal")
	if err != nil {
		t.Fatal(err)
	}
	steps := []error{
		h.AddClass("Bird"),
		h.AddClass("Penguin", "Bird"),
		h.AddClass("GP", "Penguin"),
		h.AddClass("AFP", "Penguin"),
		h.AddInstance("Patricia", "GP", "AFP"),
		h.AddInstance("Pamela", "AFP"),
		h.AddEdge("Penguin", "Pamela"), // deliberate redundancy
		h.Prefer("AFP", "GP"),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	h2, err := db.CreateHierarchy("Color")
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.AddInstance("Red Wine"); err != nil { // needs quoting
		t.Fatal(err)
	}

	if _, err := db.CreateRelation("Flies", catalog.AttrSpec{Name: "Creature", Domain: "Animal"}); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	tx.Assert("Flies", "Bird")
	tx.Deny("Flies", "Penguin")
	tx.Assert("Flies", "AFP")
	tx.Assert("Flies", "Pamela") // resolves the redundant-edge conflict at Pamela
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("Likes",
		catalog.AttrSpec{Name: "Creature", Domain: "Animal"},
		catalog.AttrSpec{Name: "Hue", Domain: "Color"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Assert("Likes", "Bird", "Red Wine"); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestDumpRoundTrip: dump → exec into a fresh database → identical specs.
func TestDumpRoundTrip(t *testing.T) {
	db := buildRichDB(t)
	script, err := Dump(db)
	if err != nil {
		t.Fatal(err)
	}

	fresh := catalog.New()
	sess := NewSession(MemTarget{DB: fresh})
	if _, err := sess.Exec(script); err != nil {
		t.Fatalf("replaying dump: %v\nscript:\n%s", err, script)
	}
	// The policy statement makes the replay emit warnings for exceptions;
	// drain them so the comparison is clean.
	fresh.Warnings()

	want := storage.SnapshotDatabase(db)
	got := storage.SnapshotDatabase(fresh)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip differs\nwant %+v\ngot  %+v\nscript:\n%s", want, got, script)
	}
}

// TestDumpDeterministic.
func TestDumpDeterministic(t *testing.T) {
	db := buildRichDB(t)
	a, err := Dump(db)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Dump(db)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("dump not deterministic")
	}
}

// TestDumpQuoting: names with spaces survive.
func TestDumpQuoting(t *testing.T) {
	db := buildRichDB(t)
	script, err := Dump(db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(script, "'Red Wine'") {
		t.Fatalf("quoting missing:\n%s", script)
	}
}

// TestDumpPreservesMode: non-default preemption modes survive the round
// trip.
func TestDumpPreservesMode(t *testing.T) {
	db := buildRichDB(t)
	if err := db.SetMode("Likes", 1); err != nil { // OnPath
		t.Fatal(err)
	}
	script, err := Dump(db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(script, "SET MODE Likes on_path;") {
		t.Fatalf("mode missing:\n%s", script)
	}
	fresh := catalog.New()
	if _, err := NewSession(MemTarget{DB: fresh}).Exec(script); err != nil {
		t.Fatal(err)
	}
	fresh.Warnings()
	r, err := fresh.Relation("Likes")
	if err != nil {
		t.Fatal(err)
	}
	if int(r.Mode()) != 1 {
		t.Fatalf("mode = %v", r.Mode())
	}
}

// TestDumpSemantics: the replayed database answers like the original.
func TestDumpSemantics(t *testing.T) {
	db := buildRichDB(t)
	script, err := Dump(db)
	if err != nil {
		t.Fatal(err)
	}
	fresh := catalog.New()
	sess := NewSession(MemTarget{DB: fresh})
	if _, err := sess.Exec(script); err != nil {
		t.Fatal(err)
	}
	for _, q := range []struct {
		who  string
		want bool
	}{{"Patricia", true}, {"Pamela", true}} {
		got, err := fresh.Holds("Flies", q.who)
		if err != nil {
			t.Fatalf("%s: %v", q.who, err)
		}
		if got != q.want {
			t.Errorf("replayed Holds(%s) = %v", q.who, got)
		}
	}
}
