package hql

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"hrdb/internal/catalog"
	"hrdb/internal/core"
)

// stubViews is a minimal ViewCatalog over a MemTarget: CreateView evaluates
// the defining query once against the live database and freezes the result.
type stubViews struct {
	MemTarget
	views map[string]*core.Relation
	defs  map[string]string
}

func (s *stubViews) CreateView(name, query string) error {
	if _, ok := s.views[name]; ok {
		return fmt.Errorf("view %q exists", name)
	}
	st, err := Parse(query)
	if err != nil {
		return err
	}
	if err := Materializable(st[0]); err != nil {
		return err
	}
	var rel string
	switch q := st[0].(type) {
	case ExtensionStmt:
		rel = q.Relation
	case SelectStmt:
		rel = q.Relation
	case CountStmt:
		rel = q.Relation
	}
	snap, err := s.DB.Snapshot(rel)
	if err != nil {
		return err
	}
	flat, err := snap.Explicate()
	if err != nil {
		return err
	}
	s.views[name] = flat
	s.defs[name] = query
	return nil
}

func (s *stubViews) DropView(name string) error {
	if _, ok := s.views[name]; !ok {
		return fmt.Errorf("no view %q", name)
	}
	delete(s.views, name)
	delete(s.defs, name)
	return nil
}

func (s *stubViews) ViewSnapshot(name string) (*core.Relation, error) {
	v, ok := s.views[name]
	if !ok {
		return nil, fmt.Errorf("no view %q", name)
	}
	return v, nil
}

func (s *stubViews) ViewNames() []string {
	var out []string
	for n := range s.views {
		out = append(out, n)
	}
	return out
}

func (s *stubViews) ViewStatus(name string) (string, error) {
	d, ok := s.defs[name]
	if !ok {
		return "", fmt.Errorf("no view %q", name)
	}
	return name + ": " + d, nil
}

func seedViewBase(t *testing.T, db *catalog.Database) {
	t.Helper()
	if _, err := NewSession(MemTarget{DB: db}).Exec(`
		CREATE HIERARCHY D;
		CLASS C IN D;
		INSTANCE x UNDER C; INSTANCE y UNDER C;
		CREATE RELATION R (A: D);
		ASSERT R (C);
	`); err != nil {
		t.Fatal(err)
	}
}

// TestViewStatementsWithoutCatalog: every view statement against a plain
// MemTarget reports ErrNoViews — view support is an optional interface.
func TestViewStatementsWithoutCatalog(t *testing.T) {
	db := catalog.New()
	seedViewBase(t, db)
	sess := NewSession(MemTarget{DB: db})
	for _, stmt := range []string{
		"CREATE MATERIALIZED VIEW v AS EXTENSION R;",
		"DROP VIEW v;",
		"SHOW VIEWS;",
		"SHOW VIEW v;",
	} {
		if _, err := sess.Exec(stmt); !errors.Is(err, ErrNoViews) {
			t.Fatalf("%s = %v, want ErrNoViews", stmt, err)
		}
	}
}

// TestViewStatementsWithCatalog drives the full view statement surface, and
// the read fallbacks that let a view name stand in for a relation.
func TestViewStatementsWithCatalog(t *testing.T) {
	db := catalog.New()
	seedViewBase(t, db)
	vt := &stubViews{
		MemTarget: MemTarget{DB: db},
		views:     map[string]*core.Relation{},
		defs:      map[string]string{},
	}
	sess := NewSession(vt)

	out, err := sess.Exec("CREATE MATERIALIZED VIEW v AS EXTENSION R;")
	if err != nil || !strings.Contains(out, "created materialized view v") {
		t.Fatalf("create view = %q, %v", out, err)
	}
	if got := vt.defs["v"]; got != "EXTENSION R" {
		t.Fatalf("canonical query = %q, want EXTENSION R", got)
	}

	if out, err = sess.Exec("SHOW VIEWS;"); err != nil || strings.TrimSpace(out) != "v" {
		t.Fatalf("SHOW VIEWS = %q, %v", out, err)
	}
	if out, err = sess.Exec("SHOW VIEW v;"); err != nil || !strings.Contains(out, "EXTENSION R") {
		t.Fatalf("SHOW VIEW v = %q, %v", out, err)
	}

	// Reads resolve the view name where a relation is expected.
	if out, err = sess.Exec("EXTENSION v;"); err != nil || !strings.Contains(out, "(x)") || !strings.Contains(out, "(y)") {
		t.Fatalf("EXTENSION v = %q, %v", out, err)
	}
	if out, err = sess.Exec("SELECT FROM v WHERE A UNDER C;"); err != nil || !strings.Contains(out, "x") {
		t.Fatalf("SELECT over view = %q, %v", out, err)
	}
	if out, err = sess.Exec("COUNT v;"); err != nil || !strings.Contains(out, "2") {
		t.Fatalf("COUNT v = %q, %v", out, err)
	}
	if out, err = sess.Exec("HOLDS v (x);"); err != nil || !strings.Contains(out, "true") {
		t.Fatalf("HOLDS over view = %q, %v", out, err)
	}
	if out, err = sess.Exec("SHOW RELATION v;"); err != nil || !strings.Contains(out, "x") {
		t.Fatalf("SHOW RELATION v = %q, %v", out, err)
	}

	// A real relation still wins over the fallback; an unknown name still
	// reports the catalog's error.
	if out, err = sess.Exec("EXTENSION R;"); err != nil || !strings.Contains(out, "(x)") {
		t.Fatalf("EXTENSION R = %q, %v", out, err)
	}
	if _, err = sess.Exec("EXTENSION nosuch;"); err == nil {
		t.Fatal("EXTENSION nosuch succeeded")
	}
	if _, err = sess.Exec("HOLDS nosuch (x);"); err == nil {
		t.Fatal("HOLDS nosuch succeeded")
	}

	if out, err = sess.Exec("DROP VIEW v;"); err != nil || !strings.Contains(out, "dropped view v") {
		t.Fatalf("drop view = %q, %v", out, err)
	}
	if _, err = sess.Exec("EXTENSION v;"); err == nil {
		t.Fatal("read of a dropped view succeeded")
	}
	if _, err = sess.Exec("DROP VIEW v;"); err == nil {
		t.Fatal("double drop succeeded")
	}
}

// TestMaterializable pins which statements may define a view.
func TestMaterializable(t *testing.T) {
	for _, tc := range []struct {
		query string
		ok    bool
	}{
		{"EXTENSION R", true},
		{"COUNT R", true},
		{"SELECT FROM R WHERE A UNDER C", true},
		{"SELECT FROM R WHERE A UNDER C AS S", false},
		{"ASSERT R (x)", false},
		{"SHOW VIEWS", false},
	} {
		st, err := Parse(tc.query + ";")
		if err != nil {
			t.Fatalf("parse %q: %v", tc.query, err)
		}
		if err := Materializable(st[0]); (err == nil) != tc.ok {
			t.Fatalf("Materializable(%q) = %v, want ok=%v", tc.query, err, tc.ok)
		}
	}

	// The parser enforces the same rule inline.
	if _, err := Parse("CREATE MATERIALIZED VIEW v AS ASSERT R (x);"); err == nil {
		t.Fatal("parser accepted a mutating view query")
	}
}
