package hql

import (
	"errors"
	"strings"
	"testing"

	"hrdb/internal/catalog"
)

func newSession() *Session {
	return NewSession(MemTarget{DB: catalog.New()})
}

// setupScript builds the Figure 1 world through HQL itself.
const setupScript = `
CREATE HIERARCHY Animal;
CLASS Bird UNDER Animal;
CLASS Canary UNDER Bird;
INSTANCE Tweety UNDER Canary;
CLASS Penguin UNDER Bird;
CLASS GalapagosPenguin UNDER Penguin;
CLASS AmazingFlyingPenguin UNDER Penguin;
INSTANCE Paul UNDER GalapagosPenguin;
INSTANCE Patricia UNDER GalapagosPenguin, AmazingFlyingPenguin;
INSTANCE Pamela UNDER AmazingFlyingPenguin;
INSTANCE Peter UNDER AmazingFlyingPenguin;
CREATE RELATION Flies (Creature: Animal);
ASSERT Flies (Bird);
DENY Flies (Penguin);
ASSERT Flies (AmazingFlyingPenguin);
ASSERT Flies (Peter);
`

func setup(t *testing.T) *Session {
	t.Helper()
	s := newSession()
	if _, err := s.Exec(setupScript); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex("ASSERT R (a, 'b c'); -- comment\nX")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	want := []string{"ASSERT", "R", "(", "a", ",", "b c", ")", ";", "X", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	_ = kinds
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := lex("@"); err == nil {
		t.Fatal("bad char accepted")
	}
	var se *SyntaxError
	_, err := lex("@")
	if !errors.As(err, &se) || se.Pos != 1 {
		t.Fatalf("got %v", err)
	}
}

func TestLexerArrow(t *testing.T) {
	toks, err := lex("A -> B")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].kind != tokArrow {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"FROB x",
		"CREATE NOTHING x",
		"CLASS x",
		"SELECT Flies",
		"ASSERT Flies",
		"UNION a b",
		"SHOW NOTHING",
		"ASSERT R (a) extra",
		"EDGE d p -> c",
		"PREFER a b IN d",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestEvaluationStatements(t *testing.T) {
	s := setup(t)
	out, err := s.Exec("HOLDS Flies (Tweety);")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "true" {
		t.Fatalf("out = %q", out)
	}
	out, err = s.Exec("HOLDS Flies (Paul)")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "false" {
		t.Fatalf("out = %q", out)
	}
}

func TestWhyStatement(t *testing.T) {
	s := setup(t)
	out, err := s.Exec("WHY Flies (Patricia);")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"= true", "AmazingFlyingPenguin", "applicable", "Penguin"} {
		if !strings.Contains(out, want) {
			t.Errorf("WHY output missing %q:\n%s", want, out)
		}
	}
	out, err = s.Exec("WHY Flies (Animal);")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "by default") {
		t.Errorf("default WHY missing: %s", out)
	}
}

func TestSelectStatement(t *testing.T) {
	s := setup(t)
	out, err := s.Exec("SELECT FROM Flies WHERE Creature UNDER Penguin;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Penguin") {
		t.Fatalf("out = %q", out)
	}
	// AS stores the result.
	_, err = s.Exec("SELECT FROM Flies WHERE Creature UNDER Penguin AS PenguinFlies;")
	if err != nil {
		t.Fatal(err)
	}
	out, err = s.Exec("EXTENSION PenguinFlies;")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Pamela", "Patricia", "Peter"} {
		if !strings.Contains(out, want) {
			t.Errorf("extension missing %q: %s", want, out)
		}
	}
	if strings.Contains(out, "Tweety") || strings.Contains(out, "(Paul)") {
		t.Errorf("extension has extra rows: %s", out)
	}
}

func TestExtensionAndConsolidate(t *testing.T) {
	s := setup(t)
	out, err := s.Exec("EXTENSION Flies;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4 atomic items") {
		t.Fatalf("out = %q", out)
	}
	// Add a redundant tuple, consolidate it away.
	if _, err := s.Exec("ASSERT Flies (Tweety); CONSOLIDATE Flies;"); err != nil {
		t.Fatal(err)
	}
	out, err = s.Exec("SHOW RELATION Flies;")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "Tweety") {
		t.Fatalf("redundant tuple survived: %s", out)
	}
}

func TestExplicateStatement(t *testing.T) {
	s := setup(t)
	out, err := s.Exec("EXPLICATE Flies;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "explicated Flies") {
		t.Fatalf("out = %q", out)
	}
	out, _ = s.Exec("SHOW RELATION Flies;")
	if strings.Contains(out, "∀") {
		t.Fatalf("class values survived explication: %s", out)
	}
}

func TestSetOpsAndJoinStatements(t *testing.T) {
	s := setup(t)
	script := `
CREATE RELATION JillLoves (Creature: Animal);
ASSERT JillLoves (Bird);
UNION Flies JillLoves AS Both;
INTERSECT Flies JillLoves AS Shared;
DIFFERENCE JillLoves Flies AS OnlyJill;
`
	if _, err := s.Exec(script); err != nil {
		t.Fatal(err)
	}
	out, err := s.Exec("EXTENSION OnlyJill;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 atomic items") && !strings.Contains(out, "(Paul)") {
		t.Fatalf("OnlyJill = %s", out)
	}
}

func TestProjectStatement(t *testing.T) {
	s := setup(t)
	script := `
CREATE HIERARCHY Color;
INSTANCE Redd IN Color;
CREATE RELATION Likes (Creature: Animal, Hue: Color);
ASSERT Likes (Bird, Redd);
PROJECT Likes ON (Creature) AS L2;
`
	if _, err := s.Exec(script); err != nil {
		t.Fatal(err)
	}
	out, err := s.Exec("HOLDS L2 (Tweety);")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "true" {
		t.Fatalf("out = %q", out)
	}
}

func TestShowStatements(t *testing.T) {
	s := setup(t)
	out, err := s.Exec("SHOW HIERARCHIES; SHOW RELATIONS;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Animal") || !strings.Contains(out, "Flies") {
		t.Fatalf("out = %q", out)
	}
	out, err = s.Exec("SHOW HIERARCHY Animal;")
	if err != nil {
		t.Fatal(err)
	}
	// Patricia appears under both parents, once marked with *.
	if strings.Count(out, "Patricia") != 2 || !strings.Contains(out, "Patricia ·") {
		t.Fatalf("tree:\n%s", out)
	}
}

func TestTransactionStatements(t *testing.T) {
	s := setup(t)
	// A conflicting update alone fails…
	if _, err := s.Exec("DENY Flies (GalapagosPenguin);"); err == nil {
		t.Fatal("conflicting deny accepted")
	}
	// …but commits with its resolution.
	script := `
BEGIN;
DENY Flies (GalapagosPenguin);
ASSERT Flies (Patricia);
COMMIT;
`
	if _, err := s.Exec(script); err != nil {
		t.Fatal(err)
	}
	out, _ := s.Exec("HOLDS Flies (Paul);")
	if strings.TrimSpace(out) != "false" {
		t.Fatalf("Paul = %q", out)
	}
	// Rollback discards.
	if _, err := s.Exec("BEGIN; ASSERT Flies (Paul); ROLLBACK;"); err != nil {
		t.Fatal(err)
	}
	out, _ = s.Exec("HOLDS Flies (Paul);")
	if strings.TrimSpace(out) != "false" {
		t.Fatalf("rollback leaked: %q", out)
	}
	// Control errors.
	if _, err := s.Exec("COMMIT;"); !errors.Is(err, ErrNoTx) {
		t.Fatalf("got %v", err)
	}
	if _, err := s.Exec("ROLLBACK;"); !errors.Is(err, ErrNoTx) {
		t.Fatalf("got %v", err)
	}
	if _, err := s.Exec("BEGIN; BEGIN;"); !errors.Is(err, ErrInTx) {
		t.Fatalf("got %v", err)
	}
	s2 := setup(t)
	if s2.InTx() {
		t.Fatal("fresh session in tx")
	}
}

func TestPolicyStatement(t *testing.T) {
	s := setup(t)
	if _, err := s.Exec("SET POLICY forbid;"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("DENY Flies (Tweety);"); !errors.Is(err, catalog.ErrExceptionForbidden) {
		t.Fatalf("got %v", err)
	}
	if _, err := s.Exec("SET POLICY warn;"); err != nil {
		t.Fatal(err)
	}
	out, err := s.Exec("DENY Flies (Tweety);")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "warning:") {
		t.Fatalf("out = %q", out)
	}
	if _, err := s.Exec("SET POLICY nonsense;"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestEdgeAndPreferStatements(t *testing.T) {
	s := setup(t)
	// Deliberate redundant edge (appendix: Pamela is also directly a
	// Penguin) — evaluation of Pamela now conflicts.
	if _, err := s.Exec("EDGE Animal: Penguin -> Pamela;"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("HOLDS Flies (Pamela);"); err == nil {
		t.Fatal("expected conflict after redundant edge")
	}
	// Preference resolves a GP/AFP standoff.
	s2 := setup(t)
	script := `
BEGIN; DENY Flies (GalapagosPenguin); ASSERT Flies (Patricia); COMMIT;
RETRACT Flies (Patricia);
`
	if _, err := s2.Exec(script); err == nil {
		t.Fatal("retracting the resolver should fail")
	}
	if _, err := s2.Exec("PREFER AmazingFlyingPenguin OVER GalapagosPenguin IN Animal;"); err != nil {
		t.Fatal(err)
	}
	// Now the resolver is removable: AFP preempts GP.
	if _, err := s2.Exec("RETRACT Flies (Patricia);"); err != nil {
		t.Fatal(err)
	}
	out, _ := s2.Exec("HOLDS Flies (Patricia);")
	if strings.TrimSpace(out) != "true" {
		t.Fatalf("Patricia = %q", out)
	}
}

func TestClassDomainResolution(t *testing.T) {
	s := newSession()
	script := `
CREATE HIERARCHY A;
CREATE HIERARCHY B;
CLASS x IN A;
CLASS y UNDER x;
`
	if _, err := s.Exec(script); err != nil {
		t.Fatal(err)
	}
	// Ambiguous: both hierarchies contain their roots only; a parent name
	// present in both is ambiguous.
	s2 := newSession()
	script2 := `
CREATE HIERARCHY A;
CREATE HIERARCHY B;
CLASS shared IN A;
CLASS shared IN B;
CLASS z UNDER shared;
`
	if _, err := s2.Exec(script2); err == nil {
		t.Fatal("ambiguous parent accepted")
	}
	// Unknown parent.
	s3 := newSession()
	if _, err := s3.Exec("CREATE HIERARCHY A; CLASS z UNDER nothing;"); err == nil {
		t.Fatal("unknown parent accepted")
	}
}

func TestDropRelationStatement(t *testing.T) {
	s := setup(t)
	if _, err := s.Exec("DROP RELATION Flies;"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("HOLDS Flies (Tweety);"); !errors.Is(err, catalog.ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestSelectEqShorthand(t *testing.T) {
	s := setup(t)
	out, err := s.Exec("SELECT FROM Flies WHERE Creature = Tweety;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Tweety") {
		t.Fatalf("out = %q", out)
	}
}

// TestSetModeStatement: preemption switching from HQL (paper appendix).
func TestSetModeStatement(t *testing.T) {
	s := setup(t)
	// Off-path default: Patricia flies.
	out, _ := s.Exec("HOLDS Flies (Patricia);")
	if strings.TrimSpace(out) != "true" {
		t.Fatalf("out = %q", out)
	}
	// On-path: Patricia conflicts.
	if _, err := s.Exec("SET MODE Flies on_path;"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("HOLDS Flies (Patricia);"); err == nil {
		t.Fatal("expected on-path conflict")
	}
	if _, err := s.Exec("SET MODE Flies off_path;"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("SET MODE Flies sideways;"); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, err := s.Exec("SET MODE Nope none;"); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

// TestDropNodeStatement: referential integrity for schema evolution.
func TestDropNodeStatement(t *testing.T) {
	s := setup(t)
	// Peter is referenced by a tuple: refuse.
	if _, err := s.Exec("DROP NODE Peter IN Animal;"); err == nil {
		t.Fatal("referenced node dropped")
	}
	// Retract first, then drop succeeds.
	if _, err := s.Exec("RETRACT Flies (Peter); DROP NODE Peter IN Animal;"); err != nil {
		t.Fatal(err)
	}
	// Gone from the hierarchy.
	out, _ := s.Exec("SHOW HIERARCHY Animal;")
	if strings.Contains(out, "Peter") {
		t.Fatalf("Peter survived:\n%s", out)
	}
	// Non-leaf refuses; root refuses; unknown refuses.
	if _, err := s.Exec("DROP NODE Penguin IN Animal;"); err == nil {
		t.Fatal("non-leaf dropped")
	}
	if _, err := s.Exec("DROP NODE Animal IN Animal;"); err == nil {
		t.Fatal("root dropped")
	}
	if _, err := s.Exec("DROP NODE Ghost IN Animal;"); err == nil {
		t.Fatal("unknown dropped")
	}
}

// TestCountStatement: COUNT and COUNT BY over extensions, plus DUMP.
func TestCountStatement(t *testing.T) {
	s := setup(t)
	out, err := s.Exec("COUNT Flies;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "count = 4") {
		t.Fatalf("out = %q", out)
	}
	out, err = s.Exec("COUNT Flies BY (Creature);")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Creature=Tweety: 1") {
		t.Fatalf("out = %q", out)
	}
	if _, err := s.Exec("COUNT Nope;"); err == nil {
		t.Fatal("unknown relation accepted")
	}
	// DUMP emits a replayable script.
	out, err = s.Exec("DUMP;")
	if err != nil {
		t.Fatal(err)
	}
	s2 := newSession()
	if _, err := s2.Exec(out); err != nil {
		t.Fatalf("replay failed: %v\nscript:\n%s", err, out)
	}
	got, err := s2.Exec("HOLDS Flies (Patricia);")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(got) != "true" {
		t.Fatalf("replayed DB answered %q", got)
	}
}

func TestMultiStatementOutputAccumulates(t *testing.T) {
	s := setup(t)
	out, err := s.Exec("HOLDS Flies (Tweety); HOLDS Flies (Paul);")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "true") || !strings.Contains(out, "false") {
		t.Fatalf("out = %q", out)
	}
}
