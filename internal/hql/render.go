package hql

import (
	"fmt"
	"strings"
)

// Render serializes a parsed statement back to HQL text (without the
// trailing semicolon) such that Parse(Render(st)) yields st again. A shard
// coordinator uses it to forward statements it routed: the coordinator
// parses once to classify (ShardOf) and re-renders the canonical text for
// the shard(s) that execute it, so quoting, keyword casing, and clause
// order are uniform regardless of how the client spelled the statement.
func Render(st Stmt) string {
	switch st := st.(type) {
	case CreateHierarchyStmt:
		return "CREATE HIERARCHY " + quote(st.Domain)
	case ClassStmt:
		return renderNode("CLASS", st.Name, st.Parents, st.Domain)
	case InstanceStmt:
		return renderNode("INSTANCE", st.Name, st.Parents, st.Domain)
	case EdgeStmt:
		return fmt.Sprintf("EDGE %s: %s -> %s", quote(st.Domain), quote(st.Parent), quote(st.Child))
	case PreferStmt:
		return fmt.Sprintf("PREFER %s OVER %s IN %s", quote(st.Stronger), quote(st.Weaker), quote(st.Domain))
	case CreateRelationStmt:
		attrs := make([]string, len(st.Attrs))
		for i, a := range st.Attrs {
			attrs[i] = quote(a[0]) + ": " + quote(a[1])
		}
		return fmt.Sprintf("CREATE RELATION %s (%s)", quote(st.Name), strings.Join(attrs, ", "))
	case DropRelationStmt:
		return "DROP RELATION " + quote(st.Name)
	case AssertStmt:
		kw := "ASSERT"
		if !st.Sign {
			kw = "DENY"
		}
		return fmt.Sprintf("%s %s (%s)", kw, quote(st.Relation), quoteList(st.Values))
	case RetractStmt:
		return fmt.Sprintf("RETRACT %s (%s)", quote(st.Relation), quoteList(st.Values))
	case HoldsStmt:
		return fmt.Sprintf("HOLDS %s (%s)", quote(st.Relation), quoteList(st.Values))
	case WhyStmt:
		return fmt.Sprintf("WHY %s (%s)", quote(st.Relation), quoteList(st.Values))
	case SelectStmt:
		var b strings.Builder
		b.WriteString("SELECT FROM ")
		b.WriteString(quote(st.Relation))
		for i, c := range st.Conds {
			if i == 0 {
				b.WriteString(" WHERE ")
			} else {
				b.WriteString(" AND ")
			}
			b.WriteString(quote(c[0]))
			b.WriteString(" UNDER ")
			b.WriteString(quote(c[1]))
		}
		if st.As != "" {
			b.WriteString(" AS ")
			b.WriteString(quote(st.As))
		}
		return b.String()
	case ExtensionStmt:
		return "EXTENSION " + quote(st.Relation)
	case ConsolidateStmt:
		return "CONSOLIDATE " + quote(st.Relation)
	case ExplicateStmt:
		if len(st.Attrs) == 0 {
			return "EXPLICATE " + quote(st.Relation)
		}
		return fmt.Sprintf("EXPLICATE %s ON (%s)", quote(st.Relation), quoteList(st.Attrs))
	case BinOpStmt:
		return fmt.Sprintf("%s %s %s AS %s", strings.ToUpper(st.Op), quote(st.Left), quote(st.Right), quote(st.As))
	case ProjectStmt:
		return fmt.Sprintf("PROJECT %s ON (%s) AS %s", quote(st.Relation), quoteList(st.Attrs), quote(st.As))
	case CreateViewStmt:
		// Query is already canonical (the parser stores Render of the
		// defining statement), so it embeds verbatim.
		return fmt.Sprintf("CREATE MATERIALIZED VIEW %s AS %s", quote(st.Name), st.Query)
	case DropViewStmt:
		return "DROP VIEW " + quote(st.Name)
	case ShowStmt:
		switch st.What {
		case "hierarchy", "relation", "view":
			return fmt.Sprintf("SHOW %s %s", strings.ToUpper(st.What), quote(st.Target))
		default:
			return "SHOW " + strings.ToUpper(st.What)
		}
	case SetPolicyStmt:
		return "SET POLICY " + st.Policy
	case SetModeStmt:
		return fmt.Sprintf("SET MODE %s %s", quote(st.Relation), st.Mode)
	case DropNodeStmt:
		return fmt.Sprintf("DROP NODE %s IN %s", quote(st.Name), quote(st.Domain))
	case RuleStmt:
		var b strings.Builder
		b.WriteString("RULE ")
		b.WriteString(renderAtom(st.Head))
		for i, a := range st.Body {
			if i == 0 {
				b.WriteString(" IF ")
			} else {
				b.WriteString(" AND ")
			}
			if a.Negated {
				b.WriteString("NOT ")
			}
			b.WriteString(renderAtom(a))
		}
		return b.String()
	case InferStmt:
		return "INFER " + renderAtom(st.Goal)
	case CountStmt:
		if len(st.By) == 0 {
			return "COUNT " + quote(st.Relation)
		}
		return fmt.Sprintf("COUNT %s BY (%s)", quote(st.Relation), quoteList(st.By))
	case DumpStmt:
		return "DUMP"
	case ExplainStmt:
		return "EXPLAIN " + Render(st.Inner)
	case BeginStmt:
		return "BEGIN"
	case CommitStmt:
		return "COMMIT"
	case RollbackStmt:
		return "ROLLBACK"
	default:
		// Unreachable for statements produced by Parse; loud for new kinds
		// whose renderer was forgotten.
		return fmt.Sprintf("-- unrenderable statement %T", st)
	}
}

// RenderScript renders statements as a semicolon-terminated script.
func RenderScript(stmts []Stmt) string {
	var b strings.Builder
	for _, st := range stmts {
		b.WriteString(Render(st))
		b.WriteString(";\n")
	}
	return b.String()
}

// renderNode renders CLASS/INSTANCE with their optional clauses.
func renderNode(kw, name string, parents []string, domain string) string {
	var b strings.Builder
	b.WriteString(kw)
	b.WriteString(" ")
	b.WriteString(quote(name))
	if len(parents) > 0 {
		b.WriteString(" UNDER ")
		b.WriteString(quoteList(parents))
	}
	if domain != "" {
		b.WriteString(" IN ")
		b.WriteString(quote(domain))
	}
	return b.String()
}

// renderAtom renders pred(arg, …); '?'-prefixed variables pass through the
// lexer unquoted, so they are emitted as-is.
func renderAtom(a AtomSpec) string {
	args := make([]string, len(a.Args))
	for i, arg := range a.Args {
		if strings.HasPrefix(arg, "?") {
			args[i] = arg
		} else {
			args[i] = quote(arg)
		}
	}
	return fmt.Sprintf("%s(%s)", quote(a.Pred), strings.Join(args, ", "))
}

// quoteList quotes and comma-joins a value list.
func quoteList(vals []string) string {
	q := make([]string, len(vals))
	for i, v := range vals {
		q[i] = quote(v)
	}
	return strings.Join(q, ", ")
}
