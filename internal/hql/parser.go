package hql

import (
	"fmt"
	"strings"
)

// parser consumes a token stream.
type parser struct {
	toks []token
	i    int
}

// Parse parses a string of one or more semicolon-separated statements.
func Parse(input string) ([]Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Stmt
	for {
		for p.peek().kind == tokSemi {
			p.next()
		}
		if p.peek().kind == tokEOF {
			return stmts, nil
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		switch p.peek().kind {
		case tokSemi, tokEOF:
		default:
			return nil, p.errf("expected ';' or end of input, got %s", p.peek())
		}
	}
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &SyntaxError{Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

// keyword reports whether the next token is the given keyword
// (case-insensitive) and consumes it if so.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

// expectKeyword consumes the keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errf("expected %q, got %s", strings.ToUpper(kw), p.peek())
	}
	return nil
}

// ident consumes an identifier.
func (p *parser) ident(what string) (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected %s, got %s", what, t)
	}
	p.next()
	return t.text, nil
}

// expect consumes a token of the given kind.
func (p *parser) expect(kind tokenKind, what string) error {
	if p.peek().kind != kind {
		return p.errf("expected %s, got %s", what, p.peek())
	}
	p.next()
	return nil
}

// identList parses ( a, b, … ).
func (p *parser) identList() ([]string, error) {
	if err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var out []string
	if p.peek().kind == tokRParen {
		p.next()
		return out, nil
	}
	for {
		id, err := p.ident("a value")
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return out, nil
}

// statement dispatches on the leading keyword.
func (p *parser) statement() (Stmt, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errf("expected a statement, got %s", t)
	}
	switch strings.ToUpper(t.text) {
	case "CREATE":
		p.next()
		return p.create()
	case "DROP":
		p.next()
		if p.keyword("node") {
			name, err := p.ident("a node name")
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("in"); err != nil {
				return nil, err
			}
			dom, err := p.ident("a domain name")
			if err != nil {
				return nil, err
			}
			return DropNodeStmt{Domain: dom, Name: name}, nil
		}
		if p.keyword("view") {
			name, err := p.ident("a view name")
			if err != nil {
				return nil, err
			}
			return DropViewStmt{Name: name}, nil
		}
		if err := p.expectKeyword("relation"); err != nil {
			return nil, err
		}
		name, err := p.ident("a relation name")
		if err != nil {
			return nil, err
		}
		return DropRelationStmt{Name: name}, nil
	case "CLASS":
		p.next()
		return p.nodeStmt(false)
	case "INSTANCE":
		p.next()
		return p.nodeStmt(true)
	case "EDGE":
		p.next()
		return p.edge()
	case "PREFER":
		p.next()
		return p.prefer()
	case "ASSERT":
		p.next()
		return p.signedTuple(true)
	case "DENY":
		p.next()
		return p.signedTuple(false)
	case "RETRACT":
		p.next()
		rel, vals, err := p.relTuple()
		if err != nil {
			return nil, err
		}
		return RetractStmt{Relation: rel, Values: vals}, nil
	case "HOLDS":
		p.next()
		rel, vals, err := p.relTuple()
		if err != nil {
			return nil, err
		}
		return HoldsStmt{Relation: rel, Values: vals}, nil
	case "WHY":
		p.next()
		rel, vals, err := p.relTuple()
		if err != nil {
			return nil, err
		}
		return WhyStmt{Relation: rel, Values: vals}, nil
	case "SELECT":
		p.next()
		return p.selectStmt()
	case "EXTENSION":
		p.next()
		rel, err := p.ident("a relation name")
		if err != nil {
			return nil, err
		}
		return ExtensionStmt{Relation: rel}, nil
	case "CONSOLIDATE":
		p.next()
		rel, err := p.ident("a relation name")
		if err != nil {
			return nil, err
		}
		return ConsolidateStmt{Relation: rel}, nil
	case "EXPLICATE":
		p.next()
		rel, err := p.ident("a relation name")
		if err != nil {
			return nil, err
		}
		var attrs []string
		if p.keyword("on") {
			var err error
			attrs, err = p.identList()
			if err != nil {
				return nil, err
			}
		}
		return ExplicateStmt{Relation: rel, Attrs: attrs}, nil
	case "UNION", "INTERSECT", "DIFFERENCE", "JOIN":
		op := strings.ToLower(t.text)
		p.next()
		return p.binOp(op)
	case "EXPLAIN":
		p.next()
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		switch inner.(type) {
		case SelectStmt, BinOpStmt:
			return ExplainStmt{Inner: inner}, nil
		default:
			return nil, p.errf("EXPLAIN supports SELECT, UNION, INTERSECT, DIFFERENCE and JOIN, not %T", inner)
		}
	case "PROJECT":
		p.next()
		return p.project()
	case "SHOW":
		p.next()
		return p.show()
	case "SET":
		p.next()
		if p.keyword("mode") {
			rel, err := p.ident("a relation name")
			if err != nil {
				return nil, err
			}
			mode, err := p.ident("a mode (off_path|on_path|none)")
			if err != nil {
				return nil, err
			}
			return SetModeStmt{Relation: rel, Mode: strings.ToLower(mode)}, nil
		}
		if err := p.expectKeyword("policy"); err != nil {
			return nil, err
		}
		pol, err := p.ident("a policy (allow|warn|forbid)")
		if err != nil {
			return nil, err
		}
		return SetPolicyStmt{Policy: strings.ToLower(pol)}, nil
	case "RULE":
		p.next()
		return p.rule()
	case "INFER":
		p.next()
		goal, err := p.atomSpec()
		if err != nil {
			return nil, err
		}
		return InferStmt{Goal: goal}, nil
	case "COUNT":
		p.next()
		rel, err := p.ident("a relation name")
		if err != nil {
			return nil, err
		}
		st := CountStmt{Relation: rel}
		if p.keyword("by") {
			st.By, err = p.identList()
			if err != nil {
				return nil, err
			}
		}
		return st, nil
	case "DUMP":
		p.next()
		return DumpStmt{}, nil
	case "BEGIN":
		p.next()
		return BeginStmt{}, nil
	case "COMMIT":
		p.next()
		return CommitStmt{}, nil
	case "ROLLBACK":
		p.next()
		return RollbackStmt{}, nil
	default:
		return nil, p.errf("unknown statement %q", t.text)
	}
}

func (p *parser) create() (Stmt, error) {
	switch {
	case p.keyword("hierarchy"):
		d, err := p.ident("a domain name")
		if err != nil {
			return nil, err
		}
		return CreateHierarchyStmt{Domain: d}, nil
	case p.keyword("relation"):
		name, err := p.ident("a relation name")
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		var attrs [][2]string
		for {
			attr, err := p.ident("an attribute name")
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokColon, "':'"); err != nil {
				return nil, err
			}
			dom, err := p.ident("a domain name")
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, [2]string{attr, dom})
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return CreateRelationStmt{Name: name, Attrs: attrs}, nil
	case p.keyword("materialized"):
		if err := p.expectKeyword("view"); err != nil {
			return nil, err
		}
		name, err := p.ident("a view name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("as"); err != nil {
			return nil, err
		}
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		if err := Materializable(inner); err != nil {
			return nil, p.errf("%v", err)
		}
		// Store the canonical rendering: the view catalog re-parses it, and
		// Parse(Render(st)) == st, so no raw-text capture is needed.
		return CreateViewStmt{Name: name, Query: Render(inner)}, nil
	default:
		return nil, p.errf("expected HIERARCHY, RELATION or MATERIALIZED VIEW after CREATE")
	}
}

func (p *parser) nodeStmt(instance bool) (Stmt, error) {
	name, err := p.ident("a node name")
	if err != nil {
		return nil, err
	}
	var parents []string
	var domain string
	switch {
	case p.keyword("under"):
		for {
			par, err := p.ident("a parent name")
			if err != nil {
				return nil, err
			}
			parents = append(parents, par)
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		// Optional explicit domain disambiguates parents that exist in
		// several hierarchies (always emitted by Dump).
		if p.keyword("in") {
			domain, err = p.ident("a domain name")
			if err != nil {
				return nil, err
			}
		}
	case p.keyword("in"):
		domain, err = p.ident("a domain name")
		if err != nil {
			return nil, err
		}
	default:
		return nil, p.errf("expected UNDER or IN after the node name")
	}
	if instance {
		return InstanceStmt{Name: name, Parents: parents, Domain: domain}, nil
	}
	return ClassStmt{Name: name, Parents: parents, Domain: domain}, nil
}

func (p *parser) edge() (Stmt, error) {
	dom, err := p.ident("a domain name")
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokColon, "':'"); err != nil {
		return nil, err
	}
	parent, err := p.ident("a parent")
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokArrow, "'->'"); err != nil {
		return nil, err
	}
	child, err := p.ident("a child")
	if err != nil {
		return nil, err
	}
	return EdgeStmt{Domain: dom, Parent: parent, Child: child}, nil
}

func (p *parser) prefer() (Stmt, error) {
	stronger, err := p.ident("a class")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("over"); err != nil {
		return nil, err
	}
	weaker, err := p.ident("a class")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("in"); err != nil {
		return nil, err
	}
	dom, err := p.ident("a domain name")
	if err != nil {
		return nil, err
	}
	return PreferStmt{Domain: dom, Stronger: stronger, Weaker: weaker}, nil
}

// relTuple parses "<rel> ( v, … )".
func (p *parser) relTuple() (string, []string, error) {
	rel, err := p.ident("a relation name")
	if err != nil {
		return "", nil, err
	}
	vals, err := p.identList()
	if err != nil {
		return "", nil, err
	}
	return rel, vals, nil
}

func (p *parser) signedTuple(sign bool) (Stmt, error) {
	rel, vals, err := p.relTuple()
	if err != nil {
		return nil, err
	}
	return AssertStmt{Relation: rel, Values: vals, Sign: sign}, nil
}

func (p *parser) selectStmt() (Stmt, error) {
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	rel, err := p.ident("a relation name")
	if err != nil {
		return nil, err
	}
	st := SelectStmt{Relation: rel}
	if p.keyword("where") {
		for {
			attr, err := p.ident("an attribute name")
			if err != nil {
				return nil, err
			}
			if p.peek().kind == tokEq {
				p.next()
			} else if err := p.expectKeyword("under"); err != nil {
				return nil, err
			}
			class, err := p.ident("a class or instance")
			if err != nil {
				return nil, err
			}
			st.Conds = append(st.Conds, [2]string{attr, class})
			if p.keyword("and") {
				continue
			}
			break
		}
	}
	if p.keyword("as") {
		name, err := p.ident("a result name")
		if err != nil {
			return nil, err
		}
		st.As = name
	}
	return st, nil
}

func (p *parser) binOp(op string) (Stmt, error) {
	left, err := p.ident("a relation name")
	if err != nil {
		return nil, err
	}
	right, err := p.ident("a relation name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("as"); err != nil {
		return nil, err
	}
	as, err := p.ident("a result name")
	if err != nil {
		return nil, err
	}
	return BinOpStmt{Op: op, Left: left, Right: right, As: as}, nil
}

func (p *parser) project() (Stmt, error) {
	rel, err := p.ident("a relation name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	attrs, err := p.identList()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("as"); err != nil {
		return nil, err
	}
	as, err := p.ident("a result name")
	if err != nil {
		return nil, err
	}
	return ProjectStmt{Relation: rel, Attrs: attrs, As: as}, nil
}

// atomSpec parses "pred(arg, …)".
func (p *parser) atomSpec() (AtomSpec, error) {
	pred, err := p.ident("a predicate name")
	if err != nil {
		return AtomSpec{}, err
	}
	args, err := p.identList()
	if err != nil {
		return AtomSpec{}, err
	}
	return AtomSpec{Pred: pred, Args: args}, nil
}

// rule parses "head(args) [IF atom [AND atom]…]".
func (p *parser) rule() (Stmt, error) {
	head, err := p.atomSpec()
	if err != nil {
		return nil, err
	}
	st := RuleStmt{Head: head}
	if p.keyword("if") {
		for {
			negated := p.keyword("not")
			atom, err := p.atomSpec()
			if err != nil {
				return nil, err
			}
			atom.Negated = negated
			st.Body = append(st.Body, atom)
			if p.keyword("and") {
				continue
			}
			break
		}
	}
	return st, nil
}

func (p *parser) show() (Stmt, error) {
	switch {
	case p.keyword("hierarchies"):
		return ShowStmt{What: "hierarchies"}, nil
	case p.keyword("relations"):
		return ShowStmt{What: "relations"}, nil
	case p.keyword("rules"):
		return ShowStmt{What: "rules"}, nil
	case p.keyword("hierarchy"):
		d, err := p.ident("a domain name")
		if err != nil {
			return nil, err
		}
		return ShowStmt{What: "hierarchy", Target: d}, nil
	case p.keyword("relation"):
		r, err := p.ident("a relation name")
		if err != nil {
			return nil, err
		}
		return ShowStmt{What: "relation", Target: r}, nil
	case p.keyword("views"):
		return ShowStmt{What: "views"}, nil
	case p.keyword("view"):
		v, err := p.ident("a view name")
		if err != nil {
			return nil, err
		}
		return ShowStmt{What: "view", Target: v}, nil
	default:
		return nil, p.errf("expected HIERARCHIES, RELATIONS, RULES, VIEWS, HIERARCHY, RELATION or VIEW after SHOW")
	}
}
