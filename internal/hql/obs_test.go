package hql

import (
	"strings"
	"testing"
	"time"

	"hrdb/internal/catalog"
	"hrdb/internal/obs"
)

// TestSessionSlowQueryAndTracer: with a zero-threshold slow-query log and a
// span collector attached, one script execution records a slow-query line
// with parse and per-statement exec stages, emits one span per statement
// plus the script-level span, and moves the statement counter by the
// statement count.
func TestSessionSlowQueryAndTracer(t *testing.T) {
	var buf strings.Builder
	log := obs.NewSlowQueryLog(&buf, 0) // threshold 0: record everything
	var spans obs.SpanCollector
	sess := NewSession(MemTarget{DB: catalog.New()})
	sess.SetSlowQueryLog(log)
	sess.SetTracer(&spans)

	stmts0 := metricStatements.Value()
	script := `
		CREATE HIERARCHY Animal;
		CLASS Bird IN Animal;
		CREATE RELATION Flies (Creature: Animal);
		ASSERT Flies (Bird);
		HOLDS Flies (Bird);
	`
	out, err := sess.Exec(script)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if !strings.Contains(out, "true") {
		t.Fatalf("script output = %q", out)
	}
	const nStmts = 5
	if d := metricStatements.Value() - stmts0; d != nStmts {
		t.Errorf("statement counter delta = %d, want %d", d, nStmts)
	}

	line := buf.String()
	for _, want := range []string{"slow-query t=", "dur=", `stage=`, "exec:holds", "exec:assert", "parse=", `stmt="`} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-query line missing %q:\n%s", want, line)
		}
	}

	got := spans.Spans()
	// One span per statement plus the script-level hql.exec span.
	if len(got) != nStmts+1 {
		t.Fatalf("got %d spans, want %d: %+v", len(got), nStmts+1, got)
	}
	byName := map[string]int{}
	for _, sp := range got {
		byName[sp.Name]++
		if sp.Err != nil {
			t.Errorf("span %s carries error %v", sp.Name, sp.Err)
		}
	}
	for _, want := range []string{"hql.exec", "hql.holds", "hql.assert", "hql.createhierarchy"} {
		if byName[want] == 0 {
			t.Errorf("no %s span; spans by name: %v", want, byName)
		}
	}
}

// TestSessionSlowQueryThresholdFilters: a high threshold suppresses the
// record, and detaching the log restores the unobserved path.
func TestSessionSlowQueryThresholdFilters(t *testing.T) {
	var buf strings.Builder
	sess := NewSession(MemTarget{DB: catalog.New()})
	sess.SetSlowQueryLog(obs.NewSlowQueryLog(&buf, time.Hour))
	if _, err := sess.Exec("CREATE HIERARCHY Animal;"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("sub-threshold script was recorded: %q", buf.String())
	}

	sess.SetSlowQueryLog(nil)
	sess.SetTracer(nil)
	if _, err := sess.Exec("CLASS Bird IN Animal;"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("detached log still recorded: %q", buf.String())
	}
}

// TestSessionTracerRecordsStatementError: a failing statement surfaces on
// both the statement span and the script span.
func TestSessionTracerRecordsStatementError(t *testing.T) {
	var spans obs.SpanCollector
	sess := NewSession(MemTarget{DB: catalog.New()})
	sess.SetTracer(&spans)
	if _, err := sess.Exec("HOLDS Nope (X);"); err == nil {
		t.Fatal("expected an error for an unknown relation")
	}
	var sawErr bool
	for _, sp := range spans.Spans() {
		if sp.Err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Errorf("no span carried the statement error: %+v", spans.Spans())
	}
}
