package hql

import (
	"strings"
	"testing"
)

// TestRuleAndInfer: the paper's Tweety-travels-far deduction through HQL.
func TestRuleAndInfer(t *testing.T) {
	s := setup(t)
	out, err := s.Exec("RULE travelsFar(?X) IF Flies(?X);")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rule added") {
		t.Fatalf("out = %q", out)
	}

	// Ground query.
	out, err = s.Exec("INFER travelsFar(Tweety);")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "true" {
		t.Fatalf("Tweety = %q", out)
	}
	out, err = s.Exec("INFER travelsFar(Paul);")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "false" {
		t.Fatalf("Paul = %q", out)
	}

	// Open query enumerates.
	out, err = s.Exec("INFER travelsFar(?Who);")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"derivations", "Tweety", "Pamela", "Patricia", "Peter"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
	if strings.Contains(out, "Paul") {
		t.Errorf("Paul must not be derived: %q", out)
	}
}

// TestRuleWithIsaBuiltin: taxonomy membership joins with relations.
func TestRuleWithIsaBuiltin(t *testing.T) {
	s := setup(t)
	script := `
RULE flyingPenguin(?X) IF isa(?X, Penguin) AND Flies(?X);
INFER flyingPenguin(?X);
`
	out, err := s.Exec(script)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Pamela", "Patricia", "Peter"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q: %q", want, out)
		}
	}
	if strings.Contains(out, "Tweety") {
		t.Errorf("Tweety is not a penguin: %q", out)
	}
}

// TestRuleFactsAndChaining: ground facts and recursion through HQL.
func TestRuleFactsAndChaining(t *testing.T) {
	s := newSession()
	script := `
RULE edge(a, b);
RULE edge(b, c);
RULE path(?X, ?Y) IF edge(?X, ?Y);
RULE path(?X, ?Z) IF edge(?X, ?Y) AND path(?Y, ?Z);
INFER path(a, c);
SHOW RULES;
`
	out, err := s.Exec(script)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "true") {
		t.Fatalf("path(a,c) not derived: %q", out)
	}
	if !strings.Contains(out, "path(?X, ?Z) :- edge(?X, ?Y), path(?Y, ?Z).") {
		t.Fatalf("SHOW RULES missing: %q", out)
	}
}

// TestUnsafeRuleRejectedInHQL.
func TestUnsafeRuleRejectedInHQL(t *testing.T) {
	s := newSession()
	if _, err := s.Exec("RULE bad(?X);"); err == nil {
		t.Fatal("unsafe rule accepted")
	}
	if _, err := s.Exec("RULE bad(?X) IF other(?Y);"); err == nil {
		t.Fatal("unbound head var accepted")
	}
}

// TestInferUnknownPredicate.
func TestInferUnknownPredicate(t *testing.T) {
	s := newSession()
	if _, err := s.Exec("INFER nothing(?X);"); err == nil {
		t.Fatal("unknown predicate accepted")
	}
	if _, err := s.Exec("INFER nothing(x);"); err == nil {
		t.Fatal("ground unknown predicate accepted")
	}
}

// TestInferNoDerivations.
func TestInferNoDerivations(t *testing.T) {
	s := setup(t)
	script := `
RULE lazyFlyer(?X) IF Flies(?X) AND Flies(?X);
`
	if _, err := s.Exec(script); err != nil {
		t.Fatal(err)
	}
	// Restrict to an empty intersection: penguins that are canaries.
	out, err := s.Exec("RULE impossible(?X) IF isa(?X, Canary) AND isa(?X, Penguin); INFER impossible(?X);")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no derivations") {
		t.Fatalf("out = %q", out)
	}
}

// TestRuleWithNegation: NOT in HQL rule bodies (stratified negation).
func TestRuleWithNegation(t *testing.T) {
	s := setup(t)
	script := `
RULE grounded(?X) IF isa(?X, Bird) AND NOT Flies(?X);
INFER grounded(Paul);
INFER grounded(Tweety);
`
	out, err := s.Exec(script)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 || lines[1] != "true" || lines[2] != "false" {
		t.Fatalf("out = %q", out)
	}
}

// TestNotStratifiedRejectedInHQL.
func TestNotStratifiedRejectedInHQL(t *testing.T) {
	s := newSession()
	script := `
RULE item(x);
RULE p(?X) IF item(?X) AND NOT q(?X);
RULE q(?X) IF item(?X) AND NOT p(?X);
`
	if _, err := s.Exec(script); err != nil {
		t.Fatal(err) // rules individually fine
	}
	if _, err := s.Exec("INFER p(?X);"); err == nil {
		t.Fatal("non-stratified program accepted")
	}
}

// TestVariableLexing: '?' must be followed by a name.
func TestVariableLexing(t *testing.T) {
	if _, err := Parse("INFER p(?);"); err == nil {
		t.Fatal("bare '?' accepted")
	}
	stmts, err := Parse("INFER p(?X, y);")
	if err != nil {
		t.Fatal(err)
	}
	inf, ok := stmts[0].(InferStmt)
	if !ok || inf.Goal.Args[0] != "?X" || inf.Goal.Args[1] != "y" {
		t.Fatalf("stmts = %#v", stmts)
	}
}

// TestProjectParseErrors: the PROJECT grammar's failure branches.
func TestProjectParseErrors(t *testing.T) {
	for _, in := range []string{
		"PROJECT;",
		"PROJECT R;",
		"PROJECT R ON;",
		"PROJECT R ON (a);",
		"PROJECT R ON (a) AS;",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}
